package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders a point-in-time registry snapshot in the
// Prometheus text exposition format (version 0.0.4): counters as
// counters, gauges as a value/max gauge pair, histograms as cumulative
// le-bucketed histograms with _sum and _count, and each sampled series'
// most recent point as a gauge under a series_ prefix. Metric names are
// sanitized (non-alphanumerics become '_') and prefixed gmap_; output is
// in sorted name order so it is golden-comparable. A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	return writePrometheus(w, r.Snapshot())
}

func writePrometheus(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, name := range names(snap.Counters) {
		m := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", m, m, snap.Counters[name])
	}
	for _, name := range names(snap.Gauges) {
		g := snap.Gauges[name]
		m := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", m, m, g.Value)
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n%s_max %d\n", m, m, g.Max)
	}
	for _, name := range names(snap.Histograms) {
		h := snap.Histograms[name]
		m := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", m)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			// Prometheus le is inclusive; our buckets are [Lo, Hi), so the
			// inclusive upper bound is Hi-1 (the zero bucket holds only 0).
			hi := uint64(0)
			if b.Hi > 0 {
				hi = b.Hi - 1
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", m, hi, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n%s_count %d\n", m, h.Sum, m, h.Count)
	}
	for _, name := range names(snap.Series) {
		pts := snap.Series[name]
		if len(pts) == 0 {
			continue
		}
		last := pts[len(pts)-1]
		m := promName("series." + name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", m, m,
			strconv.FormatFloat(last.Value, 'g', -1, 64))
	}
	return bw.Flush()
}

// PromName maps a dotted registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:] with a gmap_ namespace prefix. Exported so
// out-of-package renderers (the fleet federation surface) emit the same
// names as the local /metrics exposition.
func PromName(name string) string { return promName(name) }

// promName maps a dotted registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:] with a gmap_ namespace prefix.
func promName(name string) string {
	b := []byte("gmap_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}
