// Scheduling-policy exploration (the Figure 6e scenario).
//
// Warp scheduling shapes memory behaviour: loose round-robin (LRR)
// interleaves all warps, greedy-then-oldest (GTO) drains one warp at a
// time. G-MAP does not model the GPU core, so the clone approximates GTO
// with the SchedPself knob — the probability of re-issuing the same warp.
// This example runs an original under both hardware policies and shows
// the clone tracking each, including the DRAM row-buffer locality shift
// that GTO's per-warp bursts produce.
//
// Run with: go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"github.com/uteda/gmap"
)

func main() {
	w, err := gmap.Prepare("heartwall", 1, gmap.DefaultProfileConfig(),
		gmap.GenerateOptions{Seed: 1, ScaleFactor: 4})
	if err != nil {
		log.Fatal(err)
	}

	type policy struct {
		name      string
		origSched gmap.SimConfig
		cloneCfg  gmap.SimConfig
	}
	lrr := gmap.DefaultSimConfig()
	lrr.Scheduler = gmap.LRR

	gto := gmap.DefaultSimConfig()
	gto.Scheduler = gmap.GTO

	// The clone side approximates GTO with SchedPself = 0.9 (§4.5).
	gtoApprox := gmap.DefaultSimConfig()
	gtoApprox.Scheduler = gmap.PSelf
	gtoApprox.SchedPself = 0.9

	policies := []policy{
		{name: "LRR", origSched: lrr, cloneCfg: lrr},
		{name: "GTO", origSched: gto, cloneCfg: gtoApprox},
	}

	fmt.Printf("%-6s %14s %14s %12s %12s\n", "policy", "orig L1 miss", "clone L1 miss", "orig RBL", "clone RBL")
	for _, p := range policies {
		orig, err := w.SimulateOriginal(p.origSched)
		if err != nil {
			log.Fatal(err)
		}
		clone, err := w.SimulateProxy(p.cloneCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %14.4f %14.4f %12.4f %12.4f\n",
			p.name, orig.L1MissRate(), clone.L1MissRate(),
			orig.DRAM.RowBufferLocality(), clone.DRAM.RowBufferLocality())
	}
	fmt.Println("\nGTO on the clone is approximated by SchedPself, not a core model (§4.5)")
}
