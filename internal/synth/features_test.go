package synth

import (
	"testing"

	"github.com/uteda/gmap/internal/rng"

	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/workloads"
)

func TestFootprintConfinement(t *testing.T) {
	// The proxy's per-warp footprint must match the original's for every
	// regular benchmark: no diffusion beyond the profiled windows.
	for _, name := range []string{"kmeans", "heartwall", "lib", "bp", "cp"} {
		p := profileOf(t, name)
		proxy, err := Generate(p, Options{Seed: 5, ScaleFactor: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Per-warp distinct line counts, proxy vs the footprint implied
		// by the windows.
		for wi := 0; wi < 3 && wi < len(proxy.Warps); wi++ {
			lines := map[uint64]bool{}
			for _, r := range proxy.Warps[wi].Requests {
				lines[r.Addr/128] = true
			}
			// Upper bound: sum over instructions of window spans.
			var bound int64
			for _, inst := range p.Insts {
				bound += (inst.OffHi-inst.OffLo)/128 + 3 // +3: unaligned window edges and the anchor line
			}
			if int64(len(lines)) > bound {
				t.Errorf("%s warp %d: %d distinct lines exceeds window bound %d",
					name, wi, len(lines), bound)
			}
		}
	}
}

func TestTemplatePhaseLocking(t *testing.T) {
	// For a fully regular workload, warps sharing a π profile must follow
	// the same relative pattern: warp i's offsets (from its own first
	// access) must equal warp j's.
	p := profileOf(t, "srad")
	proxy, err := Generate(p, Options{Seed: 3, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	rel := func(wi int) []int64 {
		var first uint64
		var out []int64
		got := false
		for _, r := range proxy.Warps[wi].Requests {
			if r.PC != 0x250 {
				continue
			}
			if !got {
				first = r.Addr
				got = true
			}
			out = append(out, int64(r.Addr)-int64(first))
		}
		return out
	}
	a, b := rel(0), rel(5)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("pattern lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("warps not phase-locked at position %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestIrregularWarpsDiffer(t *testing.T) {
	// Scatter-driven instructions must NOT be phase-locked: bfs warps
	// should produce different gather addresses.
	p := profileOf(t, "bfs")
	proxy, err := Generate(p, Options{Seed: 3, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Find two warps with the same stream length (same π) and compare the
	// scatter PC 0x48 offsets.
	byLen := map[int][]int{}
	for wi := range proxy.Warps {
		byLen[len(proxy.Warps[wi].Requests)] = append(byLen[len(proxy.Warps[wi].Requests)], wi)
	}
	var pair []int
	for _, ws := range byLen {
		if len(ws) >= 2 {
			pair = ws[:2]
			break
		}
	}
	if pair == nil {
		t.Skip("no same-length warp pair")
	}
	scatter := func(wi int) []uint64 {
		var out []uint64
		for _, r := range proxy.Warps[wi].Requests {
			if r.PC == 0x48 {
				out = append(out, r.Addr)
			}
		}
		return out
	}
	a, b := scatter(pair[0]), scatter(pair[1])
	if len(a) == 0 || len(b) == 0 {
		t.Skip("no scatter requests in pair")
	}
	same := 0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	if same == n {
		t.Error("irregular gathers identical across warps; scatter was templated")
	}
}

func TestRunStructurePreserved(t *testing.T) {
	// cp's op structure: runs of +128 of length ~15 ended by one -2944
	// drop. The proxy's run-length distribution for the dominant stride
	// must match the profile's.
	p := profileOf(t, "cp")
	proxy, err := Generate(p, Options{Seed: 9, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := stats.NewHistogram()
	for _, w := range proxy.Warps {
		var prev uint64
		var runStride, runLen int64
		seen := false
		for _, r := range w.Requests {
			if r.PC != 0x208 {
				continue
			}
			if seen {
				stride := int64(r.Addr) - int64(prev)
				if runLen > 0 && stride == runStride {
					runLen++
				} else {
					if runLen > 0 && runStride == 128 {
						got.Add(runLen)
					}
					runStride, runLen = stride, 1
				}
			}
			prev, seen = r.Addr, true
		}
		if runLen > 0 && runStride == 128 {
			got.Add(runLen)
		}
	}
	if got.Total() == 0 {
		t.Fatal("no +128 runs generated")
	}
	key, freq, _ := got.Mode()
	if key < 13 || key > 17 {
		t.Errorf("dominant +128 run length = %d (freq %.2f), want ~15", key, freq)
	}
}

func TestSampleRangeExcluding(t *testing.T) {
	h := stats.NewHistogram()
	h.AddN(128, 90)
	h.AddN(-2944, 10)
	s := stats.NewSampler(h)
	r := newTestRand()
	// Excluding 128 over the full range must always yield -2944.
	for i := 0; i < 50; i++ {
		v, ok := s.SampleRangeExcluding(r, -10000, 10000, 128)
		if !ok || v != -2944 {
			t.Fatalf("exclusion sampling = (%d, %v)", v, ok)
		}
	}
	// Excluding the only admissible key falls back to including it.
	v, ok := s.SampleRangeExcluding(r, 0, 10000, 128)
	if !ok || v != 128 {
		t.Fatalf("fallback = (%d, %v), want (128, true)", v, ok)
	}
}

func TestGenerateAllWorkloadsStillValid(t *testing.T) {
	// Structural sanity across all 18 after the generation rework.
	for _, s := range workloads.All() {
		p := profileOf(t, s.Name)
		proxy, err := Generate(p, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if proxy.Requests == 0 {
			t.Fatalf("%s: empty proxy", s.Name)
		}
		warpsPerBlock := (p.BlockDim + 31) / 32
		for wi := range proxy.Warps {
			if proxy.Warps[wi].Block != wi/warpsPerBlock {
				t.Fatalf("%s: warp %d block %d", s.Name, wi, proxy.Warps[wi].Block)
			}
			for _, rq := range proxy.Warps[wi].Requests {
				if rq.WarpID != wi {
					t.Fatalf("%s: warp id mismatch", s.Name)
				}
			}
		}
	}
}

func newTestRand() *rng.Rand { return rng.New(424242) }

func TestScaleUpGrowsProxy(t *testing.T) {
	p := profileOf(t, "nn")
	up, err := Generate(p, Options{Seed: 1, ScaleFactor: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(up.Requests) / float64(p.TotalRequests)
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("scale-up 0.25 ratio = %.2f (%d -> %d), want ~4",
			ratio, p.TotalRequests, up.Requests)
	}
	if len(up.Warps) <= p.Warps {
		t.Errorf("warp population %d not grown from %d", len(up.Warps), p.Warps)
	}
}

func TestScaleUpGrowsFootprint(t *testing.T) {
	// A scaled-up streaming workload must touch a proportionally larger
	// footprint ("futuristic workloads with larger footprints", §1).
	p := profileOf(t, "blk")
	base, err := Generate(p, Options{Seed: 1, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	up, err := Generate(p, Options{Seed: 1, ScaleFactor: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	lines := func(px *Proxy) int {
		set := map[uint64]bool{}
		for _, w := range px.Warps {
			for _, r := range w.Requests {
				set[r.Addr/128] = true
			}
		}
		return len(set)
	}
	b, u := lines(base), lines(up)
	if float64(u) < 1.8*float64(b) {
		t.Errorf("scale-up footprint %d lines not >> base %d", u, b)
	}
}

func TestScaleUpSimulates(t *testing.T) {
	p := profileOf(t, "bp")
	up, err := Generate(p, Options{Seed: 1, ScaleFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Streams must stay structurally valid (warp/block ids consistent).
	warpsPerBlock := (p.BlockDim + 31) / 32
	for wi := range up.Warps {
		if up.Warps[wi].Block != wi/warpsPerBlock {
			t.Fatalf("warp %d block %d", wi, up.Warps[wi].Block)
		}
	}
}
