package trace

import (
	"fmt"
	"sort"
)

// Summary is a compact structural description of a warp-level request
// stream: the quantities the G-MAP pipeline reasons about when judging
// whether a clone resembles its original.
type Summary struct {
	// Warps and Requests count the stream's population.
	Warps    int
	Requests int
	// Syncs counts barrier entries (not memory traffic).
	Syncs int
	// Loads and Stores partition the memory requests.
	Loads  int
	Stores int
	// DistinctLines is the total footprint in cachelines.
	DistinctLines int
	// AvgWarpLines is the mean per-warp footprint.
	AvgWarpLines float64
	// ReuseFraction is the fraction of memory requests whose line was
	// already touched earlier by the same warp.
	ReuseFraction float64
	// PCs maps each static instruction to its dynamic request count.
	PCs map[uint64]int
}

// Summarize computes a Summary over warp streams at the given line size
// (0 selects 128B).
func Summarize(warps []WarpTrace, lineSize uint64) Summary {
	if lineSize == 0 {
		lineSize = 128
	}
	s := Summary{Warps: len(warps), PCs: make(map[uint64]int)}
	global := make(map[uint64]struct{})
	var warpLineSum int
	var reused int
	for i := range warps {
		local := make(map[uint64]struct{})
		for _, r := range warps[i].Requests {
			if r.Kind == Sync {
				s.Syncs++
				continue
			}
			s.Requests++
			s.PCs[r.PC]++
			if r.Kind == Store {
				s.Stores++
			} else {
				s.Loads++
			}
			line := r.Addr / lineSize
			if _, seen := local[line]; seen {
				reused++
			} else {
				local[line] = struct{}{}
			}
			global[line] = struct{}{}
		}
		warpLineSum += len(local)
	}
	s.DistinctLines = len(global)
	if s.Warps > 0 {
		s.AvgWarpLines = float64(warpLineSum) / float64(s.Warps)
	}
	if s.Requests > 0 {
		s.ReuseFraction = float64(reused) / float64(s.Requests)
	}
	return s
}

// DominantPCs returns the instructions ordered by descending dynamic
// count, ties broken by PC.
func (s Summary) DominantPCs() []uint64 {
	pcs := make([]uint64, 0, len(s.PCs))
	for pc := range s.PCs {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		if s.PCs[pcs[i]] != s.PCs[pcs[j]] {
			return s.PCs[pcs[i]] > s.PCs[pcs[j]]
		}
		return pcs[i] < pcs[j]
	})
	return pcs
}

// String renders the headline numbers on one line.
func (s Summary) String() string {
	return fmt.Sprintf("%d warps, %d requests (%d LD / %d ST / %d BAR), %d lines (%.1f/warp), reuse %.2f",
		s.Warps, s.Requests, s.Loads, s.Stores, s.Syncs,
		s.DistinctLines, s.AvgWarpLines, s.ReuseFraction)
}
