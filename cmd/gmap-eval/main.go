// Command gmap-eval regenerates the tables and figures of the paper's
// evaluation (§5): Table 1 (application memory patterns), Table 2 (system
// configuration), Figures 6a-6e (cache, prefetcher and scheduler sweeps),
// Figure 7 (DRAM exploration) and Figure 8 (miniaturization).
//
// Sweeps execute on the parallel experiment engine: -workers controls the
// pool size (default: every CPU; results are identical to a serial run),
// and -checkpoint/-resume make runs restartable — Ctrl-C a long sweep,
// re-run with -resume, and finished simulation points are not repeated.
//
// Usage:
//
//	gmap-eval -exp fig6a
//	gmap-eval -exp all -out results.txt
//	gmap-eval -exp fig7 -benchmarks aes,kmeans,bfs -cores 8
//	gmap-eval -exp all -checkpoint run.ckpt -resume -summary run.json
//
// A sweep can also be split across processes (and machines): one
// coordinator partitions the job space and merges streamed results into
// the -checkpoint ledger, N workers execute leased partitions. The
// merged report is byte-identical to a serial -no-timings run:
//
//	gmap-eval -exp fig6a -dist-listen :9500 -checkpoint fig6a.ckpt
//	gmap-eval -worker http://host:9500   # on each worker machine
//
// For high availability, a standby coordinator on the same filesystem
// watches the active one and takes over if it dies — epoch fencing over
// the shared ledger keeps a deposed coordinator from corrupting the
// merge, and workers rediscover the successor through the addr file:
//
//	gmap-eval -exp fig6a -dist-listen :9500 -dist-addr-file coord.addr -checkpoint fig6a.ckpt
//	gmap-eval -exp fig6a -dist-standby -worker http://host:9500 -dist-listen :9501 \
//	    -dist-addr-file coord.addr -checkpoint fig6a.ckpt
//	gmap-eval -worker-addr-file coord.addr   # workers follow the file across failover
//
// A coordinator federates the fleet's observability: workers started
// with -serve self-announce their exposition URLs in lease requests,
// the coordinator scrapes them, and the merged view — labeled metrics,
// fleet status, the cross-process sweep trace — is served under /fleet/
// on the coordinator's port. Watch it live from any terminal:
//
//	gmap-eval -worker http://host:9500 -serve :0     # worker joins the fleet
//	gmap-eval -fleet-watch http://host:9500          # or -fleet-watch coord.addr
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/uteda/gmap"
	"github.com/uteda/gmap/internal/eval"
	"github.com/uteda/gmap/internal/obs/fleet"
	"github.com/uteda/gmap/internal/serve/api"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id: "+strings.Join(eval.ExperimentIDs(), ", ")+" or all")
		benchmarks  = flag.String("benchmarks", "", "comma-separated benchmark subset (default all 18)")
		scale       = flag.Int("scale", 1, "workload scale")
		scaleFactor = flag.Float64("scale-factor", 4, "proxy miniaturization factor")
		cores       = flag.Int("cores", 0, "simulated SM count (0 = Table 2's 15)")
		seed        = flag.Uint64("seed", 1, "generation seed")
		out         = flag.String("out", "", "write the report to a file (default stdout)")
		quiet       = flag.Bool("quiet", false, "suppress per-benchmark progress")
		workers     = flag.Int("workers", 0, "parallel simulation jobs (0 = all CPUs, 1 = serial)")
		simWorkers  = flag.Int("sim-workers", 0, "SM worker goroutines inside each simulation point (0/1 = serial engine; with -workers=0 the job pool shrinks to ~CPUs/sim-workers so the two levels share the budget)")
		checkpoint  = flag.String("checkpoint", "", "stream completed simulation points to this JSONL file")
		resume      = flag.Bool("resume", false, "skip points already recorded in -checkpoint")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-simulation-point time limit (0 = none)")
		retries     = flag.Int("retries", 0, "re-execute simulation points failing with a transient error up to N times")
		retryWait   = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay before a retry, doubled per attempt with jitter")
		fsync       = flag.Bool("fsync", false, "fsync the checkpoint after every append (survives machine crash, not just SIGKILL)")
		tolerate    = flag.Bool("tolerate", false, "skip-and-report benchmarks whose sweep points fail instead of aborting the figure")
		noTimings   = flag.Bool("no-timings", false, "omit wall-clock timings from the report so identical runs produce byte-identical output (what gmap-served caches)")
		summary     = flag.String("summary", "", "write a machine-readable execution summary (JSON, incl. worker utilization) to this file")
		obsSnap     = flag.String("obs-snapshot", "", "dump the observability registry (runner/profiler/synth instrumentation) as JSON to this file (- for stdout)")
		serveAddr   = flag.String("serve", "", "serve live observability over HTTP on this address (/metrics, /progress, /trace, /debug/pprof)")
		traceOut    = flag.String("trace-out", "", "export the span trace to this file: Chrome trace-event JSON (load in Perfetto), or JSONL if the path ends in .jsonl (- for stdout)")
		attrOut     = flag.String("attr-out", "", "write per-π / per-PC accuracy-attribution reports to this file: markdown if the path ends in .md, else JSON (- for stdout)")
		attrThresh  = flag.Float64("attr-threshold", 2, "figure-error level above which a benchmark is attributed (pp for rates, % for magnitudes; with -attr-out)")
		attrTop     = flag.Int("attr-top", 8, "ranked π / PC entries kept per attribution report")
		distListen  = flag.String("dist-listen", "", "coordinate a distributed sweep on this address (:0 for an ephemeral port); requires -checkpoint as the merge ledger")
		distAddr    = flag.String("dist-addr-file", "", "write the coordinator's bound address to this file (for scripts using -dist-listen :0)")
		distParts   = flag.Int("dist-parts", 0, "partitions of the distributed job space (0 = 8; capped at the job count)")
		distTTL     = flag.Duration("dist-lease-ttl", 0, "lease heartbeat deadline before a worker's partition is re-leased (0 = 30s)")
		workerURL   = flag.String("worker", "", "run as a distributed-sweep worker against this coordinator URL (comma-separate standby endpoints); with -dist-standby, the active coordinator URL to watch")
		workerAddr  = flag.String("worker-addr-file", "", "discover (and re-discover after failover) the coordinator address from this file; preferred over -worker when both are set")
		distStandby = flag.Bool("dist-standby", false, "run as a standby coordinator: watch the active one (-worker / -worker-addr-file) over the shared -checkpoint ledger and take over if it dies")
		distHealthI = flag.Duration("dist-health-interval", 0, "standby health-probe interval (0 = 1s)")
		distHealthM = flag.Int("dist-health-misses", 0, "consecutive failed probes (with no ledger growth) before the standby takes over (0 = 3)")
		fleetWatch  = flag.String("fleet-watch", "", "live fleet status view: poll this coordinator URL's /fleet/status and repaint (also accepts a -dist-addr-file path)")
		fleetIval   = flag.Duration("fleet-interval", 0, "fleet federation cadence: coordinator scrape interval, or -fleet-watch refresh (0 = 2s)")
	)
	flag.Parse()
	if *resume && *checkpoint == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *workerURL != "" && *distListen != "" && !*distStandby {
		fatal(fmt.Errorf("-worker and -dist-listen are mutually exclusive (unless -dist-standby)"))
	}

	// Ctrl-C cancels in-flight sweeps cleanly: completed points are
	// already in the checkpoint, so a -resume re-run picks up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var distLogf func(string, ...interface{})
	if !*quiet {
		distLogf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *fleetWatch != "" {
		// Accept either a URL or an addr file (the same file
		// -dist-addr-file writes), so `gmap-eval -fleet-watch coord.addr`
		// follows the coordinator across a standby failover.
		base := *fleetWatch
		if data, err := os.ReadFile(base); err == nil {
			base = strings.TrimSpace(string(data))
		}
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		if err := fleet.Watch(ctx, os.Stdout, base, *fleetIval); err != nil && ctx.Err() == nil {
			fatal(err)
		}
		return
	}
	if *workerURL != "" || *workerAddr != "" || *distStandby || *distListen != "" {
		df := distFlags{
			listen:         *distListen,
			addrFile:       *distAddr,
			parts:          *distParts,
			leaseTTL:       *distTTL,
			worker:         *workerURL,
			workerAddrFile: *workerAddr,
			standby:        *distStandby,
			healthInterval: *distHealthI,
			healthMisses:   *distHealthM,
			fleetInterval:  *fleetIval,
		}
		if !df.standby && df.listen == "" {
			// Plain worker mode: the sweep's shape comes from the
			// coordinator inside each lease grant. -serve opts the worker
			// into the fleet (exposition server + scrape discovery).
			if err := runWorker(ctx, df.worker, df.workerAddrFile, *serveAddr, *workers, *simWorkers, distLogf); err != nil && ctx.Err() == nil {
				fatal(err)
			}
			return
		}
		spec := api.JobSpec{
			Kind:        api.KindSweep,
			Experiment:  *exp,
			Scale:       *scale,
			ScaleFactor: *scaleFactor,
			Cores:       *cores,
			Seed:        *seed,
		}
		if *benchmarks != "" {
			spec.Benchmarks = strings.Split(*benchmarks, ",")
		}
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		run := runCoordinator
		if df.standby {
			run = runStandby
		}
		if err := run(ctx, spec, df, *checkpoint, w, distLogf); err != nil && ctx.Err() == nil {
			fatal(err)
		}
		return
	}

	opts := gmap.ExperimentOptions{
		Scale:        *scale,
		ScaleFactor:  *scaleFactor,
		Cores:        *cores,
		Seed:         *seed,
		Workers:      *workers,
		SimWorkers:   *simWorkers,
		Checkpoint:   *checkpoint,
		Resume:       *resume,
		Retries:      *retries,
		RetryBackoff: *retryWait,
		Fsync:        *fsync,
		Tolerate:     *tolerate,
		NoTimings:    *noTimings,
		JobTimeout:   *jobTimeout,
		Context:      ctx,
	}
	if *obsSnap != "" || *serveAddr != "" {
		opts.Obs = gmap.NewObsRegistry()
	}
	if *traceOut != "" || *serveAddr != "" {
		opts.Trace = gmap.NewTracer()
	}
	if *attrOut != "" {
		opts.Attr = &gmap.AttrOptions{Threshold: *attrThresh, TopK: *attrTop}
	}
	if *benchmarks != "" {
		opts.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if !*quiet {
		opts.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *serveAddr != "" {
		srv, err := gmap.StartObsServer(ctx, gmap.ServeOptions{
			Addr:     *serveAddr,
			Registry: opts.Obs,
			Tracer:   opts.Trace,
			Progress: func() interface{} { return opts.ProgressSnapshot() },
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Shutdown()
		fmt.Fprintf(os.Stderr, "gmap-eval: serving observability on http://%s\n", srv.Addr())
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	runErr := gmap.Experiments(w, *exp, &opts)
	if *summary != "" {
		if err := writeSummary(*summary, &opts); err != nil {
			fatal(err)
		}
	}
	if *obsSnap != "" {
		if err := writeObsSnapshot(*obsSnap, opts.Obs); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, opts.Trace); err != nil {
			fatal(err)
		}
	}
	if *attrOut != "" {
		if err := writeAttr(*attrOut, opts.Attr.Reports()); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		if ctx.Err() != nil && *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "gmap-eval: interrupted; finished points saved to %s, re-run with -resume\n", *checkpoint)
		}
		fatal(runErr)
	}
}

func writeObsSnapshot(path string, r *gmap.ObsRegistry) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace exports the span log, picking the format from the path:
// .jsonl gets the structured-event stream, anything else the Chrome
// trace-event JSON Perfetto loads.
func writeTrace(path string, tr *gmap.Tracer) error {
	export := tr.WriteChrome
	if strings.HasSuffix(path, ".jsonl") {
		export = tr.WriteJSONL
	}
	if path == "-" {
		return export(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace export: %w", err)
	}
	if err := export(f); err != nil {
		f.Close()
		return fmt.Errorf("trace export %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace export %s: %w", path, err)
	}
	return nil
}

// writeAttr writes the attribution reports, as markdown when the path
// ends in .md and JSON otherwise.
func writeAttr(path string, reports []*gmap.AttrReport) error {
	export := func(w io.Writer) error { return gmap.WriteAttrJSON(w, reports) }
	if strings.HasSuffix(path, ".md") {
		export = func(w io.Writer) error { return gmap.WriteAttrMarkdown(w, reports) }
	}
	if path == "-" {
		return export(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("attribution report: %w", err)
	}
	if err := export(f); err != nil {
		f.Close()
		return fmt.Errorf("attribution report %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("attribution report %s: %w", path, err)
	}
	return nil
}

func writeSummary(path string, opts *gmap.ExperimentOptions) error {
	data, err := json.MarshalIndent(opts.ExecStats(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmap-eval:", err)
	os.Exit(1)
}
