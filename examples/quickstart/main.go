// Quickstart: the complete G-MAP pipeline on one benchmark.
//
// It profiles the kmeans workload's memory reference stream into the
// statistical profile (Π, Q, B, P_S, P_R), generates a 4x-miniaturized
// proxy from it, simulates both on the paper's Table 2 memory hierarchy,
// and compares the metrics — everything the framework does, in ~60 lines.
// It also reproduces the reuse-distance example of Figure 5.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/uteda/gmap"
	"github.com/uteda/gmap/internal/reuse"
)

func main() {
	// 1. Obtain a workload's memory trace. Here: the built-in synthetic
	// kmeans; in production this would come from an instrumented run of
	// a real (possibly proprietary) application.
	tr, err := gmap.BenchmarkTrace("kmeans", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: %d threads, %d memory accesses\n", tr.NumThreads(), tr.NumAccesses())

	// 2. Profile: coalescing, π-profile clustering, stride and reuse
	// statistics. The profile is small, portable and contains no
	// original addresses beyond per-instruction bases.
	profile, err := gmap.ProfileTrace(tr, gmap.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile:  %d static instructions, %d dominant π profiles, %d coalesced requests\n",
		len(profile.Insts), len(profile.Profiles), profile.TotalRequests)

	// 3. Generate a miniaturized clone.
	proxy, err := gmap.Generate(profile, gmap.GenerateOptions{Seed: 1, ScaleFactor: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proxy:    %d warps, %d requests (%.1fx smaller)\n",
		len(proxy.Warps), proxy.Requests, float64(profile.TotalRequests)/float64(proxy.Requests))

	// 4. Simulate both streams on the Table 2 system and compare.
	cfg := gmap.DefaultSimConfig()
	orig, err := gmap.SimulateTrace(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	clone, err := gmap.SimulateProxy(proxy, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("%-22s %10s %10s\n", "metric", "original", "clone")
	row := func(name string, a, b float64) { fmt.Printf("%-22s %10.4f %10.4f\n", name, a, b) }
	row("L1 miss rate", orig.L1MissRate(), clone.L1MissRate())
	row("L2 miss rate", orig.L2MissRate(), clone.L2MissRate())
	row("DRAM row buffer loc.", orig.DRAM.RowBufferLocality(), clone.DRAM.RowBufferLocality())
	row("DRAM avg queue len", orig.DRAM.AvgQueueLen(), clone.DRAM.AvgQueueLen())
	row("DRAM read latency", orig.DRAM.AvgReadLatency(), clone.DRAM.AvgReadLatency())

	// 5. Bonus: the exact reuse-distance example of Figure 5 — accesses
	// X[0..3], X[1..3], X[0] over 2-element cachelines.
	lines := []uint64{0, 0, 1, 1, 0, 1, 1, 0}
	fmt.Println("\nFigure 5 reuse distances (-1 = cold):")
	fmt.Println(" cacheline:", lines)
	fmt.Println(" distance: ", reuse.Distances(lines))
}
