// Command gmap-served is the multi-tenant clone-and-simulate service:
// an HTTP server over a content-addressed profile/result store and an
// admission-controlled, weighted-fair job queue.
//
// Clients POST profiles (or raw traces) to /v1/profiles and /v1/traces,
// then submit clone/sim/sweep jobs to /v1/jobs. Identical submissions
// dedup onto one job and are served from the result cache; admitted
// jobs are journaled and sweep jobs stream runner checkpoints, so a
// killed server resumes its backlog on restart. Observability
// (/metrics, /progress, /trace, /debug/pprof) shares the port.
//
// Usage:
//
//	gmap-served -store /var/lib/gmap -addr :9400
//	gmap-served -addr 127.0.0.1:0 -addr-file gmap.addr -tenant-weights team-a=3,team-b=1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/uteda/gmap/internal/dist"
	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/obs/fleet"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/serve"
	"github.com/uteda/gmap/internal/serve/api"
	"github.com/uteda/gmap/internal/serve/queue"
	"github.com/uteda/gmap/internal/serve/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":9400", "listen address; use :0 or 127.0.0.1:0 for an ephemeral port (the bound address is logged)")
		addrFile  = flag.String("addr-file", "", "write the actually-bound address to this file (for scripts using -addr :0)")
		storeDir  = flag.String("store", "gmap-store", "content-addressed store root (profiles, results, job journal, checkpoints)")
		workers   = flag.Int("workers", 1, "jobs executing concurrently")
		depth     = flag.Int("queue-depth", 64, "admitted-but-not-running backlog bound; beyond it submissions get 429")
		weights   = flag.String("tenant-weights", "", "per-tenant scheduling weights, e.g. team-a=3,team-b=1 (unlisted tenants weigh 1)")
		sweepWkrs = flag.Int("sweep-workers", 0, "runner pool size inside each sweep job (0 = all CPUs)")
		retries   = flag.Int("retries", 0, "re-execute sweep points failing with a transient error up to N times")
		retryWait = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay before a retry, doubled per attempt with jitter")
		fsync     = flag.Bool("fsync", false, "fsync journal/result/checkpoint writes (survives machine crash, not just SIGKILL)")
		defTenant = flag.String("default-tenant", "anonymous", "tenant attributed to requests without an X-Gmap-Tenant header")
		quiet     = flag.Bool("quiet", false, "suppress per-job log lines")
		workerURL = flag.String("worker", "", "run as a distributed-sweep worker against this coordinator URL instead of serving (uses -sweep-workers as the local pool size)")
		distSweep = flag.Bool("dist-sweeps", false, "offer sweep jobs to a distributed worker fleet (workers dial this server's /dist/v1/), falling back to local execution from the same checkpoint if the fleet stalls")
		distDL    = flag.Duration("dist-deadline", 0, "no-progress deadline before a delegated sweep falls back to local execution (0 = 2m; with -dist-sweeps)")
		distParts = flag.Int("dist-parts", 0, "partitions of each delegated sweep's job space (0 = 8; with -dist-sweeps)")
		distTTL   = flag.Duration("dist-lease-ttl", 0, "worker lease heartbeat deadline for delegated sweeps (0 = 30s; with -dist-sweeps)")
		fleetIval = flag.Duration("fleet-interval", 0, "fleet federation scrape cadence for delegated-sweep workers (0 = 2s; with -dist-sweeps)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerURL != "" {
		var logf func(string, ...interface{})
		if !*quiet {
			logf = func(format string, args ...interface{}) {
				log.Printf("gmap-served: "+format, args...)
			}
		}
		err := dist.RunWorker(ctx, dist.WorkerOptions{
			Coordinator: *workerURL,
			Workers:     *sweepWkrs,
			Logf:        logf,
		})
		if err != nil && ctx.Err() == nil {
			fatal(err)
		}
		return
	}

	w, err := parseWeights(*weights)
	if err != nil {
		fatal(err)
	}
	reg := obs.New()
	tracer := obstrace.New()
	st, err := store.Open(*storeDir, nil, reg)
	if err != nil {
		fatal(err)
	}
	opts := api.Options{
		Store: st,
		Queue: queue.Options{
			Workers: *workers,
			Depth:   *depth,
			Weights: w,
		},
		SweepWorkers:  *sweepWkrs,
		Retries:       *retries,
		RetryBackoff:  *retryWait,
		Fsync:         *fsync,
		Obs:           reg,
		Tracer:        tracer,
		DefaultTenant: *defTenant,
	}
	if !*quiet {
		opts.Logf = func(format string, args ...interface{}) {
			log.Printf("gmap-served: "+format, args...)
		}
	}
	var delegate *dist.Delegate
	if *distSweep {
		delegate = dist.NewDelegate(dist.DelegateOptions{
			Parts:    *distParts,
			LeaseTTL: *distTTL,
			Deadline: *distDL,
			Obs:      reg,
			Trace:    tracer,
			Logf:     opts.Logf,
		})
		opts.SweepDelegate = delegate
	}
	svc, err := api.New(opts)
	if err != nil {
		fatal(err)
	}
	if delegate != nil {
		// Federate the delegated-sweep fleet: workers dialing this
		// server's /dist/v1/ self-announce their exposition URLs, the
		// federator scrapes them, and /fleet/* rides the service mux.
		// The owner status is composite — the live delegated sweep (if
		// any) plus the local job queue.
		fed := fleet.New(fleet.Options{
			Self:     "gmap-served",
			Registry: reg,
			Tracer:   tracer,
			Interval: *fleetIval,
			Targets: func() []fleet.Source {
				var srcs []fleet.Source
				if st := delegate.Status(); st != nil {
					for _, ws := range st.Workers {
						if ws.ObsURL != "" {
							srcs = append(srcs, fleet.Source{Name: ws.Name, URL: ws.ObsURL})
						}
					}
				}
				return srcs
			},
			Status: func() interface{} {
				return map[string]interface{}{
					"dist":  delegate.Status(),
					"queue": svc.Queue().Stats(),
				}
			},
			Logf: opts.Logf,
		})
		svc.SetFleet(fed.Handler())
		go fed.Run(ctx)
	}
	srv, err := serve.Start(ctx, "gmap-served", *addr, svc.Handler())
	if err != nil {
		fatal(err)
	}
	log.Printf("gmap-served: listening on http://%s (store %s, %d worker(s), depth %d)",
		srv.Addr(), *storeDir, *workers, *depth)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	if err := svc.Start(ctx); err != nil {
		log.Printf("gmap-served: recovery: %v", err)
	}

	<-ctx.Done()
	log.Printf("gmap-served: shutting down (journaled jobs resume on restart)")
	if err := srv.Shutdown(); err != nil {
		log.Printf("gmap-served: shutdown: %v", err)
	}
	svc.Wait()
}

// parseWeights parses "a=3,b=1" into a weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	m := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenant-weights entry %q (want name=weight)", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad weight %q for tenant %q (want a positive integer)", val, name)
		}
		m[name] = n
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmap-served:", err)
	os.Exit(1)
}
