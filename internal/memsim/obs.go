package memsim

import (
	"fmt"

	"github.com/uteda/gmap/internal/obs"
)

// simObs holds the simulator's pre-resolved observability handles. A nil
// *simObs is the disabled state: every call site guards with one
// predictable branch (either `s.obs != nil` around a sampling block or a
// nil-safe handle method) and the simulation itself never reads obs
// state, so metrics are bit-identical with observability on or off — a
// property enforced by TestObsInvariance.
type simObs struct {
	// Per-core cycle-sampled series.
	queueDepth []*obs.Sampler // resident (active) warps per core
	mshrDepth  []*obs.Sampler // in-flight MSHR entries per core

	// Whole-machine cycle-sampled series.
	l1MissRate *obs.Sampler // cumulative L1 miss rate over time
	l2MissRate *obs.Sampler
	inFlight   *obs.Sampler // outstanding DRAM reads (flights)

	// Per-launch series: one point per kernel launch, keyed by the
	// launch's retirement cycle.
	launchL1 *obs.Sampler
	launchL2 *obs.Sampler

	// Scheduler stall reasons, counted per core-cycle that fails to
	// issue.
	stallMSHR    *obs.Counter // issue slot lost to a full MSHR file
	stallBarrier *obs.Counter // every candidate warp parked at a barrier
	stallMem     *obs.Counter // every candidate warp blocked on DRAM
	stallSleep   *obs.Counter // warps exist but become ready later
	idleEmpty    *obs.Counter // core has no resident warps at all

	requests      *obs.Counter
	launches      *obs.Counter
	barriers      *obs.Counter // barrier arrivals
	bankConflicts *obs.Counter // same-cycle accesses to one L2 bank

	// bankStamp[b] = cycle+1 of bank b's last access this cycle; a repeat
	// stamp within one cycle is a conflict.
	bankStamp []uint64

	// Plain (non-atomic) hot-path tallies. The scheduler loop is single
	// threaded, so counting here and publishing once in flush() avoids an
	// atomic add per core-cycle; the registry counters above carry the
	// totals only after Run returns.
	nStallMSHR    uint64
	nStallBarrier uint64
	nStallMem     uint64
	nStallSleep   uint64
	nIdleEmpty    uint64
	nRequests     uint64
	nBarriers     uint64
	nBankConflict uint64

	// Incremental per-core occupancy shadows, maintained at warp state
	// transitions so stall classification is O(1) instead of rescanning
	// the core's warps every stalled cycle. waiting[c] counts warps
	// blocked on DRAM, blocked[c] counts warps parked at a barrier.
	waiting []int
	blocked []int
}

// newSimObs resolves every handle against r, or returns nil (disabled)
// when r is nil.
func newSimObs(r *obs.Registry, cores, banks int) *simObs {
	if r == nil {
		return nil
	}
	o := &simObs{
		queueDepth: make([]*obs.Sampler, cores),
		mshrDepth:  make([]*obs.Sampler, cores),
		l1MissRate: r.Sampler("memsim.l1_miss_rate", 0),
		l2MissRate: r.Sampler("memsim.l2_miss_rate", 0),
		inFlight:   r.Sampler("memsim.dram_inflight", 0),
		launchL1:   r.Sampler("memsim.launch.l1_miss_rate", 0),
		launchL2:   r.Sampler("memsim.launch.l2_miss_rate", 0),

		stallMSHR:    r.Counter("memsim.sched.stall_mshr"),
		stallBarrier: r.Counter("memsim.sched.stall_barrier"),
		stallMem:     r.Counter("memsim.sched.stall_mem"),
		stallSleep:   r.Counter("memsim.sched.stall_sleep"),
		idleEmpty:    r.Counter("memsim.sched.idle_empty"),

		requests:      r.Counter("memsim.requests"),
		launches:      r.Counter("memsim.launches"),
		barriers:      r.Counter("memsim.sched.barrier_arrivals"),
		bankConflicts: r.Counter("memsim.l2.bank_conflicts"),

		bankStamp: make([]uint64, banks),
		waiting:   make([]int, cores),
		blocked:   make([]int, cores),
	}
	for c := 0; c < cores; c++ {
		o.queueDepth[c] = r.Sampler(fmt.Sprintf("memsim.core%d.warp_queue_depth", c), 0)
		o.mshrDepth[c] = r.Sampler(fmt.Sprintf("memsim.core%d.mshr_inflight", c), 0)
	}
	return o
}

// sampleCycle records the per-core and whole-machine series for one
// simulated cycle. Called once per scheduler iteration when enabled; the
// samplers' stride check keeps the steady-state cost to one atomic load
// per series.
func (s *Simulator) sampleCycle(cycle uint64) {
	o := s.obs
	// Every memsim sampler is offered the same cycle sequence, so they
	// all advance in lockstep: one Due check on the unconditionally
	// sampled dram_inflight series gates the whole pass, and the
	// steady-state cost per scheduler iteration is a single atomic load.
	if !o.inFlight.Due(cycle) {
		return
	}
	for c := range s.cores {
		core := &s.cores[c]
		o.queueDepth[c].Sample(cycle, float64(len(core.active)))
		o.mshrDepth[c].Sample(cycle, float64(core.mshr.InFlight()))
	}
	var l1, l1acc uint64
	for c := range s.cores {
		l1 += s.cores[c].l1.Stats.Misses
		l1acc += s.cores[c].l1.Stats.Accesses
	}
	if l1acc > 0 {
		o.l1MissRate.Sample(cycle, float64(l1)/float64(l1acc))
	}
	if l2 := s.l2.Stats(); l2.Accesses > 0 {
		o.l2MissRate.Sample(cycle, l2.MissRate())
	}
	o.inFlight.Sample(cycle, float64(len(s.flights)))
}

// noteStall classifies why core c failed to issue this cycle, with
// priority mem > barrier > sleep. O(1): the per-core occupancy shadows
// are maintained incrementally at warp state transitions, so stalled
// phases never rescan the core's resident warps.
func (s *Simulator) noteStall(c int) {
	o := s.obs
	switch {
	case len(s.cores[c].active) == 0:
		o.nIdleEmpty++
	case o.waiting[c] > 0:
		o.nStallMem++
	case o.blocked[c] > 0:
		o.nStallBarrier++
	default:
		o.nStallSleep++
	}
}

// noteL2Bank flags same-cycle accesses to one L2 bank as bank conflicts.
// Stamps are cycle+1 so the zero value never aliases cycle 0.
func (o *simObs) noteL2Bank(bank int, cycle uint64) {
	if o.bankStamp[bank] == cycle+1 {
		o.nBankConflict++
		return
	}
	o.bankStamp[bank] = cycle + 1
}

// flush publishes the hot-path tallies to their registry counters and
// zeroes them. Run defers it, so the counters hold the run's totals on
// both the success and the no-forward-progress return paths.
func (o *simObs) flush() {
	o.stallMSHR.Add(o.nStallMSHR)
	o.stallBarrier.Add(o.nStallBarrier)
	o.stallMem.Add(o.nStallMem)
	o.stallSleep.Add(o.nStallSleep)
	o.idleEmpty.Add(o.nIdleEmpty)
	o.requests.Add(o.nRequests)
	o.barriers.Add(o.nBarriers)
	o.bankConflicts.Add(o.nBankConflict)
	o.nStallMSHR, o.nStallBarrier, o.nStallMem, o.nStallSleep = 0, 0, 0, 0
	o.nIdleEmpty, o.nRequests, o.nBarriers, o.nBankConflict = 0, 0, 0, 0
}

// noteLaunch records one retired launch's metric window.
func (o *simObs) noteLaunch(lm LaunchMetrics, cycle uint64) {
	o.launches.Inc()
	if lm.L1.Accesses > 0 {
		o.launchL1.Sample(cycle, lm.L1.MissRate())
	}
	if lm.L2.Accesses > 0 {
		o.launchL2.Sample(cycle, lm.L2.MissRate())
	}
}
