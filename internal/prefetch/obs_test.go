package prefetch

import (
	"testing"

	"github.com/uteda/gmap/internal/obs"
)

// scripted returns fixed candidate lists per call.
type scripted struct {
	out   [][]uint64
	calls int
}

func (s *scripted) Observe(uint64, int, uint64, bool) []uint64 {
	if s.calls >= len(s.out) {
		s.calls++
		return nil
	}
	o := s.out[s.calls]
	s.calls++
	return o
}
func (s *scripted) Reset() { s.calls = 0 }

func TestInstrumentNilPassThrough(t *testing.T) {
	p := &scripted{}
	if got := Instrument(p, nil, "prefetch.l1"); got != Prefetcher(p) {
		t.Error("nil registry must return the prefetcher unchanged")
	}
	if got := Instrument(nil, obs.New(), "prefetch.l1"); got != nil {
		t.Error("nil prefetcher must stay nil")
	}
}

func TestInstrumentCountsIssuedUsefulLate(t *testing.T) {
	r := obs.New()
	p := Instrument(&scripted{out: [][]uint64{{0x100, 0x200}}}, r, "prefetch.l1")
	// First access triggers two prefetches.
	p.Observe(0x4, 0, 0x000, true)
	// Demand hit on a prefetched line → useful.
	p.Observe(0x4, 0, 0x100, false)
	// Demand miss on the other prefetched line → late.
	p.Observe(0x4, 0, 0x200, true)
	// Untracked line → no classification.
	p.Observe(0x4, 0, 0x900, true)
	if got := r.Counter("prefetch.l1.issued").Value(); got != 2 {
		t.Errorf("issued = %d, want 2", got)
	}
	if got := r.Counter("prefetch.l1.useful").Value(); got != 1 {
		t.Errorf("useful = %d, want 1", got)
	}
	if got := r.Counter("prefetch.l1.late").Value(); got != 1 {
		t.Errorf("late = %d, want 1", got)
	}
}

// TestInstrumentClassifiesOnce checks a tracked line resolves exactly one
// classification — the second demand for it counts nothing.
func TestInstrumentClassifiesOnce(t *testing.T) {
	r := obs.New()
	p := Instrument(&scripted{out: [][]uint64{{0x100}}}, r, "pf")
	p.Observe(0, 0, 0x0, true)
	p.Observe(0, 0, 0x100, false)
	p.Observe(0, 0, 0x100, false)
	if got := r.Counter("pf.useful").Value(); got != 1 {
		t.Errorf("useful = %d, want 1", got)
	}
}

// TestInstrumentBoundedTracking fills the FIFO past its capacity and
// checks evicted lines are no longer classified.
func TestInstrumentBoundedTracking(t *testing.T) {
	r := obs.New()
	outs := make([][]uint64, trackedLines+1)
	for i := range outs {
		outs[i] = []uint64{uint64(i+1) << 8}
	}
	p := Instrument(&scripted{out: outs}, r, "pf")
	for range outs {
		p.Observe(0, 0, 0xdead0000, true)
	}
	// The first issued line (0x100) was evicted to make room.
	p.Observe(0, 0, 0x100, false)
	if got := r.Counter("pf.useful").Value(); got != 0 {
		t.Errorf("evicted line still classified: useful = %d", got)
	}
	// The newest line is still tracked.
	p.Observe(0, 0, outs[len(outs)-1][0], false)
	if got := r.Counter("pf.useful").Value(); got != 1 {
		t.Errorf("newest line not tracked: useful = %d", got)
	}
}

// TestInstrumentTransparent verifies the wrapper forwards the wrapped
// scheme's candidates verbatim — the property the obs-invariance test
// depends on.
func TestInstrumentTransparent(t *testing.T) {
	mk := func() (*Stride, error) { return NewStride(DefaultStrideConfig()) }
	plain, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	inner, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Instrument(inner, obs.New(), "pf")
	for i := 0; i < 100; i++ {
		addr := uint64(i) * 128
		a := plain.Observe(0x40, 0, addr, true)
		b := wrapped.Observe(0x40, 0, addr, true)
		if len(a) != len(b) {
			t.Fatalf("step %d: %v vs %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("step %d: %v vs %v", i, a, b)
			}
		}
	}
}

func TestInstrumentReset(t *testing.T) {
	r := obs.New()
	inst := Instrument(&scripted{out: [][]uint64{{0x100}}}, r, "pf").(*Instrumented)
	inst.Observe(0, 0, 0x0, true)
	inst.Reset()
	// The tracked line must be forgotten after Reset.
	inst.Observe(0, 0, 0x100, false)
	if got := r.Counter("pf.useful").Value(); got != 0 {
		t.Errorf("useful = %d after Reset, want 0", got)
	}
	if inst.Unwrap() == nil {
		t.Error("Unwrap lost the inner prefetcher")
	}
}
