// Package runner is the experiment-execution engine behind the
// evaluation harness: a fixed-size worker pool draining a bounded job
// queue with deterministic result ordering, per-job panic isolation and
// optional timeouts, context cancellation, JSONL checkpoint/resume keyed
// by stable job hashes, bounded retry of transient job failures, and an
// instrumentation hook reporting progress (jobs/sec, ETA) plus a
// machine-readable run summary.
//
// Jobs must be independent and deterministic: given the same key they
// must compute the same value on every run. Under that contract a
// parallel run is observably identical to a serial one (results come
// back in submission order), a checkpointed value recorded by an
// interrupted run can substitute for re-execution, and a retried
// transient failure converges to the same value a fault-free run would
// have produced.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/rng"
)

// Options configures one Run.
type Options struct {
	// Workers is the worker-pool size; <= 0 selects runtime.NumCPU().
	Workers int
	// Timeout bounds each job attempt's execution; 0 means no per-job
	// limit. A timed-out job records a deadline error but cannot be
	// preempted mid-computation: its goroutine is abandoned and the
	// worker slot moves on. Timeouts are not retried — a deterministic
	// job that overran its deadline once will overrun it again.
	Timeout time.Duration
	// Retries is how many times a job whose error classifies as
	// transient (fault.IsTransient) is re-executed before its failure is
	// recorded; 0 disables retry. Fatal errors are never retried.
	Retries int
	// RetryBackoff is the base delay before the first retry; each
	// further retry doubles it, plus a deterministic per-(key, attempt)
	// jitter of up to half the base. <= 0 retries immediately.
	RetryBackoff time.Duration
	// Checkpoint, when non-empty, names a JSONL file successful job
	// results are streamed to as they complete, keyed by Job.Key. A
	// checkpoint append that fails aborts the run: progress that cannot
	// be recorded must not be silently recomputed-from-zero later.
	Checkpoint string
	// Resume loads Checkpoint before running and skips jobs whose key
	// already has a recorded value (failed jobs are never recorded, so
	// they re-run). A torn trailing line — the signature of a killed
	// run — is salvaged around and truncated from the file before
	// appending; checkpoints dominated by re-recorded keys are compacted
	// through an atomic rename.
	Resume bool
	// ResumeStrict upgrades a total resume mismatch from a silent full
	// re-run to an error: if the checkpoint holds entries but not one of
	// them matches any of this run's job keys, the checkpoint was
	// recorded by a different sweep (other experiment, seed, scale, ...)
	// and Run fails naming the first mismatched job key and a sample
	// checkpoint key, instead of quietly recomputing everything and
	// interleaving a second universe into the file. A partial overlap is
	// a normal resume and never errors.
	ResumeStrict bool
	// Fsync, when set, syncs the checkpoint file after every append,
	// extending the durability guarantee from process death to machine
	// crash at the cost of one fsync per job.
	Fsync bool
	// FS routes all checkpoint I/O; nil selects the real filesystem.
	// Tests substitute a fault.InjectFS to exercise crash consistency.
	FS fault.FS
	// Inject, when non-nil, is a seeded schedule of artificial transient
	// job failures checked before each attempt (testing and soak only).
	Inject *fault.Schedule
	// OnEvent, when non-nil, receives one Event per finished job (done,
	// failed, or skipped). Events are delivered serially.
	OnEvent func(Event)
	// Sink, when non-nil, receives each successfully executed job's
	// result as a checkpoint event — the key, the marshaled JSON value
	// (the exact bytes a checkpoint line would carry), and the job's
	// execution time. Calls are serialized and happen after any
	// checkpoint append; restored (Skipped) jobs are not re-delivered. A
	// sink failure aborts the run like a failed checkpoint append: work
	// whose results cannot be delivered must not silently continue. The
	// distributed worker streams results to its coordinator through this
	// seam.
	Sink func(key string, value json.RawMessage, elapsed time.Duration) error
	// Obs, when non-nil, records execution instrumentation: per-job wall
	// time ("runner.job_ns"), checkpoint-append latency
	// ("runner.checkpoint_append_ns"), job outcome and retry counters,
	// checkpoint-salvage counters and the pool size ("runner.workers").
	// Purely observational: results, ordering and checkpoints are
	// identical with or without it.
	Obs *obs.Registry
	// Trace, when non-nil, records hierarchical spans of the run: a
	// "runner.run" root, one "runner.worker" lane per pool worker, a
	// "runner.job" span per executed job with per-attempt children, and
	// checkpoint-append spans. Purely observational, like Obs.
	Trace *obstrace.Tracer
	// TraceSpan nests the run's spans under an existing span (e.g. a
	// figure sweep) instead of a fresh root; it takes precedence over
	// Trace for parenting.
	TraceSpan *obstrace.Span
}

// runSpan resolves the run's parent span from TraceSpan/Trace.
func (o *Options) runSpan(jobs, workers int) *obstrace.Span {
	attrs := []obstrace.Attr{
		obstrace.Int("jobs", int64(jobs)),
		obstrace.Int("workers", int64(workers)),
	}
	if o.TraceSpan != nil {
		return o.TraceSpan.Child("runner.run", attrs...)
	}
	return o.Trace.Root("runner.run", attrs...)
}

// fs returns the effective checkpoint filesystem.
func (o *Options) fs() fault.FS {
	if o.FS == nil {
		return fault.OS
	}
	return o.FS
}

// Job is one unit of work. Key is the job's stable identity across
// process restarts (see JobKey); it must be unique within a Run when
// checkpointing is enabled.
type Job[R any] struct {
	Key string
	Run func(ctx context.Context) (R, error)
}

// Result pairs one job with its outcome. Run returns results in
// submission order regardless of completion order.
type Result[R any] struct {
	Key   string
	Value R
	// Err records this job's failure (error return, panic, timeout, or
	// cancellation before dispatch) without aborting the rest of the run.
	Err error
	// Skipped marks a value restored from the checkpoint rather than
	// recomputed.
	Skipped bool
	// Attempts is how many times the job executed (1 for a first-try
	// success, 0 when Skipped or never dispatched).
	Attempts int
	// Elapsed is the job's total wall-clock execution time across all
	// attempts, excluding backoff sleeps (0 when Skipped).
	Elapsed time.Duration
}

// Run drains jobs through a worker pool and returns one Result per job,
// in order. Individual job failures are recorded in their Result and do
// not abort the run; the returned error is non-nil only for
// infrastructure failures (unusable or unwritable checkpoint file) or
// context cancellation, in which case already-computed results are still
// returned.
func Run[R any](ctx context.Context, opts Options, jobs []Job[R]) ([]Result[R], Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]Result[R], len(jobs))
	done := make([]bool, len(jobs))
	tr := newTracker(len(jobs), workers, opts.OnEvent)
	runSpan := opts.runSpan(len(jobs), workers)
	defer runSpan.End()
	jobTime := opts.Obs.Histogram("runner.job_ns")
	ckptTime := opts.Obs.Histogram("runner.checkpoint_append_ns")
	jobsDone := opts.Obs.Counter("runner.jobs_done")
	jobsFailed := opts.Obs.Counter("runner.jobs_failed")
	jobsSkipped := opts.Obs.Counter("runner.jobs_skipped")
	jobRetries := opts.Obs.Counter("runner.job_retries")
	opts.Obs.Gauge("runner.workers").Set(int64(workers))

	// Restore checkpointed results before dispatching anything so the
	// pool only sees genuinely pending work. Salvage makes the file
	// append-safe again: a torn tail is truncated so the next entry
	// cannot glue onto it and be lost on a later resume.
	var restored map[string]json.RawMessage
	var restoredSample string
	if opts.Resume && opts.Checkpoint != "" {
		m, salvage, err := SalvageCheckpoint(opts.fs(), opts.Checkpoint)
		if err != nil {
			return results, tr.stats(), err
		}
		restored = m
		restoredSample = salvage.FirstKey
		recordSalvage(opts.Obs, salvage)
		if salvage.Lines >= compactWasteThreshold && salvage.Lines > 2*salvage.Entries {
			if _, err := CompactCheckpoint(opts.fs(), opts.Checkpoint); err != nil {
				return results, tr.stats(), err
			}
			opts.Obs.Counter("runner.checkpoint_compactions").Inc()
		}
	}
	var pending []int
	matched := 0
	for i := range jobs {
		if raw, ok := restored[jobs[i].Key]; ok {
			matched++
			var v R
			if err := json.Unmarshal(raw, &v); err == nil {
				results[i] = Result[R]{Key: jobs[i].Key, Value: v, Skipped: true}
				done[i] = true
				jobsSkipped.Inc()
				tr.finish(JobSkipped, jobs[i].Key, nil, 0, 0)
				continue
			}
			// Unreadable entry (e.g. the job's result type changed):
			// fall through and recompute.
		}
		pending = append(pending, i)
	}
	if opts.ResumeStrict && len(restored) > 0 && len(jobs) > 0 && matched == 0 {
		opts.Obs.Counter("runner.resume_mismatches").Inc()
		return results, tr.stats(), fmt.Errorf(
			"runner: resume mismatch: checkpoint %s holds %d recorded job(s) (e.g. key %s) but none match this run's %d job(s) (first job key %s); it was recorded by a different sweep — point -checkpoint at the matching file or remove it",
			opts.Checkpoint, len(restored), restoredSample, len(jobs), jobs[0].Key)
	}

	var ckpt *checkpointWriter
	if opts.Checkpoint != "" {
		w, err := openCheckpoint(opts.fs(), opts.Checkpoint, opts.Fsync)
		if err != nil {
			return results, tr.stats(), err
		}
		ckpt = w
	}

	// A checkpoint append that fails cancels the whole run: continuing
	// would execute jobs whose results are silently unrecorded.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var ckptErr error // guarded by mu; first append failure wins

	// The queue is bounded by the pool size so a huge sweep never
	// materializes as channel backlog, and the feeder notices
	// cancellation promptly.
	queue := make(chan int, workers)
	var mu sync.Mutex // serializes tracker events, checkpoint appends, ckptErr
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker gets its own trace lane so its serially-executed
			// job spans nest cleanly instead of overlapping siblings'.
			workerSpan := runSpan.ChildTrack("runner.worker", obstrace.Int("worker", int64(w)))
			defer workerSpan.End()
			for idx := range queue {
				if runCtx.Err() != nil {
					continue // leave the job unexecuted; marked below
				}
				jobSpan := workerSpan.Child("runner.job", obstrace.String("key", jobs[idx].Key))
				res := executeWithRetry(runCtx, opts, jobs[idx], jobSpan)
				jobSpan.Set(obstrace.Int("attempts", int64(res.Attempts)))
				if res.Err != nil {
					jobSpan.Set(obstrace.String("error", res.Err.Error()))
				}
				jobSpan.End()
				results[idx] = res
				done[idx] = true
				jobTime.Observe(uint64(res.Elapsed))
				if res.Attempts > 1 {
					jobRetries.Add(uint64(res.Attempts - 1))
				}
				mu.Lock()
				if res.Err == nil && ckpt != nil && ckptErr == nil {
					ckptSpan := workerSpan.Child("runner.checkpoint", obstrace.String("key", res.Key))
					ckptStart := time.Now()
					if err := ckpt.append(res.Key, res.Value, res.Elapsed); err != nil {
						ckptErr = fmt.Errorf("runner: checkpoint append to %s failed: %w", opts.Checkpoint, err)
						cancelRun()
					}
					ckptTime.Observe(uint64(time.Since(ckptStart)))
					ckptSpan.End()
				}
				if res.Err == nil && opts.Sink != nil && ckptErr == nil {
					raw, merr := json.Marshal(res.Value)
					if merr == nil {
						merr = opts.Sink(res.Key, raw, res.Elapsed)
					}
					if merr != nil {
						ckptErr = fmt.Errorf("runner: result sink for job %q failed: %w", res.Key, merr)
						cancelRun()
					}
				}
				if res.Err != nil {
					jobsFailed.Inc()
					tr.finish(JobFailed, res.Key, res.Err, res.Elapsed, res.Attempts)
				} else {
					jobsDone.Inc()
					tr.finish(JobDone, res.Key, nil, res.Elapsed, res.Attempts)
				}
				mu.Unlock()
			}
		}(w)
	}
feed:
	for _, idx := range pending {
		select {
		case queue <- idx:
		case <-runCtx.Done():
			break feed
		}
	}
	close(queue)
	wg.Wait()

	var err error
	if ckpt != nil {
		if cerr := ckpt.close(); cerr != nil && ckptErr == nil {
			ckptErr = fmt.Errorf("runner: closing checkpoint %s: %w", opts.Checkpoint, cerr)
		}
	}
	switch {
	case ckptErr != nil:
		err = ckptErr
	case ctx.Err() != nil:
		err = ctx.Err()
	}
	if err != nil {
		for _, idx := range pending {
			if !done[idx] {
				results[idx] = Result[R]{Key: jobs[idx].Key, Err: fmt.Errorf("runner: job %q not run: %w", jobs[idx].Key, err)}
			}
		}
	}
	return results, tr.stats(), err
}

// recordSalvage mirrors checkpoint-recovery outcomes into obs counters.
func recordSalvage(reg *obs.Registry, s Salvage) {
	if reg == nil {
		return
	}
	if s.TornBytes > 0 {
		reg.Counter("runner.checkpoint_torn_bytes").Add(uint64(s.TornBytes))
	}
	if s.BadLines > 0 {
		reg.Counter("runner.checkpoint_bad_lines").Add(uint64(s.BadLines))
	}
	if s.Truncated {
		reg.Counter("runner.checkpoint_salvages").Inc()
	}
}

// executeWithRetry runs one job, re-executing it after a
// transient-classified failure up to opts.Retries times. Each attempt
// gets its own timeout; backoff sleeps are context-aware and excluded
// from the recorded Elapsed.
func executeWithRetry[R any](ctx context.Context, opts Options, job Job[R], jobSpan *obstrace.Span) Result[R] {
	var res Result[R]
	var total time.Duration
	for attempt := 1; ; attempt++ {
		attemptSpan := jobSpan.Child("runner.attempt", obstrace.Int("attempt", int64(attempt)))
		res = execute(ctx, opts, job, attempt, attemptSpan)
		if res.Err != nil {
			attemptSpan.Set(obstrace.String("error", res.Err.Error()))
		}
		attemptSpan.End()
		total += res.Elapsed
		res.Attempts = attempt
		res.Elapsed = total
		if res.Err == nil || attempt > opts.Retries || !fault.IsTransient(res.Err) || ctx.Err() != nil {
			return res
		}
		if d := RetryDelay(opts.RetryBackoff, job.Key, attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return res
			}
		}
	}
}

// RetryDelay computes the backoff before the retry that follows a failed
// attempt: base doubled per prior attempt (capped), plus a deterministic
// per-(key, attempt) jitter of up to base/2 so synchronized workers
// hitting a shared contended resource spread out identically on replay.
// Exported for the distributed layer, whose workers reuse the exact
// same policy when the coordinator drops out mid-sweep.
func RetryDelay(base time.Duration, key string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := base << shift
	h := rng.Mix64(uint64(attempt))
	for _, b := range []byte(key) {
		h = rng.Mix64(h ^ uint64(b))
	}
	jitter := time.Duration(h % uint64(base/2+1))
	return d + jitter
}

// execute runs one job attempt with panic isolation and an optional
// deadline. The job runs on its own goroutine so a panic unwinds there
// and a timed-out computation can be abandoned without killing the
// worker. When an injection schedule is set, it is consulted before the
// job body runs.
func execute[R any](ctx context.Context, opts Options, job Job[R], attempt int, span *obstrace.Span) Result[R] {
	res := Result[R]{Key: job.Key}
	if err := opts.Inject.Check(job.Key, attempt); err != nil {
		res.Err = err
		return res
	}
	// The attempt span rides the job context so the body can parent its
	// own spans (e.g. memsim.run) under this attempt.
	jctx := obstrace.NewContext(ctx, span)
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(jctx, opts.Timeout)
		defer cancel()
	}
	type outcome struct {
		val R
		err error
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("runner: job %q panicked: %v", job.Key, p)}
			}
		}()
		v, err := job.Run(jctx)
		ch <- outcome{val: v, err: err}
	}()
	select {
	case o := <-ch:
		res.Value, res.Err = o.val, o.err
	case <-jctx.Done():
		res.Err = fmt.Errorf("runner: job %q: %w", job.Key, jctx.Err())
	}
	res.Elapsed = time.Since(start)
	return res
}
