package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"

	"github.com/uteda/gmap/internal/fault"
)

// Epoch fencing (DESIGN.md §14). Every coordinator incarnation over a
// ledger claims a monotonically increasing epoch, persisted in a tiny
// sidecar file next to the ledger. Leases, heartbeats and result
// batches all carry the epoch they were granted under, and every
// mutating operation re-reads the sidecar before touching the ledger:
// a coordinator that discovers a higher persisted epoch has been
// superseded by a standby takeover and permanently fences itself, so a
// deposed coordinator can never append to a ledger someone else now
// owns — the split-brain guard that makes takeover safe without any
// coordination channel beyond the shared filesystem.

// ErrStaleEpoch reports traffic fenced to an older coordinator epoch:
// either the request carried an epoch that is no longer current, or the
// coordinator itself discovered it has been deposed. Workers treat it
// exactly like a lost lease — abandon the shard and re-lease (the new
// coordinator re-issues the remaining keys) — and over HTTP it maps to
// 409 Conflict, because retrying the same request verbatim can never
// succeed.
var ErrStaleEpoch = errors.New("dist: stale coordinator epoch")

// EpochPath is the sidecar file recording the current coordinator epoch
// for the ledger.
func EpochPath(ledger string) string { return ledger + ".epoch" }

// JournalPath is the lease journal that rides alongside the ledger: one
// best-effort JSONL line per lease-state transition, keyed by lease id.
// Standbys tail it to distinguish "coordinator dead" from "coordinator
// busy", and operators read it to reconstruct who held what when.
func JournalPath(ledger string) string { return ledger + ".leases" }

// epochRecord is the sidecar file's JSON payload.
type epochRecord struct {
	Epoch uint64 `json:"epoch"`
}

// ReadEpoch returns the persisted coordinator epoch for ledger; a
// missing sidecar is epoch 0 (no coordinator has ever claimed it).
func ReadEpoch(fsys fault.FS, ledger string) (uint64, error) {
	if fsys == nil {
		fsys = fault.OS
	}
	f, err := fsys.Open(EpochPath(ledger))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("dist: reading epoch file: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, 1<<10))
	if err != nil {
		return 0, fmt.Errorf("dist: reading epoch file: %w", err)
	}
	var rec epochRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return 0, fmt.Errorf("dist: epoch file %s is corrupt: %w", EpochPath(ledger), err)
	}
	return rec.Epoch, nil
}

// writeEpoch persists epoch atomically: temp file, fsync, rename. A
// crash at any byte leaves either the old record or the new one, never
// a torn mix, so ReadEpoch can always answer.
func writeEpoch(fsys fault.FS, ledger string, epoch uint64) error {
	path := EpochPath(ledger)
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("dist: writing epoch file: %w", err)
	}
	data, err := json.Marshal(epochRecord{Epoch: epoch})
	if err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("dist: writing epoch file: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("dist: syncing epoch file: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("dist: closing epoch file: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("dist: installing epoch file: %w", err)
	}
	return nil
}

// WriteAddrFile atomically publishes a coordinator address (host:port)
// to path: temp file then rename, so a worker re-reading the file mid-
// rewrite sees either the old address or the new one, never a torn
// prefix. The standby rewrites this file on takeover; workers re-read
// it before every retry.
func WriteAddrFile(fsys fault.FS, path, addr string) error {
	if fsys == nil {
		fsys = fault.OS
	}
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("dist: writing addr file: %w", err)
	}
	if _, err := f.Write([]byte(addr + "\n")); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("dist: writing addr file: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("dist: syncing addr file: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("dist: closing addr file: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("dist: installing addr file: %w", err)
	}
	return nil
}
