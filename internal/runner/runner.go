// Package runner is the experiment-execution engine behind the
// evaluation harness: a fixed-size worker pool draining a bounded job
// queue with deterministic result ordering, per-job panic isolation and
// optional timeouts, context cancellation, JSONL checkpoint/resume keyed
// by stable job hashes, and an instrumentation hook reporting progress
// (jobs/sec, ETA) plus a machine-readable run summary.
//
// Jobs must be independent and deterministic: given the same key they
// must compute the same value on every run. Under that contract a
// parallel run is observably identical to a serial one (results come
// back in submission order), and a checkpointed value recorded by an
// interrupted run can substitute for re-execution.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/uteda/gmap/internal/obs"
)

// Options configures one Run.
type Options struct {
	// Workers is the worker-pool size; <= 0 selects runtime.NumCPU().
	Workers int
	// Timeout bounds each job's execution; 0 means no per-job limit. A
	// timed-out job records a deadline error but cannot be preempted
	// mid-computation: its goroutine is abandoned and the worker slot
	// moves on.
	Timeout time.Duration
	// Checkpoint, when non-empty, names a JSONL file successful job
	// results are streamed to as they complete, keyed by Job.Key.
	Checkpoint string
	// Resume loads Checkpoint before running and skips jobs whose key
	// already has a recorded value (failed jobs are never recorded, so
	// they re-run). Corrupt or truncated trailing lines — the signature
	// of a killed run — are ignored.
	Resume bool
	// OnEvent, when non-nil, receives one Event per finished job (done,
	// failed, or skipped). Events are delivered serially.
	OnEvent func(Event)
	// Obs, when non-nil, records execution instrumentation: per-job wall
	// time ("runner.job_ns"), checkpoint-append latency
	// ("runner.checkpoint_append_ns"), job outcome counters and the pool
	// size ("runner.workers"). Purely observational: results, ordering
	// and checkpoints are identical with or without it.
	Obs *obs.Registry
}

// Job is one unit of work. Key is the job's stable identity across
// process restarts (see JobKey); it must be unique within a Run when
// checkpointing is enabled.
type Job[R any] struct {
	Key string
	Run func(ctx context.Context) (R, error)
}

// Result pairs one job with its outcome. Run returns results in
// submission order regardless of completion order.
type Result[R any] struct {
	Key   string
	Value R
	// Err records this job's failure (error return, panic, timeout, or
	// cancellation before dispatch) without aborting the rest of the run.
	Err error
	// Skipped marks a value restored from the checkpoint rather than
	// recomputed.
	Skipped bool
	// Elapsed is the job's wall-clock execution time (0 when Skipped).
	Elapsed time.Duration
}

// Run drains jobs through a worker pool and returns one Result per job,
// in order. Individual job failures are recorded in their Result and do
// not abort the run; the returned error is non-nil only for
// infrastructure failures (unusable checkpoint file) or context
// cancellation, in which case already-computed results are still
// returned.
func Run[R any](ctx context.Context, opts Options, jobs []Job[R]) ([]Result[R], Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]Result[R], len(jobs))
	done := make([]bool, len(jobs))
	tr := newTracker(len(jobs), workers, opts.OnEvent)
	jobTime := opts.Obs.Histogram("runner.job_ns")
	ckptTime := opts.Obs.Histogram("runner.checkpoint_append_ns")
	jobsDone := opts.Obs.Counter("runner.jobs_done")
	jobsFailed := opts.Obs.Counter("runner.jobs_failed")
	jobsSkipped := opts.Obs.Counter("runner.jobs_skipped")
	opts.Obs.Gauge("runner.workers").Set(int64(workers))

	// Restore checkpointed results before dispatching anything so the
	// pool only sees genuinely pending work.
	var restored map[string]json.RawMessage
	if opts.Resume && opts.Checkpoint != "" {
		m, err := LoadCheckpoint(opts.Checkpoint)
		if err != nil {
			return results, tr.stats(), err
		}
		restored = m
	}
	var pending []int
	for i := range jobs {
		if raw, ok := restored[jobs[i].Key]; ok {
			var v R
			if err := json.Unmarshal(raw, &v); err == nil {
				results[i] = Result[R]{Key: jobs[i].Key, Value: v, Skipped: true}
				done[i] = true
				jobsSkipped.Inc()
				tr.finish(JobSkipped, jobs[i].Key, nil, 0)
				continue
			}
			// Unreadable entry (e.g. the job's result type changed):
			// fall through and recompute.
		}
		pending = append(pending, i)
	}

	var ckpt *checkpointWriter
	if opts.Checkpoint != "" {
		w, err := openCheckpoint(opts.Checkpoint)
		if err != nil {
			return results, tr.stats(), err
		}
		ckpt = w
		defer ckpt.close()
	}

	// The queue is bounded by the pool size so a huge sweep never
	// materializes as channel backlog, and the feeder notices
	// cancellation promptly.
	queue := make(chan int, workers)
	var mu sync.Mutex // serializes tracker events and checkpoint appends
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range queue {
				if ctx.Err() != nil {
					continue // leave the job unexecuted; marked below
				}
				res := execute(ctx, opts.Timeout, jobs[idx])
				results[idx] = res
				done[idx] = true
				jobTime.Observe(uint64(res.Elapsed))
				mu.Lock()
				if res.Err == nil && ckpt != nil {
					if ckptTime != nil {
						ckptStart := time.Now()
						ckpt.append(res.Key, res.Value, res.Elapsed)
						ckptTime.Observe(uint64(time.Since(ckptStart)))
					} else {
						ckpt.append(res.Key, res.Value, res.Elapsed)
					}
				}
				if res.Err != nil {
					jobsFailed.Inc()
					tr.finish(JobFailed, res.Key, res.Err, res.Elapsed)
				} else {
					jobsDone.Inc()
					tr.finish(JobDone, res.Key, nil, res.Elapsed)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, idx := range pending {
		select {
		case queue <- idx:
		case <-ctx.Done():
			break feed
		}
	}
	close(queue)
	wg.Wait()

	var err error
	if ctx.Err() != nil {
		err = ctx.Err()
		for _, idx := range pending {
			if !done[idx] {
				results[idx] = Result[R]{Key: jobs[idx].Key, Err: fmt.Errorf("runner: job %q not run: %w", jobs[idx].Key, ctx.Err())}
			}
		}
	}
	return results, tr.stats(), err
}

// execute runs one job with panic isolation and an optional deadline.
// The job runs on its own goroutine so a panic unwinds there and a
// timed-out computation can be abandoned without killing the worker.
func execute[R any](ctx context.Context, timeout time.Duration, job Job[R]) Result[R] {
	res := Result[R]{Key: job.Key}
	jctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type outcome struct {
		val R
		err error
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("runner: job %q panicked: %v", job.Key, p)}
			}
		}()
		v, err := job.Run(jctx)
		ch <- outcome{val: v, err: err}
	}()
	select {
	case o := <-ch:
		res.Value, res.Err = o.val, o.err
	case <-jctx.Done():
		res.Err = fmt.Errorf("runner: job %q: %w", job.Key, jctx.Err())
	}
	res.Elapsed = time.Since(start)
	return res
}
