package workloads

import (
	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/kernelsim"
	"github.com/uteda/gmap/internal/trace"
)

// The builders below model the memory behaviour of the named benchmarks.
// Where Table 1 of the paper characterizes a benchmark (dominant PCs and
// their frequencies, dominant inter-warp stride, dominant intra-thread
// stride, reuse class), the synthetic kernel uses the same static PC values
// and reproduces the same stride/reuse structure. Loop trip counts are the
// scale knob: scale N multiplies per-thread work, which is how the
// miniaturization experiment (Figure 8) grows original traces.

func init() {
	register(Spec{
		Name:  "aes",
		Suite: "ispass2009",
		Description: "AES encryption: streaming 16B blocks per thread with " +
			"round-table lookups into small shared T-boxes (high reuse).",
		Reuse:   HighReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			const tBox = 4096 // one 4KB lookup table
			return &kernelsim.Kernel{
				Name:   "aes",
				Launch: gpu.Linear1D(16, 128),
				Seed:   0xae5,
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 10 * scale, Body: []kernelsim.Stmt{
						// Input block, streaming and coalesced.
						kernelsim.MemOp{PC: 0x10, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 16, IterCoef: []int64{16 * 2048}}},
						// Four T-table lookups: data-dependent index within a
						// small table that stays cache-resident.
						kernelsim.MemOp{PC: 0x20, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x1000, Scatter: tBox, Align: 4}},
						kernelsim.MemOp{PC: 0x24, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x2000, Scatter: tBox, Align: 4}},
						kernelsim.MemOp{PC: 0x28, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x3000, Scatter: tBox, Align: 4}},
						kernelsim.MemOp{PC: 0x2c, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x4000, Scatter: tBox, Align: 4}},
						// Output block.
						kernelsim.MemOp{PC: 0x30, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0x400000, TidCoef: 16, IterCoef: []int64{16 * 2048}}},
					}},
				},
			}
		},
	})

	register(Spec{
		Name:  "bp",
		Suite: "rodinia",
		Description: "Backprop layer forward: unit-stride weight reads " +
			"(inter-warp stride 128) with medium reuse of activations.",
		Reuse:   MedReuse,
		Regular: true,
		App: func(scale int) []*kernelsim.Kernel {
			fwd, _ := ByName("bp")
			// The weight-adjustment kernel revisits the forward pass's
			// weight matrix (reads at 0x200000) and writes deltas.
			adjust := &kernelsim.Kernel{
				Name:   "bp_adjust",
				Launch: gpu.Linear1D(32, 256),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 24 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x600, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x200000, TidCoef: 4, IterCoef: []int64{128}}},
						kernelsim.MemOp{PC: 0x608, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x1200000, TidCoef: 4, IterCoef: []int64{128}}},
						kernelsim.MemOp{PC: 0x610, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0x200000, TidCoef: 4, IterCoef: []int64{128}}},
					}},
				},
			}
			return []*kernelsim.Kernel{fwd.Build(scale), adjust}
		},
		Build: func(scale int) *kernelsim.Kernel {
			return &kernelsim.Kernel{
				Name:   "bp",
				Launch: gpu.Linear1D(32, 256),
				Body: []kernelsim.Stmt{
					// Dominant phase: the three Table 1 PCs (0x3F8, 0x408,
					// 0x478), unit element stride across threads, ±128B
					// intra-thread stride across iterations.
					kernelsim.Loop{Count: 36 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x3F8, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x200000, TidCoef: 4, IterCoef: []int64{128}}},
						kernelsim.MemOp{PC: 0x408, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x600000, TidCoef: 4, IterCoef: []int64{-128}, Const: 36 * 128}},
						kernelsim.MemOp{PC: 0x478, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0xA00000, TidCoef: 4, IterCoef: []int64{128}}},
					}},
					// Layer boundary: the block synchronizes before the
					// activation phase (bar.sync in the real kernel).
					kernelsim.Barrier{PC: 0x4F0},
					// Activation re-reads: a window that is revisited,
					// giving the medium reuse level.
					kernelsim.Loop{Count: 60 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x500, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0xE00000, TidCoef: 4, IterCoef: []int64{512}, Wrap: 2048}},
						kernelsim.MemOp{PC: 0x508, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0xF00000, TidCoef: 4, IterCoef: []int64{512}, Wrap: 2048}},
					}},
				},
			}
		},
	})

	register(Spec{
		Name:  "bfs",
		Suite: "rodinia",
		Description: "Breadth-first search: coalesced frontier reads followed " +
			"by data-dependent neighbor gathers with divergent visitation.",
		Reuse:   LowReuse,
		Regular: false,
		Build: func(scale int) *kernelsim.Kernel {
			return &kernelsim.Kernel{
				Name:   "bfs",
				Launch: gpu.Linear1D(32, 128),
				Seed:   0xbf5,
				Body: []kernelsim.Stmt{
					kernelsim.MemOp{PC: 0x40, Kind: trace.Load,
						Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4}},
					kernelsim.Loop{Count: 16 * scale, Body: []kernelsim.Stmt{
						kernelsim.If{
							Pred: kernelsim.HashProb{P: 0.4},
							Then: []kernelsim.Stmt{
								// Neighbor gather over the whole edge array.
								kernelsim.MemOp{PC: 0x48, Kind: trace.Load,
									Addr: kernelsim.AddrExpr{Base: 0x800000, Scatter: 1 << 21, Align: 4}},
								kernelsim.MemOp{PC: 0x50, Kind: trace.Store,
									Addr: kernelsim.AddrExpr{Base: 0x1000000, Scatter: 1 << 20, Align: 4}},
							},
						},
					}},
				},
			}
		},
	})

	register(Spec{
		Name:  "blk",
		Suite: "cudasdk",
		Description: "BlackScholes: pure streaming over option arrays in a " +
			"grid-stride loop (intra-thread stride 245760, low reuse).",
		Reuse:   LowReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			// 245760 = 4B x 61440 options per grid-stride step (Table 1).
			const gridStride = 245760
			return &kernelsim.Kernel{
				Name:   "blk",
				Launch: gpu.Linear1D(32, 256),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 20 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0xF0, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x1000000, TidCoef: 4, IterCoef: []int64{gridStride}}},
						kernelsim.MemOp{PC: 0xF8, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x2000000, TidCoef: 4, IterCoef: []int64{gridStride}}},
						kernelsim.MemOp{PC: 0x100, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x3000000, TidCoef: 4, IterCoef: []int64{gridStride}}},
						kernelsim.MemOp{PC: 0x108, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0x4000000, TidCoef: 4, IterCoef: []int64{gridStride}}},
						kernelsim.MemOp{PC: 0x110, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0x5000000, TidCoef: 4, IterCoef: []int64{gridStride}}},
					}},
				},
			}
		},
	})

	register(Spec{
		Name:  "cp",
		Suite: "ispass2009",
		Description: "Coulombic potential: 64B-strided grid-point reads " +
			"(inter-warp stride 2048) against a revisited atom window.",
		Reuse:   MedReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			return &kernelsim.Kernel{
				Name:   "cp",
				Launch: gpu.Linear1D(16, 128),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 12 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x208, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 64, IterCoef: []int64{-1024}, Const: 12 * 1024, Wrap: 1 << 20}},
						kernelsim.MemOp{PC: 0x218, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x400000, TidCoef: 64, IterCoef: []int64{-1024}, Const: 12 * 1024, Wrap: 1 << 20}},
						kernelsim.MemOp{PC: 0x220, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x700000, TidCoef: 64, IterCoef: []int64{-1024}, Const: 12 * 1024, Wrap: 1 << 20}},
					}},
					kernelsim.MemOp{PC: 0x230, Kind: trace.Store,
						Addr: kernelsim.AddrExpr{Base: 0xA00000, TidCoef: 4}},
				},
			}
		},
	})

	register(Spec{
		Name:  "fwt",
		Suite: "cudasdk",
		Description: "Fast Walsh transform: butterfly loads at a fixed " +
			"19200B intra-thread step with medium reuse between stages.",
		Reuse:   MedReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			return &kernelsim.Kernel{
				Name:   "fwt",
				Launch: gpu.Linear1D(32, 256),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 24 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x458, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x800000, TidCoef: 4, IterCoef: []int64{19200}, Wrap: 19200 * 8}},
						kernelsim.MemOp{PC: 0x460, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x800000, TidCoef: 4, IterCoef: []int64{19200}, Const: 19200 / 2, Wrap: 19200 * 8}},
						kernelsim.MemOp{PC: 0x478, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0x800000, TidCoef: 4, IterCoef: []int64{19200}, Wrap: 19200 * 8}},
					}},
				},
			}
		},
	})

	register(Spec{
		Name:  "gaussian",
		Suite: "rodinia",
		Description: "Gaussian elimination: per-column threads sweeping rows; " +
			"pivot row broadcast plus strided row updates.",
		Reuse:   MedReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			const rowBytes = 4096
			return &kernelsim.Kernel{
				Name:   "gaussian",
				Launch: gpu.Linear1D(16, 256),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 48 * scale, Body: []kernelsim.Stmt{
						// Pivot row element: same line for the whole warp.
						kernelsim.MemOp{PC: 0x60, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{rowBytes}, Wrap: rowBytes * 16}},
						// Own matrix element a[row][tid].
						kernelsim.MemOp{PC: 0x68, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x900000, TidCoef: 4, IterCoef: []int64{rowBytes}}},
						kernelsim.MemOp{PC: 0x70, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0x900000, TidCoef: 4, IterCoef: []int64{rowBytes}}},
					}},
				},
			}
		},
	})

	register(Spec{
		Name:  "heartwall",
		Suite: "rodinia",
		Description: "Heartwall tracking: one dominant load (PC 0x900, 81% of " +
			"references) sweeping a template window that is heavily revisited.",
		Reuse:   HighReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			return &kernelsim.Kernel{
				Name:   "heartwall",
				Launch: gpu.Linear1D(16, 128),
				Body: []kernelsim.Stmt{
					// Dominant: 81% of dynamic references from PC 0x900 with
					// a 64B intra-thread stride inside an 8KB window.
					kernelsim.Loop{Count: 160 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x900, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{64}, Wrap: 2048}},
					}},
					kernelsim.Loop{Count: 10 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x4a0, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x300000, TidCoef: 4, IterCoef: []int64{-128}, Const: 10 * 128}},
					}},
					kernelsim.Loop{Count: 8 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x4a8, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x500000, TidCoef: 4, IterCoef: []int64{1024}}},
					}},
					kernelsim.MemOp{PC: 0x4b0, Kind: trace.Store,
						Addr: kernelsim.AddrExpr{Base: 0x700000, TidCoef: 4}},
				},
			}
		},
	})

	register(Spec{
		Name:  "hotspot",
		Suite: "rodinia",
		Description: "Hotspot thermal simulation with pyramid blocking: halo " +
			"effects yield no dominant stride and low temporal locality — the " +
			"hardest workload for statistical cloning.",
		Reuse:   LowReuse,
		Regular: false,
		Build: func(scale int) *kernelsim.Kernel {
			return &kernelsim.Kernel{
				Name:   "hotspot",
				Launch: gpu.Linear1D(16, 128),
				Seed:   0x407,
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 12 * scale, Body: []kernelsim.Stmt{
						// Halo reads: effectively unpredictable offsets.
						kernelsim.MemOp{PC: 0x80, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, Scatter: 1 << 19, Align: 4}},
						kernelsim.MemOp{PC: 0x88, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x300000, Scatter: 1 << 19, Align: 4}},
						// Interior stencil with irregular per-iteration
						// offsets (pyramid shrinking).
						kernelsim.MemOp{PC: 0x90, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x500000, TidCoef: 4, IterCoef: []int64{1313}}},
						kernelsim.MemOp{PC: 0x98, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x500000, TidCoef: 4, IterCoef: []int64{-737}, Const: 12 * 737}},
						kernelsim.If{Pred: kernelsim.HashProb{P: 0.5}, Then: []kernelsim.Stmt{
							kernelsim.MemOp{PC: 0xA0, Kind: trace.Store,
								Addr: kernelsim.AddrExpr{Base: 0x700000, Scatter: 1 << 18, Align: 4}},
						}},
					}},
				},
			}
		},
	})

	register(Spec{
		Name:  "kmeans",
		Suite: "rodinia",
		Description: "K-means: a single dominant load (PC 0xe8, ~100%) reading " +
			"a [point][feature] array column-wise (inter-warp stride 4352) with " +
			"high reuse as clusters revisit features.",
		Reuse:   HighReuse,
		Regular: true,
		App: func(scale int) []*kernelsim.Kernel {
			// The real k-means iterates assignment until convergence: the
			// same kernel re-launched, revisiting the same feature array.
			k, _ := ByName("kmeans")
			return []*kernelsim.Kernel{k.Build(scale), k.Build(scale), k.Build(scale)}
		},
		Build: func(scale int) *kernelsim.Kernel {
			const featBytes = 136 // 34 features x 4B per point (Table 1: 4352/32)
			return &kernelsim.Kernel{
				Name:   "kmeans",
				Launch: gpu.Linear1D(4, 128),
				Body: []kernelsim.Stmt{
					// Outer loop over clusters revisits every feature: the
					// source of the benchmark's high reuse.
					kernelsim.Loop{Count: 3 * scale, Body: []kernelsim.Stmt{
						kernelsim.Loop{Count: 34, Body: []kernelsim.Stmt{
							kernelsim.MemOp{PC: 0xe8, Kind: trace.Load,
								Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: featBytes, IterCoef: []int64{0, 4}}},
						}},
					}},
					kernelsim.MemOp{PC: 0xf0, Kind: trace.Store,
						Addr: kernelsim.AddrExpr{Base: 0x900000, TidCoef: 4}},
				},
			}
		},
	})

	register(Spec{
		Name:  "lib",
		Suite: "ispass2009",
		Description: "LIBOR Monte Carlo: two dominant loads (46% each) with a " +
			"19200B intra-thread step over a revisited rate path (high reuse).",
		Reuse:   HighReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			return &kernelsim.Kernel{
				Name:   "lib",
				Launch: gpu.Linear1D(16, 128),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 96 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x1c68, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{19200}, Wrap: 19200 * 2}},
						kernelsim.MemOp{PC: 0x1ce0, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x200000, TidCoef: 4, IterCoef: []int64{19200}, Wrap: 19200 * 2}},
					}},
					kernelsim.Loop{Count: 8 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x1b40, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x300000, TidCoef: 4, IterCoef: []int64{19200}}},
					}},
					kernelsim.MemOp{PC: 0x1b80, Kind: trace.Store,
						Addr: kernelsim.AddrExpr{Base: 0x500000, TidCoef: 4}},
				},
			}
		},
	})

	register(Spec{
		Name:  "lps",
		Suite: "ispass2009",
		Description: "3D Laplace solver: regular stencil loads over a dense " +
			"grid, neighbors one element and one row apart.",
		Reuse:   MedReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			const rowBytes = 2048
			return &kernelsim.Kernel{
				Name:   "lps",
				Launch: gpu.Linear1D(16, 256),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 24 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0xB0, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{rowBytes}, Wrap: rowBytes * 32}},
						kernelsim.MemOp{PC: 0xB8, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{rowBytes}, Const: -4, Wrap: rowBytes * 32}},
						kernelsim.MemOp{PC: 0xC0, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{rowBytes}, Const: 4, Wrap: rowBytes * 32}},
						kernelsim.MemOp{PC: 0xC8, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{rowBytes}, Const: rowBytes, Wrap: rowBytes * 32}},
						kernelsim.MemOp{PC: 0xD0, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0x500000, TidCoef: 4, IterCoef: []int64{rowBytes}}},
					}},
				},
			}
		},
	})

	register(Spec{
		Name:  "lud",
		Suite: "rodinia",
		Description: "LU decomposition: tiled access with many static " +
			"instructions (no PC above ~4% of references) and an 11B-per-thread " +
			"diagonal stride (inter-warp stride 352).",
		Reuse:   LowReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			// Eight tile phases, each with its own PCs, so no instruction
			// dominates — matching Table 1's 4%-per-PC profile.
			body := make([]kernelsim.Stmt, 0, 16)
			for phase := 0; phase < 8; phase++ {
				base := uint64(0x100000 + phase*0x100000)
				pc := uint64(0x1c00 + phase*0x28)
				if phase > 0 {
					// Tile phases are separated by block-wide barriers in
					// the real decomposition.
					body = append(body, kernelsim.Barrier{PC: pc + 0x10})
				}
				body = append(body, kernelsim.Loop{Count: 3 * scale, Body: []kernelsim.Stmt{
					kernelsim.MemOp{PC: pc + 0x85, Kind: trace.Load,
						Addr: kernelsim.AddrExpr{Base: base, TidCoef: 11, IterCoef: []int64{-128}, Const: 3 * 128}},
					kernelsim.MemOp{PC: pc + 0xa8, Kind: trace.Load,
						Addr: kernelsim.AddrExpr{Base: base + 0x40000, TidCoef: 11, IterCoef: []int64{-128}, Const: 3 * 128}},
					kernelsim.MemOp{PC: pc + 0xc8, Kind: trace.Store,
						Addr: kernelsim.AddrExpr{Base: base + 0x80000, TidCoef: 11, IterCoef: []int64{-128}, Const: 3 * 128}},
				}})
			}
			return &kernelsim.Kernel{
				Name:   "lud",
				Launch: gpu.Linear1D(16, 128),
				Body:   body,
			}
		},
	})

	register(Spec{
		Name:  "mum",
		Suite: "ispass2009",
		Description: "MUMmerGPU suffix-tree matching: pointer-chasing gathers " +
			"with divergent match lengths.",
		Reuse:   LowReuse,
		Regular: false,
		Build: func(scale int) *kernelsim.Kernel {
			return &kernelsim.Kernel{
				Name:   "mum",
				Launch: gpu.Linear1D(16, 128),
				Seed:   0x303,
				Body: []kernelsim.Stmt{
					kernelsim.MemOp{PC: 0x140, Kind: trace.Load,
						Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4}},
					kernelsim.Loop{Count: 10 * scale, Body: []kernelsim.Stmt{
						// Tree-node fetch: scattered over the suffix tree.
						kernelsim.MemOp{PC: 0x148, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x800000, Scatter: 1 << 22, Align: 16}},
						kernelsim.If{
							Pred: kernelsim.HashProb{P: 0.5},
							Then: []kernelsim.Stmt{
								kernelsim.MemOp{PC: 0x150, Kind: trace.Load,
									Addr: kernelsim.AddrExpr{Base: 0x800000, Scatter: 1 << 22, Align: 16}},
								kernelsim.MemOp{PC: 0x154, Kind: trace.Load,
									Addr: kernelsim.AddrExpr{Base: 0xC00000, Scatter: 1 << 22, Align: 16}},
							},
							Else: []kernelsim.Stmt{
								kernelsim.MemOp{PC: 0x158, Kind: trace.Store,
									Addr: kernelsim.AddrExpr{Base: 0x2000000, TidCoef: 4}},
							},
						},
					}},
				},
			}
		},
	})

	register(Spec{
		Name:  "nn",
		Suite: "rodinia",
		Description: "Nearest neighbor: perfectly coalesced streaming over " +
			"record arrays, negligible reuse.",
		Reuse:   LowReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			return &kernelsim.Kernel{
				Name:   "nn",
				Launch: gpu.Linear1D(32, 256),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 20 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x180, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{32768}}},
						kernelsim.MemOp{PC: 0x188, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x900000, TidCoef: 4, IterCoef: []int64{32768}}},
						kernelsim.MemOp{PC: 0x190, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x1100000, TidCoef: 4, IterCoef: []int64{32768}}},
						kernelsim.MemOp{PC: 0x198, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x1900000, TidCoef: 4, IterCoef: []int64{32768}}},
					}},
					kernelsim.MemOp{PC: 0x1a0, Kind: trace.Store,
						Addr: kernelsim.AddrExpr{Base: 0x2100000, TidCoef: 4}},
				},
			}
		},
	})

	register(Spec{
		Name:  "nw",
		Suite: "rodinia",
		Description: "Needleman-Wunsch: diagonal wavefront over a score matrix; " +
			"regular strides that respond well to prefetching.",
		Reuse:   MedReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			const rowBytes = 8192
			return &kernelsim.Kernel{
				Name:   "nw",
				Launch: gpu.Linear1D(16, 128),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 48 * scale, Body: []kernelsim.Stmt{
						// North-west, north and west neighbors of the cell.
						kernelsim.MemOp{PC: 0x210, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{rowBytes + 4}, Wrap: rowBytes * 16}},
						kernelsim.MemOp{PC: 0x218, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{rowBytes + 4}, Const: 4, Wrap: rowBytes * 16}},
						kernelsim.MemOp{PC: 0x220, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{rowBytes + 4}, Const: rowBytes, Wrap: rowBytes * 16}},
						kernelsim.MemOp{PC: 0x228, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0x100000, TidCoef: 4, IterCoef: []int64{rowBytes + 4}, Const: rowBytes + 4, Wrap: rowBytes * 16}},
					}},
				},
			}
		},
	})

	register(Spec{
		Name:  "scalarprod",
		Suite: "cudasdk",
		Description: "Scalar product: two grid-stride streaming loads (48% " +
			"each) over a footprint too large to cache.",
		Reuse:   LowReuse,
		Regular: true,
		Build: func(scale int) *kernelsim.Kernel {
			// Grid-stride loop: pos = tid; pos += totalThreads. Each
			// iteration sweeps a fresh region, so warps never re-touch
			// each other's lines — the canonical streaming-reduction
			// pattern.
			const gridStride = 4 * 32 * 256
			return &kernelsim.Kernel{
				Name:   "scalarprod",
				Launch: gpu.Linear1D(32, 256),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 36 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0xd8, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x1000000, TidCoef: 4, IterCoef: []int64{gridStride}}},
						kernelsim.MemOp{PC: 0xe0, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x4000000, TidCoef: 4, IterCoef: []int64{gridStride}}},
					}},
					kernelsim.MemOp{PC: 0xf8, Kind: trace.Store,
						Addr: kernelsim.AddrExpr{Base: 0x8000000, TidCoef: 4}},
				},
			}
		},
	})

	register(Spec{
		Name:  "srad",
		Suite: "rodinia",
		Description: "SRAD speckle-reducing diffusion: row-strided image reads " +
			"(inter-warp stride 16384, intra-thread stride -8192), low reuse.",
		Reuse:   LowReuse,
		Regular: true,
		App: func(scale int) []*kernelsim.Kernel {
			s1, _ := ByName("srad")
			// srad2 applies the diffusion coefficients computed by srad1:
			// it re-reads srad1's output region and updates the image.
			s2 := &kernelsim.Kernel{
				Name:   "srad2",
				Launch: gpu.Linear1D(8, 128),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 12 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x400, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x3000000, TidCoef: 512, IterCoef: []int64{-8192}, Const: 12 * 8192}},
						kernelsim.MemOp{PC: 0x408, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x1000000, TidCoef: 512, IterCoef: []int64{-8192}, Const: 12 * 8192}},
						kernelsim.MemOp{PC: 0x410, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0x1000000, TidCoef: 512, IterCoef: []int64{-8192}, Const: 12 * 8192}},
					}},
				},
			}
			return []*kernelsim.Kernel{s1.Build(scale), s2}
		},
		Build: func(scale int) *kernelsim.Kernel {
			return &kernelsim.Kernel{
				Name:   "srad",
				Launch: gpu.Linear1D(8, 128),
				Body: []kernelsim.Stmt{
					kernelsim.Loop{Count: 12 * scale, Body: []kernelsim.Stmt{
						kernelsim.MemOp{PC: 0x250, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x1000000, TidCoef: 512, IterCoef: []int64{-8192}, Const: 12 * 8192}},
						kernelsim.MemOp{PC: 0x230, Kind: trace.Load,
							Addr: kernelsim.AddrExpr{Base: 0x2000000, TidCoef: 512, IterCoef: []int64{-8192}, Const: 12 * 8192}},
						kernelsim.MemOp{PC: 0x350, Kind: trace.Store,
							Addr: kernelsim.AddrExpr{Base: 0x3000000, TidCoef: 512, IterCoef: []int64{-8192}, Const: 12 * 8192}},
					}},
				},
			}
		},
	})
}
