package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/uteda/gmap/internal/rng"
)

func sampleTrace() *KernelTrace {
	k := &KernelTrace{Name: "vecadd", GridDim: 2, BlockDim: 4}
	for t := 0; t < 8; t++ {
		tt := ThreadTrace{ThreadID: t}
		for j := 0; j < 3; j++ {
			tt.Accesses = append(tt.Accesses,
				Access{PC: 0x100, Addr: uint64(0x1000 + 4*t + 128*j), Kind: Load},
				Access{PC: 0x108, Addr: uint64(0x8000 + 4*t + 128*j), Kind: Store},
			)
		}
		k.Threads = append(k.Threads, tt)
	}
	return k
}

func TestKindString(t *testing.T) {
	if Load.String() != "LD" || Store.String() != "ST" {
		t.Error("Kind strings wrong")
	}
}

func TestAccessString(t *testing.T) {
	a := Access{PC: 0x900, Addr: 0x1000, Kind: Load}
	if got := a.String(); got != "LD pc=0x900 addr=0x1000" {
		t.Errorf("Access.String = %q", got)
	}
}

func TestRequestString(t *testing.T) {
	r := Request{PC: 0x900, Addr: 0x1000, Kind: Store, WarpID: 3, Threads: 32}
	if got := r.String(); got != "ST warp=3 pc=0x900 line=0x1000 (x32)" {
		t.Errorf("Request.String = %q", got)
	}
}

func TestKernelTraceCounts(t *testing.T) {
	k := sampleTrace()
	if k.NumThreads() != 8 {
		t.Errorf("NumThreads = %d", k.NumThreads())
	}
	if k.NumAccesses() != 8*6 {
		t.Errorf("NumAccesses = %d", k.NumAccesses())
	}
}

func TestValidate(t *testing.T) {
	k := sampleTrace()
	if err := k.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	k.Threads[3].ThreadID = 99
	if err := k.Validate(); err == nil {
		t.Error("bad thread id accepted")
	}
	k = sampleTrace()
	k.GridDim = 5
	if err := k.Validate(); err == nil {
		t.Error("geometry mismatch accepted")
	}
	k = sampleTrace()
	k.BlockDim = 0
	if err := k.Validate(); err == nil {
		t.Error("zero geometry accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	k := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, k); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, k, got)
}

func TestBinaryCompression(t *testing.T) {
	k := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, k); err != nil {
		t.Fatal(err)
	}
	raw := k.NumAccesses() * 17 // 8B pc + 8B addr + 1B kind
	if buf.Len() >= raw {
		t.Errorf("binary form (%dB) not smaller than raw (%dB)", buf.Len(), raw)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTATRACE")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	k := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, k); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, len(binaryMagic), len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	k := &KernelTrace{Name: "empty", GridDim: 1, BlockDim: 1, Threads: []ThreadTrace{{ThreadID: 0}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, k); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, k, got)
}

func TestBinaryRoundTripProperty(t *testing.T) {
	r := rng.New(999)
	f := func(seed uint64, nThreads, nAcc uint8) bool {
		nt := int(nThreads%8) + 1
		na := int(nAcc % 32)
		k := &KernelTrace{Name: "prop", GridDim: 1, BlockDim: nt}
		local := rng.New(seed)
		for t := 0; t < nt; t++ {
			tt := ThreadTrace{ThreadID: t}
			for j := 0; j < na; j++ {
				tt.Accesses = append(tt.Accesses, Access{
					PC:   local.Uint64(),
					Addr: local.Uint64(),
					Kind: Kind(local.Intn(2)),
				})
			}
			k.Threads = append(k.Threads, tt)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, k); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return tracesEqual(k, got)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: nil}
	_ = r
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	k := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, k); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, k, got)
}

func TestTextParseErrors(t *testing.T) {
	cases := []string{
		"LD 100 200\n",      // access before thread header
		"T 0\nXX 100 200\n", // unknown kind
		"T zero\n",          // bad thread id
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("bad input %q accepted", c)
		}
	}
}

func TestTextSkipsBlankLines(t *testing.T) {
	in := "# gmap-trace name=x grid=1 block=1\n\nT 0\n\nLD 10 20\n"
	k, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "x" || len(k.Threads) != 1 || len(k.Threads[0].Accesses) != 1 {
		t.Errorf("parsed trace wrong: %+v", k)
	}
	if a := k.Threads[0].Accesses[0]; a.PC != 0x10 || a.Addr != 0x20 {
		t.Errorf("access = %v", a)
	}
}

func TestWarpTraceLen(t *testing.T) {
	w := &WarpTrace{WarpID: 1, Requests: make([]Request, 5)}
	if w.Len() != 5 {
		t.Errorf("Len = %d", w.Len())
	}
}

func assertTracesEqual(t *testing.T, want, got *KernelTrace) {
	t.Helper()
	if !tracesEqual(want, got) {
		t.Fatalf("traces differ:\nwant %+v\ngot  %+v", want, got)
	}
}

func tracesEqual(a, b *KernelTrace) bool {
	if a.Name != b.Name || a.GridDim != b.GridDim || a.BlockDim != b.BlockDim || len(a.Threads) != len(b.Threads) {
		return false
	}
	for i := range a.Threads {
		ta, tb := &a.Threads[i], &b.Threads[i]
		if ta.ThreadID != tb.ThreadID || len(ta.Accesses) != len(tb.Accesses) {
			return false
		}
		for j := range ta.Accesses {
			if ta.Accesses[j] != tb.Accesses[j] {
				return false
			}
		}
	}
	return true
}

func BenchmarkWriteBinary(b *testing.B) {
	k := sampleTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	k := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, k); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
