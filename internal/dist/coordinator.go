package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/uteda/gmap/internal/eval"
	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/runner"
	"github.com/uteda/gmap/internal/serve/api"
)

// Sentinel errors of the lease protocol.
var (
	// ErrLeaseGone reports an operation on a lease that expired, was
	// stolen, or never existed. Workers treat it as "stop this shard and
	// ask for a new lease"; over HTTP it maps to 410 Gone.
	ErrLeaseGone = errors.New("dist: lease expired or superseded")
	// ErrDivergent reports a result whose payload differs byte-for-byte
	// from the already-recorded result for the same job key. Jobs are
	// deterministic, so this can only mean two different job universes
	// were merged; the batch is rejected before any ledger write.
	ErrDivergent = errors.New("dist: divergent result payload")
	// ErrForeignKey reports a result for a job key outside the sweep's
	// enumerated universe.
	ErrForeignKey = errors.New("dist: job key outside the sweep universe")
)

// CoordinatorOptions configures NewCoordinator.
type CoordinatorOptions struct {
	// Spec is the sweep to distribute (kind "sweep"; a zero Kind
	// defaults to it). It is normalized and then shipped verbatim inside
	// every lease grant, so workers derive the exact same eval options —
	// and therefore the exact same job keys — as the coordinator.
	Spec api.JobSpec
	// Parts is the number of partitions of the job space; <= 0 defaults
	// to 8, and it is capped at the job count. More parts than workers
	// gives the lease loop natural rebalancing granularity.
	Parts int
	// LeaseTTL is how long a lease survives without a heartbeat; <= 0
	// defaults to 30s.
	LeaseTTL time.Duration
	// StallFactor scales the straggler threshold: an idle worker may
	// steal a live lease once its holder has gone StallFactor times the
	// observed mean job duration (never less than one TTL) without
	// delivering a result. <= 0 defaults to 8.
	StallFactor float64
	// Ledger is the merged checkpoint JSONL path (required): every
	// accepted result becomes one flushed checkpoint line, and the final
	// report is produced by replaying this file through the ordinary
	// resume path. An existing ledger is salvaged strictly on startup —
	// that is the coordinator-restart story.
	Ledger string
	// FS routes ledger I/O; nil selects the real filesystem. Chaos tests
	// substitute a fault.InjectFS to tear writes.
	FS fault.FS
	// Obs, when non-nil, mirrors lease/merge counters ("dist.*").
	Obs *obs.Registry
	// Logf, when non-nil, receives one line per lease-state transition.
	Logf func(format string, args ...interface{})
}

func (o *CoordinatorOptions) fillDefaults() {
	if o.Parts <= 0 {
		o.Parts = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.StallFactor <= 0 {
		o.StallFactor = 8
	}
	if o.FS == nil {
		o.FS = fault.OS
	}
}

// partState is one partition of the job space.
type partState struct {
	id        int
	keys      []string // every key of the part, sorted
	remaining map[string]bool
	leaseID   string // live lease holding the part, "" if none
}

// lease is one live grant. Revoked and completed leases are simply
// forgotten: any later operation on their id answers ErrLeaseGone,
// which is exactly what a worker holding a stale grant must hear.
type lease struct {
	id         string
	worker     string
	part       int
	granted    time.Time
	renewed    time.Time
	lastResult time.Time
}

// LeaseGrant is the coordinator's answer to a lease request.
type LeaseGrant struct {
	// Status is "lease" (Keys/Spec are populated), "wait" (all parts are
	// leased; retry after RetryNS) or "done" (the sweep is complete).
	Status string `json:"status"`
	// Lease is the grant's id, quoted back on heartbeat/results/complete.
	Lease string `json:"lease,omitempty"`
	// Part and Parts locate the granted partition.
	Part  int `json:"part,omitempty"`
	Parts int `json:"parts,omitempty"`
	// Keys are the part's still-unrecorded job keys, sorted. The worker
	// runs exactly these — after a steal, the new holder skips what the
	// old one already delivered.
	Keys []string `json:"keys,omitempty"`
	// Spec is the sweep to run; identical for every grant.
	Spec api.JobSpec `json:"spec,omitempty"`
	// TTLNS is the heartbeat deadline; RetryNS the suggested wait-state
	// poll interval.
	TTLNS   int64 `json:"ttl_ns,omitempty"`
	RetryNS int64 `json:"retry_ns,omitempty"`
}

// Grant statuses.
const (
	GrantLease = "lease"
	GrantWait  = "wait"
	GrantDone  = "done"
)

// Status is a point-in-time snapshot of coordinator state, served on
// GET /dist/v1/status and asserted on by the chaos suites.
type Status struct {
	Experiment string `json:"experiment"`
	TotalJobs  int    `json:"total_jobs"`
	DoneJobs   int    `json:"done_jobs"`
	Parts      int    `json:"parts"`
	DoneParts  int    `json:"done_parts"`
	LiveLeases int    `json:"live_leases"`
	Granted    uint64 `json:"granted"`
	Expired    uint64 `json:"expired"`
	Stolen     uint64 `json:"stolen"`
	Duplicates uint64 `json:"duplicates"`
	Late       uint64 `json:"late_results"`
	Restored   int    `json:"restored"`
	Done       bool   `json:"done"`
}

// Coordinator owns the sweep's job universe: it enumerates the keys,
// partitions them, leases partitions to workers, merges streamed
// results into the ledger, and replays the ledger into the final
// report. All methods are safe for concurrent use.
type Coordinator struct {
	o    CoordinatorOptions
	spec api.JobSpec

	mu       sync.Mutex
	universe map[string]int // job key → part
	parts    []*partState
	leases   map[string]*lease // live only
	done     map[string]json.RawMessage
	appender *runner.CheckpointAppender
	seq      int
	elapsed  int64 // summed ElapsedNS of first-time results
	granted  uint64
	expired  uint64
	stolen   uint64
	dups     uint64
	late     uint64
	restored int

	finished  chan struct{}
	finishGen sync.Once

	// now is the clock; tests substitute a fake for deterministic
	// expiry/steal schedules.
	now func() time.Time
}

// NewCoordinator enumerates and partitions the sweep's job space,
// strictly salvages any pre-existing ledger (the restart path: already
// merged results are honored, a torn tail is truncated, a divergent or
// foreign ledger is refused), and opens the ledger for appending.
func NewCoordinator(o CoordinatorOptions) (*Coordinator, error) {
	o.fillDefaults()
	if o.Ledger == "" {
		return nil, errors.New("dist: coordinator requires a ledger path")
	}
	spec := o.Spec
	if spec.Kind == "" {
		spec.Kind = api.KindSweep
	}
	if err := spec.Normalize(nil); err != nil {
		return nil, fmt.Errorf("dist: bad sweep spec: %w", err)
	}
	if spec.Kind != api.KindSweep {
		return nil, fmt.Errorf("dist: cannot distribute %q jobs, only sweeps", spec.Kind)
	}
	keys, err := spec.EvalOptions().SweepKeys(spec.Experiment)
	if err != nil {
		return nil, fmt.Errorf("dist: enumerating %s: %w", spec.Experiment, err)
	}
	return newCoordinator(spec, keys, o)
}

// newCoordinator wires a coordinator over an explicit key universe; the
// property tests drive it with synthetic keys and a fake clock.
func newCoordinator(spec api.JobSpec, keys []string, o CoordinatorOptions) (*Coordinator, error) {
	c := &Coordinator{
		o:        o,
		spec:     spec,
		universe: make(map[string]int, len(keys)),
		leases:   make(map[string]*lease),
		done:     make(map[string]json.RawMessage),
		finished: make(chan struct{}),
		now:      time.Now,
	}
	nparts := o.Parts
	if nparts > len(keys) {
		nparts = len(keys)
	}
	for i := 0; i < nparts; i++ {
		c.parts = append(c.parts, &partState{id: i, remaining: make(map[string]bool)})
	}
	for _, k := range keys {
		p := PartOf(k, nparts)
		c.universe[k] = p
		c.parts[p].keys = append(c.parts[p].keys, k)
		c.parts[p].remaining[k] = true
	}
	for _, p := range c.parts {
		sort.Strings(p.keys)
	}

	// Restart path: fold the surviving ledger back in before accepting
	// anything new. Strict salvage refuses divergent payloads and
	// truncates a torn tail so the appender cannot glue onto garbage.
	vals, salvage, err := runner.SalvageStrict(c.fs(), o.Ledger)
	if err != nil {
		return nil, err
	}
	for k, v := range vals {
		if _, ok := c.universe[k]; !ok {
			return nil, fmt.Errorf("%w: ledger %s holds job %q not in sweep %s — it belongs to a different sweep",
				ErrForeignKey, o.Ledger, k, spec.Experiment)
		}
		cv, cerr := compactValue(v)
		if cerr != nil {
			return nil, fmt.Errorf("dist: ledger %s entry %q: %w", o.Ledger, k, cerr)
		}
		c.markDoneLocked(k, cv, 0)
		c.restored++
	}
	if salvage.TornBytes > 0 {
		o.Obs.Counter("dist.ledger_torn_bytes").Add(uint64(salvage.TornBytes))
	}
	o.Obs.Counter("dist.ledger_restored").Add(uint64(c.restored))
	c.logf("dist: sweep %s: %d jobs in %d parts (%d restored from %s)",
		spec.Experiment, len(keys), nparts, c.restored, o.Ledger)

	app, err := runner.OpenCheckpointAppender(c.fs(), o.Ledger, false)
	if err != nil {
		return nil, err
	}
	c.appender = app
	c.checkFinishedLocked()
	return c, nil
}

func (c *Coordinator) fs() fault.FS {
	if c.o.FS == nil {
		return fault.OS
	}
	return c.o.FS
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.o.Logf != nil {
		c.o.Logf(format, args...)
	}
}

// compactValue canonicalizes a payload so byte-level comparison is
// insensitive to wire formatting.
func compactValue(v json.RawMessage) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, v); err != nil {
		return nil, fmt.Errorf("invalid JSON payload: %w", err)
	}
	return json.RawMessage(buf.Bytes()), nil
}

// Close flushes and closes the ledger. The coordinator stays queryable
// but refuses further results.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.appender == nil {
		return nil
	}
	err := c.appender.Close()
	c.appender = nil
	return err
}

// Done is closed once every job key has a recorded result.
func (c *Coordinator) Done() <-chan struct{} { return c.finished }

// WaitDone blocks until the sweep completes or ctx is cancelled.
func (c *Coordinator) WaitDone(ctx context.Context) error {
	select {
	case <-c.finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Lease grants the requesting worker a partition: the first unleased
// part with unrecorded keys, or — when every such part is taken — a
// stolen straggler. With nothing grantable it answers "wait", and once
// every key is recorded, "done".
func (c *Coordinator) Lease(worker string) LeaseGrant {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	if c.doneLocked() {
		return LeaseGrant{Status: GrantDone}
	}
	for _, p := range c.parts {
		if len(p.remaining) > 0 && p.leaseID == "" {
			return c.grantLocked(worker, p)
		}
	}
	if p := c.stealLocked(); p != nil {
		return c.grantLocked(worker, p)
	}
	return LeaseGrant{Status: GrantWait, RetryNS: int64(c.o.LeaseTTL / 4)}
}

// grantLocked issues a lease on part p to worker.
func (c *Coordinator) grantLocked(worker string, p *partState) LeaseGrant {
	c.seq++
	c.granted++
	c.o.Obs.Counter("dist.leases_granted").Inc()
	id := fmt.Sprintf("lease-%04d", c.seq)
	now := c.now()
	l := &lease{id: id, worker: worker, part: p.id, granted: now, renewed: now}
	c.leases[id] = l
	p.leaseID = id
	keys := make([]string, 0, len(p.remaining))
	for k := range p.remaining {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c.logf("dist: lease %s: part %d/%d (%d keys) -> worker %s", id, p.id, len(c.parts), len(keys), worker)
	return LeaseGrant{
		Status: GrantLease,
		Lease:  id,
		Part:   p.id,
		Parts:  len(c.parts),
		Keys:   keys,
		Spec:   c.spec,
		TTLNS:  int64(c.o.LeaseTTL),
	}
}

// expireLocked lazily revokes leases whose heartbeat deadline passed.
func (c *Coordinator) expireLocked() {
	now := c.now()
	for id, l := range c.leases {
		if now.Sub(l.renewed) > c.o.LeaseTTL {
			c.expired++
			c.o.Obs.Counter("dist.leases_expired").Inc()
			c.logf("dist: lease %s (part %d, worker %s) expired after %v without heartbeat",
				id, l.part, l.worker, now.Sub(l.renewed))
			c.revokeLocked(l)
		}
	}
}

// revokeLocked forgets a live lease and returns its part to the pool.
func (c *Coordinator) revokeLocked(l *lease) {
	delete(c.leases, l.id)
	if p := c.parts[l.part]; p.leaseID == l.id {
		p.leaseID = ""
	}
}

// stealLocked picks a straggler lease to revoke: per-job span timings
// streamed with each result give a mean job duration, and a lease that
// has gone StallFactor times that mean (never less than one TTL)
// without delivering a result is slower than re-running its remainder
// elsewhere. Among stragglers the one holding the most unrecorded keys
// is stolen first; ties break on part id so the choice is
// deterministic.
func (c *Coordinator) stealLocked() *partState {
	jobs := len(c.done)
	if jobs == 0 || c.elapsed <= 0 {
		return nil // no timing signal yet: nothing to judge stragglers by
	}
	threshold := time.Duration(float64(c.elapsed/int64(jobs)) * c.o.StallFactor)
	if threshold < c.o.LeaseTTL {
		threshold = c.o.LeaseTTL
	}
	now := c.now()
	var victim *lease
	for _, l := range c.leases {
		p := c.parts[l.part]
		if len(p.remaining) == 0 {
			continue
		}
		last := l.lastResult
		if last.IsZero() {
			last = l.granted
		}
		if now.Sub(last) <= threshold {
			continue
		}
		if victim == nil ||
			len(p.remaining) > len(c.parts[victim.part].remaining) ||
			(len(p.remaining) == len(c.parts[victim.part].remaining) && l.part < victim.part) {
			victim = l
		}
	}
	if victim == nil {
		return nil
	}
	c.stolen++
	c.o.Obs.Counter("dist.leases_stolen").Inc()
	c.logf("dist: stealing lease %s (part %d, worker %s): no result for > %v",
		victim.id, victim.part, victim.worker, threshold)
	p := c.parts[victim.part]
	c.revokeLocked(victim)
	return p
}

// Heartbeat renews a lease's TTL. ErrLeaseGone tells the worker its
// grant was revoked and the shard should be abandoned.
func (c *Coordinator) Heartbeat(leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	l, ok := c.leases[leaseID]
	if !ok {
		return ErrLeaseGone
	}
	l.renewed = c.now()
	return nil
}

// Results merges a batch of completed jobs into the ledger. Acceptance
// is idempotent and lease-independent: results are keyed by job hash,
// so duplicates with identical payloads are counted and dropped, late
// results from revoked leases are folded in (the work is done — the
// determinism contract makes it indistinguishable from the live
// holder's), and a payload that diverges from the recorded one rejects
// the whole batch before any ledger write. The error return is either
// a validation rejection (ErrDivergent/ErrForeignKey) or a ledger
// append failure.
func (c *Coordinator) Results(leaseID string, entries []Entry) (accepted, duplicates int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	if c.appender == nil {
		return 0, 0, errors.New("dist: coordinator is closed")
	}

	// Validate the whole batch against the universe, the merged state,
	// and itself before writing anything: a rejected batch must leave no
	// partial trace in the ledger.
	type add struct {
		key string
		val json.RawMessage
		ns  int64
	}
	var adds []add
	inBatch := make(map[string]json.RawMessage)
	for _, e := range entries {
		if _, known := c.universe[e.Key]; !known {
			return 0, 0, fmt.Errorf("%w: job %q is not part of sweep %s", ErrForeignKey, e.Key, c.spec.Experiment)
		}
		cv, cerr := compactValue(e.Value)
		if cerr != nil {
			return 0, 0, fmt.Errorf("dist: result for job %q: %w", e.Key, cerr)
		}
		prev, dup := c.done[e.Key]
		if !dup {
			prev, dup = inBatch[e.Key]
		}
		if dup {
			if !bytes.Equal(prev, cv) {
				return 0, 0, fmt.Errorf("%w for job %q: recorded %d bytes, resubmitted %d bytes differ",
					ErrDivergent, e.Key, len(prev), len(cv))
			}
			duplicates++
			continue
		}
		inBatch[e.Key] = cv
		adds = append(adds, add{key: e.Key, val: cv, ns: e.ElapsedNS})
	}

	l, live := c.leases[leaseID]
	if !live && len(adds) > 0 {
		c.late += uint64(len(adds))
		c.o.Obs.Counter("dist.late_results").Add(uint64(len(adds)))
	}
	c.dups += uint64(duplicates)
	if duplicates > 0 {
		c.o.Obs.Counter("dist.duplicate_results").Add(uint64(duplicates))
	}

	for _, a := range adds {
		if err := c.appender.Append(a.key, a.val, time.Duration(a.ns)); err != nil {
			// The ledger could not record progress; nothing past this
			// point was merged, and the in-memory state matches the file.
			return accepted, duplicates, fmt.Errorf("dist: ledger append: %w", err)
		}
		c.markDoneLocked(a.key, a.val, a.ns)
		accepted++
	}
	if live {
		now := c.now()
		l.renewed = now
		if accepted > 0 {
			l.lastResult = now
		}
	}
	c.o.Obs.Counter("dist.results_merged").Add(uint64(accepted))
	return accepted, duplicates, nil
}

// markDoneLocked records one merged result and advances part/sweep
// completion. A part whose last key arrives is done no matter which
// lease delivered it; its live lease, if any, is released on the spot.
func (c *Coordinator) markDoneLocked(key string, val json.RawMessage, elapsedNS int64) {
	c.done[key] = val
	c.elapsed += elapsedNS
	p := c.parts[c.universe[key]]
	delete(p.remaining, key)
	if len(p.remaining) == 0 {
		if p.leaseID != "" {
			delete(c.leases, p.leaseID)
			p.leaseID = ""
		}
		c.checkFinishedLocked()
	}
}

func (c *Coordinator) doneLocked() bool { return len(c.done) == len(c.universe) }

func (c *Coordinator) checkFinishedLocked() {
	if c.doneLocked() {
		c.finishGen.Do(func() { close(c.finished) })
	}
}

// Complete acknowledges a worker's claim that its leased part is
// finished. It is idempotent: a live lease over an exhausted part
// answers "ok"; a revoked or unknown lease answers "superseded" (the
// results that mattered were already merged, or the part was re-leased
// — either way the worker is free to move on); a live lease whose part
// still has unrecorded keys is revoked and re-pooled, answering
// "incomplete".
func (c *Coordinator) Complete(leaseID string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	l, ok := c.leases[leaseID]
	if !ok {
		return "superseded"
	}
	p := c.parts[l.part]
	if len(p.remaining) > 0 {
		c.logf("dist: lease %s completed with %d keys unrecorded; re-pooling part %d", leaseID, len(p.remaining), l.part)
		c.revokeLocked(l)
		return "incomplete"
	}
	c.revokeLocked(l)
	return "ok"
}

// StatusSnapshot reports progress for /dist/v1/status and the tests.
func (c *Coordinator) StatusSnapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	doneParts := 0
	for _, p := range c.parts {
		if len(p.remaining) == 0 {
			doneParts++
		}
	}
	return Status{
		Experiment: c.spec.Experiment,
		TotalJobs:  len(c.universe),
		DoneJobs:   len(c.done),
		Parts:      len(c.parts),
		DoneParts:  doneParts,
		LiveLeases: len(c.leases),
		Granted:    c.granted,
		Expired:    c.expired,
		Stolen:     c.stolen,
		Duplicates: c.dups,
		Late:       c.late,
		Restored:   c.restored,
		Done:       c.doneLocked(),
	}
}

// Replay returns the evaluation options that regenerate the merged
// report: the sweep's own options (NoTimings forced) resuming from the
// ledger with a single worker, after verifying the ledger covers the
// whole universe under strict salvage. Replays are deterministic, so
// the report — and an obs snapshot of the replay — is byte-identical no
// matter how many workers contributed.
func (c *Coordinator) Replay() (eval.Options, error) {
	select {
	case <-c.finished:
	default:
		c.mu.Lock()
		n, total := len(c.done), len(c.universe)
		c.mu.Unlock()
		return eval.Options{}, fmt.Errorf("dist: sweep incomplete: %d/%d jobs merged", n, total)
	}
	vals, _, err := runner.SalvageStrict(c.fs(), c.o.Ledger)
	if err != nil {
		return eval.Options{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.universe {
		if _, ok := vals[k]; !ok {
			return eval.Options{}, fmt.Errorf("dist: ledger %s lost job %q between merge and replay", c.o.Ledger, k)
		}
	}
	eo := c.spec.EvalOptions()
	eo.Workers = 1
	eo.Checkpoint = c.o.Ledger
	eo.Resume = true
	eo.FS = c.o.FS
	return eo, nil
}

// WriteReport replays the merged ledger into the final report. Valid
// only once Done() is closed.
func (c *Coordinator) WriteReport(w io.Writer) error {
	eo, err := c.Replay()
	if err != nil {
		return err
	}
	return eo.Run(w, c.spec.Experiment)
}
