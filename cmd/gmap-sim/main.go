// Command gmap-sim runs a memory trace — an original per-thread trace, a
// generated proxy, or a built-in benchmark — through the SIMT-aware
// multi-core cache and DRAM hierarchy and reports the performance metrics
// the paper validates proxies on.
//
// Usage:
//
//	gmap-sim -workload kmeans
//	gmap-sim -proxy kmeans.proxy.wtrc -l1-size 32768 -l1-ways 8
//	gmap-sim -in app.trc -scheduler gto -l1-prefetch
//	gmap-sim -workload bfs -timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/uteda/gmap"
	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/prefetch"
	"github.com/uteda/gmap/internal/runner"
)

func main() {
	var (
		workload = flag.String("workload", "", "built-in benchmark to simulate")
		scale    = flag.Int("scale", 1, "workload scale for -workload")
		in       = flag.String("in", "", "per-thread trace file (gmap binary format)")
		proxyIn  = flag.String("proxy", "", "proxy warp-trace file")

		cores    = flag.Int("cores", 15, "number of SMs")
		l1Size   = flag.Int("l1-size", 16*1024, "L1 size in bytes")
		l1Ways   = flag.Int("l1-ways", 4, "L1 associativity")
		l1Line   = flag.Int("l1-line", 128, "L1 line size")
		l2Size   = flag.Int("l2-size", 1<<20, "L2 size in bytes")
		l2Ways   = flag.Int("l2-ways", 8, "L2 associativity")
		l2Line   = flag.Int("l2-line", 128, "L2 line size")
		l2Banks  = flag.Int("l2-banks", 8, "L2 bank count")
		mshrs    = flag.Int("mshrs", 64, "MSHRs per core (0 = unbounded)")
		l1wt     = flag.Bool("l1-write-through", false, "write-through/no-allocate L1 (Fermi global-store policy)")
		sched    = flag.String("scheduler", "lrr", "warp scheduler: lrr, gto or pself")
		pself    = flag.Float64("pself", 0.9, "SchedPself repeat probability (pself scheduler)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		l1pf     = flag.Bool("l1-prefetch", false, "enable the L1 stride prefetcher")
		l1pfDeg  = flag.Int("l1-prefetch-degree", 2, "L1 prefetch degree")
		l2pf     = flag.Bool("l2-prefetch", false, "enable the L2 stream prefetcher")
		l2pfWin  = flag.Int("l2-prefetch-window", 16, "L2 stream window (lines)")
		l2pfDeg  = flag.Int("l2-prefetch-degree", 2, "L2 prefetch degree")
		channels = flag.Int("dram-channels", 8, "DRAM channels")
		busBytes = flag.Int("dram-bus", 8, "DRAM bus width in bytes")
		mapping  = flag.String("dram-mapping", "RoBaRaCoCh", "DRAM address mapping: RoBaRaCoCh or ChRaBaRoCo")
		simWork  = flag.Int("sim-workers", 0, "SM worker goroutines inside the simulation (0/1 = serial engine; results are bit-identical either way)")
		timeout  = flag.Duration("timeout", 0, "abort the simulation after this long (0 = no limit)")
		retries  = flag.Int("retries", 0, "re-run the simulation up to N times if it fails with a transient error")
		retryBck = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay before a retry, doubled per attempt with jitter")
		obsOut   = flag.String("obs-out", "", "stream cycle-sampled observability series to this JSONL file (- for stdout)")
		obsSnap  = flag.String("obs-snapshot", "", "dump the full observability registry as JSON to this file (- for stdout)")
		serveA   = flag.String("serve", "", "serve live observability over HTTP on this address (/metrics, /trace, /debug/pprof)")
		traceOut = flag.String("trace-out", "", "export the span trace: Chrome trace-event JSON (Perfetto), or JSONL if the path ends in .jsonl (- for stdout)")
	)
	flag.Parse()

	cfg := gmap.DefaultSimConfig()
	cfg.NumCores = *cores
	cfg.L1 = cache.Config{SizeBytes: *l1Size, Ways: *l1Ways, LineSize: *l1Line}
	if *l1wt {
		cfg.L1.Writes = cache.WriteThroughNoAllocate
	}
	cfg.L2 = cache.Config{SizeBytes: *l2Size, Ways: *l2Ways, LineSize: *l2Line}
	cfg.L2Banks = *l2Banks
	cfg.MSHRsPerCore = *mshrs
	cfg.Seed = *seed
	cfg.Workers = *simWork
	cfg.SchedPself = *pself
	switch *sched {
	case "lrr":
		cfg.Scheduler = gmap.LRR
	case "gto":
		cfg.Scheduler = gmap.GTO
	case "pself":
		cfg.Scheduler = gmap.PSelf
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *sched))
	}
	cfg.DRAM.Channels = *channels
	cfg.DRAM.BusBytes = *busBytes
	switch *mapping {
	case "RoBaRaCoCh":
		cfg.DRAM.Mapping = dram.RoBaRaCoCh
	case "ChRaBaRoCo":
		cfg.DRAM.Mapping = dram.ChRaBaRoCo
	default:
		fatal(fmt.Errorf("unknown DRAM mapping %q", *mapping))
	}
	if *l1pf {
		deg := *l1pfDeg
		cfg.NewL1Prefetcher = func() (prefetch.Prefetcher, error) {
			pc := prefetch.DefaultStrideConfig()
			pc.Degree = deg
			return prefetch.NewStride(pc)
		}
	}
	if *l2pf {
		sc := prefetch.DefaultStreamConfig()
		sc.Window = *l2pfWin
		sc.Degree = *l2pfDeg
		sc.LineSize = uint64(*l2Line)
		p, err := prefetch.NewStream(sc)
		if err != nil {
			fatal(err)
		}
		cfg.L2Prefetcher = p
	}

	if *obsOut != "" || *obsSnap != "" || *serveA != "" {
		cfg.Obs = gmap.NewObsRegistry()
	}
	var tracer *gmap.Tracer
	var root *gmap.TraceSpan
	if *traceOut != "" || *serveA != "" {
		tracer = gmap.NewTracer()
		root = tracer.Root("gmap-sim")
		cfg.TraceSpan = root
	}
	if *serveA != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		srv, err := gmap.StartObsServer(ctx, gmap.ServeOptions{Addr: *serveA, Registry: cfg.Obs, Tracer: tracer})
		if err != nil {
			fatal(err)
		}
		defer srv.Shutdown()
		fmt.Fprintf(os.Stderr, "gmap-sim: serving observability on http://%s\n", srv.Addr())
	}

	metrics, name, err := runSim(*workload, *scale, *in, *proxyIn, cfg, *timeout, *retries, *retryBck)
	root.End()
	if err != nil {
		fatal(err)
	}
	if *obsOut != "" {
		if err := writeObs(*obsOut, cfg.Obs.WriteSeriesJSONL); err != nil {
			fatal(err)
		}
	}
	if *obsSnap != "" {
		if err := writeObs(*obsSnap, cfg.Obs.WriteJSON); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		export := tracer.WriteChrome
		if strings.HasSuffix(*traceOut, ".jsonl") {
			export = tracer.WriteJSONL
		}
		if err := writeObs(*traceOut, export); err != nil {
			fatal(fmt.Errorf("trace export %s: %w", *traceOut, err))
		}
	}
	fmt.Printf("workload:          %s\n", name)
	fmt.Printf("requests:          %d\n", metrics.Requests)
	fmt.Printf("cycles:            %d\n", metrics.Cycles)
	fmt.Printf("L1 miss rate:      %.4f (%d/%d)\n", metrics.L1MissRate(), metrics.L1.Misses, metrics.L1.Accesses)
	fmt.Printf("L2 miss rate:      %.4f (%d/%d)\n", metrics.L2MissRate(), metrics.L2.Misses, metrics.L2.Accesses)
	if metrics.L1.PrefetchFills > 0 {
		fmt.Printf("L1 pf accuracy:    %.4f (%d/%d)\n", metrics.L1.PrefetchAccuracy(), metrics.L1.PrefetchUseful, metrics.L1.PrefetchFills)
	}
	if metrics.L2.PrefetchFills > 0 {
		fmt.Printf("L2 pf accuracy:    %.4f (%d/%d)\n", metrics.L2.PrefetchAccuracy(), metrics.L2.PrefetchUseful, metrics.L2.PrefetchFills)
	}
	fmt.Printf("MSHR stalls:       %d\n", metrics.MSHRStalls)
	fmt.Printf("DRAM RBL:          %.4f\n", metrics.DRAM.RowBufferLocality())
	fmt.Printf("DRAM avg queue:    %.2f\n", metrics.DRAM.AvgQueueLen())
	fmt.Printf("DRAM read latency: %.1f cycles\n", metrics.DRAM.AvgReadLatency())
	fmt.Printf("DRAM write latency:%.1f cycles\n", metrics.DRAM.AvgWriteLatency())
}

// runSim executes the simulation as a job on the experiment engine: a
// -timeout overrun or a panic in a pathological configuration surfaces
// as an ordinary error, and Ctrl-C cancels cleanly.
func runSim(workload string, scale int, in, proxyIn string, cfg gmap.SimConfig, timeout time.Duration, retries int, retryBackoff time.Duration) (gmap.Metrics, string, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	type simOut struct {
		Metrics gmap.Metrics
		Name    string
	}
	job := runner.Job[simOut]{
		Key: runner.JobKey("gmap-sim", workload, in, proxyIn),
		Run: func(ctx context.Context) (simOut, error) {
			m, name, err := run(workload, scale, in, proxyIn, cfg)
			return simOut{Metrics: m, Name: name}, err
		},
	}
	results, _, err := runner.Run(ctx,
		runner.Options{Workers: 1, Timeout: timeout, Retries: retries, RetryBackoff: retryBackoff},
		[]runner.Job[simOut]{job})
	if err != nil {
		return gmap.Metrics{}, "", err
	}
	r := results[0]
	return r.Value.Metrics, r.Value.Name, r.Err
}

func run(workload string, scale int, in, proxyIn string, cfg gmap.SimConfig) (gmap.Metrics, string, error) {
	n := 0
	for _, s := range []string{workload, in, proxyIn} {
		if s != "" {
			n++
		}
	}
	if n != 1 {
		return gmap.Metrics{}, "", fmt.Errorf("exactly one of -workload, -in, -proxy is required")
	}
	switch {
	case workload != "":
		tr, err := gmap.BenchmarkTrace(workload, scale)
		if err != nil {
			return gmap.Metrics{}, "", err
		}
		m, err := gmap.SimulateTrace(tr, cfg)
		return m, tr.Name, err
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return gmap.Metrics{}, "", err
		}
		defer f.Close()
		tr, err := gmap.ReadTrace(f)
		if err != nil {
			return gmap.Metrics{}, "", fmt.Errorf("%s: %w", in, err)
		}
		m, err := gmap.SimulateTrace(tr, cfg)
		return m, tr.Name, err
	default:
		f, err := os.Open(proxyIn)
		if err != nil {
			return gmap.Metrics{}, "", err
		}
		defer f.Close()
		proxy, err := gmap.ReadProxy(f)
		if err != nil {
			return gmap.Metrics{}, "", fmt.Errorf("%s: %w", proxyIn, err)
		}
		m, err := gmap.SimulateProxy(proxy, cfg)
		return m, proxy.Name + " (proxy)", err
	}
}

// writeObs streams one observability export (JSONL series or a JSON
// snapshot) to path, with "-" selecting stdout.
func writeObs(path string, export func(io.Writer) error) error {
	if path == "-" {
		return export(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmap-sim:", err)
	os.Exit(1)
}
