// Package dram is a transaction-level GDDR memory-system simulator in the
// spirit of Ramulator [11], scoped to what G-MAP's evaluation needs: a
// multi-channel, multi-rank, multi-bank organization with open-row
// buffers, FR-FCFS or FCFS scheduling, configurable bus width and the two
// address mapping schemes the paper sweeps (RoBaRaCoCh and ChRaBaRoCo).
//
// The controller is event-queued: requests are enqueued with an arrival
// cycle, each channel services its queue under the scheduling policy, and
// completions are delivered as simulated time advances. It reports the
// three Figure 7 metrics — row buffer locality, average queue length, and
// average read/write latency.
package dram

import (
	"container/heap"
	"fmt"

	"github.com/uteda/gmap/internal/obs"
)

// AddrMapping selects how a physical line address decomposes into
// channel/rank/bank/row/column fields, LSB first.
type AddrMapping int

// The two mappings evaluated in Figure 7. The names read MSB to LSB, so
// RoBaRaCoCh places the channel in the lowest bits (maximizing channel
// interleaving of consecutive lines) while ChRaBaRoCo places the column
// and row low (maximizing row locality within one channel).
const (
	RoBaRaCoCh AddrMapping = iota
	ChRaBaRoCo
)

// String returns the scheme name.
func (m AddrMapping) String() string {
	if m == ChRaBaRoCo {
		return "ChRaBaRoCo"
	}
	return "RoBaRaCoCh"
}

// SchedPolicy selects the per-channel request scheduler.
type SchedPolicy int

// Supported schedulers: first-ready FCFS (row hits first) and plain FCFS.
const (
	FRFCFS SchedPolicy = iota
	FCFS
)

// String returns "fr-fcfs" or "fcfs".
func (p SchedPolicy) String() string {
	if p == FCFS {
		return "fcfs"
	}
	return "fr-fcfs"
}

// Config describes the memory system.
type Config struct {
	// Geometry.
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	// RowBytes is the row-buffer (page) size per bank.
	RowBytes int
	// TxBytes is the request granularity — the L2 line size (128B).
	TxBytes int
	// BusBytes is the data bus width in bytes per channel; with DDR
	// signaling a transaction occupies TxBytes/(2*BusBytes) cycles.
	BusBytes int
	// Timing in memory-clock cycles (Table 2: 11-11-11-28 for GDDR3).
	TRCD, TCAS, TRP, TRAS int
	// Refresh: every TREFI cycles a channel stalls for TRFC cycles and
	// all of its row buffers close. Zero TREFI disables refresh.
	TREFI, TRFC int
	// Sched is the request scheduling policy.
	Sched SchedPolicy
	// Mapping is the address decomposition scheme.
	Mapping AddrMapping
}

// DefaultGDDR3 returns the Table 2 profiled configuration: 8 channels, 1
// rank, 8 banks, 2KB rows, 11-11-11-28, FR-FCFS, RoBaRaCoCh.
func DefaultGDDR3() Config {
	return Config{
		Channels: 8, RanksPerChannel: 1, BanksPerRank: 8,
		RowBytes: 2048, TxBytes: 128, BusBytes: 8,
		TRCD: 11, TCAS: 11, TRP: 11, TRAS: 28,
		TREFI: 9360, TRFC: 128,
		Sched: FRFCFS, Mapping: RoBaRaCoCh,
	}
}

// GDDR5 returns a GDDR5-class configuration with the given channel count,
// bus width and mapping — the Figure 7 sweep axes. Timings follow typical
// GDDR5 at 1.25GHz command clock.
func GDDR5(channels, busBytes int, mapping AddrMapping) Config {
	return Config{
		Channels: channels, RanksPerChannel: 1, BanksPerRank: 16,
		RowBytes: 2048, TxBytes: 128, BusBytes: busBytes,
		TRCD: 14, TCAS: 15, TRP: 14, TRAS: 32,
		TREFI: 9360, TRFC: 160,
		Sched: FRFCFS, Mapping: mapping,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"channels", c.Channels}, {"ranks", c.RanksPerChannel},
		{"banks", c.BanksPerRank}, {"row bytes", c.RowBytes},
		{"tx bytes", c.TxBytes}, {"bus bytes", c.BusBytes},
	} {
		if f.v <= 0 || f.v&(f.v-1) != 0 {
			return fmt.Errorf("dram: %s = %d must be a positive power of two", f.name, f.v)
		}
	}
	if c.RowBytes < c.TxBytes {
		return fmt.Errorf("dram: row (%dB) smaller than transaction (%dB)", c.RowBytes, c.TxBytes)
	}
	if c.TRCD <= 0 || c.TCAS <= 0 || c.TRP <= 0 || c.TRAS <= 0 {
		return fmt.Errorf("dram: non-positive timing %d-%d-%d-%d", c.TRCD, c.TCAS, c.TRP, c.TRAS)
	}
	if c.TREFI < 0 || c.TRFC < 0 || (c.TREFI > 0 && c.TRFC <= 0) {
		return fmt.Errorf("dram: bad refresh timing tREFI=%d tRFC=%d", c.TREFI, c.TRFC)
	}
	return nil
}

// burstCycles is the data-bus occupancy of one transaction.
func (c Config) burstCycles() uint64 {
	n := c.TxBytes / (2 * c.BusBytes) // DDR: two beats per cycle
	if n < 1 {
		n = 1
	}
	return uint64(n)
}

// Coord is a decomposed address.
type Coord struct {
	Channel, Rank, Bank, Row, Col int
}

// Decompose maps a byte address to its DRAM coordinates under the
// configured mapping.
func (c Config) Decompose(addr uint64) Coord {
	line := addr / uint64(c.TxBytes)
	cols := uint64(c.RowBytes / c.TxBytes)
	ch, ra, ba := uint64(c.Channels), uint64(c.RanksPerChannel), uint64(c.BanksPerRank)
	var co Coord
	switch c.Mapping {
	case ChRaBaRoCo:
		// LSB -> MSB: column, row, bank, rank, channel.
		co.Col = int(line % cols)
		line /= cols
		co.Row = int(line % (1 << 16))
		line /= 1 << 16
		co.Bank = int(line % ba)
		line /= ba
		co.Rank = int(line % ra)
		line /= ra
		co.Channel = int(line % ch)
	default: // RoBaRaCoCh: LSB -> MSB: channel, column, rank, bank, row.
		co.Channel = int(line % ch)
		line /= ch
		co.Col = int(line % cols)
		line /= cols
		co.Rank = int(line % ra)
		line /= ra
		co.Bank = int(line % ba)
		line /= ba
		co.Row = int(line)
	}
	return co
}

// Completion reports a finished request.
type Completion struct {
	// ID echoes the caller's request identifier.
	ID uint64
	// Done is the cycle the data transfer finished.
	Done uint64
	// RowHit reports whether the request hit an open row.
	RowHit bool
	// Write echoes the request kind.
	Write bool
	// Arrival echoes the enqueue cycle (Done-Arrival is the latency).
	Arrival uint64
}

type pending struct {
	id      uint64
	addr    uint64
	write   bool
	arrival uint64
	coord   Coord
}

type bankState struct {
	openRow     int
	hasOpenRow  bool
	readyAt     uint64 // earliest next column command
	activatedAt uint64 // for tRAS
}

type completionHeap []Completion

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].Done < h[j].Done }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(Completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type channel struct {
	queue   []pending
	banks   []bankState
	busFree uint64
	done    completionHeap
	// nextRefresh is the cycle the channel's next all-bank refresh is due.
	nextRefresh uint64
}

// Stats accumulates the Figure 7 metrics.
type Stats struct {
	Requests     uint64
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed-row activations
	RowConflicts uint64 // precharge + activate
	// Queue-length sampling: one sample per enqueue.
	queueSamples uint64
	queueSum     uint64
	// Latency accumulation.
	readLatSum  uint64
	writeLatSum uint64
	// Refreshes counts all-bank refresh operations performed.
	Refreshes uint64
}

// RowBufferLocality returns RowHits / serviced requests.
func (s Stats) RowBufferLocality() float64 {
	n := s.RowHits + s.RowMisses + s.RowConflicts
	if n == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(n)
}

// AvgQueueLen returns the mean channel-queue length observed at request
// arrival.
func (s Stats) AvgQueueLen() float64 {
	if s.queueSamples == 0 {
		return 0
	}
	return float64(s.queueSum) / float64(s.queueSamples)
}

// AvgReadLatency returns the mean arrival-to-data latency of reads, in
// memory cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.readLatSum) / float64(s.Reads)
}

// AvgWriteLatency returns the mean write latency in memory cycles.
func (s Stats) AvgWriteLatency() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.writeLatSum) / float64(s.Writes)
}

// Controller is the memory controller front end. It is not safe for
// concurrent use.
type Controller struct {
	cfg      Config
	channels []channel
	nextID   uint64
	inFlight int
	// Stats is exported for read-out; callers must not mutate it.
	Stats Stats
	// obs holds live observability handles; nil when detached, so the
	// instrumented scheduling path costs one predictable branch.
	obs *ctrlObs
}

// ctrlObs mirrors the controller's row-buffer and traffic activity into
// an observability registry and samples the outstanding-request depth as
// a cycle-keyed series. Pure observer: it never influences scheduling.
type ctrlObs struct {
	rowHits      *obs.Counter
	rowMisses    *obs.Counter
	rowConflicts *obs.Counter
	refreshes    *obs.Counter
	reads        *obs.Counter
	writes       *obs.Counter
	queueDepth   *obs.Sampler
	latency      *obs.Histogram // per-request arrival-to-data cycles

	// Plain hot-path tallies: the controller is driven by one goroutine,
	// so command scheduling counts here and FlushObs publishes the batch
	// to the registry handles above once per run.
	nRowHits      uint64
	nRowMisses    uint64
	nRowConflicts uint64
	nRefreshes    uint64
	nReads        uint64
	nWrites       uint64
	lat           obs.LocalHistogram
}

// AttachObs registers the controller's counters ("dram.row_hits",
// "dram.row_misses", "dram.row_conflicts", "dram.refreshes",
// "dram.reads", "dram.writes"), the "dram.queue_depth" series and the
// "dram.latency_cycles" histogram with r. A nil registry detaches.
func (c *Controller) AttachObs(r *obs.Registry) {
	if r == nil {
		c.obs = nil
		return
	}
	c.obs = &ctrlObs{
		rowHits:      r.Counter("dram.row_hits"),
		rowMisses:    r.Counter("dram.row_misses"),
		rowConflicts: r.Counter("dram.row_conflicts"),
		refreshes:    r.Counter("dram.refreshes"),
		reads:        r.Counter("dram.reads"),
		writes:       r.Counter("dram.writes"),
		queueDepth:   r.Sampler("dram.queue_depth", 0),
		latency:      r.Histogram("dram.latency_cycles"),
	}
}

// FlushObs publishes the tallies accumulated since the last flush to
// the attached registry handles. No-op when detached; callers flush once
// per run (or before reading the registry), not per command.
func (c *Controller) FlushObs() {
	o := c.obs
	if o == nil {
		return
	}
	o.rowHits.Add(o.nRowHits)
	o.rowMisses.Add(o.nRowMisses)
	o.rowConflicts.Add(o.nRowConflicts)
	o.refreshes.Add(o.nRefreshes)
	o.reads.Add(o.nReads)
	o.writes.Add(o.nWrites)
	o.nRowHits, o.nRowMisses, o.nRowConflicts = 0, 0, 0
	o.nRefreshes, o.nReads, o.nWrites = 0, 0, 0
	o.lat.FlushTo(o.latency)
}

// NewController builds a controller.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, channels: make([]channel, cfg.Channels)}
	for i := range c.channels {
		c.channels[i].banks = make([]bankState, cfg.RanksPerChannel*cfg.BanksPerRank)
		c.channels[i].nextRefresh = uint64(cfg.TREFI)
	}
	return c, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Enqueue submits a request arriving at cycle now and returns its id.
func (c *Controller) Enqueue(addr uint64, write bool, now uint64) uint64 {
	id := c.nextID
	c.nextID++
	coord := c.cfg.Decompose(addr)
	ch := &c.channels[coord.Channel]
	c.Stats.queueSamples++
	c.Stats.queueSum += uint64(len(ch.queue))
	c.Stats.Requests++
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}
	ch.queue = append(ch.queue, pending{id: id, addr: addr, write: write, arrival: now, coord: coord})
	c.inFlight++
	if c.obs != nil {
		if write {
			c.obs.nWrites++
		} else {
			c.obs.nReads++
		}
		c.obs.queueDepth.Sample(now, float64(c.inFlight))
	}
	return id
}

// InFlight returns the number of requests enqueued but not yet delivered.
func (c *Controller) InFlight() int { return c.inFlight }

// AdvanceTo services queues up to cycle now and returns the completions
// whose data finished by now, in completion order.
func (c *Controller) AdvanceTo(now uint64) []Completion {
	return c.AdvanceInto(now, nil)
}

// AdvanceInto is AdvanceTo with a caller-owned completion buffer: the
// batch is appended to buf (typically buf[:0] of a retained slice) and
// the extended slice returned, so a caller advancing the controller once
// per simulated cycle allocates nothing in steady state.
func (c *Controller) AdvanceInto(now uint64, buf []Completion) []Completion {
	for i := range c.channels {
		ch := &c.channels[i]
		for c.serviceOne(ch, now) {
		}
		for ch.done.Len() > 0 && ch.done[0].Done <= now {
			buf = append(buf, heap.Pop(&ch.done).(Completion))
			c.inFlight--
		}
	}
	return buf
}

// NextCompletion reports the earliest cycle at which a completion will
// become available, forcing minimal service (at most one request per idle
// channel) to discover it. Callers use it to jump simulated time when the
// system is otherwise blocked; in that state no new arrivals can precede
// the returned cycle, so the forced service order is exactly what a
// cycle-by-cycle advance would produce. ok is false when nothing is
// outstanding.
func (c *Controller) NextCompletion() (uint64, bool) {
	best := ^uint64(0)
	ok := false
	for i := range c.channels {
		ch := &c.channels[i]
		if ch.done.Len() == 0 && len(ch.queue) > 0 {
			c.serviceOne(ch, ^uint64(0)>>1)
		}
		if ch.done.Len() > 0 && ch.done[0].Done < best {
			best = ch.done[0].Done
			ok = true
		}
	}
	return best, ok
}

// Drain services everything outstanding and returns all remaining
// completions.
func (c *Controller) Drain() []Completion {
	return c.AdvanceTo(^uint64(0) >> 1)
}

// serviceOne issues at most one request on a channel; it returns false
// when nothing can be scheduled at or before now.
func (c *Controller) serviceOne(ch *channel, now uint64) bool {
	if len(ch.queue) == 0 {
		return false
	}
	// Scheduling decision time: the bus must be free and at least one
	// request must have arrived.
	earliest := ch.queue[0].arrival
	for _, p := range ch.queue[1:] {
		if p.arrival < earliest {
			earliest = p.arrival
		}
	}
	t := ch.busFree
	if earliest > t {
		t = earliest
	}
	if t > now {
		return false
	}
	// All-bank refresh: when due, the channel stalls for tRFC and every
	// row buffer closes before the next request is scheduled.
	if c.cfg.TREFI > 0 {
		for t >= ch.nextRefresh {
			end := ch.nextRefresh + uint64(c.cfg.TRFC)
			for bi := range ch.banks {
				ch.banks[bi].hasOpenRow = false
				if ch.banks[bi].readyAt < end {
					ch.banks[bi].readyAt = end
				}
			}
			if ch.busFree < end {
				ch.busFree = end
			}
			ch.nextRefresh += uint64(c.cfg.TREFI)
			c.Stats.Refreshes++
			if c.obs != nil {
				c.obs.nRefreshes++
			}
		}
		if ch.busFree > t {
			t = ch.busFree
		}
		if t > now {
			return false
		}
	}
	// Candidate set: requests that have arrived by t, in queue (FCFS)
	// order. FR-FCFS picks the first row hit; FCFS the oldest.
	pick := -1
	if c.cfg.Sched == FRFCFS {
		for i, p := range ch.queue {
			if p.arrival > t {
				continue
			}
			b := &ch.banks[p.coord.Rank*c.cfg.BanksPerRank+p.coord.Bank]
			if b.hasOpenRow && b.openRow == p.coord.Row {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		for i, p := range ch.queue {
			if p.arrival <= t {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return false
	}
	p := ch.queue[pick]
	ch.queue = append(ch.queue[:pick], ch.queue[pick+1:]...)

	b := &ch.banks[p.coord.Rank*c.cfg.BanksPerRank+p.coord.Bank]
	start := t
	if b.readyAt > start {
		start = b.readyAt
	}
	var dataStart uint64
	var rowHit bool
	switch {
	case b.hasOpenRow && b.openRow == p.coord.Row:
		rowHit = true
		c.Stats.RowHits++
		if c.obs != nil {
			c.obs.nRowHits++
		}
		dataStart = start + uint64(c.cfg.TCAS)
	case !b.hasOpenRow:
		c.Stats.RowMisses++
		if c.obs != nil {
			c.obs.nRowMisses++
		}
		dataStart = start + uint64(c.cfg.TRCD+c.cfg.TCAS)
		b.activatedAt = start
	default:
		c.Stats.RowConflicts++
		if c.obs != nil {
			c.obs.nRowConflicts++
		}
		// Precharge may not begin before tRAS from the last activate.
		pre := start
		if min := b.activatedAt + uint64(c.cfg.TRAS); min > pre {
			pre = min
		}
		actAt := pre + uint64(c.cfg.TRP)
		dataStart = actAt + uint64(c.cfg.TRCD+c.cfg.TCAS)
		b.activatedAt = actAt
	}
	b.openRow, b.hasOpenRow = p.coord.Row, true

	burst := c.cfg.burstCycles()
	// Data bus occupied for the burst; serialize bursts on the channel.
	if dataStart < ch.busFree {
		dataStart = ch.busFree
	}
	done := dataStart + burst
	ch.busFree = done
	b.readyAt = dataStart

	lat := done - p.arrival
	if p.write {
		c.Stats.writeLatSum += lat
	} else {
		c.Stats.readLatSum += lat
	}
	if c.obs != nil {
		c.obs.lat.Observe(lat)
	}
	heap.Push(&ch.done, Completion{ID: p.id, Done: done, RowHit: rowHit, Write: p.write, Arrival: p.arrival})
	return true
}

// Reset clears all state and statistics.
func (c *Controller) Reset() {
	for i := range c.channels {
		c.channels[i] = channel{
			banks:       make([]bankState, c.cfg.RanksPerChannel*c.cfg.BanksPerRank),
			nextRefresh: uint64(c.cfg.TREFI),
		}
	}
	c.nextID = 0
	c.inFlight = 0
	c.Stats = Stats{}
}
