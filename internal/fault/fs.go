package fault

import (
	"io"
	"os"
)

// File is the writable-file surface the checkpoint layer needs: ordered
// writes, durability (Sync) and Close. os.File satisfies it.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface of the crash-consistent pipeline. The
// runner performs every checkpoint operation through an FS so tests can
// substitute an injector; OS is the real implementation.
type FS interface {
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create truncates or creates name for writing (compaction temps).
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// Rename atomically replaces newname with oldname (same directory).
	Rename(oldname, newname string) error
	// Truncate cuts name to size bytes (torn-tail salvage).
	Truncate(name string, size int64) error
	// Remove deletes name (stale compaction temps).
	Remove(name string) error
}

// osFS is the passthrough FS.
type osFS struct{}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Create(name string) (File, error)        { return os.Create(name) }
func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }
func (osFS) Rename(oldname, newname string) error    { return os.Rename(oldname, newname) }
func (osFS) Truncate(name string, size int64) error  { return os.Truncate(name, size) }
func (osFS) Remove(name string) error                { return os.Remove(name) }

// OS is the real filesystem.
var OS FS = osFS{}

// InjectFS wraps an FS with deterministic fault hooks. Zero-value hooks
// pass through; Inner nil means OS.
type InjectFS struct {
	Inner FS
	// WritePlanFor, when non-nil, supplies the fault plan applied to the
	// write stream of files opened via OpenAppend/Create. Called once per
	// open; return nil for a fault-free stream.
	WritePlanFor func(name string) *WritePlan
	// SyncErr, when non-nil, is consulted before each File.Sync; a
	// non-nil return is injected instead of syncing.
	SyncErr func(name string) error
	// RenameErr, when non-nil, is consulted before each Rename; a
	// non-nil return is injected and the rename does not happen.
	RenameErr func(oldname, newname string) error
	// TruncateErr, when non-nil, is consulted before each Truncate; a
	// non-nil return is injected and the truncate does not happen.
	TruncateErr func(name string, size int64) error
}

func (f *InjectFS) inner() FS {
	if f.Inner == nil {
		return OS
	}
	return f.Inner
}

// injectFile routes writes through a plan and sync through the hook. A
// plan that crashed also fails Sync and silently "loses" Close (the
// process is notionally dead; the underlying descriptor still closes so
// tests don't leak).
type injectFile struct {
	name string
	f    File
	plan *WritePlan
	fs   *InjectFS
}

func (i *injectFile) Write(b []byte) (int, error) {
	if i.plan == nil {
		return i.f.Write(b)
	}
	return i.plan.apply(i.f, b)
}

func (i *injectFile) Sync() error {
	if i.plan != nil && i.plan.Crashed() {
		return ErrCrash
	}
	if i.fs.SyncErr != nil {
		if err := i.fs.SyncErr(i.name); err != nil {
			return err
		}
	}
	return i.f.Sync()
}

func (i *injectFile) Close() error {
	err := i.f.Close()
	if i.plan != nil && i.plan.Crashed() {
		return ErrCrash
	}
	return err
}

func (f *InjectFS) wrap(name string, file File) File {
	var plan *WritePlan
	if f.WritePlanFor != nil {
		plan = f.WritePlanFor(name)
	}
	return &injectFile{name: name, f: file, plan: plan, fs: f}
}

// OpenAppend opens for append, attaching the file's write plan.
func (f *InjectFS) OpenAppend(name string) (File, error) {
	file, err := f.inner().OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(name, file), nil
}

// Create creates the file, attaching the file's write plan.
func (f *InjectFS) Create(name string) (File, error) {
	file, err := f.inner().Create(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(name, file), nil
}

// Open passes through to the inner FS.
func (f *InjectFS) Open(name string) (io.ReadCloser, error) { return f.inner().Open(name) }

// Rename injects RenameErr or passes through.
func (f *InjectFS) Rename(oldname, newname string) error {
	if f.RenameErr != nil {
		if err := f.RenameErr(oldname, newname); err != nil {
			return err
		}
	}
	return f.inner().Rename(oldname, newname)
}

// Truncate injects TruncateErr or passes through.
func (f *InjectFS) Truncate(name string, size int64) error {
	if f.TruncateErr != nil {
		if err := f.TruncateErr(name, size); err != nil {
			return err
		}
	}
	return f.inner().Truncate(name, size)
}

// Remove passes through to the inner FS.
func (f *InjectFS) Remove(name string) error { return f.inner().Remove(name) }
