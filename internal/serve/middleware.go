package serve

import (
	"fmt"
	"net/http"
	"time"

	"github.com/uteda/gmap/internal/obs"
)

// Instrument wraps an HTTP handler with request-level observability:
// per-plane request/status-class counters and a latency histogram.
// plane names the mux being wrapped ("dist", "serve", "obs") — metrics
// are per-plane rather than per-path so instrumenting a surface can
// never grow metric cardinality with traffic shape. Recorded metrics:
//
//	http.<plane>.requests            every completed request
//	http.<plane>.status.<c>xx        responses by status class
//	http.<plane>.latency_ns          handler wall time
//
// A nil registry returns h unchanged — the disabled path costs nothing,
// matching the obs nil-receiver contract.
func Instrument(reg *obs.Registry, plane string, h http.Handler) http.Handler {
	if reg == nil {
		return h
	}
	requests := reg.Counter("http." + plane + ".requests")
	latency := reg.Histogram("http." + plane + ".latency_ns")
	// Status classes are a fixed, tiny set; pre-resolving them keeps the
	// per-request path to three atomic bumps and a clock read.
	classes := [6]*obs.Counter{}
	for c := 1; c <= 5; c++ {
		classes[c] = reg.Counter(fmt.Sprintf("http.%s.status.%dxx", plane, c))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		requests.Inc()
		if c := sw.code / 100; c >= 1 && c <= 5 {
			classes[c].Inc()
		}
		latency.Observe(uint64(time.Since(start).Nanoseconds()))
	})
}

// statusRecorder captures the response status code. A handler that
// never calls WriteHeader implicitly answered 200.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.code = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(b)
}

// Flush passes through so streaming handlers keep working when wrapped.
func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
