package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
)

func snapWith(counters map[string]uint64) *obs.Snapshot {
	return &obs.Snapshot{Counters: counters}
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	return res, rec.Body.String()
}

// TestMetricsLabelMergeSums is the federation merge contract: two
// workers reporting the same counter name must keep distinct labeled
// samples and sum — not clobber — in the unlabeled aggregate.
func TestMetricsLabelMergeSums(t *testing.T) {
	reg := obs.New()
	reg.Counter("dist.jobs_done").Add(5)
	f := New(Options{Self: "coordinator", Registry: reg})
	for name, v := range map[string]uint64{"w0": 3, "w1": 4} {
		if err := f.Record(PushRequest{
			Worker:   name,
			Snapshot: snapWith(map[string]uint64{"dist.jobs_done": v}),
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, body := get(t, f.Handler(), "/fleet/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	for _, want := range []string{
		"# TYPE gmap_dist_jobs_done counter",
		`gmap_dist_jobs_done{worker="coordinator"} 5`,
		`gmap_dist_jobs_done{worker="w0"} 3`,
		`gmap_dist_jobs_done{worker="w1"} 4`,
		"gmap_dist_jobs_done 12", // summed aggregate, not last-writer-wins
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
	if strings.Count(body, "# TYPE gmap_dist_jobs_done counter") != 1 {
		t.Errorf("duplicate TYPE line for merged family:\n%s", body)
	}
}

func TestMetricsMergesGaugesAndHistograms(t *testing.T) {
	mk := func(val, max int64, obsv uint64) *obs.Snapshot {
		r := obs.New()
		r.Gauge("queue.depth").Set(val)
		if max > val {
			r.Gauge("queue.depth").Set(max)
			r.Gauge("queue.depth").Set(val)
		}
		r.Histogram("lat").Observe(obsv)
		s := r.Snapshot()
		return &s
	}
	f := New(Options{})
	f.Record(PushRequest{Worker: "w0", Snapshot: mk(2, 6, 100)})
	f.Record(PushRequest{Worker: "w1", Snapshot: mk(3, 3, 100)})
	var buf bytes.Buffer
	if err := f.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		`gmap_queue_depth{worker="w0"} 2`,
		`gmap_queue_depth{worker="w1"} 3`,
		"gmap_queue_depth 5",     // gauge values sum
		"gmap_queue_depth_max 6", // maxima take the max
		`gmap_lat_count{worker="w0"} 1`,
		"gmap_lat_count 2",
		"gmap_lat_sum 200",
		`gmap_lat_bucket{le="127"} 2`, // same bucket from both workers merges
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestScrapeFoldsWorkerIn(t *testing.T) {
	reg := obs.New()
	reg.Counter("dist.worker.jobs").Add(7)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics.json" {
			http.NotFound(w, r)
			return
		}
		reg.WriteJSON(w)
	}))
	defer srv.Close()

	f := New(Options{
		Targets: func() []Source { return []Source{{Name: "w0", URL: srv.URL}} },
		Status:  func() interface{} { return map[string]int{"parts": 4} },
	})
	f.ScrapeOnce(context.Background())

	fs := f.StatusSnapshot()
	if len(fs.Workers) != 1 {
		t.Fatalf("workers = %+v", fs.Workers)
	}
	w := fs.Workers[0]
	if w.Name != "w0" || w.Stale || w.Scrapes != 1 || w.LastError != "" {
		t.Fatalf("worker health = %+v", w)
	}
	if w.Counters["dist.worker.jobs"] != 7 {
		t.Fatalf("dist counters not surfaced: %+v", w.Counters)
	}
	if fs.Dist == nil {
		t.Fatal("owner status document missing")
	}

	// The scraped snapshot lands in the merged exposition too.
	var buf bytes.Buffer
	f.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), `gmap_dist_worker_jobs{worker="w0"} 7`) {
		t.Fatalf("scraped metrics missing:\n%s", buf.String())
	}
}

func TestScrapeErrorMarksWorker(t *testing.T) {
	f := New(Options{
		Targets: func() []Source {
			return []Source{{Name: "w0", URL: "http://127.0.0.1:1/nope"}}
		},
	})
	f.ScrapeOnce(context.Background())
	fs := f.StatusSnapshot()
	if fs.ScrapeErrors != 1 || len(fs.Workers) != 1 || fs.Workers[0].LastError == "" {
		t.Fatalf("scrape failure not recorded: %+v", fs)
	}
	if !fs.Workers[0].Stale {
		t.Fatal("never-heard worker should be stale")
	}
}

func TestStaleness(t *testing.T) {
	f := New(Options{Stale: time.Millisecond})
	f.Record(PushRequest{Worker: "gone"})
	f.Record(PushRequest{Worker: "done", Final: true})
	time.Sleep(5 * time.Millisecond)
	fs := f.StatusSnapshot()
	byName := map[string]WorkerHealth{}
	for _, w := range fs.Workers {
		byName[w.Name] = w
	}
	if !byName["gone"].Stale {
		t.Error("silent worker not marked stale")
	}
	if byName["done"].Stale || !byName["done"].Final {
		t.Error("finished worker wrongly marked stale")
	}
}

func TestMergedTraceExport(t *testing.T) {
	coord := obstrace.New()
	sweep := coord.Root("dist.sweep")
	lease := sweep.ChildTrack("dist.lease")
	sc := lease.Context()

	wrk := obstrace.New()
	ws := wrk.RemoteChild(sc, "dist.worker.lease")
	ws.End()
	lease.End()
	sweep.End()
	var jsonl bytes.Buffer
	if err := wrk.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}

	f := New(Options{Self: "coordinator", Tracer: coord})
	if err := f.Record(PushRequest{Worker: "w0", Final: true, TraceJSONL: jsonl.String()}); err != nil {
		t.Fatal(err)
	}
	res, body := get(t, f.Handler(), "/fleet/trace/chrome")
	if res.StatusCode != http.StatusOK || !json.Valid([]byte(body)) {
		t.Fatalf("merged export: status %d, body:\n%s", res.StatusCode, body)
	}
	for _, want := range []string{
		`"name":"coordinator"`,
		`"name":"w0"`,
		`"name":"dist.worker.lease"`,
		`"trace_id":"` + coord.TraceID() + `"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("merged export missing %q:\n%s", want, body)
		}
	}
}

func TestPushEndpoint(t *testing.T) {
	f := New(Options{})
	body, _ := json.Marshal(PushRequest{
		Worker:   "w0",
		Final:    true,
		Snapshot: snapWith(map[string]uint64{"dist.x": 1}),
	})
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/fleet/push", bytes.NewReader(body)))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("push = %d: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/fleet/push", strings.NewReader("{}")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("nameless push = %d, want 400", rec.Code)
	}
	if fs := f.StatusSnapshot(); fs.Pushes != 1 || !fs.Workers[0].Final {
		t.Fatalf("push not recorded: %+v", fs)
	}
}

func TestStatusEndpointJSON(t *testing.T) {
	f := New(Options{Self: "coordinator"})
	res, body := get(t, f.Handler(), "/fleet/status")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var fs FleetStatus
	if err := json.Unmarshal([]byte(body), &fs); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if fs.Self != "coordinator" || fs.StaleAfterNS <= 0 {
		t.Fatalf("status doc = %+v", fs)
	}
}

func TestNilFederatorNoOps(t *testing.T) {
	var f *Federator
	f.Run(context.Background())
	f.ScrapeOnce(context.Background())
	if err := f.Record(PushRequest{Worker: "w"}); err != nil {
		t.Fatal(err)
	}
	if fs := f.StatusSnapshot(); len(fs.Workers) != 0 {
		t.Fatal("nil federator grew state")
	}
	var buf bytes.Buffer
	if err := f.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRenderStatusFrame(t *testing.T) {
	dist, _ := json.Marshal(map[string]interface{}{
		"experiment": "fig6a", "epoch": 2, "total_jobs": 30, "done_jobs": 12,
		"parts": 4, "done_parts": 1, "live_leases": 2,
		"partitions": []map[string]interface{}{
			{"part": 0, "keys": 8, "remaining": 3, "lease": "lease-2-0004",
				"worker": "w0", "lease_age_ns": 1500000000},
		},
	})
	doc := statusDoc{
		Self: "coordinator", Scrapes: 9, Pushes: 2,
		Workers: []WorkerHealth{
			{Name: "w1", Stale: true},
			{Name: "w0", LastSeenUnixNS: 1, AgeNS: int64(time.Second), Scrapes: 9},
		},
		Dist: dist,
	}
	var buf bytes.Buffer
	RenderStatus(&buf, doc)
	out := buf.String()
	for _, want := range []string{
		"sweep fig6a  epoch 2", "jobs 12/30", "lease-2-0004", "1.5s",
		"STALE", "1s ago",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "w0") > strings.Index(out, "w1") {
		t.Errorf("workers not sorted:\n%s", out)
	}
}
