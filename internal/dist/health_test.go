package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func healthCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(CoordinatorOptions{
		Spec:     quickSpec("fig6a"),
		Parts:    2,
		LeaseTTL: time.Minute,
		Ledger:   filepath.Join(t.TempDir(), "ledger.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func hit(h http.Handler, method, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec
}

// TestHealthReadiness: liveness is unconditional, readiness tracks the
// coordinator's ability to merge — a closed ledger (or a deposed
// incarnation) answers 503 with the reason while /healthz stays 200,
// so an operator can tell a draining coordinator from a dead one.
func TestHealthReadiness(t *testing.T) {
	c := healthCoordinator(t)
	h := c.Handler()
	if rec := hit(h, "GET", "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if rec := hit(h, "GET", "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz on open coordinator = %d: %s", rec.Code, rec.Body.String())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	rec := hit(h, "GET", "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on closed coordinator = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "ledger closed") {
		t.Fatalf("readyz body %q should name the reason", rec.Body.String())
	}
	// Liveness is unaffected: the process still serves.
	if rec := hit(h, "GET", "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after close = %d", rec.Code)
	}
}

// TestLeaseEchoesWorkerName: every grant status quotes back the name
// the coordinator resolved for the caller. An unnamed worker gets a
// remote-address default from the lease handler, and only through
// this echo can it label its own fleet pushes to match.
func TestLeaseEchoesWorkerName(t *testing.T) {
	c := healthCoordinator(t)
	defer c.Close()
	g, err := c.LeaseAs("vm:9001", "http://127.0.0.1:9500")
	if err != nil {
		t.Fatal(err)
	}
	if g.Status != GrantLease || g.Worker != "vm:9001" {
		t.Fatalf("grant = %+v, want lease echoing worker vm:9001", g)
	}
	// Both parts leased: the next caller gets a wait (or steal) grant,
	// which must echo its own name, not the first worker's.
	g2, err := c.LeaseAs("vm:9002", "")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Worker != "vm:9002" {
		t.Fatalf("second grant = %+v, want it echoing worker vm:9002", g2)
	}
}

// TestFleetMountIsDynamic: /fleet/ resolves the federation handler per
// request, so SetFleet works on a coordinator whose server is already
// live — the standby-takeover wiring order.
func TestFleetMountIsDynamic(t *testing.T) {
	c := healthCoordinator(t)
	defer c.Close()
	h := c.Handler()
	if rec := hit(h, "GET", "/fleet/status"); rec.Code != http.StatusNotFound {
		t.Fatalf("unfederated /fleet/ = %d, want 404", rec.Code)
	}
	c.SetFleet(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	if rec := hit(h, "GET", "/fleet/status"); rec.Code != http.StatusTeapot {
		t.Fatalf("post-SetFleet /fleet/ = %d, want the federation handler", rec.Code)
	}
}

// TestProbeHealth covers the standby's two-step probe against the four
// coordinator generations it can meet: healthy, sick-but-serving,
// pre-healthz, and broken.
func TestProbeHealth(t *testing.T) {
	hc := &http.Client{Timeout: time.Second}
	ctx := context.Background()

	mk := func(healthCode int, statusCode int, statusBody string) *httptest.Server {
		mux := http.NewServeMux()
		if healthCode != 0 {
			mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(healthCode)
			})
		}
		mux.HandleFunc("/dist/v1/status", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(statusCode)
			w.Write([]byte(statusBody))
		})
		return httptest.NewServer(mux)
	}

	t.Run("healthy", func(t *testing.T) {
		srv := mk(http.StatusOK, http.StatusOK, `{"epoch":3,"done":true}`)
		defer srv.Close()
		st, err := probeHealth(ctx, hc, srv.URL)
		if err != nil || st.Epoch != 3 || !st.Done {
			t.Fatalf("st=%+v err=%v", st, err)
		}
	})
	t.Run("alive but status failing", func(t *testing.T) {
		// 200 on /healthz with a broken status endpoint is still alive:
		// liveness is the takeover question, not status availability.
		srv := mk(http.StatusOK, http.StatusInternalServerError, "")
		defer srv.Close()
		st, err := probeHealth(ctx, hc, srv.URL)
		if err != nil {
			t.Fatalf("alive coordinator reported dead: %v", err)
		}
		if st.Epoch != 0 || st.Experiment != "" || st.Done {
			t.Fatalf("expected zero status, got %+v", st)
		}
	})
	t.Run("pre-healthz fallback", func(t *testing.T) {
		// No /healthz route: the mux answers 404 and the probe must fall
		// back to the status endpoint alone.
		srv := mk(0, http.StatusOK, `{"epoch":1}`)
		defer srv.Close()
		st, err := probeHealth(ctx, hc, srv.URL)
		if err != nil || st.Epoch != 1 {
			t.Fatalf("st=%+v err=%v", st, err)
		}
	})
	t.Run("unhealthy", func(t *testing.T) {
		srv := mk(http.StatusServiceUnavailable, http.StatusOK, `{}`)
		defer srv.Close()
		if _, err := probeHealth(ctx, hc, srv.URL); err == nil {
			t.Fatal("503 healthz should read as a failed probe")
		}
	})
	t.Run("unreachable", func(t *testing.T) {
		if _, err := probeHealth(ctx, hc, "http://127.0.0.1:1"); err == nil {
			t.Fatal("connection refusal should read as a failed probe")
		}
	})
}
