// Fuzzing for the profile (de)serialization path. External test package
// so the proptest generators (which import profiler) can seed the corpus.
package profiler_test

import (
	"bytes"
	"testing"

	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/proptest"
)

// FuzzReadJSON feeds arbitrary bytes to the profile decoder. Any input
// must either be rejected or produce a profile that passes Validate and
// survives a write/read round trip unchanged in shape; the decoder must
// never panic.
func FuzzReadJSON(f *testing.F) {
	for seed := uint64(1); seed <= 3; seed++ {
		var buf bytes.Buffer
		if err := proptest.New(seed).Profile().WriteJSON(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("{}"))
	f.Add([]byte(`{"name":"x","grid_dim":-1}`))
	f.Add([]byte(`not json`))
	// Probability and window corruption: each must be rejected by
	// Validate, not propagate into the generator.
	f.Add([]byte(`{"name":"x","grid_dim":1,"block_dim":32,"line_size":128,"sched_p_self":1.5}`))
	f.Add([]byte(`{"name":"x","grid_dim":1,"block_dim":32,"line_size":128,"sched_p_self":-0.1}`))
	f.Add([]byte(`{"name":"x","grid_dim":1,"block_dim":32,"line_size":128,"insts":[{"pc":1,"off_lo":5,"off_hi":-5}]}`))
	f.Add([]byte(`{"name":"x","grid_dim":1,"block_dim":32,"line_size":128,"warps":-1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := profiler.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// ReadJSON validates, so anything accepted must be structurally
		// sound and must round-trip.
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted profile fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode of accepted profile failed: %v", err)
		}
		p2, err := profiler.ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if p2.Name != p.Name || p2.Warps != p.Warps || p2.TotalRequests != p.TotalRequests ||
			len(p2.Insts) != len(p.Insts) || len(p2.Profiles) != len(p.Profiles) {
			t.Fatalf("round trip changed shape: %+v vs %+v", p2, p)
		}
	})
}
