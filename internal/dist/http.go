package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/uteda/gmap/internal/serve"
)

// The coordinator's wire surface, mounted under /dist/v1/ on the shared
// serve transport. Control messages (lease, heartbeat, complete,
// status) are small JSON; result deliveries are the binary batch codec
// (codec.go) so checkpoint payload bytes pass through untouched.

// leaseRequest / leaseOpRequest are the JSON bodies of the control
// endpoints. Epoch on lease operations is the fencing epoch the lease
// was granted under.
type leaseRequest struct {
	Worker string `json:"worker"`
	// ObsURL self-announces the worker's exposition server for the fleet
	// federation's scrape discovery; optional.
	ObsURL string `json:"obs_url,omitempty"`
}

type leaseOpRequest struct {
	Lease string `json:"lease"`
	Epoch uint64 `json:"epoch"`
}

// resultsResponse reports what a results POST merged.
type resultsResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
}

// completeResponse carries the completion verdict.
type completeResponse struct {
	Status string `json:"status"`
}

// Machine-readable error codes carried beside the human message, so
// clients map wire errors back onto sentinels without string-matching.
const (
	codeGone       = "gone"
	codeStaleEpoch = "stale_epoch"
	codeDivergent  = "divergent"
	codeForeign    = "foreign"
)

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection is the only failure mode here
}

func writeErr(w http.ResponseWriter, code int, err error) {
	body := map[string]string{"error": err.Error()}
	if c := codeOf(err); c != "" {
		body["code"] = c
	}
	writeJSON(w, code, body)
}

// codeOf maps protocol sentinels to their wire codes.
func codeOf(err error) string {
	switch {
	case errors.Is(err, ErrLeaseGone):
		return codeGone
	case errors.Is(err, ErrStaleEpoch):
		return codeStaleEpoch
	case errors.Is(err, ErrDivergent):
		return codeDivergent
	case errors.Is(err, ErrForeignKey):
		return codeForeign
	default:
		return ""
	}
}

// statusOf maps protocol errors onto HTTP statuses: a gone lease is 410
// (the worker must re-lease), a stale epoch, divergent or foreign
// result is 409 (the submission conflicts with coordinator state and
// retrying it verbatim can never succeed), anything else is a 500
// infrastructure failure.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrLeaseGone):
		return http.StatusGone
	case errors.Is(err, ErrStaleEpoch), errors.Is(err, ErrDivergent), errors.Is(err, ErrForeignKey):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// Handler mounts the coordinator's endpoints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /dist/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode lease request: %w", err))
			return
		}
		if req.Worker == "" {
			req.Worker = r.RemoteAddr
		}
		g, err := c.LeaseAs(req.Worker, req.ObsURL)
		if err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, g)
	})
	mux.HandleFunc("POST /dist/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req leaseOpRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode heartbeat: %w", err))
			return
		}
		if err := c.Heartbeat(req.Lease, req.Epoch); err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /dist/v1/results", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBytes))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("read results body: %w", err))
			return
		}
		batch, err := DecodeBatch(data)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		accepted, dups, err := c.Results(batch.Lease, batch.Epoch, batch.Entries)
		if err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resultsResponse{Accepted: accepted, Duplicates: dups})
	})
	mux.HandleFunc("POST /dist/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req leaseOpRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode complete: %w", err))
			return
		}
		status, err := c.Complete(req.Lease, req.Epoch)
		if err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, completeResponse{Status: status})
	})
	mux.HandleFunc("GET /dist/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.StatusSnapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := c.Ready(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/fleet/", func(w http.ResponseWriter, r *http.Request) {
		// Resolved per request so SetFleet works even after Serve — a
		// standby wires federation onto its takeover coordinator whose
		// server is already live.
		if fh := c.fleetHandler(); fh != nil {
			fh.ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	})
	return serve.Instrument(c.o.Obs, "dist", mux)
}

// Serve binds addr (":0" picks a free port) and serves the coordinator
// API until ctx is cancelled, on the shared serve transport.
func (c *Coordinator) Serve(ctx context.Context, addr string) (*serve.Server, error) {
	return serve.Start(ctx, "gmap-dist", addr, c.Handler())
}
