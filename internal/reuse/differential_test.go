// Differential tests: the Fenwick-tree stack-distance tracker against
// the refmodel's quadratic backward-scan profiler.
package reuse_test

import (
	"reflect"
	"testing"

	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/refmodel"
	"github.com/uteda/gmap/internal/reuse"
)

// TestDistancesMatchReference compares the batch Distances helper on
// generated element streams of varying pool sizes, which cover dense
// revisits, cold-heavy streams and everything between.
func TestDistancesMatchReference(t *testing.T) {
	n := proptest.N(t, 200, 1000)
	for i := 0; i < n; i++ {
		seed := uint64(0xd15 + i)
		g := proptest.New(seed)
		length := 1 + g.R.Intn(300)
		distinct := 1 + g.R.Intn(length)
		stream := g.Lines(length, distinct)
		got := reuse.Distances(stream)
		want := refmodel.Distances(stream)
		if len(got) != len(want) {
			t.Fatalf("seed %d: length %d vs reference %d", seed, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("seed %d pos %d: distance %d, reference %d (stream %v)",
					seed, j, got[j], want[j], stream)
			}
		}
	}
}

// TestTrackerMatchesReference drives the incremental Tracker one access
// at a time — the API the profiler actually uses — against the reference
// distances, and checks the Distinct/Accesses counters.
func TestTrackerMatchesReference(t *testing.T) {
	n := proptest.N(t, 200, 1000)
	for i := 0; i < n; i++ {
		seed := uint64(0x7acc + i)
		g := proptest.New(seed)
		length := 1 + g.R.Intn(200)
		stream := g.Lines(length, 1+g.R.Intn(64))
		want := refmodel.Distances(stream)
		tr := reuse.NewTracker(g.R.Intn(32)) // hint independent of stream size
		seen := map[uint64]bool{}
		for j, e := range stream {
			if got := tr.Access(e); got != want[j] {
				t.Fatalf("seed %d pos %d: Tracker.Access(%d) = %d, reference %d",
					seed, j, e, got, want[j])
			}
			seen[e] = true
		}
		if tr.Distinct() != len(seen) {
			t.Fatalf("seed %d: Distinct = %d, want %d", seed, tr.Distinct(), len(seen))
		}
		if tr.Accesses() != length {
			t.Fatalf("seed %d: Accesses = %d, want %d", seed, tr.Accesses(), length)
		}
	}
}

// TestHistogramMatchesReference rebuilds the reuse histogram from the
// reference distances and requires identical per-key counts and total.
func TestHistogramMatchesReference(t *testing.T) {
	n := proptest.N(t, 200, 1000)
	for i := 0; i < n; i++ {
		seed := uint64(0x415706 + i)
		g := proptest.New(seed)
		stream := g.Lines(1+g.R.Intn(250), 1+g.R.Intn(80))
		h := reuse.Histogram(stream)
		want := map[int64]uint64{}
		for _, d := range refmodel.Distances(stream) {
			want[d]++
		}
		keys := h.Keys()
		if len(keys) != len(want) {
			t.Fatalf("seed %d: %d histogram keys, reference has %d", seed, len(keys), len(want))
		}
		for k, c := range want {
			if h.Count(k) != c {
				t.Fatalf("seed %d: count[%d] = %d, reference %d", seed, k, h.Count(k), c)
			}
		}
		if h.Total() != uint64(len(stream)) {
			t.Fatalf("seed %d: total %d, want %d", seed, h.Total(), len(stream))
		}
	}
}

// TestDistancesIdempotent: Distances must not mutate its input and must
// be a pure function of it.
func TestDistancesIdempotent(t *testing.T) {
	g := proptest.New(99)
	stream := g.Lines(200, 40)
	before := append([]uint64(nil), stream...)
	a := reuse.Distances(stream)
	b := reuse.Distances(stream)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Distances not deterministic on identical input")
	}
	if !reflect.DeepEqual(stream, before) {
		t.Fatal("Distances mutated its input stream")
	}
}
