package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/runner"
	"github.com/uteda/gmap/internal/serve/api"
)

// TestChaosWorkerKilledMidLease kills a worker (context cancel — the
// in-process stand-in for kill -9; the script chaos lane does it with a
// real signal) once it has merged at least one result, lets the short
// TTL expire its lease, and has a replacement worker finish the sweep.
// The merged report must still be byte-identical to the serial run.
func TestChaosWorkerKilledMidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep chaos; skipped in -short")
	}
	serial := serialReport(t, "fig6a")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c, err := NewCoordinator(CoordinatorOptions{
		Spec:     quickSpec("fig6a"),
		Parts:    4,
		LeaseTTL: time.Second,
		Ledger:   filepath.Join(t.TempDir(), "ledger.jsonl"),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := c.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	// Victim: killed as soon as it has merged a result mid-lease.
	victimCtx, kill := context.WithCancel(ctx)
	victimDone := make(chan error, 1)
	go func() {
		victimDone <- RunWorker(victimCtx, WorkerOptions{
			Coordinator: srv.URL(),
			Name:        "victim",
			Workers:     1,
			Poll:        10 * time.Millisecond,
		})
	}()
	deadline := time.After(time.Minute)
	for {
		st := c.StatusSnapshot()
		if st.DoneJobs >= 1 && st.DoneJobs < st.TotalJobs {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("victim never made progress: %+v", st)
		case <-time.After(5 * time.Millisecond):
		}
	}
	kill()
	if err := <-victimDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("killed victim returned %v", err)
	}

	// Replacement: drives the sweep to completion, inheriting the
	// victim's part once its lease expires.
	if err := RunWorker(ctx, WorkerOptions{
		Coordinator: srv.URL(),
		Name:        "replacement",
		Workers:     2,
		Poll:        50 * time.Millisecond,
		Logf:        t.Logf,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitDone(ctx); err != nil {
		t.Fatal(err)
	}
	st := c.StatusSnapshot()
	if st.Expired+st.Stolen == 0 {
		t.Errorf("victim's lease was never reclaimed: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != serial {
		t.Errorf("post-kill merged report differs from serial:\n--- dist ---\n%s--- serial ---\n%s", buf.String(), serial)
	}
}

// TestChaosCoordinatorRestart interrupts a sweep, drops the coordinator
// entirely, and builds a fresh one over the surviving ledger: the
// journal is the only durable state, restored results are not re-run,
// and the finished report is byte-identical to serial.
func TestChaosCoordinatorRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep chaos; skipped in -short")
	}
	serial := serialReport(t, "fig6a")
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Epoch 1: merge part of the sweep, then lose the coordinator.
	c1, err := NewCoordinator(CoordinatorOptions{
		Spec:     quickSpec("fig6a"),
		Parts:    4,
		LeaseTTL: time.Minute,
		Ledger:   ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := c1.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wctx, stopWorker := context.WithCancel(ctx)
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(wctx, WorkerOptions{Coordinator: srv1.URL(), Name: "w1", Workers: 1, Poll: 10 * time.Millisecond})
	}()
	deadline := time.After(time.Minute)
	for c1.StatusSnapshot().DoneJobs < 5 {
		select {
		case <-deadline:
			t.Fatalf("epoch 1 never reached 5 jobs: %+v", c1.StatusSnapshot())
		case <-time.After(5 * time.Millisecond):
		}
	}
	stopWorker()
	<-workerDone
	merged := c1.StatusSnapshot().DoneJobs
	srv1.Shutdown()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Epoch 2: a brand-new coordinator restores the journal and a fresh
	// worker finishes only the remainder.
	c2, err := NewCoordinator(CoordinatorOptions{
		Spec:     quickSpec("fig6a"),
		Parts:    4,
		LeaseTTL: time.Minute,
		Ledger:   ledger,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.StatusSnapshot().Restored; got != merged {
		t.Errorf("restart restored %d jobs, epoch 1 merged %d", got, merged)
	}
	srv2, err := c2.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	if err := RunWorker(ctx, WorkerOptions{Coordinator: srv2.URL(), Name: "w2", Workers: 2, Poll: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := c2.WaitDone(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c2.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != serial {
		t.Errorf("post-restart merged report differs from serial:\n--- dist ---\n%s--- serial ---\n%s", buf.String(), serial)
	}
}

// TestChaosTornLedgerWrite crashes the ledger stream mid-write and
// checks the restart contract: the crashed coordinator's in-memory done
// set never gets ahead of what a strict salvage of the file recovers,
// the torn tail is truncated, and a restarted coordinator finishes the
// sweep over the same file.
func TestChaosTornLedgerWrite(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.jsonl")
	ifs := &fault.InjectFS{WritePlanFor: func(name string) *fault.WritePlan {
		return fault.NewWritePlan().CrashAt(150)
	}}

	c, keys, _ := syntheticCoordinator(t, 10, CoordinatorOptions{
		Parts:    1,
		LeaseTTL: time.Minute,
		Ledger:   ledger,
		FS:       ifs,
	})
	g := mustLease(t, c, "w")
	if g.Status != GrantLease {
		t.Fatalf("grant %+v", g)
	}
	var entries []Entry
	for _, k := range g.Keys {
		entries = append(entries, Entry{Key: k, Value: payloadFor(k), ElapsedNS: 1e6})
	}
	accepted, _, err := c.Results(g.Lease, g.Epoch, entries)
	if err == nil {
		t.Fatal("batch survived a crashed ledger stream")
	}
	if accepted == 0 || accepted >= len(keys) {
		t.Fatalf("accepted %d of %d before the crash, want a strict prefix past 0", accepted, len(keys))
	}
	if got := c.StatusSnapshot().DoneJobs; got != accepted {
		t.Errorf("in-memory done %d != appended %d — state ran ahead of the file", got, accepted)
	}
	_ = c.Close() // the stream is notionally dead; errors are expected

	// Restart on the real filesystem: strict salvage recovers exactly
	// the fully-written prefix and truncates the torn tail.
	c2, _, _ := syntheticCoordinator(t, 10, CoordinatorOptions{
		Parts:    1,
		LeaseTTL: time.Minute,
		Ledger:   ledger,
	})
	st := c2.StatusSnapshot()
	if st.Restored != accepted {
		t.Errorf("restart restored %d, crashed coordinator appended %d", st.Restored, accepted)
	}
	g2 := mustLease(t, c2, "w2")
	if g2.Status != GrantLease {
		t.Fatalf("grant after restart: %+v", g2)
	}
	if len(g2.Keys) != len(keys)-accepted {
		t.Errorf("restart re-leased %d keys, want the %d-key remainder", len(g2.Keys), len(keys)-accepted)
	}
	var rest []Entry
	for _, k := range g2.Keys {
		rest = append(rest, Entry{Key: k, Value: payloadFor(k), ElapsedNS: 1e6})
	}
	if _, _, err := c2.Results(g2.Lease, g2.Epoch, rest); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("sweep not done after restart completion")
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	vals, sv, err := runner.SalvageStrict(nil, ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(keys) || sv.Lines != len(keys) {
		t.Errorf("final ledger %d entries / %d lines, want %d", len(vals), sv.Lines, len(keys))
	}
}

// TestChaosDivergentPayloadRejected pins batch atomicity under the
// determinism contract: a batch containing one divergent resubmission
// is rejected whole — the fresh keys riding in the same batch are not
// merged and nothing reaches the ledger.
func TestChaosDivergentPayloadRejected(t *testing.T) {
	c, _, _ := syntheticCoordinator(t, 6, CoordinatorOptions{Parts: 1, LeaseTTL: time.Minute})
	g := mustLease(t, c, "w")
	first := g.Keys[0]
	if _, _, err := c.Results(g.Lease, g.Epoch, []Entry{{Key: first, Value: payloadFor(first), ElapsedNS: 1}}); err != nil {
		t.Fatal(err)
	}

	fresh := g.Keys[1]
	_, _, err := c.Results(g.Lease, g.Epoch, []Entry{
		{Key: fresh, Value: payloadFor(fresh), ElapsedNS: 1},
		{Key: first, Value: json.RawMessage(`{"job":"tampered"}`), ElapsedNS: 1},
	})
	if !errors.Is(err, ErrDivergent) {
		t.Fatalf("divergent resubmission: %v", err)
	}
	if got := c.StatusSnapshot().DoneJobs; got != 1 {
		t.Errorf("rejected batch leaked %d merged jobs, want 1", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	vals, _, err := runner.SalvageStrict(nil, c.o.Ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 {
		t.Errorf("ledger holds %d entries after rejected batch, want 1", len(vals))
	}

	// An identical resubmission, by contrast, is a counted duplicate.
	c2, _, _ := syntheticCoordinator(t, 4, CoordinatorOptions{Parts: 1, LeaseTTL: time.Minute})
	g2 := mustLease(t, c2, "w")
	k := g2.Keys[0]
	for i := 0; i < 2; i++ {
		if _, _, err := c2.Results(g2.Lease, g2.Epoch, []Entry{{Key: k, Value: payloadFor(k), ElapsedNS: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if st := c2.StatusSnapshot(); st.Duplicates != 1 || st.DoneJobs != 1 {
		t.Errorf("identical resubmission: %+v, want 1 duplicate / 1 done", st)
	}
}

// TestChaosForeignKeyRejected covers both entry points: a result for a
// key outside the universe is a 409-class rejection, and a ledger
// belonging to a different sweep refuses to restore at all.
func TestChaosForeignKeyRejected(t *testing.T) {
	c, _, _ := syntheticCoordinator(t, 4, CoordinatorOptions{Parts: 1, LeaseTTL: time.Minute})
	g := mustLease(t, c, "w")
	_, _, err := c.Results(g.Lease, g.Epoch, []Entry{{Key: "deadbeef", Value: json.RawMessage(`{}`), ElapsedNS: 1}})
	if !errors.Is(err, ErrForeignKey) {
		t.Fatalf("foreign result: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	ledger := filepath.Join(t.TempDir(), "foreign.jsonl")
	app, err := runner.OpenCheckpointAppender(nil, ledger, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Append("deadbeef", json.RawMessage(`{}`), 0); err != nil {
		t.Fatal(err)
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	spec := api.JobSpec{Kind: api.KindSweep, Experiment: "synthetic"}
	o := CoordinatorOptions{Ledger: ledger}
	o.fillDefaults()
	if _, err := newCoordinator(spec, []string{runner.JobKey("synthetic", "job-000")}, o); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("foreign ledger restored: %v", err)
	}
}
