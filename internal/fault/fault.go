// Package fault is the deterministic fault-injection layer behind the
// experiment pipeline's robustness guarantees: a transient-error
// classifier the runner's retry policy keys on, an fs/io wrapper set that
// injects short writes, torn final lines, ENOSPC/EIO errors and crash
// points at chosen byte offsets, and a seeded per-job failure schedule.
//
// The package has two audiences. Production code uses the classifier
// (IsTransient) and the FS abstraction (OS) so that every byte the
// checkpoint layer writes can be routed through an injector in tests.
// Tests and the nightly soak job use WritePlan, InjectFS and Schedule to
// build reproducible fault scenarios: every injected fault is a pure
// function of a seed and an offset, so a failing schedule replays
// exactly.
//
// Fault model (see DESIGN.md §9): an error is transient when retrying the
// same operation can plausibly succeed — interrupted syscalls, scheduler
// overload, explicitly marked flaky-job failures. Resource exhaustion
// (ENOSPC), data corruption (EIO) and deterministic job failures are
// fatal: retrying burns time without changing the outcome.
package fault

import (
	"errors"
	"io"
	"net"
	"syscall"
)

// transientError marks an error as retryable. It is created by Transient
// and detected by IsTransient through the wrap chain.
type transientError struct {
	err error
}

func (e *transientError) Error() string { return "transient: " + e.err.Error() }

func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as transient: the runner's retry policy treats the
// wrapped error as retryable. Marking nil returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is classified as retryable: it was
// marked with Transient anywhere in its wrap chain, or it is one of the
// OS-level errors that signal contention rather than a persistent fault
// (EINTR, EAGAIN, EBUSY, ETIMEDOUT, ECONNRESET). Resource exhaustion
// (ENOSPC), I/O corruption (EIO), context cancellation and per-job
// deadline overruns are NOT transient: a deterministic job that timed out
// once will time out again.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var t *transientError
	if errors.As(err, &t) {
		return true
	}
	for _, e := range []error{syscall.EINTR, syscall.EAGAIN, syscall.EBUSY, syscall.ETIMEDOUT, syscall.ECONNRESET} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// IsUnavailable reports whether err looks like a peer that is down or
// restarting rather than a request it rejected: anything IsTransient
// accepts, plus the connection-level failures a crashed service
// produces — connection refused/aborted, unreachable host or network,
// a broken pipe, a response torn mid-body (unexpected EOF), or any
// net.Error (dial failures and I/O timeouts). Distributed clients key
// failover retry on this: an unavailable coordinator is worth retrying
// against a (possibly new) endpoint with backoff, while a 4xx-style
// protocol rejection is not — the same request can never succeed.
func IsUnavailable(err error) bool {
	if err == nil {
		return false
	}
	if IsTransient(err) {
		return true
	}
	for _, e := range []error{
		syscall.ECONNREFUSED, syscall.ECONNABORTED, syscall.EPIPE,
		syscall.EHOSTUNREACH, syscall.ENETUNREACH, syscall.ENETDOWN,
	} {
		if errors.Is(err, e) {
			return true
		}
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Injected fault sentinels. ErrInjectedENOSPC and ErrInjectedEIO wrap the
// real syscall errors so production code that checks errors.Is(err,
// syscall.ENOSPC) classifies injected faults exactly like real ones.
var (
	// ErrCrash simulates a SIGKILL landing at a chosen byte offset: the
	// write that hits a crash point is torn at the offset and every later
	// operation on the stream fails with this error. Harnesses treat it as
	// process death — stop the run and resume from the on-disk state.
	ErrCrash = errors.New("fault: injected crash point reached")
	// ErrInjectedENOSPC is an injected disk-full failure (fatal).
	ErrInjectedENOSPC = &injectedErr{"fault: injected ENOSPC", syscall.ENOSPC}
	// ErrInjectedEIO is an injected I/O failure (fatal).
	ErrInjectedEIO = &injectedErr{"fault: injected EIO", syscall.EIO}
)

// injectedErr pairs an injection label with the syscall error it
// simulates, so errors.Is matches both the sentinel and the syscall.
type injectedErr struct {
	msg   string
	errno syscall.Errno
}

func (e *injectedErr) Error() string { return e.msg }

func (e *injectedErr) Unwrap() error { return e.errno }

// IsCrash reports whether err carries an injected crash point.
func IsCrash(err error) bool { return errors.Is(err, ErrCrash) }
