// Package gpu models the pieces of the GPU execution model that G-MAP
// depends on: launch geometry and thread linearization, the Fermi-style
// grouping of threads into warps and threadblocks (CUDA C Programming
// Guide §G.1), the per-warp memory coalescer (§G.4.2), occupancy limits,
// and the round-robin assignment of threadblocks to streaming
// multiprocessors.
package gpu

import (
	"fmt"

	"github.com/uteda/gmap/internal/trace"
)

// WarpSize is the number of scalar threads per warp on all architectures
// G-MAP targets (Fermi and later).
const WarpSize = 32

// DefaultLineSize is the cacheline size, in bytes, of the Fermi memory
// hierarchy; coalescing operates at this granularity.
const DefaultLineSize = 128

// Dim3 is a CUDA launch dimension.
type Dim3 struct {
	X, Y, Z int
}

// Count returns the total element count X*Y*Z. Unset (zero) Y and Z count
// as 1, matching CUDA's defaulting; a zero X makes the dimension
// degenerate and counts as 0.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

// String renders the dimension as "(x,y,z)".
func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// Launch describes one kernel launch.
type Launch struct {
	Grid  Dim3
	Block Dim3
}

// NumBlocks returns the number of threadblocks in the grid.
func (l Launch) NumBlocks() int { return l.Grid.Count() }

// ThreadsPerBlock returns the number of threads in one threadblock.
func (l Launch) ThreadsPerBlock() int { return l.Block.Count() }

// NumThreads returns the total number of scalar threads in the launch.
func (l Launch) NumThreads() int { return l.NumBlocks() * l.ThreadsPerBlock() }

// WarpsPerBlock returns the number of warps in one threadblock; a partial
// final warp still occupies a full warp slot (§G.1).
func (l Launch) WarpsPerBlock() int {
	return (l.ThreadsPerBlock() + WarpSize - 1) / WarpSize
}

// NumWarps returns the total warp count of the launch.
func (l Launch) NumWarps() int { return l.NumBlocks() * l.WarpsPerBlock() }

// LinearThreadID converts a (block, thread-in-block) pair of 3-D
// coordinates into the global linear thread index used throughout G-MAP.
// Linearization follows §G.1: within a block, x varies fastest
// (tid = x + y*Dx + z*Dx*Dy), and blocks linearize the same way.
func (l Launch) LinearThreadID(block, thread Dim3) int {
	bx, by := l.Grid.X, l.Grid.Y
	if bx == 0 {
		bx = 1
	}
	if by == 0 {
		by = 1
	}
	dx, dy := l.Block.X, l.Block.Y
	if dx == 0 {
		dx = 1
	}
	if dy == 0 {
		dy = 1
	}
	blockLinear := block.X + block.Y*bx + block.Z*bx*by
	threadLinear := thread.X + thread.Y*dx + thread.Z*dx*dy
	return blockLinear*l.ThreadsPerBlock() + threadLinear
}

// BlockOf returns the threadblock index of a global linear thread id.
func (l Launch) BlockOf(tid int) int { return tid / l.ThreadsPerBlock() }

// WarpOf returns the global warp index of a global linear thread id.
// Threads are packed into warps in linear-id order within their block
// (§G.1), so warps never span blocks even when the block size is not a
// multiple of WarpSize.
func (l Launch) WarpOf(tid int) int {
	block := l.BlockOf(tid)
	inBlock := tid % l.ThreadsPerBlock()
	return block*l.WarpsPerBlock() + inBlock/WarpSize
}

// LaneOf returns the lane (position within its warp) of a thread.
func (l Launch) LaneOf(tid int) int {
	return (tid % l.ThreadsPerBlock()) % WarpSize
}

// BlockOfWarp returns the threadblock index owning a global warp id.
func (l Launch) BlockOfWarp(warp int) int { return warp / l.WarpsPerBlock() }

// ThreadsOfWarp returns the global thread-id range [lo, hi) covered by a
// warp; the final warp of a block may be partial.
func (l Launch) ThreadsOfWarp(warp int) (lo, hi int) {
	block := warp / l.WarpsPerBlock()
	warpInBlock := warp % l.WarpsPerBlock()
	lo = block*l.ThreadsPerBlock() + warpInBlock*WarpSize
	hi = lo + WarpSize
	if end := (block + 1) * l.ThreadsPerBlock(); hi > end {
		hi = end
	}
	return lo, hi
}

// Validate reports an error for degenerate launches.
func (l Launch) Validate() error {
	if l.NumBlocks() <= 0 || l.ThreadsPerBlock() <= 0 {
		return fmt.Errorf("gpu: degenerate launch grid=%v block=%v", l.Grid, l.Block)
	}
	if l.ThreadsPerBlock() > 1024 {
		return fmt.Errorf("gpu: block size %d exceeds the 1024-thread limit", l.ThreadsPerBlock())
	}
	return nil
}

// Linear1D is a convenience constructor for the common 1-D launch shape.
func Linear1D(blocks, threadsPerBlock int) Launch {
	return Launch{Grid: Dim3{X: blocks}, Block: Dim3{X: threadsPerBlock}}
}

// FromKernelTrace reconstructs the (linearized) launch geometry recorded in
// a kernel trace.
func FromKernelTrace(k *trace.KernelTrace) Launch {
	return Linear1D(k.GridDim, k.BlockDim)
}
