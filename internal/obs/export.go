package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Bucket is one non-empty histogram bucket: the half-open value range
// [Lo, Hi) and its observation count. The zero bucket exports Lo=Hi=0.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time export of a whole registry — the
// expvar-style dump surfaced by `gmap-sim -obs-snapshot`. Maps marshal
// with sorted keys, so the JSON form is deterministic for a
// deterministic run.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string][]Point           `json:"series,omitempty"`
}

// snapshotHistogram freezes one histogram.
func snapshotHistogram(h *Histogram) HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Mean: h.Mean()}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i > 0 {
			b.Lo = 1 << (i - 1)
			if i < 64 {
				b.Hi = 1 << i
			} else {
				b.Hi = ^uint64(0)
			}
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// Snapshot freezes the registry. A nil registry yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]GaugeSnapshot, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			snap.Histograms[name] = snapshotHistogram(h)
		}
	}
	if len(r.samplers) > 0 {
		snap.Series = make(map[string][]Point, len(r.samplers))
		for name, s := range r.samplers {
			snap.Series[name] = s.Points()
		}
	}
	return snap
}

// WriteJSON writes the full registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// seriesLine is one JSONL record of WriteSeriesJSONL.
type seriesLine struct {
	Series string  `json:"series"`
	Cycle  uint64  `json:"cycle"`
	Value  float64 `json:"value"`
}

// WriteSeriesJSONL streams every sampler's retained series as JSON Lines
// — one {"series","cycle","value"} object per point, series in name
// order, points in cycle order. This is the `gmap-sim -obs-out` format.
func (r *Registry) WriteSeriesJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	samplers := make(map[string]*Sampler, len(r.samplers))
	for name, s := range r.samplers {
		samplers[name] = s
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, name := range names(samplers) {
		for _, p := range samplers[name].Points() {
			line, err := json.Marshal(seriesLine{Series: name, Cycle: p.Cycle, Value: p.Value})
			if err != nil {
				return err
			}
			if _, err := bw.Write(append(line, '\n')); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// CounterTotal sums every counter whose name starts with prefix — a
// convenience for tests and report lines (e.g. all per-bank writebacks).
// The prefix must end at a name-component boundary: an exact match, or a
// continuation that is not a letter (so "l2.bank" covers
// "l2.bank0.writebacks" but "runner.job" does not also cover
// "runner.jobs_dropped").
func (r *Registry) CounterTotal(prefix string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for name, c := range r.counters {
		if counterPrefixMatch(name, prefix) {
			total += c.Value()
		}
	}
	return total
}

// counterPrefixMatch reports whether name falls under prefix for
// CounterTotal: equal, or prefix followed by a non-letter (digits, '.',
// '_' all delimit; a letter would continue a different word).
func counterPrefixMatch(name, prefix string) bool {
	if !strings.HasPrefix(name, prefix) {
		return false
	}
	if len(name) == len(prefix) {
		return true
	}
	next := name[len(prefix)]
	return !('a' <= next && next <= 'z' || 'A' <= next && next <= 'Z')
}

// String renders a terse one-line summary (metric counts), mainly for
// debugging.
func (r *Registry) String() string {
	if r == nil {
		return "obs: disabled"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("obs: %d counters, %d gauges, %d histograms, %d series",
		len(r.counters), len(r.gauges), len(r.hists), len(r.samplers))
}
