// Package profiler implements G-MAP's profiling phase: it reduces a GPU
// kernel's memory reference stream to the compact statistical profile
// (Π, Q, B, P_S, P_R) of §4.6 of the paper.
//
// Profiling operates on coalesced warp-level request streams — coalescing
// is applied before locality analysis (§4), so the warp is the "thread"
// unit of the statistics and of Algorithm 1. For every static memory
// instruction the profiler captures the inter-warp stride distribution
// (P_E, §4.2) and intra-warp stride distribution (P_A, §4.3); for every
// dominant dynamic memory execution path (π profile, §4.1, clustered per
// §4.4) it captures the LRU stack-distance distribution (P_R, §4.3); and
// it records the base address of each instruction (B) and the launch
// geometry, which proxies preserve.
package profiler

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/trace"
)

// decodeJSONError rewrites a json decode failure to carry the byte
// offset where the input broke, so a corrupt profile file points at the
// damage instead of only naming the Go type that failed to fit.
func decodeJSONError(what string, err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return fmt.Errorf("profiler: decoding %s: offset %d: %w", what, syn.Offset, err)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		return fmt.Errorf("profiler: decoding %s: offset %d (field %q): %w", what, typ.Offset, typ.Field, err)
	}
	return fmt.Errorf("profiler: decoding %s: %w", what, err)
}

// StaticInst is the per-static-instruction component of the profile: the
// instruction identity, its base address b(k), and its two code-localized
// stride distributions.
type StaticInst struct {
	// PC identifies the static instruction.
	PC uint64 `json:"pc"`
	// Kind records whether the instruction loads or stores. Mixed-kind PCs
	// do not occur in SASS/PTX; the profiler keeps the first kind seen.
	Kind trace.Kind `json:"kind"`
	// Base is the address of warp 0's first execution of the instruction
	// (b(k) in Algorithm 1). Replacing it obfuscates the proxy stream.
	Base uint64 `json:"base"`
	// InterStride is P_E: the distribution of strides between consecutive
	// warps' first accesses from this instruction.
	InterStride *stats.Histogram `json:"inter_stride"`
	// IntraStride is P_A: the distribution of strides between successive
	// dynamic executions of this instruction within one warp.
	IntraStride *stats.Histogram `json:"intra_stride"`
	// Count is the total number of dynamic requests from this instruction,
	// used for Table 1-style frequency reporting.
	Count uint64 `json:"count"`
	// OffLo and OffHi bound the per-warp footprint of the instruction:
	// the widest observed range of (address - warp's first address) across
	// all warps. The proxy generator confines its stride walk to this
	// window, which keeps the clone's working set equal to the
	// original's — the statistical stride mix alone would otherwise
	// diffuse (see DESIGN.md §5).
	OffLo int64 `json:"off_lo"`
	OffHi int64 `json:"off_hi"`
	// AnchorLo and AnchorHi bound the inter-warp anchor spread: the range
	// of (warp's first address - Base) across all warps. The generator
	// confines the rolling base chain of Algorithm 1 (line 9) to this
	// window for the same reason — independently sampled inter-warp
	// strides would otherwise random-walk the anchors apart, breaking
	// cross-warp sharing of windows the original keeps resident.
	AnchorLo int64 `json:"anchor_lo"`
	AnchorHi int64 `json:"anchor_hi"`
	// Runs records, for each intra-warp stride value, the distribution of
	// run lengths (how many consecutive executions kept that stride).
	// Plain iid sampling from IntraStride yields geometric run lengths;
	// real kernels have fixed-length inner sweeps (e.g. 16 consecutive
	// +128 steps per op), and the run structure controls where revisits
	// land. Keys are the stride values as decimal strings (JSON).
	Runs map[string]*stats.Histogram `json:"runs,omitempty"`
	// Deterministic reports that every warp executed this instruction the
	// same number of times with the identical sequence of offsets from
	// its own first access — the tid-linear regularity of §4.2. The
	// generator then instantiates one sampled offset template per π
	// cluster and replays it for every warp (shifted by the chained
	// anchors), which preserves the cross-warp phase alignment the
	// lockstep SIMT execution gives the original. Irregular instructions
	// (data-dependent gathers) stay per-warp stochastic.
	Deterministic bool `json:"deterministic"`
}

// PiProfile is one dominant dynamic memory execution path: the sequence of
// static instructions (as indices into Profile.Insts) a warp issues, its
// weight in the warp population, and the reuse-distance distribution of
// warps following it.
type PiProfile struct {
	// Seq is the instruction-index sequence of the representative path.
	Seq []int `json:"seq"`
	// Count is the number of warps clustered onto this profile; Q(π) =
	// Count / total warps.
	Count uint64 `json:"count"`
	// Reuse is P_R: the cacheline stack-distance histogram aggregated over
	// the cluster's warps (reuse.Cold keyed as -1).
	Reuse *stats.Histogram `json:"reuse"`
}

// Profile is the complete G-MAP statistical profile of one kernel — the
// 5-tuple (Π, Q, B, P_S, P_R) plus launch geometry and scheduling
// metadata. It contains no original addresses other than the (optionally
// obfuscated) per-instruction base addresses.
type Profile struct {
	// Name is the profiled kernel/benchmark name.
	Name string `json:"name"`
	// GridDim and BlockDim are the launch geometry, preserved by proxies.
	GridDim  int `json:"grid_dim"`
	BlockDim int `json:"block_dim"`
	// LineSize is the coalescing granularity the statistics were captured
	// at, in bytes.
	LineSize uint64 `json:"line_size"`
	// Warps is the number of warps profiled.
	Warps int `json:"warps"`
	// TotalRequests is the total coalesced request count of the original
	// stream; miniaturization scales the proxy budget J from it.
	TotalRequests uint64 `json:"total_requests"`
	// Insts is the static instruction table (B and P_S).
	Insts []StaticInst `json:"insts"`
	// Profiles is Π with per-profile weights (Q) and reuse (P_R).
	Profiles []PiProfile `json:"profiles"`
	// SchedPself is the probability of scheduling the same warp
	// consecutively (§4.5); 0 means pure round-robin.
	SchedPself float64 `json:"sched_p_self"`
}

// InstIndex returns the index of pc in the instruction table, or -1.
func (p *Profile) InstIndex(pc uint64) int {
	for i := range p.Insts {
		if p.Insts[i].PC == pc {
			return i
		}
	}
	return -1
}

// Q returns the probability of profile i.
func (p *Profile) Q(i int) float64 {
	var total uint64
	for _, pp := range p.Profiles {
		total += pp.Count
	}
	if total == 0 {
		return 0
	}
	return float64(p.Profiles[i].Count) / float64(total)
}

// Validate checks structural consistency of the profile, including that
// every probability-valued field is a real number in [0, 1] — a corrupt
// or hand-edited profile JSON must fail here, not surface as NaN
// addresses deep inside the generator.
func (p *Profile) Validate() error {
	if p.GridDim <= 0 || p.BlockDim <= 0 {
		return fmt.Errorf("profiler: profile %q has degenerate geometry %dx%d", p.Name, p.GridDim, p.BlockDim)
	}
	if p.LineSize == 0 || p.LineSize&(p.LineSize-1) != 0 {
		return fmt.Errorf("profiler: profile %q line size %d not a power of two", p.Name, p.LineSize)
	}
	if p.Warps < 0 {
		return fmt.Errorf("profiler: profile %q has negative warp count %d", p.Name, p.Warps)
	}
	if math.IsNaN(p.SchedPself) || p.SchedPself < 0 || p.SchedPself > 1 {
		return fmt.Errorf("profiler: profile %q sched_p_self %v is not a probability", p.Name, p.SchedPself)
	}
	if len(p.Insts) == 0 {
		return fmt.Errorf("profiler: profile %q has no instructions", p.Name)
	}
	for i := range p.Insts {
		inst := &p.Insts[i]
		if inst.OffLo > inst.OffHi {
			return fmt.Errorf("profiler: profile %q: inst %d (pc %#x) offset window [%d, %d] inverted",
				p.Name, i, inst.PC, inst.OffLo, inst.OffHi)
		}
		if inst.AnchorLo > inst.AnchorHi {
			return fmt.Errorf("profiler: profile %q: inst %d (pc %#x) anchor window [%d, %d] inverted",
				p.Name, i, inst.PC, inst.AnchorLo, inst.AnchorHi)
		}
	}
	if len(p.Profiles) == 0 {
		return fmt.Errorf("profiler: profile %q has no π profiles", p.Name)
	}
	var piTotal uint64
	for i, pp := range p.Profiles {
		if len(pp.Seq) == 0 {
			return fmt.Errorf("profiler: profile %q: π[%d] empty", p.Name, i)
		}
		for _, idx := range pp.Seq {
			if idx < 0 || idx >= len(p.Insts) {
				return fmt.Errorf("profiler: profile %q: π[%d] references instruction %d of %d", p.Name, i, idx, len(p.Insts))
			}
		}
		piTotal += pp.Count
	}
	if piTotal == 0 {
		return fmt.Errorf("profiler: profile %q: all π weights are zero, Q is undefined", p.Name)
	}
	return nil
}

// WriteJSON serializes the profile.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// ReadJSON deserializes a profile written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, decodeJSONError("profile", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// InstFrequency returns the fraction of all dynamic requests issued by
// instruction index i — the "%Mem Freq" column of Table 1.
func (p *Profile) InstFrequency(i int) float64 {
	if p.TotalRequests == 0 {
		return 0
	}
	return float64(p.Insts[i].Count) / float64(p.TotalRequests)
}

// DominantInsts returns instruction indices sorted by descending dynamic
// frequency — the Table 1 row ordering.
func (p *Profile) DominantInsts() []int {
	idx := make([]int, len(p.Insts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if p.Insts[ia].Count != p.Insts[ib].Count {
			return p.Insts[ia].Count > p.Insts[ib].Count
		}
		return p.Insts[ia].PC < p.Insts[ib].PC
	})
	return idx
}
