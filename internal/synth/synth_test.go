package synth

import (
	"testing"

	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/reuse"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/trace"
	"github.com/uteda/gmap/internal/workloads"
)

func profileOf(t testing.TB, name string) *profiler.Profile {
	t.Helper()
	s, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profiler.ProfileKernel(tr, profiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	p := profileOf(t, "bp")
	opts := Options{Seed: 42, ScaleFactor: 2}
	a, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || len(a.Warps) != len(b.Warps) {
		t.Fatal("same-seed proxies differ in shape")
	}
	for w := range a.Warps {
		for i := range a.Warps[w].Requests {
			if a.Warps[w].Requests[i] != b.Warps[w].Requests[i] {
				t.Fatalf("same-seed proxies differ at warp %d request %d", w, i)
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	p := profileOf(t, "bfs") // stochastic path assignment matters here
	a, err := Generate(p, Options{Seed: 1, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, Options{Seed: 2, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for w := range a.Warps {
		if len(a.Warps[w].Requests) != len(b.Warps[w].Requests) {
			same = false
			break
		}
		for i := range a.Warps[w].Requests {
			if a.Warps[w].Requests[i].Addr != b.Warps[w].Requests[i].Addr {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical proxies")
	}
}

func TestGeometryPreserved(t *testing.T) {
	p := profileOf(t, "kmeans")
	proxy, err := Generate(p, Options{Seed: 1, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if proxy.GridDim != p.GridDim || proxy.BlockDim != p.BlockDim {
		t.Errorf("geometry %dx%d != profile %dx%d",
			proxy.GridDim, proxy.BlockDim, p.GridDim, p.BlockDim)
	}
	if len(proxy.Warps) != p.Warps {
		t.Errorf("warp count %d != %d at scale 1", len(proxy.Warps), p.Warps)
	}
}

func TestScaleReducesRequests(t *testing.T) {
	p := profileOf(t, "blk")
	full, err := Generate(p, Options{Seed: 1, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	quarter, err := Generate(p, Options{Seed: 1, ScaleFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(full.Requests) / float64(quarter.Requests)
	if ratio < 3.2 || ratio > 5.0 {
		t.Errorf("scale-4 reduction ratio = %.2f (%d -> %d), want ~4",
			ratio, full.Requests, quarter.Requests)
	}
}

func TestExtremeScaleDropsWarps(t *testing.T) {
	p := profileOf(t, "nn")
	// nn π sequence is ~81 entries; factor 1000 must also shed warps.
	tiny, err := Generate(p, Options{Seed: 1, ScaleFactor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tiny.Warps) >= p.Warps {
		t.Errorf("warp count %d not reduced from %d", len(tiny.Warps), p.Warps)
	}
	if tiny.Requests == 0 {
		t.Error("degenerate proxy")
	}
}

func TestRequestsMatchProfileBudget(t *testing.T) {
	for _, name := range []string{"kmeans", "blk", "heartwall", "nn"} {
		p := profileOf(t, name)
		proxy, err := Generate(p, Options{Seed: 7, ScaleFactor: 1})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(proxy.Requests) / float64(p.TotalRequests)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: proxy has %d requests vs original %d (ratio %.2f)",
				name, proxy.Requests, p.TotalRequests, ratio)
		}
	}
}

func TestPCsComeFromProfile(t *testing.T) {
	p := profileOf(t, "bp")
	proxy, err := Generate(p, Options{Seed: 1, ScaleFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[uint64]trace.Kind)
	for _, inst := range p.Insts {
		valid[inst.PC] = inst.Kind
	}
	for _, w := range proxy.Warps {
		for _, r := range w.Requests {
			kind, ok := valid[r.PC]
			if !ok {
				t.Fatalf("generated unknown pc %#x", r.PC)
			}
			if r.Kind != kind {
				t.Fatalf("pc %#x generated with kind %v, profile says %v", r.PC, r.Kind, kind)
			}
		}
	}
}

// strideHistogramOf collects per-PC intra-warp strides from warp streams.
func strideHistogramOf(warps []trace.WarpTrace, pc uint64) *stats.Histogram {
	h := stats.NewHistogram()
	for _, w := range warps {
		var prev uint64
		seen := false
		for _, r := range w.Requests {
			if r.PC != pc {
				continue
			}
			if seen {
				h.Add(int64(r.Addr) - int64(prev))
			}
			prev, seen = r.Addr, true
		}
	}
	return h
}

func TestProxyReplaysIntraStrides(t *testing.T) {
	// For a strongly regular workload the proxy's per-PC intra-stride
	// distribution must be close to the profiled one.
	p := profileOf(t, "blk")
	proxy, err := Generate(p, Options{Seed: 3, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range p.Insts {
		if inst.IntraStride.Total() == 0 {
			continue
		}
		got := strideHistogramOf(proxy.Warps, inst.PC)
		if got.Total() == 0 {
			t.Fatalf("pc %#x: no intra strides generated", inst.PC)
		}
		if d := stats.HistDistance(inst.IntraStride, got); d > 0.15 {
			t.Errorf("pc %#x: intra-stride distance %.3f\nprofile %v\nproxy  %v",
				inst.PC, d, inst.IntraStride.TopK(3), got.TopK(3))
		}
	}
}

func TestProxyReplaysInterWarpStrides(t *testing.T) {
	p := profileOf(t, "srad")
	proxy, err := Generate(p, Options{Seed: 3, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range p.Insts {
		if inst.InterStride.Total() == 0 {
			continue
		}
		// Measure first-access strides between consecutive proxy warps.
		first := make(map[int]uint64)
		for _, w := range proxy.Warps {
			for _, r := range w.Requests {
				if r.PC == inst.PC {
					first[w.WarpID] = r.Addr
					break
				}
			}
		}
		got := stats.NewHistogram()
		for w := 1; w < len(proxy.Warps); w++ {
			a, okA := first[w-1]
			b, okB := first[w]
			if okA && okB {
				got.Add(int64(b) - int64(a))
			}
		}
		if d := stats.HistDistance(inst.InterStride, got); d > 0.15 {
			t.Errorf("pc %#x: inter-warp stride distance %.3f", inst.PC, d)
		}
	}
}

// lineReuseFraction is the fraction of requests with finite line reuse
// across warp streams.
func lineReuseFraction(warps []trace.WarpTrace, lineSize uint64) float64 {
	total, reused := 0, 0
	for _, w := range warps {
		tr := reuse.NewTracker(len(w.Requests))
		for _, r := range w.Requests {
			if tr.Access(r.Addr/lineSize) != reuse.Cold {
				reused++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(reused) / float64(total)
}

func TestProxyReplaysReuse(t *testing.T) {
	for _, c := range []struct {
		name string
		tol  float64
	}{
		{"kmeans", 0.15},
		{"heartwall", 0.15},
		{"blk", 0.10},
		{"scalarprod", 0.10},
	} {
		p := profileOf(t, c.name)
		proxy, err := Generate(p, Options{Seed: 11, ScaleFactor: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Original reuse fraction from the profile's own P_R.
		var origReused, origTotal uint64
		for _, pp := range p.Profiles {
			origTotal += pp.Reuse.Total()
			origReused += pp.Reuse.Total() - pp.Reuse.Count(reuse.Cold)
		}
		orig := float64(origReused) / float64(origTotal)
		got := lineReuseFraction(proxy.Warps, p.LineSize)
		if got < orig-c.tol || got > orig+c.tol {
			t.Errorf("%s: proxy reuse fraction %.3f vs original %.3f (tol %.2f)",
				c.name, got, orig, c.tol)
		}
	}
}

func TestObfuscationHidesBases(t *testing.T) {
	p := profileOf(t, "nn")
	plain, err := Generate(p, Options{Seed: 1, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	obf, err := Generate(p, Options{Seed: 1, ScaleFactor: 1, Obfuscate: true, ObfuscationKey: 0xdead})
	if err != nil {
		t.Fatal(err)
	}
	// Addresses must differ...
	sameAddrs := 0
	total := 0
	for w := range plain.Warps {
		for i := range plain.Warps[w].Requests {
			total++
			if plain.Warps[w].Requests[i].Addr == obf.Warps[w].Requests[i].Addr {
				sameAddrs++
			}
		}
	}
	if float64(sameAddrs)/float64(total) > 0.01 {
		t.Errorf("obfuscation left %d/%d addresses unchanged", sameAddrs, total)
	}
	// ...but per-PC stride structure must be preserved exactly (same seed
	// means identical sampling decisions).
	for _, inst := range p.Insts {
		a := strideHistogramOf(plain.Warps, inst.PC)
		b := strideHistogramOf(obf.Warps, inst.PC)
		if d := stats.HistDistance(a, b); d > 0.01 {
			t.Errorf("pc %#x: obfuscation distorted strides (distance %.3f)", inst.PC, d)
		}
	}
}

func TestObfuscationKeyMatters(t *testing.T) {
	p := profileOf(t, "nn")
	a, _ := Generate(p, Options{Seed: 1, ScaleFactor: 1, Obfuscate: true, ObfuscationKey: 1})
	b, _ := Generate(p, Options{Seed: 1, ScaleFactor: 1, Obfuscate: true, ObfuscationKey: 2})
	if a.Warps[0].Requests[0].Addr == b.Warps[0].Requests[0].Addr {
		t.Error("different obfuscation keys produced the same layout")
	}
}

func TestObfuscatedAddressesAligned(t *testing.T) {
	p := profileOf(t, "nn")
	obf, err := Generate(p, Options{Seed: 1, ScaleFactor: 1, Obfuscate: true, ObfuscationKey: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range obf.Warps {
		for _, r := range w.Requests {
			if r.Addr >= 1<<41 {
				t.Fatalf("obfuscated address %#x outside synthetic space", r.Addr)
			}
		}
	}
}

func TestGenerateAllWorkloads(t *testing.T) {
	for _, s := range workloads.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p := profileOf(t, s.Name)
			proxy, err := Generate(p, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if proxy.Requests == 0 {
				t.Fatal("empty proxy")
			}
			// Default scale ~4: proxy should be meaningfully smaller.
			if float64(proxy.Requests) > 0.5*float64(p.TotalRequests) {
				t.Errorf("proxy %d requests vs original %d: not miniaturized",
					proxy.Requests, p.TotalRequests)
			}
		})
	}
}

func TestGenerateRejectsInvalidProfile(t *testing.T) {
	if _, err := Generate(&profiler.Profile{Name: "bad"}, DefaultOptions()); err == nil {
		t.Error("invalid profile accepted")
	}
}

func BenchmarkGenerate(b *testing.B) {
	p := profileOf(b, "bp")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p, Options{Seed: uint64(i), ScaleFactor: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
