package memsim

import (
	"testing"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/trace"
)

// TestDiffStats pins the snapshot subtraction behind per-launch metric
// windows: every field diffs independently, and a window closed with no
// traffic is all zeros.
func TestDiffStats(t *testing.T) {
	before := cache.Stats{
		Accesses: 100, Hits: 70, Misses: 30,
		Reads: 80, Writes: 20,
		Evictions: 10, Writebacks: 5,
		PrefetchFills: 3, PrefetchUseful: 1,
	}
	now := cache.Stats{
		Accesses: 260, Hits: 170, Misses: 90,
		Reads: 200, Writes: 60,
		Evictions: 35, Writebacks: 17,
		PrefetchFills: 9, PrefetchUseful: 4,
	}
	got := diffStats(now, before)
	want := cache.Stats{
		Accesses: 160, Hits: 100, Misses: 60,
		Reads: 120, Writes: 40,
		Evictions: 25, Writebacks: 12,
		PrefetchFills: 6, PrefetchUseful: 3,
	}
	if got != want {
		t.Fatalf("diffStats = %+v, want %+v", got, want)
	}
	if zero := diffStats(now, now); zero != (cache.Stats{}) {
		t.Fatalf("diffStats(x, x) = %+v, want zero", zero)
	}
	if id := diffStats(now, cache.Stats{}); id != now {
		t.Fatalf("diffStats(x, 0) = %+v, want %+v", id, now)
	}
}

// launchWarps builds one deterministic launch: nWarps warps in one
// block, each streaming strided loads over its own region.
func launchWarps(nWarps, nReqs int, base uint64) []trace.WarpTrace {
	warps := make([]trace.WarpTrace, nWarps)
	for w := range warps {
		reqs := make([]trace.Request, nReqs)
		for i := range reqs {
			reqs[i] = trace.Request{
				PC:      0x400,
				Addr:    base + uint64(w)<<16 + uint64(i)*128,
				Kind:    trace.Load,
				WarpID:  w,
				Threads: 32,
			}
		}
		warps[w] = trace.WarpTrace{WarpID: w, Block: 0, Requests: reqs}
	}
	return warps
}

// TestPerLaunchSlicing runs a three-launch sequence and requires the
// per-launch windows to exactly partition the run totals: requests,
// cycles and every L1/L2 stat must sum back to the whole-run metrics.
func TestPerLaunchSlicing(t *testing.T) {
	launches := [][]trace.WarpTrace{
		launchWarps(2, 20, 1<<20),
		launchWarps(3, 10, 1<<24),
		launchWarps(1, 30, 1<<26),
	}
	cfg := Config{
		NumCores: 2,
		L1:       cache.Config{SizeBytes: 1 << 12, Ways: 4, LineSize: 128},
		L2:       cache.Config{SizeBytes: 1 << 14, Ways: 8, LineSize: 128},
		L2Banks:  2,
		DRAM:     dram.DefaultGDDR3(),
	}
	sim, err := NewSequence(launches, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := len(m.PerLaunch), len(launches); got != want {
		t.Fatalf("PerLaunch has %d windows, want %d", got, want)
	}
	var reqs, cycles uint64
	var l1, l2 cache.Stats
	for i, lm := range m.PerLaunch {
		if lm.Launch != i {
			t.Fatalf("window %d labeled launch %d", i, lm.Launch)
		}
		if lm.Requests == 0 || lm.Cycles == 0 {
			t.Fatalf("window %d is empty: %+v", i, lm)
		}
		reqs += lm.Requests
		cycles += lm.Cycles
		l1.Add(lm.L1)
		l2.Add(lm.L2)
	}
	if reqs != m.Requests {
		t.Fatalf("per-launch requests sum %d != total %d", reqs, m.Requests)
	}
	if cycles != m.Cycles {
		t.Fatalf("per-launch cycles sum %d != total %d", cycles, m.Cycles)
	}
	if l1 != m.L1 {
		t.Fatalf("per-launch L1 sum %+v != total %+v", l1, m.L1)
	}
	if l2 != m.L2 {
		t.Fatalf("per-launch L2 sum %+v != total %+v", l2, m.L2)
	}

	// Per-launch request counts must reflect each launch's issue volume:
	// launch 0 issued 2x20, launch 1 3x10, launch 2 1x30 warp requests.
	for i, want := range []uint64{40, 30, 30} {
		if got := m.PerLaunch[i].Requests; got != want {
			t.Fatalf("launch %d requests = %d, want %d", i, got, want)
		}
	}

	// A single launch must not produce a per-launch breakdown.
	single, err := New(launchWarps(2, 10, 1<<20), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := single.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.PerLaunch) != 0 {
		t.Fatalf("single launch recorded %d windows", len(sm.PerLaunch))
	}
}
