// Package gmap is an open reimplementation of G-MAP, the GPU Memory
// Access Proxy framework of Panda et al. (DAC 2017, "Statistical Pattern
// Based Modeling of GPU Memory Access Streams").
//
// G-MAP reduces a GPGPU application's memory reference stream to a
// compact statistical profile — dominant dynamic memory execution paths
// (π profiles), per-instruction inter-thread and intra-thread stride
// distributions, reuse-distance distributions and base addresses — and
// regenerates from it a miniaturized synthetic "proxy" (clone) whose
// cache, prefetcher and DRAM behaviour closely tracks the original across
// memory-hierarchy design spaces, while hiding the original addresses and
// shrinking trace volume several-fold.
//
// The typical flow is three calls:
//
//	tr, _ := gmap.BenchmarkTrace("kmeans", 1)           // or your own trace
//	profile, _ := gmap.ProfileTrace(tr, gmap.DefaultProfileConfig())
//	proxy, _ := gmap.Generate(profile, gmap.GenerateOptions{Seed: 1, ScaleFactor: 4})
//
//	orig, _ := gmap.SimulateTrace(tr, gmap.DefaultSimConfig())
//	clone, _ := gmap.SimulateProxy(proxy, gmap.DefaultSimConfig())
//	fmt.Printf("L1 miss rate: %.3f vs %.3f\n", orig.L1MissRate(), clone.L1MissRate())
//
// The package also exposes the paper's full evaluation harness (see
// Experiments) and the 18 synthetic GPGPU benchmarks the evaluation runs
// on. Everything is deterministic under a fixed seed and uses only the
// standard library.
package gmap

import (
	"context"
	"fmt"
	"io"

	"github.com/uteda/gmap/internal/core"
	"github.com/uteda/gmap/internal/eval"
	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/obs/serve"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/synth"
	"github.com/uteda/gmap/internal/trace"
	"github.com/uteda/gmap/internal/workloads"
)

// Re-exported data types. These aliases are the public API; the internal
// packages they point at carry the implementations.
type (
	// KernelTrace is a per-thread memory reference stream plus launch
	// geometry — G-MAP's input.
	KernelTrace = trace.KernelTrace
	// ThreadTrace is one thread's ordered reference stream.
	ThreadTrace = trace.ThreadTrace
	// Access is one dynamic memory reference (PC, address, load/store).
	Access = trace.Access
	// Request is one coalesced warp-level cacheline transaction.
	Request = trace.Request
	// WarpTrace is a warp's ordered transaction stream.
	WarpTrace = trace.WarpTrace

	// Profile is the statistical profile (Π, Q, B, P_S, P_R) of §4.6.
	Profile = profiler.Profile
	// ProfileConfig controls profiling (line size, clustering threshold
	// Th, profile cap M).
	ProfileConfig = profiler.Config
	// Proxy is a generated clone: synthetic warp streams plus geometry.
	Proxy = synth.Proxy
	// GenerateOptions controls clone generation (seed, miniaturization
	// scale factor, obfuscation).
	GenerateOptions = synth.Options

	// SimConfig describes the simulated memory hierarchy (cores, L1, L2,
	// MSHRs, prefetchers, DRAM, warp scheduler).
	SimConfig = memsim.Config
	// Metrics is one simulation's result set.
	Metrics = memsim.Metrics

	// Workload bundles original trace, profile and proxy for side-by-side
	// evaluation; AppWorkload is its multi-kernel counterpart.
	Workload    = core.Workload
	AppWorkload = core.AppWorkload

	// Application is a multi-kernel launch sequence (the paper's Figure
	// 1b program model); AppProfile and AppProxy are its statistical
	// profile and generated clone.
	Application = trace.Application
	AppProfile  = profiler.AppProfile
	AppProxy    = synth.AppProxy
	// Comparison holds paired original/proxy measurements over a sweep.
	Comparison = core.Comparison

	// ExperimentOptions parameterizes the paper-evaluation harness,
	// including the execution engine's Workers (parallel simulation
	// jobs; parallel runs are bit-identical to serial ones), Checkpoint
	// and Resume (restartable sweeps via a JSONL point log) and Context
	// (cancellation) knobs.
	ExperimentOptions = eval.Options

	// ObsRegistry is the observability metrics registry: live counters,
	// gauges, bounded histograms and cycle-keyed time-series samplers
	// that the pipeline reports into when one is attached (via
	// SimConfig.Obs, ExperimentOptions.Obs, ProfileConfig.Obs or
	// GenerateOptions.Obs). A nil registry disables all instrumentation
	// at the cost of one predictable branch per hook; attaching one
	// never changes any result.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a point-in-time JSON-marshalable copy of an
	// ObsRegistry's contents.
	ObsSnapshot = obs.Snapshot

	// Tracer records hierarchical spans of a pipeline run (sweep → job →
	// phase → simulation epoch) and exports them as Chrome trace-event
	// JSON (Perfetto-loadable) or a JSONL event stream. Like ObsRegistry,
	// a nil tracer disables span recording and attaching one never
	// changes any result.
	Tracer = obstrace.Tracer
	// TraceSpan is one recorded span; nil spans no-op all methods.
	TraceSpan = obstrace.Span

	// ServeOptions configures the live observability HTTP server: the
	// bind address plus the registry, tracer and progress snapshot it
	// exposes read-only on /metrics, /trace and /progress.
	ServeOptions = serve.Options
	// ObsServer is a running observability exposition server.
	ObsServer = serve.Server

	// AttrOptions enables per-π / per-PC accuracy attribution for
	// benchmarks whose figure error exceeds a threshold; AttrReport is
	// one benchmark's ranked drill-down.
	AttrOptions = eval.AttrOptions
	AttrReport  = eval.AttrReport
)

// NewObsRegistry returns an enabled observability registry ready to be
// attached to the pipeline.
func NewObsRegistry() *ObsRegistry { return obs.New() }

// NewTracer returns an enabled span tracer ready to be attached to the
// pipeline (via ExperimentOptions.Trace or SimConfig.TraceSpan roots).
func NewTracer() *Tracer { return obstrace.New() }

// StartObsServer binds and serves the observability endpoints until the
// context is cancelled or Shutdown is called.
func StartObsServer(ctx context.Context, o ServeOptions) (*ObsServer, error) {
	return serve.Start(ctx, o)
}

// WriteAttrJSON and WriteAttrMarkdown render accuracy-attribution
// reports (AttrOptions.Reports) as JSON or a markdown drill-down.
func WriteAttrJSON(w io.Writer, reports []*AttrReport) error { return eval.WriteAttrJSON(w, reports) }

func WriteAttrMarkdown(w io.Writer, reports []*AttrReport) error {
	return eval.WriteAttrMarkdown(w, reports)
}

// Load/store kinds.
const (
	Load  = trace.Load
	Store = trace.Store
)

// Warp scheduling policies for SimConfig.Scheduler.
const (
	LRR   = memsim.LRR
	GTO   = memsim.GTO
	PSelf = memsim.PSelf
)

// DefaultProfileConfig returns the paper's profiling settings (128B
// coalescing, clustering threshold 0.9, at most 8 dominant π profiles).
func DefaultProfileConfig() ProfileConfig { return profiler.DefaultConfig() }

// DefaultGenerateOptions returns the paper's proxy settings (scale ~4x).
func DefaultGenerateOptions() GenerateOptions { return synth.DefaultOptions() }

// DefaultSimConfig returns the Table 2 profiled system configuration.
func DefaultSimConfig() SimConfig { return memsim.DefaultConfig() }

// ProfileTrace profiles a kernel's reference stream (phases ①/② of the
// framework): coalescing, π-profile extraction and clustering, stride and
// reuse capture.
func ProfileTrace(tr *KernelTrace, cfg ProfileConfig) (*Profile, error) {
	return profiler.ProfileKernel(tr, cfg)
}

// Generate expands a profile into a proxy (phase ③, Algorithms 1 and 2).
func Generate(p *Profile, opts GenerateOptions) (*Proxy, error) {
	return synth.Generate(p, opts)
}

// Coalesce converts a per-thread trace into warp-level transaction
// streams using the Fermi coalescing rules. lineSize 0 selects the 128B
// default.
func Coalesce(tr *KernelTrace, lineSize uint64) []WarpTrace {
	return gpu.NewCoalescer(lineSize).BuildWarpTraces(tr)
}

// SimulateTrace runs an original per-thread trace through the memory
// hierarchy (coalescing it first with the L1 line size).
func SimulateTrace(tr *KernelTrace, cfg SimConfig) (Metrics, error) {
	warps := gpu.NewCoalescer(uint64(cfg.L1.LineSize)).BuildWarpTraces(tr)
	return SimulateWarps(warps, cfg)
}

// SimulateWarps runs coalesced warp streams through the memory hierarchy.
func SimulateWarps(warps []WarpTrace, cfg SimConfig) (Metrics, error) {
	sim, err := memsim.New(warps, cfg)
	if err != nil {
		return Metrics{}, err
	}
	return sim.Run()
}

// SimulateProxy runs a generated clone through the memory hierarchy.
func SimulateProxy(p *Proxy, cfg SimConfig) (Metrics, error) {
	return SimulateWarps(p.Warps, cfg)
}

// Prepare runs the complete pipeline for a named built-in benchmark.
func Prepare(benchmark string, scale int, pcfg ProfileConfig, gopts GenerateOptions) (*Workload, error) {
	return core.Prepare(benchmark, scale, pcfg, gopts)
}

// PrepareTrace runs the complete pipeline over a caller-supplied trace.
func PrepareTrace(tr *KernelTrace, pcfg ProfileConfig, gopts GenerateOptions) (*Workload, error) {
	return core.PrepareTrace(tr, pcfg, gopts)
}

// Benchmarks returns the names of the 18 built-in synthetic GPGPU
// benchmarks modeled on Rodinia, the CUDA SDK and ISPASS-2009.
func Benchmarks() []string { return workloads.Names() }

// PrepareApp runs the pipeline over a benchmark's full multi-kernel launch
// sequence: iterative and multi-phase benchmarks (kmeans, bp, srad) expose
// several launches; the rest launch once.
func PrepareApp(benchmark string, scale int, pcfg ProfileConfig, gopts GenerateOptions) (*AppWorkload, error) {
	return core.PrepareApp(benchmark, scale, pcfg, gopts)
}

// ProfileApp profiles an application's launch sequence into a compact
// per-kernel profile set.
func ProfileApp(app *Application, cfg ProfileConfig) (*AppProfile, error) {
	return profiler.ProfileApplication(app, cfg)
}

// GenerateApp expands an application profile into a launch-sequence clone.
func GenerateApp(ap *AppProfile, opts GenerateOptions) (*AppProxy, error) {
	return synth.GenerateApp(ap, opts)
}

// SimulateLaunches runs a sequence of kernel launches back to back with
// cache and DRAM state persisting across them.
func SimulateLaunches(launches [][]WarpTrace, cfg SimConfig) (Metrics, error) {
	sim, err := memsim.NewSequence(launches, cfg)
	if err != nil {
		return Metrics{}, err
	}
	return sim.Run()
}

// BenchmarkTrace emulates a built-in benchmark at the given scale
// (1 = default evaluation size) and returns its reference stream.
func BenchmarkTrace(name string, scale int) (*KernelTrace, error) {
	spec, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("gmap: unknown benchmark %q (have %v)", name, workloads.Names())
	}
	return spec.Trace(scale)
}

// WriteTrace and ReadTrace persist per-thread traces in the compact
// delta-encoded binary format.
func WriteTrace(w io.Writer, tr *KernelTrace) error { return trace.WriteBinary(w, tr) }

// ReadTrace decodes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*KernelTrace, error) { return trace.ReadBinary(r) }

// WriteProfile and ReadProfile persist profiles as JSON.
func WriteProfile(w io.Writer, p *Profile) error { return p.WriteJSON(w) }

// ReadProfile decodes and validates a profile written by WriteProfile.
func ReadProfile(r io.Reader) (*Profile, error) { return profiler.ReadJSON(r) }

// WriteProxy persists a generated clone's warp streams.
func WriteProxy(w io.Writer, p *Proxy) error {
	return trace.WriteWarpsBinary(w, &trace.WarpFile{
		Name:     p.Name,
		GridDim:  p.GridDim,
		BlockDim: p.BlockDim,
		Warps:    p.Warps,
	})
}

// ReadProxy decodes a clone written by WriteProxy.
func ReadProxy(r io.Reader) (*Proxy, error) {
	wf, err := trace.ReadWarpsBinary(r)
	if err != nil {
		return nil, err
	}
	p := &Proxy{Name: wf.Name, GridDim: wf.GridDim, BlockDim: wf.BlockDim, Warps: wf.Warps}
	for i := range p.Warps {
		p.Requests += len(p.Warps[i].Requests)
	}
	return p, nil
}

// Experiments runs one of the paper's experiments by id ("table1",
// "table2", "fig6a".."fig6e", "fig7", "fig8", or "all") and writes the
// report to w. Sweeps execute on the parallel engine per opts.Workers;
// execution statistics accumulate into opts (see
// ExperimentOptions.ExecStats), which is why it is passed by pointer.
func Experiments(w io.Writer, id string, opts *ExperimentOptions) error {
	return opts.Run(w, id)
}
