// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout G-MAP.
//
// Every stochastic step in the pipeline (π-profile assignment, stride and
// reuse sampling, scheduler tie-breaking) draws from a seeded stream so
// that profiles, proxies and experiment results are reproducible
// bit-for-bit. The package implements splitmix64 (for seeding and stream
// splitting) and xoshiro256** (for bulk generation), both public-domain
// algorithms by Blackman and Vigna.
package rng

import "math/bits"

// SplitMix64 is a tiny 64-bit PRNG with a single word of state. It is
// primarily used to expand one user seed into the larger state of
// Xoshiro256 and to derive independent sub-streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through one splitmix64 round. It is useful as a cheap,
// stateless, well-distributed integer hash (e.g. deriving per-thread seeds
// from a kernel seed and a thread id).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded from seed via splitmix64, as recommended by the
// xoshiro authors. Any seed value, including zero, yields a valid state.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro256** requires a not-all-zero state; splitmix64 output makes
	// that astronomically unlikely, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new, statistically independent Rand from r. The derived
// stream is a pure function of r's current state, so splitting is itself
// deterministic.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

// Uint64 returns the next value of the xoshiro256** sequence.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0. The
// implementation uses Lemire's multiply-shift rejection method, which is
// unbiased and avoids division in the common case.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap, in the
// manner of math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
