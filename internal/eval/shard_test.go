package eval

import (
	"bytes"
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/runner"
)

// TestSweepKeysMatchExecution is the coordinator/worker identity
// contract: the keys SweepKeys enumerates must be exactly the keys an
// actual execution checkpoints — same hashing, same options, nothing
// executed during enumeration.
func TestSweepKeysMatchExecution(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"nn"}
	keys, err := opts.SweepKeys("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 30 {
		t.Fatalf("fig6a nn enumerates %d keys, want 30", len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Error("SweepKeys not sorted")
	}

	run := quickOpts()
	run.Benchmarks = []string{"nn"}
	run.Checkpoint = filepath.Join(t.TempDir(), "ckpt.jsonl")
	if _, err := run.Fig6a(); err != nil {
		t.Fatal(err)
	}
	recorded, err := runner.LoadCheckpoint(run.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded) != len(keys) {
		t.Fatalf("executed %d keys, enumerated %d", len(recorded), len(keys))
	}
	for _, k := range keys {
		if _, ok := recorded[k]; !ok {
			t.Errorf("enumerated key %s never executed", k)
		}
	}
}

// TestSweepKeysTableExperimentsEmpty pins that non-sweep experiments
// enumerate no keys (the distributed replay recomputes them locally)
// and cost nothing to enumerate.
func TestSweepKeysTableExperimentsEmpty(t *testing.T) {
	opts := quickOpts()
	for _, id := range []string{"table1", "table2"} {
		keys, err := opts.SweepKeys(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 0 {
			t.Errorf("%s enumerates %d keys, want 0", id, len(keys))
		}
	}
}

func TestSweepKeysUnknownExperiment(t *testing.T) {
	opts := quickOpts()
	if _, err := opts.SweepKeys("nonesuch"); err == nil {
		t.Error("unknown experiment enumerated")
	}
}

// TestShardedSinksCoverUniverse is the in-process merge conformance
// check under the distributed execution seams: the sweep split into
// disjoint shards via Shard, each shard's ResultSink events merged into
// one ledger, and a serial NoTimings replay of that ledger must render
// byte-identically to a direct serial NoTimings run.
func TestShardedSinksCoverUniverse(t *testing.T) {
	base := quickOpts()
	base.Benchmarks = []string{"nn"}
	base.NoTimings = true

	keys, err := base.SweepKeys("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	universe := make(map[string]int, len(keys))
	const shards = 3
	perShard := make([][]string, shards)
	for i, k := range keys {
		universe[k] = i % shards
		perShard[i%shards] = append(perShard[i%shards], k)
	}

	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	app, err := runner.OpenCheckpointAppender(nil, ledger, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for s := 0; s < shards; s++ {
		s := s
		opts := quickOpts()
		opts.Benchmarks = []string{"nn"}
		opts.NoTimings = true
		opts.Workers = 2
		opts.Shard = func(key string) bool { return universe[key] == s }
		opts.ResultSink = func(key string, value json.RawMessage, elapsed time.Duration) error {
			seen[key]++
			return app.Append(key, value, elapsed)
		}
		// The sharded report is garbage by contract; only the sink
		// stream matters.
		if err := opts.Run(io.Discard, "fig6a"); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}

	// Disjoint cover: every key exactly once, none outside its shard.
	if len(seen) != len(keys) {
		t.Fatalf("shards produced %d keys, universe has %d", len(seen), len(keys))
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("key %s executed %d times", k, n)
		}
	}

	var merged bytes.Buffer
	replay := quickOpts()
	replay.Benchmarks = []string{"nn"}
	replay.NoTimings = true
	replay.Workers = 1
	replay.Checkpoint = ledger
	replay.Resume = true
	if err := replay.Run(&merged, "fig6a"); err != nil {
		t.Fatal(err)
	}
	if st := replay.ExecStats(); st.Skipped != len(keys) {
		t.Fatalf("replay resumed %d of %d jobs — it recomputed", st.Skipped, len(keys))
	}

	var serial bytes.Buffer
	direct := quickOpts()
	direct.Benchmarks = []string{"nn"}
	direct.NoTimings = true
	if err := direct.Run(&serial, "fig6a"); err != nil {
		t.Fatal(err)
	}
	if merged.String() != serial.String() {
		t.Errorf("merged replay differs from serial run:\nmerged:\n%s\nserial:\n%s", merged.String(), serial.String())
	}
}

// TestFig8NoTimingsDeterministic pins the fig8 determinism fix: under
// NoTimings the wall-clock speedup axis is dropped (rendered "-"), so
// two executions render byte-identically even though the measured
// nanoseconds differ.
func TestFig8NoTimingsDeterministic(t *testing.T) {
	render := func() string {
		opts := quickOpts()
		opts.Benchmarks = []string{"nn"}
		opts.NoTimings = true
		var buf bytes.Buffer
		if err := opts.Run(&buf, "fig8"); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("two NoTimings fig8 runs differ:\n%s\nvs\n%s", a, b)
	}
	// tabwriter pads cells with spaces; the dropped speedup column
	// renders as a lone dash.
	if !bytes.Contains([]byte(a), []byte(" - ")) {
		t.Errorf("NoTimings fig8 still renders a speedup: %s", a)
	}
}
