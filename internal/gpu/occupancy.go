package gpu

import "fmt"

// SMConfig captures the per-SM resource limits that bound how many
// threadblocks can be resident at once. Values default to the Fermi-class
// configuration profiled in Table 2 of the paper (15 SMs, 1024 threads,
// 32768 registers per SM).
type SMConfig struct {
	// NumSMs is the number of streaming multiprocessors on the chip.
	NumSMs int
	// MaxThreads is the maximum resident threads per SM.
	MaxThreads int
	// MaxBlocks is the maximum resident threadblocks per SM.
	MaxBlocks int
	// Registers is the register file size (32-bit registers) per SM.
	Registers int
	// SharedMem is the shared memory per SM, in bytes.
	SharedMem int
}

// DefaultSMConfig returns the Table 2 profiled configuration.
func DefaultSMConfig() SMConfig {
	return SMConfig{
		NumSMs:     15,
		MaxThreads: 1024,
		MaxBlocks:  8,
		Registers:  32768,
		SharedMem:  48 * 1024,
	}
}

// BlockRequirements are the per-threadblock resource needs of a kernel.
type BlockRequirements struct {
	Threads       int
	RegsPerThread int
	SharedMem     int
}

// BlocksPerSM returns how many threadblocks with the given requirements fit
// on one SM, honoring every resource limit simultaneously. The result is at
// least 0; an error is returned when a single block cannot fit at all.
func (c SMConfig) BlocksPerSM(req BlockRequirements) (int, error) {
	if req.Threads <= 0 {
		return 0, fmt.Errorf("gpu: block with %d threads", req.Threads)
	}
	limit := c.MaxBlocks
	if byThreads := c.MaxThreads / req.Threads; byThreads < limit {
		limit = byThreads
	}
	if req.RegsPerThread > 0 {
		if byRegs := c.Registers / (req.RegsPerThread * req.Threads); byRegs < limit {
			limit = byRegs
		}
	}
	if req.SharedMem > 0 {
		if byShmem := c.SharedMem / req.SharedMem; byShmem < limit {
			limit = byShmem
		}
	}
	if limit <= 0 {
		return 0, fmt.Errorf("gpu: block (threads=%d regs/thread=%d shmem=%d) exceeds SM capacity",
			req.Threads, req.RegsPerThread, req.SharedMem)
	}
	return limit, nil
}

// Occupancy returns the fraction of the SM's thread capacity that blocks
// with the given requirements achieve: resident blocks times threads per
// block over MaxThreads. It is the standard figure of merit kernel tuners
// optimize; an error means a single block cannot fit.
func (c SMConfig) Occupancy(req BlockRequirements) (float64, error) {
	blocks, err := c.BlocksPerSM(req)
	if err != nil {
		return 0, err
	}
	if c.MaxThreads <= 0 {
		return 0, fmt.Errorf("gpu: SM with %d max threads", c.MaxThreads)
	}
	occ := float64(blocks*req.Threads) / float64(c.MaxThreads)
	if occ > 1 {
		occ = 1
	}
	return occ, nil
}

// Assignment maps every threadblock of a launch to the SM that will run it
// and records the scheduling wave in which it becomes resident.
type Assignment struct {
	// SMOfBlock[b] is the SM index that runs threadblock b.
	SMOfBlock []int
	// WaveOfBlock[b] is the wave number: blocks in wave 0 are resident at
	// kernel start; a block in wave w+1 starts when an SM slot from wave w
	// frees up. The trace-driven memsim uses this to stage warp queues.
	WaveOfBlock []int
	// BlocksPerSM is the resident-block limit used for the assignment.
	BlocksPerSM int
}

// AssignBlocks distributes numBlocks threadblocks over the SMs in
// round-robin order until each SM holds blocksPerSM blocks, then wraps to
// the next wave — the policy described in §4.5 of the paper ("G-MAP
// assigns threadblocks to cores in a round-robin fashion until they are
// full, new TBs get scheduled when the running TBs finish execution").
func AssignBlocks(numBlocks, numSMs, blocksPerSM int) Assignment {
	if numSMs <= 0 {
		numSMs = 1
	}
	if blocksPerSM <= 0 {
		blocksPerSM = 1
	}
	a := Assignment{
		SMOfBlock:   make([]int, numBlocks),
		WaveOfBlock: make([]int, numBlocks),
		BlocksPerSM: blocksPerSM,
	}
	perWave := numSMs * blocksPerSM
	for b := 0; b < numBlocks; b++ {
		a.SMOfBlock[b] = b % numSMs
		a.WaveOfBlock[b] = b / perWave
	}
	return a
}

// NumWaves returns the number of scheduling waves in the assignment.
func (a Assignment) NumWaves() int {
	if len(a.WaveOfBlock) == 0 {
		return 0
	}
	return a.WaveOfBlock[len(a.WaveOfBlock)-1] + 1
}
