package eval

import (
	"sync"
	"time"

	"github.com/uteda/gmap/internal/runner"
)

// liveProgress mirrors the newest runner event so a concurrent reader —
// the HTTP /progress endpoint — can snapshot a running sweep without
// touching the runner's internals. Shared (by pointer) across copies of
// one Options value, like exec.
type liveProgress struct {
	mu         sync.Mutex
	experiment string
	last       runner.Event
	updatedAt  time.Time
}

func (l *liveProgress) beginSweep(experiment string, total int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.experiment = experiment
	l.last = runner.Event{Total: total}
	l.updatedAt = time.Now()
	l.mu.Unlock()
}

func (l *liveProgress) note(e runner.Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.last = e
	l.updatedAt = time.Now()
	l.mu.Unlock()
}

// Progress is the live state of an evaluation run as served by the
// /progress endpoint: the current sweep's counters and rate, plus the
// accumulated execution summary across all sweeps so far.
type Progress struct {
	// Experiment is the sweep currently draining ("fig6a", "table1", ...).
	Experiment string `json:"experiment,omitempty"`
	// Completed/Failed/Skipped/Retries/Total mirror the runner's counters
	// for the current sweep.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Skipped   int `json:"skipped"`
	Retries   int `json:"retries"`
	Total     int `json:"total"`
	// JobsPerSec and ETASeconds are the current sweep's execution rate
	// and remaining-time estimate (0 until a rate is established).
	JobsPerSec float64 `json:"jobs_per_sec"`
	ETASeconds float64 `json:"eta_s"`
	// AgeSeconds is how long ago the last job finished — a stalled sweep
	// shows a growing age at a constant completed count.
	AgeSeconds float64 `json:"age_s"`
	// Exec accumulates runner statistics across every finished sweep of
	// this run.
	Exec runner.Stats `json:"exec"`
}

// ProgressSnapshot returns the run's live progress. Safe for concurrent
// use with a running evaluation; wire it into serve.Options.Progress.
func (o *Options) ProgressSnapshot() Progress {
	o.fillDefaults()
	o.live.mu.Lock()
	p := Progress{
		Experiment: o.live.experiment,
		Completed:  o.live.last.Completed,
		Failed:     o.live.last.Failed,
		Skipped:    o.live.last.Skipped,
		Retries:    o.live.last.Retries,
		Total:      o.live.last.Total,
		JobsPerSec: o.live.last.JobsPerSec,
		ETASeconds: o.live.last.ETA.Seconds(),
	}
	if !o.live.updatedAt.IsZero() {
		p.AgeSeconds = time.Since(o.live.updatedAt).Seconds()
	}
	o.live.mu.Unlock()
	p.Exec = o.ExecStats()
	return p
}
