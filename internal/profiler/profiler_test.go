package profiler

import (
	"bytes"
	"strings"
	"testing"

	"github.com/uteda/gmap/internal/trace"
	"github.com/uteda/gmap/internal/workloads"
)

// uniformTrace builds a 2-block, 64-thread trace where every thread runs
// LD a[4*tid] ; (loop 4x) LD b[4*tid + 256*j] ; ST c[4*tid].
func uniformTrace() *trace.KernelTrace {
	k := &trace.KernelTrace{Name: "uni", GridDim: 2, BlockDim: 32}
	for tid := 0; tid < 64; tid++ {
		tt := trace.ThreadTrace{ThreadID: tid}
		tt.Accesses = append(tt.Accesses, trace.Access{PC: 0x10, Addr: uint64(0x10000 + 4*tid), Kind: trace.Load})
		for j := 0; j < 4; j++ {
			tt.Accesses = append(tt.Accesses, trace.Access{PC: 0x18, Addr: uint64(0x20000 + 4*tid + 256*j), Kind: trace.Load})
		}
		tt.Accesses = append(tt.Accesses, trace.Access{PC: 0x20, Addr: uint64(0x30000 + 4*tid), Kind: trace.Store})
		k.Threads = append(k.Threads, tt)
	}
	return k
}

func TestProfileUniform(t *testing.T) {
	p, err := ProfileKernel(uniformTrace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Warps != 2 {
		t.Fatalf("Warps = %d", p.Warps)
	}
	if len(p.Insts) != 3 {
		t.Fatalf("Insts = %d, want 3", len(p.Insts))
	}
	if len(p.Profiles) != 1 {
		t.Fatalf("uniform kernel produced %d π profiles, want 1", len(p.Profiles))
	}
	if got := p.Q(0); got != 1.0 {
		t.Errorf("Q(0) = %v, want 1", got)
	}
	// Warp streams: PC0x10 x1, PC0x18 x4 requests (one line each: 32
	// threads x 4B = 128B... 256B stride per j so distinct lines), PC0x20 x1.
	pp := p.Profiles[0]
	if len(pp.Seq) != 6 {
		t.Errorf("π length = %d, want 6 (1 + 4 + 1)", len(pp.Seq))
	}
}

func TestProfileInterWarpStride(t *testing.T) {
	p, err := ProfileKernel(uniformTrace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Warp 0 covers tids 0-31 (line 0x10000), warp 1 tids 32-63 (line
	// 0x10080): inter-warp stride 128 for every instruction.
	for i, inst := range p.Insts {
		key, freq, ok := inst.InterStride.Mode()
		if !ok || key != 128 || freq != 1.0 {
			t.Errorf("inst %d (pc %#x) inter-warp stride mode = (%d, %v, %v), want (128, 1, true)",
				i, inst.PC, key, freq, ok)
		}
	}
}

func TestProfileIntraWarpStride(t *testing.T) {
	p, err := ProfileKernel(uniformTrace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	i := p.InstIndex(0x18)
	if i < 0 {
		t.Fatal("pc 0x18 missing")
	}
	key, freq, ok := p.Insts[i].IntraStride.Mode()
	if !ok || key != 256 || freq != 1.0 {
		t.Errorf("intra stride mode = (%d, %v, %v), want (256, 1, true)", key, freq, ok)
	}
	// Single-execution instructions have no intra strides.
	if p.Insts[p.InstIndex(0x10)].IntraStride.Total() != 0 {
		t.Error("pc 0x10 has intra strides")
	}
}

func TestProfileBaseAddresses(t *testing.T) {
	p, err := ProfileKernel(uniformTrace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantBase := map[uint64]uint64{0x10: 0x10000, 0x18: 0x20000, 0x20: 0x30000}
	for _, inst := range p.Insts {
		if inst.Base != wantBase[inst.PC] {
			t.Errorf("pc %#x base = %#x, want %#x", inst.PC, inst.Base, wantBase[inst.PC])
		}
	}
}

func TestProfileCountsAndFrequency(t *testing.T) {
	p, err := ProfileKernel(uniformTrace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Per warp: 1 + 4 + 1 = 6 requests; 2 warps -> 12 total.
	if p.TotalRequests != 12 {
		t.Fatalf("TotalRequests = %d, want 12", p.TotalRequests)
	}
	i := p.InstIndex(0x18)
	if f := p.InstFrequency(i); f < 0.66 || f > 0.67 {
		t.Errorf("pc 0x18 frequency = %v, want 2/3", f)
	}
	dom := p.DominantInsts()
	if p.Insts[dom[0]].PC != 0x18 {
		t.Errorf("dominant instruction = %#x, want 0x18", p.Insts[dom[0]].PC)
	}
}

func TestProfileKindPreserved(t *testing.T) {
	p, err := ProfileKernel(uniformTrace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[p.InstIndex(0x20)].Kind != trace.Store {
		t.Error("store kind lost")
	}
	if p.Insts[p.InstIndex(0x10)].Kind != trace.Load {
		t.Error("load kind lost")
	}
}

// divergentTrace: half the warps execute {A,B}, half execute {A,C,C,C,C}
// so clustering must produce two π profiles.
func divergentTrace() *trace.KernelTrace {
	k := &trace.KernelTrace{Name: "div", GridDim: 4, BlockDim: 32}
	for tid := 0; tid < 128; tid++ {
		tt := trace.ThreadTrace{ThreadID: tid}
		warp := tid / 32
		tt.Accesses = append(tt.Accesses, trace.Access{PC: 0xA, Addr: uint64(0x10000 + 4*tid), Kind: trace.Load})
		if warp%2 == 0 {
			tt.Accesses = append(tt.Accesses, trace.Access{PC: 0xB, Addr: uint64(0x20000 + 4*tid), Kind: trace.Load})
		} else {
			for j := 0; j < 4; j++ {
				tt.Accesses = append(tt.Accesses, trace.Access{PC: 0xC, Addr: uint64(0x30000 + 4*tid + 128*j), Kind: trace.Load})
			}
		}
		k.Threads = append(k.Threads, tt)
	}
	return k
}

func TestProfileDivergentClusters(t *testing.T) {
	p, err := ProfileKernel(divergentTrace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Profiles) != 2 {
		t.Fatalf("got %d π profiles, want 2", len(p.Profiles))
	}
	if p.Profiles[0].Count != 2 || p.Profiles[1].Count != 2 {
		t.Errorf("cluster sizes = %d, %d; want 2, 2",
			p.Profiles[0].Count, p.Profiles[1].Count)
	}
	if q := p.Q(0) + p.Q(1); q < 0.999 || q > 1.001 {
		t.Errorf("Q sums to %v", q)
	}
}

func TestSimilarity(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 1.0},
		{[]int{1, 2, 3}, []int{1, 2, 4}, 2.0 / 3},
		{[]int{1, 2}, []int{1, 2, 3, 4}, 0.5},
		{[]int{1}, []int{2}, 0},
		{nil, []int{1}, 0},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := similarity(c.a, c.b); got != c.want {
			t.Errorf("similarity(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClusterThreshold(t *testing.T) {
	// Sequences 90% similar must merge at Th=0.9 but split at Th=0.95.
	base := make([]int, 100)
	variant := make([]int, 100)
	for i := range base {
		base[i] = i % 3
		variant[i] = i % 3
	}
	for i := 0; i < 10; i++ {
		variant[i*10] = 7 // 10% positions differ
	}
	seqs := [][]int{base, base, base, variant}
	if got := len(clusterSequences(seqs, 0.9, 8)); got != 1 {
		t.Errorf("Th=0.90: %d clusters, want 1", got)
	}
	if got := len(clusterSequences(seqs, 0.95, 8)); got != 2 {
		t.Errorf("Th=0.95: %d clusters, want 2", got)
	}
}

func TestClusterCap(t *testing.T) {
	// 10 completely distinct paths, cap at 4.
	seqs := make([][]int, 10)
	for i := range seqs {
		seqs[i] = []int{i * 3, i*3 + 1, i*3 + 2}
	}
	clusters := clusterSequences(seqs, 0.9, 4)
	if len(clusters) != 4 {
		t.Fatalf("got %d clusters, want cap 4", len(clusters))
	}
	total := 0
	for _, c := range clusters {
		total += len(c.members)
	}
	if total != 10 {
		t.Errorf("clusters cover %d warps, want 10", total)
	}
}

func TestProfileReuseCaptured(t *testing.T) {
	// Thread accesses alternate between two lines -> strong reuse.
	k := &trace.KernelTrace{Name: "reuse", GridDim: 1, BlockDim: 32}
	for tid := 0; tid < 32; tid++ {
		tt := trace.ThreadTrace{ThreadID: tid}
		for j := 0; j < 8; j++ {
			tt.Accesses = append(tt.Accesses, trace.Access{
				PC: 0x5, Addr: uint64(0x1000 + (j%2)*0x80), Kind: trace.Load})
		}
		k.Threads = append(k.Threads, tt)
	}
	p, err := ProfileKernel(k, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := p.Profiles[0].Reuse
	if r.Total() == 0 {
		t.Fatal("no reuse samples")
	}
	// Stream per warp: lines A B A B A B A B -> distances inf inf 1 1 1 1 1 1.
	if r.Count(1) != 6 {
		t.Errorf("distance-1 count = %d, want 6: %v", r.Count(1), r)
	}
	if r.Count(-1) != 2 {
		t.Errorf("cold count = %d, want 2: %v", r.Count(-1), r)
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p, err := ProfileKernel(divergentTrace(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Warps != p.Warps || got.TotalRequests != p.TotalRequests {
		t.Errorf("round trip lost metadata: %+v vs %+v", got, p)
	}
	if len(got.Insts) != len(p.Insts) || len(got.Profiles) != len(p.Profiles) {
		t.Fatalf("round trip lost structure")
	}
	for i := range p.Insts {
		if got.Insts[i].PC != p.Insts[i].PC || got.Insts[i].Base != p.Insts[i].Base {
			t.Errorf("inst %d differs", i)
		}
		if got.Insts[i].InterStride.Total() != p.Insts[i].InterStride.Total() {
			t.Errorf("inst %d inter-stride histogram differs", i)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"name":"x"}`)); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestProfileEmptyTraceRejected(t *testing.T) {
	k := &trace.KernelTrace{Name: "empty", GridDim: 1, BlockDim: 32}
	for tid := 0; tid < 32; tid++ {
		k.Threads = append(k.Threads, trace.ThreadTrace{ThreadID: tid})
	}
	if _, err := ProfileKernel(k, DefaultConfig()); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestProfileAllWorkloads(t *testing.T) {
	for _, s := range workloads.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			tr, err := s.Trace(1)
			if err != nil {
				t.Fatal(err)
			}
			p, err := ProfileKernel(tr, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if p.TotalRequests == 0 {
				t.Fatal("no requests profiled")
			}
			// Q must sum to 1.
			var q float64
			for i := range p.Profiles {
				q += p.Q(i)
			}
			if q < 0.999 || q > 1.001 {
				t.Errorf("Q sums to %v", q)
			}
			if len(p.Profiles) > 8 {
				t.Errorf("M = %d exceeds cap", len(p.Profiles))
			}
		})
	}
}

func TestRegularWorkloadsSingleProfile(t *testing.T) {
	// Divergence-free workloads must collapse to one dominant π profile.
	for _, name := range []string{"kmeans", "blk", "scalarprod", "nn"} {
		s, _ := workloads.ByName(name)
		tr, err := s.Trace(1)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ProfileKernel(tr, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Profiles) != 1 {
			t.Errorf("%s: %d π profiles, want 1", name, len(p.Profiles))
		}
	}
}

func TestKmeansProfileMatchesTable1(t *testing.T) {
	s, _ := workloads.ByName("kmeans")
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileKernel(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dom := p.DominantInsts()
	inst := p.Insts[dom[0]]
	if inst.PC != 0xe8 {
		t.Fatalf("dominant pc = %#x, want 0xe8", inst.PC)
	}
	if f := p.InstFrequency(dom[0]); f < 0.95 {
		t.Errorf("dominant frequency = %v, want ~1.0", f)
	}
	if key, _, _ := inst.InterStride.Mode(); key != 4352 {
		t.Errorf("dominant inter-warp stride = %d, want 4352", key)
	}
}

func BenchmarkProfileKernel(b *testing.B) {
	s, _ := workloads.ByName("bp")
	tr, err := s.Trace(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProfileKernel(tr, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
