// Package serve is the HTTP serving layer shared by the read-only
// observability exposition server (internal/obs/serve) and the
// clone-and-simulate service (internal/serve/api, cmd/gmap-served): one
// listen/serve/shutdown lifecycle helper, so both servers bind, report
// their actual address and drain on context cancellation identically.
//
// The helper supports ":0" listen addresses — the kernel picks a free
// port and Addr() reports the one actually bound — which is what makes
// both servers integration-testable over real listeners without httptest
// and lets deployments bind "any free port" and advertise it.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server is a bound, serving HTTP server whose lifetime is tied to the
// context passed to Start: cancelling the context drains in-flight
// requests and stops the serve loop, as does calling Shutdown directly.
type Server struct {
	name string
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	err  error
}

// Start binds addr and serves handler until ctx is cancelled (or
// Shutdown is called). It returns once the listener is bound, so Addr()
// is immediately routable — pass port :0 to let the kernel pick a free
// port and read the bound one back from Addr(). name tags error messages
// ("obs serve", "gmap-served").
func Start(ctx context.Context, name, addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%s: listen %s: %w", name, addr, err)
	}
	s := &Server{
		name: name,
		ln:   ln,
		srv:  &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.err = err
		}
	}()
	go func() {
		select {
		case <-ctx.Done():
			s.shutdown()
		case <-s.done:
		}
	}()
	return s, nil
}

// Addr returns the actually-bound listen address — with a ":0" request
// this carries the kernel-assigned port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Port returns the bound TCP port.
func (s *Server) Port() int {
	if a, ok := s.ln.Addr().(*net.TCPAddr); ok {
		return a.Port
	}
	return 0
}

// URL returns the server's base URL ("http://127.0.0.1:9301"). A
// wildcard bind address is rewritten to a loopback host so the URL is
// dialable as printed.
func (s *Server) URL() string {
	a, ok := s.ln.Addr().(*net.TCPAddr)
	if !ok {
		return "http://" + s.ln.Addr().String()
	}
	host := a.IP.String()
	if a.IP == nil || a.IP.IsUnspecified() {
		host = "127.0.0.1"
	}
	return fmt.Sprintf("http://%s", net.JoinHostPort(host, fmt.Sprint(a.Port)))
}

// Shutdown stops the server, draining in-flight requests, and waits for
// the serve loop to exit. Safe to call more than once and after ctx
// cancellation has already stopped the server.
func (s *Server) Shutdown() error {
	s.shutdown()
	<-s.done
	return s.err
}

func (s *Server) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Shutdown is idempotent; an already-closed server returns nil.
	_ = s.srv.Shutdown(ctx)
}
