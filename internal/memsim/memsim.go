// Package memsim is the SIMT-aware, multi-core, multi-level cache and
// memory performance simulator that both original applications and G-MAP
// proxies are evaluated on (§5: "a validated SIMT-aware multi-core,
// multi-level cache and memory simulator ... based on CMP$im", with
// Ramulator modeling the memory system).
//
// It consumes coalesced warp-level request streams, assigns threadblocks
// to cores following Fermi's model, and drives per-core warp queues with a
// configurable scheduling policy (LRR, GTO, or the SchedPself
// approximation of §4.5). Each core issues at most one memory request per
// cycle from a ready warp; the warp is then delayed in proportion to the
// request's latency — L1 hit, L2 hit, or a full DRAM round trip through an
// MSHR-bounded miss path — closing the loop between scheduling and memory
// behaviour. Core and memory clocks are treated as 1:1.
//
// Two execution engines share one set of per-cycle primitives. The serial
// engine visits cores in order on the calling goroutine. With
// Config.Workers > 1, SM cores execute on worker goroutines instead: the
// core-local half of every visited cycle (scheduling, barriers, the L1 and
// its prefetcher, MSHR bookkeeping) runs shard-local, and the cores meet
// at a shared-state drain where the coordinator replays their L2/DRAM
// continuations in deterministic core order. Results are bit-identical
// between the engines for any worker count and any GOMAXPROCS; DESIGN.md
// §12 documents the seam and the exactness argument.
package memsim

import (
	"fmt"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/prefetch"
	"github.com/uteda/gmap/internal/rng"
	"github.com/uteda/gmap/internal/trace"
)

// SchedPolicy selects the warp scheduler.
type SchedPolicy int

// Supported warp scheduling policies.
const (
	// LRR is loose round-robin: ready warps issue in rotating order.
	LRR SchedPolicy = iota
	// GTO is greedy-then-oldest: keep issuing the current warp until it
	// stalls, then switch to the oldest ready warp.
	GTO
	// PSelf is the paper's SchedPself approximation: with probability
	// Config.SchedPself the previously scheduled warp issues again,
	// otherwise round-robin advances.
	PSelf
)

// String returns "lrr", "gto" or "pself".
func (p SchedPolicy) String() string {
	switch p {
	case GTO:
		return "gto"
	case PSelf:
		return "pself"
	default:
		return "lrr"
	}
}

// Config describes the simulated memory hierarchy.
type Config struct {
	// NumCores is the SM count (Table 2: 15).
	NumCores int
	// BlocksPerCore bounds resident threadblocks per SM (default 8).
	BlocksPerCore int
	// L1 is the per-core L1 data cache; L2 the shared cache, split into
	// L2Banks address-interleaved banks.
	L1      cache.Config
	L2      cache.Config
	L2Banks int
	// Latencies in core cycles.
	L1HitLatency uint64
	L2HitLatency uint64
	// MSHRsPerCore bounds outstanding L1 misses per core (Table 2: 64);
	// 0 means unbounded.
	MSHRsPerCore int
	// NewL1Prefetcher, when non-nil, builds one L1 prefetcher per core.
	NewL1Prefetcher func() (prefetch.Prefetcher, error)
	// L2Prefetcher, when non-nil, observes the shared L2 demand stream.
	L2Prefetcher prefetch.Prefetcher
	// DRAM configures the memory system.
	DRAM dram.Config
	// Scheduler selects the warp scheduling policy; SchedPself is the
	// repeat probability used by PSelf.
	Scheduler  SchedPolicy
	SchedPself float64
	// Seed drives stochastic scheduling decisions.
	Seed uint64
	// Workers selects the execution engine: 0 or 1 runs the serial
	// scheduler loop on the calling goroutine, while a larger value runs
	// the SM cores on up to that many worker goroutines (capped at
	// NumCores) that meet at a shared L2/DRAM drain every visited cycle.
	// The choice is a pure execution detail: metrics, observability and
	// trace exports are bit-identical for every value of Workers and any
	// GOMAXPROCS setting.
	Workers int
	// Obs, when non-nil, receives live instrumentation: per-core
	// warp-queue depth and MSHR occupancy series, cumulative and
	// per-launch miss-rate samples, scheduler stall reasons, L2 bank
	// conflicts and DRAM row/queue/latency activity. Observability is
	// write-only: Metrics are bit-identical whether Obs is set or nil.
	Obs *obs.Registry
	// TraceSpan, when non-nil, parents the simulation's spans: one
	// "memsim.run" child covering the whole Run with its begin/end cycles
	// recorded, plus one "memsim.epoch" child per kernel-launch window on
	// multi-launch streams. Write-only, like Obs.
	TraceSpan *obstrace.Span
}

// DefaultConfig returns the Table 2 profiled system: 15 SMs, 16KB 4-way
// 128B L1 (1-cycle hits), 1MB 8-way 8-bank 128B L2, 64 MSHRs/core, LRR
// scheduling, GDDR3 memory.
func DefaultConfig() Config {
	return Config{
		NumCores:      15,
		BlocksPerCore: 8,
		L1:            cache.Config{SizeBytes: 16 * 1024, Ways: 4, LineSize: 128},
		L2:            cache.Config{SizeBytes: 1 << 20, Ways: 8, LineSize: 128},
		L2Banks:       8,
		L1HitLatency:  1,
		L2HitLatency:  20,
		MSHRsPerCore:  64,
		DRAM:          dram.DefaultGDDR3(),
		Scheduler:     LRR,
	}
}

// Metrics aggregates one simulation run.
type Metrics struct {
	// Cycles is the simulated execution time.
	Cycles uint64
	// Requests is the number of demand requests issued.
	Requests uint64
	// L1 aggregates all cores' L1 statistics; L2 all banks'.
	L1 cache.Stats
	L2 cache.Stats
	// DRAM carries the memory-system statistics.
	DRAM dram.Stats
	// MSHRStalls counts issue slots lost to a full MSHR file.
	MSHRStalls uint64
	// PerLaunch breaks the run down by kernel launch (sequences only):
	// one entry per launch with that launch's share of the activity.
	PerLaunch []LaunchMetrics
}

// LaunchMetrics is one kernel launch's slice of a sequence run.
type LaunchMetrics struct {
	// Launch is the position in the sequence.
	Launch int
	// Cycles is the launch's wall-clock share (start of admission to full
	// retirement).
	Cycles uint64
	// Requests counts demand requests issued during the launch.
	Requests uint64
	// L1 and L2 hold the launch's cache activity deltas.
	L1 cache.Stats
	L2 cache.Stats
}

// L1MissRate is a convenience accessor.
func (m Metrics) L1MissRate() float64 { return m.L1.MissRate() }

// L2MissRate is a convenience accessor.
func (m Metrics) L2MissRate() float64 { return m.L2.MissRate() }

type warpState struct {
	requests  []trace.Request
	cursor    int
	readyAt   uint64
	waiting   bool // blocked on a DRAM completion
	atBarrier bool // parked at a bar.sync until the block converges
	block     int
}

func (w *warpState) done() bool { return w.cursor >= len(w.requests) }

// notReady is the nextReady slot value for warps the scheduler must skip
// (stream finished, blocked on DRAM, or parked at a barrier).
const notReady = ^uint64(0)

type coreState struct {
	blocks    []int // block ids assigned to this core, arrival order
	nextBlock int   // index into blocks of the next non-resident block
	resident  int   // blocks currently resident (admitted, not finished)
	active    []int // warp indices currently resident, residency order
	rr        int   // round-robin pointer into active
	lastWarp  int   // warp index (global) of the last scheduled warp, -1 if none
	// pendingDone counts active warps that have finished their stream but
	// not yet retired; compactCore's retirement scan is skipped entirely
	// while it is zero.
	pendingDone int
	mshr        *cache.MSHRFile
	l1          *cache.Cache
	l1pf        prefetch.Prefetcher
	// Outstanding DRAM reads owned by this core: request id -> flight and
	// L1 line -> request id (secondary-miss merging). Keeping both maps
	// core-local makes the whole miss-merge path shard-safe under the
	// parallel engine.
	flights    map[uint64]*flight
	lineFlight map[uint64]uint64
	flightPool []*flight // retired flight records, reused to curb allocation
}

// flight tracks one outstanding DRAM read: the L1 line it fills and the
// warps blocked on it. The owning core is the map key's context.
type flight struct {
	line  uint64
	warps []int
}

// opKind tags the shared-state continuation a core's issue slot produced.
type opKind uint8

const (
	opNone opKind = iota
	// opShared carries a pre-executed L1 outcome whose L2/DRAM half still
	// has to run at the shared-state drain.
	opShared
	// opDeferred carries an untouched request whose MSHR-full stall
	// decision needs the shared L2 probe; the drain re-runs the whole
	// access with the probe available.
	opDeferred
)

// accOutcome is the L1-side outcome recorded in an opShared continuation.
type accOutcome uint8

const (
	accHit  accOutcome = iota // L1 hit: only prefetch candidates remain
	accWT                     // write-through store: the L2 write remains
	accMiss                   // L1 miss: the demand L2 lookup remains
)

// pfCand is one accepted L1 prefetch candidate: the line it filled and the
// dirty victim (if any) that fill evicted.
type pfCand struct {
	line        uint64
	victim      uint64
	victimDirty bool
}

// coreOp is one core's shared-state continuation for one visited cycle:
// everything its issue slot still has to do to the L2, the L2 prefetcher
// and the DRAM controller, recorded in the exact order the serial access
// path would perform it.
type coreOp struct {
	kind          opKind
	outcome       accOutcome
	wi            int
	req           trace.Request
	line          uint64 // L1 line address of req.Addr
	l1Victim      uint64
	l1VictimDirty bool
	cands         []pfCand // reused visit to visit
}

// coreSlot is the per-core exchange record between the core-local half of
// a visited cycle and the shared-state drain. The serial engine reuses a
// single slot and drains it immediately after each core; the parallel
// engine keeps one per core, filled by the owning worker and drained by
// the coordinator in core order.
type coreSlot struct {
	op       coreOp
	issued   bool
	reqDelta uint64            // demand requests issued this visit
	pself    bool              // pre-drawn PSelf repeat decision
	comps    []dram.Completion // completions routed to this core's flights
}

// Simulator runs warp streams through the hierarchy. Create one per run
// with New (single kernel) or NewSequence (an application's kernel
// launches, run back to back with cache and DRAM state persisting across
// launches); it is not reusable after Run.
type Simulator struct {
	cfg   Config
	warps []warpState
	// nextReady is the scheduler's struct-of-arrays hot column: one word
	// per warp holding readyAt, or notReady when the warp is done, waiting
	// on DRAM or parked at a barrier. Ready checks in the issue scan and
	// the next-event search are a single load and compare; warpState stays
	// the authoritative record and refreshReady keeps the column in sync
	// at every transition.
	nextReady  []uint64
	cores      []coreState
	blockWarps [][]int
	blockRem   []int
	blockWait  []int // warps currently parked at a barrier, per block
	// epochOf[b] is the kernel launch a block belongs to; blocks of launch
	// e+1 are admitted only after every launch-e warp retired (the
	// implicit device-wide synchronization between dependent kernels).
	epochOf  []int
	epochRem []int
	epoch    int
	l2       *cache.Banked
	l2pf     prefetch.Prefetcher
	dram     *dram.Controller
	rnd      *rng.Rand
	// flightCore routes DRAM completions to the core whose flight they
	// finish. Only the serial loop and the parallel coordinator touch it.
	flightCore map[uint64]int
	metrics    Metrics
	// obs carries the pre-resolved observability handles; nil when
	// disabled (see obs.go).
	obs *simObs
	// compBuf is the reused per-cycle DRAM completion batch; serialSlot
	// the serial engine's reused issue slot.
	compBuf    []dram.Completion
	serialSlot coreSlot
	// slots are the parallel engine's per-core exchange records (nil under
	// the serial engine).
	slots []coreSlot
	// Epoch-boundary snapshots for the per-launch breakdown.
	lastSnap struct {
		cycle    uint64
		requests uint64
		l1, l2   cache.Stats
	}

	// runSpan/epochSpan are the open trace spans of the current Run;
	// both are nil (no-op) when Config.TraceSpan is unset.
	runSpan   *obstrace.Span
	epochSpan *obstrace.Span
}

// New builds a simulator over the given warp streams. Warps carry their
// threadblock in WarpTrace.Block; blocks are assigned to cores round-robin
// as in §4.5 and become resident up to BlocksPerCore at a time, with new
// blocks admitted as resident ones finish.
func New(warps []trace.WarpTrace, cfg Config) (*Simulator, error) {
	return NewSequence([][]trace.WarpTrace{warps}, cfg)
}

// NewSequence builds a simulator over an application's kernel launches.
// Launches execute in order — a launch's blocks are admitted only after
// the previous launch fully retires — while the caches and the memory
// controller keep their state, so inter-kernel locality (and pollution)
// behaves as on hardware.
func NewSequence(launches [][]trace.WarpTrace, cfg Config) (*Simulator, error) {
	if len(launches) == 0 {
		return nil, fmt.Errorf("memsim: no launches")
	}
	// Flatten: per-launch block ids are offset so they stay disjoint.
	var warps []trace.WarpTrace
	var epochs []int
	blockBase := 0
	for li, lw := range launches {
		maxBlock := -1
		for _, w := range lw {
			w.Block += blockBase
			warps = append(warps, w)
			epochs = append(epochs, li)
			if w.Block > maxBlock {
				maxBlock = w.Block
			}
		}
		if maxBlock >= blockBase {
			blockBase = maxBlock + 1
		}
	}
	return newSim(warps, epochs, len(launches), cfg)
}

func newSim(warps []trace.WarpTrace, warpEpochs []int, numEpochs int, cfg Config) (*Simulator, error) {
	if cfg.NumCores <= 0 {
		return nil, fmt.Errorf("memsim: %d cores", cfg.NumCores)
	}
	if cfg.BlocksPerCore <= 0 {
		cfg.BlocksPerCore = 8
	}
	if cfg.L1HitLatency == 0 {
		cfg.L1HitLatency = 1
	}
	if cfg.L2HitLatency == 0 {
		cfg.L2HitLatency = 20
	}
	if cfg.L2Banks <= 0 {
		cfg.L2Banks = 1
	}
	if len(warps) == 0 {
		return nil, fmt.Errorf("memsim: no warps")
	}
	s := &Simulator{
		cfg:        cfg,
		rnd:        rng.New(cfg.Seed ^ 0x51713),
		flightCore: make(map[uint64]int),
	}
	var err error
	if s.l2, err = cache.NewBanked(cfg.L2, cfg.L2Banks); err != nil {
		return nil, err
	}
	if s.dram, err = dram.NewController(cfg.DRAM); err != nil {
		return nil, err
	}
	s.obs = newSimObs(cfg.Obs, cfg.NumCores, cfg.L2Banks)
	s.l2.AttachObs(cfg.Obs, "l2")
	s.dram.AttachObs(cfg.Obs)
	s.l2pf = cfg.L2Prefetcher
	if s.l2pf == nil {
		s.l2pf = prefetch.Nil{}
	} else {
		s.l2pf = prefetch.Instrument(s.l2pf, cfg.Obs, "prefetch.l2")
	}

	numBlocks := 0
	for i := range warps {
		if warps[i].Block < 0 {
			return nil, fmt.Errorf("memsim: warp %d has negative block", i)
		}
		if warps[i].Block+1 > numBlocks {
			numBlocks = warps[i].Block + 1
		}
	}
	s.blockRem = make([]int, numBlocks)
	s.blockWait = make([]int, numBlocks)
	s.blockWarps = make([][]int, numBlocks)
	s.epochOf = make([]int, numBlocks)
	s.epochRem = make([]int, numEpochs)
	s.warps = make([]warpState, len(warps))
	for i := range warps {
		b := warps[i].Block
		s.warps[i] = warpState{requests: warps[i].Requests, block: b}
		s.blockWarps[b] = append(s.blockWarps[b], i)
		s.blockRem[b]++
		s.epochOf[b] = warpEpochs[i]
		s.epochRem[warpEpochs[i]]++
	}
	s.nextReady = make([]uint64, len(warps))
	for i := range s.warps {
		s.refreshReady(i)
	}

	s.cores = make([]coreState, cfg.NumCores)
	for c := range s.cores {
		core := &s.cores[c]
		core.mshr = cache.NewMSHRFile(cfg.MSHRsPerCore)
		core.lastWarp = -1
		core.flights = make(map[uint64]*flight)
		core.lineFlight = make(map[uint64]uint64)
		l1cfg := cfg.L1
		l1cfg.Seed = cfg.Seed + uint64(c)
		if core.l1, err = cache.New(l1cfg); err != nil {
			return nil, err
		}
		if cfg.NewL1Prefetcher != nil {
			if core.l1pf, err = cfg.NewL1Prefetcher(); err != nil {
				return nil, err
			}
			// All cores share the prefetch.l1 counters; the per-core
			// tracking state stays private to each wrapper.
			core.l1pf = prefetch.Instrument(core.l1pf, cfg.Obs, "prefetch.l1")
		} else {
			core.l1pf = prefetch.Nil{}
		}
	}
	// Round-robin threadblock assignment (§4.5), then initial residency.
	for b := 0; b < numBlocks; b++ {
		c := b % cfg.NumCores
		s.cores[c].blocks = append(s.cores[c].blocks, b)
	}
	for c := range s.cores {
		core := &s.cores[c]
		for core.nextBlock < len(core.blocks) && core.resident < cfg.BlocksPerCore {
			before := core.nextBlock
			s.admitBlock(core)
			if core.nextBlock == before {
				break // next block belongs to a future launch
			}
		}
	}
	return s, nil
}

// refreshReady recomputes a warp's scheduler-visible readiness slot after
// a state transition.
func (s *Simulator) refreshReady(wi int) {
	ws := &s.warps[wi]
	if ws.done() || ws.waiting || ws.atBarrier {
		s.nextReady[wi] = notReady
		return
	}
	s.nextReady[wi] = ws.readyAt
}

// advanceCursor consumes warp wi's current request, tracking the core's
// pending-retirement count when the stream finishes.
func (s *Simulator) advanceCursor(core *coreState, wi int) {
	ws := &s.warps[wi]
	ws.cursor++
	if ws.done() {
		core.pendingDone++
	}
}

// admitBlock moves the core's next assigned block into residency, unless
// it belongs to a future kernel launch (epoch) that has not started yet.
// Blocks without warps (gaps in the block-id space) complete trivially and
// never occupy residency.
func (s *Simulator) admitBlock(core *coreState) {
	for core.nextBlock < len(core.blocks) {
		b := core.blocks[core.nextBlock]
		if s.epochOf[b] > s.epoch {
			return
		}
		core.nextBlock++
		if len(s.blockWarps[b]) == 0 {
			continue
		}
		core.resident++
		core.active = append(core.active, s.blockWarps[b]...)
		for _, wi := range s.blockWarps[b] {
			if s.warps[wi].done() {
				core.pendingDone++ // empty stream: retires on the next compact
			}
		}
		return
	}
}

// Run executes the simulation to completion and returns the metrics.
func (s *Simulator) Run() (Metrics, error) {
	if s.obs != nil {
		// The hierarchy's hot paths count into plain tallies; publish
		// them to the registry on every return path.
		defer func() {
			s.obs.flush()
			s.l2.FlushObs()
			s.dram.FlushObs()
		}()
	}
	var cycle uint64
	s.runSpan = s.cfg.TraceSpan.Child("memsim.run",
		obstrace.Int("warps", int64(len(s.warps))),
		obstrace.Int("cores", int64(s.cfg.NumCores)))
	if len(s.epochRem) > 1 {
		s.epochSpan = s.runSpan.Child("memsim.epoch", obstrace.Int("epoch", 0))
	}
	defer func() {
		// Close a dangling epoch span (no-progress error path) before the
		// run span; cycle holds the final simulated cycle either way.
		s.epochSpan.End()
		s.runSpan.SetCycles(0, cycle)
		s.runSpan.End()
	}()
	// Every warp retires exactly once, through compactCore; warps with no
	// memory work retire on the first pass.
	remaining := len(s.warps)
	for c := range s.cores {
		s.compactCore(c, 0, &remaining, s.epochRem)
	}
	var err error
	if nw := s.parallelWorkers(); nw > 0 {
		err = s.loopParallel(nw, &cycle, &remaining)
	} else {
		err = s.loopSerial(&cycle, &remaining)
	}
	if err != nil {
		return s.metrics, err
	}
	for _, comp := range s.dram.Drain() {
		s.complete(comp)
	}
	if len(s.epochRem) > 1 {
		s.recordLaunch(cycle)
	}
	s.metrics.Cycles = cycle
	for c := range s.cores {
		s.metrics.L1.Add(s.cores[c].l1.Stats)
	}
	s.metrics.L2 = s.l2.Stats()
	s.metrics.DRAM = s.dram.Stats
	return s.metrics, nil
}

// parallelWorkers resolves Config.Workers to an SM worker count; 0 selects
// the serial engine. The result depends only on the configuration — never
// on GOMAXPROCS — so a given Config always runs the same engine.
func (s *Simulator) parallelWorkers() int {
	nw := s.cfg.Workers
	if nw <= 1 {
		return 0
	}
	if nw > s.cfg.NumCores {
		nw = s.cfg.NumCores
	}
	return nw
}

// loopSerial is the classic engine: one goroutine visits the cores in
// order, draining each core's shared-state continuation immediately.
func (s *Simulator) loopSerial(cyclep *uint64, remaining *int) error {
	cycle := *cyclep
	defer func() { *cyclep = cycle }()
	guard := uint64(0)
	for *remaining > 0 {
		guard++
		if guard > 1<<34 {
			return fmt.Errorf("memsim: no forward progress (cycle %d, %d warps left)", cycle, *remaining)
		}
		s.compBuf = s.dram.AdvanceInto(cycle, s.compBuf[:0])
		for _, comp := range s.compBuf {
			s.complete(comp)
		}
		if s.obs != nil {
			s.sampleCycle(cycle)
		}
		issued := false
		slot := &s.serialSlot
		for c := range s.cores {
			slot.pself = s.preDrawPself(c)
			slot.op.kind = opNone
			if s.issueLocal(c, cycle, slot, true) {
				issued = true
				s.metrics.Requests += slot.reqDelta
				slot.reqDelta = 0
				if slot.op.kind == opShared {
					s.applyOp(c, slot, cycle)
				}
			} else if s.obs != nil {
				s.noteStall(c)
			}
		}
		for c := range s.cores {
			s.compactCore(c, cycle, remaining, s.epochRem)
		}
		s.advanceEpochs(cycle)
		if issued {
			cycle++
			continue
		}
		next := s.nextEvent(cycle)
		if next <= cycle {
			next = cycle + 1
		}
		cycle = next
	}
	return nil
}

// advanceEpochs moves to the next kernel launch when the current one fully
// retires (implicit device synchronization between launches).
func (s *Simulator) advanceEpochs(cycle uint64) {
	for s.epoch+1 < len(s.epochRem) && s.epochRem[s.epoch] == 0 {
		s.recordLaunch(cycle)
		s.epoch++
		for c := range s.cores {
			core := &s.cores[c]
			for core.nextBlock < len(core.blocks) && core.resident < s.cfg.BlocksPerCore {
				before := core.nextBlock
				s.admitBlock(core)
				if core.nextBlock == before {
					break
				}
			}
		}
	}
}

// preDrawPself consumes the PSelf repeat draw for core c exactly when the
// scheduler would: one Bool per visited cycle for every core with a
// non-empty queue and a previously scheduled warp. Drawing before the
// issue scan keeps the stream identical between the serial engine and the
// parallel one, where the coordinator draws for all cores in core order
// before releasing the workers.
func (s *Simulator) preDrawPself(c int) bool {
	if s.cfg.Scheduler != PSelf {
		return false
	}
	core := &s.cores[c]
	if len(core.active) == 0 || core.lastWarp < 0 {
		return false
	}
	return s.rnd.Bool(s.cfg.SchedPself)
}

// recordLaunch closes the current launch's per-epoch metric window.
func (s *Simulator) recordLaunch(cycle uint64) {
	var l1 cache.Stats
	for c := range s.cores {
		l1.Add(s.cores[c].l1.Stats)
	}
	l2 := s.l2.Stats()
	lm := LaunchMetrics{
		Launch:   s.epoch,
		Cycles:   cycle - s.lastSnap.cycle,
		Requests: s.metrics.Requests - s.lastSnap.requests,
	}
	lm.L1 = diffStats(l1, s.lastSnap.l1)
	lm.L2 = diffStats(l2, s.lastSnap.l2)
	if s.obs != nil {
		s.obs.noteLaunch(lm, cycle)
	}
	// Close this launch's epoch span over its cycle window and open the
	// next launch's (unless this was the last).
	s.epochSpan.SetCycles(s.lastSnap.cycle, cycle)
	s.epochSpan.End()
	s.epochSpan = nil
	if s.epoch+1 < len(s.epochRem) {
		s.epochSpan = s.runSpan.Child("memsim.epoch", obstrace.Int("epoch", int64(s.epoch+1)))
	}
	s.metrics.PerLaunch = append(s.metrics.PerLaunch, lm)
	s.lastSnap.cycle = cycle
	s.lastSnap.requests = s.metrics.Requests
	s.lastSnap.l1 = l1
	s.lastSnap.l2 = l2
}

// diffStats subtracts an earlier snapshot from a later one.
func diffStats(now, before cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:       now.Accesses - before.Accesses,
		Hits:           now.Hits - before.Hits,
		Misses:         now.Misses - before.Misses,
		Reads:          now.Reads - before.Reads,
		Writes:         now.Writes - before.Writes,
		Evictions:      now.Evictions - before.Evictions,
		Writebacks:     now.Writebacks - before.Writebacks,
		PrefetchFills:  now.PrefetchFills - before.PrefetchFills,
		PrefetchUseful: now.PrefetchUseful - before.PrefetchUseful,
	}
}

// complete routes one finished DRAM read to the core that owns its flight
// (serial engine; the parallel coordinator routes batches instead).
func (s *Simulator) complete(comp dram.Completion) {
	c, ok := s.flightCore[comp.ID]
	if !ok {
		return // fire-and-forget traffic (writebacks, prefetches)
	}
	delete(s.flightCore, comp.ID)
	s.applyCompletion(c, comp)
}

// applyCompletion wakes the warps blocked on a finished DRAM read owned by
// core c and releases its MSHR entry. Every touched structure belongs to
// the core, so the parallel engine's workers apply their own routed
// completions shard-locally.
func (s *Simulator) applyCompletion(c int, comp dram.Completion) {
	core := &s.cores[c]
	f := core.flights[comp.ID]
	for _, wi := range f.warps {
		ws := &s.warps[wi]
		ws.waiting = false
		ws.readyAt = comp.Done
		s.refreshReady(wi)
	}
	if s.obs != nil {
		s.obs.waiting[c] -= len(f.warps)
	}
	core.mshr.Release(f.line)
	delete(core.lineFlight, f.line)
	delete(core.flights, comp.ID)
	f.warps = f.warps[:0]
	core.flightPool = append(core.flightPool, f)
}

// compactCore retires finished warps, admits follow-on blocks, and keeps
// scheduler pointers valid. While no active warp has finished its stream
// (pendingDone == 0) the scan is skipped outright — retirement is
// event-driven, not a per-cycle sweep. Retirement deltas go to the
// caller's sinks: the serial engine passes the live remaining counter and
// epoch table, parallel workers pass per-worker sinks the coordinator
// merges at the visit barrier.
func (s *Simulator) compactCore(c int, cycle uint64, remaining *int, epochRem []int) {
	core := &s.cores[c]
	if core.pendingDone == 0 {
		return
	}
	compact := core.active[:0]
	admissions := 0
	for _, wi := range core.active {
		ws := &s.warps[wi]
		if ws.done() && !ws.waiting && ws.readyAt <= cycle {
			core.pendingDone--
			*remaining--
			s.blockRem[ws.block]--
			epochRem[s.epochOf[ws.block]]--
			if s.blockRem[ws.block] == 0 {
				core.resident--
				admissions++
			} else if s.blockWait[ws.block] >= s.blockRem[ws.block] {
				// The retiree was the last warp the barrier was waiting
				// for: release the parked ones.
				s.releaseBarrier(c, ws.block, cycle)
			}
			continue
		}
		compact = append(compact, wi)
	}
	// Admit follow-on blocks only after compaction: admitBlock appends to
	// core.active, which would otherwise race the in-place filter above.
	core.active = compact
	for i := 0; i < admissions; i++ {
		s.admitBlock(core)
	}
	if core.rr >= len(core.active) {
		core.rr = 0
	}
}

// issueLocal runs the core-local half of core c's issue slot for one
// visited cycle: scheduler pick, barrier arrival, the L1 access and
// prefetcher probing, and MSHR bookkeeping. Work on the shared L2/DRAM is
// recorded in slot.op for the shared-state drain — applied immediately in
// the serial engine, in core order by the parallel coordinator — so both
// engines mutate shared state through the same code in the same order. It
// reports whether the core consumed its issue slot. allowProbe permits
// reading the shared L2 for the MSHR-full stall check; parallel workers
// run with it false and leave that case to the drain as an opDeferred.
func (s *Simulator) issueLocal(c int, cycle uint64, slot *coreSlot, allowProbe bool) bool {
	core := &s.cores[c]
	n := len(core.active)
	if n == 0 {
		return false
	}
	ready := func(wi int) bool { return s.nextReady[wi] <= cycle }
	pick := -1
	switch s.cfg.Scheduler {
	case GTO:
		// Greedy: stick with the last warp while ready; else oldest ready
		// (first in residency order).
		if core.lastWarp >= 0 {
			for i := 0; i < n; i++ {
				if core.active[i] == core.lastWarp && ready(core.active[i]) {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			for i := 0; i < n; i++ {
				if ready(core.active[i]) {
					pick = i
					break
				}
			}
		}
	case PSelf:
		if core.lastWarp >= 0 && slot.pself {
			for i := 0; i < n; i++ {
				if core.active[i] == core.lastWarp && ready(core.active[i]) {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			for i := 1; i <= n; i++ {
				idx := (core.rr + i) % n
				if ready(core.active[idx]) {
					pick = idx
					core.rr = idx
					break
				}
			}
		}
	default: // LRR
		for i := 1; i <= n; i++ {
			idx := (core.rr + i) % n
			if ready(core.active[idx]) {
				pick = idx
				core.rr = idx
				break
			}
		}
	}
	if pick < 0 {
		return false
	}
	wi := core.active[pick]
	core.lastWarp = wi
	ws := &s.warps[wi]
	req := ws.requests[ws.cursor]
	if req.Kind == trace.Sync {
		// Threadblock barrier (§4.5): park the warp; when every live warp
		// of the block has arrived, release them all past the barrier.
		s.arriveBarrier(c, wi, cycle)
		return true
	}
	switch s.accessLocal(c, wi, req, cycle, slot, allowProbe) {
	case accStallMSHR:
		// MSHR full: the slot is lost and the warp retries later.
		s.metrics.MSHRStalls++
		if s.obs != nil {
			s.obs.tally[c].nStallMSHR++
		}
		ws.readyAt = cycle + 1
		s.nextReady[wi] = cycle + 1
		return true
	case accNeedsProbe:
		slot.op.kind = opDeferred
		slot.op.wi = wi
		slot.op.req = req
		return true
	}
	s.advanceCursor(core, wi)
	s.refreshReady(wi)
	return true
}

// arriveBarrier parks warp wi at its block's barrier, releasing the whole
// block once every live warp has arrived. Warps that retire early (fewer
// barriers on their divergent path) simply stop counting toward the
// block's live population.
func (s *Simulator) arriveBarrier(c, wi int, cycle uint64) {
	ws := &s.warps[wi]
	b := ws.block
	ws.atBarrier = true
	s.nextReady[wi] = notReady
	if s.obs != nil {
		s.obs.tally[c].nBarriers++
		s.obs.blocked[c]++
	}
	s.blockWait[b]++
	if s.blockWait[b] >= s.blockRem[b] {
		s.releaseBarrier(c, b, cycle)
	}
}

// releaseBarrier frees every warp parked at block b's barrier. c is the
// core block b resides on (a block is never split across cores).
func (s *Simulator) releaseBarrier(c, b int, cycle uint64) {
	core := &s.cores[c]
	for _, other := range s.blockWarps[b] {
		ow := &s.warps[other]
		if ow.atBarrier {
			ow.atBarrier = false
			ow.readyAt = cycle + 1
			s.advanceCursor(core, other)
			s.refreshReady(other)
			if s.obs != nil {
				s.obs.blocked[c]--
			}
		}
	}
	s.blockWait[b] = 0
}

// accResult is accessLocal's disposition of one demand request.
type accResult uint8

const (
	// accDone: the request was accepted; slot.op may carry shared work.
	accDone accResult = iota
	// accStallMSHR: rejected before touching any state — the MSHR file is
	// full and the line is nowhere in the hierarchy (allowProbe callers
	// only).
	accStallMSHR
	// accNeedsProbe: undecidable without reading the shared L2; nothing
	// was touched, the drain re-runs the access with the probe available.
	accNeedsProbe
)

// accessLocal sends one request through the core-local half of the
// hierarchy: secondary-miss merging, the stall-before-touch MSHR check,
// the L1 access and the L1 prefetcher's probe/fill pass. The surviving
// L2/DRAM work is recorded in slot.op in serial-access order for the
// shared-state drain (applyOp).
func (s *Simulator) accessLocal(c, wi int, req trace.Request, cycle uint64, slot *coreSlot, allowProbe bool) accResult {
	core := &s.cores[c]
	ws := &s.warps[wi]
	write := req.Kind == trace.Store
	line := core.l1.LineAddr(req.Addr)

	// Secondary miss on an in-flight line: merge into the outstanding
	// entry and wait for the same completion.
	if reqID, inflight := core.lineFlight[line]; inflight {
		core.mshr.Allocate(line)
		core.l1.Stats.Accesses++
		core.l1.Stats.Misses++
		if write {
			core.l1.Stats.Writes++
		} else {
			core.l1.Stats.Reads++
		}
		slot.reqDelta++
		if s.obs != nil {
			s.obs.tally[c].nRequests++
		}
		ws.waiting = true
		if s.obs != nil {
			s.obs.waiting[c]++
		}
		core.flights[reqID].warps = append(core.flights[reqID].warps, wi)
		return accDone
	}

	// Stall-before-touch: if servicing this request would need a new MSHR
	// entry and the file is full, reject it before any cache state or
	// statistic changes — a stalled request must replay identically.
	// Write-through stores never allocate an MSHR. The final arbiter is a
	// probe of the shared L2, which parallel workers must not read
	// mid-visit; they defer the whole untouched access to the drain.
	wouldAllocate := !(write && core.l1.Config().Writes == cache.WriteThroughNoAllocate)
	if wouldAllocate && core.mshr.Full() && !core.l1.Probe(req.Addr) {
		if !allowProbe {
			return accNeedsProbe
		}
		if !s.l2.Probe(req.Addr) {
			return accStallMSHR
		}
	}

	res := core.l1.Access(req.Addr, write)
	slot.reqDelta++
	if s.obs != nil {
		s.obs.tally[c].nRequests++
	}
	// The L1 prefetcher's candidate pass: probe/fill decisions depend only
	// on L1 state, so they run here; each accepted candidate's L2 lookup
	// and DRAM fetch are recorded for the drain in candidate order.
	op := &slot.op
	op.cands = op.cands[:0]
	for _, cand := range core.l1pf.Observe(req.PC, req.WarpID, line, !res.Hit) {
		if core.l1.Probe(cand) {
			continue
		}
		fill := core.l1.Fill(cand)
		pc := pfCand{line: cand}
		if fill.Evicted && fill.EvictedDirty {
			pc.victim, pc.victimDirty = fill.EvictedAddr, true
		}
		op.cands = append(op.cands, pc)
	}
	if res.WroteThrough {
		// Write-through L1: the store propagates to the L2 at the drain
		// and the warp continues behind a store buffer — it is never
		// blocked on the write's completion.
		op.kind, op.outcome = opShared, accWT
		op.wi, op.req, op.line = wi, req, line
		ws.readyAt = cycle + s.cfg.L1HitLatency
		return accDone
	}
	if res.Hit {
		if len(op.cands) > 0 {
			op.kind, op.outcome = opShared, accHit
			op.wi, op.req, op.line = wi, req, line
		}
		ws.readyAt = cycle + s.cfg.L1HitLatency
		return accDone
	}
	op.kind, op.outcome = opShared, accMiss
	op.wi, op.req, op.line = wi, req, line
	op.l1VictimDirty = res.Evicted && res.EvictedDirty
	if op.l1VictimDirty {
		op.l1Victim = res.EvictedAddr
	}
	// Until the drain resolves the L2 lookup the warp is provisionally
	// blocked; the drain either unblocks it with the L2 hit latency or
	// leaves it waiting on the DRAM flight it creates.
	ws.waiting = true
	return accDone
}

// applyOp runs the shared-state half of an opShared continuation — the L2
// accesses and DRAM enqueues of one issued request, in exactly the order
// the serial access path performs them. The serial engine calls it inline
// after each core's issue slot; the parallel coordinator calls it at the
// per-visit drain in core order, with every worker parked, so the L2, the
// L2 prefetcher and the DRAM arrival sequence (and with it every request
// id) are identical between the engines.
func (s *Simulator) applyOp(c int, slot *coreSlot, cycle uint64) {
	core := &s.cores[c]
	op := &slot.op
	for i := range op.cands {
		cand := &op.cands[i]
		if cand.victimDirty {
			s.l2WriteBack(cand.victim, cycle)
		}
		l2res := s.l2.Access(cand.line, false)
		if !l2res.Hit {
			if l2res.Evicted && l2res.EvictedDirty {
				s.dram.Enqueue(l2res.EvictedAddr, true, cycle)
			}
			s.dram.Enqueue(s.l2.LineAddr(cand.line), false, cycle)
		}
	}
	switch op.outcome {
	case accWT:
		if s.obs != nil {
			s.obs.noteL2Bank(s.l2.BankOf(op.req.Addr), cycle)
		}
		l2res := s.l2.Access(op.req.Addr, true)
		if !l2res.Hit {
			if l2res.Evicted && l2res.EvictedDirty {
				s.dram.Enqueue(l2res.EvictedAddr, true, cycle)
			}
			s.dram.Enqueue(s.l2.LineAddr(op.req.Addr), true, cycle)
		}
	case accHit:
		// Prefetch candidates only; the warp already holds its hit latency.
	case accMiss:
		ws := &s.warps[op.wi]
		write := op.req.Kind == trace.Store
		if op.l1VictimDirty {
			s.l2WriteBack(op.l1Victim, cycle)
		}
		if s.obs != nil {
			s.obs.noteL2Bank(s.l2.BankOf(op.req.Addr), cycle)
		}
		l2res := s.l2.Access(op.req.Addr, write)
		if pf := s.l2pf.Observe(op.req.PC, op.req.WarpID, s.l2.LineAddr(op.req.Addr), !l2res.Hit); pf != nil {
			s.l2PrefetchFill(pf, cycle)
		}
		if l2res.Hit {
			ws.waiting = false
			ws.readyAt = cycle + s.cfg.L2HitLatency
			s.refreshReady(op.wi)
			return
		}
		if l2res.Evicted && l2res.EvictedDirty {
			s.dram.Enqueue(l2res.EvictedAddr, true, cycle)
		}
		// The stall-before-touch check guaranteed an entry is available.
		core.mshr.Allocate(op.line)
		reqID := s.dram.Enqueue(s.l2.LineAddr(op.req.Addr), write, cycle)
		var f *flight
		if n := len(core.flightPool); n > 0 {
			f = core.flightPool[n-1]
			core.flightPool = core.flightPool[:n-1]
			f.line = op.line
			f.warps = append(f.warps, op.wi)
		} else {
			f = &flight{line: op.line, warps: []int{op.wi}}
		}
		core.flights[reqID] = f
		core.lineFlight[op.line] = reqID
		s.flightCore[reqID] = c
		// ws.waiting was set provisionally at issue; it sticks.
		if s.obs != nil {
			s.obs.waiting[c]++
		}
	}
}

// applyDeferred resolves an opDeferred at the drain: with the shared L2
// now readable it re-runs the whole access, mirroring the serial engine's
// MSHR-stall tail exactly. Nothing was touched at issue time, so the
// re-run is the first and only execution of the access.
func (s *Simulator) applyDeferred(c int, slot *coreSlot, cycle uint64) {
	wi, req := slot.op.wi, slot.op.req
	slot.op.kind = opNone
	switch s.accessLocal(c, wi, req, cycle, slot, true) {
	case accStallMSHR:
		s.metrics.MSHRStalls++
		if s.obs != nil {
			s.obs.tally[c].nStallMSHR++
		}
		ws := &s.warps[wi]
		ws.readyAt = cycle + 1
		s.nextReady[wi] = cycle + 1
	case accDone:
		s.metrics.Requests += slot.reqDelta
		slot.reqDelta = 0
		s.advanceCursor(&s.cores[c], wi)
		s.refreshReady(wi)
		if slot.op.kind == opShared {
			s.applyOp(c, slot, cycle)
		}
	}
}

// l2PrefetchFill installs stream-prefetch candidates into the L2.
func (s *Simulator) l2PrefetchFill(cands []uint64, cycle uint64) {
	for _, cand := range cands {
		if s.l2.Probe(cand) {
			continue
		}
		fill := s.l2.Fill(cand)
		if fill.Evicted && fill.EvictedDirty {
			s.dram.Enqueue(fill.EvictedAddr, true, cycle)
		}
		s.dram.Enqueue(cand, false, cycle)
	}
}

// l2WriteBack sends an L1 dirty victim into the L2.
func (s *Simulator) l2WriteBack(addr uint64, cycle uint64) {
	res := s.l2.Access(addr, true)
	if !res.Hit && res.Evicted && res.EvictedDirty {
		s.dram.Enqueue(res.EvictedAddr, true, cycle)
	}
}

// nextEvent returns the earliest future cycle at which anything can
// happen: a warp becoming ready or a DRAM completion. It is only called
// when no core could issue, which means every pending arrival is already
// enqueued — making the controller's minimal-service peek exact. The scan
// reads the nextReady column only: done, waiting and parked warps sit at
// notReady and fall out of the comparison.
func (s *Simulator) nextEvent(cycle uint64) uint64 {
	next := notReady
	for c := range s.cores {
		for _, wi := range s.cores[c].active {
			if t := s.nextReady[wi]; t > cycle && t < next {
				next = t
			}
		}
	}
	if t, ok := s.dram.NextCompletion(); ok && t < next {
		next = t
	}
	if next == notReady {
		return cycle + 1
	}
	return next
}
