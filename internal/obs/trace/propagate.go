// Cross-process span propagation: the wire form of "this work belongs
// under that span over there".
//
// A SpanContext names one span globally — a 128-bit trace id shared by
// every process contributing to one distributed operation, plus the
// span's own 64-bit id — and serializes as a W3C-traceparent-style
// header ("00-<32 hex trace id>-<16 hex span id>-01"). The dist layer
// carries it inside lease grants: the coordinator opens a lease span,
// exports its context into the grant, and the worker begins its own
// span as a RemoteChild of that context. Each process still owns its
// private bounded event log; WriteMergedChrome stitches the logs into
// one multi-process Chrome trace where the trace id and remote-parent
// attributes let a viewer (or a test) correlate worker spans back to
// the coordinator spans that caused them.
//
// Everything here preserves the nil contract: a nil tracer's
// RemoteChild is nil, a nil span's Context is the zero SpanContext and
// the zero SpanContext's Traceparent is "" — so a worker running
// without tracing ships empty headers and drops incoming ones at a
// single predictable branch.
package trace

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// SpanContext identifies one span for cross-process parenting.
type SpanContext struct {
	// TraceID is the distributed trace's id: 32 lowercase hex chars,
	// shared by every span of one distributed operation.
	TraceID string
	// SpanID is the identified span's id inside its own tracer.
	SpanID uint64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool {
	return validTraceID(sc.TraceID) && sc.SpanID != 0
}

// Traceparent renders the context as a traceparent-style header value:
// "00-<trace id>-<16 hex span id>-01". An invalid context renders "",
// which ParseTraceparent rejects — so round-tripping a disabled
// tracer's context stays a no-op.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", sc.TraceID, sc.SpanID)
}

// ParseTraceparent parses a Traceparent header value back into a
// SpanContext. Unknown versions are accepted as long as the field
// shapes match (forward compatibility, as in W3C trace context).
func ParseTraceparent(s string) (SpanContext, error) {
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(s) != 2+1+32+1+16+1+2 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, fmt.Errorf("trace: malformed traceparent %q", s)
	}
	if !isHex(s[:2]) || !isHex(s[53:]) {
		return SpanContext{}, fmt.Errorf("trace: malformed traceparent %q", s)
	}
	tid := s[3:35]
	if !validTraceID(tid) {
		return SpanContext{}, fmt.Errorf("trace: bad trace id in %q", s)
	}
	sid, err := strconv.ParseUint(s[36:52], 16, 64)
	if err != nil || sid == 0 {
		return SpanContext{}, fmt.Errorf("trace: bad span id in %q", s)
	}
	return SpanContext{TraceID: tid, SpanID: sid}, nil
}

// validTraceID reports whether id is 32 lowercase hex chars and not
// all-zero.
func validTraceID(id string) bool {
	if len(id) != 32 || !isHex(id) {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] != '0' {
			return true
		}
	}
	return false
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// randomTraceID draws a fresh 128-bit trace id. crypto/rand failing is
// effectively impossible; the fallback derives an id from the clock so
// a tracer is never left without one.
func randomTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(b[8:], ^uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// TraceID is the tracer's distributed trace id ("" for nil).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// AdoptTraceID joins the tracer to an existing distributed trace: its
// spans' contexts export under id from now on. Invalid ids are ignored
// — a worker handed a garbage grant keeps its own trace rather than
// corrupting the merge key.
func (t *Tracer) AdoptTraceID(id string) {
	if t == nil || !validTraceID(id) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traceID = id
}

// Context exports the span's identity for cross-process parenting; the
// zero SpanContext for nil.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return SpanContext{TraceID: s.t.traceID, SpanID: s.id}
}

// RemoteChild begins a span whose parent lives in another process: a
// top-level span on a fresh track (its local Parent is 0) that records
// sc's trace id and span id as the event's trace_id / remote_parent,
// the linkage a merged export correlates on. The tracer adopts sc's
// trace id. An invalid sc degrades to a plain Root span, so a worker
// leased by a coordinator that is not tracing still traces locally.
func (t *Tracer) RemoteChild(sc SpanContext, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTrack++
	s := t.begin(name, 0, t.nextTrack, attrs)
	if sc.Valid() {
		t.traceID = sc.TraceID
		s.remoteTrace = sc.TraceID
		s.remoteParent = sc.SpanID
	}
	return s
}

// SetDefaultParent makes subsequent Root spans children of s (each
// still on its own fresh track); nil restores top-level roots. A
// worker sets the lease span as default parent around a shard run so
// the eval pipeline's own root spans nest under the lease without the
// pipeline knowing anything about distribution.
func (t *Tracer) SetDefaultParent(s *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.defParent = s
}

// ReadJSONL parses a WriteJSONL stream back into events, preserving
// attribute order and numeric formatting (attrs round-trip through
// json.Number, so re-exporting parsed events is lossless for integer
// values). Blank lines are skipped; a malformed line fails the whole
// read with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", lineNo, err)
		}
		e := Event{
			ID: je.ID, Parent: je.Parent, Track: je.Track, Name: je.Name,
			Instant: je.Instant, StartUS: je.StartUS, DurUS: je.DurUS,
			TraceID: je.TraceID, RemoteParent: je.RemoteParent,
		}
		if je.StartCycle != nil || je.EndCycle != nil {
			e.HasCycles = true
			if je.StartCycle != nil {
				e.StartCycle = *je.StartCycle
			}
			if je.EndCycle != nil {
				e.EndCycle = *je.EndCycle
			}
		}
		attrs, err := parseAttrs(je.Attrs)
		if err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", lineNo, err)
		}
		e.Attrs = attrs
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading jsonl: %w", err)
	}
	return events, nil
}

// parseAttrs decodes an exported attrs object back into ordered Attrs.
// Cycle-window keys written by argsJSON are folded back out by the
// caller's event fields, so they are kept as plain attrs here only if
// the producer put them there explicitly — ReadJSONL events re-export
// byte-identically either way because argsJSON re-renders in order.
func parseAttrs(raw json.RawMessage) ([]Attr, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("attrs is not an object")
	}
	var attrs []Attr
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return nil, err
		}
		key, ok := kt.(string)
		if !ok {
			return nil, fmt.Errorf("attrs key is not a string")
		}
		vt, err := dec.Token()
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, Attr{Key: key, Value: vt})
	}
	if _, err := dec.Token(); err != nil {
		return nil, err
	}
	return attrs, nil
}

// Process is one contributor to a merged multi-process export: a
// display name and its (already exported or collected) events.
type Process struct {
	Name   string
	Events []Event
}

// WriteMergedChrome stitches several processes' span logs into one
// Chrome trace-event JSON document: process i renders under pid i+1
// with a process_name metadata record, so Perfetto shows the whole
// distributed sweep — coordinator and every worker — on one timeline.
// Cross-process parent links ride each event's trace_id/remote_parent
// args. Events are sorted per process exactly as Tracer.Events sorts.
func WriteMergedChrome(w io.Writer, procs []Process) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	var lines []string
	for i, p := range procs {
		pid := i + 1
		name, err := json.Marshal(p.Name)
		if err != nil {
			return err
		}
		lines = append(lines, fmt.Sprintf(
			`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`, pid, name))
		events := append([]Event(nil), p.Events...)
		sortEvents(events)
		for _, e := range events {
			line, err := chromeLine(e, pid)
			if err != nil {
				return err
			}
			lines = append(lines, line)
		}
	}
	for i, line := range lines {
		if i < len(lines)-1 {
			line += ","
		}
		if _, err := bw.WriteString(line + "\n"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
