package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/uteda/gmap/internal/eval"
	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/runner"
	"github.com/uteda/gmap/internal/serve/api"
)

// Sentinel errors of the lease protocol.
var (
	// ErrLeaseGone reports an operation on a lease that expired, was
	// stolen, or never existed. Workers treat it as "stop this shard and
	// ask for a new lease"; over HTTP it maps to 410 Gone.
	ErrLeaseGone = errors.New("dist: lease expired or superseded")
	// ErrDivergent reports a result whose payload differs byte-for-byte
	// from the already-recorded result for the same job key. Jobs are
	// deterministic, so this can only mean two different job universes
	// were merged; the batch is rejected before any ledger write.
	ErrDivergent = errors.New("dist: divergent result payload")
	// ErrForeignKey reports a result for a job key outside the sweep's
	// enumerated universe.
	ErrForeignKey = errors.New("dist: job key outside the sweep universe")
)

// CoordinatorOptions configures NewCoordinator.
type CoordinatorOptions struct {
	// Spec is the sweep to distribute (kind "sweep"; a zero Kind
	// defaults to it). It is normalized and then shipped verbatim inside
	// every lease grant, so workers derive the exact same eval options —
	// and therefore the exact same job keys — as the coordinator.
	Spec api.JobSpec
	// Parts is the number of partitions of the job space; <= 0 defaults
	// to 8, and it is capped at the job count. More parts than workers
	// gives the lease loop natural rebalancing granularity.
	Parts int
	// LeaseTTL is how long a lease survives without a heartbeat; <= 0
	// defaults to 30s.
	LeaseTTL time.Duration
	// StallFactor scales the straggler threshold: an idle worker may
	// steal a live lease once its holder has gone StallFactor times the
	// observed mean job duration (never less than one TTL) without
	// delivering a result. <= 0 defaults to 8.
	StallFactor float64
	// Ledger is the merged checkpoint JSONL path (required): every
	// accepted result becomes one flushed checkpoint line, and the final
	// report is produced by replaying this file through the ordinary
	// resume path. An existing ledger is salvaged strictly on startup —
	// that is the coordinator-restart story.
	Ledger string
	// FS routes ledger I/O; nil selects the real filesystem. Chaos tests
	// substitute a fault.InjectFS to tear writes.
	FS fault.FS
	// Obs, when non-nil, mirrors lease/merge counters ("dist.*").
	Obs *obs.Registry
	// Trace, when non-nil, records the sweep span and one child span per
	// lease. Each grant carries the lease span's context as a
	// traceparent header, so worker-side spans parent under it in a
	// merged export (internal/obs/fleet).
	Trace *obstrace.Tracer
	// Logf, when non-nil, receives one line per lease-state transition.
	Logf func(format string, args ...interface{})
}

func (o *CoordinatorOptions) fillDefaults() {
	if o.Parts <= 0 {
		o.Parts = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.StallFactor <= 0 {
		o.StallFactor = 8
	}
	if o.FS == nil {
		o.FS = fault.OS
	}
}

// partState is one partition of the job space.
type partState struct {
	id        int
	keys      []string // every key of the part, sorted
	remaining map[string]bool
	leaseID   string // live lease holding the part, "" if none
}

// lease is one live grant. Revoked and completed leases are simply
// forgotten: any later operation on their id answers ErrLeaseGone,
// which is exactly what a worker holding a stale grant must hear.
type lease struct {
	id         string
	worker     string
	part       int
	granted    time.Time
	renewed    time.Time
	lastResult time.Time
	span       *obstrace.Span // child of the sweep span; nil when not tracing
}

// workerStat tracks one worker's liveness across its leases.
type workerStat struct {
	granted  uint64
	lastSeen time.Time
	obsURL   string // the worker's own exposition server, "" if unannounced
}

// LeaseGrant is the coordinator's answer to a lease request.
type LeaseGrant struct {
	// Status is "lease" (Keys/Spec are populated), "wait" (all parts are
	// leased; retry after RetryNS) or "done" (the sweep is complete).
	Status string `json:"status"`
	// Lease is the grant's id, quoted back on heartbeat/results/complete.
	Lease string `json:"lease,omitempty"`
	// Epoch is the granting coordinator's incarnation. Every operation on
	// the lease must quote it back; after a takeover the new coordinator
	// fences traffic carrying an older epoch (ErrStaleEpoch).
	Epoch uint64 `json:"epoch,omitempty"`
	// Part and Parts locate the granted partition.
	Part  int `json:"part,omitempty"`
	Parts int `json:"parts,omitempty"`
	// Keys are the part's still-unrecorded job keys, sorted. The worker
	// runs exactly these — after a steal, the new holder skips what the
	// old one already delivered.
	Keys []string `json:"keys,omitempty"`
	// Spec is the sweep to run; identical for every grant.
	Spec api.JobSpec `json:"spec,omitempty"`
	// TTLNS is the heartbeat deadline; RetryNS the suggested wait-state
	// poll interval.
	TTLNS   int64 `json:"ttl_ns,omitempty"`
	RetryNS int64 `json:"retry_ns,omitempty"`
	// Traceparent carries the lease span's context ("" when the
	// coordinator is not tracing): the worker opens its own lease span as
	// a remote child of it, which is what lets a merged trace export show
	// worker work nested under the coordinator's sweep.
	Traceparent string `json:"traceparent,omitempty"`
	// Worker echoes the name the coordinator resolved for the caller. An
	// unnamed worker is default-named from its remote address by the
	// lease handler; adopting the echoed name is what lets such a worker
	// label its own fleet pushes so they match the coordinator's
	// scrape-target entry instead of being rejected as anonymous.
	Worker string `json:"worker,omitempty"`
}

// Grant statuses.
const (
	GrantLease = "lease"
	GrantWait  = "wait"
	GrantDone  = "done"
)

// Status is a point-in-time snapshot of coordinator state, served on
// GET /dist/v1/status and asserted on by the chaos suites. Partitions
// and Workers are the auto-scaling hook surface: lease ages expose
// stragglers, worker last-seen timestamps expose dead workers.
type Status struct {
	Experiment string         `json:"experiment"`
	Epoch      uint64         `json:"epoch"`
	Deposed    bool           `json:"deposed,omitempty"`
	TotalJobs  int            `json:"total_jobs"`
	DoneJobs   int            `json:"done_jobs"`
	Parts      int            `json:"parts"`
	DoneParts  int            `json:"done_parts"`
	LiveLeases int            `json:"live_leases"`
	Granted    uint64         `json:"granted"`
	Expired    uint64         `json:"expired"`
	Stolen     uint64         `json:"stolen"`
	Duplicates uint64         `json:"duplicates"`
	Late       uint64         `json:"late_results"`
	Restored   int            `json:"restored"`
	Done       bool           `json:"done"`
	Partitions []PartStatus   `json:"partitions,omitempty"`
	Workers    []WorkerStatus `json:"workers,omitempty"`
}

// PartStatus is one partition's progress in a Status snapshot.
type PartStatus struct {
	Part      int `json:"part"`
	Keys      int `json:"keys"`
	Remaining int `json:"remaining"`
	// Lease/Worker/LeaseAgeNS describe the live lease, if any. LeaseAgeNS
	// is time since the grant — a straggler detector for auto-scalers.
	Lease      string `json:"lease,omitempty"`
	Worker     string `json:"worker,omitempty"`
	LeaseAgeNS int64  `json:"lease_age_ns,omitempty"`
}

// WorkerStatus is one worker's liveness in a Status snapshot: every
// worker that ever held a lease this incarnation, with the wall-clock
// instant of its last lease/heartbeat/result.
type WorkerStatus struct {
	Name           string `json:"name"`
	Granted        uint64 `json:"granted"`
	LastSeenUnixNS int64  `json:"last_seen_unix_ns"`
	// ObsURL is the worker's self-announced exposition server — the
	// fleet federation's scrape target discovery.
	ObsURL string `json:"obs_url,omitempty"`
}

// Coordinator owns the sweep's job universe: it enumerates the keys,
// partitions them, leases partitions to workers, merges streamed
// results into the ledger, and replays the ledger into the final
// report. All methods are safe for concurrent use.
type Coordinator struct {
	o    CoordinatorOptions
	spec api.JobSpec

	mu       sync.Mutex
	universe map[string]int // job key → part
	parts    []*partState
	leases   map[string]*lease // live only
	done     map[string]json.RawMessage
	appender *runner.CheckpointAppender
	journal  *runner.CheckpointAppender // lease journal; nil after a write error (best-effort)
	epoch    uint64
	deposed  bool // a higher epoch is persisted: permanently fenced
	workers  map[string]*workerStat
	seq      int
	elapsed  int64 // summed ElapsedNS of first-time results
	granted  uint64
	expired  uint64
	stolen   uint64
	dups     uint64
	late     uint64
	restored int

	sweepSpan *obstrace.Span // ended exactly once, when the last job lands
	fleet     http.Handler   // mounted under /fleet/ when set

	finished  chan struct{}
	finishGen sync.Once

	// now is the clock; tests substitute a fake for deterministic
	// expiry/steal schedules.
	now func() time.Time
}

// NewCoordinator enumerates and partitions the sweep's job space,
// strictly salvages any pre-existing ledger (the restart path: already
// merged results are honored, a torn tail is truncated, a divergent or
// foreign ledger is refused), and opens the ledger for appending.
func NewCoordinator(o CoordinatorOptions) (*Coordinator, error) {
	o.fillDefaults()
	if o.Ledger == "" {
		return nil, errors.New("dist: coordinator requires a ledger path")
	}
	spec := o.Spec
	if spec.Kind == "" {
		spec.Kind = api.KindSweep
	}
	if err := spec.Normalize(nil); err != nil {
		return nil, fmt.Errorf("dist: bad sweep spec: %w", err)
	}
	if spec.Kind != api.KindSweep {
		return nil, fmt.Errorf("dist: cannot distribute %q jobs, only sweeps", spec.Kind)
	}
	keys, err := spec.EvalOptions().SweepKeys(spec.Experiment)
	if err != nil {
		return nil, fmt.Errorf("dist: enumerating %s: %w", spec.Experiment, err)
	}
	return newCoordinator(spec, keys, o)
}

// newCoordinator wires a coordinator over an explicit key universe; the
// property tests drive it with synthetic keys and a fake clock.
func newCoordinator(spec api.JobSpec, keys []string, o CoordinatorOptions) (*Coordinator, error) {
	c := &Coordinator{
		o:        o,
		spec:     spec,
		universe: make(map[string]int, len(keys)),
		leases:   make(map[string]*lease),
		done:     make(map[string]json.RawMessage),
		workers:  make(map[string]*workerStat),
		finished: make(chan struct{}),
		now:      time.Now,
	}

	// Claim the next epoch before reading anything else: persisting
	// epoch+1 is what fences a predecessor that is still running — its
	// next fence check sees the bump and refuses to touch the ledger, so
	// everything this incarnation salvages below stays consistent.
	prev, err := ReadEpoch(c.fs(), o.Ledger)
	if err != nil {
		return nil, err
	}
	c.epoch = prev + 1
	if err := writeEpoch(c.fs(), o.Ledger, c.epoch); err != nil {
		return nil, err
	}
	nparts := o.Parts
	if nparts > len(keys) {
		nparts = len(keys)
	}
	for i := 0; i < nparts; i++ {
		c.parts = append(c.parts, &partState{id: i, remaining: make(map[string]bool)})
	}
	for _, k := range keys {
		p := PartOf(k, nparts)
		c.universe[k] = p
		c.parts[p].keys = append(c.parts[p].keys, k)
		c.parts[p].remaining[k] = true
	}
	for _, p := range c.parts {
		sort.Strings(p.keys)
	}

	// The sweep span is the root every lease span (and transitively every
	// worker-side span) hangs off; it ends when the last job lands.
	c.sweepSpan = o.Trace.Root("dist.sweep",
		obstrace.String("experiment", spec.Experiment),
		obstrace.Int("epoch", int64(c.epoch)),
		obstrace.Int("jobs", int64(len(keys))),
		obstrace.Int("parts", int64(nparts)))

	// Restart path: fold the surviving ledger back in before accepting
	// anything new. Strict salvage refuses divergent payloads and
	// truncates a torn tail so the appender cannot glue onto garbage.
	vals, salvage, err := runner.SalvageStrict(c.fs(), o.Ledger)
	if err != nil {
		return nil, err
	}
	for k, v := range vals {
		if _, ok := c.universe[k]; !ok {
			return nil, fmt.Errorf("%w: ledger %s holds job %q not in sweep %s — it belongs to a different sweep",
				ErrForeignKey, o.Ledger, k, spec.Experiment)
		}
		cv, cerr := compactValue(v)
		if cerr != nil {
			return nil, fmt.Errorf("dist: ledger %s entry %q: %w", o.Ledger, k, cerr)
		}
		c.markDoneLocked(k, cv, 0)
		c.restored++
	}
	if salvage.TornBytes > 0 {
		o.Obs.Counter("dist.ledger_torn_bytes").Add(uint64(salvage.TornBytes))
	}
	o.Obs.Counter("dist.ledger_restored").Add(uint64(c.restored))
	c.logf("dist: sweep %s: epoch %d, %d jobs in %d parts (%d restored from %s)",
		spec.Experiment, c.epoch, len(keys), nparts, c.restored, o.Ledger)

	app, err := runner.OpenCheckpointAppender(c.fs(), o.Ledger, false)
	if err != nil {
		return nil, err
	}
	c.appender = app

	// The lease journal is advisory (salvaged loosely, appended
	// best-effort): losing it can cost observability, never correctness.
	// A torn tail from a killed predecessor is truncated before reopening
	// so new lines cannot glue onto garbage.
	if _, _, jerr := runner.SalvageCheckpoint(c.fs(), JournalPath(o.Ledger)); jerr != nil {
		c.logf("dist: lease journal %s unusable: %v", JournalPath(o.Ledger), jerr)
		o.Obs.Counter("dist.journal_errors").Inc()
	} else if j, jerr := runner.OpenCheckpointAppender(c.fs(), JournalPath(o.Ledger), false); jerr != nil {
		c.logf("dist: lease journal %s unusable: %v", JournalPath(o.Ledger), jerr)
		o.Obs.Counter("dist.journal_errors").Inc()
	} else {
		c.journal = j
	}
	c.journalLocked("epoch", "claimed", -1, "")

	c.checkFinishedLocked()
	return c, nil
}

// journalLocked appends one lease-state transition to the lease
// journal, best-effort: a journal that cannot be written is dropped
// (and counted) rather than failing the operation that triggered it.
func (c *Coordinator) journalLocked(leaseID, state string, part int, worker string) {
	if c.journal == nil {
		return
	}
	rec := struct {
		Epoch  uint64 `json:"epoch"`
		State  string `json:"state"`
		Part   int    `json:"part,omitempty"`
		Worker string `json:"worker,omitempty"`
		AtNS   int64  `json:"at_unix_ns"`
	}{Epoch: c.epoch, State: state, Part: part, Worker: worker, AtNS: c.now().UnixNano()}
	val, err := json.Marshal(rec)
	if err == nil {
		err = c.journal.Append(leaseID, val, 0)
	}
	if err != nil {
		c.logf("dist: lease journal: %v (journaling disabled)", err)
		c.o.Obs.Counter("dist.journal_errors").Inc()
		_ = c.journal.Close()
		c.journal = nil
	}
}

// SetFleet mounts h (the fleet federation surface, internal/obs/fleet)
// under /fleet/ on the coordinator's HTTP handler. Call before Serve.
func (c *Coordinator) SetFleet(h http.Handler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fleet = h
}

// fleetHandler returns the mounted federation surface, nil if none.
func (c *Coordinator) fleetHandler() http.Handler {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fleet
}

// Ready backs /readyz: a coordinator is ready while it can still merge
// results — not deposed, ledger appender open, persisted epoch
// readable and current.
func (c *Coordinator) Ready() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deposed {
		return fmt.Errorf("deposed at epoch %d", c.epoch)
	}
	if c.appender == nil {
		return errors.New("ledger closed")
	}
	cur, err := ReadEpoch(c.fs(), c.o.Ledger)
	if err != nil {
		return fmt.Errorf("epoch unreadable: %v", err)
	}
	if cur != c.epoch {
		return fmt.Errorf("epoch %d superseded by %d", c.epoch, cur)
	}
	return nil
}

// Epoch is this incarnation's fencing epoch.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// fenceLocked is the split-brain guard, called before every mutating
// operation: it re-reads the persisted epoch and, if a later
// incarnation has claimed the ledger, permanently fences this one —
// the ledger appender is closed so not even a bug can write through
// it. reqEpoch is the epoch the request was fenced to; < 0 skips the
// request check (lease requests carry no epoch yet).
func (c *Coordinator) fenceLocked(reqEpoch int64) error {
	if c.deposed {
		return fmt.Errorf("%w: coordinator epoch %d was deposed", ErrStaleEpoch, c.epoch)
	}
	cur, err := ReadEpoch(c.fs(), c.o.Ledger)
	if err != nil {
		return err
	}
	if cur != c.epoch {
		c.deposed = true
		if c.appender != nil {
			_ = c.appender.Close()
			c.appender = nil
		}
		if c.journal != nil {
			_ = c.journal.Close()
			c.journal = nil
		}
		c.o.Obs.Counter("dist.deposed").Inc()
		c.logf("dist: epoch %d deposed by persisted epoch %d; fencing", c.epoch, cur)
		return fmt.Errorf("%w: coordinator epoch %d deposed by epoch %d", ErrStaleEpoch, c.epoch, cur)
	}
	if reqEpoch >= 0 && uint64(reqEpoch) != c.epoch {
		c.o.Obs.Counter("dist.stale_epoch_rejections").Inc()
		return fmt.Errorf("%w: request epoch %d, coordinator epoch %d", ErrStaleEpoch, reqEpoch, c.epoch)
	}
	return nil
}

func (c *Coordinator) fs() fault.FS {
	if c.o.FS == nil {
		return fault.OS
	}
	return c.o.FS
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.o.Logf != nil {
		c.o.Logf(format, args...)
	}
}

// compactValue canonicalizes a payload so byte-level comparison is
// insensitive to wire formatting.
func compactValue(v json.RawMessage) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, v); err != nil {
		return nil, fmt.Errorf("invalid JSON payload: %w", err)
	}
	return json.RawMessage(buf.Bytes()), nil
}

// Close flushes and closes the ledger and lease journal. The
// coordinator stays queryable but refuses further results.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil {
		_ = c.journal.Close()
		c.journal = nil
	}
	if c.appender == nil {
		return nil
	}
	err := c.appender.Close()
	c.appender = nil
	return err
}

// Done is closed once every job key has a recorded result.
func (c *Coordinator) Done() <-chan struct{} { return c.finished }

// WaitDone blocks until the sweep completes or ctx is cancelled.
func (c *Coordinator) WaitDone(ctx context.Context) error {
	select {
	case <-c.finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Lease grants the requesting worker a partition: the first unleased
// part with unrecorded keys, or — when every such part is taken — a
// stolen straggler. With nothing grantable it answers "wait", and once
// every key is recorded, "done". A deposed coordinator refuses to
// grant (ErrStaleEpoch): the worker's retry loop finds the successor.
func (c *Coordinator) Lease(worker string) (LeaseGrant, error) {
	return c.LeaseAs(worker, "")
}

// LeaseAs is Lease with a self-announcement: obsURL, when non-empty, is
// the worker's own exposition server, recorded for the fleet
// federation's scrape-target discovery (StatusSnapshot surfaces it).
func (c *Coordinator) LeaseAs(worker, obsURL string) (LeaseGrant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.fenceLocked(-1); err != nil {
		return LeaseGrant{}, err
	}
	if ws := c.seenLocked(worker); obsURL != "" {
		ws.obsURL = obsURL
	}
	c.expireLocked()
	if c.doneLocked() {
		return LeaseGrant{Status: GrantDone, Epoch: c.epoch, Worker: worker}, nil
	}
	for _, p := range c.parts {
		if len(p.remaining) > 0 && p.leaseID == "" {
			return c.grantLocked(worker, p), nil
		}
	}
	if p := c.stealLocked(); p != nil {
		return c.grantLocked(worker, p), nil
	}
	return LeaseGrant{Status: GrantWait, Epoch: c.epoch, Worker: worker, RetryNS: int64(c.o.LeaseTTL / 4)}, nil
}

// seenLocked refreshes a worker's last-seen instant.
func (c *Coordinator) seenLocked(worker string) *workerStat {
	ws := c.workers[worker]
	if ws == nil {
		ws = &workerStat{}
		c.workers[worker] = ws
	}
	ws.lastSeen = c.now()
	return ws
}

// grantLocked issues a lease on part p to worker.
func (c *Coordinator) grantLocked(worker string, p *partState) LeaseGrant {
	c.seq++
	c.granted++
	c.seenLocked(worker).granted++
	c.o.Obs.Counter("dist.leases_granted").Inc()
	// Ids are epoch-qualified so a lease can never collide with one a
	// predecessor granted (each incarnation restarts seq at 0).
	id := fmt.Sprintf("lease-%d-%04d", c.epoch, c.seq)
	now := c.now()
	l := &lease{id: id, worker: worker, part: p.id, granted: now, renewed: now}
	l.span = c.sweepSpan.ChildTrack("dist.lease",
		obstrace.String("lease", id),
		obstrace.Int("part", int64(p.id)),
		obstrace.String("worker", worker),
		obstrace.Int("epoch", int64(c.epoch)))
	c.leases[id] = l
	p.leaseID = id
	keys := make([]string, 0, len(p.remaining))
	for k := range p.remaining {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c.journalLocked(id, "granted", p.id, worker)
	c.logf("dist: lease %s: part %d/%d (%d keys) -> worker %s", id, p.id, len(c.parts), len(keys), worker)
	return LeaseGrant{
		Status:      GrantLease,
		Lease:       id,
		Epoch:       c.epoch,
		Part:        p.id,
		Parts:       len(c.parts),
		Keys:        keys,
		Spec:        c.spec,
		TTLNS:       int64(c.o.LeaseTTL),
		Traceparent: l.span.Context().Traceparent(),
		Worker:      worker,
	}
}

// expireLocked lazily revokes leases whose heartbeat deadline passed.
func (c *Coordinator) expireLocked() {
	now := c.now()
	for id, l := range c.leases {
		if now.Sub(l.renewed) > c.o.LeaseTTL {
			c.expired++
			c.o.Obs.Counter("dist.leases_expired").Inc()
			c.logf("dist: lease %s (part %d, worker %s) expired after %v without heartbeat",
				id, l.part, l.worker, now.Sub(l.renewed))
			c.journalLocked(id, "expired", l.part, l.worker)
			c.revokeLocked(l)
		}
	}
}

// revokeLocked forgets a live lease and returns its part to the pool.
// The lease span ends here — whatever the cause (expiry, steal,
// completion, part exhaustion), the callers journal the outcome and the
// span just bounds the lease's lifetime.
func (c *Coordinator) revokeLocked(l *lease) {
	l.span.End()
	delete(c.leases, l.id)
	if p := c.parts[l.part]; p.leaseID == l.id {
		p.leaseID = ""
	}
}

// stealLocked picks a straggler lease to revoke: per-job span timings
// streamed with each result give a mean job duration, and a lease that
// has gone StallFactor times that mean (never less than one TTL)
// without delivering a result is slower than re-running its remainder
// elsewhere. Among stragglers the one holding the most unrecorded keys
// is stolen first; ties break on part id so the choice is
// deterministic.
func (c *Coordinator) stealLocked() *partState {
	jobs := len(c.done)
	if jobs == 0 || c.elapsed <= 0 {
		return nil // no timing signal yet: nothing to judge stragglers by
	}
	threshold := time.Duration(float64(c.elapsed/int64(jobs)) * c.o.StallFactor)
	if threshold < c.o.LeaseTTL {
		threshold = c.o.LeaseTTL
	}
	now := c.now()
	var victim *lease
	for _, l := range c.leases {
		p := c.parts[l.part]
		if len(p.remaining) == 0 {
			continue
		}
		last := l.lastResult
		if last.IsZero() {
			last = l.granted
		}
		if now.Sub(last) <= threshold {
			continue
		}
		if victim == nil ||
			len(p.remaining) > len(c.parts[victim.part].remaining) ||
			(len(p.remaining) == len(c.parts[victim.part].remaining) && l.part < victim.part) {
			victim = l
		}
	}
	if victim == nil {
		return nil
	}
	c.stolen++
	c.o.Obs.Counter("dist.leases_stolen").Inc()
	c.logf("dist: stealing lease %s (part %d, worker %s): no result for > %v",
		victim.id, victim.part, victim.worker, threshold)
	c.journalLocked(victim.id, "stolen", victim.part, victim.worker)
	p := c.parts[victim.part]
	c.revokeLocked(victim)
	return p
}

// Heartbeat renews a lease's TTL. ErrLeaseGone tells the worker its
// grant was revoked and the shard should be abandoned; ErrStaleEpoch
// tells it the coordinator changed and it must re-lease.
func (c *Coordinator) Heartbeat(leaseID string, epoch uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.fenceLocked(int64(epoch)); err != nil {
		return err
	}
	c.expireLocked()
	l, ok := c.leases[leaseID]
	if !ok {
		return ErrLeaseGone
	}
	l.renewed = c.now()
	c.seenLocked(l.worker)
	return nil
}

// Results merges a batch of completed jobs into the ledger. Acceptance
// is idempotent and lease-independent: results are keyed by job hash,
// so duplicates with identical payloads are counted and dropped, late
// results from revoked leases are folded in (the work is done — the
// determinism contract makes it indistinguishable from the live
// holder's), and a payload that diverges from the recorded one rejects
// the whole batch before any ledger write. The fence check runs before
// anything else: a batch fenced to a stale epoch is rejected whole,
// pre-validation and pre-write, no matter what it contains. The error
// return is a fencing rejection (ErrStaleEpoch), a validation
// rejection (ErrDivergent/ErrForeignKey) or a ledger append failure.
func (c *Coordinator) Results(leaseID string, epoch uint64, entries []Entry) (accepted, duplicates int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.fenceLocked(int64(epoch)); err != nil {
		return 0, 0, err
	}
	c.expireLocked()
	if c.appender == nil {
		return 0, 0, errors.New("dist: coordinator is closed")
	}

	// Validate the whole batch against the universe, the merged state,
	// and itself before writing anything: a rejected batch must leave no
	// partial trace in the ledger.
	type add struct {
		key string
		val json.RawMessage
		ns  int64
	}
	var adds []add
	inBatch := make(map[string]json.RawMessage)
	for _, e := range entries {
		if _, known := c.universe[e.Key]; !known {
			return 0, 0, fmt.Errorf("%w: job %q is not part of sweep %s", ErrForeignKey, e.Key, c.spec.Experiment)
		}
		cv, cerr := compactValue(e.Value)
		if cerr != nil {
			return 0, 0, fmt.Errorf("dist: result for job %q: %w", e.Key, cerr)
		}
		prev, dup := c.done[e.Key]
		if !dup {
			prev, dup = inBatch[e.Key]
		}
		if dup {
			if !bytes.Equal(prev, cv) {
				return 0, 0, fmt.Errorf("%w for job %q: recorded %d bytes, resubmitted %d bytes differ",
					ErrDivergent, e.Key, len(prev), len(cv))
			}
			duplicates++
			continue
		}
		inBatch[e.Key] = cv
		adds = append(adds, add{key: e.Key, val: cv, ns: e.ElapsedNS})
	}

	l, live := c.leases[leaseID]
	if !live && len(adds) > 0 {
		c.late += uint64(len(adds))
		c.o.Obs.Counter("dist.late_results").Add(uint64(len(adds)))
	}
	c.dups += uint64(duplicates)
	if duplicates > 0 {
		c.o.Obs.Counter("dist.duplicate_results").Add(uint64(duplicates))
	}

	for _, a := range adds {
		if err := c.appender.Append(a.key, a.val, time.Duration(a.ns)); err != nil {
			// The ledger could not record progress; nothing past this
			// point was merged, and the in-memory state matches the file.
			return accepted, duplicates, fmt.Errorf("dist: ledger append: %w", err)
		}
		c.markDoneLocked(a.key, a.val, a.ns)
		accepted++
	}
	if live {
		now := c.now()
		l.renewed = now
		if accepted > 0 {
			l.lastResult = now
		}
		c.seenLocked(l.worker)
	}
	c.o.Obs.Counter("dist.results_merged").Add(uint64(accepted))
	return accepted, duplicates, nil
}

// markDoneLocked records one merged result and advances part/sweep
// completion. A part whose last key arrives is done no matter which
// lease delivered it; its live lease, if any, is released on the spot.
func (c *Coordinator) markDoneLocked(key string, val json.RawMessage, elapsedNS int64) {
	c.done[key] = val
	c.elapsed += elapsedNS
	p := c.parts[c.universe[key]]
	delete(p.remaining, key)
	if len(p.remaining) == 0 {
		if l := c.leases[p.leaseID]; p.leaseID != "" && l != nil {
			c.revokeLocked(l)
		}
		p.leaseID = ""
		c.checkFinishedLocked()
	}
}

func (c *Coordinator) doneLocked() bool { return len(c.done) == len(c.universe) }

func (c *Coordinator) checkFinishedLocked() {
	if c.doneLocked() {
		c.finishGen.Do(func() {
			c.sweepSpan.End()
			close(c.finished)
		})
	}
}

// Complete acknowledges a worker's claim that its leased part is
// finished. It is idempotent: a live lease over an exhausted part
// answers "ok"; a revoked or unknown lease answers "superseded" (the
// results that mattered were already merged, or the part was re-leased
// — either way the worker is free to move on); a live lease whose part
// still has unrecorded keys is revoked and re-pooled, answering
// "incomplete". A stale epoch is an error: the worker must re-lease.
func (c *Coordinator) Complete(leaseID string, epoch uint64) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.fenceLocked(int64(epoch)); err != nil {
		return "", err
	}
	c.expireLocked()
	l, ok := c.leases[leaseID]
	if !ok {
		return "superseded", nil
	}
	c.seenLocked(l.worker)
	p := c.parts[l.part]
	if len(p.remaining) > 0 {
		c.logf("dist: lease %s completed with %d keys unrecorded; re-pooling part %d", leaseID, len(p.remaining), l.part)
		c.journalLocked(leaseID, "incomplete", l.part, l.worker)
		c.revokeLocked(l)
		return "incomplete", nil
	}
	c.journalLocked(leaseID, "completed", l.part, l.worker)
	c.revokeLocked(l)
	return "ok", nil
}

// StatusSnapshot reports progress for /dist/v1/status and the tests:
// aggregate counters plus the per-partition lease ages and per-worker
// last-seen timestamps an auto-scaler (or a standby deciding whether
// the sweep is actually stuck) keys on.
func (c *Coordinator) StatusSnapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	now := c.now()
	doneParts := 0
	st := Status{
		Experiment: c.spec.Experiment,
		Epoch:      c.epoch,
		Deposed:    c.deposed,
		TotalJobs:  len(c.universe),
		DoneJobs:   len(c.done),
		Parts:      len(c.parts),
		LiveLeases: len(c.leases),
		Granted:    c.granted,
		Expired:    c.expired,
		Stolen:     c.stolen,
		Duplicates: c.dups,
		Late:       c.late,
		Restored:   c.restored,
		Done:       c.doneLocked(),
	}
	for _, p := range c.parts {
		if len(p.remaining) == 0 {
			doneParts++
		}
		ps := PartStatus{Part: p.id, Keys: len(p.keys), Remaining: len(p.remaining)}
		if l := c.leases[p.leaseID]; p.leaseID != "" && l != nil {
			ps.Lease = l.id
			ps.Worker = l.worker
			ps.LeaseAgeNS = now.Sub(l.granted).Nanoseconds()
		}
		st.Partitions = append(st.Partitions, ps)
	}
	st.DoneParts = doneParts
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := c.workers[name]
		st.Workers = append(st.Workers, WorkerStatus{
			Name:           name,
			Granted:        ws.granted,
			LastSeenUnixNS: ws.lastSeen.UnixNano(),
			ObsURL:         ws.obsURL,
		})
	}
	return st
}

// Replay returns the evaluation options that regenerate the merged
// report: the sweep's own options (NoTimings forced) resuming from the
// ledger with a single worker, after verifying the ledger covers the
// whole universe under strict salvage. Replays are deterministic, so
// the report — and an obs snapshot of the replay — is byte-identical no
// matter how many workers contributed.
func (c *Coordinator) Replay() (eval.Options, error) {
	select {
	case <-c.finished:
	default:
		c.mu.Lock()
		n, total := len(c.done), len(c.universe)
		c.mu.Unlock()
		return eval.Options{}, fmt.Errorf("dist: sweep incomplete: %d/%d jobs merged", n, total)
	}
	vals, _, err := runner.SalvageStrict(c.fs(), c.o.Ledger)
	if err != nil {
		return eval.Options{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deposed {
		// Ownership of the ledger moved to a later incarnation; rendering
		// here would race its appends.
		return eval.Options{}, fmt.Errorf("%w: deposed coordinator cannot replay", ErrStaleEpoch)
	}
	for k := range c.universe {
		if _, ok := vals[k]; !ok {
			return eval.Options{}, fmt.Errorf("dist: ledger %s lost job %q between merge and replay", c.o.Ledger, k)
		}
	}
	eo := c.spec.EvalOptions()
	eo.Workers = 1
	eo.Checkpoint = c.o.Ledger
	eo.Resume = true
	eo.FS = c.o.FS
	return eo, nil
}

// WriteReport replays the merged ledger into the final report. Valid
// only once Done() is closed.
func (c *Coordinator) WriteReport(w io.Writer) error {
	eo, err := c.Replay()
	if err != nil {
		return err
	}
	return eo.Run(w, c.spec.Experiment)
}
