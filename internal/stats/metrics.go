package stats

import (
	"errors"
	"math"
)

// ErrLength is returned when paired-sample metrics receive slices of
// different lengths.
var ErrLength = errors.New("stats: sample slices have different lengths")

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when either series has zero variance (the paper's
// convention: a flat series carries no trend information). It returns
// ErrLength when the series lengths differ and an error for fewer than two
// points.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLength
	}
	n := len(x)
	if n < 2 {
		return 0, errors.New("stats: Pearson needs at least two points")
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(vx*vy), nil
}

// PctError returns the absolute percentage error of got relative to want,
// in percent. When want is zero the error is 0 if got is also zero and
// 100 otherwise; this bounds the metric for near-empty miss-rate bins.
func PctError(want, got float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 100
	}
	return math.Abs(got-want) / math.Abs(want) * 100
}

// AbsError returns |got-want| expressed in percentage points when the two
// inputs are rates in [0,1]. Cache papers (including G-MAP) typically
// report miss-rate error this way for very small rates; we expose both.
func AbsError(want, got float64) float64 {
	return math.Abs(got-want) * 100
}

// MeanAbsPctError returns the mean of PctError over paired samples.
func MeanAbsPctError(want, got []float64) (float64, error) {
	if len(want) != len(got) {
		return 0, ErrLength
	}
	if len(want) == 0 {
		return 0, errors.New("stats: empty sample")
	}
	var sum float64
	for i := range want {
		sum += PctError(want[i], got[i])
	}
	return sum / float64(len(want)), nil
}

// Mean returns the arithmetic mean of xs, and 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs; all values must be positive.
// Zero or negative values are skipped (they would otherwise collapse the
// mean), and 0 is returned if no positive values remain.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// HistDistance returns the total variation distance between two histograms
// viewed as probability distributions: 0 means identical shape, 1 means
// disjoint support. It is used in tests to assert that proxy streams
// reproduce profiled distributions.
func HistDistance(a, b *Histogram) float64 {
	if a.Total() == 0 && b.Total() == 0 {
		return 0
	}
	if a.Total() == 0 || b.Total() == 0 {
		return 1
	}
	keys := make(map[int64]struct{}, a.Len()+b.Len())
	for _, k := range a.Keys() {
		keys[k] = struct{}{}
	}
	for _, k := range b.Keys() {
		keys[k] = struct{}{}
	}
	var d float64
	for k := range keys {
		d += math.Abs(a.Freq(k) - b.Freq(k))
	}
	return d / 2
}

// Summary holds descriptive statistics of a float series; it is used by the
// evaluation harness when reporting per-benchmark aggregate rows.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	Std  float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = Mean(xs)
	s.Std = StdDev(xs)
	return s
}
