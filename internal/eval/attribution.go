package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"github.com/uteda/gmap/internal/core"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/trace"
)

// AttrOptions configures per-π / per-PC accuracy attribution. When a
// benchmark's figure error exceeds Threshold, the clone's warps are
// re-profiled with the original's profiling configuration and the two
// statistical profiles are compared component by component, answering
// "which part of the statistical model missed": a π cluster whose weight
// or reuse distribution drifted, or a static instruction whose stride
// distributions the generator failed to reproduce.
type AttrOptions struct {
	// Threshold is the figure-error level (in the figure's own unit —
	// percentage points for rates, relative percent for magnitudes) above
	// which a benchmark row is attributed. Zero attributes every row.
	Threshold float64
	// TopK caps the ranked π and PC entries per report (default 8).
	TopK int

	mu      sync.Mutex
	reports []*AttrReport
}

func (a *AttrOptions) topK() int {
	if a.TopK <= 0 {
		return 8
	}
	return a.TopK
}

func (a *AttrOptions) add(r *AttrReport) {
	a.mu.Lock()
	a.reports = append(a.reports, r)
	a.mu.Unlock()
}

// Reports returns the accumulated attribution reports in deterministic
// (experiment, benchmark) order. Safe to call after the sweeps drain.
func (a *AttrOptions) Reports() []*AttrReport {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]*AttrReport, len(a.reports))
	copy(out, a.reports)
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Benchmark < out[j].Benchmark
	})
	return out
}

// AttrReport is one benchmark's accuracy drill-down: the figure row that
// tripped the threshold plus the ranked per-π and per-PC decomposition of
// where the clone's statistical profile diverged from the original's.
type AttrReport struct {
	Experiment string  `json:"experiment"`
	Benchmark  string  `json:"benchmark"`
	Metric     string  `json:"metric"`
	Error      float64 `json:"error"`
	Unit       string  `json:"unit"`
	Threshold  float64 `json:"threshold"`
	// Profiles ranks the π clusters by modeled contribution to the miss
	// (weight × divergence), worst first.
	Profiles []PiAttribution `json:"profiles"`
	// PCs ranks the static instructions the same way.
	PCs []PCAttribution `json:"pcs"`
}

// PiAttribution compares one original π cluster against its best-matching
// clone cluster.
type PiAttribution struct {
	// Pi is the original π index; ClonePi the matched clone π (-1 when no
	// clone cluster resembles it).
	Pi      int `json:"pi"`
	ClonePi int `json:"clone_pi"`
	// Weight and CloneWeight are Q(π) on either side.
	Weight      float64 `json:"weight"`
	CloneWeight float64 `json:"clone_weight"`
	// ReuseTV is the total-variation distance between the two reuse
	// (stack-distance) histograms — the P_R component of the model.
	ReuseTV float64 `json:"reuse_tv"`
	// SeqTV is the total-variation distance between the instruction-mix
	// vectors of the two representative sequences; it measures how well
	// the match itself holds.
	SeqTV float64 `json:"seq_tv"`
	// Score = Weight × (|Weight−CloneWeight| + ReuseTV + SeqTV); the
	// ranking key.
	Score float64 `json:"score"`
}

// PCAttribution compares one static instruction across the two profiles.
type PCAttribution struct {
	PC   uint64 `json:"pc"`
	Kind string `json:"kind"`
	// Freq and CloneFreq are the instruction's share of dynamic requests
	// (the "%Mem Freq" of Table 1) on either side.
	Freq      float64 `json:"freq"`
	CloneFreq float64 `json:"clone_freq"`
	// InterTV and IntraTV are total-variation distances of the P_E and
	// P_A stride distributions.
	InterTV float64 `json:"inter_tv"`
	IntraTV float64 `json:"intra_tv"`
	// Score = Freq × (|Freq−CloneFreq| + InterTV + IntraTV).
	Score float64 `json:"score"`
}

func kindName(k trace.Kind) string {
	switch k {
	case trace.Load:
		return "load"
	case trace.Store:
		return "store"
	case trace.Sync:
		return "sync"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// seqMix builds the instruction-mix distribution of a π sequence: how
// often each PC appears, as a histogram keyed by PC. Two π clusters with
// similar mixes describe the same execution path even if the clone's
// clustering numbered them differently.
func seqMix(p *profiler.Profile, pi int) *stats.Histogram {
	h := stats.NewHistogram()
	for _, idx := range p.Profiles[pi].Seq {
		h.Add(int64(p.Insts[idx].PC))
	}
	return h
}

// attribute re-profiles the clone and decomposes the divergence. The
// clone's warps are profiled with the original's line size and default
// clustering, so both profiles are measured with the same instrument.
func attribute(w *core.Workload, topK int) ([]PiAttribution, []PCAttribution, error) {
	orig := w.Profile
	pcfg := profiler.DefaultConfig()
	pcfg.LineSize = orig.LineSize
	clone, err := profiler.ProfileWarps(w.Proxy.Name, w.Proxy.GridDim, w.Proxy.BlockDim, w.Proxy.Warps, pcfg)
	if err != nil {
		return nil, nil, fmt.Errorf("eval: re-profiling clone of %s: %w", w.Name, err)
	}

	// Per-π: match each original cluster to the clone cluster with the
	// closest instruction mix, then compare weights and reuse shapes.
	cloneMixes := make([]*stats.Histogram, len(clone.Profiles))
	for j := range clone.Profiles {
		cloneMixes[j] = seqMix(clone, j)
	}
	pis := make([]PiAttribution, 0, len(orig.Profiles))
	for i := range orig.Profiles {
		mix := seqMix(orig, i)
		best, bestTV := -1, math.Inf(1)
		for j := range clone.Profiles {
			if tv := stats.HistDistance(mix, cloneMixes[j]); tv < bestTV {
				best, bestTV = j, tv
			}
		}
		pa := PiAttribution{Pi: i, ClonePi: best, Weight: orig.Q(i)}
		if best >= 0 {
			pa.CloneWeight = clone.Q(best)
			pa.SeqTV = bestTV
			pa.ReuseTV = stats.HistDistance(orig.Profiles[i].Reuse, clone.Profiles[best].Reuse)
		} else {
			pa.SeqTV, pa.ReuseTV = 1, 1
		}
		pa.Score = pa.Weight * (math.Abs(pa.Weight-pa.CloneWeight) + pa.ReuseTV + pa.SeqTV)
		pis = append(pis, pa)
	}
	sort.Slice(pis, func(a, b int) bool {
		if pis[a].Score != pis[b].Score {
			return pis[a].Score > pis[b].Score
		}
		return pis[a].Pi < pis[b].Pi
	})
	if len(pis) > topK {
		pis = pis[:topK]
	}

	// Per-PC: instructions match by identity — the generator preserves
	// PCs — so a missing clone-side PC is itself a finding.
	pcs := make([]PCAttribution, 0, len(orig.Insts))
	for k := range orig.Insts {
		inst := &orig.Insts[k]
		pa := PCAttribution{PC: inst.PC, Kind: kindName(inst.Kind), Freq: orig.InstFrequency(k)}
		if ck := clone.InstIndex(inst.PC); ck >= 0 {
			cinst := &clone.Insts[ck]
			pa.CloneFreq = clone.InstFrequency(ck)
			pa.InterTV = stats.HistDistance(inst.InterStride, cinst.InterStride)
			pa.IntraTV = stats.HistDistance(inst.IntraStride, cinst.IntraStride)
		} else {
			pa.InterTV, pa.IntraTV = 1, 1
		}
		pa.Score = pa.Freq * (math.Abs(pa.Freq-pa.CloneFreq) + pa.InterTV + pa.IntraTV)
		pcs = append(pcs, pa)
	}
	sort.Slice(pcs, func(a, b int) bool {
		if pcs[a].Score != pcs[b].Score {
			return pcs[a].Score > pcs[b].Score
		}
		return pcs[a].PC < pcs[b].PC
	})
	if len(pcs) > topK {
		pcs = pcs[:topK]
	}
	return pis, pcs, nil
}

// maybeAttribute runs attribution for a figure row that exceeded the
// threshold. Attribution is diagnostic: failures are logged, never fatal
// to the sweep.
func (o *Options) maybeAttribute(experiment string, row BenchResult, metric string, asRate bool, wl *workloadCache) {
	if o.Attr == nil || row.Error <= o.Attr.Threshold {
		return
	}
	w, err := wl.get(row.Benchmark)
	if err != nil {
		o.logf("%s %-12s attribution skipped: %v", experiment, row.Benchmark, err)
		return
	}
	pis, pcs, err := attribute(w, o.Attr.topK())
	if err != nil {
		o.logf("%s %-12s attribution failed: %v", experiment, row.Benchmark, err)
		return
	}
	o.Attr.add(&AttrReport{
		Experiment: experiment,
		Benchmark:  row.Benchmark,
		Metric:     metric,
		Error:      row.Error,
		Unit:       errUnit(asRate),
		Threshold:  o.Attr.Threshold,
		Profiles:   pis,
		PCs:        pcs,
	})
	o.logf("%s %-12s error %.2f%s > %.2f: attributed (%d π, %d PCs ranked)",
		experiment, row.Benchmark, row.Error, errUnit(asRate), o.Attr.Threshold, len(pis), len(pcs))
}

// WriteAttrJSON emits the reports as an indented JSON array.
func WriteAttrJSON(w io.Writer, reports []*AttrReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if reports == nil {
		reports = []*AttrReport{}
	}
	return enc.Encode(reports)
}

// WriteAttrMarkdown renders the reports as a human-readable drill-down.
func WriteAttrMarkdown(w io.Writer, reports []*AttrReport) error {
	if _, err := fmt.Fprintf(w, "# Accuracy attribution\n"); err != nil {
		return err
	}
	if len(reports) == 0 {
		_, err := fmt.Fprintf(w, "\nNo benchmark exceeded the error threshold.\n")
		return err
	}
	for _, r := range reports {
		fmt.Fprintf(w, "\n## %s / %s — %s error %.2f%s (threshold %.2f)\n",
			r.Experiment, r.Benchmark, r.Metric, r.Error, r.Unit, r.Threshold)
		fmt.Fprintf(w, "\n### π profiles (worst first)\n\n")
		fmt.Fprintf(w, "| rank | π | clone π | Q | clone Q | reuse TV | seq TV | score |\n")
		fmt.Fprintf(w, "|-----:|--:|--------:|--:|--------:|---------:|-------:|------:|\n")
		for i, p := range r.Profiles {
			fmt.Fprintf(w, "| %d | %d | %d | %.3f | %.3f | %.3f | %.3f | %.4f |\n",
				i+1, p.Pi, p.ClonePi, p.Weight, p.CloneWeight, p.ReuseTV, p.SeqTV, p.Score)
		}
		fmt.Fprintf(w, "\n### Static instructions (worst first)\n\n")
		fmt.Fprintf(w, "| rank | pc | kind | freq | clone freq | inter TV | intra TV | score |\n")
		fmt.Fprintf(w, "|-----:|---:|------|-----:|-----------:|---------:|---------:|------:|\n")
		for i, p := range r.PCs {
			if _, err := fmt.Fprintf(w, "| %d | %#x | %s | %.3f | %.3f | %.3f | %.3f | %.4f |\n",
				i+1, p.PC, p.Kind, p.Freq, p.CloneFreq, p.InterTV, p.IntraTV, p.Score); err != nil {
				return err
			}
		}
	}
	return nil
}
