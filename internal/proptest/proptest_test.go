package proptest

import (
	"reflect"
	"testing"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/dram"
)

// TestGeneratorsAreDeterministic: the same seed must reproduce every
// generated artifact exactly — the property that makes failure seeds
// replayable.
func TestGeneratorsAreDeterministic(t *testing.T) {
	build := func() (cache.Config, dram.Config, []uint64, []uint64, interface{}) {
		g := New(42)
		return g.CacheConfig(), g.DRAMConfig(), g.AddrStream(100, 128),
			g.MonotoneArrivals(50, 20), g.Profile()
	}
	c1, d1, a1, m1, p1 := build()
	c2, d2, a2, m2, p2 := build()
	if c1 != c2 || d1 != d2 {
		t.Fatal("configs diverged between identically seeded generators")
	}
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(m1, m2) {
		t.Fatal("streams diverged between identically seeded generators")
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("profiles diverged between identically seeded generators")
	}
}

// TestGeneratedArtifactsAreValid: every generated configuration and
// profile must pass its package's own validation, across many seeds.
func TestGeneratedArtifactsAreValid(t *testing.T) {
	n := N(t, 100, 1000)
	for i := 0; i < n; i++ {
		g := New(uint64(i))
		if _, err := g.CacheConfig().Validate(); err != nil {
			t.Fatalf("seed %d: invalid cache config: %v", i, err)
		}
		if err := g.DRAMConfig().Validate(); err != nil {
			t.Fatalf("seed %d: invalid DRAM config: %v", i, err)
		}
		if err := g.Profile().Validate(); err != nil {
			t.Fatalf("seed %d: invalid profile: %v", i, err)
		}
		arr := g.MonotoneArrivals(64, 10)
		for j := 1; j < len(arr); j++ {
			if arr[j] < arr[j-1] {
				t.Fatalf("seed %d: arrivals not monotone at %d: %v", i, j, arr)
			}
		}
		if got := len(g.AddrStream(37, 64)); got != 37 {
			t.Fatalf("seed %d: AddrStream length %d, want 37", i, got)
		}
		if got := len(g.Requests(25, 0.1)); got != 25 {
			t.Fatalf("seed %d: Requests length %d, want 25", i, got)
		}
		if got := g.WarpAddrs(); len(got) < 1 || len(got) > 32 {
			t.Fatalf("seed %d: warp has %d lanes", i, len(got))
		}
	}
}
