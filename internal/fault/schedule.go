package fault

import (
	"fmt"

	"github.com/uteda/gmap/internal/rng"
)

// Schedule is a seeded, deterministic per-job transient-failure schedule:
// given a job key it decides, as a pure function of (Seed, key), how many
// leading attempts of that job fail with a Transient-classified error.
// Because the failure count is bounded by MaxFailures, a runner retrying
// at least MaxFailures times always converges to the fault-free result —
// the property the retry-invariance tests assert.
type Schedule struct {
	// Seed drives the per-key hash; two schedules with equal fields
	// produce identical failure patterns.
	Seed uint64
	// FailProb is the fraction of jobs that fail at least once, in [0,1].
	FailProb float64
	// MaxFailures bounds the leading failed attempts of any one job;
	// values < 1 are treated as 1.
	MaxFailures int
}

// Failures returns how many leading attempts of the job with this key
// fail under the schedule (0 = the job never fails).
func (s *Schedule) Failures(key string) int {
	if s == nil || s.FailProb <= 0 {
		return 0
	}
	h := rng.Mix64(s.Seed)
	for _, b := range []byte(key) {
		h = rng.Mix64(h ^ uint64(b))
	}
	// First hash word decides whether the job is flaky at all; a second
	// mix picks the failure count so the two choices are independent.
	if float64(h>>11)/float64(1<<53) >= s.FailProb {
		return 0
	}
	maxf := s.MaxFailures
	if maxf < 1 {
		maxf = 1
	}
	return 1 + int(rng.Mix64(h)%uint64(maxf))
}

// Check returns the injected error for the given 1-based attempt of the
// job with this key: a Transient-classified error while attempt is at or
// below the job's scheduled failure count, nil afterwards.
func (s *Schedule) Check(key string, attempt int) error {
	if s == nil {
		return nil
	}
	if f := s.Failures(key); attempt <= f {
		return Transient(fmt.Errorf("fault: injected failure %d/%d for job %q", attempt, f, key))
	}
	return nil
}
