// Package serve exposes a running sweep's observability state over HTTP:
// a read-only exposition server mounted behind `gmap-eval -serve` and
// `gmap-sim -serve`. Endpoints:
//
//	/metrics       Prometheus text rendered from a Registry snapshot
//	/progress      JSON mirror of the execution engine's live stats
//	/trace         the span log as a JSONL event stream
//	/trace/chrome  the span log as Chrome trace-event JSON (Perfetto)
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Every handler snapshots on request — nothing holds locks between
// requests and nothing mutates pipeline state — so the server can never
// perturb a simulation result. The server shuts down cleanly when the
// context passed to Start is cancelled.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
)

// Options configures the exposition server.
type Options struct {
	// Addr is the listen address (e.g. ":9300" or "127.0.0.1:0").
	Addr string
	// Registry backs /metrics; nil serves an empty exposition.
	Registry *obs.Registry
	// Tracer backs /trace; nil serves an empty stream.
	Tracer *obstrace.Tracer
	// Progress, when non-nil, supplies the object served as /progress
	// JSON. It is called per request and must be safe for concurrent use.
	Progress func() interface{}
}

// Server is a live exposition server.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	err  error
}

// Handler builds the exposition mux for o. Exported separately so tests
// can drive it through httptest without binding a port.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "gmap exposition server\n\n"+
			"/metrics       Prometheus text\n"+
			"/progress      sweep progress JSON\n"+
			"/trace         span log (JSONL)\n"+
			"/trace/chrome  span log (Chrome trace JSON, load in Perfetto)\n"+
			"/debug/pprof/  Go profiling\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.Registry.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v interface{}
		if o.Progress != nil {
			v = o.Progress()
		}
		if v == nil {
			v = struct{}{}
		}
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := o.Tracer.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace/chrome", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="gmap-trace.json"`)
		if err := o.Tracer.WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds o.Addr and serves until ctx is cancelled (or Shutdown is
// called). It returns once the listener is bound, so Addr() is
// immediately routable — pass port :0 in tests to get an ephemeral port.
func Start(ctx context.Context, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs serve: listen %s: %w", o.Addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(o), ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.err = err
		}
	}()
	go func() {
		select {
		case <-ctx.Done():
			s.shutdown()
		case <-s.done:
		}
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the server, draining in-flight requests, and waits for
// the serve loop to exit. Safe to call more than once and after ctx
// cancellation has already stopped the server.
func (s *Server) Shutdown() error {
	s.shutdown()
	<-s.done
	return s.err
}

func (s *Server) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Shutdown is idempotent; an already-closed server returns nil.
	_ = s.srv.Shutdown(ctx)
}
