package eval

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/uteda/gmap/internal/core"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/synth"
)

func prepareAttrWorkload(t *testing.T) *core.Workload {
	t.Helper()
	w, err := core.Prepare("nn", 1, profiler.DefaultConfig(), synth.Options{Seed: 1, ScaleFactor: 4})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return w
}

func TestAttributeRanksDeterministically(t *testing.T) {
	w := prepareAttrWorkload(t)
	pis, pcs, err := attribute(w, 8)
	if err != nil {
		t.Fatalf("attribute: %v", err)
	}
	if len(pis) == 0 || len(pcs) == 0 {
		t.Fatalf("empty attribution: %d π, %d PCs", len(pis), len(pcs))
	}
	for i := 1; i < len(pis); i++ {
		if pis[i].Score > pis[i-1].Score {
			t.Fatalf("π ranking not descending at %d: %v > %v", i, pis[i].Score, pis[i-1].Score)
		}
	}
	for i := 1; i < len(pcs); i++ {
		if pcs[i].Score > pcs[i-1].Score {
			t.Fatalf("PC ranking not descending at %d: %v > %v", i, pcs[i].Score, pcs[i-1].Score)
		}
	}
	for _, p := range pis {
		if p.Weight < 0 || p.Weight > 1 || p.ReuseTV < 0 || p.ReuseTV > 1 || p.SeqTV < 0 || p.SeqTV > 1 {
			t.Fatalf("π attribution out of range: %+v", p)
		}
	}
	for _, p := range pcs {
		if w.Profile.InstIndex(p.PC) < 0 {
			t.Fatalf("PC attribution references unknown pc %#x", p.PC)
		}
		if p.InterTV < 0 || p.InterTV > 1 || p.IntraTV < 0 || p.IntraTV > 1 {
			t.Fatalf("PC attribution TV out of range: %+v", p)
		}
	}

	// Same workload, same instrument — a second pass must rank identically.
	pis2, pcs2, err := attribute(w, 8)
	if err != nil {
		t.Fatalf("attribute (second pass): %v", err)
	}
	if len(pis2) != len(pis) || len(pcs2) != len(pcs) {
		t.Fatalf("attribution not deterministic: %d/%d π, %d/%d PCs", len(pis), len(pis2), len(pcs), len(pcs2))
	}
	for i := range pis {
		if pis[i] != pis2[i] {
			t.Fatalf("π attribution not deterministic at %d:\n %+v\n %+v", i, pis[i], pis2[i])
		}
	}
	for i := range pcs {
		if pcs[i] != pcs2[i] {
			t.Fatalf("PC attribution not deterministic at %d:\n %+v\n %+v", i, pcs[i], pcs2[i])
		}
	}
}

func TestAttributeTopKCaps(t *testing.T) {
	w := prepareAttrWorkload(t)
	pis, pcs, err := attribute(w, 1)
	if err != nil {
		t.Fatalf("attribute: %v", err)
	}
	if len(pis) > 1 || len(pcs) > 1 {
		t.Fatalf("TopK=1 not enforced: %d π, %d PCs", len(pis), len(pcs))
	}
}

func TestMaybeAttributeThresholdGate(t *testing.T) {
	o := &Options{Benchmarks: []string{"nn"}, Scale: 1, ScaleFactor: 4, Seed: 1}
	o.fillDefaults()
	wl := o.workloads()
	row := BenchResult{Benchmark: "nn", Points: 3, Error: 5}

	// Nil Attr: no-op.
	o.maybeAttribute("fig6a", row, "l1-miss-rate", true, wl)

	// Error below threshold: gated off.
	o.Attr = &AttrOptions{Threshold: 10}
	o.maybeAttribute("fig6a", row, "l1-miss-rate", true, wl)
	if got := o.Attr.Reports(); len(got) != 0 {
		t.Fatalf("threshold 10 vs error 5: want 0 reports, got %d", len(got))
	}

	// Error above threshold: attributed.
	o.Attr = &AttrOptions{Threshold: 1, TopK: 4}
	o.maybeAttribute("fig6a", row, "l1-miss-rate", true, wl)
	reports := o.Attr.Reports()
	if len(reports) != 1 {
		t.Fatalf("threshold 1 vs error 5: want 1 report, got %d", len(reports))
	}
	r := reports[0]
	if r.Experiment != "fig6a" || r.Benchmark != "nn" || r.Metric != "l1-miss-rate" || r.Unit != "pp" {
		t.Fatalf("report header wrong: %+v", r)
	}
	if len(r.Profiles) == 0 || len(r.Profiles) > 4 || len(r.PCs) == 0 || len(r.PCs) > 4 {
		t.Fatalf("report sections out of bounds: %d π, %d PCs", len(r.Profiles), len(r.PCs))
	}
}

func TestAttrReportWriters(t *testing.T) {
	reports := []*AttrReport{{
		Experiment: "fig6a", Benchmark: "nn", Metric: "l1-miss-rate",
		Error: 5.5, Unit: "pp", Threshold: 2,
		Profiles: []PiAttribution{{Pi: 0, ClonePi: 0, Weight: 1, CloneWeight: 0.9, ReuseTV: 0.1, SeqTV: 0, Score: 0.2}},
		PCs:      []PCAttribution{{PC: 0x40, Kind: "load", Freq: 0.7, CloneFreq: 0.6, InterTV: 0.2, IntraTV: 0.1, Score: 0.28}},
	}}

	var jbuf bytes.Buffer
	if err := WriteAttrJSON(&jbuf, reports); err != nil {
		t.Fatalf("WriteAttrJSON: %v", err)
	}
	var back []*AttrReport
	if err := json.Unmarshal(jbuf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back) != 1 || back[0].Benchmark != "nn" || back[0].PCs[0].PC != 0x40 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}

	var mbuf bytes.Buffer
	if err := WriteAttrMarkdown(&mbuf, reports); err != nil {
		t.Fatalf("WriteAttrMarkdown: %v", err)
	}
	md := mbuf.String()
	for _, want := range []string{"## fig6a / nn", "0x40", "| load |", "π profiles"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}

	// Empty report set still renders valid output on both writers.
	jbuf.Reset()
	if err := WriteAttrJSON(&jbuf, nil); err != nil {
		t.Fatalf("WriteAttrJSON(nil): %v", err)
	}
	if strings.TrimSpace(jbuf.String()) != "[]" {
		t.Fatalf("empty JSON: %q", jbuf.String())
	}
	mbuf.Reset()
	if err := WriteAttrMarkdown(&mbuf, nil); err != nil {
		t.Fatalf("WriteAttrMarkdown(nil): %v", err)
	}
	if !strings.Contains(mbuf.String(), "No benchmark exceeded") {
		t.Fatalf("empty markdown: %q", mbuf.String())
	}
}
