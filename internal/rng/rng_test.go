package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for splitmix64 with seed 0 (from the public-domain
	// reference implementation by Sebastiano Vigna).
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("splitmix64[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64MatchesSplitMix(t *testing.T) {
	f := func(x uint64) bool {
		return Mix64(x) == NewSplitMix64(x).Next()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed streams diverged at %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds collided %d/100 times", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnNonPositivePanics(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets; threshold is the 99.9th percentile
	// of chi2 with 9 degrees of freedom.
	const n, buckets = 100000, 10
	r := New(123)
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Errorf("chi2 = %.2f exceeds 27.88; counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of %d uniforms = %.4f, want ~0.5", n, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 7, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(77)
	child := parent.Split()
	// Child and parent streams should not be identical.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split stream collided with parent %d/64 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(1234).Split()
	b := New(1234).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %.4f", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64n(1000003)
	}
}
