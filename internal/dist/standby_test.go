package dist

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/runner"
	"github.com/uteda/gmap/internal/serve/api"
)

var update = flag.Bool("update", false, "rewrite golden files with current results")

// syntheticSpecLedger seeds a ledger with n merged synthetic results so
// standby tests can assert restoration counts.
func seedLedger(t *testing.T, ledger string, keys []string) {
	t.Helper()
	app, err := runner.OpenCheckpointAppender(nil, ledger, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := app.Append(k, payloadFor(k), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
}

// syntheticKeys mirrors the synthetic job-key universe used across the
// partition tests. RunStandby only enumerates the sweep universe at
// takeover, so tests that never promote can use a bogus spec safely.
func syntheticKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = runner.JobKey("synthetic", fmt.Sprintf("job-%03d", i))
	}
	return keys
}

// TestStandbyStandsDownOnDone: a healthy active coordinator that
// reports the sweep done sends the standby home without a takeover.
func TestStandbyStandsDownOnDone(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	probes := 0
	tk, err := RunStandby(context.Background(), StandbyOptions{
		Spec:           api.JobSpec{Kind: api.KindSweep, Experiment: "never-enumerated"},
		Ledger:         ledger,
		HealthInterval: time.Millisecond,
		Probe: func(ctx context.Context) (Status, error) {
			probes++
			if probes < 3 {
				return Status{Epoch: 1}, nil
			}
			return Status{Epoch: 1, Done: true}, nil
		},
		Logf: t.Logf,
	})
	if err != nil || tk != nil {
		t.Fatalf("RunStandby = %v, %v; want nil, nil", tk, err)
	}
	if probes != 3 {
		t.Errorf("probes = %d, want 3", probes)
	}
	if _, err := os.Stat(EpochPath(ledger)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("standing down wrote an epoch file: %v", err)
	}
}

// TestStandbyGrowthVeto: a coordinator whose HTTP surface is dead but
// whose ledger keeps growing is alive; the standby must not promote
// over it, no matter how many probes fail.
func TestStandbyGrowthVeto(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.jsonl")
	keys := syntheticKeys(40)

	// The "active coordinator": unreachable over HTTP, but appending one
	// result per probe tick.
	app, err := runner.OpenCheckpointAppender(nil, ledger, false)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	next := 0
	probes := 0
	tk, err := RunStandby(context.Background(), StandbyOptions{
		Spec:           api.JobSpec{Kind: api.KindSweep, Experiment: "never-enumerated"},
		Ledger:         ledger,
		HealthInterval: time.Millisecond,
		HealthMisses:   3,
		Probe: func(ctx context.Context) (Status, error) {
			probes++
			if probes > 30 {
				// Stop feeding the veto; the standby should now count three
				// clean misses and promote — proven by the takeover error
				// below (the bogus spec cannot enumerate).
				return Status{}, errors.New("probe: connection refused")
			}
			if next < len(keys) {
				if err := app.Append(keys[next], payloadFor(keys[next]), time.Millisecond); err != nil {
					t.Error(err)
				}
				next++
			}
			return Status{}, errors.New("probe: connection refused")
		},
		Logf: t.Logf,
	})
	if err == nil || tk != nil {
		t.Fatalf("RunStandby = %v, %v; want the bogus-spec takeover error", tk, err)
	}
	// Every failed-but-growing probe was vetoed: promotion had to wait
	// for the growth to stop plus three clean misses.
	if probes < 33 {
		t.Errorf("promoted after %d probes; growth should have vetoed the first 30", probes)
	}
}

// TestStandbyTakeover: probe failures with a silent ledger promote the
// standby — epoch bumped, merged results restored, addr file rewritten
// to the takeover server, and the sweep finishes under the new
// incarnation.
func TestStandbyTakeover(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.jsonl")
	addrFile := filepath.Join(dir, "coord.addr")
	if err := WriteAddrFile(nil, addrFile, "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	// Promotion re-enumerates the sweep universe, so the spec must be a
	// real experiment; seed the ledger with three of its job keys.
	sp := quickSpec("fig6a")
	if err := sp.Normalize(nil); err != nil {
		t.Fatal(err)
	}
	keys, err := sp.EvalOptions().SweepKeys(sp.Experiment)
	if err != nil {
		t.Fatal(err)
	}
	seedLedger(t, ledger, keys[:3])

	// Simulate a predecessor: epoch 1 was claimed and its holder died.
	if err := writeEpoch(fault.OS, ledger, 1); err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	tk, err := RunStandby(ctx, StandbyOptions{
		Spec:           sp,
		Ledger:         ledger,
		Listen:         "127.0.0.1:0",
		AddrFile:       addrFile,
		HealthInterval: time.Millisecond,
		HealthMisses:   3,
		Obs:            reg,
		Probe: func(ctx context.Context) (Status, error) {
			return Status{}, errors.New("probe: connection refused")
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	c := tk.Coordinator
	defer c.Close()
	defer tk.Server.Shutdown()
	if got := c.Epoch(); got != 2 {
		t.Errorf("takeover epoch = %d, want 2 (predecessor held 1)", got)
	}
	data, rerr := os.ReadFile(addrFile)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if got := strings.TrimSpace(string(data)); got != tk.Server.URL() {
		t.Errorf("addr file %q, want the takeover server %q", got, tk.Server.URL())
	}
	if got := c.StatusSnapshot().Restored; got != 3 {
		t.Errorf("restored %d, want the 3 seeded results", got)
	}
}

// TestStatusGolden pins the status endpoint's wire shape — the
// auto-scaling hook surface — against a golden file, on a scripted
// schedule over the fake clock so every field (lease ages, last-seen
// timestamps, epoch) is deterministic. Refresh intentionally with
// `go test ./internal/dist -run TestStatusGolden -update`.
func TestStatusGolden(t *testing.T) {
	c, _, clk := syntheticCoordinator(t, 8, CoordinatorOptions{
		Parts:    4,
		LeaseTTL: 30 * time.Second,
	})
	g1 := mustLease(t, c, "alice")
	clk.advance(5 * time.Second)
	g2 := mustLease(t, c, "bob")
	var entries []Entry
	for _, k := range g1.Keys {
		entries = append(entries, Entry{Key: k, Value: payloadFor(k), ElapsedNS: int64(time.Millisecond)})
	}
	if _, _, err := c.Results(g1.Lease, g1.Epoch, entries); err != nil {
		t.Fatal(err)
	}
	clk.advance(3 * time.Second)
	if err := c.Heartbeat(g2.Lease, g2.Epoch); err != nil {
		t.Fatal(err)
	}

	got, err := json.MarshalIndent(c.StatusSnapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "status_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("status snapshot drifted from golden:\n--- got ---\n%s--- want ---\n%s\n(refresh with -update if intentional)", got, want)
	}
}
