// Package refmodel holds small, deliberately naive reference
// implementations of the production memory-model components: an LRU cache
// built on explicit recency lists, the O(N²) textbook stack-distance
// profiler, a map-based warp coalescer, an in-order FIFO DRAM timing
// model, and a sequential two-level cache hierarchy. Each one trades all
// performance for obviousness — the differential test suites replay
// identical generated streams through a production component and its
// reference twin and require bit-identical outcomes, so a silent bug in
// the fast path (or in the reference) surfaces as a divergence instead of
// as quietly wrong figures.
//
// The reference models reuse the production configuration and result
// types so comparisons need no translation layer; they share no
// implementation with the packages they check.
package refmodel

import (
	"fmt"

	"github.com/uteda/gmap/internal/cache"
)

// refLine is one resident cache line. Recency is positional — a line's
// index in its set's list — so there is no per-line clock to get wrong.
type refLine struct {
	tag      uint64
	dirty    bool
	prefetch bool
}

// Cache is a set-associative LRU cache whose every set is an explicit
// recency-ordered slice: index 0 is the most recently used line, the last
// element is the LRU victim. Only the LRU replacement policy is
// supported; FIFO and Random depend on internal counters/RNG streams that
// a reference cannot reproduce independently.
type Cache struct {
	cfg      cache.Config
	sets     [][]refLine
	lineSize uint64
	setCount uint64
	// Stats mirrors the production cache's accounting.
	Stats cache.Stats
}

// NewCache builds a reference cache from the production configuration.
func NewCache(cfg cache.Config) (*Cache, error) {
	sets, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if cfg.Policy != cache.LRU {
		return nil, fmt.Errorf("refmodel: only LRU is modeled, not %v", cfg.Policy)
	}
	return &Cache{
		cfg:      cfg,
		sets:     make([][]refLine, sets),
		lineSize: uint64(cfg.LineSize),
		setCount: uint64(sets),
	}, nil
}

// NewFullyAssocCache builds a single-set (fully-associative) reference
// cache holding the given number of lines.
func NewFullyAssocCache(lines, lineSize int, writes cache.WritePolicy) (*Cache, error) {
	return NewCache(cache.Config{
		SizeBytes: lines * lineSize,
		Ways:      lines,
		LineSize:  lineSize,
		Writes:    writes,
	})
}

// LineAddr returns addr aligned down to the line size.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr - addr%c.lineSize }

func (c *Cache) locate(addr uint64) (set uint64, tag uint64) {
	lineNum := addr / c.lineSize
	return lineNum % c.setCount, lineNum / c.setCount
}

// victimAddr rebuilds a line address from its set index and tag.
func (c *Cache) victimAddr(set, tag uint64) uint64 {
	return (tag*c.setCount + set) * c.lineSize
}

// find returns the index of tag in set si, or -1.
func (c *Cache) find(si, tag uint64) int {
	for i, ln := range c.sets[si] {
		if ln.tag == tag {
			return i
		}
	}
	return -1
}

// touch moves line i of set si to the most-recently-used position.
func (c *Cache) touch(si uint64, i int) {
	set := c.sets[si]
	ln := set[i]
	copy(set[1:i+1], set[:i])
	set[0] = ln
}

// Access performs one demand access, mirroring the production semantics:
// hits refresh recency; write-back stores dirty the line; write-through
// stores count a writeback on both hit and miss and never allocate;
// misses install at MRU, evicting the list tail when the set is full.
func (c *Cache) Access(addr uint64, write bool) cache.Result {
	c.Stats.Accesses++
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}
	si, tag := c.locate(addr)
	writeThrough := c.cfg.Writes == cache.WriteThroughNoAllocate
	if i := c.find(si, tag); i >= 0 {
		c.Stats.Hits++
		res := cache.Result{Hit: true}
		if c.sets[si][i].prefetch {
			c.sets[si][i].prefetch = false
			c.Stats.PrefetchUseful++
			res.PrefetchHit = true
		}
		if write {
			if writeThrough {
				res.WroteThrough = true
				c.Stats.Writebacks++
			} else {
				c.sets[si][i].dirty = true
			}
		}
		c.touch(si, i)
		return res
	}
	c.Stats.Misses++
	if write && writeThrough {
		c.Stats.Writebacks++
		return cache.Result{WroteThrough: true}
	}
	return c.install(si, tag, write && !writeThrough, false)
}

// Probe reports presence without touching recency or statistics.
func (c *Cache) Probe(addr uint64) bool {
	si, tag := c.locate(addr)
	return c.find(si, tag) >= 0
}

// Fill installs addr as a prefetched line. A fill that hits is a no-op —
// in particular it does NOT refresh the line's recency, matching the
// production cache (whose Fill returns before updating lastUse).
func (c *Cache) Fill(addr uint64) cache.Result {
	si, tag := c.locate(addr)
	if c.find(si, tag) >= 0 {
		return cache.Result{Hit: true}
	}
	c.Stats.PrefetchFills++
	return c.install(si, tag, false, true)
}

// install prepends a new line at MRU, evicting the LRU tail of a full set.
func (c *Cache) install(si, tag uint64, dirty, prefetch bool) cache.Result {
	var res cache.Result
	set := c.sets[si]
	if len(set) == c.cfg.Ways {
		victim := set[len(set)-1]
		set = set[:len(set)-1]
		c.Stats.Evictions++
		res.Evicted = true
		res.EvictedAddr = c.victimAddr(si, victim.tag)
		res.EvictedDirty = victim.dirty
		if victim.dirty {
			c.Stats.Writebacks++
		}
	}
	c.sets[si] = append([]refLine{{tag: tag, dirty: dirty, prefetch: prefetch}}, set...)
	return res
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = nil
	}
	c.Stats = cache.Stats{}
}
