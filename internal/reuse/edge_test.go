// Edge cases of the stack-distance machinery: degenerate streams and the
// histogram-bucket boundaries the synthesizer's log-binned profiles pivot
// on.
package reuse_test

import (
	"testing"

	"github.com/uteda/gmap/internal/reuse"
	"github.com/uteda/gmap/internal/stats"
)

// TestEmptyStream: no accesses — no distances, empty histogram, zeroed
// tracker counters.
func TestEmptyStream(t *testing.T) {
	if d := reuse.Distances(nil); len(d) != 0 {
		t.Fatalf("Distances(nil) = %v", d)
	}
	if d := reuse.Distances([]uint64{}); len(d) != 0 {
		t.Fatalf("Distances(empty) = %v", d)
	}
	if h := reuse.Histogram(nil); h.Total() != 0 || h.Len() != 0 {
		t.Fatalf("Histogram(nil) = %v", h)
	}
	tr := reuse.NewTracker(0)
	if tr.Distinct() != 0 || tr.Accesses() != 0 {
		t.Fatalf("fresh tracker: distinct %d accesses %d", tr.Distinct(), tr.Accesses())
	}
}

// TestSingleRepeatedAddress: one cold miss then all distance-zero reuses.
func TestSingleRepeatedAddress(t *testing.T) {
	stream := make([]uint64, 100)
	for i := range stream {
		stream[i] = 0xdeadbeef
	}
	d := reuse.Distances(stream)
	if d[0] != reuse.Cold {
		t.Fatalf("first access distance %d, want Cold", d[0])
	}
	for i := 1; i < len(d); i++ {
		if d[i] != 0 {
			t.Fatalf("repeat access %d distance %d, want 0", i, d[i])
		}
	}
	h := reuse.Histogram(stream)
	if h.Count(reuse.Cold) != 1 || h.Count(0) != 99 || h.Total() != 100 {
		t.Fatalf("histogram = %v", h)
	}
}

// TestColdOnlyStream: all-distinct addresses never produce a finite
// distance, and the tracker's distinct count equals the stream length.
func TestColdOnlyStream(t *testing.T) {
	tr := reuse.NewTracker(8)
	const n = 257 // crosses the Fenwick tree's growth boundary at 256
	for i := 0; i < n; i++ {
		if d := tr.Access(uint64(i) * 64); d != reuse.Cold {
			t.Fatalf("access %d distance %d, want Cold", i, d)
		}
	}
	if tr.Distinct() != n || tr.Accesses() != n {
		t.Fatalf("distinct %d accesses %d, want %d", tr.Distinct(), tr.Accesses(), n)
	}
}

// TestMaximalDistances: a stream visiting k distinct lines then revisiting
// them in the same order yields distance k-1 for every revisit — the
// largest distance a k-line footprint can produce.
func TestMaximalDistances(t *testing.T) {
	const k = 64
	stream := make([]uint64, 0, 2*k)
	for round := 0; round < 2; round++ {
		for i := 0; i < k; i++ {
			stream = append(stream, uint64(i)*128)
		}
	}
	d := reuse.Distances(stream)
	for i := k; i < 2*k; i++ {
		if d[i] != k-1 {
			t.Fatalf("revisit %d distance %d, want %d", i, d[i], k-1)
		}
	}
}

// TestLogBinBoundaries pins the bucket edges the synthesizer depends on:
// distances at or below the linear limit keep exact keys; above it they
// round up to powers of two; Cold (-1) sits below any sensible limit and
// must survive binning untouched.
func TestLogBinBoundaries(t *testing.T) {
	h := stats.NewHistogram()
	for _, k := range []int64{reuse.Cold, 0, 63, 64, 65, 127, 128, 129, 255} {
		h.Add(k)
	}
	b := h.LogBin(64)
	cases := []struct {
		key   int64
		count uint64
	}{
		{reuse.Cold, 1}, // |−1| ≤ limit: exact
		{0, 1},
		{63, 1},
		{64, 1},  // at the limit: still exact
		{65, 0},  // above: rounded up...
		{128, 3}, // ...65, 127 and 128 itself land on 128
		{256, 2}, // 129 and 255 round to 256
		{255, 0},
	}
	for _, tc := range cases {
		if got := b.Count(tc.key); got != tc.count {
			t.Errorf("binned count[%d] = %d, want %d", tc.key, got, tc.count)
		}
	}
	if b.Total() != h.Total() {
		t.Errorf("binning changed total: %d -> %d", h.Total(), b.Total())
	}
}
