#!/usr/bin/env sh
# dist_smoke.sh — chaos smoke test for the distributed sweep engine.
#
# Runs the fig6a/nn sweep serially as the reference, then again through
# a real coordinator with two worker processes — and kill -9s one worker
# mid-epoch. The coordinator must re-lease the dead worker's partition
# (to the survivor or a replacement), finish the sweep, and render a
# report byte-identical to the serial run. Exercises the deployment
# path: binaries + HTTP + signals, no test harness. Requires only a Go
# toolchain and curl.
#
# Usage: scripts/dist_smoke.sh [workdir]
set -eu

WORK="${1:-$(mktemp -d)}"
BIN="$WORK/bin"
ADDR_FILE="$WORK/coord.addr"
mkdir -p "$BIN"

SWEEP_FLAGS="-exp fig6a -benchmarks nn -scale 1 -scale-factor 4 -cores 4 -seed 1"

echo "==> building binaries into $BIN"
go build -o "$BIN/gmap-eval" ./cmd/gmap-eval

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

echo "==> serial reference run"
# shellcheck disable=SC2086 — SWEEP_FLAGS is a flag list by construction
"$BIN/gmap-eval" $SWEEP_FLAGS -no-timings -quiet -out "$WORK/serial.txt"

echo "==> starting coordinator on an ephemeral port"
# shellcheck disable=SC2086
"$BIN/gmap-eval" $SWEEP_FLAGS \
    -dist-listen 127.0.0.1:0 -dist-addr-file "$ADDR_FILE" \
    -dist-parts 4 -dist-lease-ttl 2s \
    -checkpoint "$WORK/ledger.jsonl" -out "$WORK/dist.txt" \
    2>"$WORK/coord.log" &
COORD_PID=$!
trap 'kill "$COORD_PID" 2>/dev/null || true; kill "$W1_PID" 2>/dev/null || true; kill "$W2_PID" 2>/dev/null || true' EXIT

i=0
while [ ! -s "$ADDR_FILE" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "coordinator never wrote $ADDR_FILE"
    sleep 0.1
done
BASE="http://$(cat "$ADDR_FILE")"
echo "==> coordinator is at $BASE"

echo "==> starting two workers"
"$BIN/gmap-eval" -worker "$BASE" -workers 1 -quiet &
W1_PID=$!
"$BIN/gmap-eval" -worker "$BASE" -workers 1 -quiet &
W2_PID=$!

# Wait until the sweep is mid-epoch: some results merged, more to go.
i=0
while :; do
    curl -sSf "$BASE/dist/v1/status" >"$WORK/status.json" 2>/dev/null || true
    DONE=$(sed -n 's/.*"done_jobs":[[:space:]]*\([0-9]*\).*/\1/p' "$WORK/status.json" | head -n1)
    TOTAL=$(sed -n 's/.*"total_jobs":[[:space:]]*\([0-9]*\).*/\1/p' "$WORK/status.json" | head -n1)
    if [ -n "$DONE" ] && [ -n "$TOTAL" ] && [ "$DONE" -ge 2 ] && [ "$DONE" -lt "$TOTAL" ]; then
        break
    fi
    i=$((i + 1))
    [ "$i" -le 600 ] || fail "sweep never reached mid-epoch (done=$DONE total=$TOTAL)"
    sleep 0.1
done
echo "==> mid-epoch ($DONE/$TOTAL jobs merged): kill -9 worker 1 (pid $W1_PID)"
kill -9 "$W1_PID"
wait "$W1_PID" 2>/dev/null || true

echo "==> starting a replacement worker"
"$BIN/gmap-eval" -worker "$BASE" -workers 1 -quiet &
W1_PID=$!

echo "==> waiting for the coordinator to finish and render"
i=0
while kill -0 "$COORD_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 1200 ] || fail "coordinator never finished"
    sleep 0.5
done
wait "$COORD_PID" || fail "coordinator exited non-zero"

[ -s "$WORK/dist.txt" ] || fail "coordinator wrote no report"
cmp -s "$WORK/dist.txt" "$WORK/serial.txt" || {
    diff -u "$WORK/serial.txt" "$WORK/dist.txt" >&2 || true
    fail "distributed report differs from serial reference"
}

# The dead worker's lease must have been reclaimed (expired or stolen)
# for the sweep to have completed at all; the coordinator's log proves
# the chaos actually happened rather than the kill landing between
# leases.
grep -q "expired\|stealing" "$WORK/coord.log" || \
    fail "no lease was ever reclaimed — the kill hit nothing: $(cat "$WORK/coord.log")"
echo "==> merged ledger: $(wc -l <"$WORK/ledger.jsonl") lines"
echo "==> reclaim evidence: $(grep -c "expired\|stealing" "$WORK/coord.log") coordinator log line(s)"

echo "PASS: kill -9 mid-epoch, re-leased and merged byte-identically to serial"
