package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"time"

	"github.com/uteda/gmap/internal/fault"
)

// A checkpoint file is JSON Lines: one entry per successfully executed
// job, appended and flushed as the job completes so that killing the
// process loses at most the line being written. Keys are stable job
// hashes (see JobKey), so a resumed run with identical parameters maps
// its jobs onto recorded results; a run with different parameters hashes
// to different keys and shares nothing.
//
// Recovery contract (DESIGN.md §9): only the final line of a checkpoint
// can be torn — every earlier line was newline-terminated and flushed
// before the next began. Resume salvages the longest valid prefix and
// truncates the torn tail, so appends never glue new entries onto
// leftover garbage. Compaction rewrites the file through a temp file and
// an atomic rename: a crash mid-compaction leaves the original intact.
type checkpointEntry struct {
	Key       string          `json:"key"`
	Value     json.RawMessage `json:"value"`
	ElapsedNS int64           `json:"elapsed_ns,omitempty"`
}

// Salvage reports what checkpoint recovery found and did.
type Salvage struct {
	// Entries is the number of distinct keys with a valid recorded value.
	Entries int
	// Lines is the total count of valid entry lines (re-recorded keys
	// count once per line; Lines > Entries measures compactable waste).
	Lines int
	// BadLines counts newline-terminated lines that did not parse —
	// mid-file corruption, never produced by a clean kill.
	BadLines int
	// TornBytes is the length of the unparsable tail after the last valid
	// line: the signature of a kill mid-flush.
	TornBytes int64
	// Truncated reports whether the torn tail was cut from the file.
	Truncated bool
	// FirstKey is the first valid key recorded in the file — a sample of
	// the checkpoint's job universe, used to make resume-mismatch errors
	// concrete.
	FirstKey string
	// Compacted reports whether the file was rewritten to one line per
	// key.
	Compacted bool
}

// ckptScan is the parsed state of a checkpoint file.
type ckptScan struct {
	entries map[string]checkpointEntry
	order   []string // keys in first-appearance order (stable compaction)
	salvage Salvage
	endOff  int64 // offset just past the last valid line
	size    int64 // total bytes scanned
}

// scanCheckpoint reads and classifies every line of the checkpoint at
// path. A missing file yields an empty scan. Later entries for the same
// key win.
func scanCheckpoint(fsys fault.FS, path string) (*ckptScan, error) {
	sc := &ckptScan{entries: make(map[string]checkpointEntry)}
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return sc, nil
		}
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		n := len(line)
		if n > 0 && line[n-1] == '\n' {
			trimmed := bytes.TrimSpace(line)
			var e checkpointEntry
			if len(trimmed) > 0 {
				if json.Unmarshal(trimmed, &e) == nil && e.Key != "" {
					if _, seen := sc.entries[e.Key]; !seen {
						sc.order = append(sc.order, e.Key)
					}
					sc.entries[e.Key] = e
					sc.salvage.Lines++
					sc.endOff = sc.size + int64(n)
				} else {
					sc.salvage.BadLines++
				}
			} else {
				// A blank line is valid padding, not corruption; keep it
				// inside the salvaged prefix.
				sc.endOff = sc.size + int64(n)
			}
		}
		sc.size += int64(n)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("runner: reading checkpoint %s: %w", path, err)
		}
	}
	sc.salvage.Entries = len(sc.entries)
	sc.salvage.TornBytes = sc.size - sc.endOff
	if len(sc.order) > 0 {
		sc.salvage.FirstKey = sc.order[0]
	}
	return sc, nil
}

// values extracts the recorded raw values by key.
func (sc *ckptScan) values() map[string]json.RawMessage {
	m := make(map[string]json.RawMessage, len(sc.entries))
	for k, e := range sc.entries {
		m[k] = e.Value
	}
	return m
}

// LoadCheckpoint reads the checkpoint at path and returns recorded
// values by job key. A missing file yields an empty map. Lines that do
// not parse — typically the torn final write of a killed run — are
// skipped; later entries for the same key win. The file is not modified;
// use SalvageCheckpoint to also truncate a torn tail before appending.
func LoadCheckpoint(path string) (map[string]json.RawMessage, error) {
	sc, err := scanCheckpoint(fault.OS, path)
	if err != nil {
		return nil, err
	}
	return sc.values(), nil
}

// SalvageCheckpoint loads the checkpoint at path and makes it safe to
// append to again: a torn trailing write (the signature of a SIGKILL
// mid-flush) is cut from the file so the next appended line cannot glue
// onto leftover garbage and be lost on a later resume. fsys nil selects
// the real filesystem.
func SalvageCheckpoint(fsys fault.FS, path string) (map[string]json.RawMessage, Salvage, error) {
	if fsys == nil {
		fsys = fault.OS
	}
	sc, err := scanCheckpoint(fsys, path)
	if err != nil {
		return nil, Salvage{}, err
	}
	if sc.salvage.TornBytes > 0 {
		if err := fsys.Truncate(path, sc.endOff); err != nil {
			return nil, sc.salvage, fmt.Errorf("runner: truncating torn checkpoint tail of %s: %w", path, err)
		}
		sc.salvage.Truncated = true
	}
	return sc.values(), sc.salvage, nil
}

// compactWasteThreshold gates automatic compaction on resume: rewrite
// only when the file holds at least this many lines and more than twice
// as many lines as distinct keys — i.e. when re-recorded entries, not the
// live ones, dominate the file.
const compactWasteThreshold = 64

// CompactCheckpoint rewrites the checkpoint at path to exactly one line
// per key (the latest recorded value, keys in first-appearance order),
// through a temp file, an fsync and an atomic rename — a crash at any
// byte of the rewrite leaves the original file intact. fsys nil selects
// the real filesystem.
func CompactCheckpoint(fsys fault.FS, path string) (Salvage, error) {
	if fsys == nil {
		fsys = fault.OS
	}
	sc, err := scanCheckpoint(fsys, path)
	if err != nil {
		return Salvage{}, err
	}
	if err := compactScan(fsys, path, sc); err != nil {
		return sc.salvage, err
	}
	sc.salvage.Compacted = true
	return sc.salvage, nil
}

func compactScan(fsys fault.FS, path string, sc *ckptScan) error {
	tmp := path + ".compact.tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("runner: compacting checkpoint %s: %w", path, err)
	}
	bw := bufio.NewWriter(f)
	writeErr := func() error {
		for _, key := range sc.order {
			line, err := json.Marshal(sc.entries[key])
			if err != nil {
				return err
			}
			if _, err := bw.Write(append(line, '\n')); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if writeErr != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp) // best-effort cleanup; the compaction error wins
		return fmt.Errorf("runner: compacting checkpoint %s: %w", path, writeErr)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("runner: compacting checkpoint %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("runner: compacting checkpoint %s: %w", path, err)
	}
	return nil
}

// checkpointWriter appends entries to a checkpoint file, flushing each
// line so progress survives an abrupt kill. With fsync enabled every
// append is also synced to stable storage, extending the guarantee from
// process death to power loss. All error paths propagate: a checkpoint
// that cannot record progress fails the run loudly instead of silently
// losing entries.
type checkpointWriter struct {
	f     fault.File
	bw    *bufio.Writer
	fsync bool
}

func openCheckpoint(fsys fault.FS, path string, fsync bool) (*checkpointWriter, error) {
	if fsys == nil {
		fsys = fault.OS
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &checkpointWriter{f: f, bw: bufio.NewWriter(f), fsync: fsync}, nil
}

func (c *checkpointWriter) append(key string, value any, elapsed time.Duration) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return err
	}
	line, err := json.Marshal(checkpointEntry{Key: key, Value: raw, ElapsedNS: elapsed.Nanoseconds()})
	if err != nil {
		return err
	}
	if _, err := c.bw.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if c.fsync {
		return c.f.Sync()
	}
	return nil
}

func (c *checkpointWriter) close() error {
	if err := c.bw.Flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}
