package refmodel

import (
	"fmt"

	"github.com/uteda/gmap/internal/cache"
)

// Hierarchy replays an in-order demand stream through a reference L1 and
// a reference bank-interleaved L2, mirroring the production simulator's
// access path for a single warp on a single core with unbounded MSHRs —
// the regime where the simulator's request order is exactly the warp's
// program order and every memory-side effect is deterministic. DRAM
// traffic is counted, not timed.
type Hierarchy struct {
	L1 *Cache

	l2banks  []*Cache
	l2line   uint64
	numBanks uint64

	// DRAMReads and DRAMWrites count the requests the production
	// simulator would enqueue on the memory controller.
	DRAMReads  uint64
	DRAMWrites uint64
}

// NewHierarchy builds the reference hierarchy. l2cfg describes the whole
// L2; its capacity is split evenly over numBanks slices exactly as
// cache.NewBanked does.
func NewHierarchy(l1cfg, l2cfg cache.Config, numBanks int) (*Hierarchy, error) {
	l1, err := NewCache(l1cfg)
	if err != nil {
		return nil, err
	}
	if numBanks <= 0 || numBanks&(numBanks-1) != 0 {
		return nil, fmt.Errorf("refmodel: bank count %d not a positive power of two", numBanks)
	}
	if l2cfg.SizeBytes%numBanks != 0 {
		return nil, fmt.Errorf("refmodel: L2 size %d not divisible by %d banks", l2cfg.SizeBytes, numBanks)
	}
	sliceCfg := l2cfg
	sliceCfg.SizeBytes = l2cfg.SizeBytes / numBanks
	h := &Hierarchy{
		L1:       l1,
		l2banks:  make([]*Cache, numBanks),
		l2line:   uint64(l2cfg.LineSize),
		numBanks: uint64(numBanks),
	}
	for i := range h.l2banks {
		if h.l2banks[i], err = NewCache(sliceCfg); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// l2Access routes an access to its bank slice, translating the slice's
// victim address back to the real address space.
func (h *Hierarchy) l2Access(addr uint64, write bool) cache.Result {
	lineNum := addr / h.l2line
	bank := lineNum % h.numBanks
	sliceAddr := (lineNum/h.numBanks)*h.l2line + addr%h.l2line
	res := h.l2banks[bank].Access(sliceAddr, write)
	if res.Evicted {
		victimLine := res.EvictedAddr / h.l2line
		res.EvictedAddr = (victimLine*h.numBanks + bank) * h.l2line
	}
	return res
}

// L2Stats aggregates the bank slices' statistics.
func (h *Hierarchy) L2Stats() cache.Stats {
	var s cache.Stats
	for _, b := range h.l2banks {
		s.Add(b.Stats)
	}
	return s
}

// Access sends one demand request through the hierarchy in the order the
// production simulator does: write-through stores propagate to the L2
// (and to DRAM on an L2 miss) without blocking; an L1 miss first writes
// back its dirty victim into the L2, then performs the L2 demand access,
// whose own dirty victim and demand fill both reach DRAM.
func (h *Hierarchy) Access(addr uint64, write bool) {
	res := h.L1.Access(addr, write)
	if res.WroteThrough {
		l2res := h.l2Access(addr, true)
		if !l2res.Hit {
			if l2res.Evicted && l2res.EvictedDirty {
				h.DRAMWrites++
			}
			h.DRAMWrites++
		}
		return
	}
	if res.Hit {
		return
	}
	if res.Evicted && res.EvictedDirty {
		wb := h.l2Access(res.EvictedAddr, true)
		if !wb.Hit && wb.Evicted && wb.EvictedDirty {
			h.DRAMWrites++
		}
	}
	l2res := h.l2Access(addr, write)
	if l2res.Hit {
		return
	}
	if l2res.Evicted && l2res.EvictedDirty {
		h.DRAMWrites++
	}
	if write {
		h.DRAMWrites++
	} else {
		h.DRAMReads++
	}
}
