// Package fleet federates per-process observability into one surface.
//
// Every gmap process already exposes its own registry and span log over
// HTTP (internal/obs/serve). In a distributed sweep that leaves an
// operator with N+1 scrape targets and no joined view. A Federator —
// owned by the coordinator process (gmap-eval coordinator mode, or
// gmap-served with -dist-sweeps) — closes the gap from both directions:
//
//   - Pull: a scrape loop polls each known worker's /metrics.json (the
//     lossless JSON snapshot, not the prometheus text) and keeps the
//     latest snapshot per worker.
//   - Push: workers POST final snapshots and their span logs to
//     /fleet/push on lease completion and on graceful shutdown, so
//     short-lived workers that exit between scrape ticks still land in
//     the merged view — including their trace events, which pull never
//     collects.
//
// The merged state serves:
//
//	/fleet/metrics       prometheus text, one worker="..." label per
//	                     source plus an unlabeled cross-fleet aggregate
//	/fleet/status        fleet health JSON: per-worker last-seen age and
//	                     staleness, plus the owner's own status document
//	                     (coordinator lease/epoch state) under "dist"
//	/fleet/trace/chrome  one Chrome trace-event document merging the
//	                     owner's spans with every worker's, pid per
//	                     process (load in Perfetto)
//	/fleet/push          worker-side report endpoint (POST)
//
// The package deliberately imports only obs and obs/trace — the dist
// layer mounts it, not the other way round — and a nil *Federator is a
// no-op for every method, matching the obs nil contract.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
)

// Source names one scrape target: a worker (or any gmap process) whose
// observability server answers /metrics.json and /trace.
type Source struct {
	Name string
	URL  string
}

// Options configures a Federator.
type Options struct {
	// Self names the owning process in merged exports ("coordinator",
	// "gmap-served"). Default "coordinator".
	Self string
	// Registry is the owner's own registry, included in the merged
	// metrics under the Self label. Nil omits the owner's metrics.
	Registry *obs.Registry
	// Tracer is the owner's span log, the root process of the merged
	// trace export. Nil omits owner spans.
	Tracer *obstrace.Tracer
	// Targets enumerates the current scrape set; called once per scrape
	// pass. Workers discovered here merge with workers that pushed.
	Targets func() []Source
	// Status, when non-nil, supplies the owner's status document embedded
	// in /fleet/status as "dist" (the coordinator's lease/epoch state).
	Status func() interface{}
	// Interval is the scrape period (default 2s).
	Interval time.Duration
	// Stale marks a worker stale when nothing has been heard for this
	// long (default 3×Interval).
	Stale time.Duration
	// HTTPClient performs scrapes; default: a client with a per-request
	// timeout of Interval.
	HTTPClient *http.Client
	// Logf, when non-nil, receives one line per scrape failure.
	Logf func(format string, args ...interface{})
}

// workerState is everything known about one fleet member.
type workerState struct {
	name     string
	url      string
	snap     obs.Snapshot
	hasSnap  bool
	events   []obstrace.Event
	lastSeen time.Time
	scrapes  uint64
	pushes   uint64
	final    bool
	lastErr  string
}

// Federator merges fleet observability. Create with New; drive the
// scrape loop with Run (or ScrapeOnce from tests) and mount Handler.
type Federator struct {
	o  Options
	hc *http.Client

	mu           sync.Mutex
	workers      map[string]*workerState
	scrapes      uint64
	scrapeErrors uint64
	pushes       uint64
}

// New builds a Federator; nil-safe to use even when o has every field
// zero (scrapes find no targets, exports cover only the owner).
func New(o Options) *Federator {
	if o.Self == "" {
		o.Self = "coordinator"
	}
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Stale <= 0 {
		o.Stale = 3 * o.Interval
	}
	hc := o.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: o.Interval}
	}
	return &Federator{o: o, hc: hc, workers: make(map[string]*workerState)}
}

// Run scrapes immediately and then every Interval until ctx is
// cancelled. The up-front scrape matters for short-lived fleets: a
// sweep can finish inside the first interval, and the fleet view
// should not be empty for its whole lifetime.
func (f *Federator) Run(ctx context.Context) {
	if f == nil {
		return
	}
	f.ScrapeOnce(ctx)
	t := time.NewTicker(f.o.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			f.ScrapeOnce(ctx)
		}
	}
}

// ScrapeOnce polls every current target's /metrics.json and folds the
// results in. Targets that have pushed a final report are skipped —
// their process is exiting (or gone) and the final push is
// authoritative.
func (f *Federator) ScrapeOnce(ctx context.Context) {
	if f == nil || f.o.Targets == nil {
		return
	}
	targets := f.o.Targets()

	f.mu.Lock()
	var todo []Source
	for _, t := range targets {
		if t.Name == "" {
			continue
		}
		ws := f.workers[t.Name]
		if ws == nil {
			ws = &workerState{name: t.Name}
			f.workers[t.Name] = ws
		}
		if t.URL != "" {
			ws.url = t.URL
		}
		if ws.final || ws.url == "" {
			continue
		}
		todo = append(todo, Source{Name: t.Name, URL: ws.url})
	}
	f.mu.Unlock()

	for _, t := range todo {
		snap, err := f.fetchSnapshot(ctx, t.URL)
		f.mu.Lock()
		ws := f.workers[t.Name]
		if ws == nil { // removed concurrently; don't resurrect
			f.mu.Unlock()
			continue
		}
		f.scrapes++
		if err != nil {
			f.scrapeErrors++
			ws.lastErr = err.Error()
			f.mu.Unlock()
			if f.o.Logf != nil {
				f.o.Logf("fleet: scrape %s (%s): %v", t.Name, t.URL, err)
			}
			continue
		}
		if !ws.final { // a final push won the race; keep it
			ws.snap, ws.hasSnap = snap, true
			ws.lastSeen = time.Now()
			ws.scrapes++
			ws.lastErr = ""
		}
		f.mu.Unlock()
	}
}

func (f *Federator) fetchSnapshot(ctx context.Context, base string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(base, "/")+"/metrics.json", nil)
	if err != nil {
		return snap, err
	}
	res, err := f.hc.Do(req)
	if err != nil {
		return snap, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("status %d", res.StatusCode)
	}
	err = json.NewDecoder(res.Body).Decode(&snap)
	return snap, err
}

// PushRequest is the worker-side report body for POST /fleet/push.
type PushRequest struct {
	// Worker names the reporting process (required).
	Worker string `json:"worker"`
	// URL, when non-empty, registers the worker's own exposition server
	// for subsequent scrapes.
	URL string `json:"url,omitempty"`
	// Final marks the report as the worker's last: scraping stops and
	// the pushed snapshot becomes authoritative.
	Final bool `json:"final,omitempty"`
	// Snapshot is the worker's registry export at push time.
	Snapshot *obs.Snapshot `json:"snapshot,omitempty"`
	// TraceJSONL carries the worker's span log in WriteJSONL form; it
	// replaces any earlier pushed events wholesale (the worker's tracer
	// is cumulative, so the latest push supersedes).
	TraceJSONL string `json:"trace_jsonl,omitempty"`
}

// Record folds one worker report in. Exposed for in-process callers;
// HTTP workers reach it through POST /fleet/push.
func (f *Federator) Record(pr PushRequest) error {
	if f == nil {
		return nil
	}
	if pr.Worker == "" {
		return fmt.Errorf("fleet: push without worker name")
	}
	var events []obstrace.Event
	if pr.TraceJSONL != "" {
		var err error
		events, err = obstrace.ReadJSONL(strings.NewReader(pr.TraceJSONL))
		if err != nil {
			return fmt.Errorf("fleet: push from %s: %w", pr.Worker, err)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ws := f.workers[pr.Worker]
	if ws == nil {
		ws = &workerState{name: pr.Worker}
		f.workers[pr.Worker] = ws
	}
	if pr.URL != "" {
		ws.url = pr.URL
	}
	if pr.Snapshot != nil {
		ws.snap, ws.hasSnap = *pr.Snapshot, true
	}
	if events != nil {
		ws.events = events
	}
	ws.final = ws.final || pr.Final
	ws.lastSeen = time.Now()
	ws.pushes++
	ws.lastErr = ""
	f.pushes++
	return nil
}

// WorkerHealth is one fleet member's entry in a FleetStatus.
type WorkerHealth struct {
	Name           string `json:"name"`
	URL            string `json:"url,omitempty"`
	LastSeenUnixNS int64  `json:"last_seen_unix_ns"`
	AgeNS          int64  `json:"age_ns"`
	Stale          bool   `json:"stale"`
	Final          bool   `json:"final"`
	Scrapes        uint64 `json:"scrapes"`
	Pushes         uint64 `json:"pushes"`
	LastError      string `json:"last_error,omitempty"`
	// Counters carries the worker's dist.* counters (jobs done, retries,
	// endpoint rotations) — the fleet-health subset, not the whole
	// registry.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// FleetStatus is the /fleet/status document.
type FleetStatus struct {
	Self         string         `json:"self"`
	NowUnixNS    int64          `json:"now_unix_ns"`
	StaleAfterNS int64          `json:"stale_after_ns"`
	Scrapes      uint64         `json:"scrapes"`
	ScrapeErrors uint64         `json:"scrape_errors"`
	Pushes       uint64         `json:"pushes"`
	Workers      []WorkerHealth `json:"workers"`
	// Dist is the owner's own status document (the coordinator's
	// lease/epoch state), embedded verbatim.
	Dist interface{} `json:"dist,omitempty"`
}

// StatusSnapshot freezes the fleet view.
func (f *Federator) StatusSnapshot() FleetStatus {
	if f == nil {
		return FleetStatus{}
	}
	now := time.Now()
	f.mu.Lock()
	fs := FleetStatus{
		Self:         f.o.Self,
		NowUnixNS:    now.UnixNano(),
		StaleAfterNS: f.o.Stale.Nanoseconds(),
		Scrapes:      f.scrapes,
		ScrapeErrors: f.scrapeErrors,
		Pushes:       f.pushes,
	}
	for _, ws := range f.workers {
		wh := WorkerHealth{
			Name:    ws.name,
			URL:     ws.url,
			Final:   ws.final,
			Scrapes: ws.scrapes,
			Pushes:  ws.pushes,
		}
		if !ws.lastSeen.IsZero() {
			wh.LastSeenUnixNS = ws.lastSeen.UnixNano()
			wh.AgeNS = now.Sub(ws.lastSeen).Nanoseconds()
		}
		// A finished worker is not stale — it reported out and left.
		wh.Stale = !ws.final && (ws.lastSeen.IsZero() || now.Sub(ws.lastSeen) > f.o.Stale)
		wh.LastError = ws.lastErr
		for name, v := range ws.snap.Counters {
			if strings.HasPrefix(name, "dist.") {
				if wh.Counters == nil {
					wh.Counters = make(map[string]uint64)
				}
				wh.Counters[name] = v
			}
		}
		fs.Workers = append(fs.Workers, wh)
	}
	f.mu.Unlock()
	sort.Slice(fs.Workers, func(i, j int) bool { return fs.Workers[i].Name < fs.Workers[j].Name })
	if f.o.Status != nil {
		fs.Dist = f.o.Status()
	}
	return fs
}

// snapshots returns the (name, snapshot) pairs of every member that has
// reported metrics, owner first, workers sorted by name.
func (f *Federator) snapshots() []namedSnapshot {
	var out []namedSnapshot
	if f.o.Registry != nil {
		out = append(out, namedSnapshot{name: f.o.Self, snap: f.o.Registry.Snapshot()})
	}
	f.mu.Lock()
	var names []string
	for name, ws := range f.workers {
		if ws.hasSnap {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, namedSnapshot{name: name, snap: f.workers[name].snap})
	}
	f.mu.Unlock()
	return out
}

// traceProcesses assembles the merged-export process list: the owner's
// tracer first, then one process per worker. Workers that pushed their
// span log contribute those events; workers that did not are fetched
// live from their /trace endpoint (best effort — an unreachable worker
// is skipped, not fatal).
func (f *Federator) traceProcesses(ctx context.Context) []obstrace.Process {
	var procs []obstrace.Process
	if f.o.Tracer != nil {
		procs = append(procs, obstrace.Process{Name: f.o.Self, Events: f.o.Tracer.Events()})
	}
	f.mu.Lock()
	type fetch struct {
		name, url string
	}
	var names []string
	for name := range f.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	var fetches []fetch
	for _, name := range names {
		ws := f.workers[name]
		if len(ws.events) > 0 {
			procs = append(procs, obstrace.Process{Name: name, Events: ws.events})
		} else if ws.url != "" && !ws.final {
			fetches = append(fetches, fetch{name: name, url: ws.url})
		}
	}
	f.mu.Unlock()
	for _, fe := range fetches {
		events, err := f.fetchTrace(ctx, fe.url)
		if err != nil {
			if f.o.Logf != nil {
				f.o.Logf("fleet: trace fetch %s (%s): %v", fe.name, fe.url, err)
			}
			continue
		}
		procs = append(procs, obstrace.Process{Name: fe.name, Events: events})
	}
	return procs
}

func (f *Federator) fetchTrace(ctx context.Context, base string) ([]obstrace.Event, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(base, "/")+"/trace", nil)
	if err != nil {
		return nil, err
	}
	res, err := f.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", res.StatusCode)
	}
	return obstrace.ReadJSONL(res.Body)
}

// Handler serves the federation surface; mount at /fleet/.
func (f *Federator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := f.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /fleet/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(f.StatusSnapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("GET /fleet/trace/chrome", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="gmap-fleet-trace.json"`)
		procs := f.traceProcesses(r.Context())
		if err := obstrace.WriteMergedChrome(w, procs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("POST /fleet/push", func(w http.ResponseWriter, r *http.Request) {
		var pr PushRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&pr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := f.Record(pr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
