package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/uteda/gmap/internal/rng"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.Len() != 0 {
		t.Fatal("new histogram not empty")
	}
	h.Add(128)
	h.Add(128)
	h.Add(-64)
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
	if h.Count(128) != 2 || h.Count(-64) != 1 || h.Count(7) != 0 {
		t.Errorf("counts wrong: %v", h)
	}
	if got := h.Freq(128); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Freq(128) = %v", got)
	}
}

func TestHistogramZeroValueUsable(t *testing.T) {
	var h Histogram
	h.Add(5)
	if h.Total() != 1 || h.Count(5) != 1 {
		t.Error("zero-value histogram broken")
	}
}

func TestHistogramKeysSorted(t *testing.T) {
	h := NewHistogram()
	for _, k := range []int64{5, -3, 100, 0, -3, 7} {
		h.Add(k)
	}
	keys := h.Keys()
	want := []int64{-3, 0, 5, 7, 100}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram()
	if _, _, ok := h.Mode(); ok {
		t.Error("empty histogram reported a mode")
	}
	h.AddN(128, 7)
	h.AddN(-128, 2)
	h.AddN(4096, 1)
	key, freq, ok := h.Mode()
	if !ok || key != 128 || math.Abs(freq-0.7) > 1e-12 {
		t.Errorf("Mode = (%d, %v, %v)", key, freq, ok)
	}
}

func TestHistogramModeTieBreak(t *testing.T) {
	h := NewHistogram()
	h.AddN(10, 5)
	h.AddN(-10, 5)
	key, _, _ := h.Mode()
	if key != -10 {
		t.Errorf("tie-break mode = %d, want -10 (smaller key)", key)
	}
}

func TestTopK(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 10)
	h.AddN(2, 30)
	h.AddN(3, 20)
	h.AddN(4, 30)
	top := h.TopK(2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) len = %d", len(top))
	}
	if top[0].Key != 2 || top[1].Key != 4 {
		t.Errorf("TopK order = %v (ties should break to smaller key)", top)
	}
	if h.TopK(100)[3].Key != 1 {
		t.Errorf("TopK(100) tail wrong: %v", h.TopK(100))
	}
}

func TestCloneIndependent(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	c := h.Clone()
	c.Add(2)
	if h.Count(2) != 0 || h.Total() != 1 {
		t.Error("Clone shares state with original")
	}
	if c.Total() != 2 {
		t.Error("Clone lost data")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.AddN(1, 3)
	b.AddN(1, 2)
	b.AddN(5, 4)
	a.Merge(b)
	if a.Count(1) != 5 || a.Count(5) != 4 || a.Total() != 9 {
		t.Errorf("Merge result wrong: %v", a)
	}
	a.Merge(nil) // must not panic
}

func TestScalePreservesSupportAndShape(t *testing.T) {
	h := NewHistogram()
	h.AddN(128, 8000)
	h.AddN(-128, 1600)
	h.AddN(4096, 3) // tiny bin must survive scaling
	s := h.Scale(8)
	if !s.Contains(4096) {
		t.Error("Scale dropped a non-empty bin")
	}
	if d := HistDistance(h, s); d > 0.01 {
		t.Errorf("Scale distorted distribution: distance %v", d)
	}
	if s.Total() >= h.Total() {
		t.Errorf("Scale(8) did not shrink: %d -> %d", h.Total(), s.Total())
	}
}

func TestScaleNoOp(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 10)
	for _, f := range []float64{0, 0.5, 1} {
		if got := h.Scale(f).Total(); got != 10 {
			t.Errorf("Scale(%v).Total = %d, want 10", f, got)
		}
	}
}

func TestSamplerEmpty(t *testing.T) {
	if NewSampler(NewHistogram()) != nil {
		t.Error("sampler over empty histogram should be nil")
	}
	if NewSampler(nil) != nil {
		t.Error("sampler over nil histogram should be nil")
	}
}

func TestSamplerDistribution(t *testing.T) {
	h := NewHistogram()
	h.AddN(10, 700)
	h.AddN(20, 200)
	h.AddN(30, 100)
	s := NewSampler(h)
	r := rng.New(42)
	got := NewHistogram()
	const n = 100000
	for i := 0; i < n; i++ {
		got.Add(s.Sample(r))
	}
	for _, k := range []int64{10, 20, 30} {
		if math.Abs(got.Freq(k)-h.Freq(k)) > 0.01 {
			t.Errorf("sampled freq of %d = %.4f, want %.4f", k, got.Freq(k), h.Freq(k))
		}
	}
}

func TestSamplerSingleKey(t *testing.T) {
	h := NewHistogram()
	h.AddN(-5, 3)
	s := NewSampler(h)
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if s.Sample(r) != -5 {
			t.Fatal("single-key sampler returned wrong key")
		}
	}
}

func TestSamplerOnlySamplesSupport(t *testing.T) {
	f := func(keys []int64) bool {
		if len(keys) == 0 {
			return true
		}
		h := NewHistogram()
		set := make(map[int64]bool)
		for _, k := range keys {
			h.Add(k)
			set[k] = true
		}
		s := NewSampler(h)
		r := rng.New(uint64(len(keys)))
		for i := 0; i < 50; i++ {
			if !set[s.Sample(r)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 1)
	h.AddN(-2, 3)
	if got := h.String(); got != "{-2:0.750 1:0.250}" {
		t.Errorf("String = %q", got)
	}
}

func TestContains(t *testing.T) {
	h := NewHistogram()
	h.Add(42)
	if !h.Contains(42) || h.Contains(43) {
		t.Error("Contains wrong")
	}
}

func TestLogBinExactBelowLimit(t *testing.T) {
	h := NewHistogram()
	for k := int64(-64); k <= 64; k++ {
		h.AddN(k, 2)
	}
	b := h.LogBin(64)
	if b.Len() != h.Len() || b.Total() != h.Total() {
		t.Errorf("keys within the limit were quantized: %d -> %d keys", h.Len(), b.Len())
	}
}

func TestLogBinQuantizesLargeKeys(t *testing.T) {
	h := NewHistogram()
	h.AddN(100, 1)
	h.AddN(120, 2)
	h.AddN(-300, 3)
	b := h.LogBin(64)
	if b.Count(128) != 3 {
		t.Errorf("100 and 120 should share bin 128: %v", b)
	}
	if b.Count(-512) != 3 {
		t.Errorf("-300 should land in bin -512: %v", b)
	}
	if b.Total() != h.Total() {
		t.Errorf("mass lost: %d -> %d", h.Total(), b.Total())
	}
}

func TestLogBinBoundsKeyCount(t *testing.T) {
	h := NewHistogram()
	for k := int64(0); k < 100000; k++ {
		h.Add(k)
	}
	b := h.LogBin(64)
	// <= 65 exact keys + ~11 power-of-two bins.
	if b.Len() > 80 {
		t.Errorf("log-binned histogram has %d keys", b.Len())
	}
}
