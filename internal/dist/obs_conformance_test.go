package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/obs/fleet"
	obsserve "github.com/uteda/gmap/internal/obs/serve"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
)

// fetch GETs one URL and returns the body.
func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestConformanceObservability is the fleet-observability contract: a
// distributed sweep with everything on — coordinator registry, sweep
// tracer, metrics federation, per-worker exposition servers, trace
// push — still merges to bytes identical to the serial run, and the
// federated surfaces describe the fleet truthfully: /fleet/status
// lists every worker, /fleet/metrics keeps per-worker labels, and the
// merged Chrome trace contains worker lease spans correlated to the
// coordinator's trace id.
func TestConformanceObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep conformance; skipped in -short")
	}
	serial := serialReport(t, "fig6a")
	for _, n := range []int{2, 4} {
		n := n
		t.Run(fmt.Sprintf("N%d", n), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()

			reg := obs.New()
			tracer := obstrace.New()
			c, err := NewCoordinator(CoordinatorOptions{
				Spec:     quickSpec("fig6a"),
				Parts:    4,
				LeaseTTL: time.Minute,
				Ledger:   filepath.Join(t.TempDir(), "ledger.jsonl"),
				Obs:      reg,
				Trace:    tracer,
				Logf:     t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			fed := fleet.New(fleet.Options{
				Self:     "coordinator",
				Registry: reg,
				Tracer:   tracer,
				Interval: 50 * time.Millisecond,
				Targets: func() []fleet.Source {
					var srcs []fleet.Source
					for _, ws := range c.StatusSnapshot().Workers {
						if ws.ObsURL != "" {
							srcs = append(srcs, fleet.Source{Name: ws.Name, URL: ws.ObsURL})
						}
					}
					return srcs
				},
				Status: func() interface{} { return c.StatusSnapshot() },
			})
			c.SetFleet(fed.Handler())
			srv, err := c.Serve(ctx, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Shutdown()
			fctx, fcancel := context.WithCancel(ctx)
			defer fcancel()
			go fed.Run(fctx)

			var wg sync.WaitGroup
			errs := make([]error, n)
			for i := 0; i < n; i++ {
				i := i
				wreg := obs.New()
				wtr := obstrace.New()
				wsrv, err := obsserve.Start(ctx, obsserve.Options{
					Addr:     "127.0.0.1:0",
					Registry: wreg,
					Tracer:   wtr,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer wsrv.Shutdown()
				wg.Add(1)
				go func() {
					defer wg.Done()
					errs[i] = RunWorker(ctx, WorkerOptions{
						Coordinator: srv.URL(),
						Name:        fmt.Sprintf("w%d", i),
						Workers:     2,
						Poll:        10 * time.Millisecond,
						Obs:         wreg,
						Trace:       wtr,
						ObsURL:      "http://" + wsrv.Addr(),
						Logf:        t.Logf,
					})
				}()
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}
			if err := c.WaitDone(ctx); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := c.WriteReport(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.String() != serial {
				t.Errorf("N=%d merged report with observability on differs from serial:\n--- dist ---\n%s--- serial ---\n%s",
					n, buf.String(), serial)
			}

			// /fleet/status over the coordinator's real listener: every
			// worker made at least its final push (RunWorker flushes
			// tallies and trace on exit).
			var fs fleet.FleetStatus
			if err := json.Unmarshal([]byte(fetch(t, srv.URL()+"/fleet/status")), &fs); err != nil {
				t.Fatalf("fleet status not JSON: %v", err)
			}
			if len(fs.Workers) != n {
				t.Fatalf("fleet status lists %d workers, want %d: %+v", len(fs.Workers), n, fs.Workers)
			}
			for _, w := range fs.Workers {
				if w.Pushes == 0 {
					t.Errorf("worker %s never pushed: %+v", w.Name, w)
				}
				if !w.Final {
					t.Errorf("worker %s missing final push: %+v", w.Name, w)
				}
			}

			// /fleet/metrics keeps per-worker labels and the summed
			// aggregate for the lease counter every worker incremented.
			metrics := fetch(t, srv.URL()+"/fleet/metrics")
			for i := 0; i < n; i++ {
				if want := fmt.Sprintf(`{worker="w%d"}`, i); !strings.Contains(metrics, want) {
					t.Errorf("merged metrics missing label %s:\n%s", want, metrics)
				}
			}
			if !strings.Contains(metrics, `gmap_dist_worker_leases{worker="w0"}`) {
				t.Errorf("merged metrics missing labeled worker lease counter:\n%s", metrics)
			}

			// The merged distributed trace: coordinator-rooted sweep span
			// plus worker lease spans that carry the coordinator's trace
			// id, the granted lease id under this epoch, and a non-zero
			// remote parent.
			chrome := fetch(t, srv.URL()+"/fleet/trace/chrome")
			if !json.Valid([]byte(chrome)) {
				t.Fatalf("merged chrome trace is not valid JSON:\n%.2000s", chrome)
			}
			for _, want := range []string{
				`"name":"dist.sweep"`,
				`"name":"dist.worker.lease"`,
				`"trace_id":"` + tracer.TraceID() + `"`,
				`"lease":"lease-1-`,
				`"remote_parent":`,
				`"name":"coordinator"`,
				`"name":"w0"`,
			} {
				if !strings.Contains(chrome, want) {
					t.Errorf("merged chrome trace missing %q", want)
				}
			}
		})
	}
}
