package prefetch

import "github.com/uteda/gmap/internal/obs"

// trackedLines bounds the recently-issued set an Instrumented prefetcher
// keeps for usefulness classification. 1024 lines (128 KiB of coverage at
// 128 B lines) comfortably exceeds any configured prefetch distance.
const trackedLines = 1024

// noLine marks an empty tracking-ring slot; it can never collide with a
// real line address because line addresses are line-aligned.
const noLine = ^uint64(0)

// Instrumented decorates a Prefetcher with observability counters under
// a per-site name prefix:
//
//	<name>.issued  candidate lines the scheme proposed
//	<name>.useful  an issued line was later demanded and hit
//	<name>.late    an issued line was later demanded but missed — the
//	               prefetch was correct yet not timely
//
// Classification works without cache feedback: issued lines enter a
// bounded FIFO set, and the next demand Observe for a tracked line
// resolves it (hit → useful, miss → late) and stops tracking it. The
// wrapper forwards Observe verbatim, so wrapping never changes simulated
// behavior — only counts it.
type Instrumented struct {
	p                    Prefetcher
	issued, useful, late *obs.Counter
	recent               map[uint64]struct{}
	ring                 []uint64
	head                 int
}

// Instrument wraps p with counters registered on r under name (e.g.
// "prefetch.l1" or "prefetch.l2"). With a nil registry or nil prefetcher
// it returns p unchanged, so the disabled path costs nothing.
func Instrument(p Prefetcher, r *obs.Registry, name string) Prefetcher {
	if r == nil || p == nil {
		return p
	}
	ring := make([]uint64, trackedLines)
	for i := range ring {
		ring[i] = noLine
	}
	return &Instrumented{
		p:      p,
		issued: r.Counter(name + ".issued"),
		useful: r.Counter(name + ".useful"),
		late:   r.Counter(name + ".late"),
		recent: make(map[uint64]struct{}, trackedLines),
		ring:   ring,
	}
}

// Observe implements Prefetcher: classify the demand against tracked
// prefetches, then delegate and track any new candidates.
func (i *Instrumented) Observe(pc uint64, warp int, lineAddr uint64, miss bool) []uint64 {
	if _, ok := i.recent[lineAddr]; ok {
		delete(i.recent, lineAddr)
		if miss {
			i.late.Inc()
		} else {
			i.useful.Inc()
		}
	}
	out := i.p.Observe(pc, warp, lineAddr, miss)
	if len(out) > 0 {
		i.issued.Add(uint64(len(out)))
		for _, a := range out {
			i.track(a)
		}
	}
	return out
}

// track inserts a line into the bounded FIFO set, evicting the oldest
// slot's line. A line re-issued while still tracked refreshes nothing —
// the first slot's eviction drops it early, a deliberate simplification
// that keeps the ring O(1).
func (i *Instrumented) track(addr uint64) {
	if _, ok := i.recent[addr]; ok {
		return
	}
	if old := i.ring[i.head]; old != noLine {
		delete(i.recent, old)
	}
	i.ring[i.head] = addr
	i.head = (i.head + 1) % len(i.ring)
	i.recent[addr] = struct{}{}
}

// Reset implements Prefetcher: clears the wrapped scheme's training state
// and the tracking set; cumulative counters are left standing.
func (i *Instrumented) Reset() {
	i.p.Reset()
	for k := range i.recent {
		delete(i.recent, k)
	}
	for j := range i.ring {
		i.ring[j] = noLine
	}
	i.head = 0
}

// Unwrap returns the decorated prefetcher.
func (i *Instrumented) Unwrap() Prefetcher { return i.p }
