package runner

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These cases pin the Salvage edge behavior the distributed merge
// (internal/dist) relies on: a ledger assembled out of order by many
// writers must load completely, a duplicate entry with identical
// payload must merge silently, and a duplicate with a divergent payload
// must fail loudly, naming the key.

func appendEntries(t *testing.T, path string, entries []Entry) {
	t.Helper()
	app, err := OpenCheckpointAppender(nil, path, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := app.Append(e.Key, e.Value, 0); err != nil {
			t.Fatalf("append %q: %v", e.Key, err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
}

// Entry mirrors a checkpoint line for test construction.
type Entry struct {
	Key   string
	Value json.RawMessage
}

func TestSalvageOutOfOrderAppend(t *testing.T) {
	// A merged ledger interleaves parts in completion order, not key
	// order. Salvage must recover every entry regardless.
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	var entries []Entry
	for i := 0; i < 40; i++ {
		entries = append(entries, Entry{
			Key:   JobKey("out-of-order", string(rune('a'+i%26)), string(rune('0'+i/26))),
			Value: json.RawMessage(`{"orig":` + string(rune('0'+i%10)) + `}`),
		})
	}
	rand.New(rand.NewSource(7)).Shuffle(len(entries), func(i, j int) {
		entries[i], entries[j] = entries[j], entries[i]
	})
	appendEntries(t, path, entries)

	vals, sv, err := SalvageStrict(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Entries != len(entries) || sv.Lines != len(entries) {
		t.Fatalf("salvage = %+v, want %d entries and lines", sv, len(entries))
	}
	for _, e := range entries {
		got, ok := vals[e.Key]
		if !ok {
			t.Fatalf("key %q lost", e.Key)
		}
		if string(got) != string(e.Value) {
			t.Errorf("key %q: value %s, want %s", e.Key, got, e.Value)
		}
	}
}

func TestSalvageIdenticalDuplicateAccepted(t *testing.T) {
	// The same job executed by two leases produces byte-identical
	// payloads; the merge counts the duplicate line and keeps one entry.
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	dup := Entry{Key: JobKey("dup"), Value: json.RawMessage(`{"orig":1,"prox":2}`)}
	appendEntries(t, path, []Entry{
		{Key: JobKey("solo"), Value: json.RawMessage(`{"orig":9}`)},
		dup, dup, dup,
	})
	vals, sv, err := SalvageStrict(nil, path)
	if err != nil {
		t.Fatalf("identical duplicates must merge, got %v", err)
	}
	if sv.Entries != 2 || sv.Lines != 4 {
		t.Fatalf("salvage = %+v, want 2 entries over 4 lines", sv)
	}
	if sv.DivergentLines != 0 {
		t.Fatalf("identical duplicates flagged divergent: %+v", sv)
	}
	if string(vals[dup.Key]) != string(dup.Value) {
		t.Errorf("duplicate key holds %s", vals[dup.Key])
	}
}

func TestSalvageDivergentDuplicateErrors(t *testing.T) {
	// A re-recorded key with different bytes means two job universes
	// were merged; strict salvage must refuse, naming the key.
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	key := JobKey("divergent", "victim")
	appendEntries(t, path, []Entry{
		{Key: JobKey("innocent"), Value: json.RawMessage(`{"orig":1}`)},
		{Key: key, Value: json.RawMessage(`{"orig":1,"prox":2}`)},
		{Key: key, Value: json.RawMessage(`{"orig":1,"prox":3}`)},
	})
	_, sv, err := SalvageStrict(nil, path)
	if err == nil {
		t.Fatal("divergent payloads merged silently")
	}
	if !strings.Contains(err.Error(), key) {
		t.Errorf("error does not name the divergent key %q: %v", key, err)
	}
	if sv.DivergentLines != 1 || sv.FirstDivergentKey != key {
		t.Errorf("salvage = %+v, want 1 divergent line on %q", sv, key)
	}

	// The lenient path keeps its longstanding later-entry-wins contract.
	vals, sv2, err := SalvageCheckpoint(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[key]) != `{"orig":1,"prox":3}` {
		t.Errorf("lenient salvage kept %s, want the later value", vals[key])
	}
	if sv2.DivergentLines != 1 {
		t.Errorf("lenient salvage lost the divergence count: %+v", sv2)
	}
}

func TestSalvageStrictTornTailStillTruncates(t *testing.T) {
	// Strictness is about payload identity, not torn tails: a killed
	// writer's partial line is cut exactly as in the lenient path.
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	appendEntries(t, path, []Entry{{Key: JobKey("whole"), Value: json.RawMessage(`{"orig":4}`)}})
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","val`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	vals, sv, err := SalvageStrict(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || !sv.Truncated || sv.TornBytes == 0 {
		t.Fatalf("salvage = %+v over %d vals, want a truncated torn tail", sv, len(vals))
	}
}

func TestCheckpointAppenderRejectsBadInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	app, err := OpenCheckpointAppender(nil, path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Append("", json.RawMessage(`{}`), 0); err == nil {
		t.Error("empty key accepted")
	}
	if err := app.Append("k", json.RawMessage(`{"broken":`), 0); err == nil {
		t.Error("invalid JSON payload accepted")
	}
}

func TestCheckpointAppenderCompactsValues(t *testing.T) {
	// The appender canonicalizes formatting so byte-level payload
	// comparison across writers is insensitive to wire whitespace.
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	app, err := OpenCheckpointAppender(nil, path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Append("k", json.RawMessage("{ \"orig\": 1 ,\n \"prox\": 2 }"), 0); err != nil {
		t.Fatal(err)
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	vals, _, err := SalvageStrict(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if string(vals["k"]) != `{"orig":1,"prox":2}` {
		t.Errorf("stored value %s not compacted", vals["k"])
	}
}
