package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/uteda/gmap/internal/dist"
	"github.com/uteda/gmap/internal/serve/api"
)

// distFlags are the distributed-sweep knobs; the sweep-shape flags
// (-exp, -benchmarks, -scale, ...) are shared with the serial path.
type distFlags struct {
	listen         string        // -dist-listen: coordinator mode
	addrFile       string        // -dist-addr-file
	parts          int           // -dist-parts
	leaseTTL       time.Duration // -dist-lease-ttl
	worker         string        // -worker: worker mode (comma-separated endpoints)
	workerAddrFile string        // -worker-addr-file: coordinator discovery file
	standby        bool          // -dist-standby: standby/failover mode
	healthInterval time.Duration // -dist-health-interval
	healthMisses   int           // -dist-health-misses
}

// runCoordinator distributes the sweep: partition the job space, lease
// parts to workers over HTTP, merge streamed results into the
// -checkpoint ledger, and render the merged report once every job is
// recorded. The ledger is the only durable state — re-running the same
// command over it resumes where the previous coordinator died, and a
// -dist-standby process watching the same ledger takes over live.
func runCoordinator(ctx context.Context, spec api.JobSpec, df distFlags, ledger string, w io.Writer, logf func(string, ...interface{})) error {
	if ledger == "" {
		return fmt.Errorf("-dist-listen requires -checkpoint (the merge ledger)")
	}
	c, err := dist.NewCoordinator(dist.CoordinatorOptions{
		Spec:     spec,
		Parts:    df.parts,
		LeaseTTL: df.leaseTTL,
		Ledger:   ledger,
		Logf:     logf,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	srv, err := c.Serve(ctx, df.listen)
	if err != nil {
		return err
	}
	defer srv.Shutdown()
	fmt.Fprintf(os.Stderr, "gmap-eval: coordinating %s on %s (epoch %d)\n", spec.Experiment, srv.URL(), c.Epoch())
	if df.addrFile != "" {
		// Atomic rename, same as a standby's takeover rewrite: a worker
		// polling the file never reads a torn address.
		if err := dist.WriteAddrFile(nil, df.addrFile, srv.URL()); err != nil {
			return err
		}
	}
	if err := c.WaitDone(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gmap-eval: interrupted; merged points saved to %s, re-run to resume\n", ledger)
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}
	return c.WriteReport(w)
}

// runStandby watches the active coordinator and, if it goes dark,
// takes over the sweep from the shared ledger: salvage, epoch bump
// (fencing the predecessor), serve, rewrite the addr file, and render
// the report when the sweep completes.
func runStandby(ctx context.Context, spec api.JobSpec, df distFlags, ledger string, w io.Writer, logf func(string, ...interface{})) error {
	if ledger == "" {
		return fmt.Errorf("-dist-standby requires -checkpoint (the shared merge ledger)")
	}
	var watch []string
	if df.worker != "" {
		watch = strings.Split(df.worker, ",")
	}
	if len(watch) == 0 && df.workerAddrFile == "" {
		return fmt.Errorf("-dist-standby requires the active coordinator's URL (-worker) or -worker-addr-file")
	}
	if len(watch) == 0 && df.workerAddrFile != "" {
		data, err := os.ReadFile(df.workerAddrFile)
		if err != nil {
			return fmt.Errorf("-worker-addr-file: %w", err)
		}
		watch = []string{strings.TrimSpace(string(data))}
	}
	t, err := dist.RunStandby(ctx, dist.StandbyOptions{
		Spec:           spec,
		Ledger:         ledger,
		Listen:         df.listen,
		AddrFile:       df.addrFile,
		Watch:          watch,
		HealthInterval: df.healthInterval,
		HealthMisses:   df.healthMisses,
		Parts:          df.parts,
		LeaseTTL:       df.leaseTTL,
		Logf:           logf,
	})
	if err != nil {
		return err
	}
	if t == nil {
		fmt.Fprintf(os.Stderr, "gmap-eval: standby: active coordinator finished the sweep; standing down\n")
		return nil
	}
	c := t.Coordinator
	defer c.Close()
	if t.Server != nil {
		defer t.Server.Shutdown()
		fmt.Fprintf(os.Stderr, "gmap-eval: standby took over %s on %s (epoch %d)\n", spec.Experiment, t.Server.URL(), c.Epoch())
	}
	if err := c.WaitDone(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gmap-eval: interrupted; merged points saved to %s, re-run to resume\n", ledger)
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}
	return c.WriteReport(w)
}

// runWorker joins a coordinator and processes leases until the sweep
// completes. The sweep's shape comes from the coordinator inside each
// lease grant; only execution knobs are local. urls may name several
// coordinator endpoints (active plus standby), and addrFile — re-read
// before every retry — overrides them all, so a standby takeover
// redirects the worker without restart.
func runWorker(ctx context.Context, urls, addrFile string, workers, simWorkers int, logf func(string, ...interface{})) error {
	var endpoints []string
	if urls != "" {
		endpoints = strings.Split(urls, ",")
	}
	var first string
	if len(endpoints) > 0 {
		first = endpoints[0]
		endpoints = endpoints[1:]
	}
	return dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator: first,
		Endpoints:   endpoints,
		AddrFile:    addrFile,
		Workers:     workers,
		SimWorkers:  simWorkers,
		Logf:        logf,
	})
}
