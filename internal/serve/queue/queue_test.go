package queue_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/serve/queue"
)

// collect runs every submitted job through a single worker and returns
// the dispatch order. Submitting everything before Start makes stride
// scheduling fully deterministic.
func collect(t *testing.T, opts queue.Options, jobs []queue.Job) []string {
	t.Helper()
	opts.Workers = 1
	q := queue.New(opts)
	var mu sync.Mutex
	var order []string
	done := make(chan struct{})
	total := len(jobs)
	for _, j := range jobs {
		j := j
		j.Run = func(ctx context.Context) {
			mu.Lock()
			order = append(order, j.ID)
			if len(order) == total {
				close(done)
			}
			mu.Unlock()
		}
		if err := q.Submit(j); err != nil {
			t.Fatalf("submit %s: %v", j.ID, err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	q.Start(ctx)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("queue did not drain")
	}
	cancel()
	q.Wait()
	mu.Lock()
	defer mu.Unlock()
	return order
}

// TestFairnessWeighted is the fairness property: two backlogged tenants
// with weights 3:1 are served 3:1 within every window of the dispatch
// order, however lopsided the submission ratio is.
func TestFairnessWeighted(t *testing.T) {
	var jobs []queue.Job
	// Tenant a floods 40 jobs, tenant b submits 20; weights 3:1.
	for i := 0; i < 40; i++ {
		jobs = append(jobs, queue.Job{ID: fmt.Sprintf("aa%02d", i), Tenant: "a"})
	}
	for i := 0; i < 20; i++ {
		jobs = append(jobs, queue.Job{ID: fmt.Sprintf("bb%02d", i), Tenant: "b"})
	}
	order := collect(t, queue.Options{
		Depth:   len(jobs),
		Weights: map[string]int{"a": 3, "b": 1},
	}, jobs)
	if len(order) != len(jobs) {
		t.Fatalf("dispatched %d of %d jobs", len(order), len(jobs))
	}
	// Both tenants stay backlogged until tenant a drains: a's 40 jobs at
	// a 3/4 share last until slot ~53. Within that contended prefix,
	// every window of 8 dispatches must hold ~6 a's and ~2 b's.
	for start := 0; start+8 <= 48; start += 8 {
		na, nb := 0, 0
		for _, id := range order[start : start+8] {
			if id[0] == 'a' {
				na++
			} else {
				nb++
			}
		}
		if nb == 0 {
			t.Fatalf("window %d-%d starved tenant b entirely: %v", start, start+8, order[start:start+8])
		}
		if na < 5 {
			t.Fatalf("window %d-%d under-served weighted tenant a (%d/8): %v", start, start+8, na, order[start:start+8])
		}
	}
	// Aggregate over the contended prefix (both backlogged): service
	// ratio within the configured 3:1 ± one slot per window.
	na, nb := 0, 0
	for _, id := range order[:40] {
		if id[0] == 'a' {
			na++
		} else {
			nb++
		}
	}
	if na < 27 || na > 33 {
		t.Fatalf("contended prefix served a %d/40 times, want ~30 (3:1 weights)", na)
	}
	if nb < 7 || nb > 13 {
		t.Fatalf("contended prefix served b %d/40 times, want ~10 (3:1 weights)", nb)
	}
}

// TestFairnessFloodResistance: a tenant submitting 10:1 against an
// equal-weight tenant cannot starve it — while both are backlogged they
// alternate.
func TestFairnessFloodResistance(t *testing.T) {
	var jobs []queue.Job
	for i := 0; i < 50; i++ {
		jobs = append(jobs, queue.Job{ID: fmt.Sprintf("ff%02d", i), Tenant: "flooder"})
	}
	for i := 0; i < 5; i++ {
		jobs = append(jobs, queue.Job{ID: fmt.Sprintf("vv%02d", i), Tenant: "victim"})
	}
	order := collect(t, queue.Options{Depth: len(jobs)}, jobs)
	// Equal weights: the victim's 5 jobs must all dispatch within the
	// first ~10 slots, not after the flooder's 50.
	last := -1
	for i, id := range order {
		if id[0] == 'v' {
			last = i
		}
	}
	if last > 10 {
		t.Fatalf("victim's last job dispatched at slot %d; flooder starved it: %v", last, order[:last+1])
	}
}

func TestAdmissionControl(t *testing.T) {
	q := queue.New(queue.Options{Workers: 1, Depth: 2})
	mk := func(id string) queue.Job {
		return queue.Job{ID: id, Tenant: "t", Run: func(ctx context.Context) {}}
	}
	if err := q.Submit(mk("aa")); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(mk("bb")); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(mk("cc")); !errors.Is(err, queue.ErrFull) {
		t.Fatalf("over-depth submit: %v, want ErrFull", err)
	}
	if err := q.Submit(mk("aa")); !errors.Is(err, queue.ErrDuplicate) {
		t.Fatalf("duplicate submit: %v, want ErrDuplicate", err)
	}
	st := q.Stats()
	if st.Queued != 2 || st.Depth != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCancelQueuedNeverRuns(t *testing.T) {
	q := queue.New(queue.Options{Workers: 1, Depth: 8})
	ran := make(chan string, 8)
	block := make(chan struct{})
	mk := func(id string) queue.Job {
		return queue.Job{ID: id, Tenant: "t", Run: func(ctx context.Context) {
			ran <- id
			if id == "gate" {
				<-block
			}
		}}
	}
	// gate occupies the worker; victim sits queued and gets cancelled.
	if err := q.Submit(queue.Job{ID: "gate", Tenant: "t", Run: mk("gate").Run}); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(mk("victim")); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(mk("after")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q.Start(ctx)
	if id := <-ran; id != "gate" {
		t.Fatalf("first dispatch %q, want gate", id)
	}
	if !q.Cancel("victim") {
		t.Fatal("cancel of queued job reported not found")
	}
	close(block)
	if id := <-ran; id != "after" {
		t.Fatalf("dispatch after cancel = %q, want after (victim must never run)", id)
	}
	if q.Cancel("definitely-absent") {
		t.Fatal("cancel of unknown id reported found")
	}
}

func TestCancelRunningCancelsContext(t *testing.T) {
	q := queue.New(queue.Options{Workers: 1, Depth: 4})
	started := make(chan struct{})
	stopped := make(chan error, 1)
	err := q.Submit(queue.Job{ID: "rr", Tenant: "t", Run: func(ctx context.Context) {
		close(started)
		<-ctx.Done()
		stopped <- ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q.Start(ctx)
	<-started
	if !q.Cancel("rr") {
		t.Fatal("cancel of running job reported not found")
	}
	select {
	case err := <-stopped:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("job context ended with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("running job never saw cancellation")
	}
}

func TestShutdownDrainsWorkers(t *testing.T) {
	q := queue.New(queue.Options{Workers: 2, Depth: 4})
	ctx, cancel := context.WithCancel(context.Background())
	q.Start(ctx)
	cancel()
	done := make(chan struct{})
	go func() { q.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("workers did not exit on context cancellation")
	}
	if err := q.Submit(queue.Job{ID: "zz", Tenant: "t", Run: func(context.Context) {}}); !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestIdleTenantForfeitsCredit: a tenant idle while another is served
// re-enters at current virtual time — it cannot burst banked credit and
// monopolize the worker.
func TestIdleTenantForfeitsCredit(t *testing.T) {
	q := queue.New(queue.Options{Workers: 1, Depth: 64})
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	run := func(id string) func(context.Context) {
		return func(ctx context.Context) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			if id == "aa00" {
				<-gate
			}
		}
	}
	// Tenant a runs 10 jobs alone; tenant b then arrives with 10.
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("aa%02d", i)
		if err := q.Submit(queue.Job{ID: id, Tenant: "a", Run: run(id)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q.Start(ctx)
	// Let a's first job start, then inject b's backlog and release.
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("bb%02d", i)
		if err := q.Submit(queue.Job{ID: id, Tenant: "b", Run: run(id)}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 20 jobs dispatched", n)
		}
		time.Sleep(time.Millisecond)
	}
	// After b arrives the two tenants must interleave: within any
	// post-arrival window of 6, b gets at least 2 dispatches.
	mu.Lock()
	defer mu.Unlock()
	for start := 2; start+6 <= 20; start += 6 {
		nb := 0
		for _, id := range order[start : start+6] {
			if id[0] == 'b' {
				nb++
			}
		}
		if nb < 2 {
			t.Fatalf("window %d-%d served b only %d/6 times: %v", start, start+6, nb, order)
		}
	}
}
