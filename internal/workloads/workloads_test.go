package workloads

import (
	"testing"

	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/reuse"
	"github.com/uteda/gmap/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registry holds %d benchmarks, want 18: %v", len(all), Names())
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("All() not sorted: %q before %q", all[i-1].Name, all[i].Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("kmeans"); !ok {
		t.Error("kmeans missing")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("unknown benchmark found")
	}
}

func TestTable1Set(t *testing.T) {
	set := Table1Set()
	if len(set) != 10 {
		t.Fatalf("Table1Set has %d entries", len(set))
	}
	if set[0].Name != "heartwall" || set[9].Name != "fwt" {
		t.Errorf("Table1Set order wrong: %v", set)
	}
}

func TestAllKernelsValidAndEmulate(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			k := s.Build(1)
			if err := k.Validate(); err != nil {
				t.Fatalf("invalid kernel: %v", err)
			}
			tr, err := s.Trace(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.NumAccesses() == 0 {
				t.Fatal("empty trace")
			}
			if tr.Name != s.Name {
				t.Errorf("trace name %q != spec name %q", tr.Name, s.Name)
			}
		})
	}
}

func TestScaleGrowsTraces(t *testing.T) {
	for _, name := range []string{"kmeans", "blk", "bfs"} {
		s, _ := ByName(name)
		t1, err := s.Trace(1)
		if err != nil {
			t.Fatal(err)
		}
		t4, err := s.Trace(4)
		if err != nil {
			t.Fatal(err)
		}
		if t4.NumAccesses() < 3*t1.NumAccesses() {
			t.Errorf("%s: scale 4 trace (%d) not ~4x scale 1 (%d)",
				name, t4.NumAccesses(), t1.NumAccesses())
		}
	}
}

func TestScaleClamped(t *testing.T) {
	s, _ := ByName("nn")
	a, err := s.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAccesses() != b.NumAccesses() {
		t.Error("scale 0 not clamped to 1")
	}
}

// interWarpStride measures the dominant line-address stride between
// consecutive warps' first access to a PC, after coalescing.
func interWarpStride(t *testing.T, name string, pc uint64) (int64, float64) {
	t.Helper()
	s, ok := ByName(name)
	if !ok {
		t.Fatalf("benchmark %s missing", name)
	}
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	warps := gpu.NewCoalescer(128).BuildWarpTraces(tr)
	first := make(map[int]uint64) // warp -> first line for pc
	for _, w := range warps {
		for _, r := range w.Requests {
			if r.PC == pc {
				if _, seen := first[w.WarpID]; !seen {
					first[w.WarpID] = r.Addr
				}
			}
		}
	}
	h := stats.NewHistogram()
	for w := 1; w < len(warps); w++ {
		a, okA := first[w-1]
		b, okB := first[w]
		if okA && okB {
			h.Add(int64(b) - int64(a))
		}
	}
	key, freq, ok := h.Mode()
	if !ok {
		t.Fatalf("%s: no inter-warp strides for pc %#x", name, pc)
	}
	return key, freq
}

func TestKmeansInterWarpStride(t *testing.T) {
	// Table 1: kmeans PC 0xe8 dominant inter-warp stride 4352.
	stride, freq := interWarpStride(t, "kmeans", 0xe8)
	if stride != 4352 {
		t.Errorf("kmeans inter-warp stride = %d, want 4352", stride)
	}
	if freq < 0.5 {
		t.Errorf("kmeans dominant stride freq = %.2f, want > 0.5", freq)
	}
}

func TestBlkInterWarpStride(t *testing.T) {
	// Table 1: blk dominant inter-warp stride 128.
	stride, _ := interWarpStride(t, "blk", 0xF0)
	if stride != 128 {
		t.Errorf("blk inter-warp stride = %d, want 128", stride)
	}
}

func TestSradInterWarpStride(t *testing.T) {
	// Table 1: srad dominant inter-warp stride 16384.
	stride, _ := interWarpStride(t, "srad", 0x250)
	if stride != 16384 {
		t.Errorf("srad inter-warp stride = %d, want 16384", stride)
	}
}

func TestKmeansDominantPC(t *testing.T) {
	// Table 1: PC 0xe8 accounts for ~100% of kmeans references.
	s, _ := ByName("kmeans")
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	byPC := stats.NewHistogram()
	for _, tt := range tr.Threads {
		for _, a := range tt.Accesses {
			byPC.Add(int64(a.PC))
		}
	}
	if f := byPC.Freq(0xe8); f < 0.98 {
		t.Errorf("kmeans PC 0xe8 frequency = %.3f, want ~1.0", f)
	}
}

func TestHeartwallDominantPC(t *testing.T) {
	// Table 1: PC 0x900 accounts for ~81% of heartwall references.
	s, _ := ByName("heartwall")
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	byPC := stats.NewHistogram()
	for _, tt := range tr.Threads {
		for _, a := range tt.Accesses {
			byPC.Add(int64(a.PC))
		}
	}
	if f := byPC.Freq(0x900); f < 0.75 || f > 0.95 {
		t.Errorf("heartwall PC 0x900 frequency = %.3f, want ~0.81", f)
	}
}

func TestLudNoDominantPC(t *testing.T) {
	// Table 1: lud's busiest PCs are each only ~4% of references; assert
	// no PC exceeds 10%.
	s, _ := ByName("lud")
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	byPC := stats.NewHistogram()
	for _, tt := range tr.Threads {
		for _, a := range tt.Accesses {
			byPC.Add(int64(a.PC))
		}
	}
	if _, f, _ := byPC.Mode(); f > 0.10 {
		t.Errorf("lud max PC frequency = %.3f, want < 0.10", f)
	}
}

// reuseFraction returns the fraction of per-thread accesses with finite
// cacheline reuse distance — the intra-thread temporal locality that
// Table 1's reuse column classifies.
func reuseFraction(t *testing.T, name string) float64 {
	t.Helper()
	s, _ := ByName(name)
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	total, reused := 0, 0
	for _, tt := range tr.Threads {
		trk := reuse.NewTracker(len(tt.Accesses))
		for _, a := range tt.Accesses {
			if trk.Access(a.Addr/128) != reuse.Cold {
				reused++
			}
			total++
		}
	}
	if total == 0 {
		t.Fatalf("%s: empty trace", name)
	}
	return float64(reused) / float64(total)
}

func TestReuseLevels(t *testing.T) {
	// Table 1 thresholds: low < 30%, med 30-70%, high > 70%.
	for _, c := range []struct {
		name     string
		min, max float64
	}{
		{"kmeans", 0.70, 1.0},
		{"heartwall", 0.70, 1.0},
		{"lib", 0.70, 1.0},
		{"blk", 0.0, 0.30},
		{"scalarprod", 0.0, 0.30},
		{"srad", 0.0, 0.30},
		{"bp", 0.30, 0.85},
	} {
		if f := reuseFraction(t, c.name); f < c.min || f > c.max {
			t.Errorf("%s warp-level reuse fraction = %.3f, want [%.2f, %.2f]",
				c.name, f, c.min, c.max)
		}
	}
}

func TestDivergentWorkloadsHaveMultiplePaths(t *testing.T) {
	for _, name := range []string{"bfs", "mum", "hotspot"} {
		s, _ := ByName(name)
		if s.Regular {
			t.Errorf("%s should be marked irregular", name)
		}
		tr, err := s.Trace(1)
		if err != nil {
			t.Fatal(err)
		}
		// Distinct per-thread access counts indicate control divergence.
		lens := make(map[int]bool)
		for _, tt := range tr.Threads {
			lens[len(tt.Accesses)] = true
		}
		if name != "hotspot" && len(lens) < 2 {
			t.Errorf("%s: all threads executed identical-length paths", name)
		}
	}
}

func TestTraceSizesReasonable(t *testing.T) {
	// Keep the evaluation tractable: warp-request streams between 3K and
	// 200K per benchmark at scale 1.
	c := gpu.NewCoalescer(128)
	for _, s := range All() {
		tr, err := s.Trace(1)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, w := range c.BuildWarpTraces(tr) {
			n += len(w.Requests)
		}
		if n < 3000 || n > 200000 {
			t.Errorf("%s: %d warp requests at scale 1, want 3K-200K", s.Name, n)
		}
	}
}

func TestReuseLevelString(t *testing.T) {
	if LowReuse.String() != "low" || MedReuse.String() != "med" || HighReuse.String() != "high" {
		t.Error("ReuseLevel strings wrong")
	}
}

func TestAppTracesValid(t *testing.T) {
	// Every benchmark's application form must emulate and validate, and
	// multi-kernel apps must keep per-kernel geometry consistent.
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			app, err := s.AppTrace(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Validate(); err != nil {
				t.Fatal(err)
			}
			geom := map[string][2]int{}
			for _, k := range app.Launches {
				if g, seen := geom[k.Name]; seen {
					if g[0] != k.GridDim || g[1] != k.BlockDim {
						t.Fatalf("kernel %q changes geometry across launches", k.Name)
					}
				}
				geom[k.Name] = [2]int{k.GridDim, k.BlockDim}
			}
		})
	}
}

func TestAppTraceScaleClamped(t *testing.T) {
	s, _ := ByName("kmeans")
	a, err := s.AppTrace(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AppTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAccesses() != b.NumAccesses() {
		t.Error("app scale 0 not clamped to 1")
	}
}
