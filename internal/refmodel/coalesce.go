package refmodel

import "github.com/uteda/gmap/internal/trace"

// Coalesce merges one warp-wide instruction execution into line-sized
// transactions the slow, obvious way: an order-preserving map from
// aligned segment to touching-thread count, emitted in first-touch order.
// It must agree exactly with gpu.Coalescer.Coalesce.
func Coalesce(warpID int, pc uint64, kind trace.Kind, addrs []uint64, lineSize uint64) []trace.Request {
	if len(addrs) == 0 {
		return nil
	}
	counts := make(map[uint64]int)
	var order []uint64
	for _, a := range addrs {
		line := a - a%lineSize
		if _, seen := counts[line]; !seen {
			order = append(order, line)
		}
		counts[line]++
	}
	reqs := make([]trace.Request, len(order))
	for i, line := range order {
		reqs[i] = trace.Request{
			PC:      pc,
			Addr:    line,
			Kind:    kind,
			WarpID:  warpID,
			Threads: counts[line],
		}
	}
	return reqs
}
