package reuse

import (
	"testing"
	"testing/quick"

	"github.com/uteda/gmap/internal/rng"
)

// naiveDistance is the O(n^2) reference implementation: for each access,
// count distinct elements strictly between it and the previous access to
// the same element.
func naiveDistances(stream []uint64) []int64 {
	out := make([]int64, len(stream))
	for i, e := range stream {
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if stream[j] == e {
				prev = j
				break
			}
		}
		if prev < 0 {
			out[i] = Cold
			continue
		}
		distinct := make(map[uint64]bool)
		for j := prev + 1; j < i; j++ {
			distinct[stream[j]] = true
		}
		out[i] = int64(len(distinct))
	}
	return out
}

func TestFigure5Example(t *testing.T) {
	// The exact example from Figure 5 of the paper: accesses to
	// X[0..3],X[1..3],X[0] map to cachelines 0,0,1,1,0,1,1,0 and yield
	// reuse distances inf,0,inf,0,1,1,0,1.
	lines := []uint64{0, 0, 1, 1, 0, 1, 1, 0}
	want := []int64{Cold, 0, Cold, 0, 1, 1, 0, 1}
	got := Distances(lines)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Figure 5 distances = %v, want %v", got, want)
		}
	}
}

func TestAllCold(t *testing.T) {
	got := Distances([]uint64{1, 2, 3, 4, 5})
	for i, d := range got {
		if d != Cold {
			t.Errorf("access %d distance = %d, want Cold", i, d)
		}
	}
}

func TestRepeatedSingleElement(t *testing.T) {
	got := Distances([]uint64{7, 7, 7, 7})
	want := []int64{Cold, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCyclicPattern(t *testing.T) {
	// a b c a b c: second round all see distance 2.
	got := Distances([]uint64{1, 2, 3, 1, 2, 3})
	want := []int64{Cold, Cold, Cold, 2, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMatchesNaive(t *testing.T) {
	f := func(seed uint64, n uint8, nElems uint8) bool {
		r := rng.New(seed)
		length := int(n%200) + 1
		elems := uint64(nElems%16) + 1
		stream := make([]uint64, length)
		for i := range stream {
			stream[i] = r.Uint64n(elems)
		}
		fast := Distances(stream)
		slow := naiveDistances(stream)
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrackerCounts(t *testing.T) {
	tr := NewTracker(0)
	for _, e := range []uint64{1, 2, 1, 3, 1} {
		tr.Access(e)
	}
	if tr.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", tr.Distinct())
	}
	if tr.Accesses() != 5 {
		t.Errorf("Accesses = %d, want 5", tr.Accesses())
	}
}

func TestTrackerGrowth(t *testing.T) {
	// Force multiple Fenwick regrowths and verify against naive on a
	// pattern with long-range reuse.
	const n = 5000
	stream := make([]uint64, n)
	for i := range stream {
		stream[i] = uint64(i % 97)
	}
	got := Distances(stream)
	// After warmup, every access reuses its element after touching the
	// other 96 elements.
	for i := 97; i < n; i++ {
		if got[i] != 96 {
			t.Fatalf("access %d distance = %d, want 96", i, got[i])
		}
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]uint64{0, 0, 1, 1, 0, 1, 1, 0})
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(Cold) != 2 {
		t.Errorf("cold count = %d, want 2", h.Count(Cold))
	}
	if h.Count(0) != 3 {
		t.Errorf("distance-0 count = %d, want 3", h.Count(0))
	}
	if h.Count(1) != 3 {
		t.Errorf("distance-1 count = %d, want 3", h.Count(1))
	}
}

func TestDistanceBoundedByDistinct(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tr := NewTracker(64)
		for i := 0; i < 300; i++ {
			d := tr.Access(r.Uint64n(32))
			if d != Cold && (d < 0 || d >= int64(tr.Distinct())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyStream(t *testing.T) {
	if got := Distances(nil); len(got) != 0 {
		t.Errorf("Distances(nil) = %v", got)
	}
	h := Histogram(nil)
	if h.Total() != 0 {
		t.Error("Histogram(nil) not empty")
	}
}

func BenchmarkTracker(b *testing.B) {
	r := rng.New(1)
	stream := make([]uint64, 1<<16)
	for i := range stream {
		stream[i] = r.Uint64n(1 << 12)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := NewTracker(len(stream))
		for _, e := range stream {
			tr.Access(e)
		}
	}
}
