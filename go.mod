module github.com/uteda/gmap

go 1.22
