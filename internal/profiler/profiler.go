package profiler

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/reuse"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/trace"
)

// Config controls profiling.
type Config struct {
	// LineSize is the coalescing granularity in bytes (default 128).
	LineSize uint64
	// ClusterThreshold is the π-profile similarity threshold Th of §4.4;
	// two paths whose positional similarity is at least this value fall in
	// the same cluster. The paper chooses 0.9 empirically.
	ClusterThreshold float64
	// MaxProfiles caps the number of dominant π profiles kept (M). Paths
	// beyond the cap are folded into their most similar kept cluster.
	// Zero means the default of 8.
	MaxProfiles int
	// SchedPself is recorded verbatim into the profile (§4.5); it
	// describes the warp scheduler the original ran under.
	SchedPself float64
	// CompressReuse log-bins reuse distances above 64 so the profile size
	// stays bounded regardless of footprint (the paper's profiles are
	// "independent of the execution length"). Distances at cache-relevant
	// resolution (<= 64 lines) stay exact; larger ones quantize to powers
	// of two, which preserves which capacities they straddle.
	CompressReuse bool
	// Obs, when non-nil, times the profiling phases ("profile.coalesce",
	// "profile.extract", "profile.cluster") and tags them with pprof
	// labels. Purely observational; the produced Profile is identical.
	Obs *obs.Registry
	// TraceSpan, when non-nil, records the same phases as child spans of
	// the given span. Write-only, like Obs.
	TraceSpan *obstrace.Span
}

// phase runs f under both the obs phase timer and a trace span named
// name, so the two observability layers stay in lockstep.
func (c *Config) phase(name string, f func()) {
	sp := c.TraceSpan.Child(name)
	c.Obs.Phase(name, f)
	sp.End()
}

// DefaultConfig returns the paper's settings: 128B lines, Th = 0.9, up to
// 8 dominant profiles.
func DefaultConfig() Config {
	return Config{LineSize: gpu.DefaultLineSize, ClusterThreshold: 0.9, MaxProfiles: 8}
}

func (c *Config) fillDefaults() {
	if c.LineSize == 0 {
		c.LineSize = gpu.DefaultLineSize
	}
	if c.ClusterThreshold <= 0 || c.ClusterThreshold > 1 {
		c.ClusterThreshold = 0.9
	}
	if c.MaxProfiles <= 0 {
		c.MaxProfiles = 8
	}
}

// ProfileKernel profiles a per-thread kernel trace: it coalesces the trace
// into warp-level request streams and extracts the statistical profile.
// This is phase ① of Figure 2.
func ProfileKernel(k *trace.KernelTrace, cfg Config) (*Profile, error) {
	cfg.fillDefaults()
	if err := k.Validate(); err != nil {
		return nil, err
	}
	var warps []trace.WarpTrace
	cfg.phase("profile.coalesce", func() {
		warps = gpu.NewCoalescer(cfg.LineSize).AttachObs(cfg.Obs).BuildWarpTraces(k)
	})
	return ProfileWarps(k.Name, k.GridDim, k.BlockDim, warps, cfg)
}

// ProfileWarps extracts a profile from already-coalesced warp streams.
func ProfileWarps(name string, gridDim, blockDim int, warps []trace.WarpTrace, cfg Config) (*Profile, error) {
	cfg.fillDefaults()
	p := &Profile{
		Name:       name,
		GridDim:    gridDim,
		BlockDim:   blockDim,
		LineSize:   cfg.LineSize,
		Warps:      len(warps),
		SchedPself: cfg.SchedPself,
	}
	var seqs [][]int
	var err error
	cfg.phase("profile.extract", func() {
		seqs, err = extractStats(p, warps)
	})
	if err != nil {
		return nil, err
	}
	cfg.phase("profile.cluster", func() {
		buildPiProfiles(p, warps, seqs, cfg)
	})
	return p, p.Validate()
}

// extractStats runs the per-instruction statistics passes (§4.2) over the
// warp streams, filling p's instruction table in place, and returns each
// warp's instruction-index sequence for clustering.
func extractStats(p *Profile, warps []trace.WarpTrace) ([][]int, error) {
	// Pass 1: build the static instruction table in first-appearance
	// order and count dynamic requests.
	instOf := make(map[uint64]int)
	for _, w := range warps {
		for _, r := range w.Requests {
			i, ok := instOf[r.PC]
			if !ok {
				i = len(p.Insts)
				instOf[r.PC] = i
				p.Insts = append(p.Insts, StaticInst{
					PC:          r.PC,
					Kind:        r.Kind,
					InterStride: stats.NewHistogram(),
					IntraStride: stats.NewHistogram(),
				})
			}
			p.Insts[i].Count++
			p.TotalRequests++
		}
	}
	if len(p.Insts) == 0 {
		return nil, fmt.Errorf("profiler: %s: no memory requests to profile", p.Name)
	}

	// Pass 2: per-warp statistics. firstAddr[w][i] is warp w's first
	// access address for instruction i (the anchor for inter-warp strides
	// and for B); lastAddr chains intra-warp strides.
	firstAddrs := make([]map[int]uint64, len(warps))
	seqs := make([][]int, len(warps))
	// Per-instruction offset reference (from the first warp executing the
	// instruction) for the §4.2 determinism check.
	refOffsets := make([][]int64, len(p.Insts))
	deterministic := make([]bool, len(p.Insts))
	for i := range deterministic {
		deterministic[i] = true
	}
	execCounts := make([]int, len(p.Insts))
	for wi := range warps {
		w := &warps[wi]
		first := make(map[int]uint64, len(p.Insts))
		last := make(map[int]uint64, len(p.Insts))
		seq := make([]int, 0, len(w.Requests))
		execIdx := make([]int, len(p.Insts))
		runStride := make(map[int]int64, len(p.Insts))
		runLen := make(map[int]int64, len(p.Insts))
		endRun := func(i int) {
			if runLen[i] == 0 {
				return
			}
			if p.Insts[i].Runs == nil {
				p.Insts[i].Runs = make(map[string]*stats.Histogram)
			}
			key := strconv.FormatInt(runStride[i], 10)
			h := p.Insts[i].Runs[key]
			if h == nil {
				h = stats.NewHistogram()
				p.Insts[i].Runs[key] = h
			}
			h.Add(runLen[i])
			runLen[i] = 0
		}
		for _, r := range w.Requests {
			i := instOf[r.PC]
			seq = append(seq, i)
			if prev, seen := last[i]; seen {
				stride := int64(r.Addr) - int64(prev)
				p.Insts[i].IntraStride.Add(stride)
				if runLen[i] > 0 && stride == runStride[i] {
					runLen[i]++
				} else {
					endRun(i)
					runStride[i] = stride
					runLen[i] = 1
				}
			} else {
				first[i] = r.Addr
			}
			last[i] = r.Addr
			// Widen the instruction's per-warp footprint window.
			off := int64(r.Addr) - int64(first[i])
			if off < p.Insts[i].OffLo {
				p.Insts[i].OffLo = off
			}
			if off > p.Insts[i].OffHi {
				p.Insts[i].OffHi = off
			}
			// Determinism check: compare this execution's offset against
			// the reference warp's same-numbered execution.
			n := execIdx[i]
			execIdx[i]++
			if deterministic[i] {
				if refOffsets[i] == nil || n >= len(refOffsets[i]) {
					refOffsets[i] = append(refOffsets[i], off)
				} else if refOffsets[i][n] != off {
					deterministic[i] = false
				}
			}
		}
		for i := range p.Insts {
			endRun(i)
		}
		for i, n := range execIdx {
			if n == 0 {
				continue
			}
			if execCounts[i] == 0 {
				execCounts[i] = n
			} else if execCounts[i] != n {
				deterministic[i] = false
			}
		}
		firstAddrs[wi] = first
		seqs[wi] = seq
	}
	for i := range p.Insts {
		p.Insts[i].Deterministic = deterministic[i]
	}

	// Inter-warp strides: consecutive warps' first accesses per
	// instruction (§4.2, measured after coalescing as in Table 1). Warp
	// 0's first accesses are the base addresses B.
	for i := range p.Insts {
		for wi := 0; wi < len(warps); wi++ {
			if a, ok := firstAddrs[wi][i]; ok {
				p.Insts[i].Base = a
				break
			}
		}
	}
	for wi := 1; wi < len(warps); wi++ {
		for i, cur := range firstAddrs[wi] {
			if prev, ok := firstAddrs[wi-1][i]; ok {
				p.Insts[i].InterStride.Add(int64(cur) - int64(prev))
			}
		}
	}
	// Anchor spread: how far any warp's first access sits from the base.
	for wi := range warps {
		for i, cur := range firstAddrs[wi] {
			off := int64(cur) - int64(p.Insts[i].Base)
			if off < p.Insts[i].AnchorLo {
				p.Insts[i].AnchorLo = off
			}
			if off > p.Insts[i].AnchorHi {
				p.Insts[i].AnchorHi = off
			}
		}
	}
	return seqs, nil
}

// buildPiProfiles clusters the per-warp instruction sequences (§4.4) and
// aggregates per-cluster reuse (P_R) at line granularity.
func buildPiProfiles(p *Profile, warps []trace.WarpTrace, seqs [][]int, cfg Config) {
	clusters := clusterSequences(seqs, cfg.ClusterThreshold, cfg.MaxProfiles)
	p.Profiles = make([]PiProfile, len(clusters))
	for ci, cl := range clusters {
		pp := &p.Profiles[ci]
		pp.Seq = cl.rep
		pp.Count = uint64(len(cl.members))
		pp.Reuse = stats.NewHistogram()
		for _, wi := range cl.members {
			tr := reuse.NewTracker(len(warps[wi].Requests))
			for _, r := range warps[wi].Requests {
				pp.Reuse.Add(tr.Access(r.Addr / cfg.LineSize))
			}
		}
		if cfg.CompressReuse {
			pp.Reuse = pp.Reuse.LogBin(64)
		}
	}
}

// similarity returns the positional similarity of two instruction
// sequences: the number of positions holding identical entries, divided by
// the longer length. Identical sequences score 1.
func similarity(a, b []int) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	same := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	longer := len(a)
	if len(b) > longer {
		longer = len(b)
	}
	return float64(same) / float64(longer)
}

type cluster struct {
	rep     []int
	members []int // warp indices
}

// clusterSequences groups warp instruction sequences by positional
// similarity. Identical sequences are deduplicated first (the common case:
// most warps follow the same path), then unique paths greedily join the
// first existing cluster whose representative is at least th similar,
// largest clusters first. Finally the cluster count is capped at maxM by
// folding the smallest clusters into their most similar survivor.
func clusterSequences(seqs [][]int, th float64, maxM int) []cluster {
	// Deduplicate by content.
	type group struct {
		seq     []int
		members []int
	}
	byKey := make(map[string]*group)
	order := make([]*group, 0, 8)
	var keyBuf []byte
	for wi, s := range seqs {
		keyBuf = keyBuf[:0]
		for _, v := range s {
			keyBuf = append(keyBuf,
				byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		k := string(keyBuf)
		g, ok := byKey[k]
		if !ok {
			g = &group{seq: s}
			byKey[k] = g
			order = append(order, g)
		}
		g.members = append(g.members, wi)
	}
	// Largest groups first so dominant paths become cluster seeds.
	sort.SliceStable(order, func(i, j int) bool { return len(order[i].members) > len(order[j].members) })

	var clusters []cluster
	for _, g := range order {
		placed := false
		for ci := range clusters {
			if similarity(clusters[ci].rep, g.seq) >= th {
				clusters[ci].members = append(clusters[ci].members, g.members...)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, cluster{rep: g.seq, members: append([]int(nil), g.members...)})
		}
	}
	// Cap M: fold smallest clusters into the most similar survivor.
	if len(clusters) > maxM {
		sort.SliceStable(clusters, func(i, j int) bool { return len(clusters[i].members) > len(clusters[j].members) })
		for _, extra := range clusters[maxM:] {
			best, bestSim := 0, -1.0
			for ci := 0; ci < maxM; ci++ {
				if s := similarity(clusters[ci].rep, extra.rep); s > bestSim {
					best, bestSim = ci, s
				}
			}
			clusters[best].members = append(clusters[best].members, extra.members...)
		}
		clusters = clusters[:maxM]
	}
	// Deterministic output order: by descending size, then first member.
	sort.SliceStable(clusters, func(i, j int) bool {
		if len(clusters[i].members) != len(clusters[j].members) {
			return len(clusters[i].members) > len(clusters[j].members)
		}
		return clusters[i].members[0] < clusters[j].members[0]
	})
	return clusters
}
