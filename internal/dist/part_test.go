package dist

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/runner"
	"github.com/uteda/gmap/internal/serve/api"
)

// TestPartOfInvariants pins the partition function: in-range,
// deterministic across calls (and thus across processes), total — every
// key lands in exactly one part — and not degenerate on realistic
// job-hash keys.
func TestPartOfInvariants(t *testing.T) {
	g := proptest.New(41)
	for _, parts := range []int{1, 2, 4, 8, 31} {
		filled := make(map[int]int)
		for i := 0; i < 500; i++ {
			key := runner.JobKey("partof", fmt.Sprint(i), fmt.Sprint(g.R.Uint64()))
			p := PartOf(key, parts)
			if p < 0 || p >= parts {
				t.Fatalf("PartOf(%q, %d) = %d out of range", key, parts, p)
			}
			if q := PartOf(key, parts); q != p {
				t.Fatalf("PartOf(%q, %d) nondeterministic: %d then %d", key, parts, p, q)
			}
			filled[p]++
		}
		if parts > 1 && len(filled) < 2 {
			t.Errorf("parts=%d: 500 keys all landed in one part", parts)
		}
	}
	if PartOf("anything", 0) != 0 || PartOf("anything", -3) != 0 {
		t.Error("degenerate part counts must map to part 0")
	}
}

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

// syntheticCoordinator builds a coordinator over a synthetic key
// universe with a fake clock, bypassing sweep enumeration.
func syntheticCoordinator(t *testing.T, nkeys int, o CoordinatorOptions) (*Coordinator, []string, *fakeClock) {
	t.Helper()
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = runner.JobKey("synthetic", fmt.Sprintf("job-%03d", i))
	}
	if o.Ledger == "" {
		o.Ledger = filepath.Join(t.TempDir(), "ledger.jsonl")
	}
	o.fillDefaults()
	spec := api.JobSpec{Kind: api.KindSweep, Experiment: "synthetic"}
	c, err := newCoordinator(spec, keys, o)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	c.now = clk.now
	return c, keys, clk
}

// mustLease adapts the epoch-fenced Lease for single-incarnation
// tests, where the only error path is a fencing failure (covered
// explicitly by the failover suite).
func mustLease(t *testing.T, c *Coordinator, w string) LeaseGrant {
	t.Helper()
	g, err := c.Lease(w)
	if err != nil {
		t.Fatalf("lease for %s: %v", w, err)
	}
	return g
}

// payloadFor derives the deterministic result payload of a synthetic
// job, mirroring the determinism contract of real simulation points.
func payloadFor(key string) json.RawMessage {
	return json.RawMessage(`{"job":"` + key + `"}`)
}

// checkInvariants asserts the structural lease/partition invariants the
// package documentation promises, by direct inspection of coordinator
// state.
func checkInvariants(t *testing.T, c *Coordinator) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Every live lease maps to exactly one part that points back at it,
	// and no two live leases share a part — since parts partition the
	// key space, no job key is ever owned by two live leases.
	seenPart := make(map[int]string)
	for id, l := range c.leases {
		if prev, dup := seenPart[l.part]; dup {
			t.Fatalf("part %d held by two live leases: %s and %s", l.part, prev, id)
		}
		seenPart[l.part] = id
		if c.parts[l.part].leaseID != id {
			t.Fatalf("lease %s claims part %d but the part points at %q", id, l.part, c.parts[l.part].leaseID)
		}
	}
	for _, p := range c.parts {
		if p.leaseID != "" {
			if _, live := c.leases[p.leaseID]; !live {
				t.Fatalf("part %d points at dead lease %s", p.id, p.leaseID)
			}
		}
		// remaining ∪ done partitions the part's keys: disjoint cover.
		for _, k := range p.keys {
			_, isDone := c.done[k]
			isRemaining := p.remaining[k]
			if isDone == isRemaining {
				t.Fatalf("key %s: done=%v remaining=%v — must be exactly one", k, isDone, isRemaining)
			}
		}
	}
	// Done keys never leave; counts reconcile.
	rem := 0
	for _, p := range c.parts {
		rem += len(p.remaining)
	}
	if rem+len(c.done) != len(c.universe) {
		t.Fatalf("remaining %d + done %d != universe %d", rem, len(c.done), len(c.universe))
	}
}

// TestLeaseInvariantsProperty drives a random schedule of lease,
// heartbeat, result, complete and clock-advance operations against a
// synthetic universe and asserts the state-machine invariants after
// every step, then drains the sweep to completion and checks the ledger
// covers the universe exactly.
func TestLeaseInvariantsProperty(t *testing.T) {
	cases := proptest.N(t, 5, 25)
	for ci := 0; ci < cases; ci++ {
		ci := ci
		t.Run(fmt.Sprintf("seed=%d", ci), func(t *testing.T) {
			g := proptest.New(uint64(1000 + ci))
			ttl := 10 * time.Second
			c, _, clk := syntheticCoordinator(t, 20+g.R.Intn(40), CoordinatorOptions{
				Parts:    1 + g.R.Intn(6),
				LeaseTTL: ttl,
			})
			type grant struct {
				id   string
				keys []string
			}
			var grants []grant // every grant ever issued, live or not
			steps := 200 + g.R.Intn(200)
			for s := 0; s < steps; s++ {
				switch g.R.Intn(10) {
				case 0, 1: // request a lease
					lg := mustLease(t, c, fmt.Sprintf("w%d", g.R.Intn(4)))
					if lg.Status == GrantLease {
						grants = append(grants, grant{id: lg.Lease, keys: lg.Keys})
					}
				case 2: // heartbeat a random (possibly stale) grant
					if len(grants) > 0 {
						_ = c.Heartbeat(grants[g.R.Intn(len(grants))].id, c.Epoch())
					}
				case 3: // heartbeat a lease that never existed
					if err := c.Heartbeat("lease-bogus", c.Epoch()); err == nil {
						t.Fatal("bogus lease heartbeat accepted")
					}
				case 4, 5, 6: // deliver results for a random grant subset
					if len(grants) > 0 {
						gr := grants[g.R.Intn(len(grants))]
						var entries []Entry
						for _, k := range gr.keys {
							if g.R.Bool(0.3) {
								entries = append(entries, Entry{Key: k, Value: payloadFor(k), ElapsedNS: int64(1e6 + g.R.Intn(1e6))})
							}
						}
						if _, _, err := c.Results(gr.id, c.Epoch(), entries); err != nil {
							t.Fatalf("results rejected: %v", err)
						}
					}
				case 7: // complete a random grant (idempotent, any state)
					if len(grants) > 0 {
						c.Complete(grants[g.R.Intn(len(grants))].id, c.Epoch())
					}
				case 8: // time passes, possibly past the TTL
					clk.advance(time.Duration(g.R.Intn(int(ttl * 2))))
				case 9: // a snapshot is always consistent
					st := c.StatusSnapshot()
					if st.DoneJobs > st.TotalJobs || st.DoneParts > st.Parts {
						t.Fatalf("inconsistent snapshot %+v", st)
					}
				}
				checkInvariants(t, c)
			}

			// Drain: lease and immediately fulfill until done.
			for i := 0; i < 10000; i++ {
				lg := mustLease(t, c, "drain")
				if lg.Status == GrantDone {
					break
				}
				if lg.Status == GrantWait {
					clk.advance(ttl + time.Second) // expire stuck leases
					continue
				}
				var entries []Entry
				for _, k := range lg.Keys {
					entries = append(entries, Entry{Key: k, Value: payloadFor(k), ElapsedNS: 1e6})
				}
				if _, _, err := c.Results(lg.Lease, lg.Epoch, entries); err != nil {
					t.Fatal(err)
				}
				if got, err := c.Complete(lg.Lease, lg.Epoch); err != nil || (got != "superseded" && got != "ok") {
					t.Fatalf("drain complete = %q (%v)", got, err)
				}
				checkInvariants(t, c)
			}
			select {
			case <-c.Done():
			default:
				t.Fatalf("sweep not done after drain: %+v", c.StatusSnapshot())
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			vals, sv, err := runner.SalvageStrict(nil, c.o.Ledger)
			if err != nil {
				t.Fatal(err)
			}
			if len(vals) != len(c.universe) {
				t.Fatalf("ledger holds %d entries, universe %d", len(vals), len(c.universe))
			}
			// Duplicates are deduplicated before the ledger: exactly one
			// line per key no matter how chaotic the schedule was.
			if sv.Lines != sv.Entries {
				t.Errorf("ledger has %d lines for %d entries — duplicate writes leaked", sv.Lines, sv.Entries)
			}
			for k := range c.universe {
				if string(vals[k]) != string(payloadFor(k)) {
					t.Errorf("key %s payload %s", k, vals[k])
				}
			}
		})
	}
}

// TestStealThenCompleteIdempotence scripts the straggler dance: worker
// A leases the only part and delivers half of it, stalls long past the
// straggler threshold (while heartbeating, so the lease never expires),
// B steals the remainder, A's late results and completion land
// harmlessly, and the merged ledger is exactly one line per key.
func TestStealThenCompleteIdempotence(t *testing.T) {
	ttl := 10 * time.Second
	c, keys, clk := syntheticCoordinator(t, 12, CoordinatorOptions{
		Parts:       1,
		LeaseTTL:    ttl,
		StallFactor: 4,
	})

	a := mustLease(t, c, "A")
	if a.Status != GrantLease || len(a.Keys) != len(keys) {
		t.Fatalf("grant A = %+v", a)
	}
	// A delivers half, establishing a mean job time of ~1ms.
	half := a.Keys[:len(a.Keys)/2]
	var entries []Entry
	for _, k := range half {
		entries = append(entries, Entry{Key: k, Value: payloadFor(k), ElapsedNS: int64(time.Millisecond)})
	}
	if _, _, err := c.Results(a.Lease, a.Epoch, entries); err != nil {
		t.Fatal(err)
	}

	// B asks while A is healthy: every part is leased, so B waits; the
	// steal threshold (max(TTL, 4×1ms) = TTL) hasn't passed.
	if lg := mustLease(t, c, "B"); lg.Status != GrantWait {
		t.Fatalf("B granted %+v while A healthy", lg)
	}

	// A keeps heartbeating but stops delivering: after > TTL of silence
	// on the results channel, B's next request steals the part.
	for i := 0; i < 4; i++ {
		clk.advance(ttl / 2)
		if err := c.Heartbeat(a.Lease, a.Epoch); err != nil {
			t.Fatalf("A heartbeat while healthy: %v", err)
		}
		checkInvariants(t, c)
	}
	b := mustLease(t, c, "B")
	if b.Status != GrantLease {
		t.Fatalf("B not granted after stall: %+v", b)
	}
	if len(b.Keys) != len(keys)-len(half) {
		t.Fatalf("B leased %d keys, want the %d-key remainder", len(b.Keys), len(keys)-len(half))
	}
	st := c.StatusSnapshot()
	if st.Stolen != 1 {
		t.Fatalf("stolen = %d, want 1", st.Stolen)
	}
	if err := c.Heartbeat(a.Lease, a.Epoch); err == nil {
		t.Fatal("A's stolen lease still heartbeats")
	}
	checkInvariants(t, c)

	// A finishes anyway and reports late: duplicates for the half it
	// already sent, late-but-first results for the rest. All accepted,
	// nothing double-written.
	var all []Entry
	for _, k := range a.Keys {
		all = append(all, Entry{Key: k, Value: payloadFor(k), ElapsedNS: int64(time.Millisecond)})
	}
	acc, dup, err := c.Results(a.Lease, a.Epoch, all)
	if err != nil {
		t.Fatal(err)
	}
	if dup != len(half) || acc != len(keys)-len(half) {
		t.Fatalf("late delivery: accepted %d dup %d, want %d/%d", acc, dup, len(keys)-len(half), len(half))
	}
	if got, err := c.Complete(a.Lease, a.Epoch); err != nil || got != "superseded" {
		t.Fatalf("A complete = %q (%v), want superseded", got, err)
	}

	// The part completed under B's lease the moment A's late results
	// covered it; B's completion is idempotent.
	select {
	case <-c.Done():
	default:
		t.Fatal("sweep not done after late completion")
	}
	if got, err := c.Complete(b.Lease, b.Epoch); err != nil || (got != "superseded" && got != "ok") {
		t.Fatalf("B complete = %q (%v)", got, err)
	}
	// B re-delivering its (now duplicate) remainder is still harmless.
	var bs []Entry
	for _, k := range b.Keys {
		bs = append(bs, Entry{Key: k, Value: payloadFor(k), ElapsedNS: int64(time.Millisecond)})
	}
	if acc, dup, err := c.Results(b.Lease, b.Epoch, bs); err != nil || acc != 0 || dup != len(bs) {
		t.Fatalf("B redelivery: acc %d dup %d err %v", acc, dup, err)
	}
	checkInvariants(t, c)

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_, sv, err := runner.SalvageStrict(nil, c.o.Ledger)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Entries != len(keys) || sv.Lines != len(keys) {
		t.Fatalf("ledger %d entries / %d lines, want %d/%d", sv.Entries, sv.Lines, len(keys), len(keys))
	}
	if mustLease(t, c, "C").Status != GrantDone {
		t.Error("post-completion lease not answered done")
	}
}
