// Differential tests: the production set-associative cache against the
// refmodel recency-list reference, on generated access/fill/probe streams.
// External test package so proptest (which imports cache) can be used.
package cache_test

import (
	"testing"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/refmodel"
)

// driveBoth replays one generated op stream through both caches and
// fails on the first diverging result or final statistics mismatch.
func driveBoth(t *testing.T, seed uint64, g *proptest.G, prod *cache.Cache, ref *refmodel.Cache) {
	t.Helper()
	ops := 100 + g.R.Intn(200)
	addrs := g.AddrStream(ops, uint64(prod.Config().LineSize))
	for oi, a := range addrs {
		switch p := g.R.Float64(); {
		case p < 0.70:
			write := g.R.Bool(0.3)
			pr, rr := prod.Access(a, write), ref.Access(a, write)
			if pr != rr {
				t.Fatalf("seed %d op %d: Access(%#x, write=%v) = %+v, reference %+v",
					seed, oi, a, write, pr, rr)
			}
		case p < 0.85:
			pr, rr := prod.Fill(a), ref.Fill(a)
			if pr != rr {
				t.Fatalf("seed %d op %d: Fill(%#x) = %+v, reference %+v", seed, oi, a, pr, rr)
			}
		default:
			if pp, rp := prod.Probe(a), ref.Probe(a); pp != rp {
				t.Fatalf("seed %d op %d: Probe(%#x) = %v, reference %v", seed, oi, a, pp, rp)
			}
		}
	}
	if prod.Stats != ref.Stats {
		t.Fatalf("seed %d: stats diverged:\nproduction %+v\nreference  %+v", seed, prod.Stats, ref.Stats)
	}
}

// TestCacheMatchesReference replays generated demand/fill/probe streams
// through random set-associative LRU geometries and the reference cache,
// requiring identical per-op results (hit, write-through, prefetch-hit,
// victim address, victim dirtiness) and identical final statistics.
func TestCacheMatchesReference(t *testing.T) {
	n := proptest.N(t, 200, 1000)
	for i := 0; i < n; i++ {
		seed := uint64(0x5e7a55 + i)
		g := proptest.New(seed)
		cfg := g.CacheConfig()
		prod, err := cache.New(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := refmodel.NewCache(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		driveBoth(t, seed, g, prod, ref)
	}
}

// TestFullyAssociativeMatchesReference drives the single-set geometry —
// the refmodel's explicitly fully-associative constructor against the
// production cache configured with one set.
func TestFullyAssociativeMatchesReference(t *testing.T) {
	n := proptest.N(t, 200, 1000)
	for i := 0; i < n; i++ {
		seed := uint64(0xf0117 + i)
		g := proptest.New(seed)
		lines := []int{1, 2, 4, 8, 16}[g.R.Intn(5)]
		lineSize := []int{32, 64, 128}[g.R.Intn(3)]
		writes := cache.WriteBackAllocate
		if g.R.Bool(0.4) {
			writes = cache.WriteThroughNoAllocate
		}
		cfg := cache.Config{SizeBytes: lines * lineSize, Ways: lines, LineSize: lineSize, Writes: writes}
		prod, err := cache.New(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := refmodel.NewFullyAssocCache(lines, lineSize, writes)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		driveBoth(t, seed, g, prod, ref)
	}
}

// TestMissCountMonotoneInWays is the inclusion-property invariant: with
// the set count and line size fixed, growing the associativity of an LRU
// cache can never increase the miss count on any stream (each set is an
// LRU stack, and a stack of depth w+1 contains the stack of depth w).
func TestMissCountMonotoneInWays(t *testing.T) {
	n := proptest.N(t, 100, 500)
	for i := 0; i < n; i++ {
		seed := uint64(0x304070 + i)
		g := proptest.New(seed)
		lineSize := []int{32, 64, 128}[g.R.Intn(3)]
		sets := []int{1, 2, 4, 8}[g.R.Intn(4)]
		addrs := g.AddrStream(300, uint64(lineSize))
		prev := ^uint64(0)
		for _, ways := range []int{1, 2, 3, 4, 6, 8} {
			cfg := cache.Config{SizeBytes: sets * ways * lineSize, Ways: ways, LineSize: lineSize}
			c, err := cache.New(cfg)
			if err != nil {
				t.Fatalf("seed %d ways %d: %v", seed, ways, err)
			}
			for _, a := range addrs {
				c.Access(a, false)
			}
			if c.Stats.Misses > prev {
				t.Fatalf("seed %d: misses grew from %d to %d when ways reached %d (sets=%d line=%d)",
					seed, prev, c.Stats.Misses, ways, sets, lineSize)
			}
			prev = c.Stats.Misses
		}
	}
}
