package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/uteda/gmap/internal/dist"
	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/obs/fleet"
	obsserve "github.com/uteda/gmap/internal/obs/serve"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/serve/api"
)

// distFlags are the distributed-sweep knobs; the sweep-shape flags
// (-exp, -benchmarks, -scale, ...) are shared with the serial path.
type distFlags struct {
	listen         string        // -dist-listen: coordinator mode
	addrFile       string        // -dist-addr-file
	parts          int           // -dist-parts
	leaseTTL       time.Duration // -dist-lease-ttl
	worker         string        // -worker: worker mode (comma-separated endpoints)
	workerAddrFile string        // -worker-addr-file: coordinator discovery file
	standby        bool          // -dist-standby: standby/failover mode
	healthInterval time.Duration // -dist-health-interval
	healthMisses   int           // -dist-health-misses
	fleetInterval  time.Duration // -fleet-interval: federation scrape cadence
}

// federate wires the fleet federator onto a live coordinator: scrape
// targets come from the coordinator's worker roster (workers that
// self-announced an exposition URL on lease), the owner status document
// is the coordinator's own snapshot, and the merged surface mounts
// under /fleet/ on the coordinator's existing listener. Returns the
// stop function that halts the scrape loop.
func federate(ctx context.Context, c *dist.Coordinator, reg *obs.Registry, tracer *obstrace.Tracer, interval time.Duration, logf func(string, ...interface{})) func() {
	fed := fleet.New(fleet.Options{
		Self:     "coordinator",
		Registry: reg,
		Tracer:   tracer,
		Interval: interval,
		Targets: func() []fleet.Source {
			var srcs []fleet.Source
			for _, ws := range c.StatusSnapshot().Workers {
				if ws.ObsURL != "" {
					srcs = append(srcs, fleet.Source{Name: ws.Name, URL: ws.ObsURL})
				}
			}
			return srcs
		},
		Status: func() interface{} { return c.StatusSnapshot() },
		Logf:   logf,
	})
	c.SetFleet(fed.Handler())
	fctx, cancel := context.WithCancel(ctx)
	go fed.Run(fctx)
	return cancel
}

// runCoordinator distributes the sweep: partition the job space, lease
// parts to workers over HTTP, merge streamed results into the
// -checkpoint ledger, and render the merged report once every job is
// recorded. The ledger is the only durable state — re-running the same
// command over it resumes where the previous coordinator died, and a
// -dist-standby process watching the same ledger takes over live.
func runCoordinator(ctx context.Context, spec api.JobSpec, df distFlags, ledger string, w io.Writer, logf func(string, ...interface{})) error {
	if ledger == "" {
		return fmt.Errorf("-dist-listen requires -checkpoint (the merge ledger)")
	}
	// The coordinator is a service, not a simulation hot path: its
	// registry and tracer are always on, so /fleet/ and the merged
	// distributed trace exist for every sweep. Simulation results are
	// observability-blind either way (bit-identity is enforced by the
	// conformance suite).
	reg := obs.New()
	tracer := obstrace.New()
	c, err := dist.NewCoordinator(dist.CoordinatorOptions{
		Spec:     spec,
		Parts:    df.parts,
		LeaseTTL: df.leaseTTL,
		Ledger:   ledger,
		Obs:      reg,
		Trace:    tracer,
		Logf:     logf,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	stopFed := federate(ctx, c, reg, tracer, df.fleetInterval, logf)
	defer stopFed()
	srv, err := c.Serve(ctx, df.listen)
	if err != nil {
		return err
	}
	defer srv.Shutdown()
	fmt.Fprintf(os.Stderr, "gmap-eval: coordinating %s on %s (epoch %d)\n", spec.Experiment, srv.URL(), c.Epoch())
	if df.addrFile != "" {
		// Atomic rename, same as a standby's takeover rewrite: a worker
		// polling the file never reads a torn address.
		if err := dist.WriteAddrFile(nil, df.addrFile, srv.URL()); err != nil {
			return err
		}
	}
	if err := c.WaitDone(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gmap-eval: interrupted; merged points saved to %s, re-run to resume\n", ledger)
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}
	return c.WriteReport(w)
}

// runStandby watches the active coordinator and, if it goes dark,
// takes over the sweep from the shared ledger: salvage, epoch bump
// (fencing the predecessor), serve, rewrite the addr file, and render
// the report when the sweep completes.
func runStandby(ctx context.Context, spec api.JobSpec, df distFlags, ledger string, w io.Writer, logf func(string, ...interface{})) error {
	if ledger == "" {
		return fmt.Errorf("-dist-standby requires -checkpoint (the shared merge ledger)")
	}
	var watch []string
	if df.worker != "" {
		watch = strings.Split(df.worker, ",")
	}
	if len(watch) == 0 && df.workerAddrFile == "" {
		return fmt.Errorf("-dist-standby requires the active coordinator's URL (-worker) or -worker-addr-file")
	}
	if len(watch) == 0 && df.workerAddrFile != "" {
		data, err := os.ReadFile(df.workerAddrFile)
		if err != nil {
			return fmt.Errorf("-worker-addr-file: %w", err)
		}
		watch = []string{strings.TrimSpace(string(data))}
	}
	reg := obs.New()
	tracer := obstrace.New()
	t, err := dist.RunStandby(ctx, dist.StandbyOptions{
		Spec:           spec,
		Ledger:         ledger,
		Listen:         df.listen,
		AddrFile:       df.addrFile,
		Watch:          watch,
		HealthInterval: df.healthInterval,
		HealthMisses:   df.healthMisses,
		Parts:          df.parts,
		LeaseTTL:       df.leaseTTL,
		Obs:            reg,
		Trace:          tracer,
		Logf:           logf,
	})
	if err != nil {
		return err
	}
	if t == nil {
		fmt.Fprintf(os.Stderr, "gmap-eval: standby: active coordinator finished the sweep; standing down\n")
		return nil
	}
	c := t.Coordinator
	defer c.Close()
	// The takeover coordinator's server is already live; SetFleet is
	// resolved per request, so federation attaches after the fact.
	stopFed := federate(ctx, c, reg, tracer, df.fleetInterval, logf)
	defer stopFed()
	if t.Server != nil {
		defer t.Server.Shutdown()
		fmt.Fprintf(os.Stderr, "gmap-eval: standby took over %s on %s (epoch %d)\n", spec.Experiment, t.Server.URL(), c.Epoch())
	}
	if err := c.WaitDone(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gmap-eval: interrupted; merged points saved to %s, re-run to resume\n", ledger)
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}
	return c.WriteReport(w)
}

// runWorker joins a coordinator and processes leases until the sweep
// completes. The sweep's shape comes from the coordinator inside each
// lease grant; only execution knobs are local. urls may name several
// coordinator endpoints (active plus standby), and addrFile — re-read
// before every retry — overrides them all, so a standby takeover
// redirects the worker without restart.
//
// serveAddr, when non-empty, additionally starts the exposition server
// (-serve, same surface as a serial run) and opts the worker into the
// fleet: the exposition URL rides in each lease request so the
// coordinator's federator discovers it, spans parent under the
// coordinator's sweep trace, and tallies push on lease end and
// shutdown. Without -serve the worker's Obs and Trace stay nil — the
// simulation hot path keeps its single disabled-path branch.
func runWorker(ctx context.Context, urls, addrFile, serveAddr string, workers, simWorkers int, logf func(string, ...interface{})) error {
	var endpoints []string
	if urls != "" {
		endpoints = strings.Split(urls, ",")
	}
	var first string
	if len(endpoints) > 0 {
		first = endpoints[0]
		endpoints = endpoints[1:]
	}
	wo := dist.WorkerOptions{
		Coordinator: first,
		Endpoints:   endpoints,
		AddrFile:    addrFile,
		Workers:     workers,
		SimWorkers:  simWorkers,
		Logf:        logf,
	}
	if serveAddr != "" {
		reg := obs.New()
		tracer := obstrace.New()
		srv, err := obsserve.Start(ctx, obsserve.Options{
			Addr:     serveAddr,
			Registry: reg,
			Tracer:   tracer,
		})
		if err != nil {
			return err
		}
		defer srv.Shutdown()
		wo.Obs = reg
		wo.Trace = tracer
		wo.ObsURL = "http://" + srv.Addr()
		fmt.Fprintf(os.Stderr, "gmap-eval: worker observability on %s\n", wo.ObsURL)
	}
	return dist.RunWorker(ctx, wo)
}
