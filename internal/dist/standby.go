package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/runner"
	"github.com/uteda/gmap/internal/serve"
	"github.com/uteda/gmap/internal/serve/api"
)

// StandbyOptions configures RunStandby.
type StandbyOptions struct {
	// Spec and Ledger mirror the active coordinator's CoordinatorOptions:
	// the standby must enumerate the same job universe and share the same
	// durable ledger (the files are the replicated state — there is no
	// other channel between the incarnations).
	Spec   api.JobSpec
	Ledger string
	// Listen is the address the takeover coordinator binds (":0" picks a
	// free port).
	Listen string
	// AddrFile, when non-empty, is rewritten with the takeover
	// coordinator's URL so workers re-reading it rediscover the sweep.
	AddrFile string
	// Watch are the active coordinator's candidate URLs, health-checked
	// in order until one answers.
	Watch []string
	// HealthInterval is the probe cadence; <= 0 defaults to 1s.
	HealthInterval time.Duration
	// HealthMisses is how many consecutive failed probes (with no ledger
	// or lease-journal growth backing them up) trigger takeover; <= 0
	// defaults to 3.
	HealthMisses int
	// Parts/LeaseTTL/StallFactor configure the takeover coordinator;
	// zero values take the coordinator defaults.
	Parts       int
	LeaseTTL    time.Duration
	StallFactor float64
	// FS routes ledger and journal I/O; nil selects the real filesystem.
	FS fault.FS
	// Obs, when non-nil, collects standby counters (dist.health_misses,
	// dist.takeovers) and is handed to the takeover coordinator.
	Obs *obs.Registry
	// Trace, when non-nil, is handed to the takeover coordinator so a
	// post-takeover sweep keeps emitting sweep/lease spans.
	Trace *obstrace.Tracer
	// HTTPClient overrides the probe transport (tests); nil uses a
	// short-timeout default.
	HTTPClient *http.Client
	// Logf, when non-nil, receives standby progress lines.
	Logf func(format string, args ...interface{})
	// Probe, when non-nil, replaces the HTTP status probe entirely
	// (tests drive takeover schedules without a live server). It
	// returns the active coordinator's status or an error meaning
	// "unreachable".
	Probe func(ctx context.Context) (Status, error)
}

// Takeover is the result of a standby promoting itself.
type Takeover struct {
	// Coordinator is the promoted incarnation, already serving on Server
	// (when Listen was set) under a bumped, persisted epoch.
	Coordinator *Coordinator
	// Server is the takeover coordinator's HTTP server; nil when
	// StandbyOptions.Listen was empty.
	Server *serve.Server
}

// RunStandby watches an active coordinator and takes over when it goes
// dark. The standby's evidence is deliberately two-channel:
//
//   - The health probe (GET /healthz, then /dist/v1/status, on each
//     Watch URL — status alone against pre-healthz coordinators) says
//     whether the active coordinator answers.
//   - The shared ledger and lease journal say whether it is making
//     progress. Any growth in either file vetoes takeover and resets
//     the miss count, no matter what the probe says — a coordinator
//     that is merging results is alive even if its HTTP surface is
//     drowning, and promoting next to it would only burn an epoch.
//
// Once HealthMisses consecutive probes fail with no file growth, the
// standby promotes: NewCoordinator over the same ledger strictly
// salvages the merged results, claims epoch+1 (fencing the predecessor
// — even one that comes back from a GC pause mid-promotion), starts
// serving on Listen, and rewrites AddrFile so workers rediscover the
// sweep. The caller owns the returned coordinator and server.
//
// Returns (nil, nil) when the watched sweep completes without needing
// takeover — the probe's status reports Done — or when ctx is
// cancelled before takeover (with ctx.Err()).
func RunStandby(ctx context.Context, o StandbyOptions) (*Takeover, error) {
	if o.Ledger == "" {
		return nil, fmt.Errorf("dist: standby requires a ledger path")
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = time.Second
	}
	if o.HealthMisses <= 0 {
		o.HealthMisses = 3
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	probe := o.Probe
	if probe == nil {
		hc := o.HTTPClient
		if hc == nil {
			hc = &http.Client{Timeout: 5 * time.Second}
		}
		probe = func(ctx context.Context) (Status, error) {
			var lastErr error
			for _, u := range o.Watch {
				base := normalizeEndpoint(u)
				if base == "" {
					continue
				}
				st, err := probeHealth(ctx, hc, base)
				if err == nil {
					return st, nil
				}
				lastErr = err
			}
			if lastErr == nil {
				lastErr = fmt.Errorf("dist: standby has no watch endpoints")
			}
			return Status{}, lastErr
		}
	}

	fsys := o.FS
	if fsys == nil {
		fsys = fault.OS
	}
	ledgerTail := runner.NewCheckpointTail(fsys, o.Ledger)
	journalTail := runner.NewCheckpointTail(fsys, JournalPath(o.Ledger))
	// Consume whatever already exists so only growth after this instant
	// counts as liveness.
	_, _ = ledgerTail.Poll()
	_, _ = journalTail.Poll()

	misses := 0
	tick := time.NewTicker(o.HealthInterval)
	defer tick.Stop()
	logf("dist: standby: watching %v over ledger %s (takeover after %d misses %v apart)",
		o.Watch, o.Ledger, o.HealthMisses, o.HealthInterval)
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
		}

		st, err := probe(ctx)
		if err == nil {
			misses = 0
			if st.Done {
				logf("dist: standby: sweep complete on active coordinator (epoch %d); standing down", st.Epoch)
				return nil, nil
			}
			continue
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}

		// The probe failed — but file growth is better evidence than an
		// HTTP answer. Growth vetoes the miss.
		le, _ := ledgerTail.Poll()
		je, _ := journalTail.Poll()
		if len(le) > 0 || len(je) > 0 {
			logf("dist: standby: probe failed (%v) but ledger/journal grew (%d+%d lines); vetoing", err, len(le), len(je))
			misses = 0
			continue
		}
		misses++
		o.Obs.Counter("dist.health_misses").Inc()
		logf("dist: standby: probe failed (%v), no file growth: miss %d/%d", err, misses, o.HealthMisses)
		if misses < o.HealthMisses {
			continue
		}

		logf("dist: standby: active coordinator declared dead; taking over")
		return promote(ctx, o, logf)
	}
}

// probeHealth is the two-step liveness probe: a cheap GET /healthz
// answers "the process serves", and only then is the full status
// fetched. A coordinator that answers /healthz but whose status
// endpoint errors still counts as alive (zero status, nil error) —
// liveness is the takeover question, not status availability. Older
// coordinators without /healthz fall back to the status probe alone.
func probeHealth(ctx context.Context, hc *http.Client, base string) (Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Status{}, err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		st, serr := probeStatus(ctx, hc, base)
		if serr != nil {
			return Status{}, nil // alive, status temporarily unanswerable
		}
		return st, nil
	case resp.StatusCode == http.StatusNotFound:
		// Pre-healthz coordinator: the status endpoint is the only probe.
		return probeStatus(ctx, hc, base)
	default:
		return Status{}, fmt.Errorf("dist: health probe: %s", resp.Status)
	}
}

// probeStatus GETs one coordinator's status endpoint.
func probeStatus(ctx context.Context, hc *http.Client, base string) (Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/dist/v1/status", nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, fmt.Errorf("dist: status probe: %s", resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("dist: status probe: %w", err)
	}
	return st, nil
}

// promote builds the takeover coordinator: strict salvage of the shared
// ledger plus the epoch bump that fences the predecessor, then the
// serving/rediscovery plumbing.
func promote(ctx context.Context, o StandbyOptions, logf func(string, ...interface{})) (*Takeover, error) {
	c, err := NewCoordinator(CoordinatorOptions{
		Spec:        o.Spec,
		Parts:       o.Parts,
		LeaseTTL:    o.LeaseTTL,
		StallFactor: o.StallFactor,
		Ledger:      o.Ledger,
		FS:          o.FS,
		Obs:         o.Obs,
		Trace:       o.Trace,
		Logf:        o.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("dist: takeover: %w", err)
	}
	o.Obs.Counter("dist.takeovers").Inc()
	t := &Takeover{Coordinator: c}
	if o.Listen != "" {
		srv, err := c.Serve(ctx, o.Listen)
		if err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("dist: takeover: %w", err)
		}
		t.Server = srv
		logf("dist: takeover: epoch %d serving on %s", c.Epoch(), srv.URL())
		if o.AddrFile != "" {
			fsys := o.FS
			if fsys == nil {
				fsys = fault.OS
			}
			if err := WriteAddrFile(fsys, o.AddrFile, srv.URL()); err != nil {
				logf("dist: takeover: addr file %s: %v (workers must use static endpoints)", o.AddrFile, err)
			}
		}
	}
	return t, nil
}
