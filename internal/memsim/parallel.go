package memsim

// The parallel engine: SM cores execute on worker goroutines in lockstep
// per visited cycle, meeting the shared L2/DRAM only through a
// coordinator-owned drain that replays their continuations in
// deterministic core order. DESIGN.md §12 documents the seam and the
// bit-identity argument; TestSimParallelMatchesSerial enforces it.
//
// Per visited cycle:
//
//	coordinator  advance DRAM, route completions to owning cores,
//	             sample machine series, pre-draw PSelf decisions
//	workers      per owned core: apply routed completions, sample core
//	             series, run the core-local issue half (scheduler, L1,
//	             MSHR), retire finished warps into per-worker sinks
//	coordinator  drain each core's L2/DRAM continuation in core order,
//	             merge retirement sinks, flip launch epochs, pick the
//	             next cycle
//
// Everything a worker touches is owned by its cores (warp state, L1,
// MSHR, flights, obs shards); everything shared is touched only by the
// coordinator with all workers parked at the visit barrier.

import "fmt"

// simWorker is one SM worker goroutine's state: the contiguous core range
// it owns, its rendezvous channels, and its retirement sinks (merged by
// the coordinator at each visit barrier, so the live remaining counter
// and epoch table stay coordinator-owned).
type simWorker struct {
	lo, hi int // owns cores [lo, hi)
	start  chan visitMsg
	done   chan struct{}

	sinkRemaining int
	sinkEpoch     []int

	// panicked records a recovered panic from workerVisit; the
	// coordinator re-raises it on Run's goroutine so the runner's
	// existing per-job panic isolation contains it.
	panicked interface{}
}

// visitMsg releases a worker for one visited cycle.
type visitMsg struct {
	cycle  uint64
	sample bool // this is a sampling cycle (obs enabled and due)
}

// workerLoop runs one SM worker until its start channel closes.
func (s *Simulator) workerLoop(w *simWorker) {
	for v := range w.start {
		s.workerVisit(w, v)
		w.done <- struct{}{}
	}
}

// workerVisit runs the core-local half of one visited cycle for every
// core the worker owns, in core order — which makes the interleaving of
// per-core effects identical to the serial engine's, since no state is
// shared between cores in this phase.
func (s *Simulator) workerVisit(w *simWorker, v visitMsg) {
	defer func() {
		if r := recover(); r != nil {
			w.panicked = r
		}
	}()
	for c := w.lo; c < w.hi; c++ {
		slot := &s.slots[c]
		for _, comp := range slot.comps {
			s.applyCompletion(c, comp)
		}
		slot.comps = slot.comps[:0]
		if v.sample {
			s.sampleCore(c, v.cycle)
		}
		slot.op.kind = opNone
		slot.issued = s.issueLocal(c, v.cycle, slot, false)
		if !slot.issued && s.obs != nil {
			s.noteStall(c)
		}
		s.compactCore(c, v.cycle, &w.sinkRemaining, w.sinkEpoch)
	}
}

// loopParallel is the parallel engine's scheduler loop. It produces
// bit-identical results to loopSerial for any worker count: every
// divergence channel — DRAM arrival order, L2 access order, rng draws,
// retirement bookkeeping, obs series — is either core-local or replayed
// by the coordinator in core order at the visit barrier.
func (s *Simulator) loopParallel(nw int, cyclep *uint64, remaining *int) error {
	cycle := *cyclep
	defer func() { *cyclep = cycle }()

	s.slots = make([]coreSlot, len(s.cores))
	workers := make([]*simWorker, nw)
	for i := range workers {
		w := &simWorker{
			lo:        i * len(s.cores) / nw,
			hi:        (i + 1) * len(s.cores) / nw,
			start:     make(chan visitMsg, 1),
			done:      make(chan struct{}, 1),
			sinkEpoch: make([]int, len(s.epochRem)),
		}
		workers[i] = w
		go s.workerLoop(w)
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		for _, w := range workers {
			close(w.start)
		}
	}
	defer stop()

	guard := uint64(0)
	for *remaining > 0 {
		guard++
		if guard > 1<<34 {
			return fmt.Errorf("memsim: no forward progress (cycle %d, %d warps left)", cycle, *remaining)
		}
		// Coordinator pre-phase: advance the memory system and route each
		// completion to the core owning its flight. Per-core application
		// order preserves the controller's completion order, and distinct
		// cores' completions commute (a flight has one owning core, a
		// warp waits on exactly one flight), so shard-local delivery is
		// exact.
		s.compBuf = s.dram.AdvanceInto(cycle, s.compBuf[:0])
		for _, comp := range s.compBuf {
			c, ok := s.flightCore[comp.ID]
			if !ok {
				continue
			}
			delete(s.flightCore, comp.ID)
			s.slots[c].comps = append(s.slots[c].comps, comp)
		}
		sample := s.obs != nil && s.obs.sampleDue(cycle)
		if sample {
			s.sampleMachine(cycle)
		}
		if s.cfg.Scheduler == PSelf {
			// Consume the shared rng stream in core order before the
			// workers run, exactly as the serial issue scan would.
			for c := range s.cores {
				s.slots[c].pself = s.preDrawPself(c)
			}
		}

		// Worker phase.
		v := visitMsg{cycle: cycle, sample: sample}
		for _, w := range workers {
			w.start <- v
		}
		for _, w := range workers {
			<-w.done
		}
		for _, w := range workers {
			if r := w.panicked; r != nil {
				stop()
				panic(fmt.Sprintf("memsim: SM worker panic: %v", r))
			}
		}

		// Coordinator drain: replay each core's shared-state continuation
		// in core order — the exact order the serial engine interleaves
		// L2 accesses, prefetcher observations and DRAM arrivals.
		issued := false
		for c := range s.cores {
			slot := &s.slots[c]
			if slot.issued {
				issued = true
				switch slot.op.kind {
				case opShared:
					s.metrics.Requests += slot.reqDelta
					slot.reqDelta = 0
					s.applyOp(c, slot, cycle)
					slot.op.kind = opNone
				case opDeferred:
					s.applyDeferred(c, slot, cycle)
				default:
					s.metrics.Requests += slot.reqDelta
					slot.reqDelta = 0
				}
			}
		}
		for _, w := range workers {
			*remaining += w.sinkRemaining
			w.sinkRemaining = 0
			for e, d := range w.sinkEpoch {
				if d != 0 {
					s.epochRem[e] += d
					w.sinkEpoch[e] = 0
				}
			}
		}
		s.advanceEpochs(cycle)
		if issued {
			cycle++
			continue
		}
		next := s.nextEvent(cycle)
		if next <= cycle {
			next = cycle + 1
		}
		cycle = next
	}
	return nil
}
