// Command gmap-generate expands a G-MAP statistical profile into a
// miniaturized proxy (clone) trace, optionally obfuscating the address
// space for proprietary-workload sharing.
//
// Usage:
//
//	gmap-generate -profile app.profile.json -out app.proxy.wtrc -scale-factor 4
//	gmap-generate -profile app.profile.json -obfuscate -key 0xdeadbeef -out clone.wtrc
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/uteda/gmap"
)

func main() {
	var (
		profilePath = flag.String("profile", "", "input profile JSON (required)")
		out         = flag.String("out", "", "output proxy warp-trace path (default stdout)")
		seed        = flag.Uint64("seed", 1, "generation seed")
		scaleFactor = flag.Float64("scale-factor", 4, "miniaturization factor (1 = full size; values in (0,1) scale the workload up)")
		obfuscate   = flag.Bool("obfuscate", false, "replace base addresses with synthetic ones")
		key         = flag.Uint64("key", 0, "obfuscation key (with -obfuscate)")
		obsSnap     = flag.String("obs-snapshot", "", "dump the observability registry (generation phase timings) as JSON to this file (- for stdout)")
	)
	flag.Parse()
	if *profilePath == "" {
		fatal(fmt.Errorf("-profile is required"))
	}
	f, err := os.Open(*profilePath)
	if err != nil {
		fatal(err)
	}
	profile, err := gmap.ReadProfile(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *profilePath, err))
	}
	gopts := gmap.GenerateOptions{
		Seed:           *seed,
		ScaleFactor:    *scaleFactor,
		Obfuscate:      *obfuscate,
		ObfuscationKey: *key,
	}
	if *obsSnap != "" {
		gopts.Obs = gmap.NewObsRegistry()
	}
	proxy, err := gmap.Generate(profile, gopts)
	if err != nil {
		fatal(err)
	}
	if *obsSnap != "" {
		if err := writeObsSnapshot(*obsSnap, gopts.Obs); err != nil {
			fatal(err)
		}
	}
	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}
	if err := gmap.WriteProxy(w, proxy); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %s proxy: %d warps, %d requests (original: %d requests, %.1fx reduction)\n",
		proxy.Name, len(proxy.Warps), proxy.Requests, profile.TotalRequests,
		float64(profile.TotalRequests)/float64(max(proxy.Requests, 1)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// writeObsSnapshot dumps the registry as JSON; write failures carry the
// destination path.
func writeObsSnapshot(path string, r *gmap.ObsRegistry) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs snapshot: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs snapshot %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs snapshot %s: %w", path, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmap-generate:", err)
	os.Exit(1)
}
