package gmap_test

import (
	"fmt"
	"log"

	"github.com/uteda/gmap"
)

// The canonical three-step flow: profile, generate, simulate.
func Example() {
	tr, err := gmap.BenchmarkTrace("nn", 1)
	if err != nil {
		log.Fatal(err)
	}
	profile, err := gmap.ProfileTrace(tr, gmap.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	proxy, err := gmap.Generate(profile, gmap.GenerateOptions{Seed: 1, ScaleFactor: 4})
	if err != nil {
		log.Fatal(err)
	}
	cfg := gmap.DefaultSimConfig()
	orig, err := gmap.SimulateTrace(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	clone, err := gmap.SimulateProxy(proxy, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// nn streams over distinct lines: both sides must miss everywhere.
	fmt.Printf("L1 miss: original %.2f, clone %.2f\n", orig.L1MissRate(), clone.L1MissRate())
	// Output:
	// L1 miss: original 1.00, clone 1.00
}

// Profiles are small JSON documents safe to share instead of the trace.
func ExampleProfileTrace() {
	tr, err := gmap.BenchmarkTrace("kmeans", 1)
	if err != nil {
		log.Fatal(err)
	}
	profile, err := gmap.ProfileTrace(tr, gmap.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d static instructions, %d dominant paths\n",
		len(profile.Insts), len(profile.Profiles))
	// Output:
	// 2 static instructions, 1 dominant paths
}

// Obfuscation relocates the clone's address space while preserving its
// locality structure.
func ExampleGenerate_obfuscated() {
	tr, err := gmap.BenchmarkTrace("nn", 1)
	if err != nil {
		log.Fatal(err)
	}
	profile, err := gmap.ProfileTrace(tr, gmap.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	clone, err := gmap.Generate(profile, gmap.GenerateOptions{
		Seed: 1, ScaleFactor: 4, Obfuscate: true, ObfuscationKey: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clone of %s with %d warps\n", clone.Name, len(clone.Warps))
	// Output:
	// clone of nn with 128 warps
}

// Multi-kernel applications clone launch by launch, with cache state
// persisting across launches during simulation.
func ExamplePrepareApp() {
	w, err := gmap.PrepareApp("srad", 1, gmap.DefaultProfileConfig(), gmap.DefaultGenerateOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d launches, %d distinct kernels\n",
		w.Name, len(w.Profile.Launches), len(w.Profile.Kernels))
	// Output:
	// srad: 2 launches, 2 distinct kernels
}

// Benchmarks lists the built-in synthetic suite.
func ExampleBenchmarks() {
	names := gmap.Benchmarks()
	fmt.Println(len(names), "benchmarks, first:", names[0])
	// Output:
	// 18 benchmarks, first: aes
}
