package eval

import (
	"bytes"
	"strings"
	"testing"

	"github.com/uteda/gmap/internal/memsim"
)

// quickOpts keeps test runtime low: two cheap benchmarks, 4 cores.
func quickOpts() Options {
	return Options{
		Benchmarks:  []string{"nn", "scalarprod"},
		Scale:       1,
		ScaleFactor: 4,
		Seed:        1,
		Cores:       4,
	}
}

func TestSweepSizesMatchPaper(t *testing.T) {
	if n := len(L1Sweep(0)); n != 30 {
		t.Errorf("L1 sweep has %d configs, want 30", n)
	}
	if n := len(L2Sweep(0)); n != 30 {
		t.Errorf("L2 sweep has %d configs, want 30", n)
	}
	if n := len(L1PrefetchSweep(0)); n != 72 {
		t.Errorf("L1 prefetch sweep has %d configs, want 72", n)
	}
	if n := len(L2PrefetchSweep(0)); n != 96 {
		t.Errorf("L2 prefetch sweep has %d configs, want 96", n)
	}
	if n := len(DRAMSweep(0)); n != 11 {
		t.Errorf("DRAM sweep has %d configs, want 11", n)
	}
	if n := len(SchedulerSweep(0, memsim.GTO)); n != 30 {
		t.Errorf("scheduler sweep has %d configs, want 30", n)
	}
}

func TestSweepConfigsConstructible(t *testing.T) {
	sweeps := [][]ConfigGen{
		L1Sweep(4), L2Sweep(4), L1PrefetchSweep(4), L2PrefetchSweep(4),
		DRAMSweep(4), SchedulerSweep(4, memsim.PSelf),
	}
	for si, sweep := range sweeps {
		for _, g := range sweep {
			cfg, err := g.Make()
			if err != nil {
				t.Fatalf("sweep %d %q: %v", si, g.Label, err)
			}
			if cfg.NumCores != 4 {
				t.Errorf("%q: cores = %d", g.Label, cfg.NumCores)
			}
			if g.Label == "" {
				t.Errorf("sweep %d has unlabeled config", si)
			}
		}
	}
}

func TestSweepLabelsUnique(t *testing.T) {
	for _, sweep := range [][]ConfigGen{L1Sweep(0), L2Sweep(0), L1PrefetchSweep(0), L2PrefetchSweep(0), DRAMSweep(0)} {
		seen := make(map[string]bool)
		for _, g := range sweep {
			if seen[g.Label] {
				t.Errorf("duplicate label %q", g.Label)
			}
			seen[g.Label] = true
		}
	}
}

func TestPrefetchConfigsAreFreshPerRun(t *testing.T) {
	// Two Make() calls must yield distinct prefetcher instances, or
	// training state would leak between runs.
	g := L2PrefetchSweep(4)[0]
	a, err := g.Make()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Make()
	if err != nil {
		t.Fatal(err)
	}
	if a.L2Prefetcher == b.L2Prefetcher {
		t.Error("L2 prefetcher shared between runs")
	}
}

func TestFig6aQuick(t *testing.T) {
	opts := quickOpts()
	fig, err := opts.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		if r.Points != 30 {
			t.Errorf("%s points = %d", r.Benchmark, r.Points)
		}
		// Regular streaming benchmarks must clone nearly perfectly.
		if r.Error > 10 {
			t.Errorf("%s error = %.2fpp, want < 10", r.Benchmark, r.Error)
		}
		if r.Correlation < 0.8 {
			t.Errorf("%s correlation = %.3f", r.Benchmark, r.Correlation)
		}
	}
}

func TestFig6bQuick(t *testing.T) {
	opts := quickOpts()
	fig, err := opts.Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	if fig.AvgError > 15 {
		t.Errorf("avg L2 error = %.2fpp", fig.AvgError)
	}
}

func TestTable1(t *testing.T) {
	opts := DefaultOptions()
	rows, err := opts.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 20 {
		t.Fatalf("table1 has %d rows", len(rows))
	}
	// Spot-check the kmeans row against the paper's Table 1.
	found := false
	for _, r := range rows {
		if r.Benchmark == "kmeans" && r.PC == 0xe8 {
			found = true
			if r.Freq < 0.95 {
				t.Errorf("kmeans freq = %.3f", r.Freq)
			}
			if r.InterStride != 4352 {
				t.Errorf("kmeans inter stride = %d, want 4352", r.InterStride)
			}
			if r.Reuse != "high" {
				t.Errorf("kmeans reuse = %s", r.Reuse)
			}
		}
	}
	if !found {
		t.Error("kmeans PC 0xe8 missing from table 1")
	}
}

func TestFig8Quick(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"nn"}
	fig, err := opts.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 5 {
		t.Fatalf("fig8 has %d points", len(fig.Points))
	}
	// Request ratio must grow with the factor.
	for i := 1; i < len(fig.Points); i++ {
		if fig.Points[i].RequestRatio <= fig.Points[i-1].RequestRatio {
			t.Errorf("request ratio not monotone: %+v", fig.Points)
		}
	}
	// 1x must be essentially exact for a regular streaming benchmark.
	if fig.Points[0].Accuracy < 95 {
		t.Errorf("1x accuracy = %.2f", fig.Points[0].Accuracy)
	}
}

func TestRunDispatch(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"nn"}
	var buf bytes.Buffer
	if err := opts.Run(&buf, "table2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GDDR3") {
		t.Errorf("table2 output missing DRAM row: %q", buf.String())
	}
	if err := opts.Run(&buf, "nonesuch"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestWriteFigure(t *testing.T) {
	f := &FigureResult{ID: "figX", Title: "test", Metric: "m",
		Rows: []BenchResult{{Benchmark: "a", Points: 3, Error: 1.5, Correlation: 0.9}}}
	f.finalize()
	var buf bytes.Buffer
	if err := WriteFigure(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "benchmark", "a", "AVERAGE"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTable1Format(t *testing.T) {
	rows := []Table1Row{
		{Benchmark: "x", PC: 0x10, Freq: 0.5, InterStride: 128, InterFreq: 0.9, IntraStride: -64, Reuse: "low"},
		{Benchmark: "x", PC: 0x18, Freq: 0.5, InterStride: 128, InterFreq: 0.9, IntraStride: 64, Reuse: "low"},
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	// Repeated benchmark names collapse.
	if strings.Count(buf.String(), "x ") > 1 && strings.Count(buf.String(), "\nx") > 1 {
		t.Errorf("benchmark name repeated:\n%s", buf.String())
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := map[string]bool{"table1": true, "table2": true, "fig6a": true, "fig6b": true,
		"fig6c": true, "fig6d": true, "fig6e": true, "fig7": true, "fig8": true, "ablation": true}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("unexpected id %q", id)
		}
	}
}

func TestErrorMetrics(t *testing.T) {
	if e := rateError([]float64{0.5, 0.2}, []float64{0.55, 0.25}); e < 4.99 || e > 5.01 {
		t.Errorf("rateError = %v, want 5pp", e)
	}
	if e := relError([]float64{100, 200}, []float64{110, 180}); e < 9.99 || e > 10.01 {
		t.Errorf("relError = %v, want 10%%", e)
	}
	if rateError(nil, nil) != 0 || relError(nil, nil) != 0 {
		t.Error("empty error metrics not 0")
	}
	if c := correlation([]float64{1, 1}, []float64{1, 1}); c != 1 {
		t.Errorf("flat-flat correlation = %v", c)
	}
}

func TestFig6eQuick(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"nn"}
	res, err := opts.Fig6e()
	if err != nil {
		t.Fatal(err)
	}
	if res.LRR == nil || res.GTO == nil {
		t.Fatal("missing sub-figures")
	}
	var buf bytes.Buffer
	if err := WriteFig6e(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig6e summary") {
		t.Errorf("output missing summary: %s", buf.String())
	}
}

func TestFig7Quick(t *testing.T) {
	opts := quickOpts()
	opts.Benchmarks = []string{"nn", "aes"}
	res, err := opts.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RBL.Rows) != 2 || res.RBL.Rows[0].Points != 11 {
		t.Fatalf("fig7 shape wrong: %+v", res.RBL.Rows)
	}
	// aes is the normalization reference: its original bars must be 1.
	for _, row := range res.Normalized {
		if row.Benchmark == "aes" {
			if row.RBLOrig != 1 || row.ReadLatOrig != 1 {
				t.Errorf("aes not normalized to 1: %+v", row)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteFig7(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "normalized to original AES") {
		t.Error("fig7 bars section missing")
	}
}

func TestWriteFig8Format(t *testing.T) {
	res := &Fig8Result{Points: []Fig8Point{
		{Factor: 1, Accuracy: 99, Speedup: 1, RequestRatio: 1},
		{Factor: 8, Accuracy: 90, Speedup: 7.5, RequestRatio: 8.1},
	}}
	var buf bytes.Buffer
	if err := WriteFig8(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig8", "8x", "7.50x"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("fig8 output missing %q:\n%s", want, buf.String())
		}
	}
}
