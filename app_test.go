package gmap

import (
	"bytes"
	"math"
	"testing"

	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/workloads"
)

func TestAppTraceMultiKernel(t *testing.T) {
	for _, c := range []struct {
		name     string
		launches int
		kernels  int // distinct
	}{
		{"kmeans", 3, 1},
		{"bp", 2, 2},
		{"srad", 2, 2},
		{"nn", 1, 1}, // single-kernel fallback
	} {
		spec, _ := workloads.ByName(c.name)
		app, err := spec.AppTrace(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(app.Launches) != c.launches {
			t.Errorf("%s: %d launches, want %d", c.name, len(app.Launches), c.launches)
		}
		distinct := map[string]bool{}
		for _, k := range app.Launches {
			distinct[k.Name] = true
		}
		if len(distinct) != c.kernels {
			t.Errorf("%s: %d distinct kernels (%v), want %d",
				c.name, len(distinct), app.KernelNames(), c.kernels)
		}
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestAppProfileDeduplicatesKernels(t *testing.T) {
	spec, _ := workloads.ByName("kmeans")
	app, err := spec.AppTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileApp(app, DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Kernels) != 1 {
		t.Errorf("kmeans app profile holds %d kernel profiles, want 1 (3 launches of one kernel)", len(prof.Kernels))
	}
	if len(prof.Launches) != 3 {
		t.Errorf("launch sequence length = %d", len(prof.Launches))
	}
	// The merged profile regenerates one launch's warp population.
	if prof.Kernels[0].Warps != 16 {
		t.Errorf("per-launch warp count = %d, want 16", prof.Kernels[0].Warps)
	}
}

func TestAppProfileJSONRoundTrip(t *testing.T) {
	spec, _ := workloads.ByName("srad")
	app, _ := spec.AppTrace(1)
	prof, err := ProfileApp(app, DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := profiler.ReadAppJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Kernels) != len(prof.Kernels) || len(got.Launches) != len(prof.Launches) {
		t.Error("app profile round trip lost structure")
	}
}

func TestAppCloneAccuracy(t *testing.T) {
	// The application clone must track the original including cross-launch
	// cache reuse: kmeans' second and third launches re-touch the first's
	// feature array, which the L2 retains across launches.
	for _, name := range []string{"kmeans", "bp"} {
		w, err := PrepareApp(name, 1, DefaultProfileConfig(), GenerateOptions{Seed: 1, ScaleFactor: 4})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultSimConfig()
		orig, err := w.SimulateOriginal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		clone, err := w.SimulateProxy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(orig.L1MissRate() - clone.L1MissRate()); d > 0.12 {
			t.Errorf("%s app: L1 orig %.3f vs clone %.3f (|Δ| %.3f)",
				name, orig.L1MissRate(), clone.L1MissRate(), d)
		}
		if d := math.Abs(orig.L2MissRate() - clone.L2MissRate()); d > 0.20 {
			t.Errorf("%s app: L2 orig %.3f vs clone %.3f (|Δ| %.3f)",
				name, orig.L2MissRate(), clone.L2MissRate(), d)
		}
	}
}

func TestAppCrossLaunchReuse(t *testing.T) {
	// In the kmeans application the 2nd/3rd launches revisit the feature
	// array: with persistent caches the app's overall L2 miss rate must be
	// well below a single launch's.
	spec, _ := workloads.ByName("kmeans")
	single, err := spec.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig()
	sm, err := SimulateTrace(single, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := PrepareApp("kmeans", 1, DefaultProfileConfig(), GenerateOptions{Seed: 1, ScaleFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	am, err := w.SimulateOriginal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if am.L2MissRate() >= sm.L2MissRate() {
		t.Errorf("app L2 miss %.3f not below single-launch %.3f (cross-launch reuse missing)",
			am.L2MissRate(), sm.L2MissRate())
	}
}

func TestAppProxyMiniaturized(t *testing.T) {
	w, err := PrepareApp("srad", 1, DefaultProfileConfig(), GenerateOptions{Seed: 1, ScaleFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	var origReqs int
	for _, l := range w.Launches {
		for _, warp := range l {
			origReqs += len(warp.Requests)
		}
	}
	ratio := float64(origReqs) / float64(w.Proxy.Requests)
	if ratio < 2.5 || ratio > 6.5 {
		t.Errorf("app miniaturization ratio = %.2f (%d -> %d)", ratio, origReqs, w.Proxy.Requests)
	}
	if len(w.Proxy.Launches) != 2 {
		t.Errorf("proxy launches = %d", len(w.Proxy.Launches))
	}
}

func TestAppRelaunchesDiffer(t *testing.T) {
	// Re-launches of the same kernel must be fresh samples, not copies.
	w, err := PrepareApp("kmeans", 1, DefaultProfileConfig(), GenerateOptions{Seed: 1, ScaleFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := w.Proxy.Launches[0].Warps
	b := w.Proxy.Launches[1].Warps
	same := true
	for wi := range a {
		if len(a[wi].Requests) != len(b[wi].Requests) {
			same = false
			break
		}
		for j := range a[wi].Requests {
			if a[wi].Requests[j].Addr != b[wi].Requests[j].Addr {
				same = false
				break
			}
		}
	}
	// Identical launches would mean the per-launch seeds are not applied;
	// statistically the streams should differ somewhere.
	if same {
		t.Error("re-launched kernel clones are bitwise identical")
	}
}
