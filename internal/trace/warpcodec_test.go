package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/uteda/gmap/internal/rng"
)

func sampleWarpFile() *WarpFile {
	wf := &WarpFile{Name: "proxy", GridDim: 2, BlockDim: 64}
	for w := 0; w < 4; w++ {
		wt := WarpTrace{WarpID: w, Block: w / 2}
		for j := 0; j < 10; j++ {
			wt.Requests = append(wt.Requests, Request{
				PC:      uint64(0x100 + 8*(j%3)),
				Addr:    uint64(0x10000 + 128*j + 4096*w),
				Kind:    Kind(j % 2),
				WarpID:  w,
				Threads: 32,
			})
		}
		wf.Warps = append(wf.Warps, wt)
	}
	return wf
}

func TestWarpBinaryRoundTrip(t *testing.T) {
	wf := sampleWarpFile()
	var buf bytes.Buffer
	if err := WriteWarpsBinary(&buf, wf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWarpsBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != wf.Name || got.GridDim != wf.GridDim || got.BlockDim != wf.BlockDim {
		t.Fatalf("metadata lost: %+v", got)
	}
	if len(got.Warps) != len(wf.Warps) {
		t.Fatalf("warp count %d != %d", len(got.Warps), len(wf.Warps))
	}
	for w := range wf.Warps {
		if got.Warps[w].WarpID != wf.Warps[w].WarpID || got.Warps[w].Block != wf.Warps[w].Block {
			t.Fatalf("warp %d header differs", w)
		}
		for j := range wf.Warps[w].Requests {
			if got.Warps[w].Requests[j] != wf.Warps[w].Requests[j] {
				t.Fatalf("warp %d request %d: %+v != %+v",
					w, j, got.Warps[w].Requests[j], wf.Warps[w].Requests[j])
			}
		}
	}
}

func TestWarpBinaryBadMagic(t *testing.T) {
	if _, err := ReadWarpsBinary(strings.NewReader("GMAPTRC1xxxx")); err != ErrBadWarpMagic {
		t.Errorf("err = %v, want ErrBadWarpMagic", err)
	}
}

func TestWarpBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWarpsBinary(&buf, sampleWarpFile()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 10, len(full) / 2, len(full) - 1} {
		if _, err := ReadWarpsBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestWarpBinaryEmpty(t *testing.T) {
	wf := &WarpFile{Name: "empty", GridDim: 1, BlockDim: 32, Warps: []WarpTrace{{WarpID: 0}}}
	var buf bytes.Buffer
	if err := WriteWarpsBinary(&buf, wf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWarpsBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Warps) != 1 || len(got.Warps[0].Requests) != 0 {
		t.Errorf("empty warp lost: %+v", got)
	}
}

func TestWarpBinaryCompact(t *testing.T) {
	r := rng.New(3)
	wf := &WarpFile{Name: "big", GridDim: 1, BlockDim: 32}
	wt := WarpTrace{WarpID: 0}
	addr := uint64(0x100000)
	for j := 0; j < 1000; j++ {
		addr += 128
		wt.Requests = append(wt.Requests, Request{PC: 0x10, Addr: addr, Kind: Load, Threads: int(r.Uint64n(32)) + 1})
	}
	wf.Warps = append(wf.Warps, wt)
	var buf bytes.Buffer
	if err := WriteWarpsBinary(&buf, wf); err != nil {
		t.Fatal(err)
	}
	// Strided requests should cost only a few bytes each.
	if perReq := buf.Len() / 1000; perReq > 8 {
		t.Errorf("encoded size %dB/request, want <= 8", perReq)
	}
}

func TestWarpBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nWarps, nReq uint8) bool {
		r := rng.New(seed)
		wf := &WarpFile{Name: "prop", GridDim: 2, BlockDim: 64}
		for w := 0; w < int(nWarps%6)+1; w++ {
			wt := WarpTrace{WarpID: w, Block: w / 2}
			for j := 0; j < int(nReq%24); j++ {
				wt.Requests = append(wt.Requests, Request{
					PC:      r.Uint64(),
					Addr:    r.Uint64(),
					Kind:    Kind(r.Intn(3)),
					WarpID:  w,
					Threads: int(r.Uint64n(33)),
				})
			}
			wf.Warps = append(wf.Warps, wt)
		}
		var buf bytes.Buffer
		if err := WriteWarpsBinary(&buf, wf); err != nil {
			return false
		}
		got, err := ReadWarpsBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Warps) != len(wf.Warps) {
			return false
		}
		for w := range wf.Warps {
			if len(got.Warps[w].Requests) != len(wf.Warps[w].Requests) {
				return false
			}
			for j := range wf.Warps[w].Requests {
				if got.Warps[w].Requests[j] != wf.Warps[w].Requests[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
