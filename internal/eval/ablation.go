package eval

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"github.com/uteda/gmap/internal/core"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/synth"
	"github.com/uteda/gmap/internal/workloads"
)

// AblationVariant is one generator configuration in the ablation study.
type AblationVariant struct {
	Name string
	Abl  synth.Ablation
}

// AblationVariants returns the study's generator variants: the full
// generator, each mechanism removed in isolation, and the bare paper
// algorithm with every extension removed.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "full", Abl: synth.Ablation{}},
		{Name: "-windows", Abl: synth.Ablation{NoWindows: true}},
		{Name: "-templates", Abl: synth.Ablation{NoTemplates: true}},
		{Name: "-runlengths", Abl: synth.Ablation{NoRunLengths: true}},
		{Name: "-reuse", Abl: synth.Ablation{NoReuse: true}},
		{Name: "bare-alg1", Abl: synth.Ablation{NoWindows: true, NoTemplates: true, NoRunLengths: true}},
	}
}

// AblationRow is one benchmark's L1/L2 miss-rate error (percentage
// points, default configuration) under each generator variant.
type AblationRow struct {
	Benchmark string
	// L1Err and L2Err are parallel to AblationVariants().
	L1Err []float64
	L2Err []float64
}

// AblationResult carries the study.
type AblationResult struct {
	Variants []string
	Rows     []AblationRow
	// AvgL1 and AvgL2 are per-variant averages over benchmarks.
	AvgL1, AvgL2 []float64
	Elapsed      time.Duration
}

// Ablation measures how much each beyond-paper generation mechanism
// (footprint windows, per-cluster templates, stride run lengths, reuse
// replay) contributes to clone accuracy, by disabling them one at a time
// (DESIGN.md §5).
func (o *Options) Ablation() (*AblationResult, error) {
	o.fillDefaults()
	start := time.Now()
	variants := AblationVariants()
	res := &AblationResult{
		AvgL1: make([]float64, len(variants)),
		AvgL2: make([]float64, len(variants)),
	}
	for _, v := range variants {
		res.Variants = append(res.Variants, v.Name)
	}
	// The study sweeps Figure 6a's 30 L1 configurations per variant. To
	// keep the cost tractable it defaults to a representative subset
	// spanning the behaviour classes (cyclic high-reuse, overlapping
	// sweeps, multi-phase, irregular) unless the caller chose benchmarks.
	benchmarks := o.Benchmarks
	if len(benchmarks) == len(workloads.Names()) {
		benchmarks = []string{"kmeans", "cp", "bp", "heartwall", "srad", "bfs"}
	}
	gens := L1Sweep(o.Cores)
	for _, name := range benchmarks {
		base, err := core.Prepare(name, o.Scale, profiler.DefaultConfig(),
			synth.Options{Seed: o.Seed, ScaleFactor: o.ScaleFactor})
		if err != nil {
			return nil, err
		}
		// The original side is variant-independent: simulate the sweep once.
		origL1 := make([]float64, len(gens))
		origL2 := make([]float64, len(gens))
		for gi, g := range gens {
			cfg, err := g.Make()
			if err != nil {
				return nil, err
			}
			om, err := base.SimulateOriginal(cfg)
			if err != nil {
				return nil, err
			}
			origL1[gi], origL2[gi] = om.L1MissRate(), om.L2MissRate()
		}
		row := AblationRow{Benchmark: name}
		for vi, v := range variants {
			proxy, err := synth.Generate(base.Profile, synth.Options{
				Seed: o.Seed, ScaleFactor: o.ScaleFactor, Ablation: v.Abl,
			})
			if err != nil {
				return nil, fmt.Errorf("eval ablation %s/%s: %w", name, v.Name, err)
			}
			w := *base
			w.Proxy = proxy
			var l1, l2 float64
			for gi, g := range gens {
				cfg, err := g.Make()
				if err != nil {
					return nil, err
				}
				pm, err := w.SimulateProxy(cfg)
				if err != nil {
					return nil, err
				}
				l1 += stats.AbsError(origL1[gi], pm.L1MissRate()) / float64(len(gens))
				l2 += stats.AbsError(origL2[gi], pm.L2MissRate()) / float64(len(gens))
			}
			row.L1Err = append(row.L1Err, l1)
			row.L2Err = append(row.L2Err, l2)
			res.AvgL1[vi] += l1 / float64(len(benchmarks))
			res.AvgL2[vi] += l2 / float64(len(benchmarks))
		}
		res.Rows = append(res.Rows, row)
		o.logf("ablation %-12s full %5.2fpp  bare %5.2fpp (L1, 30-config sweep)",
			name, row.L1Err[0], row.L1Err[len(row.L1Err)-1])
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// WriteAblation renders the study.
func WriteAblation(w io.Writer, r *AblationResult) error {
	fmt.Fprintln(w, "== ablation: contribution of each generation mechanism ==")
	fmt.Fprintln(w, "L1 miss-rate error (percentage points), averaged over the 30-configuration L1 sweep:")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, v := range r.Variants {
		fmt.Fprintf(tw, "\t%s", v)
	}
	fmt.Fprintln(tw)
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s", row.Benchmark)
		for _, e := range row.L1Err {
			fmt.Fprintf(tw, "\t%.2f", e)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "AVERAGE")
	for _, e := range r.AvgL1 {
		fmt.Fprintf(tw, "\t%.2f", e)
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "AVERAGE L2")
	for _, e := range r.AvgL2 {
		fmt.Fprintf(tw, "\t%.2f", e)
	}
	fmt.Fprintln(tw)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "(regenerated in %v)\n\n", r.Elapsed.Round(time.Millisecond))
	return nil
}
