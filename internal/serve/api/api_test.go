package api_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/eval"
	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/serve"
	"github.com/uteda/gmap/internal/serve/api"
	"github.com/uteda/gmap/internal/serve/queue"
	"github.com/uteda/gmap/internal/serve/store"
	"github.com/uteda/gmap/internal/workloads"
)

// env is one live service over a real listener.
type env struct {
	t      *testing.T
	root   string
	reg    *obs.Registry
	svc    *api.Service
	srv    *serve.Server
	cancel context.CancelFunc
}

func newEnv(t *testing.T, root string, qopts queue.Options, start bool) *env {
	t.Helper()
	reg := obs.New()
	st, err := store.Open(root, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := api.New(api.Options{
		Store:        st,
		Queue:        qopts,
		SweepWorkers: 2,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := serve.Start(ctx, "api test", "127.0.0.1:0", svc.Handler())
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	e := &env{t: t, root: root, reg: reg, svc: svc, srv: srv, cancel: cancel}
	if start {
		if err := svc.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		cancel()
		_ = srv.Shutdown()
		svc.Wait()
	})
	return e
}

// shutdown stops the env's service and server, draining workers.
func (e *env) shutdown() {
	e.cancel()
	_ = e.srv.Shutdown()
	e.svc.Wait()
}

func (e *env) url(path string) string { return e.srv.URL() + path }

// do issues a request and decodes the JSON response body into out
// (skipped when out is nil), returning the status code.
func (e *env) do(method, path string, body io.Reader, out interface{}, hdr map[string]string) (int, http.Header) {
	e.t.Helper()
	req, err := http.NewRequest(method, e.url(path), body)
	if err != nil {
		e.t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			e.t.Fatalf("%s %s: decoding %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// jobView mirrors the wire form the handlers emit.
type jobView struct {
	Job         string `json:"job"`
	Kind        string `json:"kind"`
	Status      string `json:"status"`
	Tenant      string `json:"tenant"`
	Cached      bool   `json:"cached"`
	Error       string `json:"error"`
	ProfileHash string `json:"profile_hash"`
	ConfigHash  string `json:"config_hash"`
	ResultURL   string `json:"result_url"`
}

// uploadProfile profiles the named builtin benchmark locally and POSTs
// the profile, returning its content hash.
func (e *env) uploadProfile(t *testing.T, benchmark string) string {
	t.Helper()
	spec, ok := workloads.ByName(benchmark)
	if !ok {
		t.Fatalf("unknown benchmark %s", benchmark)
	}
	k, err := spec.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profiler.ProfileKernel(k, profiler.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Profile string `json:"profile"`
	}
	code, _ := e.do("POST", "/v1/profiles", &buf, &resp, nil)
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("profile upload: status %d", code)
	}
	return resp.Profile
}

// waitDone polls a job until it reaches done (or fails the test on a
// terminal non-done status or timeout).
func (e *env) waitDone(t *testing.T, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v jobView
		code, _ := e.do("GET", "/v1/jobs/"+id, nil, &v, nil)
		if code != http.StatusOK {
			t.Fatalf("poll job %s: status %d", id, code)
		}
		switch v.Status {
		case api.StatusDone:
			return v
		case api.StatusFailed, api.StatusCanceled:
			t.Fatalf("job %s reached %s: %s", id, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.Status, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestEndToEndCloneAndCache drives the full loop over a real listener:
// upload profile → submit clone → poll → fetch result, then resubmits
// the identical spec and asserts it is served from the result cache
// without consuming a queue slot.
func TestEndToEndCloneAndCache(t *testing.T) {
	e := newEnv(t, t.TempDir(), queue.Options{Workers: 1, Depth: 8}, true)
	hash := e.uploadProfile(t, "aes")

	specJSON := fmt.Sprintf(`{"kind":"clone","profile":%q,"seed":7,"scale_factor":4}`, hash)
	var sub jobView
	code, _ := e.do("POST", "/v1/jobs", strings.NewReader(specJSON), &sub, nil)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	if sub.Status != api.StatusQueued && sub.Status != api.StatusRunning {
		t.Fatalf("first submit status %q", sub.Status)
	}
	done := e.waitDone(t, sub.Job, 30*time.Second)
	if done.ResultURL == "" {
		t.Fatal("done job carries no result URL")
	}

	var result struct {
		Kind     string `json:"kind"`
		Name     string `json:"name"`
		Warps    int    `json:"warps"`
		Requests int    `json:"requests"`
		ProxyB64 string `json:"proxy_b64"`
	}
	code, _ = e.do("GET", done.ResultURL, nil, &result, nil)
	if code != http.StatusOK {
		t.Fatalf("result fetch: status %d", code)
	}
	if result.Kind != "clone" || result.Warps == 0 || result.ProxyB64 == "" {
		t.Fatalf("implausible clone result: %+v", result)
	}

	admittedBefore := e.reg.CounterTotal("serve.queue.admitted")
	hitsBefore := e.reg.CounterTotal("serve.api.cache_hits")

	// Bit-for-bit identical result on resubmission, served from cache.
	first, err := os.ReadFile(resultFile(e.root, done))
	if err != nil {
		t.Fatal(err)
	}
	var resub jobView
	code, _ = e.do("POST", "/v1/jobs", strings.NewReader(specJSON), &resub, nil)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d (want 200 cache hit)", code)
	}
	if resub.Status != api.StatusDone || !resub.Cached {
		t.Fatalf("resubmit: status=%s cached=%v, want done from cache", resub.Status, resub.Cached)
	}
	if resub.Job != sub.Job {
		t.Fatalf("identical spec mapped onto a different job: %s vs %s", resub.Job, sub.Job)
	}
	second, err := os.ReadFile(resultFile(e.root, done))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached result bytes changed across resubmission")
	}
	if got := e.reg.CounterTotal("serve.queue.admitted"); got != admittedBefore {
		t.Fatalf("resubmission consumed a queue slot: admitted %d -> %d", admittedBefore, got)
	}
	if got := e.reg.CounterTotal("serve.api.cache_hits"); got != hitsBefore+1 {
		t.Fatalf("cache_hits %d -> %d, want +1", hitsBefore, got)
	}

	// A different seed is a different config hash: new job, no cache hit.
	var other jobView
	code, _ = e.do("POST", "/v1/jobs", strings.NewReader(
		fmt.Sprintf(`{"kind":"clone","profile":%q,"seed":8,"scale_factor":4}`, hash)), &other, nil)
	if code != http.StatusAccepted {
		t.Fatalf("different-seed submit: status %d", code)
	}
	if other.Job == sub.Job {
		t.Fatal("different seed collided onto the same job id")
	}
	e.waitDone(t, other.Job, 30*time.Second)
}

// resultFile locates the on-disk cache entry for a done job.
func resultFile(root string, v jobView) string {
	return root + "/results/" + v.ProfileHash + "." + v.ConfigHash + ".json"
}

// TestSweepMatchesDirectEval submits a sweep job and asserts the
// service's report is byte-identical to running the evaluation harness
// directly with the same options — the cache-transparency guarantee.
func TestSweepMatchesDirectEval(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep e2e is seconds-long; skipped under -short")
	}
	e := newEnv(t, t.TempDir(), queue.Options{Workers: 1, Depth: 8}, true)
	spec := `{"kind":"sweep","experiment":"table1","benchmarks":["aes","bfs"],"seed":1,"scale_factor":4}`
	var sub jobView
	code, _ := e.do("POST", "/v1/jobs", strings.NewReader(spec), &sub, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	done := e.waitDone(t, sub.Job, 3*time.Minute)

	var result struct {
		Kind       string `json:"kind"`
		Experiment string `json:"experiment"`
		Report     string `json:"report"`
	}
	code, _ = e.do("GET", done.ResultURL, nil, &result, nil)
	if code != http.StatusOK {
		t.Fatalf("result fetch: status %d", code)
	}

	var direct bytes.Buffer
	opts := eval.Options{
		Benchmarks:  []string{"aes", "bfs"},
		Seed:        1,
		Scale:       1,
		ScaleFactor: 4,
		NoTimings:   true,
	}
	if err := opts.Run(&direct, "table1"); err != nil {
		t.Fatal(err)
	}
	if result.Report != direct.String() {
		t.Fatalf("service report differs from direct evaluation:\n--- service ---\n%s\n--- direct ---\n%s", result.Report, direct.String())
	}
}

// TestBackpressure429 is the admission-control contract: with depth 1
// and a held worker, a burst of 100 concurrent distinct submissions
// gets exactly one admission and 99 rejections carrying 429 +
// Retry-After.
func TestBackpressure429(t *testing.T) {
	e := newEnv(t, t.TempDir(), queue.Options{Workers: 1, Depth: 1}, false) // queue not started: nothing drains
	hash := e.uploadProfile(t, "aes")

	const burst = 100
	var wg sync.WaitGroup
	codes := make([]int, burst)
	retryAfter := make([]string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := fmt.Sprintf(`{"kind":"clone","profile":%q,"seed":%d}`, hash, i+1)
			code, hdr := e.do("POST", "/v1/jobs", strings.NewReader(spec), nil, nil)
			codes[i] = code
			retryAfter[i] = hdr.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	admitted, rejected := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusAccepted:
			admitted++
		case http.StatusTooManyRequests:
			rejected++
			if retryAfter[i] == "" {
				t.Fatalf("429 response %d carried no Retry-After", i)
			}
		default:
			t.Fatalf("submission %d: unexpected status %d", i, code)
		}
	}
	if admitted != 1 || rejected != burst-1 {
		t.Fatalf("admitted=%d rejected=%d, want 1/%d", admitted, rejected, burst-1)
	}
	// Rejected submissions must not leave journal debris behind: exactly
	// the one admitted job remains journaled.
	entries, err := os.ReadDir(e.root + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("journal holds %d entries after the burst, want 1", len(entries))
	}
}

// TestSubmitValidation: malformed specs are rejected with 400 before
// touching the queue.
func TestSubmitValidation(t *testing.T) {
	e := newEnv(t, t.TempDir(), queue.Options{Workers: 1, Depth: 4}, true)
	cases := []string{
		`{"kind":"teleport"}`,
		`{"kind":"clone"}`,
		fmt.Sprintf(`{"kind":"clone","profile":%q}`, strings.Repeat("ab", 32)),
		`{"kind":"sweep","experiment":"fig99"}`,
		`{"kind":"sweep","experiment":"fig6a","benchmarks":["nonesuch"]}`,
		`{"kind":"sweep","experiment":"fig6a","profile":"abc"}`,
		`{"kind":"clone","profile":"x","unknown_field":1}`,
	}
	for _, c := range cases {
		var resp struct {
			Error string `json:"error"`
		}
		code, _ := e.do("POST", "/v1/jobs", strings.NewReader(c), &resp, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("spec %s: status %d, want 400", c, code)
		}
		if resp.Error == "" {
			t.Fatalf("spec %s: no error message", c)
		}
	}
	// Bad tenant names are rejected too.
	code, _ := e.do("POST", "/v1/jobs", strings.NewReader(`{"kind":"sweep","experiment":"table2"}`), nil,
		map[string]string{"X-Gmap-Tenant": "no spaces allowed"})
	if code != http.StatusBadRequest {
		t.Fatalf("bad tenant: status %d, want 400", code)
	}
}

// TestRestartRecovery: a job journaled by a process that died before
// (or while) executing it is re-enqueued and completed by the next
// process over the same store.
func TestRestartRecovery(t *testing.T) {
	root := t.TempDir()

	// Process A: admit a job but never start the queue — the journal
	// entry is durable, the work never happens (a crash immediately
	// after admission).
	a := newEnv(t, root, queue.Options{Workers: 1, Depth: 4}, false)
	spec := `{"kind":"sweep","experiment":"table2"}`
	var sub jobView
	code, _ := a.do("POST", "/v1/jobs", strings.NewReader(spec), &sub, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	a.shutdown()

	// Process B: recovery re-enqueues and completes the journaled job.
	b := newEnv(t, root, queue.Options{Workers: 1, Depth: 4}, true)
	done := b.waitDone(t, sub.Job, time.Minute)
	if done.Job != sub.Job {
		t.Fatalf("recovered job id %s, want %s", done.Job, sub.Job)
	}
	if got := b.reg.CounterTotal("serve.api.recovered_jobs"); got != 1 {
		t.Fatalf("recovered_jobs = %d, want 1", got)
	}
	entries, err := os.ReadDir(root + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("journal holds %d entries after recovery, want 0", len(entries))
	}

	// Process C: the same submission is now a pure cache hit — no queue
	// admission, served as done immediately.
	b.shutdown()
	c := newEnv(t, root, queue.Options{Workers: 1, Depth: 4}, true)
	var resub jobView
	code, _ = c.do("POST", "/v1/jobs", strings.NewReader(spec), &resub, nil)
	if code != http.StatusOK || resub.Status != api.StatusDone || !resub.Cached {
		t.Fatalf("post-restart resubmit: code=%d status=%s cached=%v", code, resub.Status, resub.Cached)
	}
	if got := c.reg.CounterTotal("serve.queue.admitted"); got != 0 {
		t.Fatalf("cache hit consumed a queue slot (admitted=%d)", got)
	}
}

// TestCancelQueuedJob: cancelling a queued job finalizes it without
// execution and retires its journal entry.
func TestCancelQueuedJob(t *testing.T) {
	e := newEnv(t, t.TempDir(), queue.Options{Workers: 1, Depth: 4}, false) // never drains
	spec := `{"kind":"sweep","experiment":"table2"}`
	var sub jobView
	code, _ := e.do("POST", "/v1/jobs", strings.NewReader(spec), &sub, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	var canceled jobView
	code, _ = e.do("DELETE", "/v1/jobs/"+sub.Job, nil, &canceled, nil)
	if code != http.StatusOK || canceled.Status != api.StatusCanceled {
		t.Fatalf("cancel: code=%d status=%s", code, canceled.Status)
	}
	entries, err := os.ReadDir(e.root + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("journal holds %d entries after cancel, want 0", len(entries))
	}
	code, _ = e.do("DELETE", "/v1/jobs/"+strings.Repeat("00", 12), nil, nil, nil)
	if code != http.StatusNotFound {
		t.Fatalf("cancel of unknown job: status %d", code)
	}
}

// TestObservabilitySurface: the obs plane shares the port with the API.
func TestObservabilitySurface(t *testing.T) {
	e := newEnv(t, t.TempDir(), queue.Options{Workers: 1, Depth: 4}, true)
	e.uploadProfile(t, "aes")
	resp, err := http.Get(e.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "serve_store_profiles_stored") {
		t.Fatalf("/metrics lacks store counters:\n%s", body)
	}
	var prog struct {
		Queue queue.Stats    `json:"queue"`
		Jobs  map[string]int `json:"jobs"`
	}
	code, _ := e.do("GET", "/progress", nil, &prog, nil)
	if code != http.StatusOK {
		t.Fatalf("/progress: status %d", code)
	}
	if prog.Queue.Workers != 1 {
		t.Fatalf("progress queue census: %+v", prog.Queue)
	}
}
