package eval

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// renderFig serializes a figure so byte-level equality checks catch any
// ordering or numeric divergence. Exec/Elapsed vary run to run, so the
// trailer line is stripped.
func renderFig(t *testing.T, f *FigureResult) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFigure(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if i := strings.Index(out, "(regenerated in"); i >= 0 {
		out = out[:i]
	}
	return out
}

// TestParallelMatchesSerial is the tentpole's determinism contract: a
// figure evaluated with many workers must produce byte-identical report
// rows to a serial run, because every simulation point owns its seeded
// RNG.
func TestParallelMatchesSerial(t *testing.T) {
	serialOpts := quickOpts()
	serialOpts.Workers = 1
	serial, err := serialOpts.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	parallelOpts := quickOpts()
	parallelOpts.Workers = 8
	parallel, err := parallelOpts.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if s, p := renderFig(t, serial), renderFig(t, parallel); s != p {
		t.Errorf("parallel run diverged from serial:\nserial:\n%s\nparallel:\n%s", s, p)
	}
}

func TestCheckpointResumeSkipsFinishedPoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.ckpt")

	first := quickOpts()
	first.Benchmarks = []string{"nn"}
	first.Checkpoint = path
	f1, err := first.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if st := first.ExecStats(); st.Completed != 30 || st.Skipped != 0 {
		t.Fatalf("first run stats = %+v", st)
	}

	second := quickOpts()
	second.Benchmarks = []string{"nn"}
	second.Checkpoint = path
	second.Resume = true
	f2, err := second.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if st := second.ExecStats(); st.Skipped != 30 || st.Completed != 0 {
		t.Errorf("resume did not skip finished points: %+v", st)
	}
	if renderFig(t, f1) != renderFig(t, f2) {
		t.Error("resumed figure differs from original")
	}
}

// TestResumeOnlyRunsMissingPoints interrupts a sweep logically by
// checkpointing a strict subset (a one-benchmark run), then resuming a
// two-benchmark run: only the new benchmark's points may execute.
func TestResumeOnlyRunsMissingPoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.ckpt")

	partial := quickOpts()
	partial.Benchmarks = []string{"nn"}
	partial.Checkpoint = path
	if _, err := partial.Fig6a(); err != nil {
		t.Fatal(err)
	}

	full := quickOpts() // nn + scalarprod
	full.Checkpoint = path
	full.Resume = true
	fig, err := full.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	st := full.ExecStats()
	if st.Skipped != 30 || st.Completed != 30 {
		t.Errorf("want 30 resumed + 30 fresh points, got %+v", st)
	}
	// The resumed figure must match a from-scratch run exactly.
	fresh := quickOpts()
	ref, err := fresh.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if renderFig(t, fig) != renderFig(t, ref) {
		t.Error("resumed two-benchmark figure differs from a fresh run")
	}
}

func TestEvalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: nothing should run
	opts := quickOpts()
	opts.Context = ctx
	_, err := opts.Fig6a()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := opts.ExecStats(); st.Completed != 0 {
		t.Errorf("cancelled run executed %d jobs", st.Completed)
	}
}

// TestProgressDeliveryIsSerialized drives the mutex-guarded sink from
// concurrent jobs; the race detector (CI runs -race) flags unguarded
// delivery, and the assembled lines must never interleave.
func TestProgressDeliveryIsSerialized(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	opts := quickOpts()
	opts.Workers = 8
	opts.Progress = func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, format)
	}
	if _, err := opts.Fig6a(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("no progress delivered")
	}
}
