// Multi-kernel application cloning (the paper's Figure 1b program model).
//
// Real GPU programs are sequences of kernel launches — iterative solvers
// re-launch the same kernel, multi-phase algorithms alternate kernels —
// and the launches share cache and DRAM state. This example clones the
// kmeans *application* (three launches of the assignment kernel over the
// same feature array) and shows that the clone reproduces the
// cross-launch reuse: the second and third launches hit in the L2 on the
// lines the first launch brought in.
//
// Run with: go run ./examples/application
package main

import (
	"fmt"
	"log"

	"github.com/uteda/gmap"
)

func main() {
	w, err := gmap.PrepareApp("kmeans", 1, gmap.DefaultProfileConfig(),
		gmap.GenerateOptions{Seed: 1, ScaleFactor: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application %q: %d launches of %d distinct kernel(s)\n",
		w.Name, len(w.Profile.Launches), len(w.Profile.Kernels))

	cfg := gmap.DefaultSimConfig()
	orig, err := w.SimulateOriginal(cfg)
	if err != nil {
		log.Fatal(err)
	}
	clone, err := w.SimulateProxy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// For contrast: one launch in isolation misses the L2 far more — the
	// application's later launches reuse what the first brought in.
	tr, err := gmap.BenchmarkTrace("kmeans", 1)
	if err != nil {
		log.Fatal(err)
	}
	single, err := gmap.SimulateTrace(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-26s %10s %10s\n", "metric", "original", "clone")
	row := func(name string, a, b float64) { fmt.Printf("%-26s %10.4f %10.4f\n", name, a, b) }
	row("app L1 miss rate", orig.L1MissRate(), clone.L1MissRate())
	row("app L2 miss rate", orig.L2MissRate(), clone.L2MissRate())
	fmt.Printf("%-26s %10.4f %10s\n", "single-launch L2 miss", single.L2MissRate(), "-")
	fmt.Println("\nthe app's L2 miss rate sits below the single launch's because")
	fmt.Println("launches 2 and 3 hit on launch 1's lines — and the clone keeps that")
}
