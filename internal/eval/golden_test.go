package eval

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/uteda/gmap/internal/core"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/synth"
)

var update = flag.Bool("update", false, "rewrite golden files with current results")

// goldenMetrics is the pinned end-to-end fingerprint of one simulation:
// every headline metric of the pipeline (trace -> profile -> proxy ->
// simulate), for both sides of the workload.
type goldenMetrics struct {
	Cycles            uint64  `json:"cycles"`
	Requests          uint64  `json:"requests"`
	L1MissRate        float64 `json:"l1_miss_rate"`
	L2MissRate        float64 `json:"l2_miss_rate"`
	RowBufferLocality float64 `json:"row_buffer_locality"`
	AvgQueueLen       float64 `json:"avg_queue_len"`
	AvgReadLatency    float64 `json:"avg_read_latency"`
	DRAMReads         uint64  `json:"dram_reads"`
	DRAMWrites        uint64  `json:"dram_writes"`
}

func snapshot(m memsim.Metrics) goldenMetrics {
	return goldenMetrics{
		Cycles:            m.Cycles,
		Requests:          m.Requests,
		L1MissRate:        m.L1MissRate(),
		L2MissRate:        m.L2MissRate(),
		RowBufferLocality: m.DRAM.RowBufferLocality(),
		AvgQueueLen:       m.DRAM.AvgQueueLen(),
		AvgReadLatency:    m.DRAM.AvgReadLatency(),
		DRAMReads:         m.DRAM.Reads,
		DRAMWrites:        m.DRAM.Writes,
	}
}

// TestGoldenNN pins the nn workload's end-to-end metrics at a fixed seed.
// The whole pipeline is deterministic, so any drift here means a
// behavioural change somewhere in profiling, synthesis, coalescing,
// caching, scheduling or the DRAM model — exactly the kind of silent
// divergence the differential suites localize. Refresh intentionally
// with `go test ./internal/eval -run TestGoldenNN -update`.
func TestGoldenNN(t *testing.T) {
	w, err := core.Prepare("nn", 1, profiler.DefaultConfig(), synth.Options{Seed: 1, ScaleFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := memsim.DefaultConfig()
	cfg.NumCores = 4
	om, err := w.SimulateOriginal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := w.SimulateProxy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := struct {
		Original goldenMetrics `json:"original"`
		Proxy    goldenMetrics `json:"proxy"`
	}{snapshot(om), snapshot(pm)}

	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	path := filepath.Join("testdata", "golden_nn.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("end-to-end metrics drifted from golden file %s\ngot:\n%s\nwant:\n%s\n(run with -update if the change is intentional)",
			path, data, want)
	}
}
