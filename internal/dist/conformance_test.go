package dist

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/serve/api"
)

// quickSpec is the sweep spec the conformance suite distributes: one
// benchmark keeps a full fig6 sweep at 30 jobs.
func quickSpec(experiment string) api.JobSpec {
	return api.JobSpec{
		Kind:        api.KindSweep,
		Experiment:  experiment,
		Benchmarks:  []string{"nn"},
		Scale:       1,
		ScaleFactor: 4,
		Seed:        1,
		Cores:       4,
	}
}

// serialReport runs the sweep in-process, single-node — the reference
// bytes every distributed execution must reproduce.
func serialReport(t *testing.T, experiment string) string {
	t.Helper()
	spec := quickSpec(experiment)
	if err := spec.Normalize(nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	eo := spec.EvalOptions()
	if err := eo.Run(&buf, experiment); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// distReport runs the sweep through a real coordinator over real HTTP
// with n concurrent worker processes-in-miniature, and returns the
// merged report plus the coordinator (still open) for post-mortems.
func distReport(t *testing.T, experiment string, n int) (string, *Coordinator) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	c, err := NewCoordinator(CoordinatorOptions{
		Spec:     quickSpec(experiment),
		Parts:    4,
		LeaseTTL: time.Minute,
		Ledger:   filepath.Join(t.TempDir(), "ledger.jsonl"),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := c.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = RunWorker(ctx, WorkerOptions{
				Coordinator: srv.URL(),
				Name:        fmt.Sprintf("w%d", i),
				Workers:     2,
				Poll:        10 * time.Millisecond,
				Logf:        t.Logf,
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := c.WaitDone(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), c
}

// TestConformanceFig6a is the tentpole contract: the fig6a sweep split
// across N ∈ {1,2,4} workers over real HTTP merges to bytes identical
// to the serial run, and the replay's obs snapshot is identical across
// N too.
func TestConformanceFig6a(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep conformance; skipped in -short")
	}
	serial := serialReport(t, "fig6a")
	var snapshots []string
	for _, n := range []int{1, 2, 4} {
		got, c := distReport(t, "fig6a", n)
		if got != serial {
			t.Errorf("N=%d merged report differs from serial:\n--- dist ---\n%s--- serial ---\n%s", n, got, serial)
		}
		st := c.StatusSnapshot()
		if !st.Done || st.DoneJobs != 30 {
			t.Errorf("N=%d status %+v, want done with 30 jobs", n, st)
		}

		// Obs identity: a registry observing the merged-ledger replay
		// must serialize identically no matter how many workers fed the
		// ledger.
		eo, err := c.Replay()
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.New()
		eo.Obs = reg
		var buf bytes.Buffer
		if err := eo.Run(&buf, "fig6a"); err != nil {
			t.Fatal(err)
		}
		var snap bytes.Buffer
		if err := reg.WriteJSON(&snap); err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, snap.String())
	}
	for i := 1; i < len(snapshots); i++ {
		if snapshots[i] != snapshots[0] {
			t.Errorf("replay obs snapshot differs between N=1 and N=%d:\n%s\nvs\n%s",
				[]int{1, 2, 4}[i], snapshots[0], snapshots[i])
		}
	}
}

// TestConformanceFig7Fig8 covers the remaining figure sweeps of the
// Fig6–8 family at N=2: same byte-identity contract, including fig8
// where the wall-clock speedup axis must have been dropped for the
// merge to be reproducible at all.
func TestConformanceFig7Fig8(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep conformance; skipped in -short")
	}
	for _, experiment := range []string{"fig7", "fig8"} {
		experiment := experiment
		t.Run(experiment, func(t *testing.T) {
			serial := serialReport(t, experiment)
			got, _ := distReport(t, experiment, 2)
			if got != serial {
				t.Errorf("merged %s differs from serial:\n--- dist ---\n%s--- serial ---\n%s", experiment, got, serial)
			}
		})
	}
}
