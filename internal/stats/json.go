package stats

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// MarshalJSON encodes the histogram as a JSON object mapping decimal keys
// to counts, e.g. {"-128":3,"128":97}. The encoding is stable because
// encoding/json sorts object keys.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	m := make(map[string]uint64, len(h.counts))
	for k, v := range h.counts {
		m[strconv.FormatInt(k, 10)] = v
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes the object form produced by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	h.counts = make(map[int64]uint64, len(m))
	h.total = 0
	for ks, v := range m {
		k, err := strconv.ParseInt(ks, 10, 64)
		if err != nil {
			return fmt.Errorf("stats: bad histogram key %q: %w", ks, err)
		}
		h.counts[k] = v
		h.total += v
	}
	return nil
}
