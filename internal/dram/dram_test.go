package dram

import (
	"testing"
	"testing/quick"

	"github.com/uteda/gmap/internal/rng"
)

func mustController(t testing.TB, cfg Config) *Controller {
	t.Helper()
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func simpleCfg() Config {
	return Config{
		Channels: 1, RanksPerChannel: 1, BanksPerRank: 2,
		RowBytes: 1024, TxBytes: 128, BusBytes: 8,
		TRCD: 10, TCAS: 10, TRP: 10, TRAS: 25,
		Sched: FRFCFS, Mapping: RoBaRaCoCh,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultGDDR3().Validate(); err != nil {
		t.Errorf("GDDR3 default invalid: %v", err)
	}
	if err := GDDR5(8, 8, ChRaBaRoCo).Validate(); err != nil {
		t.Errorf("GDDR5 invalid: %v", err)
	}
	bad := simpleCfg()
	bad.Channels = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-pow2 channels accepted")
	}
	bad = simpleCfg()
	bad.RowBytes = 64 // smaller than TxBytes
	if err := bad.Validate(); err == nil {
		t.Error("row smaller than transaction accepted")
	}
	bad = simpleCfg()
	bad.TRCD = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero timing accepted")
	}
}

func TestDecomposeRoundTripDistinct(t *testing.T) {
	// Distinct lines must map to distinct coordinates.
	f := func(seed uint64) bool {
		cfg := DefaultGDDR3()
		r := rng.New(seed)
		seen := make(map[Coord]uint64)
		for i := 0; i < 500; i++ {
			addr := r.Uint64n(1<<30) &^ uint64(cfg.TxBytes-1)
			co := cfg.Decompose(addr)
			if prev, dup := seen[co]; dup && prev != addr {
				return false
			}
			seen[co] = addr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMappingChannelInterleaving(t *testing.T) {
	cfg := DefaultGDDR3() // RoBaRaCoCh: channel in lowest line bits
	for i := 0; i < 16; i++ {
		co := cfg.Decompose(uint64(i * cfg.TxBytes))
		if co.Channel != i%cfg.Channels {
			t.Errorf("line %d -> channel %d, want %d", i, co.Channel, i%cfg.Channels)
		}
	}
	cfg.Mapping = ChRaBaRoCo // column in lowest bits: consecutive lines same channel
	first := cfg.Decompose(0)
	for i := 1; i < cfg.RowBytes/cfg.TxBytes; i++ {
		co := cfg.Decompose(uint64(i * cfg.TxBytes))
		if co.Channel != first.Channel || co.Row != first.Row {
			t.Errorf("ChRaBaRoCo: line %d left row/channel: %+v vs %+v", i, co, first)
		}
		if co.Col != i {
			t.Errorf("ChRaBaRoCo: line %d column = %d", i, co.Col)
		}
	}
}

func TestRowHitTiming(t *testing.T) {
	c := mustController(t, simpleCfg())
	// Two reads to the same row, same bank, back to back.
	c.Enqueue(0, false, 0)
	c.Enqueue(128, false, 0)
	comps := c.Drain()
	if len(comps) != 2 {
		t.Fatalf("%d completions", len(comps))
	}
	// First: closed row -> tRCD + tCAS + burst = 10+10+8 = 28.
	if comps[0].Done != 28 || comps[0].RowHit {
		t.Errorf("first completion = %+v, want done 28, miss", comps[0])
	}
	// Second: row hit, but bus serialization dominates: data start >=
	// busFree(28); done = 28+8 = 36... row hit issues at bank ready (20)
	// + tCAS = 30; bus free at 28 -> dataStart 30, done 38.
	if !comps[1].RowHit {
		t.Errorf("second access missed open row: %+v", comps[1])
	}
	if comps[1].Done <= comps[0].Done {
		t.Errorf("bus not serialized: %+v", comps)
	}
}

func TestRowConflictSlower(t *testing.T) {
	cfg := simpleCfg()
	cfg.Mapping = ChRaBaRoCo // keep everything in one bank
	hitC := mustController(t, cfg)
	hitC.Enqueue(0, false, 0)
	hitC.Enqueue(128, false, 0) // same row
	hits := hitC.Drain()

	confC := mustController(t, cfg)
	confC.Enqueue(0, false, 0)
	confC.Enqueue(1<<22, false, 0) // same bank, different row
	confs := confC.Drain()

	if confs[1].Done <= hits[1].Done {
		t.Errorf("row conflict (%d) not slower than row hit (%d)",
			confs[1].Done, hits[1].Done)
	}
	if confC.Stats.RowConflicts != 1 {
		t.Errorf("RowConflicts = %d, want 1", confC.Stats.RowConflicts)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := simpleCfg()
	cfg.Mapping = ChRaBaRoCo
	c := mustController(t, cfg)
	c.Enqueue(0, false, 0)                     // opens row 0
	_ = c.AdvanceTo(100)                       // service it
	idConflict := c.Enqueue(1<<22, false, 100) // different row
	idHit := c.Enqueue(256, false, 100)        // row 0 again
	comps := c.Drain()
	if len(comps) != 2 {
		t.Fatalf("%d completions", len(comps))
	}
	if comps[0].ID != idHit || comps[1].ID != idConflict {
		t.Errorf("FR-FCFS order = %v, want row hit (%d) first", comps, idHit)
	}
	if !comps[0].RowHit {
		t.Error("preferred request was not a row hit")
	}
}

func TestFCFSKeepsArrivalOrder(t *testing.T) {
	cfg := simpleCfg()
	cfg.Mapping = ChRaBaRoCo
	cfg.Sched = FCFS
	c := mustController(t, cfg)
	c.Enqueue(0, false, 0)
	_ = c.AdvanceTo(100)
	idConflict := c.Enqueue(1<<22, false, 100)
	c.Enqueue(256, false, 100) // would be a row hit, must wait
	comps := c.Drain()
	if comps[0].ID != idConflict {
		t.Errorf("FCFS reordered: first completion %+v", comps[0])
	}
}

func TestFRFCFSImprovesRBL(t *testing.T) {
	// Interleave two row streams on one bank: FR-FCFS batches row hits,
	// FCFS ping-pongs. Compare RBL.
	run := func(p SchedPolicy) float64 {
		cfg := simpleCfg()
		cfg.Mapping = ChRaBaRoCo
		cfg.Sched = p
		c := mustController(t, cfg)
		for i := 0; i < 32; i++ {
			c.Enqueue(uint64(i%8)*128, false, 0)       // row 0
			c.Enqueue(1<<22+uint64(i%8)*128, false, 0) // row N
		}
		c.Drain()
		return c.Stats.RowBufferLocality()
	}
	fr, fc := run(FRFCFS), run(FCFS)
	if fr <= fc {
		t.Errorf("FR-FCFS RBL (%.3f) not better than FCFS (%.3f)", fr, fc)
	}
	if fr < 0.8 {
		t.Errorf("FR-FCFS RBL = %.3f, expected near 1 for two batchable streams", fr)
	}
}

func TestWiderBusFaster(t *testing.T) {
	run := func(busBytes int) uint64 {
		cfg := simpleCfg()
		cfg.BusBytes = busBytes
		c := mustController(t, cfg)
		for i := 0; i < 64; i++ {
			c.Enqueue(uint64(i)*128, false, 0)
		}
		comps := c.Drain()
		var last uint64
		for _, co := range comps {
			if co.Done > last {
				last = co.Done
			}
		}
		return last
	}
	if narrow, wide := run(4), run(16); wide >= narrow {
		t.Errorf("16B bus (%d cycles) not faster than 4B bus (%d cycles)", wide, narrow)
	}
}

func TestMoreChannelsFaster(t *testing.T) {
	run := func(channels int) uint64 {
		cfg := DefaultGDDR3()
		cfg.Channels = channels
		c := mustController(t, cfg)
		for i := 0; i < 256; i++ {
			c.Enqueue(uint64(i)*128, false, 0)
		}
		comps := c.Drain()
		var last uint64
		for _, co := range comps {
			if co.Done > last {
				last = co.Done
			}
		}
		return last
	}
	if one, eight := run(1), run(8); eight >= one {
		t.Errorf("8 channels (%d) not faster than 1 (%d)", eight, one)
	}
}

func TestQueueLengthSampling(t *testing.T) {
	c := mustController(t, simpleCfg())
	// Burst of simultaneous arrivals: queue builds up.
	for i := 0; i < 16; i++ {
		c.Enqueue(uint64(i)*4096, false, 0)
	}
	c.Drain()
	if c.Stats.AvgQueueLen() <= 1 {
		t.Errorf("AvgQueueLen = %.2f for a 16-deep burst", c.Stats.AvgQueueLen())
	}
	// Widely spaced arrivals: queue stays empty.
	c.Reset()
	for i := 0; i < 16; i++ {
		c.Enqueue(uint64(i)*4096, false, uint64(i)*10000)
		c.AdvanceTo(uint64(i) * 10000)
	}
	c.Drain()
	if c.Stats.AvgQueueLen() != 0 {
		t.Errorf("spaced arrivals AvgQueueLen = %.2f, want 0", c.Stats.AvgQueueLen())
	}
}

func TestLatencyAccounting(t *testing.T) {
	c := mustController(t, simpleCfg())
	c.Enqueue(0, false, 0)
	c.Enqueue(1<<20, true, 0)
	c.Drain()
	if c.Stats.Reads != 1 || c.Stats.Writes != 1 {
		t.Fatalf("counts = %+v", c.Stats)
	}
	if c.Stats.AvgReadLatency() <= 0 || c.Stats.AvgWriteLatency() <= 0 {
		t.Error("latencies not recorded")
	}
}

func TestAdvanceToDeliversIncrementally(t *testing.T) {
	c := mustController(t, simpleCfg())
	c.Enqueue(0, false, 0)
	if got := c.AdvanceTo(5); len(got) != 0 {
		t.Errorf("completion before service finished: %v", got)
	}
	if c.InFlight() != 1 {
		t.Errorf("InFlight = %d", c.InFlight())
	}
	got := c.AdvanceTo(100)
	if len(got) != 1 {
		t.Fatalf("completion not delivered: %v", got)
	}
	if c.InFlight() != 0 {
		t.Errorf("InFlight after delivery = %d", c.InFlight())
	}
	// Idempotent: nothing more to deliver.
	if got := c.AdvanceTo(200); len(got) != 0 {
		t.Errorf("duplicate delivery: %v", got)
	}
}

func TestAllRequestsComplete(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultGDDR3()
		c, err := NewController(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		const n = 300
		for i := 0; i < n; i++ {
			c.Enqueue(r.Uint64n(1<<28), r.Bool(0.3), uint64(i)*3)
		}
		comps := c.Drain()
		if len(comps) != n || c.InFlight() != 0 {
			return false
		}
		// Every completion after its arrival.
		for _, co := range comps {
			if co.Done <= co.Arrival {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStatsZeroSafe(t *testing.T) {
	var s Stats
	if s.RowBufferLocality() != 0 || s.AvgQueueLen() != 0 ||
		s.AvgReadLatency() != 0 || s.AvgWriteLatency() != 0 {
		t.Error("zero stats not 0")
	}
}

func TestStrings(t *testing.T) {
	if RoBaRaCoCh.String() != "RoBaRaCoCh" || ChRaBaRoCo.String() != "ChRaBaRoCo" {
		t.Error("mapping strings wrong")
	}
	if FRFCFS.String() != "fr-fcfs" || FCFS.String() != "fcfs" {
		t.Error("policy strings wrong")
	}
}

func BenchmarkController(b *testing.B) {
	c := mustController(b, DefaultGDDR3())
	r := rng.New(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 28)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Enqueue(addrs[i&(len(addrs)-1)], false, uint64(i))
		if i&63 == 0 {
			c.AdvanceTo(uint64(i))
		}
	}
	c.Drain()
}

func TestRefreshClosesRows(t *testing.T) {
	cfg := simpleCfg()
	cfg.TREFI = 100
	cfg.TRFC = 20
	c := mustController(t, cfg)
	// Open row 0 and hit it once before the refresh boundary.
	c.Enqueue(0, false, 0)
	c.Enqueue(128, false, 0)
	if got := c.AdvanceTo(90); len(got) != 2 {
		t.Fatalf("pre-refresh completions = %d", len(got))
	}
	if c.Stats.RowHits != 1 {
		t.Fatalf("RowHits = %d, want 1 before refresh", c.Stats.RowHits)
	}
	// A request after tREFI must see the row closed again (activation, not
	// a hit) and be delayed past the tRFC window.
	c.Enqueue(256, false, 150)
	comps := c.Drain()
	if len(comps) != 1 {
		t.Fatalf("post-refresh completions = %d", len(comps))
	}
	if comps[0].RowHit {
		t.Error("row survived an all-bank refresh")
	}
	if c.Stats.Refreshes == 0 {
		t.Error("no refresh counted")
	}
}

func TestRefreshDelaysService(t *testing.T) {
	base := simpleCfg()
	withRef := base
	withRef.TREFI = 50
	withRef.TRFC = 40
	run := func(cfg Config) uint64 {
		c := mustController(t, cfg)
		var last uint64
		for i := 0; i < 64; i++ {
			c.Enqueue(uint64(i)*4096, false, uint64(i)*10)
		}
		for _, co := range c.Drain() {
			if co.Done > last {
				last = co.Done
			}
		}
		return last
	}
	if plain, ref := run(base), run(withRef); ref <= plain {
		t.Errorf("refresh run (%d) not slower than refresh-free (%d)", ref, plain)
	}
}

func TestRefreshConfigValidation(t *testing.T) {
	bad := simpleCfg()
	bad.TREFI = 100
	bad.TRFC = 0
	if err := bad.Validate(); err == nil {
		t.Error("tREFI without tRFC accepted")
	}
	bad.TREFI = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative tREFI accepted")
	}
}

// TestAdvanceIntoMatchesAdvanceTo: the caller-owned-buffer batch API must
// deliver exactly the per-step completions of AdvanceTo — same order,
// same contents — while reusing the passed buffer across steps.
func TestAdvanceIntoMatchesAdvanceTo(t *testing.T) {
	mk := func() *Controller { return mustController(t, simpleCfg()) }
	enq := func(c *Controller, step uint64) {
		// A mix of same-row, cross-bank and write traffic per step.
		c.Enqueue(step*128, false, step*7)
		c.Enqueue(step*4096+128, step%3 == 0, step*7)
	}
	a, b := mk(), mk()
	var buf []Completion
	for step := uint64(0); step < 50; step++ {
		enq(a, step)
		enq(b, step)
		now := step * 11
		want := a.AdvanceTo(now)
		buf = b.AdvanceInto(now, buf[:0])
		if len(want) != len(buf) {
			t.Fatalf("step %d: AdvanceInto returned %d completions, AdvanceTo %d", step, len(buf), len(want))
		}
		for i := range want {
			if want[i] != buf[i] {
				t.Fatalf("step %d completion %d: %+v vs %+v", step, i, buf[i], want[i])
			}
		}
	}
	wantRest := a.Drain()
	gotRest := b.Drain()
	if len(wantRest) != len(gotRest) {
		t.Fatalf("drain length: %d vs %d", len(gotRest), len(wantRest))
	}
	for i := range wantRest {
		if wantRest[i] != gotRest[i] {
			t.Fatalf("drain completion %d: %+v vs %+v", i, gotRest[i], wantRest[i])
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged:\n AdvanceTo:   %+v\n AdvanceInto: %+v", a.Stats, b.Stats)
	}
}
