package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || !almostEq(r, 1) {
		t.Errorf("Pearson = %v, %v; want 1", r, err)
	}
}

func TestPearsonPerfectNegative(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{8, 6, 4, 2}
	r, _ := Pearson(x, y)
	if !almostEq(r, -1) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	r, err := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Errorf("flat series Pearson = %v, %v; want 0, nil", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLength {
		t.Errorf("length mismatch error = %v", err)
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
}

func TestPearsonSymmetric(t *testing.T) {
	f := func(x, y []float64) bool {
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		if n < 2 {
			return true
		}
		x, y = x[:n], y[:n]
		for _, v := range append(append([]float64{}, x...), y...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		a, err1 := Pearson(x, y)
		b, err2 := Pearson(y, x)
		if err1 != nil || err2 != nil {
			return err1 == err2
		}
		return math.Abs(a-b) < 1e-6 && a >= -1.0000001 && a <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPctError(t *testing.T) {
	cases := []struct{ want, got, out float64 }{
		{10, 10, 0},
		{10, 11, 10},
		{10, 9, 10},
		{0, 0, 0},
		{0, 5, 100},
		{0.5, 0.25, 50},
	}
	for _, c := range cases {
		if e := PctError(c.want, c.got); !almostEq(e, c.out) {
			t.Errorf("PctError(%v,%v) = %v, want %v", c.want, c.got, e, c.out)
		}
	}
}

func TestAbsError(t *testing.T) {
	if e := AbsError(0.50, 0.55); !almostEq(e, 5) {
		t.Errorf("AbsError = %v, want 5", e)
	}
}

func TestMeanAbsPctError(t *testing.T) {
	m, err := MeanAbsPctError([]float64{10, 20}, []float64{11, 18})
	if err != nil || !almostEq(m, 10) {
		t.Errorf("MeanAbsPctError = %v, %v", m, err)
	}
	if _, err := MeanAbsPctError([]float64{1}, []float64{}); err != ErrLength {
		t.Error("length mismatch not reported")
	}
	if _, err := MeanAbsPctError(nil, nil); err == nil {
		t.Error("empty input not reported")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5) {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); !almostEq(s, 2) {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice mean/std not 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !almostEq(g, 10) {
		t.Errorf("GeoMean = %v", g)
	}
	if g := GeoMean([]float64{0, 10}); !almostEq(g, 10) {
		t.Errorf("GeoMean skipping zeros = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestHistDistance(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.AddN(1, 10)
	b.AddN(1, 99)
	if d := HistDistance(a, b); !almostEq(d, 0) {
		t.Errorf("same-shape distance = %v", d)
	}
	c := NewHistogram()
	c.AddN(2, 5)
	if d := HistDistance(a, c); !almostEq(d, 1) {
		t.Errorf("disjoint distance = %v", d)
	}
	if d := HistDistance(NewHistogram(), NewHistogram()); d != 0 {
		t.Errorf("empty-empty distance = %v", d)
	}
	if d := HistDistance(a, NewHistogram()); d != 1 {
		t.Errorf("empty-vs-nonempty distance = %v", d)
	}
}

func TestHistDistanceBounds(t *testing.T) {
	f := func(ka, kb []int64) bool {
		a, b := NewHistogram(), NewHistogram()
		for _, k := range ka {
			a.Add(k % 16)
		}
		for _, k := range kb {
			b.Add(k % 16)
		}
		d := HistDistance(a, b)
		return d >= 0 && d <= 1.0000001 && almostEq(HistDistance(a, a), 0) || (a.Total() == 0 && d <= 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || !almostEq(s.Mean, 2) {
		t.Errorf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v", z)
	}
}
