package memsim

import (
	"fmt"

	"github.com/uteda/gmap/internal/obs"
)

// coreTally is one core's plain hot-path counters, padded to a cache line
// so adjacent cores never false-share under the parallel engine. Each
// slot is written only by the goroutine visiting its core (the scheduler
// loop serially, the owning SM worker in parallel) and summed in core
// order by flush(), so the published totals are exact and identical
// between the engines.
type coreTally struct {
	nStallMSHR    uint64
	nStallBarrier uint64
	nStallMem     uint64
	nStallSleep   uint64
	nIdleEmpty    uint64
	nRequests     uint64
	nBarriers     uint64
	_             uint64 // pad to 64 bytes
}

// simObs holds the simulator's pre-resolved observability handles. A nil
// *simObs is the disabled state: every call site guards with one
// predictable branch (either `s.obs != nil` around a sampling block or a
// nil-safe handle method) and the simulation itself never reads obs
// state, so metrics are bit-identical with observability on or off — a
// property enforced by TestObsInvariance.
type simObs struct {
	// Per-core cycle-sampled series.
	queueDepth []*obs.Sampler // resident (active) warps per core
	mshrDepth  []*obs.Sampler // in-flight MSHR entries per core

	// Whole-machine cycle-sampled series.
	l1MissRate *obs.Sampler // cumulative L1 miss rate over time
	l2MissRate *obs.Sampler
	inFlight   *obs.Sampler // outstanding DRAM reads (flights)

	// Per-launch series: one point per kernel launch, keyed by the
	// launch's retirement cycle.
	launchL1 *obs.Sampler
	launchL2 *obs.Sampler

	// Scheduler stall reasons, counted per core-cycle that fails to
	// issue.
	stallMSHR    *obs.Counter // issue slot lost to a full MSHR file
	stallBarrier *obs.Counter // every candidate warp parked at a barrier
	stallMem     *obs.Counter // every candidate warp blocked on DRAM
	stallSleep   *obs.Counter // warps exist but become ready later
	idleEmpty    *obs.Counter // core has no resident warps at all

	requests      *obs.Counter
	launches      *obs.Counter
	barriers      *obs.Counter // barrier arrivals
	bankConflicts *obs.Counter // same-cycle accesses to one L2 bank

	// bankStamp[b] = cycle+1 of bank b's last access this cycle; a repeat
	// stamp within one cycle is a conflict. L2 accesses happen only at
	// the shared-state drain, so the stamps (and the conflict tally) stay
	// single-writer under both engines.
	bankStamp []uint64

	// Hot-path tallies, sharded per core so SM workers count shard-local;
	// flush() publishes the core-order sums to the registry counters
	// after Run returns. nBankConflict stays a scalar: it is only written
	// at the drain.
	tally         []coreTally
	nBankConflict uint64

	// Incremental per-core occupancy shadows, maintained at warp state
	// transitions so stall classification is O(1) instead of rescanning
	// the core's warps every stalled cycle. waiting[c] counts warps
	// blocked on DRAM, blocked[c] counts warps parked at a barrier.
	// Like the tallies, each slot has a single writer per visit: the
	// goroutine visiting core c (DRAM-wait transitions) while barriers
	// stay core-local by construction (a block never spans cores).
	waiting []int
	blocked []int
}

// newSimObs resolves every handle against r, or returns nil (disabled)
// when r is nil.
func newSimObs(r *obs.Registry, cores, banks int) *simObs {
	if r == nil {
		return nil
	}
	o := &simObs{
		queueDepth: make([]*obs.Sampler, cores),
		mshrDepth:  make([]*obs.Sampler, cores),
		l1MissRate: r.Sampler("memsim.l1_miss_rate", 0),
		l2MissRate: r.Sampler("memsim.l2_miss_rate", 0),
		inFlight:   r.Sampler("memsim.dram_inflight", 0),
		launchL1:   r.Sampler("memsim.launch.l1_miss_rate", 0),
		launchL2:   r.Sampler("memsim.launch.l2_miss_rate", 0),

		stallMSHR:    r.Counter("memsim.sched.stall_mshr"),
		stallBarrier: r.Counter("memsim.sched.stall_barrier"),
		stallMem:     r.Counter("memsim.sched.stall_mem"),
		stallSleep:   r.Counter("memsim.sched.stall_sleep"),
		idleEmpty:    r.Counter("memsim.sched.idle_empty"),

		requests:      r.Counter("memsim.requests"),
		launches:      r.Counter("memsim.launches"),
		barriers:      r.Counter("memsim.sched.barrier_arrivals"),
		bankConflicts: r.Counter("memsim.l2.bank_conflicts"),

		bankStamp: make([]uint64, banks),
		tally:     make([]coreTally, cores),
		waiting:   make([]int, cores),
		blocked:   make([]int, cores),
	}
	for c := 0; c < cores; c++ {
		o.queueDepth[c] = r.Sampler(fmt.Sprintf("memsim.core%d.warp_queue_depth", c), 0)
		o.mshrDepth[c] = r.Sampler(fmt.Sprintf("memsim.core%d.mshr_inflight", c), 0)
	}
	return o
}

// sampleDue reports whether this cycle is a sampling cycle. Every memsim
// sampler is offered the same cycle sequence, so they all advance in
// lockstep: one Due check on the unconditionally sampled dram_inflight
// series gates the whole pass, and the steady-state cost per scheduler
// iteration is a single atomic load.
func (o *simObs) sampleDue(cycle uint64) bool {
	return o.inFlight.Due(cycle)
}

// sampleCore records core c's series for one sampling cycle. The sampled
// state is core-owned, so under the parallel engine each SM worker
// samples its own cores — after applying the cycle's routed completions,
// matching the serial engine's completion-then-sample order.
func (s *Simulator) sampleCore(c int, cycle uint64) {
	o := s.obs
	core := &s.cores[c]
	o.queueDepth[c].Sample(cycle, float64(len(core.active)))
	o.mshrDepth[c].Sample(cycle, float64(core.mshr.InFlight()))
}

// sampleMachine records the whole-machine series for one sampling cycle.
// The inputs — cache hit/miss statistics and the outstanding-flight count
// — are untouched by completion delivery, so the parallel coordinator
// samples them after routing completions and before releasing the
// workers, which is exactly the serial engine's read point.
func (s *Simulator) sampleMachine(cycle uint64) {
	o := s.obs
	var l1, l1acc uint64
	for c := range s.cores {
		l1 += s.cores[c].l1.Stats.Misses
		l1acc += s.cores[c].l1.Stats.Accesses
	}
	if l1acc > 0 {
		o.l1MissRate.Sample(cycle, float64(l1)/float64(l1acc))
	}
	if l2 := s.l2.Stats(); l2.Accesses > 0 {
		o.l2MissRate.Sample(cycle, l2.MissRate())
	}
	o.inFlight.Sample(cycle, float64(len(s.flightCore)))
}

// sampleCycle records every series for one simulated cycle (serial
// engine; the parallel engine splits the same work between workers and
// coordinator through sampleCore/sampleMachine).
func (s *Simulator) sampleCycle(cycle uint64) {
	if !s.obs.sampleDue(cycle) {
		return
	}
	for c := range s.cores {
		s.sampleCore(c, cycle)
	}
	s.sampleMachine(cycle)
}

// noteStall classifies why core c failed to issue this cycle, with
// priority mem > barrier > sleep. O(1): the per-core occupancy shadows
// are maintained incrementally at warp state transitions, so stalled
// phases never rescan the core's resident warps.
func (s *Simulator) noteStall(c int) {
	o := s.obs
	switch {
	case len(s.cores[c].active) == 0:
		o.tally[c].nIdleEmpty++
	case o.waiting[c] > 0:
		o.tally[c].nStallMem++
	case o.blocked[c] > 0:
		o.tally[c].nStallBarrier++
	default:
		o.tally[c].nStallSleep++
	}
}

// noteL2Bank flags same-cycle accesses to one L2 bank as bank conflicts.
// Stamps are cycle+1 so the zero value never aliases cycle 0.
func (o *simObs) noteL2Bank(bank int, cycle uint64) {
	if o.bankStamp[bank] == cycle+1 {
		o.nBankConflict++
		return
	}
	o.bankStamp[bank] = cycle + 1
}

// flush publishes the hot-path tallies to their registry counters and
// zeroes them. Run defers it, so the counters hold the run's totals on
// both the success and the no-forward-progress return paths. Summing the
// per-core shards in core order keeps the totals independent of which
// goroutine counted what.
func (o *simObs) flush() {
	var sum coreTally
	for c := range o.tally {
		t := &o.tally[c]
		sum.nStallMSHR += t.nStallMSHR
		sum.nStallBarrier += t.nStallBarrier
		sum.nStallMem += t.nStallMem
		sum.nStallSleep += t.nStallSleep
		sum.nIdleEmpty += t.nIdleEmpty
		sum.nRequests += t.nRequests
		sum.nBarriers += t.nBarriers
		o.tally[c] = coreTally{}
	}
	o.stallMSHR.Add(sum.nStallMSHR)
	o.stallBarrier.Add(sum.nStallBarrier)
	o.stallMem.Add(sum.nStallMem)
	o.stallSleep.Add(sum.nStallSleep)
	o.idleEmpty.Add(sum.nIdleEmpty)
	o.requests.Add(sum.nRequests)
	o.barriers.Add(sum.nBarriers)
	o.bankConflicts.Add(o.nBankConflict)
	o.nBankConflict = 0
}

// noteLaunch records one retired launch's metric window.
func (o *simObs) noteLaunch(lm LaunchMetrics, cycle uint64) {
	o.launches.Inc()
	if lm.L1.Accesses > 0 {
		o.launchL1.Sample(cycle, lm.L1.MissRate())
	}
	if lm.L2.Accesses > 0 {
		o.launchL2.Sample(cycle, lm.L2.MissRate())
	}
}
