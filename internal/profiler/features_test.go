package profiler

import (
	"bytes"
	"testing"

	"github.com/uteda/gmap/internal/trace"
	"github.com/uteda/gmap/internal/workloads"
)

// stridedTrace builds a trace where every thread sweeps a fixed window:
// per-thread offsets are identical across warps (deterministic).
func stridedTrace(nWarps, iters int) *trace.KernelTrace {
	k := &trace.KernelTrace{Name: "sweep", GridDim: nWarps, BlockDim: 32}
	for tid := 0; tid < nWarps*32; tid++ {
		tt := trace.ThreadTrace{ThreadID: tid}
		for j := 0; j < iters; j++ {
			tt.Accesses = append(tt.Accesses, trace.Access{
				PC: 0x10, Addr: uint64(0x100000 + 4*tid + 128*j), Kind: trace.Load})
		}
		k.Threads = append(k.Threads, tt)
	}
	return k
}

func TestFootprintWindowCaptured(t *testing.T) {
	p, err := ProfileKernel(stridedTrace(4, 16), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst := p.Insts[p.InstIndex(0x10)]
	// Per warp: 16 executions at +128 from the first: offsets 0..15*128.
	if inst.OffLo != 0 || inst.OffHi != 15*128 {
		t.Errorf("footprint window = [%d, %d], want [0, %d]", inst.OffLo, inst.OffHi, 15*128)
	}
}

func TestAnchorWindowCaptured(t *testing.T) {
	p, err := ProfileKernel(stridedTrace(4, 16), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst := p.Insts[p.InstIndex(0x10)]
	// Warp anchors at +128 per warp: spread [0, 3*128].
	if inst.AnchorLo != 0 || inst.AnchorHi != 3*128 {
		t.Errorf("anchor window = [%d, %d], want [0, %d]", inst.AnchorLo, inst.AnchorHi, 3*128)
	}
}

func TestDeterminismDetected(t *testing.T) {
	p, err := ProfileKernel(stridedTrace(4, 16), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Insts[p.InstIndex(0x10)].Deterministic {
		t.Error("warp-invariant instruction not marked deterministic")
	}
}

func TestDeterminismRejectsIrregular(t *testing.T) {
	// Per-warp offsets differ: warp w's second access jumps by 128*w.
	k := &trace.KernelTrace{Name: "irr", GridDim: 4, BlockDim: 32}
	for tid := 0; tid < 128; tid++ {
		w := tid / 32
		tt := trace.ThreadTrace{ThreadID: tid}
		tt.Accesses = append(tt.Accesses,
			trace.Access{PC: 0x10, Addr: uint64(0x100000 + 4*tid), Kind: trace.Load},
			trace.Access{PC: 0x10, Addr: uint64(0x100000 + 4*tid + 128*(w+1)*7), Kind: trace.Load},
		)
		k.Threads = append(k.Threads, tt)
	}
	p, err := ProfileKernel(k, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[p.InstIndex(0x10)].Deterministic {
		t.Error("warp-varying instruction marked deterministic")
	}
}

func TestDeterminismRejectsCountMismatch(t *testing.T) {
	// Warp 0 executes the PC twice, warp 1 once.
	k := &trace.KernelTrace{Name: "cnt", GridDim: 2, BlockDim: 32}
	for tid := 0; tid < 64; tid++ {
		tt := trace.ThreadTrace{ThreadID: tid}
		tt.Accesses = append(tt.Accesses, trace.Access{PC: 0x10, Addr: uint64(0x1000 + 4*tid), Kind: trace.Load})
		if tid < 32 {
			tt.Accesses = append(tt.Accesses, trace.Access{PC: 0x10, Addr: uint64(0x2000 + 4*tid), Kind: trace.Load})
		}
		k.Threads = append(k.Threads, tt)
	}
	p, err := ProfileKernel(k, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[p.InstIndex(0x10)].Deterministic {
		t.Error("count-mismatched instruction marked deterministic")
	}
}

func TestRunLengthsCaptured(t *testing.T) {
	// Each warp: 3 sweeps of 8 x (+128) separated by a -640 reset:
	// run-length histogram for +128 must be dominated by 7 (8 executions
	// = 7 strides), and -1024 runs are singletons.
	k := &trace.KernelTrace{Name: "runs", GridDim: 1, BlockDim: 32}
	for tid := 0; tid < 32; tid++ {
		tt := trace.ThreadTrace{ThreadID: tid}
		for sweep := 0; sweep < 3; sweep++ {
			for j := 0; j < 8; j++ {
				tt.Accesses = append(tt.Accesses, trace.Access{
					PC: 0x20, Addr: uint64(0x100000 + 4*tid + 128*j + 256*sweep), Kind: trace.Load})
			}
		}
		k.Threads = append(k.Threads, tt)
	}
	p, err := ProfileKernel(k, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst := p.Insts[p.InstIndex(0x20)]
	up, ok := inst.Runs["128"]
	if !ok {
		t.Fatalf("no run histogram for +128: %v", inst.Runs)
	}
	if key, _, _ := up.Mode(); key != 7 {
		t.Errorf("dominant +128 run length = %d, want 7", key)
	}
	down, ok := inst.Runs["-640"]
	if !ok {
		t.Fatalf("no run histogram for the sweep reset: %v", inst.Runs)
	}
	if key, _, _ := down.Mode(); key != 1 {
		t.Errorf("reset run length = %d, want 1", key)
	}
}

func TestRunsSurviveJSON(t *testing.T) {
	s, _ := workloads.ByName("cp")
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileKernel(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Round trip through JSON.
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Insts {
		if len(got.Insts[i].Runs) != len(p.Insts[i].Runs) {
			t.Fatalf("inst %d runs lost: %d != %d", i, len(got.Insts[i].Runs), len(p.Insts[i].Runs))
		}
		if got.Insts[i].Deterministic != p.Insts[i].Deterministic {
			t.Fatalf("inst %d determinism flag lost", i)
		}
		if got.Insts[i].OffLo != p.Insts[i].OffLo || got.Insts[i].AnchorHi != p.Insts[i].AnchorHi {
			t.Fatalf("inst %d windows lost", i)
		}
	}
}

func TestCompressReuseBoundsProfile(t *testing.T) {
	s, _ := workloads.ByName("hotspot") // scatter: thousands of distinct distances
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ProfileKernel(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CompressReuse = true
	packed, err := ProfileKernel(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plainKeys, packedKeys := 0, 0
	for i := range plain.Profiles {
		plainKeys += plain.Profiles[i].Reuse.Len()
		packedKeys += packed.Profiles[i].Reuse.Len()
	}
	if packedKeys*4 > plainKeys {
		t.Errorf("compression weak: %d -> %d reuse keys", plainKeys, packedKeys)
	}
	// Shape must survive: the serialized sizes differ but the cold
	// fraction is identical (cold is -1, inside the exact band).
	for i := range plain.Profiles {
		a, b := plain.Profiles[i].Reuse, packed.Profiles[i].Reuse
		if a.Count(-1) != b.Count(-1) || a.Total() != b.Total() {
			t.Errorf("profile %d lost mass or cold count", i)
		}
	}
	// And the serialized profile shrinks measurably.
	var pb, cb bytes.Buffer
	if err := plain.WriteJSON(&pb); err != nil {
		t.Fatal(err)
	}
	if err := packed.WriteJSON(&cb); err != nil {
		t.Fatal(err)
	}
	if cb.Len() >= pb.Len() {
		t.Errorf("compressed profile (%dB) not smaller than plain (%dB)", cb.Len(), pb.Len())
	}
}

func TestCompressReuseCloneAccuracy(t *testing.T) {
	// Log-binned reuse must not meaningfully change generated stream
	// reuse for a high-reuse workload.
	s, _ := workloads.ByName("kmeans")
	tr, err := s.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CompressReuse = true
	p, err := ProfileKernel(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reused, total uint64
	for _, pp := range p.Profiles {
		total += pp.Reuse.Total()
		reused += pp.Reuse.Total() - pp.Reuse.Count(-1)
	}
	if frac := float64(reused) / float64(total); frac < 0.9 {
		t.Errorf("compressed kmeans reuse fraction = %.3f", frac)
	}
}
