package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock yields timestamps advancing by a fixed step per call, so the
// exports below are bit-for-bit reproducible.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(1700000000, 0).UTC()
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

// buildSample constructs the fixed span tree used by the golden tests:
// a sweep root with two jobs, one with a nested phase carrying cycles,
// plus an instant marker.
func buildSample() *Tracer {
	tr := NewWithOptions(Options{Now: fakeClock(100 * time.Microsecond)})
	sweep := tr.Root("eval.sweep", String("experiment", "fig6a"))
	job1 := sweep.Child("runner.job", String("key", "kmeans/orig"), Int("attempt", 1))
	phase := job1.Child("memsim.run")
	phase.SetCycles(0, 4096)
	phase.End()
	job1.End()
	job2 := sweep.Child("runner.job", String("key", "kmeans/clone"))
	job2.Set(Float("err", 0.0125))
	job2.End()
	tr.Instant("runner.checkpoint", Int("jobs", 2))
	sweep.End()
	return tr
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("GMAP_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with GMAP_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "chrome.json", buf.Bytes())
}

func TestWriteJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "events.jsonl", buf.Bytes())
}

// TestChromeSchema validates the structural contract Perfetto requires of
// a Chrome trace: top-level traceEvents array; every event has name,
// ph ∈ {X, i}, numeric ts, pid, tid; complete events carry dur; no
// negative timestamps. This is the JSON-schema check of the acceptance
// criteria, kept hand-rolled because the repo is stdlib-only.
func TestChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	for i, e := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid", "args"} {
			if _, ok := e[key]; !ok {
				t.Errorf("event %d missing %q: %v", i, key, e)
			}
		}
		ph, _ := e["ph"].(string)
		switch ph {
		case "X":
			dur, ok := e["dur"].(float64)
			if !ok || dur < 0 {
				t.Errorf("event %d: complete event needs non-negative dur, got %v", i, e["dur"])
			}
		case "i":
			if s, _ := e["s"].(string); s == "" {
				t.Errorf("event %d: instant event needs scope s", i)
			}
		default:
			t.Errorf("event %d: unexpected ph %q", i, ph)
		}
		if ts, ok := e["ts"].(float64); !ok || ts < 0 {
			t.Errorf("event %d: bad ts %v", i, e["ts"])
		}
	}
}

// TestEmptyChrome ensures a tracer with no events — and the nil tracer —
// still writes a loadable trace.
func TestEmptyChrome(t *testing.T) {
	for name, tr := range map[string]*Tracer{"empty": New(), "nil": nil} {
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var doc struct {
			TraceEvents []interface{} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: invalid JSON: %v", name, err)
		}
		if len(doc.TraceEvents) != 0 {
			t.Fatalf("%s: want empty traceEvents, got %d", name, len(doc.TraceEvents))
		}
		buf.Reset()
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatalf("%s jsonl: %v", name, err)
		}
		if buf.Len() != 0 {
			t.Fatalf("%s jsonl: want no output, got %q", name, buf.String())
		}
	}
}

// TestNilNoOp exercises the full handle surface on nil receivers; the
// test passes by not panicking.
func TestNilNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	s := tr.Root("x", String("k", "v"))
	if s != nil {
		t.Fatal("nil tracer handed out a non-nil span")
	}
	c := s.Child("y")
	if c != nil {
		t.Fatal("nil span handed out a non-nil child")
	}
	s.Set(Int("n", 1))
	s.SetCycles(1, 2)
	s.End()
	s.End()
	tr.Instant("z")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer retained state")
	}
}

func TestCapDropsBeyondLimit(t *testing.T) {
	tr := NewWithOptions(Options{Cap: 3, Now: fakeClock(time.Microsecond)})
	for i := 0; i < 10; i++ {
		tr.Root(fmt.Sprintf("s%d", i)).End()
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", tr.Dropped())
	}
}

// TestDoubleEnd verifies ending a span twice records it once.
func TestDoubleEnd(t *testing.T) {
	tr := NewWithOptions(Options{Now: fakeClock(time.Microsecond)})
	s := tr.Root("once")
	s.End()
	s.End()
	s.Set(String("late", "ignored"))
	s.SetCycles(9, 9)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	e := tr.Events()[0]
	if len(e.Attrs) != 0 || e.HasCycles {
		t.Errorf("post-End mutation leaked into the event: %+v", e)
	}
}

// TestEventOrderingDeterministic checks Events sorts by (start, id) so a
// shuffled end order still exports deterministically.
func TestEventOrderingDeterministic(t *testing.T) {
	tr := NewWithOptions(Options{Now: fakeClock(time.Microsecond)})
	a := tr.Root("a")
	b := tr.Root("b")
	c := tr.Root("c")
	// End out of order.
	c.End()
	a.End()
	b.End()
	ev := tr.Events()
	want := []string{"a", "b", "c"}
	for i, e := range ev {
		if e.Name != want[i] {
			t.Errorf("event %d = %q, want %q", i, e.Name, want[i])
		}
	}
}

// TestTracksSeparateRoots verifies each root gets its own tid lane and
// children inherit their root's lane.
func TestTracksSeparateRoots(t *testing.T) {
	tr := NewWithOptions(Options{Now: fakeClock(time.Microsecond)})
	r1 := tr.Root("r1")
	c1 := r1.Child("c1")
	r2 := tr.Root("r2")
	c1.End()
	r1.End()
	r2.End()
	byName := map[string]Event{}
	for _, e := range tr.Events() {
		byName[e.Name] = e
	}
	if byName["r1"].Track == byName["r2"].Track {
		t.Error("distinct roots share a track")
	}
	if byName["c1"].Track != byName["r1"].Track {
		t.Error("child is not on its root's track")
	}
	if byName["c1"].Parent != byName["r1"].ID {
		t.Error("child parent id mismatch")
	}
}

// TestConcurrentSpans hammers the tracer from many goroutines; run under
// -race this is the data-race check.
func TestConcurrentSpans(t *testing.T) {
	tr := New()
	root := tr.Root("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := root.Child("job", Int("g", int64(g)))
				s.SetCycles(uint64(i), uint64(i+1))
				s.End()
				tr.Instant("tick")
			}
		}(g)
	}
	wg.Wait()
	root.End()
	if got := tr.Len(); got != 8*50*2+1 {
		t.Errorf("Len = %d, want %d", got, 8*50*2+1)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("concurrent export is not valid JSON")
	}
}
