package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"time"

	"github.com/uteda/gmap/internal/fault"
)

// TailEntry is one checkpoint line observed by a CheckpointTail.
type TailEntry struct {
	Key     string
	Value   json.RawMessage
	Elapsed time.Duration
}

// A CheckpointTail incrementally follows a growing checkpoint (or lease
// journal) file: each Poll returns the entries whose lines completed
// since the previous Poll. It is the standby coordinator's view of the
// active one — progress observed through the shared ledger rather than
// the network — and the basis of the takeover veto: a ledger that is
// still growing means the active coordinator is alive no matter what
// its health endpoint says.
//
// The offset only ever advances past newline-terminated lines, so a
// torn final write (the active coordinator killed mid-flush) is simply
// re-read on the next Poll once — if ever — it completes. Lines that
// are newline-terminated but unparsable are skipped and counted, same
// as salvage. If the file shrinks below the offset (a compaction
// replaced it), the tail resets and re-reads from the start; callers
// using Poll for liveness treat any returned entries as activity, so a
// reset at worst errs on the side of "alive".
type CheckpointTail struct {
	fsys fault.FS
	path string
	off  int64
	// BadLines counts newline-terminated lines that did not parse.
	BadLines int
}

// NewCheckpointTail tails the checkpoint at path. fsys nil selects the
// real filesystem. The tail starts at offset zero: the first Poll
// returns everything already recorded.
func NewCheckpointTail(fsys fault.FS, path string) *CheckpointTail {
	if fsys == nil {
		fsys = fault.OS
	}
	return &CheckpointTail{fsys: fsys, path: path}
}

// Poll reads any lines completed since the last Poll. A missing file
// is not an error — it reports no entries until the file appears.
func (t *CheckpointTail) Poll() ([]TailEntry, error) {
	f, err := t.fsys.Open(t.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()

	// FS.Open returns a plain reader (no Seek), so the already-consumed
	// prefix is discarded by reading. Coming up short means the file
	// shrank under us: reset and re-read from the start.
	if t.off > 0 {
		n, err := io.CopyN(io.Discard, f, t.off)
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, err
		}
		if n < t.off {
			t.off = 0
			f.Close()
			return t.Poll()
		}
	}

	var out []TailEntry
	br := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		n := len(line)
		if n > 0 && line[n-1] == '\n' {
			t.off += int64(n)
			trimmed := bytes.TrimSpace(line)
			if len(trimmed) == 0 {
				continue
			}
			var e checkpointEntry
			if json.Unmarshal(trimmed, &e) == nil && e.Key != "" {
				out = append(out, TailEntry{
					Key:     e.Key,
					Value:   append(json.RawMessage(nil), e.Value...),
					Elapsed: time.Duration(e.ElapsedNS),
				})
			} else {
				t.BadLines++
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
	}
}

// Offset reports how many bytes of the file have been consumed.
func (t *CheckpointTail) Offset() int64 { return t.off }
