package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func promGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("GMAP_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with GMAP_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestWritePrometheusGolden freezes the exposition format: sorted
// deterministic ordering, sanitized gmap_ names, cumulative histogram
// buckets, gauge value/max pair, last series point as a gauge.
func TestWritePrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("dram.reads").Add(100)
	r.Counter("l2.bank0.writebacks").Add(3)
	g := r.Gauge("core0.mshrs_in_flight")
	g.Set(7)
	g.Set(2)
	h := r.Histogram("dram.read_latency")
	h.Observe(3)
	h.Observe(5)
	h.Observe(900)
	s := r.Sampler("ipc", 64)
	s.Sample(0, 0.5)
	s.Sample(64, 1.25)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	promGolden(t, "prom.txt", buf.Bytes())
}

// TestWritePrometheusEmpty covers the empty-registry and nil-registry
// cases: both must produce an empty (still valid) exposition.
func TestWritePrometheusEmpty(t *testing.T) {
	for name, r := range map[string]*Registry{"empty": New(), "nil": nil} {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() != 0 {
			t.Fatalf("%s: want no output, got %q", name, buf.String())
		}
	}
}

// TestPrometheusHistogramCumulative checks the le buckets are cumulative
// and capped by the +Inf bucket equal to the total count.
func TestPrometheusHistogramCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for i := 0; i < 10; i++ {
		h.Observe(uint64(1) << i)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `gmap_lat_bucket{le="+Inf"} 10`) {
		t.Errorf("missing +Inf bucket with total count:\n%s", out)
	}
	if !strings.Contains(out, "gmap_lat_count 10") {
		t.Errorf("missing _count:\n%s", out)
	}
	// Cumulative counts must be non-decreasing down the bucket list.
	prev := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "gmap_lat_bucket") || strings.Contains(line, "+Inf") {
			continue
		}
		var n int64
		if _, err := fmtSscan(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("cumulative count decreased: %q after %d", line, prev)
		}
		prev = n
	}
}

// fmtSscan pulls the trailing integer off an exposition line.
func fmtSscan(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	v, err := parseInt(line[i+1:])
	*n = v
	return 1, err
}

func parseInt(s string) (int64, error) {
	var v int64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, os.ErrInvalid
		}
		v = v*10 + int64(s[i]-'0')
	}
	return v, nil
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"dram.reads":        "gmap_dram_reads",
		"phase.eval-fig6a":  "gmap_phase_eval_fig6a",
		"l2.bank0.hits":     "gmap_l2_bank0_hits",
		"weird name/metric": "gmap_weird_name_metric",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
