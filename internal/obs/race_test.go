package obs

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// hammer runs fn on GOMAXPROCS goroutines, passing each its goroutine
// index, and waits for all of them.
func hammer(fn func(g int)) int {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fn(g)
		}(g)
	}
	wg.Wait()
	return workers
}

// TestCounterConcurrent demands exact counts under contention: counters
// are the ground truth tests compare against, so lost updates are not
// acceptable.
func TestCounterConcurrent(t *testing.T) {
	const perG = 10_000
	r := New()
	c := r.Counter("c")
	workers := hammer(func(int) {
		for i := 0; i < perG; i++ {
			c.Inc()
		}
	})
	if got, want := c.Value(), uint64(workers*perG); got != want {
		t.Fatalf("Value = %d, want %d", got, want)
	}
}

// TestGaugeConcurrent: balanced +1/-1 traffic must return to zero, and
// the high-water mark can never exceed the worker count (at most one
// outstanding +1 per goroutine).
func TestGaugeConcurrent(t *testing.T) {
	const perG = 10_000
	r := New()
	g := r.Gauge("g")
	workers := hammer(func(int) {
		for i := 0; i < perG; i++ {
			g.Add(1)
			g.Add(-1)
		}
	})
	if v := g.Value(); v != 0 {
		t.Fatalf("Value = %d, want 0", v)
	}
	if m := g.Max(); m < 1 || m > int64(workers) {
		t.Fatalf("Max = %d, want within [1, %d]", m, workers)
	}
}

// TestHistogramConcurrent demands exact count and sum under contention.
func TestHistogramConcurrent(t *testing.T) {
	const perG = 10_000
	r := New()
	h := r.Histogram("h")
	workers := hammer(func(g int) {
		for i := 0; i < perG; i++ {
			h.Observe(uint64(g + 1))
		}
	})
	if got, want := h.Count(), uint64(workers*perG); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	var wantSum uint64
	for g := 0; g < workers; g++ {
		wantSum += uint64(g+1) * perG
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %d, want %d", got, wantSum)
	}
	snap := snapshotHistogram(h)
	if snap.Min != 1 || snap.Max != uint64(workers) {
		t.Fatalf("min/max = %d/%d, want 1/%d", snap.Min, snap.Max, workers)
	}
	var bucketTotal uint64
	for _, b := range snap.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != h.Count() {
		t.Fatalf("bucket total %d != count %d", bucketTotal, h.Count())
	}
}

// TestSamplerConcurrent hammers one sampler with interleaved cycle
// streams. The retained series must stay within the capacity, strictly
// increase in cycle, and every point's value must be consistent with its
// cycle (writers publish value = 3*cycle).
func TestSamplerConcurrent(t *testing.T) {
	const cap = 64
	const cycles = 50_000
	r := New()
	s := r.Sampler("s", cap)
	hammer(func(int) {
		for c := uint64(0); c < cycles; c++ {
			s.Sample(c, float64(3*c))
		}
	})
	pts := s.Points()
	if len(pts) == 0 || len(pts) > cap {
		t.Fatalf("retained %d points, want 1..%d", len(pts), cap)
	}
	for i, p := range pts {
		if p.Value != float64(3*p.Cycle) {
			t.Fatalf("point %d: value %v inconsistent with cycle %d", i, p.Value, p.Cycle)
		}
		if i > 0 && p.Cycle <= pts[i-1].Cycle {
			t.Fatalf("series not strictly increasing at %d: %d after %d", i, p.Cycle, pts[i-1].Cycle)
		}
	}
}

// TestRegistryConcurrent: concurrent first-use registration of the same
// names must converge on one handle per name, with no lost metrics.
func TestRegistryConcurrent(t *testing.T) {
	const namesN = 32
	r := New()
	hammer(func(int) {
		for i := 0; i < namesN; i++ {
			name := fmt.Sprintf("m%d", i)
			r.Counter(name).Inc()
			r.Gauge(name).Set(int64(i))
			r.Histogram(name).Observe(uint64(i))
			r.Sampler(name, 16).Sample(uint64(i), float64(i))
		}
	})
	snap := r.Snapshot()
	if len(snap.Counters) != namesN || len(snap.Gauges) != namesN ||
		len(snap.Histograms) != namesN || len(snap.Series) != namesN {
		t.Fatalf("registry sizes: %d/%d/%d/%d, want %d each",
			len(snap.Counters), len(snap.Gauges), len(snap.Histograms), len(snap.Series), namesN)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for i := 0; i < namesN; i++ {
		name := fmt.Sprintf("m%d", i)
		if got, want := snap.Counters[name], uint64(workers); got != want {
			t.Fatalf("counter %s = %d, want %d (split registration lost updates)", name, got, want)
		}
	}
}

// TestSnapshotDuringWrites takes snapshots while writers are running:
// exports must be safe (and internally consistent) at any moment.
func TestSnapshotDuringWrites(t *testing.T) {
	r := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := uint64(0); ; c++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Counter("w").Inc()
			r.Sampler("w", 32).Sample(c, 1)
			r.Histogram("w").Observe(c)
		}
	}()
	for i := 0; i < 100; i++ {
		snap := r.Snapshot()
		if len(snap.Series["w"]) > 32 {
			t.Errorf("snapshot series overflow: %d", len(snap.Series["w"]))
			break
		}
	}
	close(stop)
	wg.Wait()
}
