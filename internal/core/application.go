package core

import (
	"fmt"

	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/synth"
	"github.com/uteda/gmap/internal/trace"
	"github.com/uteda/gmap/internal/workloads"
)

// AppWorkload bundles a multi-kernel application, its profile and its
// clone for side-by-side simulation with persistent cache/DRAM state
// across kernel launches.
type AppWorkload struct {
	Name string
	// App is the original launch sequence.
	App *trace.Application
	// Launches holds the coalesced original streams, one per launch.
	Launches [][]trace.WarpTrace
	// Profile is the application profile (one entry per distinct kernel).
	Profile *profiler.AppProfile
	// Proxy is the generated launch-sequence clone.
	Proxy *synth.AppProxy
}

// PrepareApp runs the application pipeline for a named benchmark: emulate
// its launch sequence, profile it, and generate the clone.
func PrepareApp(name string, scale int, pcfg profiler.Config, sopts synth.Options) (*AppWorkload, error) {
	spec, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q (have %v)", name, workloads.Names())
	}
	app, err := spec.AppTrace(scale)
	if err != nil {
		return nil, err
	}
	return PrepareAppTrace(app, pcfg, sopts)
}

// PrepareAppTrace runs the pipeline over an externally supplied
// application trace.
func PrepareAppTrace(app *trace.Application, pcfg profiler.Config, sopts synth.Options) (*AppWorkload, error) {
	prof, err := profiler.ProfileApplication(app, pcfg)
	if err != nil {
		return nil, err
	}
	proxy, err := synth.GenerateApp(prof, sopts)
	if err != nil {
		return nil, err
	}
	coalescer := gpu.NewCoalescer(pcfg.LineSize).AttachObs(pcfg.Obs)
	launches := make([][]trace.WarpTrace, len(app.Launches))
	for i, k := range app.Launches {
		launches[i] = coalescer.BuildWarpTraces(k)
	}
	return &AppWorkload{
		Name:     app.Name,
		App:      app,
		Launches: launches,
		Profile:  prof,
		Proxy:    proxy,
	}, nil
}

// SimulateOriginal runs the original launch sequence on the hierarchy.
func (w *AppWorkload) SimulateOriginal(cfg memsim.Config) (memsim.Metrics, error) {
	sim, err := memsim.NewSequence(w.Launches, cfg)
	if err != nil {
		return memsim.Metrics{}, fmt.Errorf("core: %s original app: %w", w.Name, err)
	}
	return sim.Run()
}

// SimulateProxy runs the clone's launch sequence on the hierarchy.
func (w *AppWorkload) SimulateProxy(cfg memsim.Config) (memsim.Metrics, error) {
	sim, err := memsim.NewSequence(w.Proxy.WarpLaunches(), cfg)
	if err != nil {
		return memsim.Metrics{}, fmt.Errorf("core: %s proxy app: %w", w.Name, err)
	}
	return sim.Run()
}

// CompareApp sweeps both the original application and its clone over
// configurations and collects paired metric values, the application-level
// analogue of Compare.
func CompareApp(w *AppWorkload, configs []memsim.Config, labels []string, metric Metric) (*Comparison, error) {
	if len(configs) != len(labels) {
		return nil, fmt.Errorf("core: %d configs but %d labels", len(configs), len(labels))
	}
	cmp := &Comparison{Benchmark: w.Name, Metric: metric.Name}
	for i, cfg := range configs {
		orig, err := w.SimulateOriginal(cfg)
		if err != nil {
			return nil, err
		}
		prox, err := w.SimulateProxy(cfg)
		if err != nil {
			return nil, err
		}
		cmp.Add(labels[i], metric.Fn(orig), metric.Fn(prox))
	}
	return cmp, nil
}
