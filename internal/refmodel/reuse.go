package refmodel

// Cold is the stack distance of a first-touch access, matching
// reuse.Cold.
const Cold = -1

// Distances computes the LRU stack distance of every reference with the
// O(N²) textbook definition: for each access, scan backwards to the
// previous reference of the same element and count the distinct elements
// referenced strictly between the two. First touches report Cold.
func Distances(stream []uint64) []int64 {
	out := make([]int64, len(stream))
	for i, e := range stream {
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if stream[j] == e {
				prev = j
				break
			}
		}
		if prev < 0 {
			out[i] = Cold
			continue
		}
		distinct := make(map[uint64]struct{})
		for j := prev + 1; j < i; j++ {
			distinct[stream[j]] = struct{}{}
		}
		out[i] = int64(len(distinct))
	}
	return out
}
