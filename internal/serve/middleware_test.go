package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/uteda/gmap/internal/obs"
)

func TestInstrumentCountsByStatusClass(t *testing.T) {
	reg := obs.New()
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok")) // implicit 200
	})
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	h := Instrument(reg, "dist", mux)
	for _, path := range []string{"/ok", "/ok", "/boom", "/missing"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}
	snap := reg.Snapshot()
	if got := snap.Counters["http.dist.requests"]; got != 4 {
		t.Errorf("requests = %d, want 4", got)
	}
	if got := snap.Counters["http.dist.status.2xx"]; got != 2 {
		t.Errorf("2xx = %d, want 2", got)
	}
	if got := snap.Counters["http.dist.status.4xx"]; got != 1 {
		t.Errorf("4xx = %d, want 1", got)
	}
	if got := snap.Counters["http.dist.status.5xx"]; got != 1 {
		t.Errorf("5xx = %d, want 1", got)
	}
	if hs := snap.Histograms["http.dist.latency_ns"]; hs.Count != 4 {
		t.Errorf("latency count = %d, want 4", hs.Count)
	}
}

func TestInstrumentNilRegistryIsPassThrough(t *testing.T) {
	// With no registry the original handler comes back untouched — the
	// disabled path adds zero wrapping, matching the obs nil contract.
	base := http.NewServeMux()
	if got := Instrument(nil, "dist", base); got != http.Handler(base) {
		t.Fatalf("Instrument(nil) wrapped the handler: %T", got)
	}
}
