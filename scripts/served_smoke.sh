#!/usr/bin/env sh
# served_smoke.sh — end-to-end smoke test for the gmap-served service.
#
# Starts a server on an ephemeral port, profiles a built-in workload,
# uploads the profile, submits a clone job, waits for the result, then
# resubmits the identical job and asserts (a) the second response is a
# cache hit and (b) the serve_api_cache_hits counter moved. Exercises
# the same path a real deployment uses: binaries + HTTP, no test
# harness. Requires only a Go toolchain and curl.
#
# Usage: scripts/served_smoke.sh [workdir]
set -eu

WORK="${1:-$(mktemp -d)}"
BIN="$WORK/bin"
STORE="$WORK/store"
ADDR_FILE="$WORK/addr"
mkdir -p "$BIN"

echo "==> building binaries into $BIN"
go build -o "$BIN/gmap-profile" ./cmd/gmap-profile
go build -o "$BIN/gmap-served" ./cmd/gmap-served

echo "==> profiling built-in workload aes"
"$BIN/gmap-profile" -workload aes -out "$WORK/aes.profile.json"

echo "==> starting gmap-served on an ephemeral port"
"$BIN/gmap-served" -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" -store "$STORE" &
SERVED_PID=$!
trap 'kill "$SERVED_PID" 2>/dev/null || true' EXIT

# Wait for the server to write its bound address.
i=0
while [ ! -s "$ADDR_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "FAIL: server never wrote $ADDR_FILE" >&2
        exit 1
    fi
    sleep 0.1
done
BASE="http://$(cat "$ADDR_FILE")"
echo "==> server is at $BASE"

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

# jget FILE KEY — extract a scalar JSON field without jq.
jget() {
    sed -n 's/.*"'"$2"'":[[:space:]]*"\{0,1\}\([^",}]*\)"\{0,1\}.*/\1/p' "$1" | head -n1
}

echo "==> uploading profile"
curl -sSf -X POST --data-binary @"$WORK/aes.profile.json" \
    "$BASE/v1/profiles" >"$WORK/profile_resp.json"
HASH=$(jget "$WORK/profile_resp.json" profile)
[ -n "$HASH" ] || fail "profile upload returned no hash: $(cat "$WORK/profile_resp.json")"
echo "    profile $HASH"

SPEC="{\"kind\":\"clone\",\"profile\":\"$HASH\",\"seed\":7}"

echo "==> submitting clone job"
curl -sS -o "$WORK/submit1.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d "$SPEC" \
    "$BASE/v1/jobs" >"$WORK/code1"
[ "$(cat "$WORK/code1")" = "202" ] || \
    fail "first submit returned $(cat "$WORK/code1"): $(cat "$WORK/submit1.json")"
JOB=$(jget "$WORK/submit1.json" job)
[ -n "$JOB" ] || fail "submit returned no job id"
echo "    job $JOB"

echo "==> waiting for completion"
i=0
while :; do
    curl -sSf "$BASE/v1/jobs/$JOB" >"$WORK/status.json"
    STATUS=$(jget "$WORK/status.json" status)
    case "$STATUS" in
    done) break ;;
    failed | canceled) fail "job ended $STATUS: $(cat "$WORK/status.json")" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 300 ] || sleep 0.1
    [ "$i" -le 300 ] || fail "job never completed (status $STATUS)"
done

curl -sSf "$BASE/v1/jobs/$JOB/result" >"$WORK/result1.json"
grep -q '"kind":"clone"' "$WORK/result1.json" || fail "result missing clone payload"
echo "==> job done, result retrieved ($(wc -c <"$WORK/result1.json") bytes)"

echo "==> resubmitting the identical job"
curl -sS -o "$WORK/submit2.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d "$SPEC" \
    "$BASE/v1/jobs" >"$WORK/code2"
[ "$(cat "$WORK/code2")" = "200" ] || \
    fail "resubmission returned $(cat "$WORK/code2"), want 200 (cache hit)"
grep -q '"cached": true' "$WORK/submit2.json" || \
    fail "resubmission not served from cache: $(cat "$WORK/submit2.json")"
JOB2=$(jget "$WORK/submit2.json" job)
[ "$JOB2" = "$JOB" ] || fail "resubmission got a new job id ($JOB2 != $JOB)"

curl -sSf "$BASE/v1/jobs/$JOB2/result" >"$WORK/result2.json"
cmp -s "$WORK/result1.json" "$WORK/result2.json" || \
    fail "cached result differs from original"

echo "==> submitting a figure sweep (table1, aes)"
SWEEP='{"kind":"sweep","experiment":"table1","benchmarks":["aes"]}'
curl -sSf -X POST -H 'Content-Type: application/json' -d "$SWEEP" \
    "$BASE/v1/jobs" >"$WORK/sweep1.json"
SJOB=$(jget "$WORK/sweep1.json" job)
[ -n "$SJOB" ] || fail "sweep submit returned no job id"
i=0
while :; do
    curl -sSf "$BASE/v1/jobs/$SJOB" >"$WORK/sstatus.json"
    SSTATUS=$(jget "$WORK/sstatus.json" status)
    case "$SSTATUS" in
    done) break ;;
    failed | canceled) fail "sweep ended $SSTATUS: $(cat "$WORK/sstatus.json")" ;;
    esac
    i=$((i + 1))
    [ "$i" -le 1200 ] || fail "sweep never completed (status $SSTATUS)"
    sleep 0.5
done
curl -sSf "$BASE/v1/jobs/$SJOB/result" >"$WORK/sweep_result1.json"
grep -q '"kind":"sweep"' "$WORK/sweep_result1.json" || fail "sweep result missing report"
grep -q 'table1: application memory patterns' "$WORK/sweep_result1.json" || \
    fail "sweep result missing figure content"

echo "==> resubmitting the sweep (must be a cache hit)"
curl -sS -o "$WORK/sweep2.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d "$SWEEP" \
    "$BASE/v1/jobs" >"$WORK/scode2"
[ "$(cat "$WORK/scode2")" = "200" ] || \
    fail "sweep resubmission returned $(cat "$WORK/scode2"), want 200 (cache hit)"
grep -q '"cached": true' "$WORK/sweep2.json" || \
    fail "sweep resubmission not served from cache: $(cat "$WORK/sweep2.json")"
curl -sSf "$BASE/v1/jobs/$SJOB/result" >"$WORK/sweep_result2.json"
cmp -s "$WORK/sweep_result1.json" "$WORK/sweep_result2.json" || \
    fail "cached sweep result differs from original"

echo "==> checking /metrics for the cache-hit counter"
curl -sSf "$BASE/metrics" >"$WORK/metrics.txt"
HITS=$(sed -n 's/^gmap_serve_api_cache_hits[[:space:]]\{1,\}//p' "$WORK/metrics.txt")
[ -n "$HITS" ] || fail "serve_api_cache_hits missing from /metrics"
[ "$HITS" -ge 1 ] || fail "serve_api_cache_hits = $HITS, want >= 1"

echo "PASS: submit -> result -> cached resubmission ($HITS cache hit(s)), bit-identical results"
