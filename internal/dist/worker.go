package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/obs/fleet"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/runner"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL ("http://host:port").
	Coordinator string
	// Endpoints are additional coordinator URLs to fail over to when the
	// current one becomes unreachable (a standby's listen address).
	Endpoints []string
	// AddrFile, when non-empty, names a file holding the coordinator's
	// current address (host:port or URL). It is re-read before every
	// retry, so a standby that takes over and rewrites the file
	// redirects the worker without any restart. The file's address is
	// always preferred over Coordinator/Endpoints.
	AddrFile string
	// Name identifies this worker in lease attribution and logs; empty
	// derives "host:pid".
	Name string
	// Workers and SimWorkers size the local execution pools, exactly as
	// on a serial run (eval.Options.Workers / .SimWorkers). Pure
	// execution detail: job keys and payloads are unchanged.
	Workers    int
	SimWorkers int
	// Poll is the wait-state retry interval when every part is leased;
	// <= 0 defaults to 500ms (the coordinator's RetryNS suggestion wins
	// when present).
	Poll time.Duration
	// BatchSize is how many results accumulate before a delivery; <= 1
	// streams every completed job immediately, which is what keeps the
	// coordinator's straggler timings live.
	BatchSize int
	// Retries bounds how many times an unavailable-coordinator failure
	// (fault.IsUnavailable) is retried with jittered backoff while
	// rotating through the resolved endpoints; <= 0 defaults to 8. This
	// is the failover budget: it must cover the standby's detection
	// quorum plus takeover.
	Retries int
	// RetryBackoff is the base backoff before a retry, doubled per
	// attempt with deterministic jitter (runner.RetryDelay); <= 0
	// defaults to 250ms.
	RetryBackoff time.Duration
	// HTTPClient overrides the transport (tests); nil uses a default.
	HTTPClient *http.Client
	// Obs, when non-nil, collects the local execution instrumentation
	// plus the retry counters (dist.lease_retries,
	// dist.heartbeat_retries, dist.delivery_retries).
	Obs *obs.Registry
	// Trace, when non-nil, records one span per lease — a remote child
	// of the coordinator's lease span when the grant carries a
	// traceparent — with the eval pipeline's own spans nested under it,
	// so a merged fleet export shows this worker's work inside the
	// coordinator's sweep.
	Trace *obstrace.Tracer
	// ObsURL, when non-empty, self-announces this worker's exposition
	// server base URL in lease requests, registering it as a fleet
	// federation scrape target.
	ObsURL string
	// Logf, when non-nil, receives worker progress lines.
	Logf func(format string, args ...interface{})
}

// client wraps the coordinator's HTTP surface. base is swapped by the
// worker's endpoint rotation on failover.
type client struct {
	mu   sync.Mutex
	base string
	hc   *http.Client
}

func (c *client) baseURL() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base
}

func (c *client) setBase(b string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.base = b
}

// apiErr lifts an HTTP error body back into the protocol's sentinel
// errors so worker logic can errors.Is on them across the wire. The
// body's machine-readable "code" field is authoritative; the message
// string is a fallback for older coordinators. 5xx responses are
// marked transient: the request itself is sound and the merge is
// idempotent, so retrying against a recovered (or successor)
// coordinator can succeed.
func (c *client) apiErr(status int, body []byte) error {
	msg := strings.TrimSpace(string(body))
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	switch status {
	case http.StatusGone:
		return fmt.Errorf("%w: %s", ErrLeaseGone, msg)
	case http.StatusConflict:
		switch e.Code {
		case codeStaleEpoch:
			return fmt.Errorf("%w: %s", ErrStaleEpoch, msg)
		case codeDivergent:
			return fmt.Errorf("%w: %s", ErrDivergent, msg)
		case codeForeign:
			return fmt.Errorf("%w: %s", ErrForeignKey, msg)
		}
		switch {
		case strings.Contains(msg, "epoch"):
			return fmt.Errorf("%w: %s", ErrStaleEpoch, msg)
		case strings.Contains(msg, "divergent"):
			return fmt.Errorf("%w: %s", ErrDivergent, msg)
		default:
			return fmt.Errorf("%w: %s", ErrForeignKey, msg)
		}
	default:
		err := fmt.Errorf("dist: coordinator returned %d: %s", status, msg)
		if status >= 500 {
			return fault.Transient(err)
		}
		return err
	}
}

func (c *client) post(ctx context.Context, path, contentType string, body []byte, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL()+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("dist: reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return c.apiErr(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("dist: decoding %s response: %w", path, err)
	}
	return nil
}

func (c *client) postJSON(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.post(ctx, path, "application/json", body, out)
}

func (c *client) lease(ctx context.Context, worker, obsURL string) (LeaseGrant, error) {
	var g LeaseGrant
	err := c.postJSON(ctx, "/dist/v1/lease", leaseRequest{Worker: worker, ObsURL: obsURL}, &g)
	return g, err
}

func (c *client) heartbeat(ctx context.Context, lease string, epoch uint64) error {
	return c.postJSON(ctx, "/dist/v1/heartbeat", leaseOpRequest{Lease: lease, Epoch: epoch}, nil)
}

func (c *client) results(ctx context.Context, b *Batch) (resultsResponse, error) {
	var resp resultsResponse
	data, err := EncodeBatch(b)
	if err != nil {
		return resp, err
	}
	err = c.post(ctx, "/dist/v1/results", "application/octet-stream", data, &resp)
	return resp, err
}

func (c *client) complete(ctx context.Context, lease string, epoch uint64) (string, error) {
	var resp completeResponse
	if err := c.postJSON(ctx, "/dist/v1/complete", leaseOpRequest{Lease: lease, Epoch: epoch}, &resp); err != nil {
		return "", err
	}
	return resp.Status, nil
}

// worker bundles one RunWorker invocation's state: options, the HTTP
// client and the endpoint-rotation/retry machinery.
type worker struct {
	o    WorkerOptions
	cl   *client
	logf func(string, ...interface{})
}

// normalizeEndpoint turns "host:port" or a URL into a base URL.
func normalizeEndpoint(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return ""
	}
	if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
		s = "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// endpoints resolves the candidate coordinator URLs, preferred first:
// the addr file's current content (re-read on every call — the standby
// rewrites it on takeover), then the static Coordinator URL and the
// Endpoints list, deduplicated.
func (w *worker) endpoints() []string {
	var list []string
	seen := make(map[string]bool)
	add := func(s string) {
		if e := normalizeEndpoint(s); e != "" && !seen[e] {
			seen[e] = true
			list = append(list, e)
		}
	}
	if w.o.AddrFile != "" {
		if data, err := os.ReadFile(w.o.AddrFile); err == nil {
			add(string(data))
		}
	}
	add(w.o.Coordinator)
	for _, e := range w.o.Endpoints {
		add(e)
	}
	return list
}

// rotate re-resolves the endpoint list and moves to the next candidate
// after the current one. With a rewritten addr file the "next"
// candidate is the new head — the takeover coordinator.
func (w *worker) rotate() {
	list := w.endpoints()
	if len(list) == 0 {
		return
	}
	cur := w.cl.baseURL()
	next := list[0]
	for i, e := range list {
		if e == cur {
			next = list[(i+1)%len(list)]
			break
		}
	}
	if next != cur {
		w.o.Obs.Counter("dist.endpoint_rotations").Inc()
		w.logf("dist: worker %s: switching coordinator %s -> %s", w.o.Name, cur, next)
		w.cl.setBase(next)
	}
}

// retryable reports whether a coordinator-operation failure is worth
// retrying against a (possibly different) endpoint: unavailability,
// yes; protocol rejections (gone lease, stale epoch, divergence), no —
// those need a different request, not a different try.
func retryable(err error) bool {
	if errors.Is(err, ErrLeaseGone) || errors.Is(err, ErrStaleEpoch) ||
		errors.Is(err, ErrDivergent) || errors.Is(err, ErrForeignKey) {
		return false
	}
	return fault.IsUnavailable(err)
}

// withRetry runs op, retrying unavailable-coordinator failures up to
// o.Retries times with the runner's deterministic jittered backoff,
// rotating endpoints between attempts. key seeds the jitter so
// concurrent workers spread out. Deliveries retried through here may
// double-send a batch whose response was lost mid-flight; the
// coordinator's idempotent merge counts those as duplicates.
func (w *worker) withRetry(ctx context.Context, key, counter string, op func() error) error {
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !retryable(err) || ctx.Err() != nil {
			return err
		}
		if attempt > w.o.Retries {
			return err
		}
		w.o.Obs.Counter(counter).Inc()
		w.logf("dist: worker %s: %s (retry %d/%d)", w.o.Name, err, attempt, w.o.Retries)
		w.rotate()
		d := runner.RetryDelay(w.o.RetryBackoff, key, attempt)
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// RunWorker joins the coordinator and processes leases until the sweep
// is done (returns nil), ctx is cancelled, or an unrecoverable error
// occurs (coordinator unreachable past the retry budget, simulation
// failure, divergence rejection). Losing a lease — expiry, steal, or a
// coordinator takeover bumping the epoch — is not an error: the shard
// is abandoned mid-run and the loop asks the current coordinator for
// the next lease.
func RunWorker(ctx context.Context, o WorkerOptions) error {
	if o.Coordinator == "" && len(o.Endpoints) == 0 && o.AddrFile == "" {
		return errors.New("dist: worker requires a coordinator URL, endpoint list, or addr file")
	}
	if o.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.BatchSize < 1 {
		o.BatchSize = 1
	}
	if o.Retries <= 0 {
		o.Retries = 8
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 250 * time.Millisecond
	}
	hc := o.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	w := &worker{o: o, cl: &client{hc: hc}, logf: logf}
	eps := w.endpoints()
	if len(eps) == 0 {
		return errors.New("dist: no coordinator endpoint resolvable (addr file missing?)")
	}
	w.cl.setBase(eps[0])
	// Whatever ends this worker — sweep done, cancellation, an error —
	// its tallies and span log flush to the coordinator's federation
	// surface so short-lived workers still appear in the merged view.
	defer w.push(true)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var g LeaseGrant
		err := w.withRetry(ctx, "lease", "dist.lease_retries", func() error {
			var lerr error
			g, lerr = w.cl.lease(ctx, o.Name, o.ObsURL)
			return lerr
		})
		if err != nil {
			if errors.Is(err, ErrStaleEpoch) {
				// A deposed coordinator answered; its successor owns the
				// sweep now. Rotate and ask again.
				w.rotate()
				continue
			}
			return err
		}
		if o.Name == "" && g.Worker != "" {
			// Adopt the coordinator's default naming (remote address) so
			// fleet pushes from an unnamed worker carry the same name the
			// coordinator tracks it under, rather than being anonymous.
			o.Name = g.Worker
			w.o.Name = g.Worker
		}
		switch g.Status {
		case GrantDone:
			logf("dist: worker %s: sweep complete", o.Name)
			return nil
		case GrantWait:
			wait := o.Poll
			if g.RetryNS > 0 {
				wait = time.Duration(g.RetryNS)
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return ctx.Err()
			}
		case GrantLease:
			logf("dist: worker %s: leased part %d/%d epoch %d (%d keys)", o.Name, g.Part, g.Parts, g.Epoch, len(g.Keys))
			if err := w.runLease(ctx, g); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: unknown grant status %q", g.Status)
		}
	}
}

// runLease executes one granted shard: the sweep's own eval pipeline
// restricted (Shard) to the granted keys, streaming every completed
// point back as a checkpoint event (ResultSink), under a heartbeat
// goroutine that cancels the run the moment the lease is lost. A lost
// lease — revoked, stolen, or fenced behind a takeover's new epoch —
// abandons the shard without error; the remaining keys re-lease.
func (w *worker) runLease(ctx context.Context, g LeaseGrant) error {
	o := w.o
	logf := w.logf
	mine := make(map[string]bool, len(g.Keys))
	for _, k := range g.Keys {
		mine[k] = true
	}

	// The lease span parents under the coordinator's lease span through
	// the grant's traceparent (an absent or garbage header degrades to a
	// local root); installing it as default parent nests the eval
	// pipeline's own spans under it without the pipeline knowing
	// anything about distribution. Everything here is nil-safe: an
	// untraced worker takes one predictable branch per call.
	sc, _ := obstrace.ParseTraceparent(g.Traceparent)
	leaseSpan := o.Trace.RemoteChild(sc, "dist.worker.lease",
		obstrace.String("lease", g.Lease),
		obstrace.Int("epoch", int64(g.Epoch)),
		obstrace.Int("part", int64(g.Part)),
		obstrace.String("worker", o.Name),
		obstrace.Int("keys", int64(len(g.Keys))))
	o.Obs.Counter("dist.worker.leases").Inc()
	o.Obs.Counter("dist.worker.keys_leased").Add(uint64(len(g.Keys)))
	outcome := "ok"
	defer func() {
		o.Trace.SetDefaultParent(nil)
		leaseSpan.Set(obstrace.String("outcome", outcome))
		leaseSpan.End()
		w.push(false)
	}()
	o.Trace.SetDefaultParent(leaseSpan)

	shardCtx, cancelShard := context.WithCancel(ctx)
	defer cancelShard()

	// abandon marks the lease lost (idempotently) and stops the shard.
	var lostOnce sync.Once
	lost := make(chan struct{})
	abandon := func(why error) {
		lostOnce.Do(func() {
			logf("dist: worker %s: lease %s lost: %v", o.Name, g.Lease, why)
			close(lost)
			cancelShard()
		})
	}

	// The heartbeat loop renews the lease at a third of its TTL and
	// abandons the shard when the coordinator says the lease is gone or
	// fenced — a stolen straggler stops burning CPU on work someone else
	// owns, and a worker fenced behind a takeover re-leases under the
	// new epoch. A dropped heartbeat (coordinator restarting, transient
	// network fault) is retried with bounded jittered backoff rather
	// than taken as a verdict: only the coordinator decides lease death.
	hbDone := make(chan struct{})
	ttl := time.Duration(g.TTLNS)
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-tick.C:
				err := w.withRetry(shardCtx, g.Lease, "dist.heartbeat_retries", func() error {
					return w.cl.heartbeat(shardCtx, g.Lease, g.Epoch)
				})
				switch {
				case err == nil:
				case errors.Is(err, ErrLeaseGone), errors.Is(err, ErrStaleEpoch):
					abandon(err)
					return
				default:
					// Still unreachable after the retry budget: keep the
					// run going; lease death is the coordinator's call, not
					// ours, and the next tick retries afresh.
					logf("dist: worker %s: heartbeat: %v", o.Name, err)
				}
			}
		}
	}()

	var pending []Entry
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		// Deliveries ride ctx, not shardCtx: results computed before a
		// lease loss are still worth delivering (late results merge).
		err := w.withRetry(ctx, g.Lease, "dist.delivery_retries", func() error {
			_, rerr := w.cl.results(ctx, &Batch{Lease: g.Lease, Epoch: g.Epoch, Entries: pending})
			return rerr
		})
		if err == nil {
			pending = pending[:0]
			return nil
		}
		if errors.Is(err, ErrStaleEpoch) || errors.Is(err, ErrLeaseGone) {
			// The batch was rejected whole by a fence (or the part was
			// re-leased). Drop it and abandon: the new coordinator
			// re-issues every key it has no result for, and re-execution
			// reproduces identical payloads.
			pending = pending[:0]
			abandon(err)
			return nil
		}
		return err
	}

	eo := g.Spec.EvalOptions()
	eo.Workers = o.Workers
	eo.SimWorkers = o.SimWorkers
	eo.Context = shardCtx
	eo.Obs = o.Obs
	eo.Trace = o.Trace
	eo.Shard = func(key string) bool { return mine[key] }
	eo.ResultSink = func(key string, value json.RawMessage, elapsed time.Duration) error {
		pending = append(pending, Entry{
			Key:       key,
			Value:     json.RawMessage(append([]byte(nil), value...)),
			ElapsedNS: elapsed.Nanoseconds(),
		})
		if len(pending) >= o.BatchSize {
			return flush()
		}
		return nil
	}

	// The shard's assembled report is garbage by construction (the
	// unexecuted keys stay zero): only the streamed per-key payloads
	// matter, so the rendering goes to Discard.
	runErr := eo.Run(io.Discard, g.Spec.Experiment)

	leaseLost := false
	select {
	case <-lost:
		leaseLost = true
	default:
	}
	cancelShard()
	<-hbDone

	// Deliver whatever completed, even after an abandoned shard; the
	// coordinator accepts late results idempotently. flush itself may
	// conclude the lease is lost (fence rejection) — re-check after.
	ferr := flush()
	select {
	case <-lost:
		leaseLost = true
	default:
	}
	if ferr != nil && runErr == nil && !leaseLost {
		outcome = "error"
		return ferr
	}

	switch {
	case leaseLost:
		// Not an error: someone else owns the part (or the epoch) now.
		outcome = "lost"
		return nil
	case runErr != nil && ctx.Err() != nil:
		outcome = "canceled"
		return ctx.Err()
	case runErr != nil:
		outcome = "error"
		return fmt.Errorf("dist: worker %s lease %s: %w", o.Name, g.Lease, runErr)
	}
	status, err := w.cl.complete(ctx, g.Lease, g.Epoch)
	if err != nil {
		// Completion is advisory — the coordinator marks a part done from
		// the results themselves — so a lost acknowledgment (say, the
		// coordinator rendered and exited the instant the last result
		// landed) never fails the worker.
		logf("dist: worker %s: complete: %v", o.Name, err)
		return nil
	}
	logf("dist: worker %s: part %d complete (%s)", o.Name, g.Part, status)
	return nil
}

// push ships the worker's metrics snapshot — and its span log — to the
// coordinator's fleet federation endpoint (POST /fleet/push),
// best-effort: a coordinator without a federator answers 404 and the
// report is simply dropped. Pushes ride their own short deadline, not
// the worker ctx — the final push happens exactly when the worker is
// exiting, possibly because that ctx was cancelled.
func (w *worker) push(final bool) {
	if w.o.Obs == nil && w.o.Trace == nil {
		return
	}
	pr := fleet.PushRequest{Worker: w.o.Name, URL: w.o.ObsURL, Final: final}
	if w.o.Obs != nil {
		snap := w.o.Obs.Snapshot()
		pr.Snapshot = &snap
	}
	if w.o.Trace != nil {
		var buf bytes.Buffer
		if err := w.o.Trace.WriteJSONL(&buf); err == nil {
			pr.TraceJSONL = buf.String()
		}
	}
	body, err := json.Marshal(pr)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cl.baseURL()+"/fleet/push", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := w.cl.hc.Do(req)
	if err != nil {
		w.logf("dist: worker %s: fleet push: %v", w.o.Name, err)
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(res.Body, 4096))
	res.Body.Close()
}
