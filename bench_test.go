package gmap

// One benchmark per table and figure of the paper's evaluation (§5). Each
// bench regenerates its experiment on a reduced benchmark subset so that
// `go test -bench=.` stays tractable on a laptop, and reports the paper's
// accuracy metrics (error in percentage points or percent, and Pearson
// correlation) alongside the usual ns/op. The full 18-benchmark evaluation
// is produced by `go run ./cmd/gmap-eval -exp all`.

import (
	"io"
	"testing"

	"github.com/uteda/gmap/internal/eval"
)

// benchOpts keeps benchmark iterations affordable: three representative
// workloads (one high-reuse regular, one streaming, one irregular).
func benchOpts() eval.Options {
	return eval.Options{
		Benchmarks:  []string{"kmeans", "scalarprod", "hotspot"},
		Scale:       1,
		ScaleFactor: 4,
		Seed:        1,
		Cores:       8,
	}
}

func reportFigure(b *testing.B, f *eval.FigureResult) {
	b.Helper()
	b.ReportMetric(f.AvgError, "err")
	b.ReportMetric(f.AvgCorrelation, "corr")
}

// BenchmarkTable1Profile regenerates Table 1: profiling the ten
// characterized benchmarks and extracting their dominant instruction,
// stride and reuse rows.
func BenchmarkTable1Profile(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := opts.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig6aL1Sweep regenerates Figure 6a: original-versus-proxy L1
// miss rates across the 30-configuration L1 sweep.
func BenchmarkFig6aL1Sweep(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := opts.Fig6a()
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f)
	}
}

// BenchmarkFig6bL2Sweep regenerates Figure 6b: the 30-configuration L2
// sweep.
func BenchmarkFig6bL2Sweep(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := opts.Fig6b()
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f)
	}
}

// BenchmarkFig6cL1Prefetch regenerates Figure 6c: the 72-configuration L1
// stride-prefetcher sweep.
func BenchmarkFig6cL1Prefetch(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := opts.Fig6c()
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f)
	}
}

// BenchmarkFig6dL2Prefetch regenerates Figure 6d: the 96-configuration L2
// stream-prefetcher sweep.
func BenchmarkFig6dL2Prefetch(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := opts.Fig6d()
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f)
	}
}

// BenchmarkFig6eScheduling regenerates Figure 6e: L1 miss-rate cloning
// under LRR and GTO warp scheduling (the proxy approximating GTO through
// SchedPself).
func BenchmarkFig6eScheduling(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := opts.Fig6e()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.LRR.AvgError, "lrr-err")
		b.ReportMetric(f.GTO.AvgError, "gto-err")
	}
}

// BenchmarkFig7DRAM regenerates Figure 7: DRAM row-buffer locality, queue
// length and latency across the 11 GDDR5 configurations.
func BenchmarkFig7DRAM(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		f, err := opts.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.RBL.AvgError, "rbl-err")
		b.ReportMetric(f.ReadLat.AvgError, "rdlat-err")
	}
}

// BenchmarkFig8Miniaturization regenerates Figure 8: cloning accuracy and
// simulation speedup across 1x-16x trace reduction.
func BenchmarkFig8Miniaturization(b *testing.B) {
	opts := benchOpts()
	opts.Benchmarks = []string{"kmeans", "scalarprod"}
	for i := 0; i < b.N; i++ {
		f, err := opts.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		last := f.Points[len(f.Points)-1]
		b.ReportMetric(last.Accuracy, "acc16x")
		b.ReportMetric(last.Speedup, "speedup16x")
	}
}

// BenchmarkSweepSerial and BenchmarkSweepParallel run the same Figure 6a
// L1 sweep on one worker versus every CPU. Their results are required to
// be bit-identical (see internal/eval's TestParallelMatchesSerial); the
// ns/op ratio is the execution engine's speedup, recorded in
// BENCH_runner.json.
func BenchmarkSweepSerial(b *testing.B) {
	opts := benchOpts()
	opts.Workers = 1
	for i := 0; i < b.N; i++ {
		f, err := opts.Fig6a()
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f)
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	opts := benchOpts()
	opts.Workers = 0 // all CPUs
	for i := 0; i < b.N; i++ {
		f, err := opts.Fig6a()
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, f)
	}
}

// BenchmarkTable2Report renders the Table 2 configuration (trivially fast;
// included so every table has a bench target).
func BenchmarkTable2Report(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if err := opts.Run(io.Discard, "table2"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline measures the raw profile-generate cost for one
// benchmark, the per-workload overhead every experiment pays.
func BenchmarkPipeline(b *testing.B) {
	tr, err := BenchmarkTrace("bp", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ProfileTrace(tr, DefaultProfileConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Generate(p, GenerateOptions{Seed: 1, ScaleFactor: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures memory-hierarchy simulation speed
// in requests/second — the quantity Figure 8's speedup axis divides.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := BenchmarkTrace("blk", 1)
	if err != nil {
		b.Fatal(err)
	}
	warps := Coalesce(tr, 128)
	var requests int
	for _, w := range warps {
		requests += len(w.Requests)
	}
	cfg := DefaultSimConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := SimulateWarps(warps, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Requests)*float64(i+1)/b.Elapsed().Seconds(), "req/s")
	}
	_ = requests
}
