package gpu

import "github.com/uteda/gmap/internal/obs"

// coalesceObs is the coalescer's instrumentation state. It hangs off a
// pointer so the value-copied Coalescer handles of one attach share a
// single tally; the LocalHistogram keeps the per-instruction Observe
// non-atomic (the coalescer runs in one goroutine per workload build) and
// FlushObs publishes the batch into the shared registry histogram once.
type coalesceObs struct {
	local obs.LocalHistogram
	hist  *obs.Histogram
}

// AttachObs returns a copy of c that tallies a transactions-per-warp-
// request histogram ("coalesce.txns_per_request": 1 = fully coalesced,
// up to 32 = fully scattered). A nil registry returns c unchanged, so
// the disabled path stays branch-free inside Coalesce. An attached
// coalescer (and its value copies) must stay on one goroutine until
// FlushObs.
func (c Coalescer) AttachObs(r *obs.Registry) Coalescer {
	if r == nil {
		return c
	}
	c.obs = &coalesceObs{hist: r.Histogram("coalesce.txns_per_request")}
	return c
}

// FlushObs publishes the locally accumulated histogram batch into the
// registry. BuildWarpTraces flushes automatically; call this only when
// driving Coalesce directly.
func (c Coalescer) FlushObs() {
	if c.obs != nil {
		c.obs.local.FlushTo(c.obs.hist)
	}
}
