// Package core orchestrates the complete G-MAP pipeline of Figure 2:
// profiling a workload's memory reference stream into the statistical
// profile (phase ①/②), generating a miniaturized proxy from it (phase ③),
// simulating either stream on the memory-hierarchy model, and validating
// proxy fidelity with the paper's two metrics — percentage error and
// Pearson correlation across configuration sweeps.
package core

import (
	"fmt"

	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/synth"
	"github.com/uteda/gmap/internal/trace"
	"github.com/uteda/gmap/internal/workloads"
)

// Workload bundles one benchmark's original stream, its profile and its
// generated proxy, ready for side-by-side simulation.
type Workload struct {
	Name string
	// Trace is the original per-thread reference stream.
	Trace *trace.KernelTrace
	// Warps is the coalesced original, the form the simulator consumes.
	Warps []trace.WarpTrace
	// Profile is the extracted statistical profile.
	Profile *profiler.Profile
	// Proxy is the generated clone.
	Proxy *synth.Proxy
}

// Prepare runs the full pipeline for a named benchmark at the given
// workload scale.
func Prepare(name string, scale int, pcfg profiler.Config, sopts synth.Options) (*Workload, error) {
	spec, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q (have %v)", name, workloads.Names())
	}
	tr, err := spec.Trace(scale)
	if err != nil {
		return nil, err
	}
	return PrepareTrace(tr, pcfg, sopts)
}

// PrepareTrace runs the pipeline over an externally supplied trace.
func PrepareTrace(tr *trace.KernelTrace, pcfg profiler.Config, sopts synth.Options) (*Workload, error) {
	p, err := profiler.ProfileKernel(tr, pcfg)
	if err != nil {
		return nil, err
	}
	proxy, err := synth.Generate(p, sopts)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name:    tr.Name,
		Trace:   tr,
		Warps:   gpu.NewCoalescer(pcfg.LineSize).AttachObs(pcfg.Obs).BuildWarpTraces(tr),
		Profile: p,
		Proxy:   proxy,
	}, nil
}

// SimulateOriginal runs the original coalesced stream on the hierarchy.
func (w *Workload) SimulateOriginal(cfg memsim.Config) (memsim.Metrics, error) {
	sim, err := memsim.New(w.Warps, cfg)
	if err != nil {
		return memsim.Metrics{}, fmt.Errorf("core: %s original: %w", w.Name, err)
	}
	return sim.Run()
}

// SimulateProxy runs the generated clone on the hierarchy.
func (w *Workload) SimulateProxy(cfg memsim.Config) (memsim.Metrics, error) {
	sim, err := memsim.New(w.Proxy.Warps, cfg)
	if err != nil {
		return memsim.Metrics{}, fmt.Errorf("core: %s proxy: %w", w.Name, err)
	}
	return sim.Run()
}

// Metric extracts one scalar from a simulation run (e.g. L1 miss rate).
type Metric struct {
	Name string
	Fn   func(memsim.Metrics) float64
}

// The metrics the paper validates proxies on.
var (
	// L1MissRate is the Figure 6a/6c/6e metric.
	L1MissRate = Metric{Name: "l1-miss-rate", Fn: func(m memsim.Metrics) float64 { return m.L1MissRate() }}
	// L2MissRate is the Figure 6b/6d metric.
	L2MissRate = Metric{Name: "l2-miss-rate", Fn: func(m memsim.Metrics) float64 { return m.L2MissRate() }}
	// DRAMRowBufferLocality, DRAMQueueLen, DRAMReadLatency and
	// DRAMWriteLatency are the Figure 7 metrics.
	DRAMRowBufferLocality = Metric{Name: "dram-rbl", Fn: func(m memsim.Metrics) float64 { return m.DRAM.RowBufferLocality() }}
	DRAMQueueLen          = Metric{Name: "dram-queue-len", Fn: func(m memsim.Metrics) float64 { return m.DRAM.AvgQueueLen() }}
	DRAMReadLatency       = Metric{Name: "dram-read-lat", Fn: func(m memsim.Metrics) float64 { return m.DRAM.AvgReadLatency() }}
	DRAMWriteLatency      = Metric{Name: "dram-write-lat", Fn: func(m memsim.Metrics) float64 { return m.DRAM.AvgWriteLatency() }}
)

// Comparison holds paired original/proxy measurements of one metric
// across a configuration sweep.
type Comparison struct {
	Benchmark string
	Metric    string
	Labels    []string
	Original  []float64
	Proxy     []float64
}

// Add appends one paired measurement.
func (c *Comparison) Add(label string, original, proxy float64) {
	c.Labels = append(c.Labels, label)
	c.Original = append(c.Original, original)
	c.Proxy = append(c.Proxy, proxy)
}

// Len returns the number of validation points.
func (c *Comparison) Len() int { return len(c.Labels) }

// MeanAbsPctError is the paper's primary accuracy metric: the mean
// absolute percentage error of the proxy against the original.
func (c *Comparison) MeanAbsPctError() float64 {
	e, err := stats.MeanAbsPctError(c.Original, c.Proxy)
	if err != nil {
		return 0
	}
	return e
}

// Correlation is the paper's trend-tracking metric: Pearson's r across
// the sweep. Sweeps where the original is configuration-insensitive (zero
// variance) report 1 when the proxy is also flat (it tracks the trend
// perfectly) and 0 otherwise.
func (c *Comparison) Correlation() float64 {
	r, err := stats.Pearson(c.Original, c.Proxy)
	if err != nil {
		return 0
	}
	if r == 0 && stats.StdDev(c.Original) == 0 && stats.StdDev(c.Proxy) == 0 {
		return 1
	}
	return r
}

// Compare sweeps both streams over configurations and collects the paired
// metric values. Labels must be parallel to configs.
func Compare(w *Workload, configs []memsim.Config, labels []string, metric Metric) (*Comparison, error) {
	if len(configs) != len(labels) {
		return nil, fmt.Errorf("core: %d configs but %d labels", len(configs), len(labels))
	}
	cmp := &Comparison{Benchmark: w.Name, Metric: metric.Name}
	for i, cfg := range configs {
		orig, err := w.SimulateOriginal(cfg)
		if err != nil {
			return nil, err
		}
		prox, err := w.SimulateProxy(cfg)
		if err != nil {
			return nil, err
		}
		cmp.Add(labels[i], metric.Fn(orig), metric.Fn(prox))
	}
	return cmp, nil
}
