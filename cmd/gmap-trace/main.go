// Command gmap-trace emits and inspects G-MAP memory traces.
//
// It can materialize a built-in benchmark's per-thread trace to a file
// (binary or text), convert between the two formats, and summarize the
// structural properties — footprint, per-warp working set, reuse fraction,
// dominant instructions — of a trace or a generated proxy.
//
// Usage:
//
//	gmap-trace -workload srad -out srad.trc
//	gmap-trace -workload srad -format text -out srad.txt
//	gmap-trace -summary srad.trc
//	gmap-trace -summary-proxy srad.proxy.wtrc
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/uteda/gmap"
	"github.com/uteda/gmap/internal/trace"
)

func main() {
	var (
		workload     = flag.String("workload", "", "built-in benchmark to emit")
		scale        = flag.Int("scale", 1, "workload scale")
		format       = flag.String("format", "binary", "output format: binary or text")
		out          = flag.String("out", "", "output path (default stdout)")
		summary      = flag.String("summary", "", "summarize a per-thread trace file")
		summaryProxy = flag.String("summary-proxy", "", "summarize a proxy warp-trace file")
		lineSize     = flag.Uint64("line-size", 128, "line size for summaries and coalescing")
	)
	flag.Parse()

	switch {
	case *summary != "":
		f, err := os.Open(*summary)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := gmap.ReadTrace(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *summary, err))
		}
		warps := gmap.Coalesce(tr, *lineSize)
		printSummary(tr.Name, trace.Summarize(warps, *lineSize))
	case *summaryProxy != "":
		f, err := os.Open(*summaryProxy)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		proxy, err := gmap.ReadProxy(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *summaryProxy, err))
		}
		printSummary(proxy.Name+" (proxy)", trace.Summarize(proxy.Warps, *lineSize))
	case *workload != "":
		tr, err := gmap.BenchmarkTrace(*workload, *scale)
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			of, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer of.Close()
			w = of
		}
		if *format == "text" {
			err = trace.WriteText(w, tr)
		} else {
			err = gmap.WriteTrace(w, tr)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d threads, %d accesses\n",
			tr.Name, tr.NumThreads(), tr.NumAccesses())
	default:
		fatal(fmt.Errorf("one of -workload, -summary, -summary-proxy is required"))
	}
}

func printSummary(name string, s trace.Summary) {
	fmt.Printf("%s: %s\n", name, s)
	fmt.Printf("dominant instructions:\n")
	dom := s.DominantPCs()
	if len(dom) > 8 {
		dom = dom[:8]
	}
	for _, pc := range dom {
		fmt.Printf("  pc %#-8x %8d requests (%.1f%%)\n",
			pc, s.PCs[pc], 100*float64(s.PCs[pc])/float64(s.Requests))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmap-trace:", err)
	os.Exit(1)
}
