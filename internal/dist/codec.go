package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// Wire format of one worker→coordinator result delivery (POST
// /dist/v1/results). Binary rather than JSON because payloads are
// themselves JSON: double-encoding would bloat every result and, worse,
// re-marshaling could reformat the bytes and break the byte-level
// payload-identity contract of the merged ledger. Layout:
//
//	magic "gmapdist2\n"
//	uvarint leaseLen, lease bytes
//	uvarint epoch (coordinator incarnation the lease was granted under)
//	uvarint entryCount
//	per entry: uvarint keyLen, key,
//	           uvarint valueLen, value (must be valid JSON),
//	           uvarint elapsedNS
//
// Every length is capped before allocation and decoded incrementally,
// so a hostile count or length field can reject but never allocate
// gigabytes or wrap an int (same hardening as the trace codec). The
// magic was bumped from "gmapdist1\n" when the epoch field landed:
// v1 batches carry no fencing epoch, so decoding them against the
// failover-era protocol would be unsound — they are rejected outright.
const batchMagic = "gmapdist2\n"

// Wire caps. Keys are 24-hex job hashes and leases are short tokens;
// values are one simulation point's JSON. The caps leave generous
// headroom over anything the pipeline produces.
const (
	maxLeaseLen   = 256
	maxKeyLen     = 1024
	maxValueLen   = 1 << 20
	maxBatchBytes = 64 << 20
)

// Batch is a decoded result delivery.
type Batch struct {
	// Lease identifies the grant the results were computed under. The
	// coordinator accepts results from revoked leases too — identity
	// lives in the entry keys — but uses the lease to refresh liveness.
	Lease string
	// Epoch is the coordinator incarnation the lease was granted under.
	// A coordinator rejects a whole batch fenced to a stale epoch before
	// validating or writing anything (split-brain safety).
	Epoch   uint64
	Entries []Entry
}

// EncodeBatch serializes a batch. It refuses entries that would exceed
// the decode caps, so an encoded batch always round-trips.
func EncodeBatch(b *Batch) ([]byte, error) {
	if len(b.Lease) > maxLeaseLen {
		return nil, fmt.Errorf("dist: lease id %d bytes exceeds cap %d", len(b.Lease), maxLeaseLen)
	}
	out := make([]byte, 0, 256)
	out = append(out, batchMagic...)
	out = binary.AppendUvarint(out, uint64(len(b.Lease)))
	out = append(out, b.Lease...)
	out = binary.AppendUvarint(out, b.Epoch)
	out = binary.AppendUvarint(out, uint64(len(b.Entries)))
	for i := range b.Entries {
		e := &b.Entries[i]
		if len(e.Key) == 0 || len(e.Key) > maxKeyLen {
			return nil, fmt.Errorf("dist: entry key %d bytes outside (0, %d]", len(e.Key), maxKeyLen)
		}
		if len(e.Value) > maxValueLen {
			return nil, fmt.Errorf("dist: entry %q value %d bytes exceeds cap %d", e.Key, len(e.Value), maxValueLen)
		}
		if !json.Valid(e.Value) {
			return nil, fmt.Errorf("dist: entry %q value is not valid JSON", e.Key)
		}
		if e.ElapsedNS < 0 {
			return nil, fmt.Errorf("dist: entry %q negative elapsed %d", e.Key, e.ElapsedNS)
		}
		out = binary.AppendUvarint(out, uint64(len(e.Key)))
		out = append(out, e.Key...)
		out = binary.AppendUvarint(out, uint64(len(e.Value)))
		out = append(out, e.Value...)
		out = binary.AppendUvarint(out, uint64(e.ElapsedNS))
	}
	return out, nil
}

// batchReader decodes capped primitives off a byte slice.
type batchReader struct {
	buf []byte
	off int
}

var errTruncated = errors.New("dist: truncated batch")

func (r *batchReader) uvarint(what string, cap uint64) (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad %s varint", errTruncated, what)
	}
	if v > cap {
		return 0, fmt.Errorf("dist: %s %d exceeds cap %d", what, v, cap)
	}
	r.off += n
	return v, nil
}

func (r *batchReader) bytes(what string, n uint64) ([]byte, error) {
	if uint64(len(r.buf)-r.off) < n {
		return nil, fmt.Errorf("%w: %s wants %d bytes, %d left", errTruncated, what, n, len(r.buf)-r.off)
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// DecodeBatch parses a result delivery. Inputs that do not round-trip
// through EncodeBatch are rejected with an error; no input panics or
// allocates beyond its own length (entry slices grow incrementally, so
// a hostile count field buys nothing).
func DecodeBatch(data []byte) (*Batch, error) {
	if len(data) > maxBatchBytes {
		return nil, fmt.Errorf("dist: batch %d bytes exceeds cap %d", len(data), maxBatchBytes)
	}
	if len(data) < len(batchMagic) || string(data[:len(batchMagic)]) != batchMagic {
		return nil, errors.New("dist: bad batch magic")
	}
	r := &batchReader{buf: data, off: len(batchMagic)}
	leaseLen, err := r.uvarint("lease length", maxLeaseLen)
	if err != nil {
		return nil, err
	}
	lease, err := r.bytes("lease", leaseLen)
	if err != nil {
		return nil, err
	}
	epoch, err := r.uvarint("epoch", uint64(1)<<62)
	if err != nil {
		return nil, err
	}
	count, err := r.uvarint("entry count", maxBatchBytes)
	if err != nil {
		return nil, err
	}
	b := &Batch{Lease: string(lease), Epoch: epoch}
	for i := uint64(0); i < count; i++ {
		keyLen, err := r.uvarint("key length", maxKeyLen)
		if err != nil {
			return nil, err
		}
		if keyLen == 0 {
			return nil, errors.New("dist: empty entry key")
		}
		key, err := r.bytes("key", keyLen)
		if err != nil {
			return nil, err
		}
		valLen, err := r.uvarint("value length", maxValueLen)
		if err != nil {
			return nil, err
		}
		val, err := r.bytes("value", valLen)
		if err != nil {
			return nil, err
		}
		if !json.Valid(val) {
			return nil, fmt.Errorf("dist: entry %q value is not valid JSON", key)
		}
		elapsed, err := r.uvarint("elapsed", uint64(1)<<62)
		if err != nil {
			return nil, err
		}
		b.Entries = append(b.Entries, Entry{
			Key:       string(key),
			Value:     json.RawMessage(append([]byte(nil), val...)),
			ElapsedNS: int64(elapsed),
		})
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("dist: %d trailing bytes after batch", len(data)-r.off)
	}
	return b, nil
}
