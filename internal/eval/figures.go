package eval

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"github.com/uteda/gmap/internal/core"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/reuse"
	"github.com/uteda/gmap/internal/runner"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/synth"
	"github.com/uteda/gmap/internal/workloads"
)

// Fig7Result carries Figure 7: DRAM design-space exploration with proxies
// across 11 GDDR5 configurations, compared on row-buffer locality, memory
// controller queue length and read/write latency.
type Fig7Result struct {
	RBL      *FigureResult
	QueueLen *FigureResult
	ReadLat  *FigureResult
	WriteLat *FigureResult
	// Normalized holds the Figure 7 bar values: per benchmark, the
	// original and proxy metric averaged over the sweep, normalized to
	// the original AES values (the paper's presentation).
	Normalized []Fig7Row
}

// Fig7Row is one benchmark's normalized bar pair per metric.
type Fig7Row struct {
	Benchmark                   string
	RBLOrig, RBLProxy           float64
	QueueOrig, QueueProxy       float64
	ReadLatOrig, ReadLatProxy   float64
	WriteLatOrig, WriteLatProxy float64
}

// fig7Sample is one DRAM configuration's paired measurement across the
// four Figure 7 metrics, in fig7Metrics order.
type fig7Sample struct {
	Orig [4]float64 `json:"orig"`
	Prox [4]float64 `json:"prox"`
}

func fig7Metrics() []core.Metric {
	return []core.Metric{core.DRAMRowBufferLocality, core.DRAMQueueLen, core.DRAMReadLatency, core.DRAMWriteLatency}
}

// Fig7 regenerates Figure 7. Each (benchmark, configuration) point is
// one execution-engine job measuring all four metrics from a single
// original/proxy simulation pair.
func (o *Options) Fig7() (*Fig7Result, error) {
	o.fillDefaults()
	start := time.Now()
	gens := DRAMSweep(o.Cores)
	metrics := fig7Metrics()
	res := &Fig7Result{
		RBL:      &FigureResult{ID: "fig7/rbl", Title: "DRAM row buffer locality", Metric: core.DRAMRowBufferLocality.Name},
		QueueLen: &FigureResult{ID: "fig7/queue", Title: "DRAM avg queue length", Metric: core.DRAMQueueLen.Name},
		ReadLat:  &FigureResult{ID: "fig7/rdlat", Title: "DRAM avg read latency", Metric: core.DRAMReadLatency.Name},
		WriteLat: &FigureResult{ID: "fig7/wrlat", Title: "DRAM avg write latency", Metric: core.DRAMWriteLatency.Name},
	}
	wl := o.workloads()
	jobs := make([]runner.Job[fig7Sample], 0, len(o.Benchmarks)*len(gens))
	for _, name := range o.Benchmarks {
		name := name
		for _, g := range gens {
			g := g
			jobs = append(jobs, runner.Job[fig7Sample]{
				Key: o.jobKey("fig7", name, g.Label),
				Run: func(ctx context.Context) (fig7Sample, error) {
					w, err := wl.get(name)
					if err != nil {
						return fig7Sample{}, err
					}
					ocfg, err := g.Make()
					if err != nil {
						return fig7Sample{}, err
					}
					ocfg.Workers = o.SimWorkers
					om, err := w.SimulateOriginal(ocfg)
					if err != nil {
						return fig7Sample{}, err
					}
					pcfg, err := g.Make()
					if err != nil {
						return fig7Sample{}, err
					}
					pcfg.Workers = o.SimWorkers
					pm, err := w.SimulateProxy(pcfg)
					if err != nil {
						return fig7Sample{}, err
					}
					var s fig7Sample
					for mi, m := range fig7Metrics() {
						s.Orig[mi] = m.Fn(om)
						s.Prox[mi] = m.Fn(pm)
					}
					return s, nil
				},
			})
		}
	}
	results, st, err := runJobs(o, "fig7", jobs)
	if err != nil {
		return nil, fmt.Errorf("eval fig7: %w", err)
	}
	if err := collectErrors("fig7", results); err != nil && !o.Tolerate {
		return nil, err
	}
	type series struct{ orig, prox []float64 }
	figs := []*FigureResult{res.RBL, res.QueueLen, res.ReadLat, res.WriteLat}
	asRate := []bool{true, false, false, false}
	for bi, name := range o.Benchmarks {
		if ferr := benchFailure(results, bi, len(gens)); ferr != nil {
			o.logf("fig7 %-12s skipped: %v", name, ferr)
			continue
		}
		perMetric := make([]series, len(metrics))
		for gi := range gens {
			s := results[bi*len(gens)+gi].Value
			for mi := range metrics {
				perMetric[mi].orig = append(perMetric[mi].orig, s.Orig[mi])
				perMetric[mi].prox = append(perMetric[mi].prox, s.Prox[mi])
			}
		}
		for mi, fig := range figs {
			row := BenchResult{Benchmark: name, Points: len(gens),
				Correlation: correlation(perMetric[mi].orig, perMetric[mi].prox)}
			if asRate[mi] {
				row.Error = rateError(perMetric[mi].orig, perMetric[mi].prox)
			} else {
				row.Error = relError(perMetric[mi].orig, perMetric[mi].prox)
			}
			fig.Rows = append(fig.Rows, row)
		}
		res.Normalized = append(res.Normalized, Fig7Row{
			Benchmark:     name,
			RBLOrig:       stats.Mean(perMetric[0].orig),
			RBLProxy:      stats.Mean(perMetric[0].prox),
			QueueOrig:     stats.Mean(perMetric[1].orig),
			QueueProxy:    stats.Mean(perMetric[1].prox),
			ReadLatOrig:   stats.Mean(perMetric[2].orig),
			ReadLatProxy:  stats.Mean(perMetric[2].prox),
			WriteLatOrig:  stats.Mean(perMetric[3].orig),
			WriteLatProxy: stats.Mean(perMetric[3].prox),
		})
		o.logf("fig7 %-12s rbl %5.2fpp queue %6.2f%% rdlat %6.2f%% wrlat %6.2f%%",
			name,
			res.RBL.Rows[len(res.RBL.Rows)-1].Error,
			res.QueueLen.Rows[len(res.QueueLen.Rows)-1].Error,
			res.ReadLat.Rows[len(res.ReadLat.Rows)-1].Error,
			res.WriteLat.Rows[len(res.WriteLat.Rows)-1].Error)
	}
	// Normalize bars to original AES, the paper's reference benchmark.
	var aes *Fig7Row
	for i := range res.Normalized {
		if res.Normalized[i].Benchmark == "aes" {
			aes = &res.Normalized[i]
			break
		}
	}
	if aes != nil {
		ref := *aes
		norm := func(v, r float64) float64 {
			if r == 0 {
				return 0
			}
			return v / r
		}
		for i := range res.Normalized {
			r := &res.Normalized[i]
			r.RBLOrig, r.RBLProxy = norm(r.RBLOrig, ref.RBLOrig), norm(r.RBLProxy, ref.RBLOrig)
			r.QueueOrig, r.QueueProxy = norm(r.QueueOrig, ref.QueueOrig), norm(r.QueueProxy, ref.QueueOrig)
			r.ReadLatOrig, r.ReadLatProxy = norm(r.ReadLatOrig, ref.ReadLatOrig), norm(r.ReadLatProxy, ref.ReadLatOrig)
			r.WriteLatOrig, r.WriteLatProxy = norm(r.WriteLatOrig, ref.WriteLatOrig), norm(r.WriteLatProxy, ref.WriteLatOrig)
		}
	}
	if len(res.Normalized) == 0 {
		return nil, fmt.Errorf("eval fig7: every benchmark failed")
	}
	for _, fig := range figs {
		fig.finalize()
		if !o.NoTimings {
			fig.Elapsed = time.Since(start)
			fig.Exec = st
		}
	}
	return res, nil
}

// Fig8Point is one miniaturization level of Figure 8.
type Fig8Point struct {
	// Factor is the trace size reduction (1x..16x).
	Factor float64
	// Accuracy is 100 minus the mean absolute L1 miss-rate error in
	// percentage points, averaged over benchmarks — the left axis.
	Accuracy float64
	// Speedup is original simulation wall time divided by proxy
	// simulation wall time — the right axis.
	Speedup float64
	// RequestRatio is original/proxy request counts (the storage
	// reduction).
	RequestRatio float64
}

// Fig8Result carries the miniaturization sweep.
type Fig8Result struct {
	Points  []Fig8Point
	Elapsed time.Duration
}

// fig8Sample is one (factor, benchmark) measurement: cloning error plus
// the timing and volume inputs of the speedup/storage axes. Simulation
// times are recorded in the checkpoint so resumed points keep their
// measured speedups.
type fig8Sample struct {
	Err      float64 `json:"err"`
	OrigNS   int64   `json:"orig_ns"`
	ProxNS   int64   `json:"prox_ns"`
	OrigReqs uint64  `json:"orig_reqs"`
	ProxReqs uint64  `json:"prox_reqs"`
}

// Fig8 regenerates Figure 8: cloning accuracy and simulation speedup as
// the proxy shrinks from 1x to 16x. Each (factor, benchmark) pair is one
// job; the workload is prepared inside the job because the pipeline
// itself depends on the factor.
func (o *Options) Fig8() (*Fig8Result, error) {
	o.fillDefaults()
	start := time.Now()
	factors := []float64{1, 2, 4, 8, 16}
	jobs := make([]runner.Job[fig8Sample], 0, len(factors)*len(o.Benchmarks))
	for _, factor := range factors {
		factor := factor
		for _, name := range o.Benchmarks {
			name := name
			jobs = append(jobs, runner.Job[fig8Sample]{
				Key: o.jobKey("fig8", name, "factor="+strconv.FormatFloat(factor, 'g', -1, 64)),
				Run: func(ctx context.Context) (fig8Sample, error) {
					pcfg := profiler.DefaultConfig()
					w, err := core.Prepare(name, o.Scale, pcfg, synth.Options{Seed: o.Seed, ScaleFactor: factor})
					if err != nil {
						return fig8Sample{}, err
					}
					cfg := baseConfig(o.Cores)
					t0 := time.Now()
					om, err := w.SimulateOriginal(cfg)
					if err != nil {
						return fig8Sample{}, err
					}
					t1 := time.Now()
					pm, err := w.SimulateProxy(cfg)
					if err != nil {
						return fig8Sample{}, err
					}
					t2 := time.Now()
					return fig8Sample{
						Err:      stats.AbsError(om.L1MissRate(), pm.L1MissRate()),
						OrigNS:   t1.Sub(t0).Nanoseconds(),
						ProxNS:   t2.Sub(t1).Nanoseconds(),
						OrigReqs: om.Requests,
						ProxReqs: pm.Requests,
					}, nil
				},
			})
		}
	}
	results, _, err := runJobs(o, "fig8", jobs)
	if err != nil {
		return nil, fmt.Errorf("eval fig8: %w", err)
	}
	// Tolerate is deliberately not honored here: each factor's accuracy
	// averages across benchmarks, so dropping one would silently shift
	// every point of the curve rather than removing a labeled row.
	if err := collectErrors("fig8", results); err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	for fi, factor := range factors {
		var errs []float64
		var origNS, proxNS int64
		var origReqs, proxReqs uint64
		for bi := range o.Benchmarks {
			s := results[fi*len(o.Benchmarks)+bi].Value
			errs = append(errs, s.Err)
			if !o.NoTimings {
				// The speedup axis is wall-clock and thus nondeterministic
				// across executions; NoTimings drops it (rendered as "-")
				// so reports stay byte-identical. The per-point checkpoint
				// payloads keep the measured nanoseconds either way.
				origNS += s.OrigNS
				proxNS += s.ProxNS
			}
			origReqs += s.OrigReqs
			proxReqs += s.ProxReqs
		}
		pt := Fig8Point{Factor: factor, Accuracy: 100 - stats.Mean(errs)}
		if proxNS > 0 {
			pt.Speedup = float64(origNS) / float64(proxNS)
		}
		if proxReqs > 0 {
			pt.RequestRatio = float64(origReqs) / float64(proxReqs)
		}
		res.Points = append(res.Points, pt)
		o.logf("fig8 %4.0fx accuracy %6.2f%% speedup %5.2fx (request ratio %.2fx)",
			pt.Factor, pt.Accuracy, pt.Speedup, pt.RequestRatio)
	}
	if !o.NoTimings {
		res.Elapsed = time.Since(start)
	}
	return res, nil
}

// Table1Row is one instruction row of Table 1.
type Table1Row struct {
	Benchmark   string
	PC          uint64
	Freq        float64 // fraction of dynamic references
	InterStride int64   // dominant inter-warp stride
	InterFreq   float64
	IntraStride int64 // dominant intra-warp stride
	Reuse       string
}

// Table1 regenerates Table 1: the dominant memory instructions, their
// stride structure and reuse class for the ten characterized benchmarks.
func (o *Options) Table1() ([]Table1Row, error) {
	o.fillDefaults()
	var rows []Table1Row
	for _, spec := range workloads.Table1Set() {
		tr, err := spec.Trace(o.Scale)
		if err != nil {
			return nil, err
		}
		p, err := profiler.ProfileKernel(tr, profiler.DefaultConfig())
		if err != nil {
			return nil, err
		}
		reuseClass := reuseLevelOf(p)
		dom := p.DominantInsts()
		if len(dom) > 3 {
			dom = dom[:3]
		}
		for _, i := range dom {
			inst := p.Insts[i]
			row := Table1Row{
				Benchmark: spec.Name,
				PC:        inst.PC,
				Freq:      p.InstFrequency(i),
				Reuse:     reuseClass,
			}
			if k, f, ok := inst.InterStride.Mode(); ok {
				row.InterStride, row.InterFreq = k, f
			}
			if k, _, ok := inst.IntraStride.Mode(); ok {
				row.IntraStride = k
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// reuseLevelOf classifies a profile's temporal locality with Table 1's
// thresholds (<30% low, 30-70% med, >70% high) from its P_R component.
func reuseLevelOf(p *profiler.Profile) string {
	var total, cold uint64
	for _, pp := range p.Profiles {
		total += pp.Reuse.Total()
		cold += pp.Reuse.Count(reuse.Cold)
	}
	if total == 0 {
		return "n/a"
	}
	frac := 1 - float64(cold)/float64(total)
	switch {
	case frac > 0.7:
		return "high"
	case frac >= 0.3:
		return "med"
	default:
		return "low"
	}
}

// Table2 returns the profiled system configuration as label/value pairs —
// the constants of Table 2.
func Table2() [][2]string {
	return [][2]string{
		{"Core Config", "15 SMs, 1400MHz, max 1024 threads, 32768 registers"},
		{"L1 Cache", "16KB 4-way, 128B line size, 1-cycle hit latency"},
		{"L2 Cache", "1MB, 8 banks, 128B line size, 8-way, 20-cycle hit latency"},
		{"Features", "memory coalescing enabled, 64 MSHRs/core, LRR scheduling"},
		{"DRAM", "GDDR3, 8 channels, 1 rank/channel, 8 banks/rank, tRCD-tCAS-tRP-tRAS 11-11-11-28, FR-FCFS"},
	}
}
