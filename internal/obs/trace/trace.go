// Package trace is the span layer of the observability stack: lightweight
// hierarchical spans that record where a pipeline run's wall-time and
// simulated cycles went. A span covers one unit of pipeline work — a
// figure sweep, one execution-engine job, a profiling phase, a simulation
// epoch — and carries begin/end wall timestamps, optional begin/end
// simulation cycles, and ordered key/value attributes. Ended spans
// accumulate into a bounded in-memory log exportable as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing) or as a
// JSONL structured-event stream.
//
// The nil contract matches obs.Registry: a nil *Tracer hands out nil
// *Span handles, and every method of a nil handle is a no-op, so
// instrumentation points are left in place permanently and cost one
// predictable branch when tracing is off. Tracing is write-only — no
// pipeline component ever reads span state — so attaching a tracer can
// never change a simulation result (enforced by TestObsInvariance).
//
// Handles are safe for concurrent use: all tracer state is guarded by one
// mutex taken at span begin/end, which is far off every simulator hot
// path (spans bound phases, not per-cycle work).
package trace

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ctxKey keys the span carried in a context.
type ctxKey struct{}

// NewContext returns ctx carrying s, so layers below an instrumented
// call boundary (e.g. a job body under the execution engine) can parent
// their spans correctly without explicit plumbing.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil (the no-op span)
// when there is none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// DefaultCap bounds the retained ended-event count when Options.Cap is
// not set. Beyond the cap, further events are counted in Dropped rather
// than retained, so an arbitrarily long sweep cannot grow the log without
// bound.
const DefaultCap = 1 << 16

// Attr is one ordered span attribute. Values are rendered into the
// export's args object; keep them to strings, integers and floats.
type Attr struct {
	Key   string
	Value interface{}
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Event is one ended span (or instant marker) in the tracer's log.
type Event struct {
	// ID is the span's unique id; Parent is the enclosing span's id (0
	// for roots). Track groups a root span and all its descendants onto
	// one timeline lane of the Chrome export.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Track  int    `json:"track"`
	// Name is the span name ("runner.job", "memsim.epoch", ...).
	Name string `json:"name"`
	// Instant marks a zero-duration point event.
	Instant bool `json:"instant,omitempty"`
	// StartUS and DurUS are microseconds of wall time relative to the
	// tracer's creation.
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	// StartCycle and EndCycle are simulation-cycle timestamps, present
	// only when the span recorded them via SetCycles.
	HasCycles  bool   `json:"-"`
	StartCycle uint64 `json:"start_cycle,omitempty"`
	EndCycle   uint64 `json:"end_cycle,omitempty"`
	// TraceID and RemoteParent link a span begun via RemoteChild to a
	// parent in another process (propagate.go): TraceID is the
	// distributed trace the span belongs to, RemoteParent the foreign
	// parent span's id. Both are zero for purely local spans, so exports
	// of single-process traces are byte-identical to before propagation
	// existed.
	TraceID      string `json:"trace_id,omitempty"`
	RemoteParent uint64 `json:"remote_parent,omitempty"`
	// Attrs are the span's attributes in the order they were added.
	Attrs []Attr `json:"-"`
}

// Options configures a Tracer.
type Options struct {
	// Cap bounds the retained event count; <= 0 selects DefaultCap.
	Cap int
	// Now supplies wall timestamps; nil selects time.Now. Tests inject a
	// deterministic clock so exports are golden-comparable.
	Now func() time.Time
	// TraceID fixes the tracer's distributed trace id (32 lowercase hex
	// chars); empty generates a random one. Tests pin it so span-context
	// headers are golden-comparable.
	TraceID string
}

// Tracer collects ended spans. The nil Tracer is the disabled
// implementation.
type Tracer struct {
	mu        sync.Mutex
	now       func() time.Time
	start     time.Time
	cap       int
	traceID   string
	defParent *Span // Root() parents under this span when set (propagate.go)
	events    []Event
	dropped   uint64
	nextID    uint64
	nextTrack int
}

// New returns an enabled tracer with default options.
func New() *Tracer { return NewWithOptions(Options{}) }

// NewWithOptions returns an enabled tracer.
func NewWithOptions(o Options) *Tracer {
	if o.Cap <= 0 {
		o.Cap = DefaultCap
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if !validTraceID(o.TraceID) {
		o.TraceID = randomTraceID()
	}
	return &Tracer{now: o.Now, start: o.Now(), cap: o.Cap, traceID: o.TraceID}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Span is one open unit of traced work. The nil Span is a no-op.
type Span struct {
	t            *Tracer
	id, parent   uint64
	track        int
	name         string
	startWall    time.Time
	attrs        []Attr
	hasCycles    bool
	startCycle   uint64
	endCycle     uint64
	remoteTrace  string
	remoteParent uint64
	ended        bool
}

// Root begins a top-level span on a fresh timeline track; nil for the nil
// tracer. When a default parent is installed (SetDefaultParent) the span
// nests under it instead — that is how a worker's eval spans end up under
// the lease span the coordinator's grant parented.
func (t *Tracer) Root(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTrack++
	if dp := t.defParent; dp != nil && !dp.ended {
		return t.begin(name, dp.id, t.nextTrack, attrs)
	}
	return t.begin(name, 0, t.nextTrack, attrs)
}

// begin allocates a span under the held tracer mutex.
func (t *Tracer) begin(name string, parent uint64, track int, attrs []Attr) *Span {
	t.nextID++
	return &Span{
		t:         t,
		id:        t.nextID,
		parent:    parent,
		track:     track,
		name:      name,
		startWall: t.now(),
		attrs:     append([]Attr(nil), attrs...),
	}
}

// Child begins a nested span on the same track; nil for the nil span.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.t.begin(name, s.id, s.track, attrs)
}

// ChildTrack begins a nested span on a fresh timeline lane. Use it for
// concurrent siblings — worker goroutines of one pool — whose spans
// would overlap (and mis-nest) if they shared their parent's lane.
func (s *Span) ChildTrack(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.t.nextTrack++
	return s.t.begin(name, s.id, s.t.nextTrack, attrs)
}

// Set appends attributes to an open span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
}

// SetCycles records the span's simulation-cycle window (begin/end cycle
// timestamps alongside the wall ones).
func (s *Span) SetCycles(begin, end uint64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.ended {
		s.hasCycles = true
		s.startCycle, s.endCycle = begin, end
	}
}

// End closes the span and appends it to the tracer's log. Ending a span
// twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	e := Event{
		ID:           s.id,
		Parent:       s.parent,
		Track:        s.track,
		Name:         s.name,
		StartUS:      float64(s.startWall.Sub(s.t.start)) / float64(time.Microsecond),
		DurUS:        float64(s.t.now().Sub(s.startWall)) / float64(time.Microsecond),
		HasCycles:    s.hasCycles,
		StartCycle:   s.startCycle,
		EndCycle:     s.endCycle,
		TraceID:      s.remoteTrace,
		RemoteParent: s.remoteParent,
		Attrs:        s.attrs,
	}
	s.t.record(e)
}

// Instant records a zero-duration point event on its own track.
func (t *Tracer) Instant(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.record(Event{
		ID:      t.nextID,
		Name:    name,
		Instant: true,
		StartUS: float64(t.now().Sub(t.start)) / float64(time.Microsecond),
		Attrs:   append([]Attr(nil), attrs...),
	})
}

// record appends under the held mutex, honoring the cap.
func (t *Tracer) record(e Event) {
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Len returns the number of retained ended events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the cap discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the retained log, sorted by start time (id
// breaks ties) so exports are deterministic regardless of which worker
// goroutine ended its span first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sortEvents(out)
	return out
}

// sortEvents orders events by (start, id) — the export order.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].StartUS != events[j].StartUS {
			return events[i].StartUS < events[j].StartUS
		}
		return events[i].ID < events[j].ID
	})
}

// argsJSON renders an event's attributes (plus its cycle window) as a
// deterministic JSON object, preserving attribute order.
func argsJSON(e Event) ([]byte, error) {
	var b []byte
	b = append(b, '{')
	first := true
	put := func(k string, v interface{}) error {
		if !first {
			b = append(b, ',')
		}
		first = false
		kb, err := json.Marshal(k)
		if err != nil {
			return err
		}
		vb, err := json.Marshal(v)
		if err != nil {
			return err
		}
		b = append(b, kb...)
		b = append(b, ':')
		b = append(b, vb...)
		return nil
	}
	for _, a := range e.Attrs {
		if err := put(a.Key, a.Value); err != nil {
			return nil, err
		}
	}
	if e.HasCycles {
		if err := put("start_cycle", e.StartCycle); err != nil {
			return nil, err
		}
		if err := put("end_cycle", e.EndCycle); err != nil {
			return nil, err
		}
	}
	if e.TraceID != "" {
		if err := put("trace_id", e.TraceID); err != nil {
			return nil, err
		}
	}
	if e.RemoteParent != 0 {
		if err := put("remote_parent", e.RemoteParent); err != nil {
			return nil, err
		}
	}
	b = append(b, '}')
	return b, nil
}

// fmtUS renders a microsecond timestamp without exponent notation, which
// some trace viewers reject.
func fmtUS(us float64) string {
	return strconv.FormatFloat(us, 'f', 3, 64)
}

// WriteChrome exports the log in the Chrome trace-event format — a JSON
// object with a traceEvents array of "X" (complete) and "i" (instant)
// events — directly loadable in Perfetto or chrome://tracing. Spans of
// one root share a tid (track), so a sweep's jobs render as parallel
// lanes. A nil tracer writes a valid empty trace.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	events := t.Events()
	for i, e := range events {
		line, err := chromeLine(e, 1)
		if err != nil {
			return err
		}
		if i < len(events)-1 {
			line += ","
		}
		if _, err := bw.WriteString(line + "\n"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeLine renders one event as a Chrome trace-event object under the
// given pid (process lane). Shared by WriteChrome (always pid 1) and the
// merged multi-process export (propagate.go).
func chromeLine(e Event, pid int) (string, error) {
	args, err := argsJSON(e)
	if err != nil {
		return "", err
	}
	name, err := json.Marshal(e.Name)
	if err != nil {
		return "", err
	}
	ph, extra := "X", `,"dur":`+fmtUS(e.DurUS)
	if e.Instant {
		ph, extra = "i", `,"s":"t"`
	}
	return fmt.Sprintf(`{"name":%s,"cat":"gmap","ph":%q,"ts":%s,"pid":%d,"tid":%d%s,"args":%s}`,
		name, ph, fmtUS(e.StartUS), pid, e.Track, extra, args), nil
}

// jsonlEvent is the JSONL wire form of one event.
type jsonlEvent struct {
	ID           uint64          `json:"id"`
	Parent       uint64          `json:"parent,omitempty"`
	Track        int             `json:"track"`
	Name         string          `json:"name"`
	Instant      bool            `json:"instant,omitempty"`
	StartUS      float64         `json:"start_us"`
	DurUS        float64         `json:"dur_us"`
	StartCycle   *uint64         `json:"start_cycle,omitempty"`
	EndCycle     *uint64         `json:"end_cycle,omitempty"`
	TraceID      string          `json:"trace_id,omitempty"`
	RemoteParent uint64          `json:"remote_parent,omitempty"`
	Attrs        json.RawMessage `json:"attrs,omitempty"`
}

// WriteJSONL exports the log as JSON Lines — one structured event object
// per line, in deterministic (start, id) order. This is the /trace
// endpoint's stream format. A nil tracer writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		je := jsonlEvent{
			ID: e.ID, Parent: e.Parent, Track: e.Track, Name: e.Name,
			Instant: e.Instant, StartUS: e.StartUS, DurUS: e.DurUS,
			TraceID: e.TraceID, RemoteParent: e.RemoteParent,
		}
		if e.HasCycles {
			sc, ec := e.StartCycle, e.EndCycle
			je.StartCycle, je.EndCycle = &sc, &ec
		}
		if len(e.Attrs) > 0 {
			args, err := argsJSON(Event{Attrs: e.Attrs})
			if err != nil {
				return err
			}
			je.Attrs = args
		}
		line, err := json.Marshal(je)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}
