// Package synth implements G-MAP's clone-generation phase (Algorithms 1
// and 2 of the paper): it expands a statistical profile back into
// synthetic, coalesced warp-level memory request streams that mimic the
// original application's locality, parallelism and footprint — without
// containing any of its original addresses when obfuscation is enabled.
//
// Generation works at warp granularity, matching the profiler: coalescing
// was applied before locality analysis, so each π-profile entry produces
// one cacheline transaction. The generated warp streams plug into the same
// memory-hierarchy simulator as coalesced original traces, which is what
// makes original-versus-proxy comparisons meaningful.
package synth

import (
	"fmt"
	"strconv"

	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/rng"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/trace"
)

// Options controls proxy generation.
type Options struct {
	// Seed drives all sampling; the same profile, options and seed always
	// produce the identical proxy.
	Seed uint64
	// ScaleFactor is the miniaturization factor (§4.6): the proxy carries
	// roughly 1/ScaleFactor of the original's requests. 1 means same
	// size; the paper generates proxies at ~4-5x. Values in (0, 1) scale
	// the workload UP instead (§1: modeling futuristic workloads with
	// larger footprints and more threads): 0.25 produces a proxy with
	// ~4x the requests, extending each π path and growing the warp
	// population and its anchor span proportionally.
	ScaleFactor float64
	// Obfuscate replaces every instruction's base address with a
	// deterministic pseudo-random value (derived from ObfuscationKey),
	// hiding the original address space while preserving strides and
	// reuse — the proprietary-sharing mode motivated in §1 and §4.2.
	Obfuscate bool
	// ObfuscationKey selects the obfuscated layout.
	ObfuscationKey uint64
	// Ablation selectively disables generation mechanisms for the
	// ablation study (DESIGN.md §5); all-false is the full generator.
	Ablation Ablation
	// Obs, when non-nil, times clone generation under the
	// "synth.generate" phase (pprof label + duration histogram). Purely
	// observational; the generated proxy is identical.
	Obs *obs.Registry
	// TraceSpan, when non-nil, records generation as a "synth.generate"
	// child span of the given span. Write-only, like Obs.
	TraceSpan *obstrace.Span
}

// Ablation switches off individual clone-generation mechanisms so their
// contribution to accuracy can be measured. Disabling everything leaves
// the literal Algorithm 1 of the paper: iid stride/reuse sampling with no
// footprint confinement, no run structure and no cross-warp templates.
type Ablation struct {
	// NoWindows removes footprint and anchor confinement: stride walks
	// become unbounded random walks.
	NoWindows bool
	// NoTemplates disables per-cluster offset templates: every warp is
	// sampled independently even for warp-invariant instructions.
	NoTemplates bool
	// NoRunLengths disables run-length replay: strides are drawn iid.
	NoRunLengths bool
	// NoReuse disables the reuse-replay path: irregular instructions use
	// stride sampling only.
	NoReuse bool
}

// DefaultOptions mirrors the paper's evaluation settings: scaling factor
// ~4, no obfuscation.
func DefaultOptions() Options {
	return Options{Seed: 1, ScaleFactor: 4}
}

// Proxy is a generated clone: synthetic warp-level request streams plus
// the preserved launch geometry.
type Proxy struct {
	Name     string
	GridDim  int
	BlockDim int
	// Warps holds one generated stream per warp, with Block set for
	// TB-to-core assignment.
	Warps []trace.WarpTrace
	// Requests is the total generated request count (J in Algorithm 2).
	Requests int
}

// instSamplers holds the per-instruction samplers built once per
// generation run.
type instSamplers struct {
	inter        *stats.Sampler // P_E
	intra        *stats.Sampler // P_A
	intraSupport *stats.Histogram
	// runs samples a run length for a chosen stride, preserving the
	// original's fixed-length inner sweeps (see profiler.StaticInst.Runs).
	runs map[int64]*stats.Sampler
}

// Generate runs Algorithm 2: it assigns a π profile to every warp of the
// (geometry-preserving) proxy, generates each warp's trace with Algorithm
// 1, and returns the coalesced warp streams ready for scheduling onto
// cores by the memory-hierarchy simulator.
func Generate(p *profiler.Profile, opts Options) (*Proxy, error) {
	var proxy *Proxy
	var err error
	sp := opts.TraceSpan.Child("synth.generate")
	opts.Obs.Phase("synth.generate", func() {
		proxy, err = generate(p, opts)
	})
	sp.End()
	return proxy, err
}

// generate is the untimed body of Generate.
func generate(p *profiler.Profile, opts Options) (*Proxy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.ScaleFactor <= 0 {
		opts.ScaleFactor = 1
	}
	r := rng.New(opts.Seed ^ 0x6d617031)

	// Base addresses B, optionally obfuscated. B is mutated during
	// generation (Algorithm 1 line 9 chains warps' first accesses), so
	// copy it.
	bases := make([]uint64, len(p.Insts))
	for i, inst := range p.Insts {
		if opts.Obfuscate {
			// Keep proxies inside a 1TB synthetic address space, aligned
			// to the profiling line size.
			bases[i] = rng.Mix64(opts.ObfuscationKey^inst.PC) % (1 << 40) &^ (p.LineSize - 1)
		} else {
			bases[i] = inst.Base
		}
	}

	samplers := make([]instSamplers, len(p.Insts))
	for i := range p.Insts {
		samplers[i] = instSamplers{
			inter:        stats.NewSampler(p.Insts[i].InterStride),
			intra:        stats.NewSampler(p.Insts[i].IntraStride),
			intraSupport: p.Insts[i].IntraStride,
		}
		if len(p.Insts[i].Runs) > 0 {
			rs := make(map[int64]*stats.Sampler, len(p.Insts[i].Runs))
			for key, h := range p.Insts[i].Runs {
				stride, err := strconv.ParseInt(key, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("synth: profile %q: bad run key %q", p.Name, key)
				}
				rs[stride] = stats.NewSampler(h)
			}
			samplers[i].runs = rs
		}
	}
	profileSampler, err := newProfileSampler(p)
	if err != nil {
		return nil, err
	}
	reuseSamplers := make([]*stats.Sampler, len(p.Profiles))
	for i := range p.Profiles {
		reuseSamplers[i] = stats.NewSampler(p.Profiles[i].Reuse)
	}

	// Miniaturization (§4.6): the factor is split evenly (in the
	// geometric sense) between the intra-thread statistics — each π
	// sequence is decimated by √S, and the footprint windows shrink with
	// it — and the inter-thread statistics: the warp population drops by
	// √S, whole threadblocks at a time, which keeps the per-core resident
	// warp mix (and with it the cache pressure the original exerts)
	// nearly intact. Decimating only sequences would leave mostly-cold
	// sweep prefixes; dropping only warps would idle cores.
	warpCount := p.Warps
	seqScale := 1.0
	warpScale := 1.0
	seqRepeat := 1
	if opts.ScaleFactor < 1 {
		// Scale-up: split the growth factor between longer per-warp paths
		// (the π sequence repeats, its stride walks continuing across
		// repetitions) and a larger warp population, whole blocks at a
		// time, with the anchor windows widened to let the new warps
		// chain beyond the profiled span.
		up := 1 / opts.ScaleFactor
		g := sqrt(up)
		seqRepeat = int(g + 0.5)
		if seqRepeat < 1 {
			seqRepeat = 1
		}
		warpGrow := up / float64(seqRepeat)
		warpsPerBlock := (p.BlockDim + 31) / 32
		blocks := (p.Warps + warpsPerBlock - 1) / warpsPerBlock
		growBlocks := int(float64(blocks)*warpGrow + 0.5)
		if growBlocks < blocks {
			growBlocks = blocks
		}
		warpCount = growBlocks * warpsPerBlock
	}
	if opts.ScaleFactor > 1 {
		seqScale = sqrt(opts.ScaleFactor)
		maxSeq := 0
		for _, pp := range p.Profiles {
			if len(pp.Seq) > maxSeq {
				maxSeq = len(pp.Seq)
			}
		}
		if int(seqScale) > maxSeq {
			seqScale = float64(maxSeq)
		}
		warpScale = opts.ScaleFactor / seqScale
		// Drop whole trailing threadblocks so surviving blocks keep their
		// full warp complement.
		warpsPerBlock := (p.BlockDim + 31) / 32
		blocks := (p.Warps + warpsPerBlock - 1) / warpsPerBlock
		keepBlocks := int(float64(blocks)/warpScale + 0.5)
		if keepBlocks < 1 {
			keepBlocks = 1
		}
		warpCount = keepBlocks * warpsPerBlock
		if warpCount > p.Warps {
			warpCount = p.Warps
		}
	}

	warpsPerBlock := (p.BlockDim + 31) / 32
	proxy := &Proxy{
		Name:     p.Name,
		GridDim:  p.GridDim,
		BlockDim: p.BlockDim,
		Warps:    make([]trace.WarpTrace, warpCount),
	}
	gen := &warpGen{
		profile:  p,
		bases:    bases,
		anchor0:  append([]uint64(nil), bases...),
		samplers: samplers,
		offLo:    make([]int64, len(p.Insts)),
		offHi:    make([]int64, len(p.Insts)),
		abl:      opts.Ablation,
	}
	anchorGrow := float64(warpCount) / float64(max(p.Warps, 1))
	if anchorGrow > 1 {
		for i := range p.Insts {
			gen.anchorLo = append(gen.anchorLo, int64(float64(p.Insts[i].AnchorLo)*anchorGrow))
			gen.anchorHi = append(gen.anchorHi, int64(float64(p.Insts[i].AnchorHi)*anchorGrow))
		}
	} else {
		for i := range p.Insts {
			gen.anchorLo = append(gen.anchorLo, p.Insts[i].AnchorLo)
			gen.anchorHi = append(gen.anchorHi, p.Insts[i].AnchorHi)
		}
	}
	for i := range p.Insts {
		if opts.Ablation.NoWindows {
			gen.offLo[i], gen.offHi[i] = 0, 0
			continue
		}
		if seqRepeat > 1 {
			// Scale-up: a repeated path sweeps proportionally farther.
			gen.offLo[i] = p.Insts[i].OffLo * int64(seqRepeat)
			gen.offHi[i] = p.Insts[i].OffHi * int64(seqRepeat)
			continue
		}
		// Footprint windows stay unscaled under miniaturization: they
		// bound each warp's *instantaneous* working set, and preserving
		// that is what keeps the composition of the L1 miss stream (cold
		// versus capacity revisits) — and therefore L2 behaviour —
		// faithful. The request-count reduction alone shrinks the traced
		// footprint.
		gen.offLo[i], gen.offHi[i] = p.Insts[i].OffLo, p.Insts[i].OffHi
	}
	// Per-cluster state: the decimated sequence and the offset template
	// produced by the cluster's first generated warp. Warp-invariant
	// (Deterministic) instructions replay the template so that warps stay
	// phase-aligned the way lockstep SIMT execution aligns them in the
	// original; irregular instructions are resampled per warp.
	states := make([]*clusterState, len(p.Profiles))
	for w := 0; w < warpCount; w++ {
		pi := int(profileSampler.Sample(r)) // Algorithm 2 line 5
		wt := &proxy.Warps[w]
		wt.WarpID = w
		wt.Block = w / warpsPerBlock
		isSync := func(k int) bool { return p.Insts[k].Kind == trace.Sync }
		st := states[pi]
		switch {
		case st == nil:
			st = &clusterState{seq: repeatSeq(sampleSeq(p.Profiles[pi].Seq, seqScale, isSync, r), seqRepeat)}
			wt.Requests = gen.generateRef(st, reuseSamplers[pi], r) // Algorithm 1
			states[pi] = st
		case opts.Ablation.NoTemplates:
			// Re-run the reference algorithm independently per warp.
			tmp := &clusterState{seq: st.seq}
			wt.Requests = gen.generateRef(tmp, reuseSamplers[pi], r)
		default:
			wt.Requests = gen.generateMember(st, reuseSamplers[pi], r)
		}
		for i := range wt.Requests {
			wt.Requests[i].WarpID = w
		}
		proxy.Requests += len(wt.Requests)
	}
	return proxy, nil
}

// clusterState carries one π cluster's decimated sequence and the offset
// template (per position, relative to the warp's first access of that
// position's instruction) recorded from the cluster's reference warp.
type clusterState struct {
	seq  []int
	tmpl []int64
}

// repeatSeq concatenates n copies of seq (scale-up: the per-warp path
// continues through further sweeps, the stride walks extending naturally).
func repeatSeq(seq []int, n int) []int {
	if n <= 1 {
		return seq
	}
	out := make([]int, 0, len(seq)*n)
	for i := 0; i < n; i++ {
		out = append(out, seq...)
	}
	return out
}

// max returns the larger of two ints.
func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sqrt is Newton's method for the miniaturization split; the stdlib math
// package would do, but the dependency is not otherwise needed here.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 32; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// sampleSeq decimates a π sequence by the miniaturization factor. Entries
// are kept with probability 1/factor across the whole path, so the
// instruction mix and the relative weight of every execution phase are
// preserved — a prefix cut would instead drop entire trailing phases
// (e.g. a kernel's second loop) and with them their locality behaviour.
// At least one entry is always kept, and barrier entries are never
// dropped — synchronization structure survives any miniaturization.
func sampleSeq(seq []int, factor float64, isSync func(int) bool, r *rng.Rand) []int {
	if factor <= 1 {
		return seq
	}
	keep := 1 / factor
	out := make([]int, 0, int(float64(len(seq))*keep)+1)
	kept := 0
	for _, k := range seq {
		if isSync(k) {
			out = append(out, k)
			continue
		}
		if r.Bool(keep) {
			out = append(out, k)
			kept++
		}
	}
	if kept == 0 && len(seq) > 0 {
		out = append(out, seq[0])
	}
	return out
}

// newProfileSampler builds the Q-weighted sampler over Π.
func newProfileSampler(p *profiler.Profile) (*stats.Sampler, error) {
	h := stats.NewHistogram()
	for i, pp := range p.Profiles {
		h.AddN(int64(i), pp.Count)
	}
	s := stats.NewSampler(h)
	if s == nil {
		return nil, fmt.Errorf("synth: profile %q has no warp population", p.Name)
	}
	return s, nil
}

// warpGen carries the state shared across warps during one generation
// run; bases is the rolling B of Algorithm 1 (line 9 updates it so
// consecutive warps chain their first accesses through inter-warp
// strides).
type warpGen struct {
	profile  *profiler.Profile
	bases    []uint64 // global rolling B
	anchor0  []uint64 // the proxy's own first-warp anchors (window origin)
	samplers []instSamplers
	// offLo/offHi are the per-instruction footprint windows, scaled down
	// by the miniaturization factor (§4.6 "scaling down ... intra-thread
	// statistics"): a proxy with 1/S of the requests sweeps 1/S of the
	// footprint, which preserves the cold-miss fraction and the reuse
	// structure that the caches see.
	offLo []int64
	offHi []int64
	// anchorLo/anchorHi are the inter-warp chain windows, widened
	// proportionally when the warp population is scaled up.
	anchorLo []int64
	anchorHi []int64
	abl      Ablation
}

// generateRef is Algorithm 1 for a cluster's reference warp: it emits one
// request per entry of the (possibly decimated) π sequence and records the
// offset template into st.
func (g *warpGen) generateRef(st *clusterState, reuseSampler *stats.Sampler, r *rng.Rand) []trace.Request {
	seq := st.seq
	st.tmpl = make([]int64, 0, len(seq))
	out := make([]trace.Request, 0, len(seq))
	// b' — the per-warp rolling base (Algorithm 1 line 3) — and the
	// warp's first access per instruction, the anchor of the footprint
	// window the stride walk is confined to.
	local := make(map[int]uint64, 8)
	first := make(map[int]uint64, 8)
	// history[k] records the stream indices of k's past requests so the
	// reuse path can resolve a sampled depth to a same-instruction
	// revisit (see reuseOrStride).
	history := make(map[int][]int32, 8)
	runs := make(map[int]*runState, 8)
	for _, k := range seq {
		inst := &g.profile.Insts[k]
		var addr uint64
		if _, seen := local[k]; !seen {
			// First execution of instruction k by this warp: chain off
			// the global base through an inter-warp stride sample
			// (Algorithm 1 lines 6-9), confined to the profiled anchor
			// window so the chain cycles where the original cycled
			// instead of random-walking away.
			var offset int64
			if s := g.samplers[k].inter; s != nil {
				offset = s.Sample(r)
			}
			addr = addOffset(g.bases[k], offset)
			if span := g.anchorHi[k] - g.anchorLo[k]; span > 0 && !g.abl.NoWindows {
				off := int64(addr) - int64(g.anchor0[k])
				// Wrap to the boundary opposite the overflow so chains
				// keep sweeping in their dominant direction.
				if off > g.anchorHi[k] {
					addr = addOffset(g.anchor0[k], g.anchorLo[k])
				} else if off < g.anchorLo[k] {
					addr = addOffset(g.anchor0[k], g.anchorHi[k])
				}
			}
			g.bases[k] = addr
			local[k] = addr
			first[k] = addr
		} else if inst.Deterministic {
			// Warp-invariant instructions (§4.2 regularity) are generated
			// by the stride walk alone: their temporal locality is a
			// consequence of the stride geometry (overlapping or cyclic
			// sweeps inside the footprint window), so replaying explicit
			// reuse targets would double-count it and inject revisits the
			// original never makes back-to-back.
			addr = g.strideStep(k, local, first[k], runs, r)
		} else {
			// Irregular instructions: honor a sampled reuse distance when
			// the target is plausible, otherwise extend by a sampled
			// intra-thread stride (lines 11-17). Note that only the
			// stride path advances b' (line 17) — a satisfied reuse
			// leaves the rolling base untouched, so the stream returns to
			// its frontier afterwards.
			addr = g.reuseOrStride(k, local, first[k], history[k], runs, reuseSampler, out, r)
		}
		history[k] = append(history[k], int32(len(out)))
		st.tmpl = append(st.tmpl, int64(addr)-int64(first[k]))
		out = append(out, trace.Request{
			PC:      inst.PC,
			Addr:    addr,
			Kind:    inst.Kind,
			Threads: 32,
		})
	}
	return out
}

// reuseOrStride implements lines 11-17 of Algorithm 1; it updates
// local[k] (b' in the paper) only when it takes the stride path. The
// stride walk is confined to the instruction's profiled per-warp
// footprint window anchored at first — without this, independently
// sampled strides form an unbounded random walk whose working set
// diffuses far beyond the original's (DESIGN.md §5).
func (g *warpGen) reuseOrStride(k int, local map[int]uint64, first uint64, hist []int32, runs map[int]*runState, reuseSampler *stats.Sampler, generated []trace.Request, r *rng.Rand) uint64 {
	j := len(generated)
	if g.abl.NoReuse {
		reuseSampler = nil
	}
	if reuseSampler != nil && j > 0 {
		reuseDist := reuseSampler.Sample(r)
		// The sampled distance is applied unscaled even in miniaturized
		// proxies: an LRU cache's hit/miss outcome is a function of the
		// revisit's stack distance, so preserving the P_R shape is what
		// preserves miss rates at every capacity. (Scaling distances by
		// the miniaturization factor shrinks every working set and badly
		// distorts L2 behaviour.)
		// Cold samples (-1) and distances reaching past the start of the
		// generated trace cannot be satisfied.
		if reuseDist >= 0 && int64(j-1) >= reuseDist && len(hist) > 0 {
			// Resolve the sampled depth to instruction k's own request
			// nearest to it: the profiled distance counts the whole
			// interleaved stream, but the revisit the original made at
			// that depth touched one of k's lines — snapping to the
			// nearest same-instruction entry reproduces it even when
			// index j-1-reuse itself belongs to another instruction.
			want := int32(int64(j-1) - reuseDist)
			target := generated[nearestIndex(hist, want)].Addr
			jump := int64(target) - int64(generated[j-1].Addr)
			// The paper accepts the reuse when the jump looks like a
			// valid intra-thread stride for instruction k (line 12). We
			// additionally accept targets inside k's own footprint
			// window: in multi-phase kernels the previous request often
			// belongs to a different instruction, making the raw jump
			// fall outside supp(P_A^k) even though the revisit itself is
			// exactly what the original stream does.
			off := int64(target) - int64(first)
			inWindow := g.offHi[k] > g.offLo[k] && off >= g.offLo[k] && off <= g.offHi[k]
			if jump == 0 || inWindow || g.samplers[k].intraSupport.Contains(jump) {
				return target
			}
		}
	}
	return g.strideStep(k, local, first, runs, r)
}

// runState tracks an in-progress stride run for one instruction within
// one warp.
type runState struct {
	stride int64
	left   int64
}

// strideStep advances instruction k's rolling base by a sampled
// intra-thread stride, confined to the profiled footprint window: a walk
// that leaves the window restarts at the opposite boundary, exactly as
// the original's cyclic index expressions wrap (an ascending sweep
// restarts at the bottom, a descending one at the top). A modulo fold
// would scramble the stride lattice (offsets that were multiples of the
// sweep stride stop being so), destroying the reuse structure.
//
// Strides are drawn run-wise: when a new stride is chosen, a run length is
// sampled from the instruction's run-length distribution and the stride
// repeats for that many steps (window permitting). This reproduces the
// fixed-length inner sweeps of real kernels, which iid stride draws would
// blur into geometric run lengths.
func (g *warpGen) strideStep(k int, local map[int]uint64, first uint64, runs map[int]*runState, r *rng.Rand) uint64 {
	offLo, offHi := g.offLo[k], g.offHi[k]
	span := offHi - offLo
	sampler := g.samplers[k].intra
	var addr uint64
	switch {
	case sampler == nil:
		addr = local[k]
	default:
		rs := runs[k]
		if rs == nil {
			rs = &runState{}
			runs[k] = rs
		}
		cur := int64(local[k]) - int64(first)
		admissible := func(stride int64) bool {
			if span <= 0 {
				return true
			}
			off := cur + stride
			return off >= offLo && off <= offHi
		}
		if rs.left > 0 && admissible(rs.stride) {
			rs.left--
			addr = addOffset(local[k], rs.stride)
			break
		}
		prevStride, hadRun := rs.stride, rs.left == 0 && rs.stride != 0 && !g.abl.NoRunLengths
		rs.left = 0
		// Pick a new stride, conditioned on staying inside the window
		// (the admissible strides form one contiguous key interval, so
		// the restriction is exact) and, at a run boundary, on differing
		// from the run's stride — a maximal run by definition ends with a
		// different stride. Then start the new stride's run.
		var stride int64
		var ok bool
		lo, hi := offLo-cur, offHi-cur
		if span <= 0 {
			lo, hi = -(1 << 62), 1<<62
		}
		if hadRun {
			stride, ok = sampler.SampleRangeExcluding(r, lo, hi, prevStride)
		} else {
			stride, ok = sampler.SampleRange(r, lo, hi)
		}
		if !ok {
			// Every stride leaves the window: the sweep completed;
			// restart cyclically at the opposite boundary.
			if sampler.Keys()[0] > offHi-cur {
				addr = addOffset(first, offLo)
			} else {
				addr = addOffset(first, offHi)
			}
			break
		}
		if ls := g.samplers[k].runs[stride]; ls != nil && !g.abl.NoRunLengths {
			rs.stride = stride
			rs.left = ls.Sample(r) - 1
			if rs.left < 0 {
				rs.left = 0
			}
		}
		addr = addOffset(local[k], stride)
	}
	local[k] = addr
	return addr
}

// generateMember instantiates a non-reference warp of a cluster: it
// chains fresh first accesses through the inter-warp strides, replays the
// cluster template for warp-invariant instructions, and resamples
// irregular ones.
func (g *warpGen) generateMember(st *clusterState, reuseSampler *stats.Sampler, r *rng.Rand) []trace.Request {
	out := make([]trace.Request, 0, len(st.seq))
	local := make(map[int]uint64, 8)
	first := make(map[int]uint64, 8)
	history := make(map[int][]int32, 8)
	runs := make(map[int]*runState, 8)
	for j, k := range st.seq {
		inst := &g.profile.Insts[k]
		var addr uint64
		switch {
		case func() bool { _, seen := local[k]; return !seen }():
			var offset int64
			if s := g.samplers[k].inter; s != nil {
				offset = s.Sample(r)
			}
			addr = addOffset(g.bases[k], offset)
			if span := inst.AnchorHi - inst.AnchorLo; span > 0 && !g.abl.NoWindows {
				off := int64(addr) - int64(g.anchor0[k])
				if off > inst.AnchorHi {
					addr = addOffset(g.anchor0[k], inst.AnchorLo)
				} else if off < inst.AnchorLo {
					addr = addOffset(g.anchor0[k], inst.AnchorHi)
				}
			}
			g.bases[k] = addr
			local[k] = addr
			first[k] = addr
		case inst.Deterministic:
			addr = addOffset(first[k], st.tmpl[j])
			local[k] = addr
		default:
			addr = g.reuseOrStride(k, local, first[k], history[k], runs, reuseSampler, out, r)
		}
		history[k] = append(history[k], int32(len(out)))
		out = append(out, trace.Request{
			PC:      inst.PC,
			Addr:    addr,
			Kind:    inst.Kind,
			Threads: 32,
		})
	}
	return out
}

// nearestIndex returns the element of the sorted index slice closest to
// want.
func nearestIndex(hist []int32, want int32) int32 {
	lo, hi := 0, len(hist)
	for lo < hi {
		mid := (lo + hi) / 2
		if hist[mid] < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(hist) {
		return hist[len(hist)-1]
	}
	if lo == 0 {
		return hist[0]
	}
	if want-hist[lo-1] <= hist[lo]-want {
		return hist[lo-1]
	}
	return hist[lo]
}

// addOffset applies a signed offset to an address, clamping at zero to
// keep the synthetic space well-formed.
func addOffset(base uint64, off int64) uint64 {
	v := int64(base) + off
	if v < 0 {
		return 0
	}
	return uint64(v)
}
