// The operator's live fleet view: `gmap-eval -fleet-watch` polls
// /fleet/status and repaints a plain-text summary — a top(1) for a
// distributed sweep, no dependencies beyond a VT100 terminal.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// statusDoc mirrors FleetStatus for decoding, with the owner's embedded
// status held raw: fleet cannot import dist, so the coordinator fields
// it renders are re-decoded from the raw message into distMirror.
type statusDoc struct {
	Self         string          `json:"self"`
	NowUnixNS    int64           `json:"now_unix_ns"`
	StaleAfterNS int64           `json:"stale_after_ns"`
	Scrapes      uint64          `json:"scrapes"`
	ScrapeErrors uint64          `json:"scrape_errors"`
	Pushes       uint64          `json:"pushes"`
	Workers      []WorkerHealth  `json:"workers"`
	Dist         json.RawMessage `json:"dist,omitempty"`
}

// distMirror is the subset of the coordinator's Status the watch view
// renders. Unknown fields are ignored, so the view degrades gracefully
// against richer (or absent) status documents — gmap-served embeds a
// composite {dist, queue} document, matched here by the same keys.
type distMirror struct {
	Experiment string `json:"experiment"`
	Epoch      uint64 `json:"epoch"`
	TotalJobs  int    `json:"total_jobs"`
	DoneJobs   int    `json:"done_jobs"`
	Parts      int    `json:"parts"`
	DoneParts  int    `json:"done_parts"`
	LiveLeases int    `json:"live_leases"`
	Granted    uint64 `json:"granted"`
	Expired    uint64 `json:"expired"`
	Stolen     uint64 `json:"stolen"`
	Done       bool   `json:"done"`
	Partitions []struct {
		Part       int    `json:"part"`
		Keys       int    `json:"keys"`
		Remaining  int    `json:"remaining"`
		Lease      string `json:"lease,omitempty"`
		Worker     string `json:"worker,omitempty"`
		LeaseAgeNS int64  `json:"lease_age_ns,omitempty"`
	} `json:"partitions,omitempty"`
}

// Watch polls base+"/fleet/status" every interval and repaints w with
// RenderStatus until ctx is cancelled. Transient fetch errors render in
// place of the status rather than aborting — the fleet surviving a
// coordinator restart is exactly when an operator is watching.
func Watch(ctx context.Context, w io.Writer, base string, interval time.Duration) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	hc := &http.Client{Timeout: interval}
	url := strings.TrimSuffix(base, "/") + "/fleet/status"
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		doc, err := fetchStatus(ctx, hc, url)
		fmt.Fprint(w, "\033[H\033[2J") // home + clear: repaint in place
		if err != nil {
			fmt.Fprintf(w, "gmap fleet watch — %s\n\n  unreachable: %v\n", url, err)
		} else {
			RenderStatus(w, doc)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

func fetchStatus(ctx context.Context, hc *http.Client, url string) (statusDoc, error) {
	var doc statusDoc
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return doc, err
	}
	res, err := hc.Do(req)
	if err != nil {
		return doc, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("status %d", res.StatusCode)
	}
	err = json.NewDecoder(res.Body).Decode(&doc)
	return doc, err
}

// RenderStatus writes one watch frame. Exported (and pure) so tests can
// drive it from a fixed document.
func RenderStatus(w io.Writer, doc statusDoc) {
	fmt.Fprintf(w, "gmap fleet — %s  scrapes %d (%d errors)  pushes %d\n",
		doc.Self, doc.Scrapes, doc.ScrapeErrors, doc.Pushes)

	var dm distMirror
	if len(doc.Dist) > 0 && json.Unmarshal(doc.Dist, &dm) == nil && dm.TotalJobs > 0 {
		state := "running"
		if dm.Done {
			state = "done"
		}
		fmt.Fprintf(w, "sweep %s  epoch %d  %s  jobs %d/%d  parts %d/%d  leases %d live (granted %d, expired %d, stolen %d)\n",
			dm.Experiment, dm.Epoch, state, dm.DoneJobs, dm.TotalJobs,
			dm.DoneParts, dm.Parts, dm.LiveLeases, dm.Granted, dm.Expired, dm.Stolen)
		if len(dm.Partitions) > 0 {
			fmt.Fprintf(w, "\n  %-5s %-6s %-10s %-22s %-14s %s\n",
				"PART", "KEYS", "REMAINING", "LEASE", "WORKER", "LEASE AGE")
			for _, p := range dm.Partitions {
				age := "-"
				if p.LeaseAgeNS > 0 {
					age = time.Duration(p.LeaseAgeNS).Round(time.Millisecond).String()
				}
				lease, worker := p.Lease, p.Worker
				if lease == "" {
					lease, worker = "-", "-"
				}
				fmt.Fprintf(w, "  %-5d %-6d %-10d %-22s %-14s %s\n",
					p.Part, p.Keys, p.Remaining, lease, worker, age)
			}
		}
	}

	workers := append([]WorkerHealth(nil), doc.Workers...)
	sort.Slice(workers, func(i, j int) bool { return workers[i].Name < workers[j].Name })
	fmt.Fprintf(w, "\n  %-14s %-8s %-10s %-8s %-7s %s\n",
		"WORKER", "STATE", "LAST SEEN", "SCRAPES", "PUSHES", "ERROR")
	if len(workers) == 0 {
		fmt.Fprintf(w, "  (no workers reported yet)\n")
	}
	for _, wk := range workers {
		state := "live"
		switch {
		case wk.Final:
			state = "finished"
		case wk.Stale:
			state = "STALE"
		}
		seen := "-"
		if wk.LastSeenUnixNS > 0 {
			seen = time.Duration(wk.AgeNS).Round(time.Millisecond).String() + " ago"
		}
		fmt.Fprintf(w, "  %-14s %-8s %-10s %-8d %-7d %s\n",
			wk.Name, state, seen, wk.Scrapes, wk.Pushes, wk.LastError)
	}
}
