package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/uteda/gmap/internal/dist"
	"github.com/uteda/gmap/internal/serve/api"
)

// distFlags are the distributed-sweep knobs; the sweep-shape flags
// (-exp, -benchmarks, -scale, ...) are shared with the serial path.
type distFlags struct {
	listen   string        // -dist-listen: coordinator mode
	addrFile string        // -dist-addr-file
	parts    int           // -dist-parts
	leaseTTL time.Duration // -dist-lease-ttl
	worker   string        // -worker: worker mode
}

// runCoordinator distributes the sweep: partition the job space, lease
// parts to workers over HTTP, merge streamed results into the
// -checkpoint ledger, and render the merged report once every job is
// recorded. The ledger is the only durable state — re-running the same
// command over it resumes where the previous coordinator died.
func runCoordinator(ctx context.Context, spec api.JobSpec, df distFlags, ledger string, w io.Writer, logf func(string, ...interface{})) error {
	if ledger == "" {
		return fmt.Errorf("-dist-listen requires -checkpoint (the merge ledger)")
	}
	c, err := dist.NewCoordinator(dist.CoordinatorOptions{
		Spec:     spec,
		Parts:    df.parts,
		LeaseTTL: df.leaseTTL,
		Ledger:   ledger,
		Logf:     logf,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	srv, err := c.Serve(ctx, df.listen)
	if err != nil {
		return err
	}
	defer srv.Shutdown()
	fmt.Fprintf(os.Stderr, "gmap-eval: coordinating %s on http://%s (%+v)\n", spec.Experiment, srv.Addr(), c.StatusSnapshot())
	if df.addrFile != "" {
		if err := os.WriteFile(df.addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			return err
		}
	}
	if err := c.WaitDone(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gmap-eval: interrupted; merged points saved to %s, re-run to resume\n", ledger)
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}
	return c.WriteReport(w)
}

// runWorker joins a coordinator and processes leases until the sweep
// completes. The sweep's shape comes from the coordinator inside each
// lease grant; only execution knobs are local.
func runWorker(ctx context.Context, url string, workers, simWorkers int, logf func(string, ...interface{})) error {
	return dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator: url,
		Workers:     workers,
		SimWorkers:  simWorkers,
		Logf:        logf,
	})
}
