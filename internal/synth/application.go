package synth

import (
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/trace"
)

// AppProxy is a generated application clone: one proxy per kernel launch,
// in execution order.
type AppProxy struct {
	Name     string
	Launches []*Proxy
	// Requests is the total request count over all launches.
	Requests int
}

// WarpLaunches returns the launches' warp streams in the form the
// memory-hierarchy simulator's NewSequence consumes.
func (a *AppProxy) WarpLaunches() [][]trace.WarpTrace {
	out := make([][]trace.WarpTrace, len(a.Launches))
	for i, l := range a.Launches {
		out[i] = l.Warps
	}
	return out
}

// GenerateApp expands an application profile into a launch-sequence clone.
// Every launch is generated independently — re-launches of the same kernel
// draw fresh samples from the shared kernel profile (seeded per launch),
// the statistical analogue of iterative kernels revisiting the same data
// with different dynamic behaviour.
func GenerateApp(ap *profiler.AppProfile, opts Options) (*AppProxy, error) {
	if err := ap.Validate(); err != nil {
		return nil, err
	}
	out := &AppProxy{Name: ap.Name}
	for li, ki := range ap.Launches {
		launchOpts := opts
		launchOpts.Seed = opts.Seed ^ (uint64(li)+1)*0x9e3779b97f4a7c15
		p, err := Generate(ap.Kernels[ki], launchOpts)
		if err != nil {
			return nil, err
		}
		out.Launches = append(out.Launches, p)
		out.Requests += p.Requests
	}
	return out, nil
}
