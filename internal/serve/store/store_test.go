package store_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/serve/store"
)

func open(t *testing.T, fsys fault.FS, reg *obs.Registry) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir(), fsys, reg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCanonicalIdempotent is the hash-stability property: decoding a
// profile's canonical bytes and re-canonicalizing reproduces them
// exactly, so hash(canon(p)) == hash(canon(canon(p))) whatever
// formatting the submission used.
func TestCanonicalIdempotent(t *testing.T) {
	n := proptest.N(t, 50, 300)
	for seed := 0; seed < n; seed++ {
		g := proptest.New(uint64(seed) + 1)
		p := g.Profile()
		canon, err := store.CanonicalProfile(p)
		if err != nil {
			t.Fatalf("seed %d: canonicalize: %v", seed, err)
		}
		p2, err := profiler.ReadJSON(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("seed %d: re-decode canonical bytes: %v", seed, err)
		}
		canon2, err := store.CanonicalProfile(p2)
		if err != nil {
			t.Fatalf("seed %d: re-canonicalize: %v", seed, err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("seed %d: canonicalization not idempotent:\n%s\nvs\n%s", seed, canon, canon2)
		}
		if store.HashBytes(canon) != store.HashBytes(canon2) {
			t.Fatalf("seed %d: hash changed across canonicalization rounds", seed)
		}
		// An indented re-encoding of the same profile must still land on
		// the same canonical bytes after a decode round-trip.
		loose, err := json.MarshalIndent(p, "", "   ")
		if err != nil {
			t.Fatal(err)
		}
		p3, err := profiler.ReadJSON(bytes.NewReader(loose))
		if err != nil {
			t.Fatalf("seed %d: decode indented: %v", seed, err)
		}
		canon3, err := store.CanonicalProfile(p3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon3) {
			t.Fatalf("seed %d: formatting leaked into the canonical encoding", seed)
		}
	}
}

// TestCanonicalInjective is the collision property: structurally
// different profiles canonicalize to different bytes (and so different
// hashes). Random pairs plus targeted single-field perturbations.
func TestCanonicalInjective(t *testing.T) {
	n := proptest.N(t, 30, 200)
	for seed := 0; seed < n; seed++ {
		g1 := proptest.New(uint64(seed)*2 + 1)
		g2 := proptest.New(uint64(seed)*2 + 2)
		p1, p2 := g1.Profile(), g2.Profile()
		c1, err := store.CanonicalProfile(p1)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := store.CanonicalProfile(p2)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(c1, c2) {
			// Identical draws are astronomically unlikely; treat as failure.
			t.Fatalf("seed %d: independent random profiles canonicalized identically", seed)
		}

		// Single-field perturbation must change the hash.
		mut := proptest.New(uint64(seed) + 7).Profile()
		base, err := store.CanonicalProfile(mut)
		if err != nil {
			t.Fatal(err)
		}
		mut.Insts[0].Count++
		mut.TotalRequests++
		changed, err := store.CanonicalProfile(mut)
		if err != nil {
			t.Fatal(err)
		}
		if store.HashBytes(base) == store.HashBytes(changed) {
			t.Fatalf("seed %d: perturbed profile kept its hash", seed)
		}
	}
}

func TestPutProfileDedup(t *testing.T) {
	reg := obs.New()
	s := open(t, nil, reg)
	p := proptest.New(11).Profile()
	h1, existed, err := s.PutProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Fatal("first put reported existed")
	}
	h2, existed, err := s.PutProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !existed || h2 != h1 {
		t.Fatalf("second put: existed=%v hash=%s want dedup onto %s", existed, h2, h1)
	}
	got, err := s.GetProfile(h1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := store.CanonicalProfile(got)
	if err != nil {
		t.Fatal(err)
	}
	if store.HashBytes(rt) != h1 {
		t.Fatal("stored profile does not round-trip to its own hash")
	}
	if n := reg.CounterTotal("serve.store.profile_dedup"); n != 1 {
		t.Fatalf("profile_dedup = %d, want 1", n)
	}
}

func TestGetProfileGuards(t *testing.T) {
	s := open(t, nil, nil)
	if _, err := s.GetProfile("../../etc/passwd"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("traversal hash: err = %v, want ErrNotFound", err)
	}
	if _, err := s.GetProfile(strings.Repeat("a", 64)); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("absent hash: err = %v, want ErrNotFound", err)
	}
}

func TestResultCache(t *testing.T) {
	reg := obs.New()
	s := open(t, nil, reg)
	ph := store.HashBytes([]byte("profile"))
	ch := store.HashBytes([]byte("config"))
	if _, ok, err := s.GetResult(ph, ch); err != nil || ok {
		t.Fatalf("empty cache: ok=%v err=%v", ok, err)
	}
	if err := s.PutResult(ph, ch, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// Results are immutable: a second put of the same key is a no-op.
	if err := s.PutResult(ph, ch, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.GetResult(ph, ch)
	if err != nil || !ok {
		t.Fatalf("cached result: ok=%v err=%v", ok, err)
	}
	if string(data) != `{"v":1}` {
		t.Fatalf("cached result = %s, want the first committed value", data)
	}
	if hits, misses := reg.CounterTotal("serve.store.result_hits"), reg.CounterTotal("serve.store.result_misses"); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestJobJournal(t *testing.T) {
	s := open(t, nil, nil)
	id := strings.Repeat("ab", 12)
	env := map[string]string{"tenant": "t1"}
	if err := s.PutJobSpec(id, env); err != nil {
		t.Fatal(err)
	}
	specs, err := s.ListJobSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[id] == nil {
		t.Fatalf("ListJobSpecs = %v, want one entry for %s", specs, id)
	}
	if err := s.DeleteJobSpec(id); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteJobSpec(id); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	specs, err = s.ListJobSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 0 {
		t.Fatalf("journal not empty after delete: %v", specs)
	}
	if err := s.PutJobSpec("../evil", env); err == nil {
		t.Fatal("traversal job id accepted")
	}
}

// TestCrashMatrixNeverCorruptsCommitted is the durability contract: a
// crash at ANY byte offset of a store write — profile, result or
// journal entry — leaves every previously committed object intact and
// never exposes a partial object under a committed name.
func TestCrashMatrixNeverCorruptsCommitted(t *testing.T) {
	p := proptest.New(3).Profile()
	canon, err := store.CanonicalProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	resultData := []byte(`{"kind":"sweep","report":"== fig6a ==\n"}`)
	ph := store.HashBytes([]byte("what"))
	ch := store.HashBytes([]byte("how"))
	jobEnv := map[string]string{"tenant": "t1", "kind": "sweep", "experiment": "fig6a"}
	jobData, err := json.Marshal(jobEnv)
	if err != nil {
		t.Fatal(err)
	}

	type op struct {
		name string
		size int // byte length of the injected write stream
		do   func(s *store.Store) error
	}
	ops := []op{
		{"profile", len(canon), func(s *store.Store) error { _, _, err := s.PutProfile(p); return err }},
		{"result", len(resultData), func(s *store.Store) error { return s.PutResult(ph, ch, resultData) }},
		{"jobspec", len(jobData), func(s *store.Store) error { return s.PutJobSpec(strings.Repeat("cd", 12), jobEnv) }},
	}

	for _, o := range ops {
		// Crash at every offset of the write, plus at the rename.
		for crashAt := 0; crashAt <= o.size; crashAt += maxInt(1, o.size/17) {
			t.Run(fmt.Sprintf("%s@%d", o.name, crashAt), func(t *testing.T) {
				root := t.TempDir()
				// Commit a baseline object of each kind first, fault-free.
				clean, err := store.Open(root, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				baseHash, _, err := clean.PutProfile(proptest.New(99).Profile())
				if err != nil {
					t.Fatal(err)
				}
				if err := clean.PutResult(ch, ph, []byte(`{"committed":true}`)); err != nil {
					t.Fatal(err)
				}

				at := int64(crashAt)
				inject := &fault.InjectFS{
					WritePlanFor: func(name string) *fault.WritePlan {
						if strings.HasSuffix(name, ".tmp") {
							return fault.NewWritePlan().CrashAt(at)
						}
						return nil
					},
				}
				s, err := store.Open(root, inject, nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := o.do(s); err == nil && crashAt < o.size {
					t.Fatalf("crash at byte %d reported success", crashAt)
				}
				verifyCommitted(t, root, baseHash)
			})
		}

		// Crash between write and rename: temp file fully written, never
		// committed.
		t.Run(o.name+"/rename", func(t *testing.T) {
			root := t.TempDir()
			clean, err := store.Open(root, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			baseHash, _, err := clean.PutProfile(proptest.New(99).Profile())
			if err != nil {
				t.Fatal(err)
			}
			inject := &fault.InjectFS{
				RenameErr: func(oldname, newname string) error {
					if strings.HasSuffix(oldname, ".tmp") {
						return fault.ErrCrash
					}
					return nil
				},
			}
			s, err := store.Open(root, inject, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := o.do(s); err == nil {
				t.Fatal("crashed rename reported success")
			}
			verifyCommitted(t, root, baseHash)
		})
	}
}

// verifyCommitted re-opens the store fault-free and checks that every
// object visible under a committed name is complete and valid.
func verifyCommitted(t *testing.T, root, baseHash string) {
	t.Helper()
	s, err := store.Open(root, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline profile survives, readable and hash-consistent.
	got, err := s.GetProfile(baseHash)
	if err != nil {
		t.Fatalf("baseline profile corrupted: %v", err)
	}
	canon, err := store.CanonicalProfile(got)
	if err != nil {
		t.Fatal(err)
	}
	if store.HashBytes(canon) != baseHash {
		t.Fatal("baseline profile no longer matches its content address")
	}
	// Every committed file parses; no partial object is visible.
	for _, sub := range []string{"profiles", "results", "jobs"} {
		entries, err := os.ReadDir(filepath.Join(root, sub))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if strings.HasSuffix(name, ".tmp") {
				continue // uncommitted temp debris is allowed, never visible as an object
			}
			data, err := os.ReadFile(filepath.Join(root, sub, name))
			if err != nil {
				t.Fatal(err)
			}
			if !json.Valid(data) {
				t.Fatalf("%s/%s holds invalid JSON after crash: %q", sub, name, data)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
