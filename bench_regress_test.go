package gmap

// Benchmark-regression harness. These tests are expensive and
// machine-sensitive, so they only run when GMAP_BENCH_REGRESS=1 (the
// nightly bench-regress CI job sets it); plain `go test` skips them.
//
//	GMAP_BENCH_REGRESS=1 go test -run TestBenchRegress -v .
//
// Two baselines are checked in:
//
//   - BENCH_runner.json pins the serial Fig6a sweep's ns/op. The check
//     fails when the sweep runs >25% slower than the recorded baseline
//     (override the tolerance with GMAP_BENCH_TOLERANCE, a fraction).
//     Refresh with GMAP_BENCH_UPDATE=1 after an intentional change.
//   - BENCH_obs.json pins the observability overhead: the memory-system
//     simulator with a registry attached versus detached. The overhead
//     is a same-process ratio, so unlike raw ns/op it is comparable
//     across machines; it must stay under 3% (GMAP_BENCH_OBS_MAX
//     overrides).

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/uteda/gmap/internal/obs"
)

const (
	envRegress   = "GMAP_BENCH_REGRESS"
	envUpdate    = "GMAP_BENCH_UPDATE"
	envTolerance = "GMAP_BENCH_TOLERANCE"
	envObsMax    = "GMAP_BENCH_OBS_MAX"
)

func requireRegress(t *testing.T) {
	t.Helper()
	if os.Getenv(envRegress) != "1" {
		t.Skipf("benchmark-regression checks disabled; set %s=1 to run", envRegress)
	}
}

func envFraction(t *testing.T, name string, def float64) float64 {
	t.Helper()
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		t.Fatalf("bad %s=%q: want a positive fraction like 0.25", name, s)
	}
	return v
}

// runnerBaseline mirrors BENCH_runner.json. Only the fields the
// regression check reads and refreshes are typed; the rest round-trips
// through Extra so an update never discards the recorded host metadata.
type runnerBaseline struct {
	SerialNsPerOp   int64                      `json:"serial_ns_per_op"`
	ParallelNsPerOp int64                      `json:"parallel_ns_per_op"`
	Speedup         float64                    `json:"speedup"`
	Extra           map[string]json.RawMessage `json:"-"`
}

func (b *runnerBaseline) UnmarshalJSON(data []byte) error {
	if err := json.Unmarshal(data, &b.Extra); err != nil {
		return err
	}
	read := func(key string, dst interface{}) error {
		raw, ok := b.Extra[key]
		if !ok {
			return fmt.Errorf("BENCH_runner.json: missing %q", key)
		}
		delete(b.Extra, key)
		return json.Unmarshal(raw, dst)
	}
	if err := read("serial_ns_per_op", &b.SerialNsPerOp); err != nil {
		return err
	}
	if err := read("parallel_ns_per_op", &b.ParallelNsPerOp); err != nil {
		return err
	}
	return read("speedup", &b.Speedup)
}

func (b runnerBaseline) MarshalJSON() ([]byte, error) {
	out := make(map[string]interface{}, len(b.Extra)+3)
	for k, v := range b.Extra {
		out[k] = v
	}
	out["serial_ns_per_op"] = b.SerialNsPerOp
	out["parallel_ns_per_op"] = b.ParallelNsPerOp
	out["speedup"] = b.Speedup
	return json.MarshalIndent(out, "", "  ")
}

// TestBenchRegressRunner re-times the tier-1 serial sweep benchmark and
// fails when it regressed more than 25% against BENCH_runner.json.
func TestBenchRegressRunner(t *testing.T) {
	requireRegress(t)
	data, err := os.ReadFile("BENCH_runner.json")
	if err != nil {
		t.Fatal(err)
	}
	var base runnerBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}

	serial := testing.Benchmark(BenchmarkSweepSerial).NsPerOp()
	t.Logf("serial sweep: %d ns/op (baseline %d ns/op, %+.1f%%)",
		serial, base.SerialNsPerOp, 100*(float64(serial)/float64(base.SerialNsPerOp)-1))

	if os.Getenv(envUpdate) == "1" {
		parallel := testing.Benchmark(BenchmarkSweepParallel).NsPerOp()
		base.SerialNsPerOp = serial
		base.ParallelNsPerOp = parallel
		base.Speedup = float64(int(100*float64(serial)/float64(parallel))) / 100
		out, err := base.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("BENCH_runner.json", append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("BENCH_runner.json refreshed: serial=%d parallel=%d", serial, parallel)
		return
	}

	tol := envFraction(t, envTolerance, 0.25)
	if limit := float64(base.SerialNsPerOp) * (1 + tol); float64(serial) > limit {
		t.Fatalf("serial sweep regressed: %d ns/op exceeds baseline %d ns/op by more than %.0f%%\n"+
			"If intentional, refresh with %s=1 %s=1 go test -run TestBenchRegressRunner .",
			serial, base.SerialNsPerOp, tol*100, envRegress, envUpdate)
	}
}

// obsBaseline is BENCH_obs.json: the recorded observability overhead of
// the memory-system simulator.
type obsBaseline struct {
	Benchmark     string  `json:"benchmark"`
	ObsOffNsPerOp int64   `json:"obs_off_ns_per_op"`
	ObsOnNsPerOp  int64   `json:"obs_on_ns_per_op"`
	OverheadFrac  float64 `json:"overhead_frac"`
	MaxFrac       float64 `json:"max_frac"`
	Notes         string  `json:"notes"`
}

// measureSim times one full simulation of the blk workload, returning
// the best (least-noisy) of rounds runs.
func measureSim(t *testing.T, cfg SimConfig, warps []WarpTrace, rounds int) time.Duration {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := SimulateWarps(warps, cfg); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestBenchRegressObsOverhead measures the instrumented-versus-detached
// simulator in the same process and fails when attaching a registry
// costs more than 3%. The ratio is machine-independent (both sides run
// on the same host back to back), so this check needs no re-baselining
// across machines; BENCH_obs.json records the measurement for reference.
func TestBenchRegressObsOverhead(t *testing.T) {
	requireRegress(t)
	tr, err := BenchmarkTrace("blk", 1)
	if err != nil {
		t.Fatal(err)
	}
	warps := Coalesce(tr, 128)
	// Noisy-neighbour containers swing single runs by several percent —
	// more than the budget itself — so each side takes the minimum over
	// enough rounds for both to hit a quiet scheduling window.
	const rounds = 25

	off := DefaultSimConfig()
	on := DefaultSimConfig()
	on.Obs = obs.New()
	// Warm both paths once so neither side pays first-run effects, then
	// interleave the timed rounds so slow host drift (thermal, noisy
	// container neighbours) biases neither side.
	measureSim(t, off, warps, 1)
	measureSim(t, on, warps, 1)
	offBest, onBest := time.Duration(1<<63-1), time.Duration(1<<63-1)
	for i := 0; i < rounds; i++ {
		if d := measureSim(t, off, warps, 1); d < offBest {
			offBest = d
		}
		if d := measureSim(t, on, warps, 1); d < onBest {
			onBest = d
		}
	}

	overhead := float64(onBest-offBest) / float64(offBest)
	maxFrac := envFraction(t, envObsMax, 0.03)
	t.Logf("obs off: %v  obs on: %v  overhead: %+.2f%% (max %.0f%%)",
		offBest, onBest, overhead*100, maxFrac*100)

	if os.Getenv(envUpdate) == "1" {
		base := obsBaseline{
			Benchmark:     "SimulateWarps(blk, scale 1), min of 25 interleaved runs, obs registry attached vs detached",
			ObsOffNsPerOp: offBest.Nanoseconds(),
			ObsOnNsPerOp:  onBest.Nanoseconds(),
			OverheadFrac:  float64(int(overhead*10000)) / 10000,
			MaxFrac:       maxFrac,
			Notes: "Overhead is a same-process ratio and transfers across machines, unlike the raw ns/op. " +
				"Hot paths count into plain tallies flushed to the registry once per run, stall " +
				"classification is O(1) via incremental occupancy shadows, and one sampler Due check " +
				"per scheduler iteration gates the expensive stats passes. Refresh with " +
				"GMAP_BENCH_REGRESS=1 GMAP_BENCH_UPDATE=1 go test -run TestBenchRegressObsOverhead .",
		}
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("BENCH_obs.json", append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("BENCH_obs.json refreshed")
		return
	}

	if overhead > maxFrac {
		t.Fatalf("observability overhead %.2f%% exceeds the %.0f%% budget (obs off %v, obs on %v)",
			overhead*100, maxFrac*100, offBest, onBest)
	}
}

// BenchmarkSimObsOff / BenchmarkSimObsOn expose the two sides of the
// overhead measurement as ordinary benchmarks for ad-hoc comparison:
//
//	go test -run=xxx -bench='BenchmarkSimObs' -benchtime=5x .
func BenchmarkSimObsOff(b *testing.B) {
	benchSimObs(b, false)
}

func BenchmarkSimObsOn(b *testing.B) {
	benchSimObs(b, true)
}

func benchSimObs(b *testing.B, withObs bool) {
	b.Helper()
	tr, err := BenchmarkTrace("blk", 1)
	if err != nil {
		b.Fatal(err)
	}
	warps := Coalesce(tr, 128)
	cfg := DefaultSimConfig()
	if withObs {
		cfg.Obs = obs.New()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateWarps(warps, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
