package fault

import (
	"io"
	"sort"
)

// opKind enumerates the injectable write faults.
type opKind int

const (
	opShort opKind = iota // cut the write at the offset, return io.ErrShortWrite
	opErr                 // cut the write at the offset, return the attached error
	opCrash               // cut the write at the offset, fail this and every later op
)

// writeOp is one scheduled fault, keyed by the absolute byte offset of
// the output stream it triggers at.
type writeOp struct {
	at   int64
	kind opKind
	err  error
}

// WritePlan is a deterministic schedule of write faults over one output
// stream, keyed by absolute byte offset. A plan is consumed as the
// wrapped writer advances: a fault scheduled at offset k tears the write
// that would cross byte k, so "torn final line" scenarios are expressed
// as a crash point in the middle of a line's byte range.
//
// Plans are not safe for concurrent use; wrap one stream per plan.
type WritePlan struct {
	ops     []writeOp
	off     int64
	crashed bool
}

// NewWritePlan returns an empty plan (no faults).
func NewWritePlan() *WritePlan { return &WritePlan{} }

// ShortWriteAt schedules a short write: the write crossing byte offset at
// is cut there and reports io.ErrShortWrite.
func (p *WritePlan) ShortWriteAt(at int64) *WritePlan { return p.add(at, opShort, nil) }

// ErrorAt schedules err (e.g. ErrInjectedENOSPC, ErrInjectedEIO) on the
// write crossing byte offset at; bytes before the offset are written.
func (p *WritePlan) ErrorAt(at int64, err error) *WritePlan { return p.add(at, opErr, err) }

// CrashAt schedules a crash point: the write crossing byte offset at is
// torn there, and this plus every subsequent operation fails with
// ErrCrash — the on-stream state is exactly what a SIGKILL at that byte
// would leave behind.
func (p *WritePlan) CrashAt(at int64) *WritePlan { return p.add(at, opCrash, nil) }

func (p *WritePlan) add(at int64, kind opKind, err error) *WritePlan {
	p.ops = append(p.ops, writeOp{at: at, kind: kind, err: err})
	sort.SliceStable(p.ops, func(i, j int) bool { return p.ops[i].at < p.ops[j].at })
	return p
}

// Crashed reports whether a crash point has been reached.
func (p *WritePlan) Crashed() bool { return p.crashed }

// Offset returns the number of bytes successfully written through the
// plan so far.
func (p *WritePlan) Offset() int64 { return p.off }

// apply routes one Write through the plan: it writes the fault-free
// prefix to w, consumes at most one triggered op, and returns the byte
// count actually written plus the injected error (nil when no op
// triggered in this write's range).
func (p *WritePlan) apply(w io.Writer, b []byte) (int, error) {
	if p.crashed {
		return 0, ErrCrash
	}
	end := p.off + int64(len(b))
	for i, op := range p.ops {
		if op.at < p.off {
			continue // already passed (scheduled behind the stream head)
		}
		if op.at >= end {
			break // sorted: nothing triggers in this write
		}
		keep := int(op.at - p.off)
		n, werr := w.Write(b[:keep])
		p.off += int64(n)
		if werr != nil {
			return n, werr
		}
		p.ops = append(p.ops[:i], p.ops[i+1:]...)
		switch op.kind {
		case opShort:
			return n, io.ErrShortWrite
		case opCrash:
			p.crashed = true
			return n, ErrCrash
		default:
			return n, op.err
		}
	}
	n, err := w.Write(b)
	p.off += int64(n)
	return n, err
}

// Writer wraps w with a fault plan. A nil plan passes writes through
// untouched.
type Writer struct {
	w    io.Writer
	plan *WritePlan
}

// NewWriter returns a fault-injecting writer over w.
func NewWriter(w io.Writer, plan *WritePlan) *Writer { return &Writer{w: w, plan: plan} }

// Write implements io.Writer, applying the plan's scheduled faults.
func (fw *Writer) Write(b []byte) (int, error) {
	if fw.plan == nil {
		return fw.w.Write(b)
	}
	return fw.plan.apply(fw.w, b)
}
