package eval

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// WriteFigure renders a FigureResult as a plain-text table.
func WriteFigure(w io.Writer, f *FigureResult) error {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(w, "metric: %s, %d benchmarks x %d configurations\n",
		f.Metric, len(f.Rows), pointsOf(f))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\terror\tcorrelation\tpoints")
	for _, r := range f.Rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\t%d\n", r.Benchmark, r.Error, r.Correlation, r.Points)
	}
	fmt.Fprintf(tw, "AVERAGE\t%.2f\t%.3f\t\n", f.AvgError, f.AvgCorrelation)
	if err := tw.Flush(); err != nil {
		return err
	}
	if f.Elapsed > 0 {
		fmt.Fprintf(w, "(regenerated in %v", f.Elapsed.Round(1000000))
		if x := f.Exec; x.Total > 0 {
			fmt.Fprintf(w, "; %d jobs, %.1f jobs/s", x.Total, x.JobsPerSec)
			if x.Skipped > 0 {
				fmt.Fprintf(w, ", %d resumed", x.Skipped)
			}
		}
		fmt.Fprintln(w, ")")
	}
	fmt.Fprintln(w)
	return nil
}

func pointsOf(f *FigureResult) int {
	if len(f.Rows) == 0 {
		return 0
	}
	return f.Rows[0].Points
}

// WriteFig6e renders the two scheduling-policy sub-figures.
func WriteFig6e(w io.Writer, r *Fig6eResult) error {
	if err := WriteFigure(w, r.LRR); err != nil {
		return err
	}
	if err := WriteFigure(w, r.GTO); err != nil {
		return err
	}
	fmt.Fprintf(w, "fig6e summary: LRR avg error %.2fpp, GTO avg error %.2fpp (paper: 5.1%% / 10.9%%)\n\n",
		r.LRR.AvgError, r.GTO.AvgError)
	return nil
}

// WriteFig7 renders the DRAM exploration results: the per-metric accuracy
// tables plus the normalized bar values of the paper's figure.
func WriteFig7(w io.Writer, r *Fig7Result) error {
	for _, f := range []*FigureResult{r.RBL, r.QueueLen, r.ReadLat, r.WriteLat} {
		if err := WriteFigure(w, f); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "== fig7 bars: original vs clone, normalized to original AES ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tRBL o/c\tqueue o/c\trdlat o/c\twrlat o/c")
	for _, row := range r.Normalized {
		fmt.Fprintf(tw, "%s\t%.2f/%.2f\t%.2f/%.2f\t%.2f/%.2f\t%.2f/%.2f\n",
			row.Benchmark,
			row.RBLOrig, row.RBLProxy,
			row.QueueOrig, row.QueueProxy,
			row.ReadLatOrig, row.ReadLatProxy,
			row.WriteLatOrig, row.WriteLatProxy)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// WriteFig8 renders the miniaturization sweep.
func WriteFig8(w io.Writer, r *Fig8Result) error {
	fmt.Fprintln(w, "== fig8: impact of trace miniaturization ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "reduction\taccuracy\tsim speedup\trequest ratio")
	for _, p := range r.Points {
		// Speedup 0 means the run omitted wall-clock timings (NoTimings);
		// render "-" rather than a fictitious 0.00x.
		speed := "-"
		if p.Speedup > 0 {
			speed = fmt.Sprintf("%.2fx", p.Speedup)
		}
		fmt.Fprintf(tw, "%.0fx\t%.2f%%\t%s\t%.2fx\n", p.Factor, p.Accuracy, speed, p.RequestRatio)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if r.Elapsed > 0 {
		fmt.Fprintf(w, "(regenerated in %v)\n", r.Elapsed.Round(1000000))
	}
	fmt.Fprintln(w)
	return nil
}

// WriteTable1 renders the Table 1 reproduction.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	fmt.Fprintln(w, "== table1: application memory patterns ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", "application\tmem PC\t%mem freq\tdom. inter-warp stride\t%stride\tdom. intra-warp stride\treuse")
	last := ""
	for _, r := range rows {
		name := r.Benchmark
		if name == last {
			name = ""
		} else {
			last = r.Benchmark
		}
		fmt.Fprintf(tw, "%s\t%#x\t%.1f%%\t%d\t%.1f%%\t%d\t%s\n",
			name, r.PC, r.Freq*100, r.InterStride, r.InterFreq*100, r.IntraStride, r.Reuse)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// WriteTable2 renders the profiled system configuration.
func WriteTable2(w io.Writer) error {
	fmt.Fprintln(w, "== table2: profiled system configuration ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, kv := range Table2() {
		fmt.Fprintf(tw, "%s\t%s\n", kv[0], kv[1])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// ExperimentIDs lists every regenerable experiment. "ablation" is this
// reproduction's own study; the rest are the paper's tables and figures.
func ExperimentIDs() []string {
	return []string{"table1", "table2", "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig7", "fig8", "ablation"}
}

// Run executes one experiment by id and writes its report. "all" runs the
// complete evaluation.
func (o *Options) Run(w io.Writer, id string) error {
	switch strings.ToLower(id) {
	case "table1":
		rows, err := o.Table1()
		if err != nil {
			return err
		}
		return WriteTable1(w, rows)
	case "table2":
		return WriteTable2(w)
	case "fig6a":
		f, err := o.Fig6a()
		if err != nil {
			return err
		}
		return WriteFigure(w, f)
	case "fig6b":
		f, err := o.Fig6b()
		if err != nil {
			return err
		}
		return WriteFigure(w, f)
	case "fig6c":
		f, err := o.Fig6c()
		if err != nil {
			return err
		}
		return WriteFigure(w, f)
	case "fig6d":
		f, err := o.Fig6d()
		if err != nil {
			return err
		}
		return WriteFigure(w, f)
	case "fig6e":
		f, err := o.Fig6e()
		if err != nil {
			return err
		}
		return WriteFig6e(w, f)
	case "fig7":
		f, err := o.Fig7()
		if err != nil {
			return err
		}
		return WriteFig7(w, f)
	case "fig8":
		f, err := o.Fig8()
		if err != nil {
			return err
		}
		return WriteFig8(w, f)
	case "ablation":
		f, err := o.Ablation()
		if err != nil {
			return err
		}
		return WriteAblation(w, f)
	case "all":
		for _, each := range ExperimentIDs() {
			if err := o.Run(w, each); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("eval: unknown experiment %q (have %v and \"all\")", id, ExperimentIDs())
	}
}
