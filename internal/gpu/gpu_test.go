package gpu

import (
	"testing"
	"testing/quick"

	"github.com/uteda/gmap/internal/trace"
)

func TestDim3Count(t *testing.T) {
	cases := []struct {
		d    Dim3
		want int
	}{
		{Dim3{X: 4}, 4},
		{Dim3{X: 4, Y: 2}, 8},
		{Dim3{X: 4, Y: 2, Z: 3}, 24},
		{Dim3{}, 0},
		{Dim3{Y: 5}, 0},
	}
	for _, c := range cases {
		if got := c.d.Count(); got != c.want {
			t.Errorf("%v.Count() = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestLaunchBasics(t *testing.T) {
	l := Linear1D(4, 96)
	if l.NumBlocks() != 4 || l.ThreadsPerBlock() != 96 || l.NumThreads() != 384 {
		t.Errorf("launch geometry wrong: %+v", l)
	}
	if l.WarpsPerBlock() != 3 || l.NumWarps() != 12 {
		t.Errorf("warps wrong: per-block %d total %d", l.WarpsPerBlock(), l.NumWarps())
	}
}

func TestPartialWarp(t *testing.T) {
	l := Linear1D(2, 40) // 40 threads = 1 full warp + 1 partial of 8
	if l.WarpsPerBlock() != 2 {
		t.Fatalf("WarpsPerBlock = %d", l.WarpsPerBlock())
	}
	lo, hi := l.ThreadsOfWarp(1) // partial warp of block 0
	if lo != 32 || hi != 40 {
		t.Errorf("warp 1 covers [%d,%d), want [32,40)", lo, hi)
	}
	lo, hi = l.ThreadsOfWarp(2) // first warp of block 1
	if lo != 40 || hi != 72 {
		t.Errorf("warp 2 covers [%d,%d), want [40,72)", lo, hi)
	}
}

func TestWarpNeverSpansBlocks(t *testing.T) {
	f := func(blocks, tpb uint8) bool {
		l := Linear1D(int(blocks%8)+1, int(tpb%200)+1)
		for tid := 0; tid < l.NumThreads(); tid++ {
			if l.BlockOfWarp(l.WarpOf(tid)) != l.BlockOf(tid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestThreadsOfWarpPartition(t *testing.T) {
	// Every thread belongs to exactly one warp's [lo,hi) range.
	l := Linear1D(3, 50)
	covered := make([]int, l.NumThreads())
	for w := 0; w < l.NumWarps(); w++ {
		lo, hi := l.ThreadsOfWarp(w)
		for tid := lo; tid < hi; tid++ {
			covered[tid]++
			if l.WarpOf(tid) != w {
				t.Fatalf("thread %d in range of warp %d but WarpOf=%d", tid, w, l.WarpOf(tid))
			}
		}
	}
	for tid, c := range covered {
		if c != 1 {
			t.Fatalf("thread %d covered %d times", tid, c)
		}
	}
}

func TestLinearThreadID(t *testing.T) {
	l := Launch{Grid: Dim3{X: 2, Y: 2}, Block: Dim3{X: 4, Y: 2}}
	// Thread (1,1) of block (1,0): block linear = 1, thread linear = 1+1*4=5.
	got := l.LinearThreadID(Dim3{X: 1}, Dim3{X: 1, Y: 1})
	if want := 1*8 + 5; got != want {
		t.Errorf("LinearThreadID = %d, want %d", got, want)
	}
	// x varies fastest.
	if a, b := l.LinearThreadID(Dim3{}, Dim3{X: 1}), l.LinearThreadID(Dim3{}, Dim3{Y: 1}); a >= b {
		t.Errorf("x should vary fastest: x+1 -> %d, y+1 -> %d", a, b)
	}
}

func TestLaneOf(t *testing.T) {
	l := Linear1D(2, 64)
	if l.LaneOf(0) != 0 || l.LaneOf(33) != 1 || l.LaneOf(64) != 0 || l.LaneOf(95) != 31 {
		t.Error("LaneOf wrong")
	}
}

func TestLaunchValidate(t *testing.T) {
	if err := Linear1D(4, 256).Validate(); err != nil {
		t.Errorf("valid launch rejected: %v", err)
	}
	if err := Linear1D(0, 256).Validate(); err == nil {
		t.Error("zero-block launch accepted")
	}
	if err := Linear1D(1, 2048).Validate(); err == nil {
		t.Error("oversized block accepted")
	}
}

func TestCoalesceFullyCoalesced(t *testing.T) {
	c := NewCoalescer(128)
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i*4) // 32 threads x 4B = one 128B line
	}
	reqs := c.Coalesce(0, 0x900, trace.Load, addrs)
	if len(reqs) != 1 {
		t.Fatalf("fully coalesced warp produced %d transactions", len(reqs))
	}
	if reqs[0].Addr != 0x1000 || reqs[0].Threads != 32 {
		t.Errorf("request = %+v", reqs[0])
	}
}

func TestCoalesceScattered(t *testing.T) {
	c := NewCoalescer(128)
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(i) * 4096 // every thread in its own line
	}
	reqs := c.Coalesce(1, 0x900, trace.Store, addrs)
	if len(reqs) != 32 {
		t.Fatalf("scattered warp produced %d transactions, want 32", len(reqs))
	}
	for i, r := range reqs {
		if r.Threads != 1 || r.Kind != trace.Store || r.WarpID != 1 {
			t.Errorf("req[%d] = %+v", i, r)
		}
	}
}

func TestCoalesceTwoSegments(t *testing.T) {
	c := NewCoalescer(128)
	// Threads 0-15 in line 0x1000, threads 16-31 in line 0x1080.
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i*8)
	}
	reqs := c.Coalesce(0, 1, trace.Load, addrs)
	if len(reqs) != 2 {
		t.Fatalf("got %d transactions, want 2", len(reqs))
	}
	if reqs[0].Addr != 0x1000 || reqs[1].Addr != 0x1080 {
		t.Errorf("segments = %#x, %#x", reqs[0].Addr, reqs[1].Addr)
	}
	if reqs[0].Threads != 16 || reqs[1].Threads != 16 {
		t.Errorf("thread counts = %d, %d", reqs[0].Threads, reqs[1].Threads)
	}
}

func TestCoalesceAlignment(t *testing.T) {
	c := NewCoalescer(128)
	reqs := c.Coalesce(0, 1, trace.Load, []uint64{0x107f, 0x1080})
	if len(reqs) != 2 {
		t.Fatalf("misaligned pair should straddle two lines, got %d", len(reqs))
	}
	if reqs[0].Addr != 0x1000 || reqs[1].Addr != 0x1080 {
		t.Errorf("lines = %#x, %#x", reqs[0].Addr, reqs[1].Addr)
	}
}

func TestCoalesceEmpty(t *testing.T) {
	if got := NewCoalescer(128).Coalesce(0, 1, trace.Load, nil); got != nil {
		t.Errorf("empty coalesce = %v", got)
	}
}

func TestCoalescerDefaults(t *testing.T) {
	if NewCoalescer(0).LineSize != DefaultLineSize {
		t.Error("zero line size did not default")
	}
}

func TestCoalesceTransactionCountProperty(t *testing.T) {
	c := NewCoalescer(128)
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		addrs := make([]uint64, len(raw))
		lines := make(map[uint64]bool)
		for i, v := range raw {
			addrs[i] = uint64(v)
			lines[uint64(v)&^127] = true
		}
		reqs := c.Coalesce(0, 1, trace.Load, addrs)
		// Exactly one transaction per distinct line, and thread counts sum
		// to the number of references.
		if len(reqs) != len(lines) {
			return false
		}
		sum := 0
		for _, r := range reqs {
			if !lines[r.Addr] || r.Addr%128 != 0 {
				return false
			}
			sum += r.Threads
		}
		return sum == len(addrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func buildDivergentTrace() *trace.KernelTrace {
	// 1 block of 64 threads (2 warps). Even threads execute PCs {A, B};
	// odd threads execute only {A}. Every thread also issues C at the end.
	k := &trace.KernelTrace{Name: "div", GridDim: 1, BlockDim: 64}
	for tid := 0; tid < 64; tid++ {
		tt := trace.ThreadTrace{ThreadID: tid}
		tt.Accesses = append(tt.Accesses, trace.Access{PC: 0xA, Addr: uint64(0x10000 + tid*4), Kind: trace.Load})
		if tid%2 == 0 {
			tt.Accesses = append(tt.Accesses, trace.Access{PC: 0xB, Addr: uint64(0x20000 + tid*4), Kind: trace.Load})
		}
		tt.Accesses = append(tt.Accesses, trace.Access{PC: 0xC, Addr: uint64(0x30000 + tid*4), Kind: trace.Store})
		k.Threads = append(k.Threads, tt)
	}
	return k
}

func TestBuildWarpTracesUniform(t *testing.T) {
	// 2 blocks x 32 threads; each thread does LD a[tid] with 4B elements:
	// each warp's instruction coalesces to exactly 1 transaction.
	k := &trace.KernelTrace{Name: "vecadd", GridDim: 2, BlockDim: 32}
	for tid := 0; tid < 64; tid++ {
		k.Threads = append(k.Threads, trace.ThreadTrace{
			ThreadID: tid,
			Accesses: []trace.Access{{PC: 0x100, Addr: uint64(0x1000 + tid*4), Kind: trace.Load}},
		})
	}
	warps := NewCoalescer(128).BuildWarpTraces(k)
	if len(warps) != 2 {
		t.Fatalf("got %d warps", len(warps))
	}
	for w, wt := range warps {
		if len(wt.Requests) != 1 {
			t.Fatalf("warp %d has %d requests, want 1", w, len(wt.Requests))
		}
		if wt.Requests[0].Threads != 32 {
			t.Errorf("warp %d coalesced %d threads", w, wt.Requests[0].Threads)
		}
		if wt.Block != w {
			t.Errorf("warp %d block = %d", w, wt.Block)
		}
	}
	if warps[0].Requests[0].Addr != 0x1000 || warps[1].Requests[0].Addr != 0x1080 {
		t.Errorf("warp lines = %#x, %#x", warps[0].Requests[0].Addr, warps[1].Requests[0].Addr)
	}
}

func TestBuildWarpTracesDivergent(t *testing.T) {
	warps := NewCoalescer(128).BuildWarpTraces(buildDivergentTrace())
	if len(warps) != 2 {
		t.Fatalf("got %d warps", len(warps))
	}
	for _, wt := range warps {
		// Expected issue order per warp: A (all 32 lanes), B (16 even
		// lanes), C (all 32 lanes).
		var pcs []uint64
		for _, r := range wt.Requests {
			if len(pcs) == 0 || pcs[len(pcs)-1] != r.PC {
				pcs = append(pcs, r.PC)
			}
		}
		want := []uint64{0xA, 0xB, 0xC}
		if len(pcs) != len(want) {
			t.Fatalf("warp %d pc sequence = %#v", wt.WarpID, pcs)
		}
		for i := range want {
			if pcs[i] != want[i] {
				t.Fatalf("warp %d pc sequence = %#v, want A,B,C", wt.WarpID, pcs)
			}
		}
		// B covers only 16 threads.
		sumB := 0
		for _, r := range wt.Requests {
			if r.PC == 0xB {
				sumB += r.Threads
			}
		}
		if sumB != 16 {
			t.Errorf("warp %d B covered %d threads, want 16", wt.WarpID, sumB)
		}
	}
}

func TestBuildWarpTracesConservation(t *testing.T) {
	// Total threads covered by all requests equals total accesses.
	k := buildDivergentTrace()
	warps := NewCoalescer(128).BuildWarpTraces(k)
	covered := 0
	for _, wt := range warps {
		for _, r := range wt.Requests {
			covered += r.Threads
		}
	}
	if covered != k.NumAccesses() {
		t.Errorf("covered %d thread-accesses, trace has %d", covered, k.NumAccesses())
	}
}

func TestBlocksPerSM(t *testing.T) {
	c := DefaultSMConfig()
	n, err := c.BlocksPerSM(BlockRequirements{Threads: 256, RegsPerThread: 16})
	if err != nil {
		t.Fatal(err)
	}
	// threads limit: 1024/256 = 4; regs limit: 32768/(16*256) = 8; block
	// limit 8 -> 4.
	if n != 4 {
		t.Errorf("BlocksPerSM = %d, want 4", n)
	}
}

func TestBlocksPerSMRegisterBound(t *testing.T) {
	c := DefaultSMConfig()
	n, err := c.BlocksPerSM(BlockRequirements{Threads: 128, RegsPerThread: 63})
	if err != nil {
		t.Fatal(err)
	}
	// regs: 32768/(63*128) = 4.06 -> 4; threads: 1024/128 = 8 -> regs bind.
	if n != 4 {
		t.Errorf("BlocksPerSM = %d, want 4 (register-bound)", n)
	}
}

func TestBlocksPerSMSharedMemBound(t *testing.T) {
	c := DefaultSMConfig()
	n, err := c.BlocksPerSM(BlockRequirements{Threads: 64, SharedMem: 20 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("BlocksPerSM = %d, want 2 (shared-memory-bound)", n)
	}
}

func TestBlocksPerSMErrors(t *testing.T) {
	c := DefaultSMConfig()
	if _, err := c.BlocksPerSM(BlockRequirements{Threads: 0}); err == nil {
		t.Error("zero-thread block accepted")
	}
	if _, err := c.BlocksPerSM(BlockRequirements{Threads: 2048}); err == nil {
		t.Error("unfittable block accepted")
	}
}

func TestAssignBlocks(t *testing.T) {
	a := AssignBlocks(10, 4, 1)
	wantSM := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}
	wantWave := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for b := range wantSM {
		if a.SMOfBlock[b] != wantSM[b] || a.WaveOfBlock[b] != wantWave[b] {
			t.Errorf("block %d -> (sm=%d, wave=%d), want (%d, %d)",
				b, a.SMOfBlock[b], a.WaveOfBlock[b], wantSM[b], wantWave[b])
		}
	}
	if a.NumWaves() != 3 {
		t.Errorf("NumWaves = %d", a.NumWaves())
	}
}

func TestAssignBlocksMultiPerSM(t *testing.T) {
	a := AssignBlocks(8, 2, 2)
	// Wave 0 holds 4 blocks (2 SMs x 2 resident); blocks 0..3 in wave 0.
	for b := 0; b < 4; b++ {
		if a.WaveOfBlock[b] != 0 {
			t.Errorf("block %d wave = %d, want 0", b, a.WaveOfBlock[b])
		}
	}
	for b := 4; b < 8; b++ {
		if a.WaveOfBlock[b] != 1 {
			t.Errorf("block %d wave = %d, want 1", b, a.WaveOfBlock[b])
		}
	}
}

func TestAssignBlocksDegenerate(t *testing.T) {
	a := AssignBlocks(3, 0, 0)
	if len(a.SMOfBlock) != 3 || a.NumWaves() != 3 {
		t.Errorf("degenerate assignment = %+v", a)
	}
	if AssignBlocks(0, 4, 2).NumWaves() != 0 {
		t.Error("empty assignment waves != 0")
	}
}

func TestOccupancy(t *testing.T) {
	c := DefaultSMConfig()
	// 256-thread blocks, 16 regs/thread: 4 resident -> 1024/1024 = 100%.
	occ, err := c.Occupancy(BlockRequirements{Threads: 256, RegsPerThread: 16})
	if err != nil {
		t.Fatal(err)
	}
	if occ != 1.0 {
		t.Errorf("occupancy = %v, want 1.0", occ)
	}
	// Register-starved: 63 regs/thread with 128-thread blocks -> 4 blocks
	// = 512 threads = 50%.
	occ, err = c.Occupancy(BlockRequirements{Threads: 128, RegsPerThread: 63})
	if err != nil {
		t.Fatal(err)
	}
	if occ != 0.5 {
		t.Errorf("register-bound occupancy = %v, want 0.5", occ)
	}
	if _, err := c.Occupancy(BlockRequirements{Threads: 2048}); err == nil {
		t.Error("unfittable block accepted")
	}
}
