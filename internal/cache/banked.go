package cache

import (
	"fmt"

	"github.com/uteda/gmap/internal/obs"
)

// Banked is an address-interleaved multi-bank cache, used for the shared
// L2 (Table 2: 1MB in 8 banks). Consecutive lines map to consecutive
// banks; each bank is an independent set-associative slice holding an
// equal share of the capacity.
type Banked struct {
	banks    []*Cache
	bankMask uint64
	bankBits uint
	lineBits uint
	// obs holds per-bank observability counters; nil when detached, so
	// the instrumented access path costs one predictable branch.
	obs []bankObs
}

// bankObs is one bank's live counters: demand pressure, miss traffic and
// write-back pressure toward the next level. Banked has no internal
// locking — it is driven by one goroutine — so the hot path counts into
// the plain tallies and FlushObs publishes them in one batch.
type bankObs struct {
	accesses   *obs.Counter
	misses     *obs.Counter
	writebacks *obs.Counter

	nAccesses   uint64
	nMisses     uint64
	nWritebacks uint64
}

// AttachObs registers per-bank counters ("<prefix>.bank<i>.accesses",
// ".misses", ".writebacks") with r. A nil registry leaves the cache
// detached; attaching never changes cache behaviour or Stats.
func (b *Banked) AttachObs(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	b.obs = make([]bankObs, len(b.banks))
	for i := range b.banks {
		name := fmt.Sprintf("%s.bank%d", prefix, i)
		b.obs[i] = bankObs{
			accesses:   r.Counter(name + ".accesses"),
			misses:     r.Counter(name + ".misses"),
			writebacks: r.Counter(name + ".writebacks"),
		}
	}
}

// note records one access outcome on bank's tallies.
func (b *Banked) note(bank int, res Result) {
	o := &b.obs[bank]
	o.nAccesses++
	if !res.Hit {
		o.nMisses++
	}
	if res.WroteThrough || (res.Evicted && res.EvictedDirty) {
		o.nWritebacks++
	}
}

// FlushObs publishes the per-bank tallies accumulated since the last
// flush to the attached registry counters. No-op when detached; callers
// flush once per run (or before reading the registry), not per access.
func (b *Banked) FlushObs() {
	for i := range b.obs {
		o := &b.obs[i]
		o.accesses.Add(o.nAccesses)
		o.misses.Add(o.nMisses)
		o.writebacks.Add(o.nWritebacks)
		o.nAccesses, o.nMisses, o.nWritebacks = 0, 0, 0
	}
}

// sliceAddr strips the bank-selection bits out of the line number so the
// slice indexes its full set array: without this, every address routed to
// a bank shares the low line bits and only 1/numBanks of the slice's sets
// are ever used.
func (b *Banked) sliceAddr(addr uint64) uint64 {
	line := addr >> b.lineBits
	return (line>>b.bankBits)<<b.lineBits | (addr & ((1 << b.lineBits) - 1))
}

// unsliceAddr maps a slice-space line address (e.g. a victim reported by
// the bank) back to the real address space.
func (b *Banked) unsliceAddr(addr uint64, bank int) uint64 {
	line := addr >> b.lineBits
	return (line<<b.bankBits | uint64(bank)) << b.lineBits
}

// NewBanked splits cfg.SizeBytes evenly over numBanks slices. numBanks
// must be a power of two.
func NewBanked(cfg Config, numBanks int) (*Banked, error) {
	if numBanks <= 0 || numBanks&(numBanks-1) != 0 {
		return nil, fmt.Errorf("cache: bank count %d not a positive power of two", numBanks)
	}
	if cfg.SizeBytes%numBanks != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by %d banks", cfg.SizeBytes, numBanks)
	}
	sliceCfg := cfg
	sliceCfg.SizeBytes = cfg.SizeBytes / numBanks
	b := &Banked{
		banks:    make([]*Cache, numBanks),
		bankMask: uint64(numBanks - 1),
	}
	for i := range b.banks {
		sliceCfg.Seed = cfg.Seed + uint64(i)
		c, err := New(sliceCfg)
		if err != nil {
			return nil, fmt.Errorf("cache: bank %d: %w", i, err)
		}
		b.banks[i] = c
	}
	b.lineBits = b.banks[0].lineBits
	for n := numBanks; n > 1; n >>= 1 {
		b.bankBits++
	}
	return b, nil
}

// BankOf returns the bank index servicing addr.
func (b *Banked) BankOf(addr uint64) int {
	return int((addr >> b.lineBits) & b.bankMask)
}

// Access routes a demand access to its bank.
func (b *Banked) Access(addr uint64, write bool) Result {
	bank := b.BankOf(addr)
	res := b.banks[bank].Access(b.sliceAddr(addr), write)
	if res.Evicted {
		res.EvictedAddr = b.unsliceAddr(res.EvictedAddr, bank)
	}
	if b.obs != nil {
		b.note(bank, res)
	}
	return res
}

// Probe routes a presence check to its bank.
func (b *Banked) Probe(addr uint64) bool {
	return b.banks[b.BankOf(addr)].Probe(b.sliceAddr(addr))
}

// Fill routes a prefetch fill to its bank.
func (b *Banked) Fill(addr uint64) Result {
	bank := b.BankOf(addr)
	res := b.banks[bank].Fill(b.sliceAddr(addr))
	if res.Evicted {
		res.EvictedAddr = b.unsliceAddr(res.EvictedAddr, bank)
	}
	return res
}

// NumBanks returns the bank count.
func (b *Banked) NumBanks() int { return len(b.banks) }

// LineAddr aligns addr to the line size.
func (b *Banked) LineAddr(addr uint64) uint64 { return b.banks[0].LineAddr(addr) }

// Stats returns the aggregate statistics over all banks.
func (b *Banked) Stats() Stats {
	var s Stats
	for _, bank := range b.banks {
		s.Add(bank.Stats)
	}
	return s
}

// Reset clears every bank.
func (b *Banked) Reset() {
	for _, bank := range b.banks {
		bank.Reset()
	}
}
