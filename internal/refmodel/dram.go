package refmodel

import "github.com/uteda/gmap/internal/dram"

// DRAMRequest is one memory request for the reference DRAM model. ID is
// the production controller's request id so completions can be compared
// pairwise. Within each channel arrivals must be nondecreasing in input
// order — the regime where FCFS scheduling degenerates to strict FIFO
// service and an in-order reference is exact.
type DRAMRequest struct {
	ID      uint64
	Addr    uint64
	Write   bool
	Arrival uint64
}

// DRAMCompletion is the reference's outcome for one request.
type DRAMCompletion struct {
	Done   uint64
	RowHit bool
}

// DRAMResult carries the reference run's completions and statistics,
// computed with the same definitions the production Stats accessors use.
type DRAMResult struct {
	Completions map[uint64]DRAMCompletion

	Reads, Writes                    uint64
	RowHits, RowMisses, RowConflicts uint64
	Refreshes                        uint64
	AvgQueueLen                      float64
	AvgReadLatency, AvgWriteLatency  float64
}

// RowBufferLocality returns RowHits over serviced requests.
func (r DRAMResult) RowBufferLocality() float64 {
	n := r.RowHits + r.RowMisses + r.RowConflicts
	if n == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(n)
}

// dramCoord is an independently decomposed address: the channel, the flat
// bank index within the channel (rank-major, as the production controller
// indexes its bank array), and the row.
type dramCoord struct {
	channel, bankIdx, row, col int
}

// decomposeAddr rebuilds the two address mappings from their format
// specification (field order LSB to MSB), independently of
// dram.Config.Decompose.
func decomposeAddr(cfg dram.Config, addr uint64) dramCoord {
	line := addr / uint64(cfg.TxBytes)
	take := func(radix uint64) int {
		v := line % radix
		line /= radix
		return int(v)
	}
	cols := uint64(cfg.RowBytes / cfg.TxBytes)
	var c dramCoord
	if cfg.Mapping == dram.ChRaBaRoCo {
		// column, row (16 bits), bank, rank, channel.
		c.col = take(cols)
		c.row = take(1 << 16)
		bank := take(uint64(cfg.BanksPerRank))
		rank := take(uint64(cfg.RanksPerChannel))
		c.channel = take(uint64(cfg.Channels))
		c.bankIdx = rank*cfg.BanksPerRank + bank
	} else {
		// RoBaRaCoCh: channel, column, rank, bank, row.
		c.channel = take(uint64(cfg.Channels))
		c.col = take(cols)
		rank := take(uint64(cfg.RanksPerChannel))
		bank := take(uint64(cfg.BanksPerRank))
		c.row = int(line)
		c.bankIdx = rank*cfg.BanksPerRank + bank
	}
	return c
}

type refBank struct {
	openRow     int
	hasOpenRow  bool
	readyAt     uint64
	activatedAt uint64
}

type refChannel struct {
	banks       []refBank
	busFree     uint64
	nextRefresh uint64
	enqueued    uint64 // pending count at the next request's arrival
}

// RunFIFODRAM services reqs strictly in order per channel and returns
// every completion. It models the production controller driven in its
// enqueue-everything-then-Drain mode under FCFS scheduling: with
// nondecreasing arrivals the oldest queued request is always the head,
// so in-order service is exact, including refresh windows, row-buffer
// transitions (hit / closed-row activate / conflict precharge+activate
// respecting tRAS), bank cycle time and data-bus serialization.
func RunFIFODRAM(cfg dram.Config, reqs []DRAMRequest) (DRAMResult, error) {
	if err := cfg.Validate(); err != nil {
		return DRAMResult{}, err
	}
	burst := uint64(cfg.TxBytes / (2 * cfg.BusBytes))
	if burst < 1 {
		burst = 1
	}
	channels := make([]refChannel, cfg.Channels)
	for i := range channels {
		channels[i].banks = make([]refBank, cfg.RanksPerChannel*cfg.BanksPerRank)
		channels[i].nextRefresh = uint64(cfg.TREFI)
	}
	res := DRAMResult{Completions: make(map[uint64]DRAMCompletion, len(reqs))}
	var queueSum, queueSamples, readLatSum, writeLatSum uint64

	for _, req := range reqs {
		coord := decomposeAddr(cfg, req.Addr)
		ch := &channels[coord.channel]
		// The production controller samples the channel queue length at
		// enqueue; in the enqueue-all-then-drain regime that is the
		// number of this channel's requests not yet serviced, which here
		// (service is immediate) is the count of earlier arrivals still
		// notionally queued: with all enqueues preceding any service, the
		// k-th request of a channel sees k-1 predecessors.
		queueSamples++
		queueSum += ch.enqueued
		ch.enqueued++
		if req.Write {
			res.Writes++
		} else {
			res.Reads++
		}

		t := ch.busFree
		if req.Arrival > t {
			t = req.Arrival
		}
		if cfg.TREFI > 0 {
			for t >= ch.nextRefresh {
				end := ch.nextRefresh + uint64(cfg.TRFC)
				for bi := range ch.banks {
					ch.banks[bi].hasOpenRow = false
					if ch.banks[bi].readyAt < end {
						ch.banks[bi].readyAt = end
					}
				}
				if ch.busFree < end {
					ch.busFree = end
				}
				ch.nextRefresh += uint64(cfg.TREFI)
				res.Refreshes++
			}
			if ch.busFree > t {
				t = ch.busFree
			}
		}

		b := &ch.banks[coord.bankIdx]
		start := t
		if b.readyAt > start {
			start = b.readyAt
		}
		var dataStart uint64
		var rowHit bool
		switch {
		case b.hasOpenRow && b.openRow == coord.row:
			rowHit = true
			res.RowHits++
			dataStart = start + uint64(cfg.TCAS)
		case !b.hasOpenRow:
			res.RowMisses++
			dataStart = start + uint64(cfg.TRCD+cfg.TCAS)
			b.activatedAt = start
		default:
			res.RowConflicts++
			pre := start
			if min := b.activatedAt + uint64(cfg.TRAS); min > pre {
				pre = min
			}
			actAt := pre + uint64(cfg.TRP)
			dataStart = actAt + uint64(cfg.TRCD+cfg.TCAS)
			b.activatedAt = actAt
		}
		b.openRow, b.hasOpenRow = coord.row, true

		if dataStart < ch.busFree {
			dataStart = ch.busFree
		}
		done := dataStart + burst
		ch.busFree = done
		b.readyAt = dataStart

		lat := done - req.Arrival
		if req.Write {
			writeLatSum += lat
		} else {
			readLatSum += lat
		}
		res.Completions[req.ID] = DRAMCompletion{Done: done, RowHit: rowHit}
	}

	if queueSamples > 0 {
		res.AvgQueueLen = float64(queueSum) / float64(queueSamples)
	}
	if res.Reads > 0 {
		res.AvgReadLatency = float64(readLatSum) / float64(res.Reads)
	}
	if res.Writes > 0 {
		res.AvgWriteLatency = float64(writeLatSum) / float64(res.Writes)
	}
	return res, nil
}
