package trace

import "fmt"

// Application is a complete GPU program as the paper's execution model
// describes it (Figure 1b): an ordered sequence of kernel launches. Each
// launch carries its own grid and reference streams; on hardware the
// launches serialize at device-wide synchronization points while cache
// and DRAM state persists between them.
type Application struct {
	Name string
	// Launches holds the per-launch traces in execution order. The same
	// static kernel may appear several times (iterative applications).
	Launches []*KernelTrace
}

// NumAccesses returns the total dynamic access count over all launches.
func (a *Application) NumAccesses() int {
	n := 0
	for _, k := range a.Launches {
		n += k.NumAccesses()
	}
	return n
}

// Validate checks every launch.
func (a *Application) Validate() error {
	if len(a.Launches) == 0 {
		return fmt.Errorf("trace: application %q has no launches", a.Name)
	}
	for i, k := range a.Launches {
		if err := k.Validate(); err != nil {
			return fmt.Errorf("trace: application %q launch %d: %w", a.Name, i, err)
		}
	}
	return nil
}

// KernelNames returns the launch sequence's kernel names in order.
func (a *Application) KernelNames() []string {
	names := make([]string, len(a.Launches))
	for i, k := range a.Launches {
		names[i] = k.Name
	}
	return names
}
