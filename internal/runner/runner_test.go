package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// intJobs builds n jobs where job i returns i*i, optionally delayed so
// completion order scrambles under parallelism.
func intJobs(n int, delay func(i int) time.Duration) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Key: JobKey("test", fmt.Sprint(i)),
			Run: func(ctx context.Context) (int, error) {
				if delay != nil {
					time.Sleep(delay(i))
				}
				return i * i, nil
			},
		}
	}
	return jobs
}

func TestDeterministicOrdering(t *testing.T) {
	// Early jobs sleep longest, so under parallelism they finish last;
	// results must still come back in submission order.
	jobs := intJobs(16, func(i int) time.Duration {
		return time.Duration(16-i) * time.Millisecond
	})
	results, stats, err := Run(context.Background(), Options{Workers: 8}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Value != i*i {
			t.Errorf("result %d = %d, want %d", i, r.Value, i*i)
		}
	}
	if stats.Completed != 16 || stats.Failed != 0 || stats.Skipped != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Work == 0 {
		t.Error("work time not accumulated")
	}
}

func TestSerialAndParallelAgree(t *testing.T) {
	jobs := intJobs(32, nil)
	serial, _, err := Run(context.Background(), Options{Workers: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := Run(context.Background(), Options{Workers: 8}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Value != parallel[i].Value {
			t.Errorf("job %d: serial %d vs parallel %d", i, serial[i].Value, parallel[i].Value)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	jobs := intJobs(8, nil)
	jobs[3].Run = func(ctx context.Context) (int, error) {
		panic("pathological config")
	}
	results, stats, err := Run(context.Background(), Options{Workers: 4}, jobs)
	if err != nil {
		t.Fatalf("run-level error: %v", err)
	}
	if results[3].Err == nil || !strings.Contains(results[3].Err.Error(), "panicked") {
		t.Errorf("panicking job error = %v", results[3].Err)
	}
	for i, r := range results {
		if i != 3 && r.Err != nil {
			t.Errorf("job %d failed: %v", i, r.Err)
		}
	}
	if stats.Failed != 1 || stats.Completed != 7 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestJobErrorDoesNotAbortRun(t *testing.T) {
	jobs := intJobs(6, nil)
	wantErr := errors.New("bad config")
	jobs[0].Run = func(ctx context.Context) (int, error) { return 0, wantErr }
	results, _, err := Run(context.Background(), Options{Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, wantErr) {
		t.Errorf("results[0].Err = %v", results[0].Err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Err != nil || results[i].Value != i*i {
			t.Errorf("job %d: %+v", i, results[i])
		}
	}
}

func TestCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	jobs := make([]Job[int], 64)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: JobKey("cancel", fmt.Sprint(i)),
			Run: func(ctx context.Context) (int, error) {
				if started.Add(1) == 4 {
					cancel()
				}
				time.Sleep(2 * time.Millisecond)
				return i, nil
			},
		}
	}
	results, stats, err := Run(ctx, Options{Workers: 2}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var unrun int
	for _, r := range results {
		if r.Err != nil && errors.Is(r.Err, context.Canceled) {
			unrun++
		}
	}
	if unrun == 0 {
		t.Error("no job recorded the cancellation")
	}
	if stats.Completed+stats.Failed >= len(jobs) {
		t.Errorf("cancellation did not stop dispatch: %+v", stats)
	}
}

func TestPerJobTimeout(t *testing.T) {
	jobs := intJobs(3, nil)
	jobs[1].Run = func(ctx context.Context) (int, error) {
		select {
		case <-time.After(5 * time.Second):
			return 0, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	results, _, err := Run(context.Background(), Options{Workers: 2, Timeout: 20 * time.Millisecond}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Err == nil || !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Errorf("timed-out job error = %v", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("timeout leaked into healthy jobs")
	}
}

func TestEventsAccountForEveryJob(t *testing.T) {
	jobs := intJobs(10, nil)
	jobs[2].Run = func(ctx context.Context) (int, error) { return 0, errors.New("x") }
	var events []Event
	_, stats, err := Run(context.Background(), Options{
		Workers: 4,
		OnEvent: func(e Event) { events = append(events, e) },
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("got %d events, want 10", len(events))
	}
	last := events[len(events)-1]
	if last.Finished() != 10 {
		t.Errorf("last event finished = %d", last.Finished())
	}
	var failed int
	for _, e := range events {
		if e.Kind == JobFailed {
			failed++
		}
	}
	if failed != 1 || stats.Failed != 1 {
		t.Errorf("failed events = %d, stats = %+v", failed, stats)
	}
	if line := last.ProgressLine(); !strings.Contains(line, "10/10 jobs") {
		t.Errorf("progress line = %q", line)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Total: 4, Completed: 3, Failed: 1, Wall: time.Second, Work: 2 * time.Second}
	b := Stats{Total: 2, Skipped: 2, Wall: time.Second}
	sum := a.Add(b)
	if sum.Total != 6 || sum.Completed != 3 || sum.Failed != 1 || sum.Skipped != 2 {
		t.Errorf("sum = %+v", sum)
	}
	if sum.JobsPerSec != 2 {
		t.Errorf("jobs/sec = %v, want 2", sum.JobsPerSec)
	}
}

func TestZeroJobs(t *testing.T) {
	results, stats, err := Run(context.Background(), Options{}, []Job[int]{})
	if err != nil || len(results) != 0 || stats.Total != 0 {
		t.Errorf("empty run: results=%v stats=%+v err=%v", results, stats, err)
	}
}

func TestJobKeyProperties(t *testing.T) {
	if JobKey("a", "b") != JobKey("a", "b") {
		t.Error("JobKey not stable")
	}
	if JobKey("a", "b") == JobKey("b", "a") {
		t.Error("JobKey ignores order")
	}
	// Length prefixing: shifting a byte across a part boundary must not
	// collide.
	if JobKey("ab", "c") == JobKey("a", "bc") {
		t.Error("JobKey collides across part boundaries")
	}
	if len(JobKey("x")) != 24 {
		t.Errorf("JobKey length = %d, want 24 hex chars", len(JobKey("x")))
	}
}
