package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	obsserve "github.com/uteda/gmap/internal/obs/serve"
	"github.com/uteda/gmap/internal/profiler"
	httpserve "github.com/uteda/gmap/internal/serve"
	"github.com/uteda/gmap/internal/serve/queue"
	"github.com/uteda/gmap/internal/serve/store"
	"github.com/uteda/gmap/internal/trace"
)

// Body size limits per endpoint: raw traces dominate, job specs are
// tiny.
const (
	maxProfileBody = 64 << 20
	maxTraceBody   = 256 << 20
	maxJobBody     = 1 << 20
)

// Handler builds the service's HTTP mux. Alongside the /v1 API it
// mounts the shared observability surface (/metrics, /progress, /trace,
// /debug/pprof) so one port serves both planes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/profiles", s.handlePutProfile)
	mux.HandleFunc("GET /v1/profiles/{hash}", s.handleGetProfile)
	mux.HandleFunc("POST /v1/traces", s.handlePutTrace)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleJobProgress)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	if d := s.o.SweepDelegate; d != nil {
		// The distributed fabric's worker-facing surface rides the same
		// port: workers dial the service and the delegate routes them to
		// whichever sweep's coordinator is live (503 when none is).
		mux.Handle("/dist/v1/", d.Handler())
	}
	if s.fleet != nil {
		// Metrics federation and fleet status, live only when the service
		// fronts a distributed fabric (SetFleet).
		mux.Handle("/fleet/", s.fleet)
	}
	mux.Handle("/", obsserve.Handler(obsserve.Options{
		Registry: s.o.Obs,
		Tracer:   s.o.Tracer,
		Progress: s.progressSnapshot,
		Ready:    s.ready,
	}))
	return httpserve.Instrument(s.o.Obs, "serve", mux)
}

// tenantOf resolves the request's tenant from the X-Gmap-Tenant header.
// Tenant names feed metric names and scheduler state, so they are
// restricted to a safe alphabet.
func (s *Service) tenantOf(r *http.Request) (string, error) {
	t := strings.TrimSpace(r.Header.Get("X-Gmap-Tenant"))
	if t == "" {
		return s.o.DefaultTenant, nil
	}
	if len(t) > 64 {
		return "", fmt.Errorf("tenant name longer than 64 bytes")
	}
	for _, c := range t {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return "", fmt.Errorf("tenant name %q: only [A-Za-z0-9._-] allowed", t)
		}
	}
	return t, nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// profileResponse answers profile and trace uploads.
type profileResponse struct {
	Profile      string `json:"profile"`
	Deduplicated bool   `json:"deduplicated"`
	Name         string `json:"name,omitempty"`
	Requests     uint64 `json:"requests,omitempty"`
}

// handlePutProfile stores a profile JSON body under its content hash.
func (s *Service) handlePutProfile(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxProfileBody)
	p, err := profiler.ReadJSON(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode profile: %w", err))
		return
	}
	hash, existed, err := s.st.PutProfile(p)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	writeJSON(w, code, profileResponse{
		Profile: hash, Deduplicated: existed,
		Name: p.Name, Requests: p.TotalRequests,
	})
}

// handleGetProfile returns a stored profile by content hash.
func (s *Service) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	p, err := s.st.GetProfile(r.PathValue("hash"))
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = p.WriteJSON(w)
}

// handlePutTrace profiles an uploaded kernel trace (binary warp-trace by
// default, ?format=text for the text codec) server-side and stores the
// resulting profile — the "clone my workload" entry point for clients
// holding raw traces.
func (s *Service) handlePutTrace(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxTraceBody)
	var (
		k   *trace.KernelTrace
		err error
	)
	switch f := r.URL.Query().Get("format"); f {
	case "", "binary":
		k, err = trace.ReadBinary(body)
	case "text":
		k, err = trace.ReadText(body)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown trace format %q (binary or text)", f))
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode trace: %w", err))
		return
	}
	cfg := profiler.DefaultConfig()
	if ls := r.URL.Query().Get("line_size"); ls != "" {
		n, perr := strconv.Atoi(ls)
		if perr != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad line_size %q", ls))
			return
		}
		cfg.LineSize = uint64(n)
	}
	cfg.Obs = s.o.Obs
	p, err := profiler.ProfileKernel(k, cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("profile trace: %w", err))
		return
	}
	hash, existed, err := s.st.PutProfile(p)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	writeJSON(w, code, profileResponse{
		Profile: hash, Deduplicated: existed,
		Name: p.Name, Requests: p.TotalRequests,
	})
}

// handleSubmit admits a job. Responses: 200 for cache hits and joined
// in-flight duplicates, 202 for fresh admissions, 400 for bad specs,
// 429 + Retry-After when the backlog is full.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantOf(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	if err := spec.Normalize(s.st); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	js, admitted, cached, err := s.submit(tenant, spec)
	switch {
	case errors.Is(err, queue.ErrFull):
		st := s.q.Stats()
		// Rough drain-time hint: backlog depth over worker count,
		// floored at one second.
		retry := st.Queued/max(st.Workers, 1) + 1
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeErr(w, http.StatusTooManyRequests, fmt.Errorf("queue full (%d queued, %d running): retry later", st.Queued, st.Running))
		return
	case errors.Is(err, queue.ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	code := http.StatusOK
	if admitted {
		code = http.StatusAccepted
	}
	v := js.view()
	v.Cached = v.Cached || cached
	writeJSON(w, code, v)
}

// handleListJobs returns every known job, newest unfinished first is not
// guaranteed — order is by id for determinism.
func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.jobs))
	for _, js := range s.jobs {
		views = append(views, js.view())
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].Job < views[j].Job })
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": views})
}

func (s *Service) job(id string) (*jobState, bool) {
	s.mu.Lock()
	js, ok := s.jobs[id]
	s.mu.Unlock()
	return js, ok
}

func (s *Service) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	js, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, js.view())
}

// handleJobResult streams the stored result of a finished job.
func (s *Service) handleJobResult(w http.ResponseWriter, r *http.Request) {
	js, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	v := js.view()
	if v.Status != StatusDone {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", js.id, v.Status))
		return
	}
	data, ok, err := s.st.GetResult(js.profileHash, js.configHash)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("result for job %s missing from store", js.id))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(data)
}

// handleJobProgress reports a running sweep's live progress.
func (s *Service) handleJobProgress(w http.ResponseWriter, r *http.Request) {
	js, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	v := js.view()
	resp := map[string]interface{}{"job": js.id, "status": v.Status}
	if p := js.progress(); p != nil {
		resp["progress"] = p
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCancel cancels a queued or running job.
func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.cancel(id) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	js, _ := s.job(id)
	writeJSON(w, http.StatusOK, js.view())
}

// progressSnapshot backs the service-wide /progress endpoint: queue
// census, per-status job counts, and each running sweep's live progress.
func (s *Service) progressSnapshot() interface{} {
	type runningJob struct {
		Job        string      `json:"job"`
		Tenant     string      `json:"tenant"`
		Kind       string      `json:"kind"`
		Experiment string      `json:"experiment,omitempty"`
		Progress   interface{} `json:"progress,omitempty"`
	}
	s.mu.Lock()
	states := make([]*jobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		states = append(states, js)
	}
	s.mu.Unlock()
	counts := map[string]int{}
	var running []runningJob
	for _, js := range states {
		v := js.view()
		counts[v.Status]++
		if v.Status == StatusRunning {
			running = append(running, runningJob{
				Job: v.Job, Tenant: v.Tenant, Kind: v.Kind,
				Experiment: v.Experiment, Progress: js.progress(),
			})
		}
	}
	sort.Slice(running, func(i, j int) bool { return running[i].Job < running[j].Job })
	return map[string]interface{}{
		"queue":   s.q.Stats(),
		"jobs":    counts,
		"running": running,
	}
}

// statusOf maps store errors onto HTTP statuses.
func statusOf(err error) int {
	if errors.Is(err, store.ErrNotFound) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
