package prefetch

import (
	"testing"
)

func mustStride(t *testing.T, cfg StrideConfig) *Stride {
	t.Helper()
	s, err := NewStride(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustStream(t *testing.T, cfg StreamConfig) *Stream {
	t.Helper()
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNilPrefetcher(t *testing.T) {
	var n Nil
	if got := n.Observe(1, 0, 0x1000, true); got != nil {
		t.Errorf("Nil prefetched %v", got)
	}
	n.Reset()
}

func TestStrideConfigValidate(t *testing.T) {
	if err := DefaultStrideConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []StrideConfig{
		{TableSize: 0, Degree: 1, MinConfidence: 1},
		{TableSize: 48, Degree: 1, MinConfidence: 1},
		{TableSize: 64, Degree: 0, MinConfidence: 1},
		{TableSize: 64, Degree: 1, MinConfidence: 0},
	}
	for _, c := range bad {
		if _, err := NewStride(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestStrideDetection(t *testing.T) {
	s := mustStride(t, StrideConfig{TableSize: 64, Degree: 2, MinConfidence: 2})
	// Accesses at +128 stride: first sets last, second sets stride
	// (conf 1), third confirms (conf 2) and triggers.
	if got := s.Observe(0x900, 0, 0x1000, true); got != nil {
		t.Fatalf("premature prefetch %v", got)
	}
	if got := s.Observe(0x900, 0, 0x1080, true); got != nil {
		t.Fatalf("prefetch at confidence 1: %v", got)
	}
	got := s.Observe(0x900, 0, 0x1100, true)
	if len(got) != 2 || got[0] != 0x1180 || got[1] != 0x1200 {
		t.Fatalf("prefetch = %#v, want [0x1180 0x1200]", got)
	}
}

func TestStrideNegativeDirection(t *testing.T) {
	s := mustStride(t, StrideConfig{TableSize: 64, Degree: 1, MinConfidence: 2})
	s.Observe(0x900, 0, 0x4000, true)
	s.Observe(0x900, 0, 0x3f00, true)
	got := s.Observe(0x900, 0, 0x3e00, true)
	if len(got) != 1 || got[0] != 0x3d00 {
		t.Fatalf("negative stride prefetch = %#v", got)
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	s := mustStride(t, StrideConfig{TableSize: 64, Degree: 1, MinConfidence: 2})
	s.Observe(0x900, 0, 0x1000, true)
	s.Observe(0x900, 0, 0x1080, true)
	s.Observe(0x900, 0, 0x1100, true) // confident now
	if got := s.Observe(0x900, 0, 0x5000, true); got != nil {
		t.Fatalf("prefetch on stride break: %v", got)
	}
	if got := s.Observe(0x900, 0, 0x5100, true); got != nil {
		// stride 0x100 seen once, conf 1 < 2
		t.Fatalf("prefetch at rebuilt confidence 1: %v", got)
	}
	got := s.Observe(0x900, 0, 0x5200, true)
	if len(got) != 1 || got[0] != 0x5300 {
		t.Fatalf("recovered prefetch = %#v", got)
	}
}

func TestStrideZeroIgnored(t *testing.T) {
	s := mustStride(t, StrideConfig{TableSize: 64, Degree: 2, MinConfidence: 1})
	for i := 0; i < 5; i++ {
		if got := s.Observe(0x900, 0, 0x1000, true); got != nil {
			t.Fatalf("prefetched on zero stride: %v", got)
		}
	}
}

func TestStridePerWarpIsolation(t *testing.T) {
	// With PerWarp, interleaved warps each keep their own stride; without
	// it, interleaving pollutes the single entry.
	perWarp := mustStride(t, StrideConfig{TableSize: 64, Degree: 1, MinConfidence: 2, PerWarp: true})
	issued := 0
	for i := 0; i < 6; i++ {
		if got := perWarp.Observe(0x900, 0, uint64(0x10000+i*0x80), true); got != nil {
			issued++
		}
		if got := perWarp.Observe(0x900, 1, uint64(0x90000+i*0x80), true); got != nil {
			issued++
		}
	}
	if issued < 8 {
		t.Errorf("per-warp prefetcher issued %d times, want >= 8", issued)
	}
	shared := mustStride(t, StrideConfig{TableSize: 64, Degree: 1, MinConfidence: 2, PerWarp: false})
	issued = 0
	for i := 0; i < 6; i++ {
		if got := shared.Observe(0x900, 0, uint64(0x10000+i*0x80), true); got != nil {
			issued++
		}
		if got := shared.Observe(0x900, 1, uint64(0x90000+i*0x80), true); got != nil {
			issued++
		}
	}
	if issued != 0 {
		t.Errorf("shared-entry prefetcher issued %d times despite pollution", issued)
	}
}

func TestStrideReset(t *testing.T) {
	s := mustStride(t, StrideConfig{TableSize: 64, Degree: 1, MinConfidence: 2})
	s.Observe(0x900, 0, 0x1000, true)
	s.Observe(0x900, 0, 0x1080, true)
	s.Reset()
	if got := s.Observe(0x900, 0, 0x1100, true); got != nil {
		t.Errorf("state survived reset: %v", got)
	}
}

func TestStreamConfigValidate(t *testing.T) {
	if err := DefaultStreamConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []StreamConfig{
		{Streams: 0, Window: 8, Degree: 1, LineSize: 128},
		{Streams: 4, Window: 0, Degree: 1, LineSize: 128},
		{Streams: 4, Window: 8, Degree: 0, LineSize: 128},
		{Streams: 4, Window: 8, Degree: 1, LineSize: 100},
	}
	for _, c := range bad {
		if _, err := NewStream(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestStreamDetection(t *testing.T) {
	s := mustStream(t, StreamConfig{Streams: 4, Window: 8, Degree: 2, LineSize: 128})
	// Miss at line 100 allocates; miss at 102 sets direction; miss at 104
	// advances and prefetches 105, 106.
	if got := s.Observe(0, 0, 100*128, true); got != nil {
		t.Fatalf("prefetch on allocation: %v", got)
	}
	if got := s.Observe(0, 0, 102*128, true); got != nil {
		t.Fatalf("prefetch on direction setup: %v", got)
	}
	got := s.Observe(0, 0, 104*128, true)
	if len(got) != 2 || got[0] != 105*128 || got[1] != 106*128 {
		t.Fatalf("stream prefetch = %v, want lines 105,106", got)
	}
}

func TestStreamDescending(t *testing.T) {
	s := mustStream(t, StreamConfig{Streams: 4, Window: 8, Degree: 1, LineSize: 128})
	s.Observe(0, 0, 500*128, true)
	s.Observe(0, 0, 497*128, true)
	got := s.Observe(0, 0, 494*128, true)
	if len(got) != 1 || got[0] != 493*128 {
		t.Fatalf("descending prefetch = %v, want line 493", got)
	}
}

func TestStreamWindowBounds(t *testing.T) {
	s := mustStream(t, StreamConfig{Streams: 1, Window: 4, Degree: 1, LineSize: 128})
	s.Observe(0, 0, 100*128, true)
	s.Observe(0, 0, 102*128, true) // direction up
	// A jump beyond the window must not match; it replaces the stream.
	if got := s.Observe(0, 0, 200*128, true); got != nil {
		t.Fatalf("out-of-window access matched: %v", got)
	}
}

func TestStreamIgnoresHits(t *testing.T) {
	s := mustStream(t, StreamConfig{Streams: 4, Window: 8, Degree: 1, LineSize: 128})
	s.Observe(0, 0, 100*128, false)
	s.Observe(0, 0, 101*128, false)
	if got := s.Observe(0, 0, 102*128, false); got != nil {
		t.Errorf("hit-trained stream prefetched: %v", got)
	}
}

func TestStreamMultipleConcurrent(t *testing.T) {
	s := mustStream(t, StreamConfig{Streams: 4, Window: 8, Degree: 1, LineSize: 128})
	// Interleave two ascending streams far apart; both must train.
	issued := 0
	for i := int64(0); i < 6; i++ {
		if got := s.Observe(0, 0, uint64((100+2*i)*128), true); got != nil {
			issued++
		}
		if got := s.Observe(0, 0, uint64((9000+2*i)*128), true); got != nil {
			issued++
		}
	}
	if issued < 8 {
		t.Errorf("concurrent streams issued %d prefetches, want >= 8", issued)
	}
}

func TestStreamLRUReplacement(t *testing.T) {
	s := mustStream(t, StreamConfig{Streams: 2, Window: 4, Degree: 1, LineSize: 128})
	s.Observe(0, 0, 100*128, true)  // stream A
	s.Observe(0, 0, 5000*128, true) // stream B
	s.Observe(0, 0, 9000*128, true) // evicts A (LRU)
	// A's continuation no longer matches.
	if got := s.Observe(0, 0, 102*128, true); got != nil {
		t.Errorf("evicted stream still live: %v", got)
	}
}

func TestStreamReset(t *testing.T) {
	s := mustStream(t, StreamConfig{Streams: 4, Window: 8, Degree: 1, LineSize: 128})
	s.Observe(0, 0, 100*128, true)
	s.Observe(0, 0, 102*128, true)
	s.Reset()
	if got := s.Observe(0, 0, 104*128, true); got != nil {
		t.Errorf("state survived reset: %v", got)
	}
}

func BenchmarkStrideObserve(b *testing.B) {
	s, err := NewStride(DefaultStrideConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s.Observe(0x900, i&31, uint64(i)*128, true)
	}
}

func BenchmarkStreamObserve(b *testing.B) {
	s, err := NewStream(DefaultStreamConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s.Observe(0, 0, uint64(i)*128, true)
	}
}

func TestNextLineBasics(t *testing.T) {
	n, err := NewNextLine(2, 128)
	if err != nil {
		t.Fatal(err)
	}
	got := n.Observe(0, 0, 0x1000, true)
	if len(got) != 2 || got[0] != 0x1080 || got[1] != 0x1100 {
		t.Fatalf("next-line prefetch = %#v", got)
	}
	if n.Observe(0, 0, 0x1000, false) != nil {
		t.Error("next-line prefetched on a hit")
	}
	n.Reset() // must not panic
}

func TestNextLineAlignsBase(t *testing.T) {
	n, err := NewNextLine(1, 128)
	if err != nil {
		t.Fatal(err)
	}
	got := n.Observe(0, 0, 0x10a4, true)
	if len(got) != 1 || got[0] != 0x1100 {
		t.Fatalf("unaligned trigger prefetch = %#v", got)
	}
}

func TestNextLineValidation(t *testing.T) {
	if _, err := NewNextLine(0, 128); err == nil {
		t.Error("zero degree accepted")
	}
	if _, err := NewNextLine(1, 100); err == nil {
		t.Error("non-pow2 line accepted")
	}
	if n, err := NewNextLine(1, 0); err != nil || n.LineSize != 128 {
		t.Error("zero line size did not default")
	}
}

func TestNextLineHelpsStreaming(t *testing.T) {
	// Through the simulator: streaming workload, next-line L1 prefetcher
	// must cut the miss rate roughly in half at degree 1.
	// (Uses the prefetcher interface only; the integration lives in
	// memsim tests.)
	n, _ := NewNextLine(4, 128)
	issued := 0
	for i := 0; i < 100; i++ {
		if got := n.Observe(0, 0, uint64(i)*128, true); len(got) == 4 {
			issued++
		}
	}
	if issued != 100 {
		t.Errorf("issued on %d/100 misses", issued)
	}
}
