package profiler

import (
	"math"
	"strings"
	"testing"

	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/trace"
)

// validProfile builds a minimal profile that passes Validate, for the
// corruption table below to mutate.
func validProfile() *Profile {
	h := stats.NewHistogram()
	h.Add(0)
	return &Profile{
		Name:     "v",
		GridDim:  1,
		BlockDim: 32,
		LineSize: 128,
		Warps:    1,
		Insts: []StaticInst{{
			PC: 0x10, Kind: trace.Load, InterStride: h, IntraStride: h, Count: 1,
		}},
		Profiles: []PiProfile{{Seq: []int{0}, Count: 1, Reuse: h}},
	}
}

func TestValidateRejectsCorruptProbabilities(t *testing.T) {
	if err := validProfile().Validate(); err != nil {
		t.Fatalf("baseline profile invalid: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Profile)
		wantSub string
	}{
		{"pself above one", func(p *Profile) { p.SchedPself = 1.5 }, "not a probability"},
		{"pself negative", func(p *Profile) { p.SchedPself = -0.25 }, "not a probability"},
		{"pself nan", func(p *Profile) { p.SchedPself = math.NaN() }, "not a probability"},
		{"negative warps", func(p *Profile) { p.Warps = -3 }, "negative warp count"},
		{"inverted offset window", func(p *Profile) { p.Insts[0].OffLo, p.Insts[0].OffHi = 8, -8 }, "offset window"},
		{"inverted anchor window", func(p *Profile) { p.Insts[0].AnchorLo, p.Insts[0].AnchorHi = 8, -8 }, "anchor window"},
		{"all-zero pi weights", func(p *Profile) { p.Profiles[0].Count = 0 }, "π weights"},
	}
	for _, c := range cases {
		p := validProfile()
		c.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: corrupt profile accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestReadAppJSONRejectsNullKernel(t *testing.T) {
	in := `{"name":"a","kernels":[null],"launches":[0]}`
	if _, err := ReadAppJSON(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "null") {
		t.Fatalf("null kernel: err = %v", err)
	}
}

func TestReadJSONReportsOffset(t *testing.T) {
	in := `{"name":"x","grid_dim":"oops"}`
	_, err := ReadJSON(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("type error lost its position: err = %v", err)
	}
}
