package api

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/uteda/gmap/internal/eval"
	"github.com/uteda/gmap/internal/runner"
	"github.com/uteda/gmap/internal/serve/store"
	"github.com/uteda/gmap/internal/workloads"
)

// JobSpec is the wire form of one evaluation request. Every field that
// shapes the result participates in the config hash, so two submissions
// asking for the same computation — however formatted — map onto the
// same job id and the same cached result.
type JobSpec struct {
	// Kind selects the computation: "clone" (generate a proxy from a
	// stored profile), "sim" (generate and run the proxy through the
	// memory hierarchy) or "sweep" (regenerate a paper experiment over
	// the builtin benchmarks).
	Kind string `json:"kind"`
	// Profile is the content hash of a stored profile (clone and sim).
	Profile string `json:"profile,omitempty"`
	// Seed drives generation; 0 defaults to 1.
	Seed uint64 `json:"seed,omitempty"`
	// ScaleFactor is the miniaturization factor; 0 defaults to 4.
	ScaleFactor float64 `json:"scale_factor,omitempty"`
	// Scale is the workload scale for sweeps; 0 defaults to 1.
	Scale int `json:"scale,omitempty"`
	// Cores overrides the simulated SM count (0 = Table 2's 15).
	Cores int `json:"cores,omitempty"`
	// Experiment is the paper experiment id for sweeps ("fig6a", ...,
	// "all").
	Experiment string `json:"experiment,omitempty"`
	// Benchmarks restricts a sweep to a benchmark subset; empty means
	// all 18 (normalized to the explicit full list, so "default" and
	// "explicitly everything" share a cache entry).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Obfuscate replaces base addresses in generated clones.
	Obfuscate bool `json:"obfuscate,omitempty"`
}

// Job kinds.
const (
	KindClone = "clone"
	KindSim   = "sim"
	KindSweep = "sweep"
)

// Normalize validates a submitted spec against the store and fills
// defaults in place, returning an error suitable for a 400 response.
// st may be nil when only profile-less specs are expected (the
// distributed coordinator reuses sweep specs as its lease wire format
// and has no store); clone/sim specs then fail validation.
func (spec *JobSpec) Normalize(st *store.Store) error {
	spec.Kind = strings.ToLower(strings.TrimSpace(spec.Kind))
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.ScaleFactor == 0 {
		spec.ScaleFactor = 4
	}
	if spec.ScaleFactor < 0 {
		return fmt.Errorf("scale_factor %v must be positive", spec.ScaleFactor)
	}
	if spec.Scale <= 0 {
		spec.Scale = 1
	}
	if spec.Cores < 0 {
		return fmt.Errorf("cores %d must be non-negative", spec.Cores)
	}
	switch spec.Kind {
	case KindClone, KindSim:
		if spec.Experiment != "" || len(spec.Benchmarks) != 0 {
			return fmt.Errorf("%s jobs take a profile, not experiment/benchmarks", spec.Kind)
		}
		if spec.Profile == "" {
			return fmt.Errorf("%s jobs require a profile hash (POST /v1/profiles first)", spec.Kind)
		}
		if st == nil {
			return fmt.Errorf("%s jobs need a profile store", spec.Kind)
		}
		if !st.HasProfile(spec.Profile) {
			return fmt.Errorf("unknown profile %q (POST /v1/profiles first)", spec.Profile)
		}
	case KindSweep:
		if spec.Profile != "" {
			return fmt.Errorf("sweep jobs run the builtin benchmarks; profile is not accepted")
		}
		ok := spec.Experiment == "all"
		for _, id := range eval.ExperimentIDs() {
			if spec.Experiment == id {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %v and \"all\")", spec.Experiment, eval.ExperimentIDs())
		}
		if len(spec.Benchmarks) == 0 {
			spec.Benchmarks = workloads.Names()
		}
		for _, b := range spec.Benchmarks {
			if _, known := workloads.ByName(b); !known {
				return fmt.Errorf("unknown benchmark %q (have %v)", b, workloads.Names())
			}
		}
	case "":
		return fmt.Errorf("missing job kind (one of clone, sim, sweep)")
	default:
		return fmt.Errorf("unknown job kind %q (one of clone, sim, sweep)", spec.Kind)
	}
	return nil
}

// EvalOptions builds the evaluation options a normalized sweep spec
// denotes. Every execution path that runs or enumerates a sweep — the
// service's sweep executor, the distributed coordinator's key
// enumeration and merge replay, and the distributed worker's shard
// execution — derives its options here, so they can never disagree
// about job identity (eval's jobKey covers exactly these fields) or
// about report determinism (NoTimings is forced: cached and merged
// reports must be byte-identical across executions). Execution-only
// knobs (workers, checkpoint, retries, ...) are layered on by the
// caller and never change identity.
func (spec *JobSpec) EvalOptions() eval.Options {
	return eval.Options{
		Benchmarks:  spec.Benchmarks,
		Scale:       spec.Scale,
		ScaleFactor: spec.ScaleFactor,
		Seed:        spec.Seed,
		Cores:       spec.Cores,
		NoTimings:   true,
	}
}

// hashes derives the result-cache coordinates of a normalized spec: WHAT
// is evaluated (the submitted profile, or the builtin benchmark
// selection) × HOW it is evaluated (every other spec field). The job id
// is a stable digest of both, so identical submissions collide onto one
// job and one cached result.
func (spec *JobSpec) hashes() (profileHash, configHash, jobID string, err error) {
	switch spec.Kind {
	case KindSweep:
		src := struct {
			Builtin []string `json:"builtin"`
		}{Builtin: append([]string(nil), spec.Benchmarks...)}
		data, merr := json.Marshal(src)
		if merr != nil {
			return "", "", "", merr
		}
		profileHash = store.HashBytes(data)
	default:
		profileHash = spec.Profile
	}
	cfg := *spec
	cfg.Profile = "" // the profile is the other cache axis
	data, merr := json.Marshal(cfg)
	if merr != nil {
		return "", "", "", merr
	}
	configHash = store.HashBytes(data)
	return profileHash, configHash, runner.JobKey(profileHash, configHash), nil
}

// jobEnvelope is the journaled form of an admitted job: everything a
// restarted server needs to re-enqueue it.
type jobEnvelope struct {
	Spec        JobSpec `json:"spec"`
	Tenant      string  `json:"tenant"`
	ProfileHash string  `json:"profile_hash"`
	ConfigHash  string  `json:"config_hash"`
}

// sortedIDs returns journal ids in stable order so recovery enqueues
// deterministically.
func sortedIDs(m map[string]json.RawMessage) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
