package eval

import (
	"fmt"
	"time"

	"github.com/uteda/gmap/internal/core"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/synth"
	"github.com/uteda/gmap/internal/workloads"
)

// Options parameterizes an evaluation run.
type Options struct {
	// Benchmarks to evaluate; nil means all 18.
	Benchmarks []string
	// Scale is the workload size knob (1 = default evaluation size).
	Scale int
	// ScaleFactor is the proxy miniaturization factor (paper: ~4-5).
	ScaleFactor float64
	// Seed drives profiling-independent sampling.
	Seed uint64
	// Cores overrides the simulated SM count (0 = Table 2's 15).
	Cores int
	// Progress, when non-nil, receives one line per completed benchmark.
	Progress func(format string, args ...interface{})
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{Scale: 1, ScaleFactor: 4, Seed: 1}
}

func (o *Options) fillDefaults() {
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workloads.Names()
	}
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.ScaleFactor < 1 {
		o.ScaleFactor = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o *Options) logf(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// prepare builds the workload pipeline for one benchmark.
func (o *Options) prepare(name string) (*core.Workload, error) {
	pcfg := profiler.DefaultConfig()
	return core.Prepare(name, o.Scale, pcfg, synth.Options{Seed: o.Seed, ScaleFactor: o.ScaleFactor})
}

// BenchResult is one benchmark's row in a figure: clone error and
// correlation over the sweep.
type BenchResult struct {
	Benchmark string
	// Points is the number of validation points (configurations).
	Points int
	// Error is the mean absolute error. For rate metrics (miss rates,
	// RBL) it is measured in percentage points; for magnitude metrics
	// (latency, queue length) it is relative percent.
	Error float64
	// Correlation is Pearson's r between the original and proxy series.
	Correlation float64
}

// FigureResult aggregates one experiment.
type FigureResult struct {
	ID    string
	Title string
	// Metric names the compared quantity.
	Metric string
	Rows   []BenchResult
	// AvgError and AvgCorrelation are the headline numbers the paper
	// quotes per figure.
	AvgError       float64
	AvgCorrelation float64
	// Elapsed is the wall-clock cost of regenerating the figure.
	Elapsed time.Duration
}

// finalize computes the aggregate row.
func (f *FigureResult) finalize() {
	var errs, corrs []float64
	for _, r := range f.Rows {
		errs = append(errs, r.Error)
		corrs = append(corrs, r.Correlation)
	}
	f.AvgError = stats.Mean(errs)
	f.AvgCorrelation = stats.Mean(corrs)
}

// rateError is the error metric for rates in [0,1]: mean absolute
// difference in percentage points.
func rateError(orig, prox []float64) float64 {
	var sum float64
	for i := range orig {
		sum += stats.AbsError(orig[i], prox[i])
	}
	if len(orig) == 0 {
		return 0
	}
	return sum / float64(len(orig))
}

// relError is the error metric for magnitudes: mean absolute relative
// percent.
func relError(orig, prox []float64) float64 {
	e, err := stats.MeanAbsPctError(orig, prox)
	if err != nil {
		return 0
	}
	return e
}

// correlation mirrors core.Comparison's flat-series convention.
func correlation(orig, prox []float64) float64 {
	r, err := stats.Pearson(orig, prox)
	if err != nil {
		return 0
	}
	if r == 0 && stats.StdDev(orig) == 0 && stats.StdDev(prox) == 0 {
		return 1
	}
	return r
}

// runSweep compares original and proxy over a sweep for one metric. When
// proxyGens is nil the same generators drive both sides; Figure 6e passes
// a different proxy-side policy (SchedPself approximating GTO).
func (o *Options) runSweep(w *core.Workload, gens, proxyGens []ConfigGen, metric core.Metric, asRate bool) (BenchResult, error) {
	if proxyGens == nil {
		proxyGens = gens
	}
	if len(proxyGens) != len(gens) {
		return BenchResult{}, fmt.Errorf("eval: %d original configs vs %d proxy configs", len(gens), len(proxyGens))
	}
	orig := make([]float64, 0, len(gens))
	prox := make([]float64, 0, len(gens))
	for i := range gens {
		ocfg, err := gens[i].Make()
		if err != nil {
			return BenchResult{}, fmt.Errorf("eval: %s: %w", gens[i].Label, err)
		}
		om, err := w.SimulateOriginal(ocfg)
		if err != nil {
			return BenchResult{}, err
		}
		pcfg, err := proxyGens[i].Make()
		if err != nil {
			return BenchResult{}, err
		}
		pm, err := w.SimulateProxy(pcfg)
		if err != nil {
			return BenchResult{}, err
		}
		orig = append(orig, metric.Fn(om))
		prox = append(prox, metric.Fn(pm))
	}
	res := BenchResult{Benchmark: w.Name, Points: len(gens), Correlation: correlation(orig, prox)}
	if asRate {
		res.Error = rateError(orig, prox)
	} else {
		res.Error = relError(orig, prox)
	}
	return res, nil
}

// runFigure evaluates a metric sweep across all selected benchmarks.
func (o *Options) runFigure(id, title string, metric core.Metric, asRate bool, gens, proxyGens []ConfigGen) (*FigureResult, error) {
	o.fillDefaults()
	start := time.Now()
	fig := &FigureResult{ID: id, Title: title, Metric: metric.Name}
	for _, name := range o.Benchmarks {
		w, err := o.prepare(name)
		if err != nil {
			return nil, err
		}
		row, err := o.runSweep(w, gens, proxyGens, metric, asRate)
		if err != nil {
			return nil, fmt.Errorf("eval %s/%s: %w", id, name, err)
		}
		fig.Rows = append(fig.Rows, row)
		o.logf("%s %-12s error %6.2f%s corr %.3f (%d pts)",
			id, name, row.Error, errUnit(asRate), row.Correlation, row.Points)
	}
	fig.finalize()
	fig.Elapsed = time.Since(start)
	return fig, nil
}

func errUnit(asRate bool) string {
	if asRate {
		return "pp"
	}
	return "%"
}

// Fig6a regenerates Figure 6a: L1 miss-rate cloning across 30 L1
// configurations.
func (o *Options) Fig6a() (*FigureResult, error) {
	o.fillDefaults()
	return o.runFigure("fig6a", "L1 cache configurations: proxy vs original miss rate",
		core.L1MissRate, true, L1Sweep(o.Cores), nil)
}

// Fig6b regenerates Figure 6b: L2 miss-rate cloning across 30 L2
// configurations.
func (o *Options) Fig6b() (*FigureResult, error) {
	o.fillDefaults()
	return o.runFigure("fig6b", "L2 cache configurations: proxy vs original miss rate",
		core.L2MissRate, true, L2Sweep(o.Cores), nil)
}

// Fig6c regenerates Figure 6c: L1 miss rate with a many-thread-aware
// stride prefetcher across 72 configurations.
func (o *Options) Fig6c() (*FigureResult, error) {
	o.fillDefaults()
	return o.runFigure("fig6c", "L1 cache + stride prefetcher configurations",
		core.L1MissRate, true, L1PrefetchSweep(o.Cores), nil)
}

// Fig6d regenerates Figure 6d: L2 miss rate with a stream prefetcher
// across 96 configurations.
func (o *Options) Fig6d() (*FigureResult, error) {
	o.fillDefaults()
	return o.runFigure("fig6d", "L2 cache + stream prefetcher configurations",
		core.L2MissRate, true, L2PrefetchSweep(o.Cores), nil)
}

// Fig6eResult carries the two policy sub-figures of Figure 6e.
type Fig6eResult struct {
	LRR *FigureResult
	GTO *FigureResult
}

// Fig6e regenerates Figure 6e: L1 miss-rate cloning under LRR and GTO
// warp scheduling. The proxy replicates GTO via the SchedPself
// approximation of §4.5 rather than modeling the core pipeline.
func (o *Options) Fig6e() (*Fig6eResult, error) {
	o.fillDefaults()
	lrr, err := o.runFigure("fig6e/lrr", "Scheduling policy impact (LRR)",
		core.L1MissRate, true, SchedulerSweep(o.Cores, memsim.LRR), nil)
	if err != nil {
		return nil, err
	}
	// Original runs true GTO; the proxy side approximates it with PSelf.
	origGens := SchedulerSweep(o.Cores, memsim.GTO)
	proxGens := SchedulerSweep(o.Cores, memsim.PSelf)
	gto, err := o.runFigure("fig6e/gto", "Scheduling policy impact (GTO, proxy via SchedPself)",
		core.L1MissRate, true, origGens, proxGens)
	if err != nil {
		return nil, err
	}
	return &Fig6eResult{LRR: lrr, GTO: gto}, nil
}
