package dist

import (
	"reflect"
	"testing"
)

// FuzzDecodeBatch feeds arbitrary bytes to the lease/result wire
// decoder. Whatever the input, the decoder must either return an error
// or a batch that survives a clean re-encode/re-decode round trip; it
// must never panic, and a corrupt count or length field claiming
// gigabytes must not cause a giant allocation (the fuzzer's memory
// limit enforces this — entry slices grow incrementally).
func FuzzDecodeBatch(f *testing.F) {
	good, err := EncodeBatch(sampleBatch())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])                                             // truncated mid-entry
	f.Add([]byte(batchMagic))                                             // header only
	f.Add(append([]byte(batchMagic), 0x00, 0x07, 0xff, 0xff, 0xff, 0x7f)) // hostile entry count
	f.Add(append([]byte("gmapdist1\n"), good[len(batchMagic):]...))       // pre-epoch v1 magic
	empty, err := EncodeBatch(&Batch{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		re, err := EncodeBatch(b)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		b2, err := DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", b, b2)
		}
	})
}
