package cache

// MSHRFile models the miss-status holding registers of one core: a bounded
// set of outstanding line misses with secondary-miss merging. When the file
// is full the core must stall before issuing further misses — a first-order
// GPU bottleneck the paper's Table 2 configuration fixes at 64 entries per
// core.
type MSHRFile struct {
	capacity int
	pending  map[uint64]int // line address -> merged request count
	// Stats
	Allocations uint64 // primary misses that claimed an entry
	Merges      uint64 // secondary misses merged into an existing entry
	StallEvents uint64 // allocation attempts rejected because full
}

// NewMSHRFile returns a file with the given entry capacity; capacity <= 0
// means unbounded (no stalls).
func NewMSHRFile(capacity int) *MSHRFile {
	return &MSHRFile{capacity: capacity, pending: make(map[uint64]int)}
}

// Lookup reports whether a miss on lineAddr is already outstanding.
func (m *MSHRFile) Lookup(lineAddr uint64) bool {
	_, ok := m.pending[lineAddr]
	return ok
}

// Allocate claims an entry for a miss on lineAddr. merged is true when the
// miss joined an already outstanding entry; ok is false when the file is
// full and the request must stall.
func (m *MSHRFile) Allocate(lineAddr uint64) (merged, ok bool) {
	if n, exists := m.pending[lineAddr]; exists {
		m.pending[lineAddr] = n + 1
		m.Merges++
		return true, true
	}
	if m.capacity > 0 && len(m.pending) >= m.capacity {
		m.StallEvents++
		return false, false
	}
	m.pending[lineAddr] = 1
	m.Allocations++
	return false, true
}

// Release completes the outstanding miss on lineAddr, freeing its entry.
// Releasing an unknown line is a no-op.
func (m *MSHRFile) Release(lineAddr uint64) {
	delete(m.pending, lineAddr)
}

// InFlight returns the number of outstanding entries.
func (m *MSHRFile) InFlight() int { return len(m.pending) }

// Full reports whether a new primary miss would stall.
func (m *MSHRFile) Full() bool {
	return m.capacity > 0 && len(m.pending) >= m.capacity
}
