// Package trace defines the memory access stream model shared by every
// G-MAP component: raw per-thread accesses as emitted by a (real or
// emulated) GPU kernel, coalesced warp-level cacheline requests, and
// per-core interleaved streams ready for cache/DRAM simulation. It also
// provides compact binary and human-readable text codecs so traces and
// proxies can be stored and exchanged.
package trace

import "fmt"

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Load is a global memory read.
	Load Kind = iota
	// Store is a global memory write.
	Store
	// Sync is a threadblock barrier (bar.sync). It generates no memory
	// traffic; schedulers hold the warp until every live warp of its
	// block reaches the same barrier. The paper's π profiles carry
	// synchronization information the same way (§4.5).
	Sync
)

// String returns "LD", "ST" or "BAR".
func (k Kind) String() string {
	switch k {
	case Store:
		return "ST"
	case Sync:
		return "BAR"
	default:
		return "LD"
	}
}

// Access is one dynamic memory reference by one thread: the static
// instruction that issued it (PC), the byte address it touched, and whether
// it was a read or a write.
type Access struct {
	PC   uint64
	Addr uint64
	Kind Kind
}

// String renders the access as "LD pc=0x900 addr=0x1000".
func (a Access) String() string {
	return fmt.Sprintf("%s pc=%#x addr=%#x", a.Kind, a.PC, a.Addr)
}

// ThreadTrace is the ordered reference stream of a single scalar thread.
type ThreadTrace struct {
	// ThreadID is the linearized global thread index within the kernel.
	ThreadID int
	Accesses []Access
}

// Request is one coalesced, cacheline-granular memory transaction issued on
// behalf of a warp. Addr is aligned to the line size used during
// coalescing.
type Request struct {
	PC     uint64
	Addr   uint64
	Kind   Kind
	WarpID int
	// Threads is the number of scalar threads whose references were merged
	// into this transaction (1..32). It is informational; the memory system
	// treats every Request as a single transaction.
	Threads int
}

// String renders the request as "LD warp=3 pc=0x900 line=0x1000 (x32)".
func (r Request) String() string {
	return fmt.Sprintf("%s warp=%d pc=%#x line=%#x (x%d)", r.Kind, r.WarpID, r.PC, r.Addr, r.Threads)
}

// WarpTrace is the ordered, already-coalesced transaction stream of one
// warp.
type WarpTrace struct {
	WarpID int
	// Block is the threadblock the warp belongs to; scheduling uses it for
	// TB-to-core assignment and TB-level barriers.
	Block    int
	Requests []Request
}

// Len returns the number of requests in the warp trace.
func (w *WarpTrace) Len() int { return len(w.Requests) }

// KernelTrace bundles everything profiling needs about one kernel
// execution: launch geometry and the per-thread access streams.
type KernelTrace struct {
	// Name identifies the kernel (benchmark name for our workloads).
	Name string
	// GridDim and BlockDim are the linearized launch dimensions. G-MAP
	// preserves both when generating proxies (§4 of the paper).
	GridDim  int
	BlockDim int
	// Threads holds one entry per scalar thread, indexed by ThreadID.
	Threads []ThreadTrace
}

// NumThreads returns the total number of scalar threads.
func (k *KernelTrace) NumThreads() int { return len(k.Threads) }

// NumAccesses returns the total dynamic access count across all threads.
func (k *KernelTrace) NumAccesses() int {
	n := 0
	for i := range k.Threads {
		n += len(k.Threads[i].Accesses)
	}
	return n
}

// Validate checks internal consistency: thread ids must match slice
// positions and geometry must cover the thread count.
func (k *KernelTrace) Validate() error {
	if k.GridDim <= 0 || k.BlockDim <= 0 {
		return fmt.Errorf("trace %q: non-positive geometry %dx%d", k.Name, k.GridDim, k.BlockDim)
	}
	if want := k.GridDim * k.BlockDim; want != len(k.Threads) {
		return fmt.Errorf("trace %q: geometry %dx%d=%d threads, have %d",
			k.Name, k.GridDim, k.BlockDim, want, len(k.Threads))
	}
	for i := range k.Threads {
		if k.Threads[i].ThreadID != i {
			return fmt.Errorf("trace %q: thread %d has id %d", k.Name, i, k.Threads[i].ThreadID)
		}
	}
	return nil
}

// CoreStream is the interleaved, scheduler-ordered request stream seen by
// one core (SM); this is what drives the cache hierarchy model.
type CoreStream struct {
	Core     int
	Requests []Request
}
