package eval

import (
	"bytes"
	"strings"
	"testing"

	"github.com/uteda/gmap/internal/synth"
)

func TestAblationVariantsShape(t *testing.T) {
	vs := AblationVariants()
	if len(vs) != 6 {
		t.Fatalf("variants = %d, want 6", len(vs))
	}
	if vs[0].Name != "full" || vs[0].Abl != (synth.Ablation{}) {
		t.Errorf("first variant must be the full generator: %+v", vs[0])
	}
	last := vs[len(vs)-1]
	if !last.Abl.NoWindows || !last.Abl.NoTemplates || !last.Abl.NoRunLengths {
		t.Errorf("bare variant incomplete: %+v", last)
	}
}

func TestAblationQuick(t *testing.T) {
	opts := Options{Benchmarks: []string{"kmeans"}, Scale: 1, ScaleFactor: 4, Seed: 1, Cores: 4}
	res, err := opts.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].L1Err) != 6 {
		t.Fatalf("result shape = %d rows x %d variants", len(res.Rows), len(res.Rows[0].L1Err))
	}
	// kmeans without footprint windows must be much worse than full: that
	// mechanism is what stops stride-walk diffusion (DESIGN.md §5).
	full, noWin := res.Rows[0].L1Err[0], res.Rows[0].L1Err[1]
	if noWin <= full {
		t.Errorf("kmeans -windows error (%.2f) not worse than full (%.2f)", noWin, full)
	}
	var buf bytes.Buffer
	if err := WriteAblation(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ablation", "kmeans", "full", "bare-alg1", "AVERAGE"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}
}
