// Property test: observability is write-only. Attaching a registry to
// the simulator must never change any simulation outcome — the metrics
// are required to be bit-identical with observability on and off, over
// randomized multi-core, multi-warp, MSHR-bounded workloads.
package memsim_test

import (
	"reflect"
	"testing"

	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/trace"
)

// runOnce builds and runs one simulator over warps; obs toggles the
// attached registry. The registry is returned for instrumentation checks.
func runOnce(t *testing.T, seed uint64, warps []trace.WarpTrace, cfg memsim.Config, withObs bool) (memsim.Metrics, *obs.Registry) {
	t.Helper()
	var r *obs.Registry
	if withObs {
		r = obs.New()
	}
	cfg.Obs = r
	sim, err := memsim.New(warps, cfg)
	if err != nil {
		t.Fatalf("seed %d (obs=%v): %v", seed, withObs, err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatalf("seed %d (obs=%v): %v", seed, withObs, err)
	}
	return m, r
}

// TestObsInvariance runs randomized workloads twice — observability
// disabled and enabled — and requires reflect.DeepEqual metrics,
// including the per-launch breakdown. Any divergence means an
// instrumentation hook leaked into simulation state.
func TestObsInvariance(t *testing.T) {
	n := proptest.N(t, 150, 1000)
	for i := 0; i < n; i++ {
		seed := uint64(0x0b5 + i)
		g := proptest.New(seed)
		l1cfg := g.CacheConfig()
		l2cfg := g.CacheConfig()
		banks := []int{1, 2, 4}[g.R.Intn(3)]
		for l2cfg.SizeBytes/(l2cfg.Ways*l2cfg.LineSize) < banks {
			banks /= 2
		}
		warps := g.WarpSet(8, 0.05)
		cfg := memsim.Config{
			NumCores:     1 + g.R.Intn(4),
			L1:           l1cfg,
			L2:           l2cfg,
			L2Banks:      banks,
			MSHRsPerCore: []int{0, 1, 4, 64}[g.R.Intn(4)],
			DRAM:         dram.DefaultGDDR3(),
			Scheduler:    []memsim.SchedPolicy{memsim.LRR, memsim.GTO}[g.R.Intn(2)],
			Seed:         g.R.Uint64(),
		}

		plain, _ := runOnce(t, seed, warps, cfg, false)
		observed, reg := runOnce(t, seed, warps, cfg, true)
		if !reflect.DeepEqual(plain, observed) {
			t.Fatalf("seed %d: metrics diverge with observability attached\n plain:    %+v\n observed: %+v", seed, plain, observed)
		}

		// The instrumentation itself must agree with the metrics it
		// shadows: the request counter is the same stream.
		if got := reg.Counter("memsim.requests").Value(); got != plain.Requests {
			t.Fatalf("seed %d: obs requests %d != metrics requests %d", seed, got, plain.Requests)
		}
	}
}

// TestObsInvarianceSequence covers the multi-launch path (per-launch
// windows and launch samplers) with two back-to-back kernel launches.
func TestObsInvarianceSequence(t *testing.T) {
	n := proptest.N(t, 50, 300)
	for i := 0; i < n; i++ {
		seed := 0x5e90 ^ uint64(i*2654435761)
		g := proptest.New(seed)
		launches := [][]trace.WarpTrace{
			g.WarpSet(4, 0.05),
			g.WarpSet(4, 0.05),
		}
		cfg := memsim.Config{
			NumCores: 1 + g.R.Intn(2),
			L1:       g.CacheConfig(),
			L2:       g.CacheConfig(),
			L2Banks:  1,
			DRAM:     dram.DefaultGDDR3(),
		}

		run := func(withObs bool) (memsim.Metrics, *obs.Registry) {
			var r *obs.Registry
			if withObs {
				r = obs.New()
			}
			c := cfg
			c.Obs = r
			sim, err := memsim.NewSequence(launches, c)
			if err != nil {
				t.Fatalf("seed %d (obs=%v): %v", seed, withObs, err)
			}
			m, err := sim.Run()
			if err != nil {
				t.Fatalf("seed %d (obs=%v): %v", seed, withObs, err)
			}
			return m, r
		}
		plain, _ := run(false)
		observed, reg := run(true)
		if !reflect.DeepEqual(plain, observed) {
			t.Fatalf("seed %d: sequence metrics diverge with observability attached", seed)
		}
		if got, want := reg.Counter("memsim.launches").Value(), uint64(len(plain.PerLaunch)); got != want {
			t.Fatalf("seed %d: obs launches %d != recorded launches %d", seed, got, want)
		}
	}
}

// TestTraceInvariance extends the write-only property to span tracing:
// attaching a trace span to the simulator must leave the metrics
// bit-identical, while still recording the expected span structure
// ("memsim.run", and "memsim.epoch" per launch window on multi-launch
// streams).
func TestTraceInvariance(t *testing.T) {
	n := proptest.N(t, 75, 400)
	for i := 0; i < n; i++ {
		seed := uint64(0x72ace + i)
		g := proptest.New(seed)
		launches := [][]trace.WarpTrace{g.WarpSet(6, 0.05)}
		if g.R.Intn(2) == 1 {
			launches = append(launches, g.WarpSet(4, 0.05))
		}
		cfg := memsim.Config{
			NumCores: 1 + g.R.Intn(3),
			L1:       g.CacheConfig(),
			L2:       g.CacheConfig(),
			L2Banks:  1,
			DRAM:     dram.DefaultGDDR3(),
			Seed:     g.R.Uint64(),
		}

		run := func(span *obstrace.Span) memsim.Metrics {
			c := cfg
			c.TraceSpan = span
			sim, err := memsim.NewSequence(launches, c)
			if err != nil {
				t.Fatalf("seed %d (traced=%v): %v", seed, span != nil, err)
			}
			m, err := sim.Run()
			if err != nil {
				t.Fatalf("seed %d (traced=%v): %v", seed, span != nil, err)
			}
			return m
		}

		plain := run(nil)
		tr := obstrace.New()
		root := tr.Root("test")
		traced := run(root)
		root.End()
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("seed %d: metrics diverge with span tracing attached\n plain:  %+v\n traced: %+v", seed, plain, traced)
		}

		var runs, epochs int
		for _, e := range tr.Events() {
			switch e.Name {
			case "memsim.run":
				runs++
			case "memsim.epoch":
				epochs++
			}
		}
		if runs != 1 {
			t.Fatalf("seed %d: want 1 memsim.run span, got %d", seed, runs)
		}
		wantEpochs := 0
		if len(launches) > 1 {
			wantEpochs = len(launches)
		}
		if epochs != wantEpochs {
			t.Fatalf("seed %d: want %d memsim.epoch spans for %d launches, got %d", seed, wantEpochs, len(launches), epochs)
		}
	}
}
