// Package eval defines and runs the paper's evaluation: the configuration
// sweeps behind every figure and table of §5, original-versus-proxy
// comparison across them, and plain-text report rendering. Each experiment
// is addressable by its paper id (table1, fig6a..fig6e, fig7, fig8).
package eval

import (
	"fmt"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/prefetch"
)

// ConfigGen builds a fresh simulator configuration for every run. A fresh
// value is required because prefetchers carry training state that must not
// leak across runs.
type ConfigGen struct {
	Label string
	Make  func() (memsim.Config, error)
}

// baseConfig returns the Table 2 system with the evaluation's core count.
func baseConfig(cores int) memsim.Config {
	cfg := memsim.DefaultConfig()
	if cores > 0 {
		cfg.NumCores = cores
	}
	return cfg
}

// L1Sweep returns the 30 L1 configurations of Figure 6a: cache size
// 8-128KB x associativity 1-16 x line size 32-128B, with the L2 fixed at
// 1MB 8-way.
func L1Sweep(cores int) []ConfigGen {
	var gens []ConfigGen
	for _, size := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10} {
		for _, ways := range []int{1, 4, 16} {
			for _, line := range []int{32, 128} {
				l1 := cache.Config{SizeBytes: size, Ways: ways, LineSize: line}
				gens = append(gens, ConfigGen{
					Label: "L1 " + l1.String(),
					Make: func() (memsim.Config, error) {
						cfg := baseConfig(cores)
						cfg.L1 = l1
						return cfg, nil
					},
				})
			}
		}
	}
	return gens
}

// L2Sweep returns the 30 L2 configurations of Figure 6b: 128KB-4MB x
// associativity 1-16 x line 64-128B, with the L1 fixed at 16KB 4-way.
func L2Sweep(cores int) []ConfigGen {
	var gens []ConfigGen
	for _, size := range []int{128 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20} {
		for _, ways := range []int{1, 4, 16} {
			for _, line := range []int{64, 128} {
				l2 := cache.Config{SizeBytes: size, Ways: ways, LineSize: line}
				gens = append(gens, ConfigGen{
					Label: "L2 " + l2.String(),
					Make: func() (memsim.Config, error) {
						cfg := baseConfig(cores)
						cfg.L2 = l2
						return cfg, nil
					},
				})
			}
		}
	}
	return gens
}

// L1PrefetchSweep returns the 72 configurations of Figure 6c: the
// many-thread-aware L1 stride prefetcher swept over degree and table
// configuration, across L1 geometries.
func L1PrefetchSweep(cores int) []ConfigGen {
	var gens []ConfigGen
	for _, size := range []int{8 << 10, 16 << 10, 64 << 10} {
		for _, ways := range []int{1, 4, 16} {
			for _, degree := range []int{1, 2, 4, 8} {
				for _, table := range []int{16, 64} {
					l1 := cache.Config{SizeBytes: size, Ways: ways, LineSize: 128}
					pf := prefetch.StrideConfig{TableSize: table, Degree: degree, MinConfidence: 2, PerWarp: true}
					gens = append(gens, ConfigGen{
						Label: fmt.Sprintf("L1 %s stride(d=%d,t=%d)", l1.String(), degree, table),
						Make: func() (memsim.Config, error) {
							cfg := baseConfig(cores)
							cfg.L1 = l1
							cfg.NewL1Prefetcher = func() (prefetch.Prefetcher, error) {
								return prefetch.NewStride(pf)
							}
							return cfg, nil
						},
					})
				}
			}
		}
	}
	return gens
}

// L2PrefetchSweep returns the 96 configurations of Figure 6d: an L2
// stream prefetcher with window 8/16/32 and degree 1/2/4/8, across L2
// geometries.
func L2PrefetchSweep(cores int) []ConfigGen {
	var gens []ConfigGen
	for _, size := range []int{512 << 10, 2 << 20} {
		for _, ways := range []int{4, 16} {
			for _, line := range []int{64, 128} {
				for _, window := range []int{8, 16, 32} {
					for _, degree := range []int{1, 2, 4, 8} {
						l2 := cache.Config{SizeBytes: size, Ways: ways, LineSize: line}
						pf := prefetch.StreamConfig{Streams: 16, Window: window, Degree: degree, LineSize: uint64(line)}
						gens = append(gens, ConfigGen{
							Label: fmt.Sprintf("L2 %s stream(w=%d,d=%d)", l2.String(), window, degree),
							Make: func() (memsim.Config, error) {
								cfg := baseConfig(cores)
								cfg.L2 = l2
								p, err := prefetch.NewStream(pf)
								if err != nil {
									return memsim.Config{}, err
								}
								cfg.L2Prefetcher = p
								return cfg, nil
							},
						})
					}
				}
			}
		}
	}
	return gens
}

// SchedulerSweep returns Figure 6e's configurations: the L1 sweep under a
// given warp scheduling policy.
func SchedulerSweep(cores int, policy memsim.SchedPolicy) []ConfigGen {
	gens := L1Sweep(cores)
	out := make([]ConfigGen, len(gens))
	for i, g := range gens {
		g := g
		out[i] = ConfigGen{
			Label: g.Label + " " + policy.String(),
			Make: func() (memsim.Config, error) {
				cfg, err := g.Make()
				if err != nil {
					return cfg, err
				}
				cfg.Scheduler = policy
				if policy == memsim.GTO || policy == memsim.PSelf {
					// GTO re-issues the same warp with high probability;
					// PSelf is the proxy-side approximation of it (§4.5).
					cfg.SchedPself = 0.9
				}
				return cfg, nil
			},
		}
	}
	return out
}

// DRAMSweep returns the 11 GDDR5 configurations of Figure 7: channel
// parallelism, bus width and the two addressing schemes.
func DRAMSweep(cores int) []ConfigGen {
	type point struct {
		channels, bus int
		mapping       dram.AddrMapping
	}
	points := []point{
		{4, 8, dram.RoBaRaCoCh},
		{8, 8, dram.RoBaRaCoCh},
		{16, 8, dram.RoBaRaCoCh},
		{4, 8, dram.ChRaBaRoCo},
		{8, 8, dram.ChRaBaRoCo},
		{16, 8, dram.ChRaBaRoCo},
		{8, 4, dram.RoBaRaCoCh},
		{8, 16, dram.RoBaRaCoCh},
		{8, 4, dram.ChRaBaRoCo},
		{8, 16, dram.ChRaBaRoCo},
		{16, 16, dram.RoBaRaCoCh},
	}
	gens := make([]ConfigGen, len(points))
	for i, pt := range points {
		pt := pt
		gens[i] = ConfigGen{
			Label: fmt.Sprintf("GDDR5 %dch %dB %s", pt.channels, pt.bus, pt.mapping),
			Make: func() (memsim.Config, error) {
				cfg := baseConfig(cores)
				cfg.DRAM = dram.GDDR5(pt.channels, pt.bus, pt.mapping)
				return cfg, nil
			},
		}
	}
	return gens
}
