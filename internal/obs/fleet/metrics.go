// Merged Prometheus rendering: every member's snapshot as one text
// exposition, worker="..." labels per source plus an unlabeled
// cross-fleet aggregate per metric.
package fleet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/uteda/gmap/internal/obs"
)

// namedSnapshot pairs one member's name with its registry snapshot.
type namedSnapshot struct {
	name string
	snap obs.Snapshot
}

// WriteMetrics renders the merged fleet exposition as Prometheus text.
// For every metric name present in any member's snapshot it emits one
// labeled sample per reporting member plus an unlabeled aggregate —
// counters and gauge values sum, gauge maxima take the max, histogram
// buckets merge by boundary. Two workers reporting the same counter
// therefore sum into the aggregate; the labels keep the per-worker
// values apart. Series are a local debugging surface and are not
// federated.
func (f *Federator) WriteMetrics(w io.Writer) error {
	var members []namedSnapshot
	if f != nil {
		members = f.snapshots()
	}
	bw := bufio.NewWriter(w)

	writeCounters(bw, members)
	writeGauges(bw, members)
	writeHistograms(bw, members)
	return bw.Flush()
}

// union collects the sorted set of metric names across members under
// pick, which projects one snapshot's name set.
func union(members []namedSnapshot, pick func(obs.Snapshot) []string) []string {
	seen := map[string]bool{}
	var names []string
	for _, m := range members {
		for _, n := range pick(m.snap) {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

func counterNames(s obs.Snapshot) []string   { return mapKeys(s.Counters) }
func gaugeNames(s obs.Snapshot) []string     { return gaugeKeys(s.Gauges) }
func histogramNames(s obs.Snapshot) []string { return histKeys(s.Histograms) }

func mapKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func gaugeKeys(m map[string]obs.GaugeSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func histKeys(m map[string]obs.HistogramSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func label(worker string) string {
	return `{worker=` + strconv.Quote(worker) + `}`
}

func writeCounters(bw *bufio.Writer, members []namedSnapshot) {
	for _, name := range union(members, counterNames) {
		m := obs.PromName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", m)
		var sum uint64
		for _, mem := range members {
			v, ok := mem.snap.Counters[name]
			if !ok {
				continue
			}
			sum += v
			fmt.Fprintf(bw, "%s%s %d\n", m, label(mem.name), v)
		}
		fmt.Fprintf(bw, "%s %d\n", m, sum)
	}
}

func writeGauges(bw *bufio.Writer, members []namedSnapshot) {
	for _, name := range union(members, gaugeNames) {
		m := obs.PromName(name)
		var sum, max int64
		var have bool
		fmt.Fprintf(bw, "# TYPE %s gauge\n", m)
		for _, mem := range members {
			g, ok := mem.snap.Gauges[name]
			if !ok {
				continue
			}
			sum += g.Value
			if !have || g.Max > max {
				max = g.Max
			}
			have = true
			fmt.Fprintf(bw, "%s%s %d\n", m, label(mem.name), g.Value)
		}
		fmt.Fprintf(bw, "%s %d\n", m, sum)
		fmt.Fprintf(bw, "# TYPE %s_max gauge\n", m)
		for _, mem := range members {
			if g, ok := mem.snap.Gauges[name]; ok {
				fmt.Fprintf(bw, "%s_max%s %d\n", m, label(mem.name), g.Max)
			}
		}
		fmt.Fprintf(bw, "%s_max %d\n", m, max)
	}
}

func writeHistograms(bw *bufio.Writer, members []namedSnapshot) {
	for _, name := range union(members, histogramNames) {
		m := obs.PromName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", m)

		// Aggregate buckets merge by upper boundary; every member uses
		// the same power-of-two bucketing, so boundaries align exactly.
		merged := map[uint64]uint64{} // inclusive le boundary -> count
		var totalCount, totalSum uint64
		for _, mem := range members {
			h, ok := mem.snap.Histograms[name]
			if !ok {
				continue
			}
			totalCount += h.Count
			totalSum += h.Sum
			for _, b := range h.Buckets {
				// Buckets are [Lo, Hi); the inclusive upper bound is Hi-1
				// (the zero bucket holds only 0).
				hi := uint64(0)
				if b.Hi > 0 {
					hi = b.Hi - 1
				}
				merged[hi] += b.Count
			}
		}
		bounds := make([]uint64, 0, len(merged))
		for b := range merged {
			bounds = append(bounds, b)
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		var cum uint64
		for _, b := range bounds {
			cum += merged[b]
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", m, b, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", m, totalCount)
		for _, mem := range members {
			if h, ok := mem.snap.Histograms[name]; ok {
				fmt.Fprintf(bw, "%s_sum%s %d\n", m, label(mem.name), h.Sum)
			}
		}
		fmt.Fprintf(bw, "%s_sum %d\n", m, totalSum)
		for _, mem := range members {
			if h, ok := mem.snap.Histograms[name]; ok {
				fmt.Fprintf(bw, "%s_count%s %d\n", m, label(mem.name), h.Count)
			}
		}
		fmt.Fprintf(bw, "%s_count %d\n", m, totalCount)
	}
}
