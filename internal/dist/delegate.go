package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	"github.com/uteda/gmap/internal/serve/api"
)

// Delegate errors. Both tell the serving layer "run it locally
// instead"; they are distinct so the fallback reason is observable.
var (
	// ErrBusy reports a second concurrent sweep offered to a delegate
	// whose single coordinator slot is taken.
	ErrBusy = errors.New("dist: delegate is already coordinating a sweep")
	// ErrNoProgress reports a delegated sweep that merged nothing for the
	// whole progress deadline — no workers dialed in, or they all died.
	ErrNoProgress = errors.New("dist: no progress before the delegate deadline")
)

// DelegateOptions configures NewDelegate.
type DelegateOptions struct {
	// Parts/LeaseTTL/StallFactor configure each sweep's coordinator;
	// zero values take the coordinator defaults.
	Parts       int
	LeaseTTL    time.Duration
	StallFactor float64
	// Deadline is the no-progress watchdog: a delegated sweep whose
	// merged-job count does not advance for this long is abandoned
	// (ErrNoProgress) and the serving layer falls back to local
	// execution from the same checkpoint. <= 0 defaults to 2m.
	Deadline time.Duration
	// FS routes ledger I/O; nil selects the real filesystem.
	FS fault.FS
	// Obs, when non-nil, collects coordinator and delegate counters.
	Obs *obs.Registry
	// Trace, when non-nil, is handed to each sweep's coordinator: sweep
	// and lease spans land here, and lease grants carry trace context to
	// the workers.
	Trace *obstrace.Tracer
	// Logf, when non-nil, receives delegate and coordinator lines.
	Logf func(format string, args ...interface{})
}

// Delegate implements api.SweepDelegate over an in-process coordinator:
// gmap-served offers each admitted sweep job to the distributed worker
// fleet, and the job's own checkpoint doubles as the merge ledger —
// which is exactly what makes degraded-mode seamless, because the local
// fallback resumes from whatever the fleet managed to merge.
//
// One sweep coordinates at a time (sweeps saturate the fleet; queueing
// a second behind the first beats interleaving them), and the
// worker-facing HTTP surface routes to whichever coordinator is live.
type Delegate struct {
	o DelegateOptions

	mu  sync.Mutex
	cur *Coordinator // live sweep's coordinator, nil when idle
}

// NewDelegate builds a Delegate.
func NewDelegate(o DelegateOptions) *Delegate {
	if o.Deadline <= 0 {
		o.Deadline = 2 * time.Minute
	}
	return &Delegate{o: o}
}

func (d *Delegate) logf(format string, args ...interface{}) {
	if d.o.Logf != nil {
		d.o.Logf(format, args...)
	}
}

// RunSweep coordinates spec across the worker fleet, merging into
// ledger, and returns the rendered report. It fails — leaving the
// ledger's merged points for the caller's local fallback — when a sweep
// is already being coordinated (ErrBusy), when no progress lands within
// the deadline (ErrNoProgress), or when ctx is cancelled.
func (d *Delegate) RunSweep(ctx context.Context, spec api.JobSpec, ledger string) (string, error) {
	c, err := NewCoordinator(CoordinatorOptions{
		Spec:        spec,
		Parts:       d.o.Parts,
		LeaseTTL:    d.o.LeaseTTL,
		StallFactor: d.o.StallFactor,
		Ledger:      ledger,
		FS:          d.o.FS,
		Obs:         d.o.Obs,
		Trace:       d.o.Trace,
		Logf:        d.o.Logf,
	})
	if err != nil {
		return "", err
	}

	d.mu.Lock()
	if d.cur != nil {
		d.mu.Unlock()
		_ = c.Close()
		d.o.Obs.Counter("dist.delegate_busy").Inc()
		return "", ErrBusy
	}
	d.cur = c
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.cur = nil
		d.mu.Unlock()
		_ = c.Close()
	}()

	d.logf("dist: delegate: coordinating %s over %s (epoch %d)", spec.Experiment, ledger, c.Epoch())
	d.o.Obs.Counter("dist.delegate_sweeps").Inc()

	// The watchdog compares merged-job counts, not worker liveness: a
	// fleet that is merging anything at all is worth waiting for, and
	// one that merges nothing for a whole deadline is indistinguishable
	// from absent.
	interval := d.o.Deadline / 10
	if interval <= 0 || interval > 5*time.Second {
		interval = 5 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	lastDone := c.StatusSnapshot().DoneJobs
	stalledSince := time.Now()
	for {
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-c.Done():
			if err := c.Close(); err != nil {
				return "", err
			}
			var buf bytes.Buffer
			if err := c.WriteReport(&buf); err != nil {
				return "", err
			}
			d.logf("dist: delegate: %s complete", spec.Experiment)
			return buf.String(), nil
		case <-tick.C:
			done := c.StatusSnapshot().DoneJobs
			if done != lastDone {
				lastDone = done
				stalledSince = time.Now()
				continue
			}
			if time.Since(stalledSince) >= d.o.Deadline {
				d.o.Obs.Counter("dist.delegate_stalls").Inc()
				return "", fmt.Errorf("%w: %d/%d jobs merged into %s",
					ErrNoProgress, done, c.StatusSnapshot().TotalJobs, ledger)
			}
		}
	}
}

// Status snapshots the live sweep's coordinator, nil when idle — the
// fleet federation's window into delegate state.
func (d *Delegate) Status() *Status {
	d.mu.Lock()
	c := d.cur
	d.mu.Unlock()
	if c == nil {
		return nil
	}
	st := c.StatusSnapshot()
	return &st
}

// Handler routes worker traffic to the live sweep's coordinator. With
// no sweep coordinating, every endpoint answers 503 with code
// "unavailable" — which workers classify as retryable, so a fleet
// dialed in before the next sweep arrives simply waits.
func (d *Delegate) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		c := d.cur
		d.mu.Unlock()
		if c == nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"error": "no sweep is being coordinated",
				"code":  "unavailable",
			})
			return
		}
		c.Handler().ServeHTTP(w, r)
	})
}
