package runner

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestKillAndResumeReproducesUninterruptedRun is the engine-level crash
// metamorphic test: a run cancelled partway through (simulating a kill
// after some checkpoint lines were flushed) must, when resumed, skip
// exactly the checkpointed jobs and produce the same values in the same
// order as a run that was never interrupted.
func TestKillAndResumeReproducesUninterruptedRun(t *testing.T) {
	const total = 40
	mkJobs := func() []Job[int] {
		jobs := make([]Job[int], total)
		for i := 0; i < total; i++ {
			i := i
			jobs[i] = Job[int]{
				Key: JobKey("killresume", fmt.Sprint(i)),
				Run: func(ctx context.Context) (int, error) { return i * i, nil },
			}
		}
		return jobs
	}

	// Uninterrupted reference run.
	wantResults, _, err := Run(context.Background(), Options{Workers: 1}, mkJobs())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel from the event hook after a few completions,
	// exactly where a SIGKILL would land between two checkpoint flushes.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var finished atomic.Int32
	_, _, err = Run(ctx, Options{
		Workers:    2,
		Checkpoint: path,
		OnEvent: func(e Event) {
			if e.Kind == JobDone && finished.Add(1) == 5 {
				cancel()
			}
		},
	}, mkJobs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run error = %v, want context.Canceled", err)
	}

	recorded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	k := len(recorded)
	if k == 0 || k == total {
		t.Fatalf("checkpoint recorded %d/%d jobs; the interruption must land mid-run", k, total)
	}

	// Resumed run: every recorded job is skipped, the rest execute, and
	// the combined results are identical to the uninterrupted run.
	results, st, err := Run(context.Background(), Options{
		Workers:    2,
		Checkpoint: path,
		Resume:     true,
	}, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != k {
		t.Errorf("resume skipped %d jobs, checkpoint holds %d", st.Skipped, k)
	}
	if st.Completed != total-k || st.Failed != 0 {
		t.Errorf("resume stats = %+v, want %d completed", st, total-k)
	}
	for i := range results {
		if results[i].Key != wantResults[i].Key || results[i].Value != wantResults[i].Value {
			t.Fatalf("result %d = {%s %d}, uninterrupted run had {%s %d}",
				i, results[i].Key, results[i].Value, wantResults[i].Key, wantResults[i].Value)
		}
	}
	skipped := 0
	for _, r := range results {
		if r.Skipped {
			skipped++
		}
	}
	if skipped != k {
		t.Errorf("%d results marked skipped, want %d", skipped, k)
	}
}

// TestResumeIsIdempotent: resuming twice from a complete checkpoint runs
// nothing and returns identical values both times.
func TestResumeIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	jobs := func() []Job[string] {
		out := make([]Job[string], 10)
		for i := range out {
			i := i
			out[i] = Job[string]{
				Key: JobKey("idem", fmt.Sprint(i)),
				Run: func(ctx context.Context) (string, error) { return fmt.Sprintf("v%d", i), nil },
			}
		}
		return out
	}
	base, _, err := Run(context.Background(), Options{Checkpoint: path}, jobs())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		res, st, err := Run(context.Background(), Options{Checkpoint: path, Resume: true}, jobs())
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != 0 || st.Skipped != 10 {
			t.Fatalf("round %d: stats %+v, want all skipped", round, st)
		}
		for i := range res {
			if !reflect.DeepEqual(res[i].Value, base[i].Value) {
				t.Fatalf("round %d: value %d = %q, want %q", round, i, res[i].Value, base[i].Value)
			}
		}
	}
}
