// Package proptest is the seeded generator library behind the
// differential and property-based test suites: random cache and DRAM
// configurations, locality-structured address streams, warp-level request
// streams and statistical profiles, all drawn from a deterministic
// per-case RNG so every failure replays from its seed.
//
// It lives outside the packages it generates inputs for; differential
// tests import it from external (_test) packages to avoid import cycles.
package proptest

import (
	"os"
	"strconv"
	"testing"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/rng"
	"github.com/uteda/gmap/internal/stats"
	"github.com/uteda/gmap/internal/trace"
)

// EnvBudget is the environment variable the nightly CI workflow sets to
// raise the generated-case budget of every property test.
const EnvBudget = "GMAP_PROPTEST_N"

// N returns the number of generated cases a property test should run:
// def under the plain `go test` budget, short under -short, and the
// EnvBudget override (nightly long runs) when set.
func N(t testing.TB, short, def int) int {
	if s := os.Getenv(EnvBudget); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("proptest: bad %s=%q: %v", EnvBudget, s, err)
		}
		return v
	}
	if testing.Short() {
		return short
	}
	return def
}

// G is one generation stream. Every generator consumes from R, so a case
// is reproduced exactly by reconstructing G from its seed.
type G struct {
	R *rng.Rand
}

// New returns a generator seeded with seed.
func New(seed uint64) *G { return &G{R: rng.New(seed)} }

// choice returns one element of vals uniformly.
func choice[T any](g *G, vals ...T) T { return vals[g.R.Intn(len(vals))] }

// CacheConfig draws a small random LRU cache geometry (line size 32-128,
// 1-8 ways, 1-32 sets) with a random write policy. Small capacities keep
// generated streams conflict-heavy so evictions and writebacks are
// exercised, not just hits.
func (g *G) CacheConfig() cache.Config {
	lineSize := choice(g, 32, 64, 128)
	return g.CacheConfigWithLine(lineSize)
}

// CacheConfigWithLine is CacheConfig with a caller-chosen line size.
func (g *G) CacheConfigWithLine(lineSize int) cache.Config {
	ways := choice(g, 1, 2, 4, 8)
	sets := choice(g, 1, 2, 4, 8, 16, 32)
	writes := cache.WriteBackAllocate
	if g.R.Bool(0.4) {
		writes = cache.WriteThroughNoAllocate
	}
	return cache.Config{
		SizeBytes: sets * ways * lineSize,
		Ways:      ways,
		LineSize:  lineSize,
		Policy:    cache.LRU,
		Writes:    writes,
		Seed:      g.R.Uint64(),
	}
}

// DRAMConfig draws a small random memory-system geometry with short
// timings so generated streams cross refresh windows and row conflicts
// within a few thousand cycles.
func (g *G) DRAMConfig() dram.Config {
	cfg := dram.Config{
		Channels:        choice(g, 1, 2, 4),
		RanksPerChannel: choice(g, 1, 2),
		BanksPerRank:    choice(g, 2, 4, 8),
		RowBytes:        choice(g, 512, 1024, 2048),
		TxBytes:         choice(g, 64, 128),
		BusBytes:        choice(g, 4, 8, 16),
		TRCD:            2 + g.R.Intn(15),
		TCAS:            2 + g.R.Intn(15),
		TRP:             2 + g.R.Intn(15),
		TRAS:            10 + g.R.Intn(30),
		Sched:           dram.FCFS,
	}
	if g.R.Bool(0.5) {
		cfg.Mapping = dram.ChRaBaRoCo
	}
	if g.R.Bool(0.7) {
		cfg.TREFI = 200 + g.R.Intn(2000)
		cfg.TRFC = 10 + g.R.Intn(100)
	}
	return cfg
}

// AddrStream generates n byte addresses with GPU-like structure: strided
// runs, revisits of earlier addresses (temporal locality) and occasional
// jumps to fresh regions. Addresses start far from zero so negative
// strides never underflow.
func (g *G) AddrStream(n int, lineSize uint64) []uint64 {
	if lineSize == 0 {
		lineSize = 128
	}
	strides := []int64{
		int64(lineSize), -int64(lineSize),
		4 * int64(lineSize), -2 * int64(lineSize),
		int64(lineSize) / 2, 8,
	}
	base := uint64(1)<<30 + uint64(g.R.Intn(1<<20))*lineSize
	addr := base
	out := make([]uint64, 0, n)
	out = append(out, addr)
	for len(out) < n {
		switch p := g.R.Float64(); {
		case p < 0.55:
			stride := choice(g, strides...)
			run := 1 + g.R.Intn(8)
			for i := 0; i < run && len(out) < n; i++ {
				addr += uint64(stride)
				out = append(out, addr)
			}
		case p < 0.80:
			addr = out[g.R.Intn(len(out))]
			out = append(out, addr)
		default:
			addr = base + uint64(g.R.Intn(1<<16))*lineSize + uint64(g.R.Intn(int(lineSize)))
			out = append(out, addr)
		}
	}
	return out
}

// Lines generates a stream of n element identifiers drawn from a pool of
// at most distinct values, mixing fresh elements, recent revisits and
// uniform revisits — the shapes that exercise every stack-distance path.
func (g *G) Lines(n, distinct int) []uint64 {
	if distinct < 1 {
		distinct = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(g.R.Intn(distinct)) * 64
	}
	return out
}

// MonotoneArrivals generates n nondecreasing arrival cycles with gaps up
// to maxGap (occasionally zero, so simultaneous arrivals are covered).
func (g *G) MonotoneArrivals(n int, maxGap uint64) []uint64 {
	out := make([]uint64, n)
	var t uint64
	for i := range out {
		if !g.R.Bool(0.2) {
			t += g.R.Uint64n(maxGap + 1)
		}
		out[i] = t
	}
	return out
}

// WarpAddrs generates the per-lane addresses of one warp instruction:
// up to 32 lanes mixing contiguous, strided, scattered and duplicate
// addresses, the full space of coalescing outcomes.
func (g *G) WarpAddrs() []uint64 {
	lanes := 1 + g.R.Intn(32)
	base := uint64(1)<<20 + uint64(g.R.Intn(1<<16))*4
	out := make([]uint64, lanes)
	switch g.R.Intn(4) {
	case 0: // fully coalesced: consecutive words
		for i := range out {
			out[i] = base + uint64(i)*4
		}
	case 1: // strided
		stride := uint64(choice(g, 8, 32, 128, 256, 1024))
		for i := range out {
			out[i] = base + uint64(i)*stride
		}
	case 2: // all lanes on one address (broadcast)
		for i := range out {
			out[i] = base
		}
	default: // scattered with duplicates
		for i := range out {
			out[i] = base + uint64(g.R.Intn(1<<14))
		}
	}
	return out
}

// Requests generates a single-warp request stream over structured
// addresses: loads, stores, and (with probability syncProb per slot) a
// threadblock barrier.
func (g *G) Requests(n int, syncProb float64) []trace.Request {
	addrs := g.AddrStream(n, 128)
	pcs := []uint64{0x400, 0x408, 0x410, 0x418}
	out := make([]trace.Request, n)
	for i := range out {
		kind := trace.Load
		if g.R.Bool(syncProb) {
			kind = trace.Sync
		} else if g.R.Bool(0.3) {
			kind = trace.Store
		}
		out[i] = trace.Request{
			PC:      choice(g, pcs...),
			Addr:    addrs[i],
			Kind:    kind,
			WarpID:  0,
			Threads: 1 + g.R.Intn(32),
		}
	}
	return out
}

// WarpSet generates a multi-warp, multi-block workload for whole-machine
// simulator properties: 1-maxWarps warps spread over 1-4 threadblocks,
// each with its own structured request stream (and per-slot barrier
// probability syncProb). Warps in the same block share a barrier scope,
// so generated streams exercise block residency, barrier reconvergence
// and cross-core scheduling, not just one warp's request order.
func (g *G) WarpSet(maxWarps int, syncProb float64) []trace.WarpTrace {
	if maxWarps < 1 {
		maxWarps = 1
	}
	nWarps := 1 + g.R.Intn(maxWarps)
	nBlocks := 1 + g.R.Intn(4)
	if nBlocks > nWarps {
		nBlocks = nWarps
	}
	warps := make([]trace.WarpTrace, nWarps)
	for w := range warps {
		reqs := g.Requests(10+g.R.Intn(60), syncProb)
		for i := range reqs {
			reqs[i].WarpID = w
		}
		warps[w] = trace.WarpTrace{
			WarpID:   w,
			Block:    w % nBlocks,
			Requests: reqs,
		}
	}
	// A barrier joins every warp of its block: each block's warps must
	// agree on their barrier count or the block deadlocks. Trim every
	// block to its minimum.
	syncCount := func(reqs []trace.Request) int {
		n := 0
		for _, r := range reqs {
			if r.Kind == trace.Sync {
				n++
			}
		}
		return n
	}
	minSyncs := make([]int, nBlocks)
	for i := range minSyncs {
		minSyncs[i] = -1
	}
	for w := range warps {
		n := syncCount(warps[w].Requests)
		b := warps[w].Block
		if minSyncs[b] < 0 || n < minSyncs[b] {
			minSyncs[b] = n
		}
	}
	for w := range warps {
		keep := minSyncs[warps[w].Block]
		out := warps[w].Requests[:0]
		seen := 0
		for _, r := range warps[w].Requests {
			if r.Kind == trace.Sync {
				if seen >= keep {
					continue // drop the excess barrier, keep the slot empty
				}
				seen++
			}
			out = append(out, r)
		}
		warps[w].Requests = out
	}
	return warps
}

// histogram builds a histogram over the given keys with random positive
// counts.
func (g *G) histogram(keys ...int64) *stats.Histogram {
	h := stats.NewHistogram()
	for _, k := range keys {
		h.AddN(k, uint64(1+g.R.Intn(50)))
	}
	return h
}

// Profile generates a random, structurally valid statistical profile:
// 1-4 static instructions with stride distributions, windows and optional
// run-length structure, and 1-3 π profiles with reuse histograms. Every
// returned profile passes Validate; the synthesizer must accept it (or
// reject it with an error) without panicking.
func (g *G) Profile() *profiler.Profile {
	const lineSize = 128
	nInsts := 1 + g.R.Intn(4)
	insts := make([]profiler.StaticInst, nInsts)
	var totalReqs uint64
	strideKeys := []int64{0, lineSize, -lineSize, 2 * lineSize, 4096}
	for i := range insts {
		kind := trace.Load
		if g.R.Bool(0.3) {
			kind = trace.Store
		}
		count := uint64(20 + g.R.Intn(400))
		totalReqs += count
		inst := profiler.StaticInst{
			PC:            0x400 + uint64(i)*8,
			Kind:          kind,
			Base:          uint64(g.R.Intn(1<<20)) * lineSize,
			InterStride:   g.histogram(strideKeys[:1+g.R.Intn(len(strideKeys))]...),
			IntraStride:   g.histogram(strideKeys[:1+g.R.Intn(len(strideKeys))]...),
			Count:         count,
			OffHi:         int64(g.R.Intn(1 << 16)),
			OffLo:         -int64(g.R.Intn(1 << 12)),
			AnchorHi:      int64(g.R.Intn(1 << 18)),
			AnchorLo:      -int64(g.R.Intn(1 << 12)),
			Deterministic: g.R.Bool(0.5),
		}
		if g.R.Bool(0.4) {
			inst.Runs = map[string]*stats.Histogram{
				strconv.FormatInt(choice(g, strideKeys...), 10): g.histogram(1, 2, 4, 8),
			}
		}
		insts[i] = inst
	}
	nProfiles := 1 + g.R.Intn(3)
	profiles := make([]profiler.PiProfile, nProfiles)
	for i := range profiles {
		seqLen := 1 + g.R.Intn(6)
		seq := make([]int, seqLen)
		for j := range seq {
			seq[j] = g.R.Intn(nInsts)
		}
		reuse := g.histogram(-1, 0, int64(1+g.R.Intn(8)), int64(16+g.R.Intn(256)))
		profiles[i] = profiler.PiProfile{
			Seq:   seq,
			Count: uint64(1 + g.R.Intn(50)),
			Reuse: reuse,
		}
	}
	blockDim := choice(g, 32, 64, 128)
	gridDim := 1 + g.R.Intn(4)
	warpsPerBlock := (blockDim + 31) / 32
	return &profiler.Profile{
		Name:          "proptest",
		GridDim:       gridDim,
		BlockDim:      blockDim,
		LineSize:      lineSize,
		Warps:         gridDim * warpsPerBlock,
		TotalRequests: totalReqs,
		Insts:         insts,
		Profiles:      profiles,
		SchedPself:    float64(g.R.Intn(10)) / 10,
	}
}
