// Package store is the clone-and-simulate service's content-addressed
// persistence layer. It holds three kinds of immutable artifacts:
//
//   - profiles/<sha256>.json — canonicalized statistical profiles. A
//     profile's identity IS the SHA-256 of its canonical JSON encoding,
//     so byte-different submissions of the same profile deduplicate to
//     one stored object and one hash.
//   - results/<profile-hash>.<config-hash>.json — cached evaluation
//     results keyed by what was evaluated (the profile, or the builtin
//     benchmark selection) × how it was evaluated (the canonical job
//     configuration). Repeated evaluations are O(lookup).
//   - jobs/<job-id>.json — the submitted-job journal: a spec survives
//     here from admission until its result is committed, which is what
//     lets a restarted server re-enqueue in-flight work. Each journaled
//     job also owns a runner checkpoint at checkpoints/<job-id>.ckpt
//     carrying its partially-completed sweep points across restarts.
//
// Every write is crash-consistent: content goes to a temp file, is
// fsynced, and is renamed into place — a crash at any byte leaves
// previously-committed entries untouched and never exposes a partial
// object under a committed name. All file I/O goes through the
// internal/fault FS seam, so the crash matrix can script torn writes at
// chosen byte offsets (store_test.go does exactly that).
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/uteda/gmap/internal/fault"
	"github.com/uteda/gmap/internal/obs"
	"github.com/uteda/gmap/internal/profiler"
)

// Store is a content-addressed profile/result store rooted at one
// directory. Safe for concurrent use.
type Store struct {
	root string
	fs   fault.FS
	obs  *obs.Registry

	// mu serializes writers. Writes are temp+rename so readers never see
	// partial content; the lock only prevents two writers from fighting
	// over the same temp path.
	mu sync.Mutex
}

// Open creates (if needed) the store layout under root and returns the
// store. fsys nil selects the real filesystem; reg nil disables
// instrumentation. Directory creation happens here, once, outside the
// fault seam — the seam covers file content, which is where torn writes
// can corrupt state.
func Open(root string, fsys fault.FS, reg *obs.Registry) (*Store, error) {
	if fsys == nil {
		fsys = fault.OS
	}
	for _, dir := range []string{root, filepath.Join(root, "profiles"), filepath.Join(root, "results"), filepath.Join(root, "jobs"), filepath.Join(root, "checkpoints")} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", dir, err)
		}
	}
	return &Store{root: root, fs: fsys, obs: reg}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// HashBytes returns the store's content address for a byte string: the
// full SHA-256 hex digest.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CanonicalProfile returns the canonical encoding of a profile: the
// validated profile re-marshaled as compact JSON with struct fields in
// declaration order and map keys sorted (encoding/json guarantees both).
// Canonicalization is idempotent — decoding the canonical bytes and
// re-canonicalizing reproduces them exactly — so hash(canon(p)) is a
// stable identity however the submission was formatted.
func CanonicalProfile(p *profiler.Profile) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(p)
}

// validHash reports whether h looks like one of our content addresses;
// it is the path-traversal guard for hashes arriving from the API.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for _, c := range h {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validID reports whether a job id is safe to embed in a filename.
func validID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) profilePath(hash string) string {
	return filepath.Join(s.root, "profiles", hash+".json")
}

func (s *Store) resultPath(profileHash, configHash string) string {
	return filepath.Join(s.root, "results", profileHash+"."+configHash+".json")
}

func (s *Store) jobPath(id string) string {
	return filepath.Join(s.root, "jobs", id+".json")
}

// CheckpointPath returns the runner checkpoint file owned by a journaled
// job — the durability seam that lets a restarted server resume the
// job's sweep from its last completed point.
func (s *Store) CheckpointPath(id string) string {
	return filepath.Join(s.root, "checkpoints", id+".ckpt")
}

// exists reports whether path currently holds a committed object.
func (s *Store) exists(path string) bool {
	f, err := s.fs.Open(path)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// writeAtomic commits data under path via temp+fsync+rename. A crash at
// any byte of the temp write leaves path absent (or holding its previous
// content); a stale temp from an earlier crash is simply overwritten.
func (s *Store) writeAtomic(path string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := path + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	writeErr := func() error {
		if _, err := f.Write(data); err != nil {
			return err
		}
		return f.Sync()
	}()
	if writeErr != nil {
		_ = f.Close()
		_ = s.fs.Remove(tmp) // best-effort; the write error wins
		return fmt.Errorf("store: writing %s: %w", tmp, writeErr)
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: closing %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: committing %s: %w", path, err)
	}
	return nil
}

func (s *Store) readAll(path string) ([]byte, error) {
	f, err := s.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// PutProfile canonicalizes and stores a profile, returning its content
// hash. A profile whose canonical form is already stored is deduplicated:
// nothing is rewritten and existed reports true.
func (s *Store) PutProfile(p *profiler.Profile) (hash string, existed bool, err error) {
	canon, err := CanonicalProfile(p)
	if err != nil {
		return "", false, err
	}
	hash = HashBytes(canon)
	if s.exists(s.profilePath(hash)) {
		s.obs.Counter("serve.store.profile_dedup").Inc()
		return hash, true, nil
	}
	if err := s.writeAtomic(s.profilePath(hash), canon); err != nil {
		return "", false, err
	}
	s.obs.Counter("serve.store.profiles_stored").Inc()
	return hash, false, nil
}

// ErrNotFound reports a lookup of an object the store has not committed.
var ErrNotFound = errors.New("store: object not found")

// GetProfile loads and revalidates a stored profile by content hash.
func (s *Store) GetProfile(hash string) (*profiler.Profile, error) {
	if !validHash(hash) {
		return nil, fmt.Errorf("store: malformed profile hash %q: %w", hash, ErrNotFound)
	}
	data, err := s.readAll(s.profilePath(hash))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("store: profile %s: %w", hash, ErrNotFound)
		}
		return nil, fmt.Errorf("store: reading profile %s: %w", hash, err)
	}
	p, err := profiler.ReadJSON(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("store: profile %s: %w", hash, err)
	}
	return p, nil
}

// HasProfile reports whether the profile hash is committed.
func (s *Store) HasProfile(hash string) bool {
	return validHash(hash) && s.exists(s.profilePath(hash))
}

// PutResult caches a finished evaluation's result bytes under
// profile-hash × config-hash. Results are immutable: a re-computation of
// a committed key is a no-op (the deterministic pipeline guarantees the
// bytes match).
func (s *Store) PutResult(profileHash, configHash string, data []byte) error {
	if !validHash(profileHash) || !validHash(configHash) {
		return fmt.Errorf("store: malformed result key %q × %q", profileHash, configHash)
	}
	path := s.resultPath(profileHash, configHash)
	if s.exists(path) {
		return nil
	}
	if err := s.writeAtomic(path, data); err != nil {
		return err
	}
	s.obs.Counter("serve.store.results_stored").Inc()
	return nil
}

// GetResult returns the cached result for profile-hash × config-hash,
// with ok reporting whether the cache held it. The hit/miss counters
// ("serve.store.result_hits"/"serve.store.result_misses") are how the
// end-to-end tests verify a repeated submission was served from cache.
func (s *Store) GetResult(profileHash, configHash string) (data []byte, ok bool, err error) {
	if !validHash(profileHash) || !validHash(configHash) {
		return nil, false, nil
	}
	data, rerr := s.readAll(s.resultPath(profileHash, configHash))
	if rerr != nil {
		if errors.Is(rerr, fs.ErrNotExist) {
			s.obs.Counter("serve.store.result_misses").Inc()
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: reading result %s.%s: %w", profileHash, configHash, rerr)
	}
	s.obs.Counter("serve.store.result_hits").Inc()
	return data, true, nil
}

// PutJobSpec journals a submitted job's spec envelope until its result
// commits. The journal is what a restarted server replays.
func (s *Store) PutJobSpec(id string, envelope any) error {
	if !validID(id) {
		return fmt.Errorf("store: malformed job id %q", id)
	}
	data, err := json.Marshal(envelope)
	if err != nil {
		return fmt.Errorf("store: encoding job %s: %w", id, err)
	}
	return s.writeAtomic(s.jobPath(id), data)
}

// DeleteJobSpec retires a journaled job (result committed, or the job
// was cancelled/permanently failed) along with its checkpoint.
func (s *Store) DeleteJobSpec(id string) error {
	if !validID(id) {
		return fmt.Errorf("store: malformed job id %q", id)
	}
	if err := s.fs.Remove(s.jobPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: removing job %s: %w", id, err)
	}
	// The checkpoint is recovery state for the journaled job; once the
	// job is retired it is dead weight. Best-effort: a leftover
	// checkpoint is harmless (keys are job-scoped).
	_ = s.fs.Remove(s.CheckpointPath(id))
	return nil
}

// ListJobSpecs returns every journaled job id with its raw envelope —
// the restart-recovery scan. Temp files from interrupted journal writes
// are skipped (and are overwritten by the next write).
func (s *Store) ListJobSpecs() (map[string]json.RawMessage, error) {
	dir := filepath.Join(s.root, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	out := make(map[string]json.RawMessage)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if !validID(id) {
			continue
		}
		data, err := s.readAll(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("store: reading job %s: %w", id, err)
		}
		if !json.Valid(data) {
			// A torn journal entry can only be a crash between Create and
			// Rename that somehow landed under the committed name — which
			// the atomic protocol rules out — or operator damage. Skip it
			// rather than refuse to start.
			s.obs.Counter("serve.store.bad_job_specs").Inc()
			continue
		}
		out[id] = json.RawMessage(data)
	}
	return out, nil
}
