package trace

import (
	"strings"
	"testing"
)

func summaryFixture() []WarpTrace {
	return []WarpTrace{
		{WarpID: 0, Block: 0, Requests: []Request{
			{PC: 0x10, Addr: 0x1000, Kind: Load},
			{PC: 0x10, Addr: 0x1080, Kind: Load},
			{PC: 0x10, Addr: 0x1000, Kind: Load}, // reuse
			{PC: 0xB0, Kind: Sync},
			{PC: 0x20, Addr: 0x2000, Kind: Store},
		}},
		{WarpID: 1, Block: 0, Requests: []Request{
			{PC: 0x10, Addr: 0x1080, Kind: Load}, // shared line, but cold for this warp
			{PC: 0xB0, Kind: Sync},
			{PC: 0x20, Addr: 0x2080, Kind: Store},
		}},
	}
}

func TestSummarizeCounts(t *testing.T) {
	s := Summarize(summaryFixture(), 128)
	if s.Warps != 2 {
		t.Errorf("Warps = %d", s.Warps)
	}
	if s.Requests != 6 || s.Syncs != 2 {
		t.Errorf("Requests = %d, Syncs = %d", s.Requests, s.Syncs)
	}
	if s.Loads != 4 || s.Stores != 2 {
		t.Errorf("Loads/Stores = %d/%d", s.Loads, s.Stores)
	}
	// Lines: 0x1000, 0x1080, 0x2000, 0x2080 -> 4 distinct.
	if s.DistinctLines != 4 {
		t.Errorf("DistinctLines = %d", s.DistinctLines)
	}
	// Warp 0 touches 3 lines, warp 1 touches 2.
	if s.AvgWarpLines != 2.5 {
		t.Errorf("AvgWarpLines = %v", s.AvgWarpLines)
	}
	// One same-warp revisit out of 6 memory requests.
	if got := s.ReuseFraction; got < 0.166 || got > 0.167 {
		t.Errorf("ReuseFraction = %v", got)
	}
}

func TestSummaryDominantPCs(t *testing.T) {
	s := Summarize(summaryFixture(), 128)
	dom := s.DominantPCs()
	if len(dom) != 2 || dom[0] != 0x10 || dom[1] != 0x20 {
		t.Errorf("DominantPCs = %#v", dom)
	}
	if s.PCs[0x10] != 4 || s.PCs[0x20] != 2 {
		t.Errorf("PC counts = %v", s.PCs)
	}
}

func TestSummaryString(t *testing.T) {
	out := Summarize(summaryFixture(), 0).String()
	for _, want := range []string{"2 warps", "6 requests", "4 LD", "2 ST", "2 BAR"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 0)
	if s.Warps != 0 || s.Requests != 0 || s.ReuseFraction != 0 || s.AvgWarpLines != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}
