// Package reuse computes LRU stack distances (reuse distances) over memory
// reference streams. The reuse distance of an access is the number of
// distinct data elements (cachelines, for G-MAP) referenced between it and
// the previous access to the same element; cold accesses have infinite
// distance, represented here as Cold (-1). Stack distance is the classic
// temporal-locality model of Mattson et al. and is the P_R component of the
// G-MAP profile.
//
// The implementation uses the standard hash-map + Fenwick-tree formulation:
// each access occupies a time slot; a Fenwick tree marks the slots holding
// the most recent access of each distinct element, so a distance query is a
// prefix-sum over (lastAccess, now), giving O(log n) per access.
package reuse

import "github.com/uteda/gmap/internal/stats"

// Cold is the distance reported for the first access to an element.
const Cold = -1

// fenwick is a 1-indexed binary indexed tree over int counts.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) size() int { return len(f.tree) - 1 }

// grow doubles capacity until at least n slots are available, preserving
// existing counts.
func (f *fenwick) grow(n int) {
	old := f.size()
	if n <= old {
		return
	}
	cap2 := old
	if cap2 == 0 {
		cap2 = 1
	}
	for cap2 < n {
		cap2 *= 2
	}
	// Rebuild from per-slot values: extract, then re-add.
	vals := make([]int, old+1)
	for i := old; i >= 1; i-- {
		vals[i] = f.rangeSum(i, i)
	}
	f.tree = make([]int, cap2+1)
	for i := 1; i <= old; i++ {
		if vals[i] != 0 {
			f.add(i, vals[i])
		}
	}
}

func (f *fenwick) add(i, delta int) {
	for ; i <= f.size(); i += i & (-i) {
		f.tree[i] += delta
	}
}

func (f *fenwick) prefixSum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

func (f *fenwick) rangeSum(lo, hi int) int {
	if hi < lo {
		return 0
	}
	return f.prefixSum(hi) - f.prefixSum(lo-1)
}

// Tracker computes stack distances incrementally over a stream of element
// identifiers. The zero value is not usable; call NewTracker.
type Tracker struct {
	last map[uint64]int // element -> time slot of most recent access
	bit  *fenwick
	now  int // next time slot (1-indexed)
}

// NewTracker returns an empty tracker. hint sizes internal structures for
// an expected stream length and may be 0.
func NewTracker(hint int) *Tracker {
	if hint < 16 {
		hint = 16
	}
	return &Tracker{
		last: make(map[uint64]int),
		bit:  newFenwick(hint),
		now:  1,
	}
}

// Access records a reference to element e and returns its stack distance:
// the number of distinct elements referenced since the previous reference
// to e, or Cold if e has not been seen before.
func (t *Tracker) Access(e uint64) int64 {
	if t.now > t.bit.size() {
		t.bit.grow(t.now)
	}
	prev, seen := t.last[e]
	var dist int64
	if !seen {
		dist = Cold
	} else {
		dist = int64(t.bit.rangeSum(prev+1, t.now-1))
		t.bit.add(prev, -1)
	}
	t.bit.add(t.now, 1)
	t.last[e] = t.now
	t.now++
	return dist
}

// Distinct returns the number of distinct elements seen so far.
func (t *Tracker) Distinct() int { return len(t.last) }

// Accesses returns the number of accesses recorded so far.
func (t *Tracker) Accesses() int { return t.now - 1 }

// Distances computes the stack distance of every reference in stream in
// one pass and returns them in order. It is a convenience wrapper over a
// fresh Tracker.
func Distances(stream []uint64) []int64 {
	t := NewTracker(len(stream))
	out := make([]int64, len(stream))
	for i, e := range stream {
		out[i] = t.Access(e)
	}
	return out
}

// Histogram folds the stack distances of stream into a stats.Histogram
// (cold accesses recorded under key Cold). This is the P_R capture step.
func Histogram(stream []uint64) *stats.Histogram {
	h := stats.NewHistogram()
	t := NewTracker(len(stream))
	for _, e := range stream {
		h.Add(t.Access(e))
	}
	return h
}
