package cache

import "fmt"

// Banked is an address-interleaved multi-bank cache, used for the shared
// L2 (Table 2: 1MB in 8 banks). Consecutive lines map to consecutive
// banks; each bank is an independent set-associative slice holding an
// equal share of the capacity.
type Banked struct {
	banks    []*Cache
	bankMask uint64
	bankBits uint
	lineBits uint
}

// sliceAddr strips the bank-selection bits out of the line number so the
// slice indexes its full set array: without this, every address routed to
// a bank shares the low line bits and only 1/numBanks of the slice's sets
// are ever used.
func (b *Banked) sliceAddr(addr uint64) uint64 {
	line := addr >> b.lineBits
	return (line>>b.bankBits)<<b.lineBits | (addr & ((1 << b.lineBits) - 1))
}

// unsliceAddr maps a slice-space line address (e.g. a victim reported by
// the bank) back to the real address space.
func (b *Banked) unsliceAddr(addr uint64, bank int) uint64 {
	line := addr >> b.lineBits
	return (line<<b.bankBits | uint64(bank)) << b.lineBits
}

// NewBanked splits cfg.SizeBytes evenly over numBanks slices. numBanks
// must be a power of two.
func NewBanked(cfg Config, numBanks int) (*Banked, error) {
	if numBanks <= 0 || numBanks&(numBanks-1) != 0 {
		return nil, fmt.Errorf("cache: bank count %d not a positive power of two", numBanks)
	}
	if cfg.SizeBytes%numBanks != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by %d banks", cfg.SizeBytes, numBanks)
	}
	sliceCfg := cfg
	sliceCfg.SizeBytes = cfg.SizeBytes / numBanks
	b := &Banked{
		banks:    make([]*Cache, numBanks),
		bankMask: uint64(numBanks - 1),
	}
	for i := range b.banks {
		sliceCfg.Seed = cfg.Seed + uint64(i)
		c, err := New(sliceCfg)
		if err != nil {
			return nil, fmt.Errorf("cache: bank %d: %w", i, err)
		}
		b.banks[i] = c
	}
	b.lineBits = b.banks[0].lineBits
	for n := numBanks; n > 1; n >>= 1 {
		b.bankBits++
	}
	return b, nil
}

// BankOf returns the bank index servicing addr.
func (b *Banked) BankOf(addr uint64) int {
	return int((addr >> b.lineBits) & b.bankMask)
}

// Access routes a demand access to its bank.
func (b *Banked) Access(addr uint64, write bool) Result {
	bank := b.BankOf(addr)
	res := b.banks[bank].Access(b.sliceAddr(addr), write)
	if res.Evicted {
		res.EvictedAddr = b.unsliceAddr(res.EvictedAddr, bank)
	}
	return res
}

// Probe routes a presence check to its bank.
func (b *Banked) Probe(addr uint64) bool {
	return b.banks[b.BankOf(addr)].Probe(b.sliceAddr(addr))
}

// Fill routes a prefetch fill to its bank.
func (b *Banked) Fill(addr uint64) Result {
	bank := b.BankOf(addr)
	res := b.banks[bank].Fill(b.sliceAddr(addr))
	if res.Evicted {
		res.EvictedAddr = b.unsliceAddr(res.EvictedAddr, bank)
	}
	return res
}

// NumBanks returns the bank count.
func (b *Banked) NumBanks() int { return len(b.banks) }

// LineAddr aligns addr to the line size.
func (b *Banked) LineAddr(addr uint64) uint64 { return b.banks[0].LineAddr(addr) }

// Stats returns the aggregate statistics over all banks.
func (b *Banked) Stats() Stats {
	var s Stats
	for _, bank := range b.banks {
		s.Add(bank.Stats)
	}
	return s
}

// Reset clears every bank.
func (b *Banked) Reset() {
	for _, bank := range b.banks {
		bank.Reset()
	}
}
