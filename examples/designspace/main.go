// Design-space exploration with proxies (the Figure 6a scenario).
//
// An architect who cannot access the original workload sweeps nine L1
// configurations using only the G-MAP clone, and picks the smallest cache
// within 2% of the best miss rate. The example also runs the original
// (which the architect would not have) to show that the proxy-driven
// decision matches the ground-truth decision.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"github.com/uteda/gmap"
	"github.com/uteda/gmap/internal/cache"
)

func main() {
	w, err := gmap.Prepare("kmeans", 1, gmap.DefaultProfileConfig(),
		gmap.GenerateOptions{Seed: 1, ScaleFactor: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sweeping L1 configurations with the kmeans clone (original shown for validation):")
	fmt.Printf("%-18s %12s %12s %10s\n", "L1 config", "proxy miss", "orig miss", "error(pp)")

	type point struct {
		label      string
		size       int
		proxy, ref float64
	}
	var points []point
	for _, size := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		for _, ways := range []int{2, 8} {
			cfg := gmap.DefaultSimConfig()
			cfg.L1 = cache.Config{SizeBytes: size, Ways: ways, LineSize: 128}
			clone, err := w.SimulateProxy(cfg)
			if err != nil {
				log.Fatal(err)
			}
			orig, err := w.SimulateOriginal(cfg)
			if err != nil {
				log.Fatal(err)
			}
			p := point{
				label: cfg.L1.String(),
				size:  size,
				proxy: clone.L1MissRate(),
				ref:   orig.L1MissRate(),
			}
			points = append(points, p)
			fmt.Printf("%-18s %12.4f %12.4f %10.2f\n",
				p.label, p.proxy, p.ref, (p.proxy-p.ref)*100)
		}
	}

	pick := func(miss func(point) float64) point {
		best := points[0]
		for _, p := range points {
			if miss(p) < miss(best) {
				best = p
			}
		}
		// Smallest cache within 2pp of the best.
		choice := best
		for _, p := range points {
			if miss(p) <= miss(best)+0.02 && p.size < choice.size {
				choice = p
			}
		}
		return choice
	}
	byProxy := pick(func(p point) float64 { return p.proxy })
	byOrig := pick(func(p point) float64 { return p.ref })
	fmt.Printf("\nproxy-driven choice:  %s\n", byProxy.label)
	fmt.Printf("ground-truth choice:  %s\n", byOrig.label)
	if byProxy.label == byOrig.label {
		fmt.Println("=> the clone leads to the same design decision as the original")
	} else {
		fmt.Println("=> decisions differ; inspect the per-config errors above")
	}
}
