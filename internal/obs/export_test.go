package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current results")

// goldenRegistry builds a registry with one of everything, with fixed
// contents so the exports are byte-stable.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("memsim.requests").Add(1234)
	r.Counter("l2.bank0.accesses").Add(99)
	g := r.Gauge("runner.workers")
	g.Set(8)
	g.Set(4)
	h := r.Histogram("dram.latency_cycles")
	for _, v := range []uint64{0, 1, 5, 5, 120, 4096} {
		h.Observe(v)
	}
	s := r.Sampler("memsim.l1_miss_rate", 16)
	for c := uint64(0); c < 10; c++ {
		s.Sample(c*10, float64(c)/10)
	}
	s2 := r.Sampler("dram.queue_depth", 16)
	s2.Sample(0, 1)
	s2.Sample(7, 3)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (refresh with `go test ./internal/obs -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n got:\n%s\nwant:\n%s\nRefresh intentionally with `go test ./internal/obs -update`.", name, got, want)
	}
}

// TestGoldenSnapshotJSON pins the -obs-snapshot export format: indented
// JSON with sorted keys, omitting empty sections.
func TestGoldenSnapshotJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json", buf.Bytes())
}

// TestGoldenSeriesJSONL pins the -obs-out export format: one point per
// line, series in name order, points in cycle order.
func TestGoldenSeriesJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteSeriesJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "series.jsonl", buf.Bytes())
}

// TestGoldenEmptyRegistry pins the degenerate exports: an enabled but
// empty registry must emit an empty JSON object and no JSONL lines.
func TestGoldenEmptyRegistry(t *testing.T) {
	r := New()
	var snap, series bytes.Buffer
	if err := r.WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.String(); got != "{}\n" {
		t.Errorf("empty snapshot = %q, want {}\\n", got)
	}
	if err := r.WriteSeriesJSONL(&series); err != nil {
		t.Fatal(err)
	}
	if series.Len() != 0 {
		t.Errorf("empty registry emitted JSONL: %q", series.String())
	}
}
