// Differential tests: the full production simulator against the
// refmodel hierarchy, in the single-warp regime where the simulator's
// memory-request order is exactly program order and every cache and
// DRAM-traffic outcome is deterministic.
package memsim_test

import (
	"testing"

	"github.com/uteda/gmap/internal/cache"
	"github.com/uteda/gmap/internal/dram"
	"github.com/uteda/gmap/internal/memsim"
	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/refmodel"
	"github.com/uteda/gmap/internal/trace"
)

// TestSingleWarpMatchesReferenceHierarchy replays one warp's request
// stream through the production simulator (one core, unbounded MSHRs, no
// prefetchers) and through the reference L1/banked-L2 hierarchy,
// requiring identical L1 and L2 statistics, demand-request counts and
// DRAM read/write traffic.
func TestSingleWarpMatchesReferenceHierarchy(t *testing.T) {
	n := proptest.N(t, 150, 1000)
	for i := 0; i < n; i++ {
		seed := uint64(0x515151 + i)
		g := proptest.New(seed)
		l1cfg := g.CacheConfig()
		l2cfg := g.CacheConfig()
		// Bank count must divide the L2's set count.
		banks := []int{1, 2, 4}[g.R.Intn(3)]
		for l2cfg.SizeBytes/(l2cfg.Ways*l2cfg.LineSize) < banks {
			banks /= 2
		}
		reqs := g.Requests(30+g.R.Intn(150), 0.05)
		warps := []trace.WarpTrace{{WarpID: 0, Block: 0, Requests: reqs}}

		ref, err := refmodel.NewHierarchy(l1cfg, l2cfg, banks)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		demand := uint64(0)
		for _, r := range reqs {
			if r.Kind == trace.Sync {
				continue
			}
			demand++
			ref.Access(r.Addr, r.Kind == trace.Store)
		}

		// The reference comparison must hold for both execution engines:
		// Workers=0 is the serial scheduler loop, Workers=2 the SM-worker
		// engine (one worker here, but the full coordinator/drain path).
		for _, workers := range []int{0, 2} {
			cfg := memsim.Config{
				NumCores:     1,
				L1:           l1cfg,
				L2:           l2cfg,
				L2Banks:      banks,
				MSHRsPerCore: 0, // unbounded: the warp can never stall on MSHRs
				DRAM:         dram.DefaultGDDR3(),
				Scheduler:    memsim.LRR,
				Workers:      workers,
			}
			sim, err := memsim.New(warps, cfg)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			m, err := sim.Run()
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}

			if m.Requests != demand {
				t.Fatalf("seed %d workers %d: simulator issued %d requests, stream has %d demand requests",
					seed, workers, m.Requests, demand)
			}
			if m.MSHRStalls != 0 {
				t.Fatalf("seed %d workers %d: %d MSHR stalls with an unbounded MSHR file", seed, workers, m.MSHRStalls)
			}
			if m.L1 != ref.L1.Stats {
				t.Fatalf("seed %d workers %d: L1 stats diverged:\nproduction %+v\nreference  %+v", seed, workers, m.L1, ref.L1.Stats)
			}
			if l2 := ref.L2Stats(); m.L2 != l2 {
				t.Fatalf("seed %d workers %d: L2 stats diverged:\nproduction %+v\nreference  %+v", seed, workers, m.L2, l2)
			}
			if m.DRAM.Reads != ref.DRAMReads || m.DRAM.Writes != ref.DRAMWrites {
				t.Fatalf("seed %d workers %d: DRAM traffic diverged: production %d reads / %d writes, reference %d / %d",
					seed, workers, m.DRAM.Reads, m.DRAM.Writes, ref.DRAMReads, ref.DRAMWrites)
			}
		}
	}
}

// TestMissRateMonotoneInL1Size: at the system level, growing the L1 by
// whole ways (fixed sets and line size) must not increase the L1 miss
// count for a read-only single-warp stream — the inclusion property
// surfaced through the full simulator.
func TestMissRateMonotoneInL1Size(t *testing.T) {
	n := proptest.N(t, 50, 300)
	for i := 0; i < n; i++ {
		seed := uint64(0x919191 + i)
		g := proptest.New(seed)
		addrs := g.AddrStream(200, 128)
		reqs := make([]trace.Request, len(addrs))
		for j, a := range addrs {
			reqs[j] = trace.Request{PC: 0x400, Addr: a, Kind: trace.Load, Threads: 1}
		}
		prev := ^uint64(0)
		for _, ways := range []int{1, 2, 4, 8} {
			cfg := memsim.DefaultConfig()
			cfg.NumCores = 1
			cfg.MSHRsPerCore = 0
			cfg.L1 = cache.Config{SizeBytes: 8 * ways * 128, Ways: ways, LineSize: 128}
			sim, err := memsim.New([]trace.WarpTrace{{Requests: reqs}}, cfg)
			if err != nil {
				t.Fatalf("seed %d ways %d: %v", seed, ways, err)
			}
			m, err := sim.Run()
			if err != nil {
				t.Fatalf("seed %d ways %d: %v", seed, ways, err)
			}
			if m.L1.Misses > prev {
				t.Fatalf("seed %d: L1 misses grew from %d to %d at %d ways", seed, prev, m.L1.Misses, ways)
			}
			prev = m.L1.Misses
		}
	}
}
