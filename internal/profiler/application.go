package profiler

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/trace"
)

// AppProfile is the statistical profile of a whole application: one
// kernel profile per distinct static kernel, plus the launch sequence
// referencing them. Re-launches of the same kernel share a profile
// captured from all of their executions, which keeps the profile size
// independent of iteration count — the paper's "profiling is a one-time
// cost ... independent of the execution length".
type AppProfile struct {
	Name string `json:"name"`
	// Kernels holds one profile per distinct kernel name.
	Kernels []*Profile `json:"kernels"`
	// Launches is the execution order as indices into Kernels.
	Launches []int `json:"launches"`
}

// Validate checks structural consistency.
func (a *AppProfile) Validate() error {
	if len(a.Kernels) == 0 || len(a.Launches) == 0 {
		return fmt.Errorf("profiler: app profile %q empty", a.Name)
	}
	for _, li := range a.Launches {
		if li < 0 || li >= len(a.Kernels) {
			return fmt.Errorf("profiler: app profile %q: launch references kernel %d of %d",
				a.Name, li, len(a.Kernels))
		}
	}
	for i, k := range a.Kernels {
		if k == nil {
			// JSON "null" in the kernels array decodes to a nil pointer.
			return fmt.Errorf("profiler: app profile %q kernel %d is null", a.Name, i)
		}
		if err := k.Validate(); err != nil {
			return fmt.Errorf("profiler: app profile %q kernel %d: %w", a.Name, i, err)
		}
	}
	return nil
}

// ProfileApplication profiles every launch of an application. Launches of
// the same kernel (by name) are merged into one profile by profiling
// their warp streams together, so iterative applications stay compact.
func ProfileApplication(app *trace.Application, cfg Config) (*AppProfile, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	out := &AppProfile{Name: app.Name}
	kernelIdx := make(map[string]int)
	// Group launches by kernel name, preserving the first launch's
	// geometry (re-launches share the static kernel and therefore its
	// geometry in our model).
	type group struct {
		traces []*trace.KernelTrace
	}
	groups := make(map[string]*group)
	var order []string
	for _, k := range app.Launches {
		g, ok := groups[k.Name]
		if !ok {
			g = &group{}
			groups[k.Name] = g
			order = append(order, k.Name)
		}
		g.traces = append(g.traces, k)
	}
	for _, name := range order {
		g := groups[name]
		first := g.traces[0]
		for li, tr := range g.traces {
			if tr.GridDim != first.GridDim || tr.BlockDim != first.BlockDim {
				return nil, fmt.Errorf("profiler: app %q kernel %q launch %d changes geometry", app.Name, name, li)
			}
		}
		// Concatenate the launches' coalesced warp streams: warp w of
		// launch i is profiled as its own warp, so the per-warp
		// statistics of every launch merge naturally.
		coalescer := gpu.NewCoalescer(cfg.LineSize).AttachObs(cfg.Obs)
		var allWarps []trace.WarpTrace
		for _, tr := range g.traces {
			warps := coalescer.BuildWarpTraces(tr)
			base := len(allWarps)
			for wi := range warps {
				warps[wi].WarpID = base + wi
				allWarps = append(allWarps, warps[wi])
			}
		}
		p, err := ProfileWarps(name, first.GridDim, first.BlockDim, allWarps, cfg)
		if err != nil {
			return nil, err
		}
		// The merged warp population spans every launch; generation must
		// regenerate ONE launch's worth of warps.
		p.Warps = len(allWarps) / len(g.traces)
		kernelIdx[name] = len(out.Kernels)
		out.Kernels = append(out.Kernels, p)
	}
	for _, k := range app.Launches {
		out.Launches = append(out.Launches, kernelIdx[k.Name])
	}
	return out, out.Validate()
}

// WriteJSON serializes the application profile.
func (a *AppProfile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(a)
}

// ReadAppJSON deserializes and validates an application profile.
func ReadAppJSON(r io.Reader) (*AppProfile, error) {
	var a AppProfile
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, decodeJSONError("app profile", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}
