// Differential tests: the production coalescer against the refmodel's
// naive sequential coalescer, plus conservation invariants.
package gpu_test

import (
	"reflect"
	"testing"

	"github.com/uteda/gmap/internal/gpu"
	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/refmodel"
	"github.com/uteda/gmap/internal/trace"
)

// TestCoalesceMatchesReference replays generated warp address vectors —
// coalesced, strided, broadcast and scattered — through both coalescers
// and requires identical request sequences (line order, thread counts,
// PC/kind/warp propagation).
func TestCoalesceMatchesReference(t *testing.T) {
	n := proptest.N(t, 300, 1500)
	lineSizes := []uint64{32, 64, 128, 256}
	for i := 0; i < n; i++ {
		seed := uint64(0xc0a1 + i)
		g := proptest.New(seed)
		lineSize := lineSizes[g.R.Intn(len(lineSizes))]
		addrs := g.WarpAddrs()
		kind := trace.Load
		if g.R.Bool(0.3) {
			kind = trace.Store
		}
		warpID := g.R.Intn(64)
		pc := 0x400 + uint64(g.R.Intn(16))*8
		c := gpu.NewCoalescer(lineSize)
		got := c.Coalesce(warpID, pc, kind, addrs)
		want := refmodel.Coalesce(warpID, pc, kind, addrs, lineSize)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d (line %d, addrs %v):\nproduction %+v\nreference  %+v",
				seed, lineSize, addrs, got, want)
		}
	}
}

// TestCoalesceConservation checks the invariants that hold for any warp:
// thread counts sum to the lane count, every line is distinct and
// line-aligned, and the request count never exceeds the lane count.
func TestCoalesceConservation(t *testing.T) {
	n := proptest.N(t, 300, 1500)
	for i := 0; i < n; i++ {
		seed := uint64(0xc0b2 + i)
		g := proptest.New(seed)
		const lineSize = 128
		addrs := g.WarpAddrs()
		reqs := gpu.NewCoalescer(lineSize).Coalesce(0, 0x400, trace.Load, addrs)
		if len(reqs) > len(addrs) {
			t.Fatalf("seed %d: %d requests from %d lanes", seed, len(reqs), len(addrs))
		}
		total := 0
		seen := map[uint64]bool{}
		for _, r := range reqs {
			total += r.Threads
			if r.Addr%lineSize != 0 {
				t.Fatalf("seed %d: request address %#x not line aligned", seed, r.Addr)
			}
			if seen[r.Addr] {
				t.Fatalf("seed %d: line %#x emitted twice", seed, r.Addr)
			}
			seen[r.Addr] = true
		}
		if total != len(addrs) {
			t.Fatalf("seed %d: thread counts sum to %d, want %d lanes", seed, total, len(addrs))
		}
	}
}
