package obs

import (
	"context"
	"runtime/pprof"
	"time"
)

// PhaseLabel is the pprof label key phases are tagged with, so CPU
// profiles of the pipeline attribute samples to pipeline phases
// (profile-build, clone-generation, ...) via `go tool pprof -tagfocus`.
const PhaseLabel = "gmap_phase"

// Phase runs f as one named pipeline phase. With a nil registry it is a
// direct call — zero instrumentation cost. With an enabled registry the
// goroutine is labeled PhaseLabel=name for pprof attribution while f
// runs, and f's wall time is recorded in the "phase.<name>.ns" histogram
// (Count is the number of times the phase ran).
func (r *Registry) Phase(name string, f func()) {
	if r == nil {
		f()
		return
	}
	start := time.Now()
	pprof.Do(context.Background(), pprof.Labels(PhaseLabel, name), func(context.Context) {
		f()
	})
	r.Histogram("phase." + name + ".ns").Observe(uint64(time.Since(start).Nanoseconds()))
}

// Timer measures one duration into a histogram: call Stop to record.
// The nil-registry path costs the usual single branch.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing against the named histogram.
func (r *Registry) StartTimer(name string) Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{h: r.Histogram(name), start: time.Now()}
}

// Stop records the elapsed nanoseconds; a Timer from a nil registry is a
// no-op.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.Observe(uint64(time.Since(t.start).Nanoseconds()))
}
