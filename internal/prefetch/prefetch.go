// Package prefetch implements the two hardware prefetchers the paper
// evaluates proxies against: a many-thread-aware per-PC stride prefetcher
// attached to the L1 (after Lee et al., MICRO 2010 [12]) and a stream
// prefetcher attached to the L2 (§5, "L2 cache and prefetcher
// configurations": stream window 8/16/32, degree 1/2/4/8).
package prefetch

import (
	"fmt"

	"github.com/uteda/gmap/internal/rng"
)

// Prefetcher observes the demand stream of a cache and proposes lines to
// fill. Addresses are line-aligned. warp carries the issuing warp so
// thread-aware schemes can keep per-warp state; schemes that do not need
// it ignore it.
type Prefetcher interface {
	// Observe is called for every demand access; it returns the line
	// addresses to prefetch (possibly none).
	Observe(pc uint64, warp int, lineAddr uint64, miss bool) []uint64
	// Reset clears all training state.
	Reset()
}

// Nil is a no-op prefetcher for baseline configurations.
type Nil struct{}

// Observe implements Prefetcher; it never prefetches.
func (Nil) Observe(uint64, int, uint64, bool) []uint64 { return nil }

// Reset implements Prefetcher.
func (Nil) Reset() {}

// StrideConfig parameterizes the per-PC stride prefetcher.
type StrideConfig struct {
	// TableSize is the number of tracking entries (power of two).
	TableSize int
	// Degree is how many consecutive strided lines to prefetch per
	// trigger.
	Degree int
	// MinConfidence is how many consecutive identical strides must be
	// seen before prefetching begins (>= 1).
	MinConfidence int
	// PerWarp keys the table by (PC, warp) instead of PC alone — the
	// "many-thread aware" variant of [12] that avoids cross-warp stride
	// pollution.
	PerWarp bool
}

// Validate checks the configuration.
func (c StrideConfig) Validate() error {
	if c.TableSize <= 0 || c.TableSize&(c.TableSize-1) != 0 {
		return fmt.Errorf("prefetch: stride table size %d not a power of two", c.TableSize)
	}
	if c.Degree <= 0 {
		return fmt.Errorf("prefetch: stride degree %d", c.Degree)
	}
	if c.MinConfidence < 1 {
		return fmt.Errorf("prefetch: min confidence %d", c.MinConfidence)
	}
	return nil
}

// DefaultStrideConfig returns a 64-entry, degree-2, per-warp configuration.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{TableSize: 64, Degree: 2, MinConfidence: 2, PerWarp: true}
}

type strideEntry struct {
	key        uint64
	valid      bool
	lastLine   uint64
	stride     int64
	confidence int
}

// Stride is the per-PC (optionally per-warp) stride prefetcher.
type Stride struct {
	cfg   StrideConfig
	table []strideEntry
	buf   []uint64
}

// NewStride builds a stride prefetcher.
func NewStride(cfg StrideConfig) (*Stride, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Stride{cfg: cfg, table: make([]strideEntry, cfg.TableSize)}, nil
}

func (s *Stride) keyOf(pc uint64, warp int) uint64 {
	if s.cfg.PerWarp {
		return rng.Mix64(pc ^ uint64(warp)<<40)
	}
	return rng.Mix64(pc)
}

// Observe trains on every access and triggers degree-deep prefetches once
// a PC's stride is confident.
func (s *Stride) Observe(pc uint64, warp int, lineAddr uint64, _ bool) []uint64 {
	key := s.keyOf(pc, warp)
	e := &s.table[key&uint64(len(s.table)-1)]
	if !e.valid || e.key != key {
		*e = strideEntry{key: key, valid: true, lastLine: lineAddr}
		return nil
	}
	stride := int64(lineAddr) - int64(e.lastLine)
	e.lastLine = lineAddr
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.confidence < 1<<20 {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 1
		return nil
	}
	if e.confidence < s.cfg.MinConfidence {
		return nil
	}
	s.buf = s.buf[:0]
	next := int64(lineAddr)
	for d := 0; d < s.cfg.Degree; d++ {
		next += stride
		if next < 0 {
			break
		}
		s.buf = append(s.buf, uint64(next))
	}
	return s.buf
}

// Reset implements Prefetcher.
func (s *Stride) Reset() {
	for i := range s.table {
		s.table[i] = strideEntry{}
	}
}

// StreamConfig parameterizes the L2 stream prefetcher.
type StreamConfig struct {
	// Streams is the number of concurrently tracked streams.
	Streams int
	// Window is how far (in lines) an access may land from a stream's
	// head and still be considered part of it — the paper sweeps 8/16/32.
	Window int
	// Degree is how many lines ahead to prefetch per advance — the paper
	// sweeps 1/2/4/8.
	Degree int
	// LineSize is the line granularity in bytes.
	LineSize uint64
}

// Validate checks the configuration.
func (c StreamConfig) Validate() error {
	if c.Streams <= 0 {
		return fmt.Errorf("prefetch: %d streams", c.Streams)
	}
	if c.Window <= 0 || c.Degree <= 0 {
		return fmt.Errorf("prefetch: stream window %d / degree %d", c.Window, c.Degree)
	}
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("prefetch: stream line size %d", c.LineSize)
	}
	return nil
}

// DefaultStreamConfig returns 16 streams, window 16, degree 2, 128B lines.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{Streams: 16, Window: 16, Degree: 2, LineSize: 128}
}

type stream struct {
	valid    bool
	head     int64 // line number of the stream head
	dir      int64 // +1 or -1
	lastUsed uint64
}

// Stream is the L2 stream prefetcher: it detects unit-direction line
// streams (within a window) and runs ahead of them by Degree lines.
type Stream struct {
	cfg     StreamConfig
	streams []stream
	tick    uint64
	buf     []uint64
}

// NewStream builds a stream prefetcher.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Stream{cfg: cfg, streams: make([]stream, cfg.Streams)}, nil
}

// Observe trains on misses only (streams are a miss-driven mechanism) and
// prefetches Degree lines ahead of a matched stream.
func (s *Stream) Observe(_ uint64, _ int, lineAddr uint64, miss bool) []uint64 {
	if !miss {
		return nil
	}
	s.tick++
	ln := int64(lineAddr / s.cfg.LineSize)
	// Match an existing stream whose head is within the window.
	for i := range s.streams {
		st := &s.streams[i]
		if !st.valid {
			continue
		}
		delta := ln - st.head
		if delta == 0 {
			st.lastUsed = s.tick
			return nil
		}
		if (st.dir > 0 && delta > 0 && delta <= int64(s.cfg.Window)) ||
			(st.dir < 0 && delta < 0 && -delta <= int64(s.cfg.Window)) {
			st.head = ln
			st.lastUsed = s.tick
			s.buf = s.buf[:0]
			for d := 1; d <= s.cfg.Degree; d++ {
				next := ln + st.dir*int64(d)
				if next < 0 {
					break
				}
				s.buf = append(s.buf, uint64(next)*s.cfg.LineSize)
			}
			return s.buf
		}
	}
	// Second pass: a direction-less accessor close to an existing head
	// establishes direction.
	for i := range s.streams {
		st := &s.streams[i]
		if !st.valid || st.dir != 0 {
			continue
		}
		delta := ln - st.head
		if delta != 0 && delta >= -int64(s.cfg.Window) && delta <= int64(s.cfg.Window) {
			if delta > 0 {
				st.dir = 1
			} else {
				st.dir = -1
			}
			st.head = ln
			st.lastUsed = s.tick
			return nil
		}
	}
	// Allocate a new (direction-less) stream, replacing the LRU one.
	victim := 0
	oldest := s.streams[0].lastUsed
	for i := range s.streams {
		if !s.streams[i].valid {
			victim = i
			break
		}
		if s.streams[i].lastUsed < oldest {
			victim, oldest = i, s.streams[i].lastUsed
		}
	}
	s.streams[victim] = stream{valid: true, head: ln, lastUsed: s.tick}
	return nil
}

// Reset implements Prefetcher.
func (s *Stream) Reset() {
	for i := range s.streams {
		s.streams[i] = stream{}
	}
	s.tick = 0
}

// NextLine is the classic sequential prefetcher: on every demand miss it
// fetches the next Degree lines. It is the simplest useful baseline for
// prefetcher studies — cheap, reasonably effective on streaming code, and
// wasteful on strided or irregular code, which is exactly the contrast
// the smarter schemes above are measured against.
type NextLine struct {
	// Degree is how many sequential lines to prefetch per miss.
	Degree int
	// LineSize is the line granularity in bytes.
	LineSize uint64
	buf      []uint64
}

// NewNextLine builds a next-line prefetcher; degree must be positive and
// lineSize a power of two (0 selects 128).
func NewNextLine(degree int, lineSize uint64) (*NextLine, error) {
	if degree <= 0 {
		return nil, fmt.Errorf("prefetch: next-line degree %d", degree)
	}
	if lineSize == 0 {
		lineSize = 128
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("prefetch: next-line line size %d", lineSize)
	}
	return &NextLine{Degree: degree, LineSize: lineSize}, nil
}

// Observe implements Prefetcher: misses trigger Degree sequential fills.
func (n *NextLine) Observe(_ uint64, _ int, lineAddr uint64, miss bool) []uint64 {
	if !miss {
		return nil
	}
	n.buf = n.buf[:0]
	base := lineAddr &^ (n.LineSize - 1)
	for d := 1; d <= n.Degree; d++ {
		n.buf = append(n.buf, base+uint64(d)*n.LineSize)
	}
	return n.buf
}

// Reset implements Prefetcher; next-line keeps no state.
func (n *NextLine) Reset() {}
