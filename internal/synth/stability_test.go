// Clone-of-clone and robustness properties of the synthesizer. External
// test package so the proptest generators (which import profiler) and
// the workload registry can be used together.
package synth_test

import (
	"math"
	"reflect"
	"testing"

	"github.com/uteda/gmap/internal/profiler"
	"github.com/uteda/gmap/internal/proptest"
	"github.com/uteda/gmap/internal/synth"
	"github.com/uteda/gmap/internal/workloads"
)

// TestGenerateIsDeterministic: the synthesizer is a pure function of
// (profile, options) — two calls with the same random profile and seed
// must produce identical proxies or identical errors, and must never
// panic, across many generated profiles.
func TestGenerateIsDeterministic(t *testing.T) {
	n := proptest.N(t, 100, 500)
	for i := 0; i < n; i++ {
		seed := uint64(0x5717b + i)
		g := proptest.New(seed)
		p := g.Profile()
		opts := synth.Options{Seed: g.R.Uint64(), ScaleFactor: 1 + 3*g.R.Float64()}
		a, errA := synth.Generate(p, opts)
		b, errB := synth.Generate(p, opts)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: errors diverged: %v vs %v", seed, errA, errB)
		}
		if errA != nil {
			if errA.Error() != errB.Error() {
				t.Fatalf("seed %d: error text diverged: %q vs %q", seed, errA, errB)
			}
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: identically seeded generations diverged", seed)
		}
	}
}

// coldFraction is the aggregate cold share of a profile's reuse
// histograms — the feature the clone-of-clone check tracks.
func coldFraction(p *profiler.Profile) float64 {
	var cold, total uint64
	for _, pp := range p.Profiles {
		cold += pp.Reuse.Count(-1)
		total += pp.Reuse.Total()
	}
	if total == 0 {
		return 0
	}
	return float64(cold) / float64(total)
}

// TestCloneOfCloneIsStable: profiling a proxy and synthesizing again must
// reproduce the proxy's own statistics — the fixed-point property that
// makes the profile→synthesize loop trustworthy. A drifting second
// generation means the synthesizer does not actually realize the
// statistics it is handed.
func TestCloneOfCloneIsStable(t *testing.T) {
	for _, name := range []string{"nn", "scalarprod"} {
		spec, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("workload %s not registered", name)
		}
		k, err := spec.Trace(1)
		if err != nil {
			t.Fatal(err)
		}
		pcfg := profiler.DefaultConfig()
		p1, err := profiler.ProfileKernel(k, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		// First generation at full scale so the two profiled populations
		// are directly comparable.
		opts := synth.Options{Seed: 7, ScaleFactor: 1}
		proxy1, err := synth.Generate(p1, opts)
		if err != nil {
			t.Fatal(err)
		}
		g1, err := profiler.ProfileWarps(name, proxy1.GridDim, proxy1.BlockDim, proxy1.Warps, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		proxy2, err := synth.Generate(g1, opts)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := profiler.ProfileWarps(name, proxy2.GridDim, proxy2.BlockDim, proxy2.Warps, pcfg)
		if err != nil {
			t.Fatal(err)
		}

		if g2.GridDim != g1.GridDim || g2.BlockDim != g1.BlockDim || g2.Warps != g1.Warps {
			t.Errorf("%s: geometry drifted: gen1 %d/%d/%d, gen2 %d/%d/%d", name,
				g1.GridDim, g1.BlockDim, g1.Warps, g2.GridDim, g2.BlockDim, g2.Warps)
		}
		r1, r2 := float64(g1.TotalRequests), float64(g2.TotalRequests)
		if r1 == 0 {
			t.Fatalf("%s: first-generation proxy issued no requests", name)
		}
		if rel := math.Abs(r2-r1) / r1; rel > 0.30 {
			t.Errorf("%s: request volume drifted %.1f%% between generations (%v -> %v)",
				name, 100*rel, g1.TotalRequests, g2.TotalRequests)
		}
		if d := math.Abs(coldFraction(g2) - coldFraction(g1)); d > 0.15 {
			t.Errorf("%s: cold-reuse fraction drifted by %.3f between generations", name, d)
		}
	}
}
