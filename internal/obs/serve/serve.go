// Package serve exposes a running sweep's observability state over HTTP:
// a read-only exposition server mounted behind `gmap-eval -serve` and
// `gmap-sim -serve`. Endpoints:
//
//	/metrics       Prometheus text rendered from a Registry snapshot
//	/metrics.json  the full registry snapshot as JSON (the federation
//	               scrape format: lossless, unlike the prom text)
//	/progress      JSON mirror of the execution engine's live stats
//	/trace         the span log as a JSONL event stream
//	/trace/chrome  the span log as Chrome trace-event JSON (Perfetto)
//	/healthz       liveness: 200 whenever the process serves at all
//	/readyz        readiness: 200, or 503 with the Ready error's text
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Every handler snapshots on request — nothing holds locks between
// requests and nothing mutates pipeline state — so the server can never
// perturb a simulation result. The server shuts down cleanly when the
// context passed to Start is cancelled.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"github.com/uteda/gmap/internal/obs"
	obstrace "github.com/uteda/gmap/internal/obs/trace"
	httpserve "github.com/uteda/gmap/internal/serve"
)

// Options configures the exposition server.
type Options struct {
	// Addr is the listen address (e.g. ":9300" or "127.0.0.1:0").
	Addr string
	// Registry backs /metrics; nil serves an empty exposition.
	Registry *obs.Registry
	// Tracer backs /trace; nil serves an empty stream.
	Tracer *obstrace.Tracer
	// Progress, when non-nil, supplies the object served as /progress
	// JSON. It is called per request and must be safe for concurrent use.
	Progress func() interface{}
	// Ready, when non-nil, backs /readyz: a nil return answers 200, an
	// error answers 503 with the error text. Nil Ready means
	// always-ready (liveness and readiness coincide). Called per
	// request; must be safe for concurrent use.
	Ready func() error
}

// Server is a live exposition server. It is the shared serving core of
// internal/serve — the same listen/shutdown lifecycle backs the
// clone-and-simulate service (cmd/gmap-served).
type Server = httpserve.Server

// Handler builds the exposition mux for o. Exported separately so tests
// can drive it through httptest without binding a port.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "gmap exposition server\n\n"+
			"/metrics       Prometheus text\n"+
			"/metrics.json  registry snapshot JSON (federation scrape format)\n"+
			"/progress      sweep progress JSON\n"+
			"/trace         span log (JSONL)\n"+
			"/trace/chrome  span log (Chrome trace JSON, load in Perfetto)\n"+
			"/healthz       liveness\n"+
			"/readyz        readiness\n"+
			"/debug/pprof/  Go profiling\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.Registry.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.Registry.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Ready != nil {
			if err := o.Ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v interface{}
		if o.Progress != nil {
			v = o.Progress()
		}
		if v == nil {
			v = struct{}{}
		}
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := o.Tracer.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace/chrome", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="gmap-trace.json"`)
		if err := o.Tracer.WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Request-level latency/status instrumentation rides the same
	// registry the mux exposes; with no registry the mux is untouched.
	return httpserve.Instrument(o.Registry, "obs", mux)
}

// Start binds o.Addr and serves until ctx is cancelled (or Shutdown is
// called). It returns once the listener is bound, so Addr() is
// immediately routable — pass port :0 to get an ephemeral port and read
// the actually-bound one back from Addr().
func Start(ctx context.Context, o Options) (*Server, error) {
	return httpserve.Start(ctx, "obs serve", o.Addr, Handler(o))
}
