package gmap

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestEndToEndPipeline(t *testing.T) {
	tr, err := BenchmarkTrace("bp", 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileTrace(tr, DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := Generate(p, GenerateOptions{Seed: 1, ScaleFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy is validated on the paper's Table 2 system (15 SMs): the
	// clone's warp population is sized against that residency.
	cfg := DefaultSimConfig()
	orig, err := SimulateTrace(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := SimulateProxy(proxy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(orig.L1MissRate() - clone.L1MissRate()); d > 0.12 {
		t.Errorf("clone L1 miss rate off by %.3f (orig %.3f, clone %.3f)",
			d, orig.L1MissRate(), clone.L1MissRate())
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 18 {
		t.Fatalf("have %d benchmarks, want 18", len(names))
	}
	if _, err := BenchmarkTrace("nonesuch", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr, err := BenchmarkTrace("nn", 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumAccesses() != tr.NumAccesses() || got.Name != tr.Name {
		t.Error("trace round trip lost data")
	}
}

func TestProfileSerializationRoundTrip(t *testing.T) {
	tr, _ := BenchmarkTrace("nn", 1)
	p, err := ProfileTrace(tr, DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalRequests != p.TotalRequests || len(got.Insts) != len(p.Insts) {
		t.Error("profile round trip lost data")
	}
}

func TestProxySerializationRoundTrip(t *testing.T) {
	w, err := Prepare("nn", 1, DefaultProfileConfig(), GenerateOptions{Seed: 1, ScaleFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProxy(&buf, w.Proxy); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProxy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests != w.Proxy.Requests || len(got.Warps) != len(w.Proxy.Warps) {
		t.Errorf("proxy round trip: %d/%d warps, %d/%d requests",
			len(got.Warps), len(w.Proxy.Warps), got.Requests, w.Proxy.Requests)
	}
	// A deserialized proxy must simulate identically.
	cfg := DefaultSimConfig()
	cfg.NumCores = 2
	a, err := SimulateProxy(w.Proxy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateProxy(got, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.L1MissRate() != b.L1MissRate() || a.Cycles != b.Cycles {
		t.Error("deserialized proxy behaves differently")
	}
}

func TestCoalesce(t *testing.T) {
	tr, _ := BenchmarkTrace("nn", 1)
	warps := Coalesce(tr, 0)
	if len(warps) == 0 {
		t.Fatal("no warps")
	}
	total := 0
	for _, w := range warps {
		total += len(w.Requests)
	}
	if total == 0 || total >= tr.NumAccesses() {
		t.Errorf("coalescing produced %d requests from %d accesses", total, tr.NumAccesses())
	}
}

func TestExperimentsFacade(t *testing.T) {
	var buf bytes.Buffer
	opts := ExperimentOptions{Benchmarks: []string{"nn"}, Cores: 2}
	if err := Experiments(&buf, "table2", &opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "L1 Cache") {
		t.Errorf("table2 output: %q", buf.String())
	}
}

func TestObfuscatedSharingFlow(t *testing.T) {
	// The proprietary-workload story: profile in-house, generate an
	// obfuscated clone, ship only the clone.
	tr, _ := BenchmarkTrace("kmeans", 1)
	p, err := ProfileTrace(tr, DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := Generate(p, GenerateOptions{Seed: 7, ScaleFactor: 4, Obfuscate: true, ObfuscationKey: 0xfeed})
	if err != nil {
		t.Fatal(err)
	}
	// No proxy address may coincide with an original base address region.
	origBases := map[uint64]bool{}
	for _, inst := range p.Insts {
		origBases[inst.Base&^0xfffff] = true
	}
	overlap := 0
	total := 0
	for _, w := range proxy.Warps {
		for _, r := range w.Requests {
			total++
			if origBases[r.Addr&^0xfffff] {
				overlap++
			}
		}
	}
	if total == 0 {
		t.Fatal("empty proxy")
	}
	if frac := float64(overlap) / float64(total); frac > 0.05 {
		t.Errorf("obfuscated clone still overlaps original regions: %.2f", frac)
	}
}

func TestSimulateLaunchesFacade(t *testing.T) {
	w, err := PrepareApp("bp", 1, DefaultProfileConfig(), GenerateOptions{Seed: 1, ScaleFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig()
	m, err := SimulateLaunches(w.Proxy.WarpLaunches(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerLaunch) != 2 {
		t.Fatalf("PerLaunch = %d entries, want 2", len(m.PerLaunch))
	}
	var sum uint64
	for _, l := range m.PerLaunch {
		sum += l.Requests
	}
	if sum != m.Requests {
		t.Errorf("per-launch requests %d != total %d", sum, m.Requests)
	}
}

func TestScaleUpFacade(t *testing.T) {
	tr, err := BenchmarkTrace("blk", 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileTrace(tr, DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	up, err := Generate(p, GenerateOptions{Seed: 1, ScaleFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(up.Requests) <= p.TotalRequests {
		t.Errorf("scale-up did not grow: %d -> %d", p.TotalRequests, up.Requests)
	}
}
